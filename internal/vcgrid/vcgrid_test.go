package vcgrid

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func grid8x8() *Grid {
	// The paper's Figure 2 example: an 8*8 VC MANET. 250 m cells.
	return New(geom.RectWH(0, 0, 2000, 2000), 250)
}

func TestDimensions(t *testing.T) {
	g := grid8x8()
	if g.Cols() != 8 || g.Rows() != 8 || g.Count() != 64 {
		t.Fatalf("grid %dx%d count %d want 8x8/64", g.Cols(), g.Rows(), g.Count())
	}
	if g.CellSize() != 250 {
		t.Fatalf("cell size %v", g.CellSize())
	}
	if r := g.Radius(); math.Abs(r-250/math.Sqrt2) > 1e-6 {
		t.Fatalf("radius %v", r)
	}
}

func TestRoundsUpPartialCells(t *testing.T) {
	g := New(geom.RectWH(0, 0, 1100, 900), 250)
	if g.Cols() != 5 || g.Rows() != 4 {
		t.Fatalf("grid %dx%d want 5x4", g.Cols(), g.Rows())
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	for _, fn := range []func(){
		func() { New(geom.RectWH(0, 0, 100, 100), 0) },
		func() { New(geom.RectWH(0, 0, 0, 100), 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		}()
	}
}

func TestVCOf(t *testing.T) {
	g := grid8x8()
	cases := []struct {
		p  geom.Point
		vc VC
	}{
		{geom.Pt(0, 0), VC{0, 0}},
		{geom.Pt(249.9, 249.9), VC{0, 0}},
		{geom.Pt(250, 0), VC{1, 0}},
		{geom.Pt(1999, 1999), VC{7, 7}},
		{geom.Pt(-50, 500), VC{0, 2}},   // clamped west
		{geom.Pt(5000, 5000), VC{7, 7}}, // clamped northeast
	}
	for _, c := range cases {
		if got := g.VCOf(c.p); got != c.vc {
			t.Errorf("VCOf(%v)=%v want %v", c.p, got, c.vc)
		}
	}
}

func TestCenterIsVCC(t *testing.T) {
	g := grid8x8()
	if got := g.Center(VC{0, 0}); got != geom.Pt(125, 125) {
		t.Fatalf("VCC of (0,0) = %v", got)
	}
	if got := g.Center(VC{7, 7}); got != geom.Pt(1875, 1875) {
		t.Fatalf("VCC of (7,7) = %v", got)
	}
}

func TestCircleCoversTile(t *testing.T) {
	// Every point of a tile must be inside its own VC (full coverage),
	// which is why the radius is the circumradius.
	g := grid8x8()
	v := VC{3, 4}
	c := g.Circle(v)
	tile := g.Tile(v)
	for _, p := range []geom.Point{
		tile.Min, geom.Pt(tile.Max.X-1e-9, tile.Min.Y),
		geom.Pt(tile.Min.X, tile.Max.Y-1e-9), tile.Center(),
	} {
		if !c.Contains(p) {
			t.Fatalf("tile point %v outside its VC", p)
		}
	}
}

func TestCoveringOverlap(t *testing.T) {
	g := grid8x8()
	// The exact center of a tile belongs only to its own VC.
	if got := g.Covering(geom.Pt(125, 125)); len(got) != 1 {
		t.Fatalf("tile center covered by %d VCs want 1: %v", len(got), got)
	}
	// A point on the shared edge of two tiles is inside both circles —
	// the paper's overlapped-region membership.
	got := g.Covering(geom.Pt(250, 125))
	if len(got) < 2 {
		t.Fatalf("edge point covered by %d VCs want >=2: %v", len(got), got)
	}
	// A tile corner lies within up to four circles.
	got = g.Covering(geom.Pt(250, 250))
	if len(got) != 4 {
		t.Fatalf("corner point covered by %d VCs want 4: %v", len(got), got)
	}
}

func TestCoveringAlwaysIncludesHome(t *testing.T) {
	g := grid8x8()
	f := func(x, y uint16) bool {
		p := geom.Pt(float64(x%2200)-100, float64(y%2200)-100)
		home := g.VCOf(p)
		for _, v := range g.Covering(p) {
			if v == home {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdjacent(t *testing.T) {
	g := grid8x8()
	if got := g.Adjacent(VC{0, 0}); len(got) != 2 {
		t.Fatalf("corner adjacency %v", got)
	}
	if got := g.Adjacent(VC{3, 0}); len(got) != 3 {
		t.Fatalf("edge adjacency %v", got)
	}
	if got := g.Adjacent(VC{3, 3}); len(got) != 4 {
		t.Fatalf("interior adjacency %v", got)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	g := grid8x8()
	for i := 0; i < g.Count(); i++ {
		v := g.FromIndex(i)
		if !g.Valid(v) {
			t.Fatalf("FromIndex(%d)=%v invalid", i, v)
		}
		if g.Index(v) != i {
			t.Fatalf("round trip %d -> %v -> %d", i, v, g.Index(v))
		}
	}
}

func TestFromIndexPanics(t *testing.T) {
	g := grid8x8()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	g.FromIndex(64)
}

func TestDistVCs(t *testing.T) {
	if DistVCs(VC{0, 0}, VC{3, 1}) != 3 {
		t.Fatal("chebyshev wrong")
	}
	if DistVCs(VC{5, 5}, VC{5, 5}) != 0 {
		t.Fatal("self distance")
	}
	if DistVCs(VC{2, 7}, VC{4, 3}) != 4 {
		t.Fatal("chebyshev wrong")
	}
}

func TestValid(t *testing.T) {
	g := grid8x8()
	for _, c := range []struct {
		v  VC
		ok bool
	}{
		{VC{0, 0}, true}, {VC{7, 7}, true},
		{VC{-1, 0}, false}, {VC{8, 0}, false}, {VC{0, 8}, false},
	} {
		if g.Valid(c.v) != c.ok {
			t.Errorf("Valid(%v)=%v want %v", c.v, !c.ok, c.ok)
		}
	}
}
