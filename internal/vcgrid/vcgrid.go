// Package vcgrid implements the paper's Virtual Circle (VC) layout: the
// geographical area is "divided into equal regions of circular shape"
// (§3), one potential cluster per region, with circles overlapping so
// that border nodes can belong to several clusters at once "for more
// reliable communications".
//
// Concretely the arena is tiled by square cells of side CellSize; each
// cell carries a VC centered at the cell center (the Virtual Circle
// Center, VCC) whose radius is the cell's circumradius CellSize/sqrt(2).
// Adjacent circles then overlap exactly in the lens over the shared cell
// border, which reproduces the geometry of the paper's Figure 2.
package vcgrid

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// VC identifies one virtual circle by its cell coordinates: CX counts
// columns (west to east), CY rows (south to north).
type VC struct {
	CX, CY int
}

// String implements fmt.Stringer.
func (v VC) String() string { return fmt.Sprintf("vc(%d,%d)", v.CX, v.CY) }

// Grid is the virtual-circle layout over an arena.
type Grid struct {
	arena    geom.Rect
	cellSize float64
	cols     int
	rows     int
}

// New lays out a grid of square cells of side cellSize over the arena.
// The arena dimensions are rounded up to whole cells (the paper divides
// "a geographical area (or even the whole earth)", so partial edge
// coverage is a non-issue; we simply extend). It panics on non-positive
// cellSize or an empty arena — configuration errors.
func New(arena geom.Rect, cellSize float64) *Grid {
	if cellSize <= 0 || arena.W() <= 0 || arena.H() <= 0 {
		panic("vcgrid: invalid arena or cell size")
	}
	return &Grid{
		arena:    arena,
		cellSize: cellSize,
		cols:     int(math.Ceil(arena.W() / cellSize)),
		rows:     int(math.Ceil(arena.H() / cellSize)),
	}
}

// Cols returns the number of VC columns.
func (g *Grid) Cols() int { return g.cols }

// Rows returns the number of VC rows.
func (g *Grid) Rows() int { return g.rows }

// Count returns the total number of VCs.
func (g *Grid) Count() int { return g.cols * g.rows }

// CellSize returns the square tile side length in meters.
func (g *Grid) CellSize() float64 { return g.cellSize }

// Radius returns the VC radius (the circumradius of a tile), the
// paper's "diameter of VCs" divided by two. A relative epsilon of slack
// absorbs floating-point rounding so that tile corners — which lie at
// exactly the circumradius — always test as covered.
func (g *Grid) Radius() float64 { return g.cellSize / math.Sqrt2 * (1 + 1e-9) }

// Valid reports whether the VC coordinates are inside the grid.
func (g *Grid) Valid(v VC) bool {
	return v.CX >= 0 && v.CX < g.cols && v.CY >= 0 && v.CY < g.rows
}

// VCOf returns the VC whose square tile contains p. Points outside the
// arena clamp to the nearest edge cell, so every position maps to some
// VC ("each MN can determine the circle where it resides").
func (g *Grid) VCOf(p geom.Point) VC {
	cx := int(math.Floor((p.X - g.arena.Min.X) / g.cellSize))
	cy := int(math.Floor((p.Y - g.arena.Min.Y) / g.cellSize))
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return VC{cx, cy}
}

// Center returns the VCC (virtual circle center) of v.
func (g *Grid) Center(v VC) geom.Point {
	return geom.Pt(
		g.arena.Min.X+(float64(v.CX)+0.5)*g.cellSize,
		g.arena.Min.Y+(float64(v.CY)+0.5)*g.cellSize,
	)
}

// Circle returns the virtual circle of v.
func (g *Grid) Circle(v VC) geom.Circle {
	return geom.Circle{C: g.Center(v), R: g.Radius()}
}

// Tile returns v's square cell.
func (g *Grid) Tile(v VC) geom.Rect {
	min := geom.Pt(
		g.arena.Min.X+float64(v.CX)*g.cellSize,
		g.arena.Min.Y+float64(v.CY)*g.cellSize,
	)
	return geom.Rect{Min: min, Max: geom.Pt(min.X+g.cellSize, min.Y+g.cellSize)}
}

// Covering returns every VC whose circle contains p — the overlap
// membership set of the paper ("an MN within the overlapped regions can
// be a cluster member of two or multiple clusters at the same time").
// The home tile's VC is always included even for clamped out-of-arena
// points.
func (g *Grid) Covering(p geom.Point) []VC {
	home := g.VCOf(p)
	out := []VC{home}
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			if dx == 0 && dy == 0 {
				continue
			}
			v := VC{home.CX + dx, home.CY + dy}
			if g.Valid(v) && g.Circle(v).Contains(p) {
				out = append(out, v)
			}
		}
	}
	return out
}

// Adjacent returns the 4-neighborhood of v within the grid (the VCs
// whose tiles share an edge with v's tile).
func (g *Grid) Adjacent(v VC) []VC {
	cands := [4]VC{
		{v.CX - 1, v.CY}, {v.CX + 1, v.CY}, {v.CX, v.CY - 1}, {v.CX, v.CY + 1},
	}
	out := make([]VC, 0, 4)
	for _, c := range cands {
		if g.Valid(c) {
			out = append(out, c)
		}
	}
	return out
}

// Index linearizes v to a unique integer in [0, Count()); it is the
// CHID space of the logical identifier scheme.
func (g *Grid) Index(v VC) int { return v.CY*g.cols + v.CX }

// FromIndex inverts Index. Out-of-range indices panic — they are always
// programming errors.
func (g *Grid) FromIndex(i int) VC {
	if i < 0 || i >= g.Count() {
		panic(fmt.Sprintf("vcgrid: index %d out of range [0,%d)", i, g.Count()))
	}
	return VC{CX: i % g.cols, CY: i / g.cols}
}

// DistVCs returns the Chebyshev distance between two VCs in cells, a
// cheap lower bound on hop distance used by experiments.
func DistVCs(a, b VC) int {
	dx, dy := a.CX-b.CX, a.CY-b.CY
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	if dx > dy {
		return dx
	}
	return dy
}
