package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, parsed, type-checked package ready for
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Load resolves patterns (./..., repro/internal/qos, ...) with
// `go list` run in dir, then parses and type-checks every matched
// package from source. Dependencies — the standard library included —
// are type-checked with function bodies ignored, so loading needs no
// compiled export data, no module downloads, and no network: exactly
// what the offline container provides. Test files are not loaded; the
// determinism contract governs simulation state, which lives in
// non-test code (DESIGN.md "Determinism lint").
//
// A pattern that matches nothing or names an unknown package is an
// error (the CLI turns it into exit 2 + usage).
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadWithTags(dir, nil, patterns...)
}

// LoadWithTags is Load with build tags applied to file selection, both
// in `go list` and in dependency resolution. The faultseed self-tests
// use it to analyze the deliberately buggy -tags faultseed variants
// that plain loads never see.
func LoadWithTags(dir string, tags []string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(dir, tags, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newImporter(fset, tags)
	var pkgs []*Package
	for _, m := range metas {
		if len(m.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(m.GoFiles))
		for _, name := range m.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: importerFrom{imp, m.Dir}}
		tpkg, err := conf.Check(m.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", m.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: m.ImportPath,
			Dir:        m.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// listMeta is the slice of `go list -json` output the loader needs.
type listMeta struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
}

func goList(dir string, tags, patterns []string) ([]listMeta, error) {
	args := []string{"list", "-json=ImportPath,Dir,Name,GoFiles"}
	if len(tags) > 0 {
		args = append(args, "-tags", strings.Join(tags, ","))
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list %s: %s", strings.Join(patterns, " "), msg)
	}
	var metas []listMeta
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var m listMeta
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// importer type-checks dependency packages from source on demand,
// caching by import path. Bodies are ignored — dependencies only
// contribute their API — which keeps a full ./... load a few seconds
// even though it type-checks the transitive standard library.
type importer struct {
	fset *token.FileSet
	ctxt build.Context
	pkgs map[string]*types.Package
}

func newImporter(fset *token.FileSet, tags []string) *importer {
	ctxt := build.Default
	// Pure-Go file sets only: with cgo enabled go/build would select
	// cgo variants of net/os/user whose Go files don't type-check
	// standalone. The repository itself is cgo-free.
	ctxt.CgoEnabled = false
	ctxt.BuildTags = append(ctxt.BuildTags, tags...)
	return &importer{fset: fset, ctxt: ctxt, pkgs: map[string]*types.Package{}}
}

// importerFrom binds the shared importer to the directory of the
// importing package, which is how go/build resolves relative and
// module-local import paths.
type importerFrom struct {
	imp    *importer
	srcDir string
}

func (i importerFrom) Import(path string) (*types.Package, error) {
	return i.imp.importFrom(path, i.srcDir)
}

func (im *importer) importFrom(path, srcDir string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	bp, err := im.ctxt.Import(path, srcDir, 0)
	if err != nil {
		return nil, err
	}
	if pkg, ok := im.pkgs[bp.ImportPath]; ok {
		return pkg, nil
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(im.fset, filepath.Join(bp.Dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer:         importerFrom{im, bp.Dir},
		IgnoreFuncBodies: true,
		// Dependency packages may use newer stdlib internals than the
		// module's language version; they are not what we analyze.
	}
	pkg, err := conf.Check(bp.ImportPath, im.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("type-checking dependency %s: %w", bp.ImportPath, err)
	}
	im.pkgs[bp.ImportPath] = pkg
	return pkg, nil
}
