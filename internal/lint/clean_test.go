package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

// TestRepoLintClean is the enforcement point: the whole module must
// carry zero unsuppressed determinism diagnostics on every `go test`,
// so the lint holds even off-CI (the CI lint job additionally runs the
// hvdblint binary). A failure here means either a real nondeterminism
// was introduced — fix it — or a legitimately unordered site needs a
// reasoned //hvdb:<key> annotation (DESIGN.md "Determinism lint").
func TestRepoLintClean(t *testing.T) {
	root := moduleRoot(t)
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	res := lint.Analyze(pkgs)
	for _, d := range res.Diags {
		t.Errorf("%s", d)
	}
	// The annotation inventory stays auditable: every suppressed site
	// carries its reason (Analyze flags bare annotations, but assert
	// the invariant the acceptance criteria names explicitly).
	for _, d := range res.Suppressed {
		if d.Reason == "" {
			t.Errorf("%s:%d: suppressed without a reason", d.File, d.Line)
		}
	}
	t.Logf("lint-clean: %d packages, %d suppressed sites", len(pkgs), len(res.Suppressed))
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
