package lint_test

import (
	"fmt"

	"repro/internal/lint"
)

// ExampleAnalyzeSource shows the minimal maporder diagnostic: a map
// iteration whose per-element effect (an append into an ordered
// destination list — the PR 5 greedy-tree bug shape) escapes unsorted.
func ExampleAnalyzeSource() {
	const src = `package sim

func dests(members map[int]bool) []int {
	var out []int
	for id := range members {
		out = append(out, id)
	}
	return out
}
`
	res, err := lint.AnalyzeSource("repro/internal/sim", "sim.go", src, lint.MapOrder)
	if err != nil {
		panic(err)
	}
	for _, d := range res.Diags {
		fmt.Println(d)
	}
	// Output:
	// sim.go:5:2: maporder: range over map: appends to out, which this function never sorts; iterate a sorted slice (network.SortedIDs) or annotate //hvdb:unordered <reason>
}
