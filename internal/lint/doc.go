// Package lint is the repository's determinism-lint suite: a small,
// dependency-free go/analysis-style framework plus four analyzers that
// make the map-order bug class — unordered map iteration leaking into
// ordered simulation state — and its sharded-kernel sibling — lane
// code writing shared hub state — compile-time errors instead of raced
// rerun findings.
//
// The repository's two real protocol bugs to date were the same bug:
// PR 3's transmission scheduling and PR 5's greedy-tree destination
// lists both ranged a Go map and let the per-element effect escape into
// something order-sensitive (a packet send draws from the sender's loss
// stream; a greedy tree depends on destination order). The standing
// contract — byte-identical tables at any worker or shard count — was
// defended only dynamically. These analyzers defend it statically.
//
// # Analyzers
//
//   - MapOrder flags `for range` over a map whose per-element effect
//     escapes the loop into an ordering-sensitive sink: a DES schedule
//     or transmission call, an append to a slice declared outside the
//     loop that is never sorted in the enclosing function, an emitted
//     table row (fmt.Fprintf and friends, strings.Builder writes), or a
//     floating-point reduction (float += is not associative, so even a
//     "commutative" sum is order-observable in the last ulp). The
//     collect-then-sort idiom (append into a slice that the same
//     function passes to sort.*, slices.Sort*, network.SortedIDs,
//     network.Children, or membership.MTSummaryHIDs) is recognized and
//     not flagged.
//
//   - SeedSource bans wall-clock and ambient randomness in simulation
//     packages: importing math/rand, math/rand/v2, or crypto/rand, and
//     calling time.Now/Since/Sleep/Tick/... . Simulated randomness must
//     flow through internal/xrand streams derived positionally with
//     runner.DeriveSeed; simulated time comes from the des clock.
//
//   - PoolPair is a flow-insensitive lifecycle check for pooled
//     acquires (network.AcquirePacket and any Acquire* method): within
//     a function, every acquired value must reach a Release* call or a
//     recognized handoff (returned, stored, or passed to another call
//     that takes over the reference). Passing to a module-local callee
//     counts as a handoff only if the callee's summary actually
//     releases or re-hands-off that parameter; a summary that does
//     neither turns the call site into the reported leak. The dynamic
//     invariant PooledInFlight()==0 only fires at teardown; this
//     catches the leak at the line that drops the reference.
//
//   - ShardSafe guards the sharded kernel's ownership discipline in
//     the packages whose code runs on shard lanes (internal/des,
//     internal/network, internal/georoute): a function in lane context
//     — one taking per-lane state (*laneState, *rlane, *Lane) or a
//     closure passed to ScheduleLaneDirect/LogIntent — must not write
//     package-level variables or fields of the shared hub types
//     (Network, Router, Simulator, Sharded, Mux). Such writes race
//     across lane workers and, even when atomically safe, make results
//     depend on lane interleaving. The check is transitive over the
//     module's static call graph: a hub write anywhere reachable from
//     lane context is flagged at the write with the full call path in
//     the diagnostic. Writes through the lane-state parameters
//     themselves are the sanctioned path.
//
// # Interprocedural engine
//
// The analyzers above see through helper calls via a summary-based
// bottom-up engine (callgraph.go, summary.go): one extraction pass
// records per-function facts — hub writes, ordered sinks, per-param
// release/handoff behavior, outgoing calls including closures handed
// to the kernel's scheduling surface — then consume bits and lane
// reachability propagate over the call graph's SCC condensation
// (fixed point inside cycles). Unresolvable callees (other modules,
// interface methods) degrade conservatively: they consume their
// arguments and contribute no lane path. Facts serialize, so each
// package's extraction is cached (keyed by a content hash; override
// the location with HVDBLINT_CACHE) and warm runs skip straight to
// propagation. MapOrder uses the same summaries to follow a loop body
// one call deep into module-local helpers.
//
// # Suppression annotations
//
// Each analyzer has one annotation key; a site that is legitimately
// exempt carries a line comment either trailing the flagged line or
// alone on the line directly above it:
//
//	//hvdb:unordered <reason>   (MapOrder)
//	//hvdb:wallclock <reason>   (SeedSource)
//	//hvdb:handoff <reason>     (PoolPair)
//	//hvdb:serialonly <reason>  (ShardSafe)
//
// The reason is mandatory: a bare annotation is itself a diagnostic,
// so every exemption in the tree documents why it is safe. Annotations
// are deliberately line-scoped — there is no file- or package-wide
// opt-out — because the bug class is per-loop, not per-file. A
// diagnostic reported through the call graph is additionally covered
// by an annotation at any call site on its path, so one annotation on
// a lane-entry edge can cover every write it proves serial.
//
// # Driver
//
// Load resolves package patterns with `go list` and type-checks them
// from source (dependencies with bodies ignored), so the suite needs
// no network and no external modules. Analyze runs analyzers over the
// loaded packages and resolves suppressions. cmd/hvdblint is the CLI
// (-analyzers selects a subset, -timing prints the phase breakdown,
// -budget gates wall time); TestRepoLintClean in this package asserts
// zero unsuppressed diagnostics over ./... on every `go test`, so the
// lint is enforced even off-CI. See DESIGN.md "Determinism lint" for
// the sink model and for how to add a new analyzer.
package lint
