package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// summary.go turns the per-function facts of callgraph.go into the
// propagated summaries the analyzers consume:
//
//   - consume bits: a parameter is *consumed* (released or handed off)
//     either directly or transitively through the callees it is passed
//     to, computed bottom-up over the SCC condensation with a fixed
//     point inside each cycle;
//   - lane reachability: every function reachable from a lane root
//     (without crossing a Deferred edge or descending into the des
//     kernel) carries a deterministic shortest call path back to its
//     root, which shardsafe renders into diagnostics.
//
// Extraction facts — everything callgraph.go records, nothing derived —
// are cached per package as JSON keyed by a content hash of the
// package's sources plus the engine version. Propagation is cheap
// (linear in edges) and always re-runs, so a stale mix of cached and
// fresh packages can never produce stale *derived* state.

// summaryEngineVersion participates in the cache key; bump it whenever
// extraction semantics change so old fact files are ignored.
const summaryEngineVersion = "hvdblint-summary-v1"

// summaryCacheDir overrides the cache location; empty means
// $HVDBLINT_CACHE or the user cache dir. Tests point it at t.TempDir().
var summaryCacheDir = ""

// A Module holds the propagated interprocedural state for one Load.
type Module struct {
	Funcs map[FuncID]*FuncInfo

	// consumed[id][i]: parameter i of id is transitively released or
	// handed off on at least one path.
	consumed map[FuncID][]bool
	// released[id][i]: parameter i of id is transitively *released*
	// (strictly stronger than consumed; poolpair distinguishes the two
	// in messages).
	released map[FuncID][]bool

	// laneVia[id]: the predecessor edge on a shortest path from a lane
	// root; laneRoot[id] is true for the roots themselves.
	laneVia  map[FuncID]laneStep
	laneRoot map[FuncID]bool

	// Timing and cache accounting, surfaced by hvdblint -timing.
	BuildTime  time.Duration
	CacheHits  int
	CacheMiss  int
	CachedFrom string // resolved cache directory ("" if disabled)
}

type laneStep struct {
	from FuncID
	site Site
}

// BuildModule extracts (or loads cached) facts for every package and
// runs propagation. It never fails the analysis: cache errors degrade
// to re-extraction, and packages are assumed type-checked by Load.
func BuildModule(pkgs []*Package) *Module {
	start := time.Now()
	m := &Module{Funcs: map[FuncID]*FuncInfo{}}
	dir := resolveCacheDir()
	m.CachedFrom = dir
	for _, pkg := range pkgs {
		var funcs []*FuncInfo
		key := ""
		if dir != "" {
			key = packageCacheKey(pkg)
			if cached, ok := readFactCache(dir, key); ok {
				funcs = cached
				m.CacheHits++
			}
		}
		if funcs == nil {
			funcs = extractPackage(pkg)
			m.CacheMiss++
			if dir != "" && key != "" {
				writeFactCache(dir, key, funcs)
			}
		}
		for _, fi := range funcs {
			m.Funcs[fi.ID] = fi
		}
	}
	m.propagateConsume()
	m.propagateLane()
	m.BuildTime = time.Since(start)
	return m
}

// --- propagation ------------------------------------------------------

// propagateConsume computes the transitive released/consumed bits
// bottom-up over the condensation; within an SCC the member functions
// iterate to a fixed point (bits only ever turn on, so termination is
// immediate: at most params×members flips).
func (m *Module) propagateConsume() {
	m.consumed = map[FuncID][]bool{}
	m.released = map[FuncID][]bool{}
	for id, fi := range m.Funcs {
		c := make([]bool, len(fi.Params))
		r := make([]bool, len(fi.Params))
		for i, p := range fi.Params {
			r[i] = p.Released
			c[i] = p.Released || p.HandedOff
		}
		m.consumed[id] = c
		m.released[id] = r
	}
	apply := func(id FuncID) bool {
		changed := false
		fi := m.Funcs[id]
		for i, p := range fi.Params {
			for _, pass := range p.PassedTo {
				cc, ok := m.consumed[pass.Callee]
				if !ok || pass.Param >= len(cc) {
					// Unknown callee or position: conservative handoff.
					if !m.consumed[id][i] {
						m.consumed[id][i] = true
						changed = true
					}
					continue
				}
				if cc[pass.Param] && !m.consumed[id][i] {
					m.consumed[id][i] = true
					changed = true
				}
				if rr := m.released[pass.Callee]; pass.Param < len(rr) && rr[pass.Param] && !m.released[id][i] {
					m.released[id][i] = true
					changed = true
				}
			}
		}
		return changed
	}
	for _, scc := range condense(m.Funcs) {
		for changed := true; changed; {
			changed = false
			for _, id := range scc {
				if apply(id) {
					changed = true
				}
			}
			if len(scc) == 1 {
				break // no cycle: one pass suffices
			}
		}
	}
}

// propagateLane runs a BFS from every lane root simultaneously,
// recording for each reached function the predecessor edge of a
// shortest path. Roots are visited in sorted order and successors in
// recorded (source) order, so the chosen path is deterministic.
// Deferred edges (serial ScheduleCall* callbacks) and the des kernel
// are not traversed.
func (m *Module) propagateLane() {
	m.laneVia = map[FuncID]laneStep{}
	m.laneRoot = map[FuncID]bool{}
	var queue []FuncID
	ids := make([]FuncID, 0, len(m.Funcs))
	for id := range m.Funcs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if m.Funcs[id].LaneRoot {
			m.laneRoot[id] = true
			queue = append(queue, id)
		}
	}
	// Lane-entry edges (fn handed to ScheduleLaneDirect/LogIntent) make
	// their targets roots too, even when the caller is serial.
	for _, id := range ids {
		for _, c := range m.Funcs[id].Calls {
			if c.Lane && !m.laneRoot[c.Callee] {
				if _, ok := m.Funcs[c.Callee]; ok {
					m.laneRoot[c.Callee] = true
					queue = append(queue, c.Callee)
				}
			}
		}
	}
	seen := map[FuncID]bool{}
	for _, id := range queue {
		seen[id] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range m.Funcs[cur].Calls {
			if c.Deferred {
				continue // serial callback: leaves lane context
			}
			callee, ok := m.Funcs[c.Callee]
			if !ok || seen[c.Callee] {
				continue
			}
			if kernelPackage(callee.Pkg) {
				// Calls into the des kernel (LogIntent, the lane push
				// path) are the sanctioned mailboxes; the kernel's own
				// hub mutations are its contract, not a lane violation.
				// Kernel lane roots are still checked — they enter the
				// BFS as roots, not through this edge.
				continue
			}
			seen[c.Callee] = true
			m.laneVia[c.Callee] = laneStep{from: cur, site: c.Site}
			queue = append(queue, c.Callee)
		}
	}
}

// LaneReachable reports whether id executes in lane context.
func (m *Module) LaneReachable(id FuncID) bool {
	if m.laneRoot[id] {
		return true
	}
	_, ok := m.laneVia[id]
	return ok
}

// LanePath returns the shortest call path from a lane root to id as
// display names (root first, id last) plus the call sites along it
// (one per edge). A root returns just its own name and no sites.
func (m *Module) LanePath(id FuncID) (names []string, sites []Site) {
	for !m.laneRoot[id] {
		step, ok := m.laneVia[id]
		if !ok {
			return nil, nil
		}
		names = append([]string{m.Funcs[id].Name}, names...)
		sites = append([]Site{step.site}, sites...)
		id = step.from
	}
	names = append([]string{m.Funcs[id].Name}, names...)
	return names, sites
}

// Consumes reports whether callee id transitively releases or hands
// off its param'th parameter. Unknown ids are conservatively consuming
// (matches the old intraprocedural assumption for unresolvable calls).
func (m *Module) Consumes(id FuncID, param int) bool {
	c, ok := m.consumed[id]
	if !ok || param >= len(c) {
		return true
	}
	return c[param]
}

// Releases reports whether callee id transitively releases its
// param'th parameter (false for unknown ids — only a positive release
// fact earns the stronger wording).
func (m *Module) Releases(id FuncID, param int) bool {
	r, ok := m.released[id]
	if !ok || param >= len(r) {
		return false
	}
	return r[param]
}

// Func returns the fact record for id, or nil.
func (m *Module) Func(id FuncID) *FuncInfo { return m.Funcs[id] }

// RenderPath joins a LanePath name list into the diagnostic form.
func RenderPath(names []string) string { return strings.Join(names, " → ") }

// --- fact cache -------------------------------------------------------

func resolveCacheDir() string {
	if summaryCacheDir != "" {
		return summaryCacheDir
	}
	if env := os.Getenv("HVDBLINT_CACHE"); env != "" {
		return env
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "hvdblint")
}

// packageCacheKey hashes the engine version, import path, and every
// file's name and contents. Types and imports do not participate: a
// dependency change that alters resolution also changes this package's
// analysis inputs only through its own sources' meaning, and the
// engine records only module-local resolved edges whose targets are
// re-validated during propagation — an edge into a function that no
// longer exists simply propagates nothing.
func packageCacheKey(pkg *Package) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00", summaryEngineVersion, pkg.Types.Path())
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		fmt.Fprintf(h, "%s\x00", name)
		data, err := os.ReadFile(name)
		if err != nil {
			return "" // unreadable source (in-memory test package): no caching
		}
		h.Write(data)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

func readFactCache(dir, key string) ([]*FuncInfo, bool) {
	if key == "" {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var funcs []*FuncInfo
	if err := json.Unmarshal(data, &funcs); err != nil {
		return nil, false
	}
	return funcs, true
}

func writeFactCache(dir, key string, funcs []*FuncInfo) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(funcs)
	if err != nil {
		return
	}
	tmp := filepath.Join(dir, key+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(dir, key+".json"))
}
