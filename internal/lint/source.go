package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadDir parses every non-test .go file in dir as one package with
// the given import path and type-checks it from source. It is the
// loader behind the linttest golden suites: testdata packages live
// outside the module proper (the go tool ignores testdata directories)
// but still need full type information for the analyzers.
func LoadDir(importPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return checkFiles(importPath, dir, fset, files)
}

// AnalyzeSource type-checks one in-memory file and runs the given
// analyzers (all of them when none are given) — the programmatic
// entry point for examples and quick experiments:
//
//	res, err := lint.AnalyzeSource("repro/internal/demo", "demo.go", src)
func AnalyzeSource(importPath, filename, src string, analyzers ...*Analyzer) (*Result, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	pkg, err := checkFiles(importPath, ".", fset, []*ast.File{f})
	if err != nil {
		return nil, err
	}
	return Analyze([]*Package{pkg}, analyzers...), nil
}

func checkFiles(importPath, srcDir string, fset *token.FileSet, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importerFrom{newImporter(fset, nil), srcDir}}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: importPath,
		Dir:        srcDir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
