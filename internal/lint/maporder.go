package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags `for range` over a map whose per-element effect
// escapes the loop into an ordering-sensitive sink. Go randomizes map
// iteration order per range statement, so any such escape makes
// simulation output depend on the runtime's hash seed — the exact bug
// class behind the PR 3 transmission-scheduling and PR 5
// greedy-tree-destination regressions.
//
// Sinks (see DESIGN.md "Determinism lint" for the model):
//
//   - scheduling or transmission calls (des.Simulator.Schedule*/After*/
//     Every, network Broadcast/Unicast/Send/SendLogical): each send
//     consumes loss-stream draws and sequence numbers in loop order;
//   - appends to a slice declared outside the loop that the enclosing
//     function never sorts (the collect-then-sort idiom — sort.*,
//     slices.Sort*, network.SortedIDs, network.Children,
//     membership.MTSummaryHIDs — is recognized and exempt); per-key
//     appends (dst[k] = append(dst[k], ...)) are order-free and exempt;
//   - emitted output (fmt.Fprintf and friends, Write/WriteString):
//     table rows render in loop order;
//   - floating-point compound assignment to an outer variable: float
//     addition is not associative, so even a "commutative" sum is
//     order-observable in the last ulp;
//   - Add/Merge on an internal/stats accumulator (Sample, LogHist):
//     both fold observations into a float sum behind the method call,
//     so they are the same hidden float reduction — and for the
//     retained-sample types the order is fully observable (percentiles
//     interpolate in insertion order). LogHist bin counts merge
//     commutatively, but its exact-mean sum does not.
//
// Integer counters, map/set writes, and per-iteration locals are not
// sinks. Since PR 10 the check also follows the loop element one call
// deep: passing it to a module-local helper whose summary records a
// direct ordered sink (a Schedule wrapper, an emit helper, a stats
// fold) is the same escape, reported with the helper named. A
// legitimately unordered site carries `//hvdb:unordered <reason>` on
// the `for` line or the line above.
var MapOrder = &Analyzer{
	Name:        "maporder",
	SuppressKey: "unordered",
	Doc: "flag map iteration whose per-element effect escapes into an " +
		"ordering-sensitive sink (scheduling, unsorted collection, emitted " +
		"output, float reduction)",
	Run: runMapOrder,
}

// scheduleSinks are callee names that put the loop element into the
// simulation's total order: DES scheduling and packet transmission.
var scheduleSinks = map[string]bool{
	"Schedule": true, "ScheduleCall": true, "ScheduleCallU": true,
	"ScheduleCallSeq": true, "ScheduleCallSeqU": true,
	"After": true, "AfterCall": true, "AfterCallU": true, "Every": true,
	"Broadcast": true, "Unicast": true, "Send": true, "SendLogical": true,
}

// emitSinks are callee names that render output in loop order.
var emitSinks = map[string]bool{
	"Fprintf": true, "Fprintln": true, "Fprint": true,
	"Printf": true, "Println": true, "Print": true,
	"WriteString": true, "WriteByte": true, "WriteRune": true, "Write": true,
}

// sortNames are callee names (beyond the Sort*/Sorted* prefixes) that
// establish a deterministic order over their slice argument.
var sortNames = map[string]bool{
	"Slice": true, "SliceStable": true, "Stable": true,
	"Strings": true, "Ints": true, "Float64s": true,
	"SortedIDs": true, "Children": true, "MTSummaryHIDs": true,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				mapOrderFunc(pass, fd.Body)
			}
		}
	}
}

// mapOrderFunc checks one function body; nested function literals
// recurse so their loops resolve collect-then-sort against the literal
// they belong to.
func mapOrderFunc(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			mapOrderFunc(pass, v.Body)
			return false
		case *ast.RangeStmt:
			if isMapType(pass, v.X) {
				checkMapRange(pass, v, body)
			}
		}
		return true
	})
}

func isMapType(pass *Pass, x ast.Expr) bool {
	t := pass.Info.TypeOf(x)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, encl *ast.BlockStmt) {
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}

	var sinks []string
	seen := map[string]bool{}
	addSink := func(s string) {
		if !seen[s] {
			seen[s] = true
			sinks = append(sinks, s)
		}
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			name := calleeName(v)
			switch {
			case scheduleSinks[name]:
				addSink(fmt.Sprintf("calls %s, entering the event/transmission order", name))
			case emitSinks[name]:
				addSink(fmt.Sprintf("emits output via %s", name))
			case (name == "Add" || name == "Merge") && isStatsAccumCall(pass, v):
				addSink(fmt.Sprintf("%s on a stats accumulator folds a float sum, order-sensitive in the last ulp", name))
			default:
				// One level through a module-local helper: if the loop
				// element flows into a callee whose summary records
				// direct ordered sinks, the effect escapes just the same.
				if pass.Module == nil || !mentionsAny(pass, v, loopVars) {
					break
				}
				callee := resolveCallee(pass.Info, v)
				if callee == nil || !moduleLocal(pass.Pkg.Path(), callee) {
					break
				}
				if fi := pass.Module.Func(funcIDOf(callee)); fi != nil {
					for _, s := range fi.Sinks {
						addSink(fmt.Sprintf("calls %s, which %s", fi.Name, s))
					}
				}
			}
		case *ast.AssignStmt:
			checkAssign(pass, v, rs, encl, loopVars, addSink)
		}
		return true
	})

	if len(sinks) > 0 {
		pass.Reportf(rs.For,
			"range over map: %s; iterate a sorted slice (network.SortedIDs) or annotate //hvdb:unordered <reason>",
			strings.Join(sinks, "; "))
	}
}

func checkAssign(pass *Pass, as *ast.AssignStmt, rs *ast.RangeStmt, encl *ast.BlockStmt, loopVars map[types.Object]bool, addSink func(string)) {
	// Floating-point reduction into an outer variable.
	switch as.Tok.String() {
	case "+=", "-=", "*=", "/=":
		if len(as.Lhs) == 1 && isFloat(pass, as.Lhs[0]) && declaredOutside(pass, as.Lhs[0], rs) {
			addSink(fmt.Sprintf("float reduction %s %s ... is order-sensitive in the last ulp",
				exprString(as.Lhs[0]), as.Tok))
		}
	}
	// Appends building an ordered slice from unordered iteration.
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || calleeName(call) != "append" || i >= len(as.Lhs) {
			continue
		}
		dst := as.Lhs[i]
		if !declaredOutside(pass, dst, rs) {
			continue // per-iteration local: order-free
		}
		if idx, ok := dst.(*ast.IndexExpr); ok && mentionsAny(pass, idx.Index, loopVars) {
			continue // dst[k] = append(dst[k], ...): per-key, order-free
		}
		if sortedInFunc(pass, encl, dst) {
			continue // collect-then-sort idiom
		}
		addSink(fmt.Sprintf("appends to %s, which this function never sorts", exprString(dst)))
	}
}

// declaredOutside reports whether the assignment destination outlives
// one loop iteration: an identifier declared before the range
// statement, or any field/index/global destination.
func declaredOutside(pass *Pass, dst ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := dst.(*ast.Ident)
	if !ok {
		return true
	}
	obj := pass.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// sortedInFunc reports whether the enclosing function passes dst to a
// recognized sorting call anywhere (flow-insensitively): sort.*,
// slices.Sort*, or a repo sorted-accessor (SortedIDs, Children,
// MTSummaryHIDs, any Sort*/Sorted* name).
func sortedInFunc(pass *Pass, encl *ast.BlockStmt, dst ast.Expr) bool {
	want := exprString(dst)
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if strings.Contains(exprString(arg), want) {
				found = true
				break
			}
		}
		return true
	})
	return found
}

func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	name := calleeName(call)
	if strings.HasPrefix(name, "Sort") || strings.HasPrefix(name, "sort") {
		return true
	}
	if !sortNames[name] {
		return false
	}
	// The ambiguous bare names (Slice, Strings, ...) must come from the
	// sort or slices packages; the repo accessor names stand alone.
	switch name {
	case "SortedIDs", "Children", "MTSummaryHIDs":
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.Info.ObjectOf(x).(*types.PkgName)
	if !ok {
		return false
	}
	switch pkg.Imported().Path() {
	case "sort", "slices":
		return true
	}
	return false
}

// isStatsAccumCall reports whether the call's receiver is a type from
// the internal/stats package — the accumulators whose Add/Merge fold a
// float sum. Matching by package rather than by type name keeps future
// accumulators (digest types, histograms) covered automatically.
func isStatsAccumCall(pass *Pass, call *ast.CallExpr) bool {
	return isStatsAccumCallInfo(pass.Info, call)
}

func isFloat(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func mentionsAny(pass *Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[pass.Info.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// calleeName extracts the called function or method name: Broadcast
// from w.Broadcast(...), append from append(...).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// exprString renders a small expression for matching and messages.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[" + exprString(v.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	case *ast.UnaryExpr:
		return v.Op.String() + exprString(v.X)
	case *ast.SliceExpr:
		return exprString(v.X) + "[...]"
	case *ast.BasicLit:
		return v.Value
	}
	return "?"
}
