package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// SeedSource bans ambient entropy and wall-clock reads in simulation
// packages. Every random draw must come from an internal/xrand stream
// whose seed derives positionally from the run seed
// (runner.DeriveSeed), and simulated time comes from the des clock —
// otherwise a rerun with the same seed is not byte-identical, which
// breaks the repository's standing determinism contract and would
// surface as cross-shard merge divergence in the sharded-DES work.
//
// Flagged in simulation packages (repro and repro/internal/... except
// xrand itself and the lint suite):
//
//   - importing math/rand, math/rand/v2, or crypto/rand;
//   - calling time.Now, Since, Until, Sleep, After, Tick, NewTicker,
//     NewTimer, or AfterFunc.
//
// Wall-clock measurement that never feeds simulation state (benchmark
// timing around a run) carries `//hvdb:wallclock <reason>`.
var SeedSource = &Analyzer{
	Name:        "seedsource",
	SuppressKey: "wallclock",
	Doc: "ban time.Now and math/rand / crypto/rand in simulation packages; " +
		"randomness flows through internal/xrand, time through the des clock",
	Run: runSeedSource,
}

// bannedImports are entropy sources outside the seeded xrand streams.
var bannedImports = map[string]string{
	"math/rand":    "use internal/xrand streams seeded via runner.DeriveSeed",
	"math/rand/v2": "use internal/xrand streams seeded via runner.DeriveSeed",
	"crypto/rand":  "simulation randomness must be reproducible; use internal/xrand",
}

// wallClockFuncs are the time package's wall-clock reads and timers.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true,
}

// simulationPackage reports whether path is governed by the
// determinism contract. CLIs under cmd/ drive runs and may time them;
// xrand is the sanctioned entropy source; the lint suite is tooling.
func simulationPackage(path string) bool {
	if path == "repro" {
		return true
	}
	if !strings.HasPrefix(path, "repro/internal/") {
		return false
	}
	switch strings.TrimPrefix(path, "repro/internal/") {
	case "xrand", "lint", "lint/linttest":
		return false
	}
	return true
}

func runSeedSource(pass *Pass) {
	if !simulationPackage(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := bannedImports[path]; ok {
				pass.Reportf(spec.Pos(), "import %s in a simulation package: %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := pass.Info.ObjectOf(x).(*types.PkgName)
			if !ok || pkg.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock in a simulation package; simulated time comes from the des clock (annotate //hvdb:wallclock <reason> for benchmark timing)",
				sel.Sel.Name)
			return true
		})
	}
}
