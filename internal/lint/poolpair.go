package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolPair is a flow-insensitive lifecycle check for pooled acquires:
// within a function, every value returned by an Acquire* call
// (network.AcquirePacket and friends) must reach a Release* call or a
// recognized ownership handoff. The dynamic counterpart —
// network.PooledInFlight()==0 asserted at teardown — only fires after
// a whole run; this catches the leak at the line that drops the last
// reference.
//
// A handoff is any use that can transfer the reference out of the
// function: returning the value, passing it to a call (Broadcast,
// AdoptPacket, a constructor), storing it into a field, slice, map, or
// other variable, sending it on a channel, or taking its address.
// Reads (p.Dst, p.Size()) keep the reference local. A function whose
// acquired value is neither released nor handed off definitely leaks
// one pool reference per call.
//
// Since PR 10, passing the value to a *module-local* call is a handoff
// only when the callee's propagated summary actually releases or
// re-hands-off that parameter; a call whose summary does neither is
// refuted, and if no other use consumes the reference the leak is
// reported at that call site — the line where the reference dies.
// Values scheduled into callbacks through the ScheduleCall* family are
// traced into the callback's first parameter the same way. Calls into
// other modules, dynamic calls, and variadic tails stay conservative
// handoffs, exactly the old behavior.
//
// Deliberate leak-or-transfer sites the analyzer cannot see through
// carry `//hvdb:handoff <reason>`.
var PoolPair = &Analyzer{
	Name:        "poolpair",
	SuppressKey: "handoff",
	Doc: "every pooled Acquire* in a function must reach a Release* or an " +
		"ownership handoff (return, store, call argument) on some path",
	Run: runPoolPair,
}

func runPoolPair(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				poolPairFunc(pass, fd.Body)
			}
		}
	}
}

func isAcquireCall(call *ast.CallExpr) bool {
	return strings.HasPrefix(calleeName(call), "Acquire")
}

func poolPairFunc(pass *Pass, body *ast.BlockStmt) {
	// Pass 1: find acquire sites and how their results bind.
	acquired := map[types.Object]*ast.CallExpr{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAcquireCall(call) {
			return true
		}
		switch parent := parentOf(stack).(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "%s result discarded: the pool reference can never be released", calleeName(call))
		case *ast.AssignStmt:
			for i, rhs := range parent.Rhs {
				if rhs != ast.Expr(call) || i >= len(parent.Lhs) {
					continue
				}
				id, ok := parent.Lhs[i].(*ast.Ident)
				if !ok {
					continue // field/index destination: a store, i.e. a handoff
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "%s result assigned to _: the pool reference can never be released", calleeName(call))
					continue
				}
				if obj := pass.Info.ObjectOf(id); obj != nil {
					acquired[obj] = call
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range parent.Values {
				if rhs != ast.Expr(call) || i >= len(parent.Names) {
					continue
				}
				if obj := pass.Info.ObjectOf(parent.Names[i]); obj != nil {
					acquired[obj] = call
				}
			}
		}
		return true
	})
	if len(acquired) == 0 {
		return
	}

	// Pass 2: classify every other use of each acquired variable. A
	// call argument consults the callee's propagated summary when one
	// exists: a callee that neither releases nor hands off the
	// parameter refutes the handoff instead of absorbing the
	// reference.
	type refutation struct {
		pos    token.Pos
		callee string
		param  string
	}
	type fate struct {
		released, handedOff bool
		refuted             []refutation
	}
	fates := map[types.Object]*fate{}
	for obj := range acquired {
		fates[obj] = &fate{}
	}
	stack = stack[:0]
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		f, tracked := fates[obj]
		if !tracked {
			return true
		}
		switch parent := parentOf(stack).(type) {
		case *ast.CallExpr:
			name := calleeName(parent)
			for argPos, arg := range parent.Args {
				if arg != ast.Expr(id) {
					continue
				}
				if strings.HasPrefix(name, "Release") {
					f.released = true
					continue
				}
				if sched, ok := scheduleArgFuncs[name]; ok && argPos == sched.argIdx {
					// Scheduled into a callback: the reference reaches the
					// callback's first parameter.
					target := callbackFuncID(pass.Pkg.Path(), pass.Fset, pass.Info, parent.Args[sched.fnIdx])
					if target == "" || pass.Module == nil || pass.Module.Func(target) == nil {
						f.handedOff = true // dynamic callback: conservative
					} else if pass.Module.Consumes(target, 0) {
						f.handedOff = true
					} else {
						f.refuted = append(f.refuted, refutation{
							pos: parent.Pos(), callee: pass.Module.Func(target).Name, param: paramDisplayName(pass.Module.Func(target), 0),
						})
					}
					continue
				}
				callee := resolveCallee(pass.Info, parent)
				if callee == nil || pass.Module == nil || !moduleLocal(pass.Pkg.Path(), callee) {
					f.handedOff = true // dynamic or extra-module call: conservative
					continue
				}
				sig, _ := callee.Type().(*types.Signature)
				if sig == nil || argPos >= sig.Params().Len() || (sig.Variadic() && argPos >= sig.Params().Len()-1) {
					f.handedOff = true // variadic tail: position not summarizable
					continue
				}
				cid := funcIDOf(callee)
				fi := pass.Module.Func(cid)
				if fi == nil {
					f.handedOff = true // no facts (body elsewhere): conservative
					continue
				}
				if pass.Module.Consumes(cid, argPos) {
					f.handedOff = true
				} else {
					f.refuted = append(f.refuted, refutation{pos: parent.Pos(), callee: fi.Name, param: paramDisplayName(fi, argPos)})
				}
			}
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
			f.handedOff = true
		case *ast.UnaryExpr:
			if parent.Op.String() == "&" {
				f.handedOff = true
			}
		case *ast.AssignStmt:
			for _, rhs := range parent.Rhs {
				if rhs == ast.Expr(id) {
					f.handedOff = true // stored into another variable/field
				}
			}
		}
		return true
	})
	for obj, f := range fates {
		if f.released || f.handedOff {
			continue
		}
		call := acquired[obj]
		if len(f.refuted) > 0 {
			// The reference's only exits were calls whose summaries
			// refuse ownership: the leak happens at the first such call.
			r := f.refuted[0]
			pass.Reportf(r.pos,
				"%s passes pooled %s to %s, whose summary neither Release*s nor hands off %s — the reference dies in the callee; release here or annotate //hvdb:handoff <reason>",
				calleeName(call), obj.Name(), r.callee, r.param)
			continue
		}
		pass.Reportf(call.Pos(),
			"%s acquired into %s but never Release*d or handed off in this function (PooledInFlight would only catch this at teardown); annotate //hvdb:handoff <reason> if ownership transfers invisibly",
			calleeName(call), obj.Name())
	}
}

// paramDisplayName renders a callee parameter for diagnostics.
func paramDisplayName(fi *FuncInfo, i int) string {
	if i < len(fi.Params) && fi.Params[i].Name != "" {
		return "parameter " + fi.Params[i].Name
	}
	return fmt.Sprintf("parameter %d", i)
}

func parentOf(stack []ast.Node) ast.Node {
	if len(stack) < 2 {
		return nil
	}
	return stack[len(stack)-2]
}
