// Package linttest is the golden-file harness for the determinism-lint
// analyzers, in the style of golang.org/x/tools' analysistest (which
// the offline container cannot vendor): a testdata directory holds one
// package of .go files whose lines carry expectation comments, and Run
// checks the analyzers' diagnostics against them exactly.
//
// An expectation is a comment of the form
//
//	// want "substring or regexp" ["another" ...]
//
// on the line the diagnostic is reported at. Every expectation must be
// matched by a diagnostic and every diagnostic by an expectation;
// suppressed diagnostics (covered by a reasoned //hvdb:<key>
// annotation) must NOT have expectations — the point of a suppression
// is that the site is clean.
package linttest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// expectation is one parsed want comment.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads the testdata package rooted at dir under the given import
// path (use a repro/internal/... path so the analyzers treat it as a
// simulation package) and checks the analyzers' diagnostics against
// the package's want comments.
func Run(t *testing.T, importPath, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkg, err := lint.LoadDir(importPath, dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	res := lint.Analyze([]*lint.Package{pkg}, analyzers...)

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(t, pkg, c)...)
			}
		}
	}

	// Wants match against the message plus the rendered call path (when
	// an interprocedural analyzer attached one), so corpus cases can
	// assert the path an engine diagnostic reports, not just its text.
	for _, d := range res.Diags {
		if !matchWant(wants, d.File, d.Line, matchText(d)) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, d := range res.Suppressed {
		if matchWant(wants, d.File, d.Line, matchText(d)) {
			t.Errorf("suppressed diagnostic has a want comment (suppressed sites are clean): %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func parseWants(t *testing.T, pkg *lint.Package, c *ast.Comment) []*expectation {
	m := wantRE.FindStringSubmatch(c.Text)
	if m == nil {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	quoted := quotedRE.FindAllStringSubmatch(m[1], -1)
	if len(quoted) == 0 {
		t.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
		return nil
	}
	var out []*expectation
	for _, q := range quoted {
		pat := strings.ReplaceAll(q[1], `\"`, `"`)
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
			continue
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
	}
	return out
}

func matchText(d lint.Diagnostic) string {
	if d.CallPath != "" {
		return d.Message + " [" + d.CallPath + "]"
	}
	return d.Message
}

func matchWant(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	// A second diagnostic on a line may legitimately re-match an
	// already-consumed pattern (e.g. two analyzers, one want each);
	// fall back to any matching want on the line.
	for _, w := range wants {
		if w.file == file && w.line == line && w.pattern.MatchString(msg) {
			return true
		}
	}
	return false
}

// Fprint is a debugging aid: it renders a Result the way the hvdblint
// CLI does, one diagnostic per line, for t.Log during suite authoring.
func Fprint(res *lint.Result) string {
	var b strings.Builder
	for _, d := range res.Diags {
		fmt.Fprintf(&b, "%s\n", d)
	}
	for _, d := range res.Suppressed {
		fmt.Fprintf(&b, "%s [suppressed: %s]\n", d, d.Reason)
	}
	return b.String()
}
