package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ShardSafe guards the sharded kernel's isolation discipline: code that
// can execute inside a parallel window (a "lane function") must confine
// its writes to the per-shard lane state it was handed, to node-local
// state, or to engine mailboxes (LogIntent / ScheduleLaneDirect).
// Writing a shared hub object — the Network, a Router, the Simulator,
// the Sharded engine — or any package-level variable from lane context
// is a cross-shard data race the race detector only catches when two
// lanes happen to collide; this flags the write at its source.
//
// A lane function is one whose receiver or parameters include a
// per-shard lane-state type (*laneState, *rlane, *Lane), or a function
// literal scheduled onto a lane (an argument to ScheduleLaneDirect or
// LogIntent). Within one, the analyzer reports:
//
//   - assignments or ++/-- through a pointer to a hub type (Network,
//     Router, Simulator, Sharded, Mux);
//   - assignments or ++/-- to package-level variables.
//
// Writes through the lane-state parameter itself, through locals, and
// through node-scoped objects stay unflagged — those are the sanctioned
// channels. A flagged write that is provably reached only in serial
// context (a consume path the network pins to the global lane, say)
// carries `//hvdb:serialonly <reason>` citing the argument.
//
// Since PR 10 the check is interprocedural: a hub/global write is
// flagged when its function is *transitively reachable* from lane
// context over the module call graph (lane roots, plus closures and
// named functions handed to ScheduleLaneDirect / LogIntent), and the
// diagnostic carries the shortest call path from the lane root to the
// write. The //hvdb:serialonly annotation is honored at the write site
// itself or at any call site along that path — annotating the
// lane-entry edge exempts everything it guards. Deferred serial
// callbacks (the ScheduleCall* family) and the des kernel's own
// internals are not traversed: the former leave lane context by
// construction, the latter is the trusted runtime.
//
// Only the packages that participate in sharding are checked; the rest
// of the tree never runs inside a window.
var ShardSafe = &Analyzer{
	Name:        "shardsafe",
	SuppressKey: "serialonly",
	Doc: "lane-context code (functions taking *laneState/*rlane/*Lane, or closures " +
		"scheduled onto lanes) must not write hub objects or package-level state",
	Run: runShardSafe,
}

// shardPackages are the packages whose code can execute inside a
// parallel window (plus the golden corpus).
var shardPackages = map[string]bool{
	"repro/internal/des":      true,
	"repro/internal/network":  true,
	"repro/internal/georoute": true,

	"repro/internal/testdata/shardsafe": true,
}

// laneStateTypes are the per-shard state types whose presence in a
// signature marks a function as lane context.
var laneStateTypes = map[string]bool{
	"laneState": true, // network: per-shard memo/counter/pool state
	"rlane":     true, // georoute: per-shard router scratch
	"Lane":      true, // network.Lane: the shard-local network view
}

// hubTypes are the shared single-instance objects lane code may read
// but never write.
var hubTypes = map[string]bool{
	"Network":   true,
	"Router":    true,
	"Simulator": true,
	"Sharded":   true,
	"Mux":       true,
}

// laneScheduleFuncs take a callback that executes on a lane.
var laneScheduleFuncs = map[string]bool{
	"ScheduleLaneDirect": true,
	"LogIntent":          true,
}

func runShardSafe(pass *Pass) {
	if !shardPackages[pass.Pkg.Path()] || pass.Module == nil {
		return
	}
	m := pass.Module
	ids := make([]FuncID, 0, len(m.Funcs))
	for id, fi := range m.Funcs {
		if fi.Pkg == pass.Pkg.Path() && len(fi.HubWrites) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if !m.LaneReachable(id) {
			continue
		}
		names, sites := m.LanePath(id)
		for _, w := range m.Funcs[id].HubWrites {
			if len(sites) == 0 {
				// The write sits in a lane root itself: the classic
				// intraprocedural finding, reported without a path.
				pass.ReportSitef(w.Site, nil, nil, "%s", directHubWriteMessage(w))
			} else {
				pass.ReportSitef(w.Site, names, sites,
					"lane-reachable helper writes %s; cross-shard shared state must flow through the lane state or a barrier helper (annotate //hvdb:serialonly <reason> at the write or any call site on the path if it never runs inside a window)",
					w.What)
			}
		}
	}
}

// directHubWriteMessage renders the original intraprocedural wording
// for a write inside a lane function proper.
func directHubWriteMessage(w HubWrite) string {
	if strings.HasPrefix(w.What, "package-level ") {
		return fmt.Sprintf("lane context writes %s; cross-shard shared state must flow through the lane state or a barrier helper (annotate //hvdb:serialonly <reason> if this path never runs inside a window)", w.What)
	}
	return fmt.Sprintf("lane context writes %s; confine the mutation to the lane state or log an intent for the barrier (annotate //hvdb:serialonly <reason> if this path never runs inside a window)", w.What)
}

// isLaneStateType matches *T (or T) for a lane-state type name.
func isLaneStateType(t types.Type) bool { return namedTypeIn(t, laneStateTypes) }

// isHubType matches *T (or T) for a hub type name.
func isHubType(t types.Type) bool { return namedTypeIn(t, hubTypes) }

func namedTypeIn(t types.Type, names map[string]bool) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && names[n.Obj().Name()]
}

// rootIdent unwraps a selector/index/deref chain to its base
// identifier: w in w.aux[i].lost, nil for non-chains.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
