package lint

import (
	"go/ast"
	"go/types"
)

// ShardSafe guards the sharded kernel's isolation discipline: code that
// can execute inside a parallel window (a "lane function") must confine
// its writes to the per-shard lane state it was handed, to node-local
// state, or to engine mailboxes (LogIntent / ScheduleLaneDirect).
// Writing a shared hub object — the Network, a Router, the Simulator,
// the Sharded engine — or any package-level variable from lane context
// is a cross-shard data race the race detector only catches when two
// lanes happen to collide; this flags the write at its source.
//
// A lane function is one whose receiver or parameters include a
// per-shard lane-state type (*laneState, *rlane, *Lane), or a function
// literal scheduled onto a lane (an argument to ScheduleLaneDirect or
// LogIntent). Within one, the analyzer reports:
//
//   - assignments or ++/-- through a pointer to a hub type (Network,
//     Router, Simulator, Sharded, Mux);
//   - assignments or ++/-- to package-level variables.
//
// Writes through the lane-state parameter itself, through locals, and
// through node-scoped objects stay unflagged — those are the sanctioned
// channels. A flagged write that is provably reached only in serial
// context (a consume path the network pins to the global lane, say)
// carries `//hvdb:serialonly <reason>` citing the argument.
//
// Only the packages that participate in sharding are checked; the rest
// of the tree never runs inside a window.
var ShardSafe = &Analyzer{
	Name:        "shardsafe",
	SuppressKey: "serialonly",
	Doc: "lane-context code (functions taking *laneState/*rlane/*Lane, or closures " +
		"scheduled onto lanes) must not write hub objects or package-level state",
	Run: runShardSafe,
}

// shardPackages are the packages whose code can execute inside a
// parallel window (plus the golden corpus).
var shardPackages = map[string]bool{
	"repro/internal/des":      true,
	"repro/internal/network":  true,
	"repro/internal/georoute": true,

	"repro/internal/testdata/shardsafe": true,
}

// laneStateTypes are the per-shard state types whose presence in a
// signature marks a function as lane context.
var laneStateTypes = map[string]bool{
	"laneState": true, // network: per-shard memo/counter/pool state
	"rlane":     true, // georoute: per-shard router scratch
	"Lane":      true, // network.Lane: the shard-local network view
}

// hubTypes are the shared single-instance objects lane code may read
// but never write.
var hubTypes = map[string]bool{
	"Network":   true,
	"Router":    true,
	"Simulator": true,
	"Sharded":   true,
	"Mux":       true,
}

// laneScheduleFuncs take a callback that executes on a lane.
var laneScheduleFuncs = map[string]bool{
	"ScheduleLaneDirect": true,
	"LogIntent":          true,
}

func runShardSafe(pass *Pass) {
	if !shardPackages[pass.Pkg.Path()] {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if laneFunc(pass, fd) {
				checkLaneBody(pass, fd.Body, laneParams(pass, fd))
			} else {
				// Serial functions may still hand literals to a lane.
				findLaneLiterals(pass, fd.Body)
			}
		}
	}
}

// laneFunc reports whether a declaration's receiver or parameters
// include a lane-state type.
func laneFunc(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			if isLaneStateType(pass.Info.TypeOf(field.Type)) {
				return true
			}
		}
	}
	for _, field := range fd.Type.Params.List {
		if isLaneStateType(pass.Info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// laneParams collects the lane-state parameter objects of a lane
// function: writes rooted at these are the sanctioned channel.
func laneParams(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	collect := func(list *ast.FieldList) {
		if list == nil {
			return
		}
		for _, field := range list.List {
			if !isLaneStateType(pass.Info.TypeOf(field.Type)) {
				continue
			}
			for _, name := range field.Names {
				if obj := pass.Info.ObjectOf(name); obj != nil {
					out[obj] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	return out
}

// isLaneStateType matches *T (or T) for a lane-state type name.
func isLaneStateType(t types.Type) bool { return namedTypeIn(t, laneStateTypes) }

// isHubType matches *T (or T) for a hub type name.
func isHubType(t types.Type) bool { return namedTypeIn(t, hubTypes) }

func namedTypeIn(t types.Type, names map[string]bool) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && names[n.Obj().Name()]
}

// findLaneLiterals scans a serial function for closures scheduled onto
// lanes and checks their bodies as lane context.
func findLaneLiterals(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !laneScheduleFuncs[calleeName(call)] {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				checkLaneBody(pass, lit.Body, nil)
			}
		}
		return true
	})
}

// checkLaneBody flags shared-state writes inside lane context. allowed
// holds the lane-state parameter objects writes may root at.
func checkLaneBody(pass *Pass, body *ast.BlockStmt, allowed map[types.Object]bool) {
	report := func(expr ast.Expr) {
		id := rootIdent(expr)
		if id == nil {
			return
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil || allowed[obj] {
			return
		}
		v, isVar := obj.(*types.Var)
		if !isVar {
			return
		}
		switch {
		case v.Parent() == pass.Pkg.Scope():
			pass.Reportf(expr.Pos(),
				"lane context writes package-level %s; cross-shard shared state must flow through the lane state or a barrier helper (annotate //hvdb:serialonly <reason> if this path never runs inside a window)",
				id.Name)
		case expr != ast.Expr(id) && isHubType(v.Type()):
			pass.Reportf(expr.Pos(),
				"lane context writes shared %s state through %s; confine the mutation to the lane state or log an intent for the barrier (annotate //hvdb:serialonly <reason> if this path never runs inside a window)",
				typeName(v.Type()), id.Name)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				report(lhs)
			}
		case *ast.IncDecStmt:
			report(st.X)
		}
		return true
	})
}

// rootIdent unwraps a selector/index/deref chain to its base
// identifier: w in w.aux[i].lost, nil for non-chains.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
