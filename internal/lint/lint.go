package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// An Analyzer is one static check. It mirrors the golang.org/x/tools
// go/analysis shape (Name, Doc, Run over a Pass) so the suite can move
// onto the upstream framework wholesale if the dependency ever becomes
// available; until then the driver in this package is the multichecker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -json output.
	Name string
	// Doc is the one-paragraph description printed by hvdblint -help.
	Doc string
	// SuppressKey is the annotation key that exempts a flagged line:
	// a comment `//hvdb:<SuppressKey> <reason>` trailing the line or
	// alone on the line directly above it.
	SuppressKey string
	// Run reports diagnostics for one type-checked package.
	Run func(*Pass)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Module is the propagated interprocedural state for the whole
	// Load — call graph, consume bits, lane reachability.
	Module *Module

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportSitef records a diagnostic at a serialized Site (interprocedural
// facts carry positions as Sites, not token.Pos, so they survive the
// summary cache). path renders into the diagnostic's CallPath; sites
// are the call sites along it — a suppression annotation at any of
// them (the lane-entry edge, an intermediate hop) covers the
// diagnostic exactly as one at the reported position does.
func (p *Pass) ReportSitef(site Site, path []string, sites []Site, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		File:     site.File,
		Line:     site.Line,
		Col:      site.Col,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		CallPath: RenderPath(path),
		altSites: sites,
	})
}

// A Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Suppressed reports that a matching //hvdb:<key> annotation
	// covers the line; Reason is the annotation's text.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
	// CallPath renders the interprocedural route to the flagged site
	// ("pkg.Root → pkg.helper → pkg.leaf") when an analyzer reported
	// through the call graph.
	CallPath string `json:"call_path,omitempty"`

	// altSites are the call sites along CallPath; a suppression at any
	// of them also covers this diagnostic.
	altSites []Site
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
	if d.CallPath != "" {
		s += " [" + d.CallPath + "]"
	}
	return s
}

// A Result is the outcome of Analyze: Diags must be empty for the tree
// to be lint-clean; Suppressed records the annotated sites so tooling
// can audit the exemption inventory.
type Result struct {
	// Diags are the unsuppressed diagnostics, sorted by position.
	// They include annotation-policy violations (a bare //hvdb:<key>
	// with no reason), which cannot themselves be suppressed.
	Diags []Diagnostic
	// Suppressed are diagnostics covered by a reasoned annotation.
	Suppressed []Diagnostic
	// Timing breaks down where the wall time went (hvdblint -timing).
	Timing Timing
}

// Timing is the per-phase wall-time breakdown of one Analyze call.
type Timing struct {
	// Summary is the interprocedural engine's build time (fact
	// extraction or cache load, plus propagation).
	Summary time.Duration
	// PerAnalyzer aggregates each analyzer's Run time across packages.
	PerAnalyzer map[string]time.Duration
	// CacheHits / CacheMisses count packages whose facts came from the
	// summary cache vs. fresh extraction.
	CacheHits   int
	CacheMisses int
}

// Analyzers returns the full determinism suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, SeedSource, PoolPair, ShardSafe}
}

// annotationPrefix introduces a suppression comment. The key follows
// immediately (no space, mirroring //go:build), then the reason.
const annotationPrefix = "//hvdb:"

// suppression is one parsed //hvdb:<key> comment.
type suppression struct {
	key    string
	reason string
	file   string
	line   int
	pos    token.Pos
	used   bool
}

// parseSuppressions scans a file's comments for //hvdb:<key> markers.
func parseSuppressions(fset *token.FileSet, f *ast.File) []*suppression {
	var out []*suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, annotationPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, annotationPrefix)
			// Allow linttest want-expectations to share the comment:
			// the reason ends where a `// want` clause begins.
			if i := strings.Index(rest, "// want"); i >= 0 {
				rest = rest[:i]
			}
			key, reason, _ := strings.Cut(rest, " ")
			pos := fset.Position(c.Pos())
			out = append(out, &suppression{
				key:    key,
				reason: strings.TrimSpace(reason),
				file:   pos.Filename,
				line:   pos.Line,
				pos:    c.Pos(),
			})
		}
	}
	return out
}

// Analyze runs the analyzers over the packages and resolves
// suppression annotations. Suppressions are collected module-wide
// before any analyzer runs: an interprocedural diagnostic reported in
// one package can be covered by an annotation on a call site in
// another (the lane-entry edge). A suppression at line L covers
// matching diagnostics at line L (trailing comment) and line L+1
// (comment alone above the flagged statement), at either the reported
// position or any call site on the diagnostic's path.
func Analyze(pkgs []*Package, analyzers ...*Analyzer) *Result {
	if len(analyzers) == 0 {
		analyzers = Analyzers()
	}
	res := &Result{Timing: Timing{PerAnalyzer: map[string]time.Duration{}}}
	// keys are the suppression keys whose usage this run can audit (the
	// selected analyzers); allKeys is the full registry — an annotation
	// for a non-selected analyzer is legitimate, just not auditable in
	// a subset run.
	keys := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		keys[a.SuppressKey] = true
	}
	allKeys := map[string]bool{}
	for _, a := range Analyzers() {
		allKeys[a.SuppressKey] = true
	}
	var sups []*suppression
	fsetOf := map[*suppression]*token.FileSet{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, s := range parseSuppressions(pkg.Fset, f) {
				sups = append(sups, s)
				fsetOf[s] = pkg.Fset
			}
		}
	}

	module := BuildModule(pkgs)
	res.Timing.Summary = module.BuildTime
	res.Timing.CacheHits = module.CacheHits
	res.Timing.CacheMisses = module.CacheMiss

	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Module:   module,
			}
			start := time.Now()
			a.Run(pass)
			res.Timing.PerAnalyzer[a.Name] += time.Since(start)
			for _, d := range pass.diags {
				if s := matchSuppression(sups, a.SuppressKey, d); s != nil && s.reason != "" {
					d.Suppressed, d.Reason = true, s.reason
					s.used = true
					res.Suppressed = append(res.Suppressed, d)
					continue
				}
				res.Diags = append(res.Diags, d)
			}
		}
	}
	// Annotation policy: every annotation carries a reason, and
	// unknown keys are typos, not silent no-ops.
	for _, s := range sups {
		pos := fsetOf[s].Position(s.pos)
		switch {
		case !allKeys[s.key]:
			res.Diags = append(res.Diags, Diagnostic{
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Analyzer: "annotation",
				Message:  fmt.Sprintf("unknown suppression key %q (known: unordered, wallclock, handoff, serialonly)", s.key),
			})
		case !keys[s.key]:
			// Belongs to an analyzer this run didn't select: usage
			// cannot be audited, so neither reason nor staleness is
			// checked here.
		case s.reason == "":
			res.Diags = append(res.Diags, Diagnostic{
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Analyzer: "annotation",
				Message:  fmt.Sprintf("//hvdb:%s needs a reason: every exemption documents why the site is safe", s.key),
			})
		case !s.used:
			res.Diags = append(res.Diags, Diagnostic{
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Analyzer: "annotation",
				Message:  fmt.Sprintf("//hvdb:%s suppresses nothing here; the site is clean, drop the stale annotation", s.key),
			})
		}
	}
	sortDiags(res.Diags)
	sortDiags(res.Suppressed)
	return res
}

func matchSuppression(sups []*suppression, key string, d Diagnostic) *suppression {
	covers := func(s *suppression, file string, line int) bool {
		return s.key == key && s.file == file && (s.line == line || s.line == line-1)
	}
	for _, s := range sups {
		if covers(s, d.File, d.Line) {
			return s
		}
		for _, alt := range d.altSites {
			if alt.valid() && covers(s, alt.File, alt.Line) {
				return s
			}
		}
	}
	return nil
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}
