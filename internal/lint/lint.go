package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. It mirrors the golang.org/x/tools
// go/analysis shape (Name, Doc, Run over a Pass) so the suite can move
// onto the upstream framework wholesale if the dependency ever becomes
// available; until then the driver in this package is the multichecker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -json output.
	Name string
	// Doc is the one-paragraph description printed by hvdblint -help.
	Doc string
	// SuppressKey is the annotation key that exempts a flagged line:
	// a comment `//hvdb:<SuppressKey> <reason>` trailing the line or
	// alone on the line directly above it.
	SuppressKey string
	// Run reports diagnostics for one type-checked package.
	Run func(*Pass)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Suppressed reports that a matching //hvdb:<key> annotation
	// covers the line; Reason is the annotation's text.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// A Result is the outcome of Analyze: Diags must be empty for the tree
// to be lint-clean; Suppressed records the annotated sites so tooling
// can audit the exemption inventory.
type Result struct {
	// Diags are the unsuppressed diagnostics, sorted by position.
	// They include annotation-policy violations (a bare //hvdb:<key>
	// with no reason), which cannot themselves be suppressed.
	Diags []Diagnostic
	// Suppressed are diagnostics covered by a reasoned annotation.
	Suppressed []Diagnostic
}

// Analyzers returns the full determinism suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, SeedSource, PoolPair, ShardSafe}
}

// annotationPrefix introduces a suppression comment. The key follows
// immediately (no space, mirroring //go:build), then the reason.
const annotationPrefix = "//hvdb:"

// suppression is one parsed //hvdb:<key> comment.
type suppression struct {
	key    string
	reason string
	file   string
	line   int
	pos    token.Pos
	used   bool
}

// parseSuppressions scans a file's comments for //hvdb:<key> markers.
func parseSuppressions(fset *token.FileSet, f *ast.File) []*suppression {
	var out []*suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, annotationPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, annotationPrefix)
			// Allow linttest want-expectations to share the comment:
			// the reason ends where a `// want` clause begins.
			if i := strings.Index(rest, "// want"); i >= 0 {
				rest = rest[:i]
			}
			key, reason, _ := strings.Cut(rest, " ")
			pos := fset.Position(c.Pos())
			out = append(out, &suppression{
				key:    key,
				reason: strings.TrimSpace(reason),
				file:   pos.Filename,
				line:   pos.Line,
				pos:    c.Pos(),
			})
		}
	}
	return out
}

// Analyze runs the analyzers over the packages and resolves
// suppression annotations. A suppression at line L covers matching
// diagnostics at line L (trailing comment) and line L+1 (comment alone
// above the flagged statement).
func Analyze(pkgs []*Package, analyzers ...*Analyzer) *Result {
	if len(analyzers) == 0 {
		analyzers = Analyzers()
	}
	res := &Result{}
	for _, pkg := range pkgs {
		var sups []*suppression
		keys := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			keys[a.SuppressKey] = true
		}
		for _, f := range pkg.Files {
			sups = append(sups, parseSuppressions(pkg.Fset, f)...)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			a.Run(pass)
			for _, d := range pass.diags {
				if s := matchSuppression(sups, a.SuppressKey, d); s != nil && s.reason != "" {
					d.Suppressed, d.Reason = true, s.reason
					s.used = true
					res.Suppressed = append(res.Suppressed, d)
					continue
				}
				res.Diags = append(res.Diags, d)
			}
		}
		// Annotation policy: every annotation carries a reason, and
		// unknown keys are typos, not silent no-ops.
		for _, s := range sups {
			pos := pkg.Fset.Position(s.pos)
			switch {
			case !keys[s.key]:
				res.Diags = append(res.Diags, Diagnostic{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Analyzer: "annotation",
					Message:  fmt.Sprintf("unknown suppression key %q (known: unordered, wallclock, handoff, serialonly)", s.key),
				})
			case s.reason == "":
				res.Diags = append(res.Diags, Diagnostic{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Analyzer: "annotation",
					Message:  fmt.Sprintf("//hvdb:%s needs a reason: every exemption documents why the site is safe", s.key),
				})
			case !s.used:
				res.Diags = append(res.Diags, Diagnostic{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Analyzer: "annotation",
					Message:  fmt.Sprintf("//hvdb:%s suppresses nothing here; the site is clean, drop the stale annotation", s.key),
				})
			}
		}
	}
	sortDiags(res.Diags)
	sortDiags(res.Suppressed)
	return res
}

func matchSuppression(sups []*suppression, key string, d Diagnostic) *suppression {
	for _, s := range sups {
		if s.key == key && s.file == d.File && (s.line == d.Line || s.line == d.Line-1) {
			return s
		}
	}
	return nil
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}
