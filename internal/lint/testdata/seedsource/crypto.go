package seedsource

import (
	crand "crypto/rand" // want "import crypto/rand in a simulation package"
	"math/big"
)

// cryptoDraw is irreproducible by construction.
func cryptoDraw() *big.Int {
	n, _ := crand.Int(crand.Reader, big.NewInt(100))
	return n
}
