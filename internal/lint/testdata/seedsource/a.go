// Package seedsource is the golden corpus for the seedsource
// analyzer. The suite loads it under a repro/internal/... import path,
// so it counts as a simulation package.
package seedsource

import (
	"math/rand" // want "import math/rand in a simulation package"
	"time"
)

// ambientDraw uses the global math/rand stream: not reproducible from
// the run seed.
func ambientDraw() int {
	return rand.Intn(6)
}

// wallClockRead leaks host time into simulation state.
func wallClockRead() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

// wallClockSpan compounds it with Since and Sleep.
func wallClockSpan(start time.Time) {
	d := time.Since(start) // want "time.Since reads the wall clock"
	time.Sleep(d)          // want "time.Sleep reads the wall clock"
}

// timerConstructors covers the timer-shaped wall-clock surface: a
// host timer fires on host time, not simulated time, so each one is as
// banned as a bare Now read.
func timerConstructors(stop chan bool) {
	t := time.NewTimer(time.Second) // want "time.NewTimer reads the wall clock"
	defer t.Stop()
	k := time.NewTicker(time.Second) // want "time.NewTicker reads the wall clock"
	defer k.Stop()
	<-time.Tick(time.Second)                  // want "time.Tick reads the wall clock"
	a := time.AfterFunc(time.Second, func() { // want "time.AfterFunc reads the wall clock"
		stop <- true
	})
	defer a.Stop()
}

// durationType only names the time.Duration type — types are not
// entropy; clean.
func durationType(d time.Duration) float64 {
	return d.Seconds()
}

// annotatedTiming is benchmark instrumentation around a finished run:
// the sanctioned exemption.
func annotatedTiming() time.Time {
	return time.Now() //hvdb:wallclock benchmark timing around a finished run, never feeds simulation state
}
