// Package seedsource is the golden corpus for the seedsource
// analyzer. The suite loads it under a repro/internal/... import path,
// so it counts as a simulation package.
package seedsource

import (
	"math/rand" // want "import math/rand in a simulation package"
	"time"
)

// ambientDraw uses the global math/rand stream: not reproducible from
// the run seed.
func ambientDraw() int {
	return rand.Intn(6)
}

// wallClockRead leaks host time into simulation state.
func wallClockRead() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

// wallClockSpan compounds it with Since and Sleep.
func wallClockSpan(start time.Time) {
	d := time.Since(start) // want "time.Since reads the wall clock"
	time.Sleep(d)          // want "time.Sleep reads the wall clock"
}

// durationType only names the time.Duration type — types are not
// entropy; clean.
func durationType(d time.Duration) float64 {
	return d.Seconds()
}

// annotatedTiming is benchmark instrumentation around a finished run:
// the sanctioned exemption.
func annotatedTiming() time.Time {
	return time.Now() //hvdb:wallclock benchmark timing around a finished run, never feeds simulation state
}
