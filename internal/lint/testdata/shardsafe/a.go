// Package shardsafe is the golden corpus for the shardsafe analyzer.
package shardsafe

// The stand-ins mirror the real shapes: Network/Router/Simulator are
// shared hubs (one instance, touched by every lane), laneState/rlane
// are the per-shard states, Lane is the shard-local network view.

type laneState struct {
	lost  uint64
	kinds map[string]uint64
}

type Lane struct {
	idx int
}

type Network struct {
	laneState
	aux     []laneState
	grain   float64
	counter uint64
}

type rlane struct {
	dropped uint64
}

type Router struct {
	Delivered int
	rl        []rlane
}

type Simulator struct{ now float64 }

type engine struct{}

func (e *engine) ScheduleLaneDirect(lane int, at float64, fn func(), arg any, u uint64) {}
func (e *engine) LogIntent(from, to int, at float64, fn func(), arg any, u uint64)      {}
func (e *engine) ScheduleCall(at float64, fn func(arg any), arg any)                    {}

var sharedTotal uint64

// laneAccount writes only through its lane state: clean.
func (w *Network) laneAccount(ls *laneState, kind string, n uint64) {
	ls.lost += n
	ls.kinds[kind] = ls.kinds[kind] + 1
}

// laneCounter mutates the hub through the receiver from lane context.
func (w *Network) laneCounter(ls *laneState, n uint64) {
	ls.lost += n
	w.counter += n // want "writes shared Network state through w"
}

// laneAuxPoke writes a sibling shard's state through the hub.
func (w *Network) laneAuxPoke(ls *laneState, i int) {
	w.aux[i].lost++ // want "writes shared Network state through w"
}

// laneGlobal bumps a package-level tally from lane context.
func laneGlobal(ls *laneState) {
	ls.lost++
	sharedTotal++ // want "writes package-level sharedTotal"
}

// laneRouterWrite mutates the shared router from a per-lane helper.
func (r *Router) laneRouterWrite(rl *rlane) {
	rl.dropped++
	r.Delivered++ // want "writes shared Router state through r"
}

// serialConsume is the sanctioned exemption shape: the write is
// provably serial, so a reasoned annotation covers it.
func (r *Router) serialConsume(rl *rlane) {
	rl.dropped++
	r.Delivered++ //hvdb:serialonly consume deliveries stay on the global lane, never inside a window
}

// laneViewWrite goes through a Lane parameter: the view itself is lane
// state, so writes rooted at it are sanctioned.
func viewLocal(l *Lane) {
	l.idx = 0
}

// scheduledLiteral runs on a lane: its closure must not write shared
// state either.
func scheduledLiteral(e *engine, w *Network) {
	e.ScheduleLaneDirect(1, 2.5, func() {
		w.counter++ // want "writes shared Network state through w"
	}, nil, 0)
	e.LogIntent(0, 1, 3.5, func() {
		sharedTotal = 7 // want "writes package-level sharedTotal"
	}, nil, 0)
}

// serialMutation has no lane-state parameter and is never scheduled
// onto a lane: hub writes are fine in serial context.
func serialMutation(w *Network, r *Router) {
	w.counter++
	w.grain = 0.01
	r.Delivered++
	sharedTotal = 0
}

// localWrites never leave the stack frame: clean.
func localWrites(ls *laneState, s *Simulator) float64 {
	type scratch struct{ n int }
	var sc scratch
	sc.n++
	local := map[string]int{}
	local["x"] = 1
	ls.lost++
	return s.now // reads of shared state are always fine
}

// laneSimWrite advances the shared clock from lane context.
func laneSimWrite(ls *laneState, s *Simulator, t float64) {
	s.now = t // want "writes shared Simulator state through s"
}
