package shardsafe

// Cross-function cases for the interprocedural engine: hub writes
// buried below helper calls are reachable from lane context over the
// call graph, and the diagnostic names the path.

// bumpGrain looks serial in isolation; it is flagged because lane
// context reaches it through laneDeep → midHop, and the diagnostic
// carries that path.
func (w *Network) bumpGrain() {
	w.grain++ // want "lane-reachable helper writes shared Network state through w.*laneDeep.*midHop.*bumpGrain"
}

func (w *Network) midHop() { w.bumpGrain() }

// laneDeep is the lane root of the buried-write chain.
func (w *Network) laneDeep(ls *laneState) {
	ls.lost++
	w.midHop()
}

// guardedTally's write is covered by the serialonly annotation on its
// only lane-entry call site (in laneGuarded below): annotating the
// edge exempts everything it guards, so the write line has no want.
func (w *Network) guardedTally() {
	w.counter++
}

// laneGuarded documents that the tally call only happens on the global
// lane (the window prepare path pins it there).
func (w *Network) laneGuarded(ls *laneState, serial bool) {
	ls.lost++
	if serial {
		w.guardedTally() //hvdb:serialonly the serial flag is only set by the barrier, never inside a window
	}
}

// laneDefer schedules a *serial* callback from lane context: the
// ScheduleCall family runs on the serial loop after the window, so the
// callback's hub write is sanctioned (no want).
func laneDefer(ls *laneState, e *engine, w *Network) {
	ls.lost++
	e.ScheduleCall(1.0, func(arg any) {
		w.counter++
	}, nil)
}

// globalDeep: a package-level write two calls below a plain-function
// lane root.
func deepGlobalLeaf() {
	sharedTotal++ // want "lane-reachable helper writes package-level sharedTotal.*laneGlobalDeep.*deepGlobalMid.*deepGlobalLeaf"
}

func deepGlobalMid() { deepGlobalLeaf() }

func laneGlobalDeep(ls *laneState) {
	ls.lost++
	deepGlobalMid()
}
