package maporder

// Cross-function cases: the per-element effect escapes through one
// level of module-local helper into an ordered sink recorded by the
// helper's summary.

// sendOne wraps the transmission call; its summary records the
// Broadcast sink.
func sendOne(s *sim, id int) { s.Broadcast(id, 32) }

// transmitViaHelper is transmitInMapOrder with the send buried one
// call deep: still flagged, naming the helper.
func transmitViaHelper(s *sim, members map[int]bool) {
	for id := range members { // want "calls maporder.sendOne, which calls Broadcast, entering the event/transmission order"
		sendOne(s, id)
	}
}

// countOne only touches an integer counter: no sink in its summary, so
// routing the element through it stays clean.
func countOne(tally map[int]int, id int) { tally[id]++ }

func countViaHelper(tally map[int]int, members map[int]bool) {
	for id := range members {
		countOne(tally, id)
	}
}

// deepSend is two levels down; the follow is deliberately one level
// only (summaries record *direct* sinks), so this stays unflagged —
// the depth cutoff is part of the contract, documented in DESIGN.md.
func deepSend(s *sim, id int) { sendOne(s, id) }

func transmitTwoDeep(s *sim, members map[int]bool) {
	for id := range members {
		deepSend(s, id)
	}
}
