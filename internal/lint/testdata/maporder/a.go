// Package maporder is the golden corpus for the maporder analyzer:
// each flagged line carries a want comment; clean idioms carry none.
package maporder

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// sim stands in for the DES scheduling and transmission surface.
type sim struct{}

func (s *sim) Schedule(at float64, fn func())      {}
func (s *sim) ScheduleCall(at float64, arg any)    {}
func (s *sim) Broadcast(from int, size int) int    { return 0 }
func (s *sim) Unicast(from, to int, size int) bool { return true }

// transmitInMapOrder is the PR 3 bug shape: each send draws from the
// sender's loss stream, so map order becomes observable.
func transmitInMapOrder(s *sim, members map[int]bool) {
	for id := range members { // want "calls Broadcast"
		s.Broadcast(id, 64)
	}
}

// scheduleInMapOrder puts events into the total order by map order.
func scheduleInMapOrder(s *sim, deadlines map[int]float64) {
	for id, at := range deadlines { // want "calls Schedule"
		s.Schedule(at, func() { _ = id })
	}
}

// collectUnsorted builds an ordered slice from unordered iteration and
// never sorts it — the PR 5 greedy-tree-destination bug shape.
func collectUnsorted(members map[int]bool) []int {
	var dests []int
	for id := range members { // want "appends to dests, which this function never sorts"
		dests = append(dests, id)
	}
	return dests
}

// collectThenSort is the sanctioned idiom: the append is recognized
// because the same function passes the slice to a sort call.
func collectThenSort(members map[int]bool) []int {
	var dests []int
	for id := range members {
		dests = append(dests, id)
	}
	sort.Ints(dests)
	return dests
}

// SortedIDs mimics the repo's network.SortedIDs accessor; calls to it
// count as establishing order.
func SortedIDs(ids []int) []int {
	sort.Ints(ids)
	return ids
}

func collectThenSortedAccessor(members map[int]bool) []int {
	var dests []int
	for id := range members {
		dests = append(dests, id)
	}
	return SortedIDs(dests)
}

// sortPoints mimics the repo's lowercase local sort helpers (baseline
// sortPoints); the sort-prefix recognition is case-insensitive.
func sortPoints(ps []int) { sort.Ints(ps) }

func collectThenLocalSort(members map[int]bool) []int {
	var ps []int
	for id := range members {
		ps = append(ps, id)
	}
	sortPoints(ps)
	return ps
}

// emitTableRows renders output in map order.
func emitTableRows(rows map[string]int) string {
	var b strings.Builder
	for name, v := range rows { // want "emits output via Fprintf"
		fmt.Fprintf(&b, "%s: %d\n", name, v)
	}
	return b.String()
}

// floatReduction: float addition is not associative, so even a sum is
// order-observable in the last ulp.
func floatReduction(loads map[int]float64) float64 {
	total := 0.0
	for _, v := range loads { // want "float reduction total"
		total += v
	}
	return total
}

// intCounters are exactly commutative: clean.
func intCounters(sizes map[int]int) int {
	total := 0
	for _, v := range sizes {
		total += v
	}
	return total
}

// perKeyAppend keeps each key's slice independent: clean.
func perKeyAppend(in map[int][]int, out map[int][]int) {
	for k, vs := range in {
		out[k] = append(out[k], vs...)
	}
}

// perIterationLocal never outlives one iteration: clean.
func perIterationLocal(in map[int][]int) int {
	n := 0
	for _, vs := range in {
		local := []int{}
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// setBuild writes map entries, which have no order: clean.
func setBuild(in map[int]bool) map[int]bool {
	out := make(map[int]bool)
	for k := range in {
		out[k] = true
	}
	return out
}

// statsAccumInMapOrder folds map values into a stats accumulator: the
// Add hides the same non-associative float sum as a bare += (and the
// retained-sample percentiles additionally observe insertion order).
func statsAccumInMapOrder(delays map[int]float64) float64 {
	var s stats.Sample
	for _, v := range delays { // want "Add on a stats accumulator"
		s.Add(v)
	}
	return s.Mean()
}

// statsMergeInMapOrder merges per-key histograms in map order: bin
// counts commute, but the exact-mean float sum does not associate.
func statsMergeInMapOrder(parts map[int]*stats.LogHist) *stats.LogHist {
	var whole stats.LogHist
	for _, h := range parts { // want "Merge on a stats accumulator"
		whole.Merge(h)
	}
	return &whole
}

// statsAccumSortedKeys is the sanctioned shape: fold in sorted key
// order. The range is over the sorted slice, not the map: clean.
func statsAccumSortedKeys(delays map[int]float64) float64 {
	keys := make([]int, 0, len(delays))
	for k := range delays {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var s stats.Sample
	for _, k := range keys {
		s.Add(delays[k])
	}
	return s.Mean()
}
