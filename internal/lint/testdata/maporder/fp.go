package maporder

// False-positive corpus drawn from real repo idioms: patterns that
// look like ordered escapes but are order-free, and how each is kept
// quiet (by the analyzer's own rules where possible, by a reasoned
// annotation where not).

// bitsetUnion is network.SendersMatching's shape: the appends only
// zero-extend the word slice to the widest sender set and every bit
// lands via a commutative |=. The analyzer cannot prove that, so the
// site carries the annotation — the same one the real code carries.
func bitsetUnion(kinds map[string][]uint64) []uint64 {
	var union []uint64
	//hvdb:unordered bitset union is commutative; the appends only zero-extend
	for _, words := range kinds {
		for len(union) < len(words) {
			union = append(union, 0)
		}
		for i, w := range words {
			union[i] |= w
		}
	}
	return union
}

// denseLaneFill is the SoA hot-path shape: map entries land in a dense
// per-node lane indexed by the key, so iteration order cannot matter.
// Index writes are not sinks; no annotation needed.
func denseLaneFill(pending map[int]float64, lane []float64) {
	for id, v := range pending {
		lane[id] = v
	}
}

// denseLaneLoop ranges the dense lane (a slice, not a map) and
// transmits: slices iterate in index order, so this is clean even
// though it sends.
func denseLaneLoop(s *sim, lane []float64) {
	for id, v := range lane {
		if v > 0 {
			s.Broadcast(id, 32)
		}
	}
}

// maxOverMap folds into a commutative max; comparisons are exact, so
// no float-reduction sink fires (only compound assignment does).
func maxOverMap(loads map[int]float64) float64 {
	best := 0.0
	for _, v := range loads {
		if v > best {
			best = v
		}
	}
	return best
}

// deleteSweep mutates another map, which has no iteration order of its
// own: clean.
func deleteSweep(dead map[int]bool, live map[int]float64) {
	for id := range dead {
		delete(live, id)
	}
}
