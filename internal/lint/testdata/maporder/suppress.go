package maporder

// This file exercises the annotation policy: a reasoned suppression
// silences the diagnostic, a bare one is itself a diagnostic, an
// unknown key is a typo, and a stale annotation must be dropped.

// suppressedTransmit is annotated with a reason: clean.
func suppressedTransmit(s *sim, probes map[int]bool) {
	//hvdb:unordered probe order is folded into a commutative max below, never transmitted
	for id := range probes {
		s.Broadcast(id, 1)
	}
}

// trailingSuppression uses the same-line form: clean.
func trailingSuppression(s *sim, probes map[int]bool) {
	for id := range probes { //hvdb:unordered probe replies dedup by id at the receiver
		s.Broadcast(id, 1)
	}
}

// bareSuppression omits the reason: the annotation itself is flagged
// and the underlying diagnostic still fires.
func bareSuppression(s *sim, probes map[int]bool) {
	//hvdb:unordered // want "needs a reason"
	for id := range probes { // want "calls Broadcast"
		s.Broadcast(id, 1)
	}
}

// typoKey uses an unknown annotation key.
func typoKey(s *sim, probes map[int]bool) {
	//hvdb:unorderd misspelled key // want "unknown suppression key"
	for id := range probes { // want "calls Broadcast"
		s.Broadcast(id, 1)
	}
}

// staleAnnotation suppresses nothing: the loop is clean, so the
// annotation must go.
func staleAnnotation(probes map[int]bool) int {
	n := 0
	//hvdb:unordered counting is commutative // want "suppresses nothing"
	for range probes {
		n++
	}
	return n
}
