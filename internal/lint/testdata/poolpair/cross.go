package poolpair

// Cross-function cases for the interprocedural summaries: a call is an
// ownership handoff only when the callee's propagated summary really
// releases or re-hands-off the parameter.

// inspectOnly reads the packet and drops the reference: its summary
// neither releases nor hands off k.
func inspectOnly(k *Packet) int { return k.Size }

// leakViaInspect's only exit for the reference is a call the summary
// refutes, so the leak is reported at that call — the line where the
// reference dies.
func leakViaInspect(p *pool) int {
	pkt := p.AcquirePacket()
	return inspectOnly(pkt) // want "passes pooled pkt to poolpair.inspectOnly, whose summary neither"
}

// releaseHelper releases on the caller's behalf; its summary carries
// releases-param-1.
func releaseHelper(p *pool, k *Packet) { p.ReleasePacket(k) }

// cleanViaHelper hands the reference to a releasing callee: clean.
func cleanViaHelper(p *pool) {
	pkt := p.AcquirePacket()
	pkt.Kind = "ctl"
	releaseHelper(p, pkt)
}

// releaseDeep only forwards; the release fact propagates bottom-up
// through two levels.
func releaseDeep(p *pool, k *Packet) { releaseHelper(p, k) }

// cleanViaDeepHelper: clean through the two-level chain.
func cleanViaDeepHelper(p *pool) {
	pkt := p.AcquirePacket()
	releaseDeep(p, pkt)
}

// spinA / spinB form a call cycle whose fixed point still finds the
// release in spinB.
func spinA(p *pool, k *Packet, n int) {
	if n > 0 {
		spinB(p, k, n-1)
	}
}

func spinB(p *pool, k *Packet, n int) {
	if n == 0 {
		p.ReleasePacket(k)
		return
	}
	spinA(p, k, n-1)
}

// cleanViaCycle: the reference enters the cycle, which releases it.
func cleanViaCycle(p *pool) {
	pkt := p.AcquirePacket()
	spinA(p, pkt, 3)
}
