// Package poolpair is the golden corpus for the poolpair analyzer.
package poolpair

// Packet and pool stand in for network.Packet / network.Network: the
// analyzer recognizes Acquire*/Release* by name, the repo convention.
type Packet struct {
	Size int
	Kind string
}

type pool struct{ sent []*Packet }

func (p *pool) AcquirePacket() *Packet  { return &Packet{} }
func (p *pool) ReleasePacket(k *Packet) {}
func (p *pool) RetainPacket(k *Packet)  {}

// Broadcast hands the packet off for transmission, like the real
// network.Broadcast: its summary records the store, so callers passing
// a pooled packet here really have transferred ownership.
func (p *pool) Broadcast(from int, k *Packet) int {
	p.sent = append(p.sent, k)
	return 0
}

// acquireRelease is the canonical balanced round: clean.
func acquireRelease(p *pool) {
	pkt := p.AcquirePacket()
	pkt.Size = 64
	p.Broadcast(1, pkt)
	p.ReleasePacket(pkt)
}

// deferredRelease balances via defer: clean.
func deferredRelease(p *pool) int {
	pkt := p.AcquirePacket()
	defer p.ReleasePacket(pkt)
	return p.Broadcast(2, pkt)
}

// leakedRead only reads fields; the reference is dropped on return.
func leakedRead(p *pool) int {
	pkt := p.AcquirePacket() // want "never Release"
	return pkt.Size
}

// discardedResult can never be released.
func discardedResult(p *pool) {
	p.AcquirePacket() // want "result discarded"
}

// blankedResult can never be released either.
func blankedResult(p *pool) {
	_ = p.AcquirePacket() // want "assigned to _"
}

// handoffReturn transfers ownership to the caller: clean.
func handoffReturn(p *pool) *Packet {
	pkt := p.AcquirePacket()
	pkt.Kind = "data"
	return pkt
}

// handoffCall transfers ownership to the callee: clean.
func handoffCall(p *pool) {
	pkt := p.AcquirePacket()
	p.Broadcast(3, pkt)
}

// handoffStore parks the reference in a structure that outlives the
// function: clean.
type queue struct{ pending []*Packet }

func handoffStore(p *pool, q *queue) {
	pkt := p.AcquirePacket()
	q.pending = append(q.pending, pkt)
}

// handoffChannel sends the reference to another owner: clean.
func handoffChannel(p *pool, ch chan *Packet) {
	pkt := p.AcquirePacket()
	ch <- pkt
}

// annotatedTransfer documents an ownership transfer the analyzer
// cannot see (the pool tracks every checkout and a teardown sweep
// releases stragglers): clean because the annotation carries a reason.
func annotatedTransfer(p *pool) int {
	pkt := p.AcquirePacket() //hvdb:handoff the pool tracks every checkout; the teardown sweep releases stragglers after stats capture
	return pkt.Size
}
