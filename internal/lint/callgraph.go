package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// callgraph.go builds the interprocedural layer's raw material: one
// FuncInfo of serializable facts per declared function, method, and
// function literal in the module, with resolved static call edges.
// Resolution is deliberately conservative in the direction that keeps
// diagnostics honest:
//
//   - method calls resolve only on concrete receiver types (interface
//     dispatch has no static target, so no edge — the sharded kernel's
//     handler chains all carry their lane state in concrete signatures,
//     which is what lane-root detection keys on);
//   - function literals are tracked where they matter: one containment
//     edge from the enclosing function, plus lane-entry marking when
//     the literal (or a named function value) is handed to
//     ScheduleLaneDirect / LogIntent, and deferred-argument tracking
//     through the ScheduleCall* family so a packet scheduled into a
//     callback is attributed to that callback's parameter;
//   - the des kernel itself is a traversal boundary: its scheduler and
//     mailbox internals mutate engine state by design, and the
//     discipline the analyzers enforce is about code *using* the
//     kernel, not the kernel.
//
// Facts are position-addressed with plain file:line:col (Site), not
// token.Pos, so a package's facts serialize into the summary cache and
// diagnostics can be rebuilt without re-walking the AST (summary.go).

// A Site is a serializable source position.
type Site struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

func (s Site) valid() bool { return s.File != "" && s.Line > 0 }

func siteOf(fset *token.FileSet, pos token.Pos) Site {
	p := fset.Position(pos)
	return Site{File: p.Filename, Line: p.Line, Col: p.Column}
}

// A FuncID names a function uniquely across the module:
// "pkg/path.Func", "pkg/path.(Recv).Method", or
// "pkg/path.$file:line:col" for a function literal.
type FuncID string

// A HubWrite is one direct write to shared hub state or a
// package-level variable — the facts shardsafe combines with lane
// reachability.
type HubWrite struct {
	Site Site   `json:"site"`
	What string `json:"what"` // rendered description of the written object
}

// A ParamPass records that a parameter flows, unmodified, into a
// callee's parameter — the edge poolpair's consume propagation walks.
type ParamPass struct {
	Callee FuncID `json:"callee"`
	Param  int    `json:"param"`
}

// A ParamFact summarizes what one function does with one parameter.
// Released and HandedOff are the direct facts; summary.go folds
// PassedTo transitively into the final releases/hands-off verdict.
type ParamFact struct {
	Name      string      `json:"name,omitempty"`
	Released  bool        `json:"released,omitempty"`
	HandedOff bool        `json:"handed_off,omitempty"`
	PassedTo  []ParamPass `json:"passed_to,omitempty"`
}

// A CallFact is one resolved outgoing edge.
type CallFact struct {
	Callee FuncID `json:"callee"`
	Name   string `json:"name"` // callee display name, for call-path rendering
	Site   Site   `json:"site"`
	// Lane marks an edge that *enters* lane context regardless of the
	// caller's own context: a function value or literal handed to
	// ScheduleLaneDirect or LogIntent executes on a lane.
	Lane bool `json:"lane,omitempty"`
	// Deferred marks a function value handed to the serial ScheduleCall*
	// family: it runs later on the serial loop, so lane reachability
	// must NOT flow through this edge (the argument handoff still does,
	// via ParamPass).
	Deferred bool `json:"deferred,omitempty"`
}

// A FuncInfo is the complete per-function fact record.
type FuncInfo struct {
	ID   FuncID `json:"id"`
	Name string `json:"name"` // display name, e.g. "network.(*Network).unicastLS"
	Pkg  string `json:"pkg"`  // import path
	Decl Site   `json:"decl"`
	// LaneRoot: the signature carries a lane-state type (laneState /
	// rlane / Lane declared in a sharded package), or the function is a
	// literal scheduled onto a lane — either way its body executes in
	// lane context.
	LaneRoot  bool        `json:"lane_root,omitempty"`
	HubWrites []HubWrite  `json:"hub_writes,omitempty"`
	Sinks     []string    `json:"sinks,omitempty"` // direct ordering-sensitive sinks (maporder's one-level follow)
	Params    []ParamFact `json:"params,omitempty"`
	Calls     []CallFact  `json:"calls,omitempty"`
}

// scheduleArgFuncs maps the callback-taking scheduling entry points to
// the positions of their (fn, arg) pair and whether the callback runs
// on a lane. A value handed as `arg` reaches the callback's first
// parameter; a callback handed to a lane scheduler becomes lane
// context.
var scheduleArgFuncs = map[string]struct {
	fnIdx, argIdx int
	lane          bool
}{
	"ScheduleCall":       {1, 2, false},
	"ScheduleCallU":      {1, 2, false},
	"ScheduleCallSeq":    {2, 3, false},
	"ScheduleCallSeqU":   {2, 3, false},
	"AfterCall":          {1, 2, false},
	"AfterCallU":         {1, 2, false},
	"ScheduleLaneDirect": {2, 3, true},
	"LogIntent":          {3, 4, true},
}

// kernelPackage reports whether path is the des kernel — the trusted
// runtime the lane-reachability traversal does not descend into.
func kernelPackage(path string) bool { return strings.HasSuffix(path, "internal/des") }

// funcIDOf derives the stable id of a declared function or method.
func funcIDOf(obj *types.Func) FuncID {
	pkg := obj.Pkg()
	if pkg == nil {
		return ""
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		return FuncID(pkg.Path() + ".(" + recvTypeName(sig.Recv().Type()) + ")." + obj.Name())
	}
	return FuncID(pkg.Path() + "." + obj.Name())
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// displayNameOf renders the short human name used in call paths:
// "pkgname.(*Recv).Method" / "pkgname.Func".
func displayNameOf(obj *types.Func) string {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Name() + "."
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		star := ""
		if _, ptr := sig.Recv().Type().(*types.Pointer); ptr {
			star = "*"
		}
		return pkg + "(" + star + recvTypeName(sig.Recv().Type()) + ")." + obj.Name()
	}
	return pkg + obj.Name()
}

// resolveCallee returns the statically known target of a call: a
// declared function, or a method resolved on a concrete receiver type.
// Interface dispatch and function-typed values return nil.
func resolveCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	return resolveFuncExpr(info, call.Fun)
}

// resolveFuncExpr resolves an expression used as a function — a callee
// or a function value passed as an argument — to its static target.
func resolveFuncExpr(info *types.Info, e ast.Expr) *types.Func {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	switch fun := e.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return nil // dynamic dispatch: no static target
			}
			return f
		}
		// Package-qualified: pkg.Func.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// moduleLocal reports whether a callee belongs to the same module as
// the package under extraction (first path segment match — "repro/..."
// for the real module, the testdata pseudo-paths for corpora).
func moduleLocal(pkgPath string, callee *types.Func) bool {
	if callee.Pkg() == nil {
		return false
	}
	seg := pkgPath
	if i := strings.IndexByte(seg, '/'); i >= 0 {
		seg = seg[:i]
	}
	cp := callee.Pkg().Path()
	return cp == seg || strings.HasPrefix(cp, seg+"/")
}

// extractPackage walks one type-checked package and produces its
// function facts. The walk mirrors the intraprocedural analyzers'
// classification rules exactly — hub/global writes (shardsafe),
// parameter release/handoff fates (poolpair), ordering-sensitive sinks
// (maporder) — but records them as facts instead of diagnostics;
// summary.go decides which become reportable once reachability and
// consume bits are propagated.
func extractPackage(pkg *Package) []*FuncInfo {
	ex := &extractor{pkg: pkg}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := &FuncInfo{
				ID:       funcIDOf(obj),
				Name:     displayNameOf(obj),
				Pkg:      pkg.Types.Path(),
				Decl:     siteOf(pkg.Fset, fd.Name.Pos()),
				LaneRoot: laneSignature(pkg.Info, fd.Recv, fd.Type.Params),
			}
			ex.paramObjs(fi, fd.Type.Params)
			ex.walkBody(fi, fd.Body, paramIndexMap(pkg.Info, fd.Type.Params))
			ex.out = append(ex.out, fi)
		}
	}
	sort.Slice(ex.out, func(i, j int) bool { return ex.out[i].ID < ex.out[j].ID })
	return ex.out
}

type extractor struct {
	pkg *Package
	out []*FuncInfo
}

// paramObjs binds a function's parameter objects to their indices so
// body uses can be attributed.
func (ex *extractor) paramObjs(fi *FuncInfo, params *ast.FieldList) {
	fi.Params = nil
	if params == nil {
		return
	}
	for _, field := range params.List {
		names := field.Names
		if len(names) == 0 {
			fi.Params = append(fi.Params, ParamFact{}) // unnamed: nothing to track
			continue
		}
		for _, name := range names {
			fi.Params = append(fi.Params, ParamFact{Name: name.Name})
		}
	}
}

// paramIndexMap rebuilds the object->index mapping for a declaration's
// parameters (shared by extraction and the poolpair analyzer).
func paramIndexMap(info *types.Info, params *ast.FieldList) map[types.Object]int {
	out := map[types.Object]int{}
	if params == nil {
		return out
	}
	i := 0
	for _, field := range params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = i
			}
			i++
		}
	}
	return out
}

// laneSignature reports whether a receiver or parameter list carries a
// lane-state type declared in a sharded package.
func laneSignature(info *types.Info, recv, params *ast.FieldList) bool {
	check := func(list *ast.FieldList) bool {
		if list == nil {
			return false
		}
		for _, field := range list.List {
			if isLaneStateType(info.TypeOf(field.Type)) {
				return true
			}
		}
		return false
	}
	return check(recv) || check(params)
}

// walkBody extracts facts from one function body. Function literals
// get their own FuncInfo plus a containment edge from the enclosing
// function; everything else lands on fi. paramIdx maps the function's
// own parameter objects to their indices in fi.Params.
func (ex *extractor) walkBody(fi *FuncInfo, body *ast.BlockStmt, paramIdx map[types.Object]int) {
	var stack []ast.Node
	// lits maps literals to the flags their scheduling context implies,
	// filled when the enclosing CallExpr is visited (pre-order, so
	// before the literal itself).
	type litFlags struct{ lane, deferred bool }
	lits := map[*ast.FuncLit]litFlags{}

	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch v := n.(type) {
		case *ast.FuncLit:
			litID := litFuncID(fi.Pkg, ex.pkg.Fset, v.Pos())
			flags := lits[v]
			li := &FuncInfo{
				ID:       litID,
				Name:     fi.Name + "$func",
				Pkg:      fi.Pkg,
				Decl:     siteOf(ex.pkg.Fset, v.Pos()),
				LaneRoot: flags.lane || laneSignature(ex.pkg.Info, nil, v.Type.Params),
			}
			ex.paramObjs(li, v.Type.Params)
			ex.walkBody(li, v.Body, paramIndexMap(ex.pkg.Info, v.Type.Params))
			ex.out = append(ex.out, li)
			fi.Calls = append(fi.Calls, CallFact{
				Callee:   litID,
				Name:     li.Name,
				Site:     siteOf(ex.pkg.Fset, v.Pos()),
				Lane:     flags.lane,
				Deferred: flags.deferred,
			})
			return false // literal body handled by the recursive walk
		case *ast.CallExpr:
			ex.call(fi, v, paramIdx, func(lit *ast.FuncLit, lane, deferred bool) {
				lits[lit] = litFlags{lane, deferred}
			})
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				ex.hubWrite(fi, lhs)
			}
			for _, rhs := range v.Rhs {
				// Storing a parameter into anything is a handoff.
				if i, ok := paramUse(ex.pkg.Info, rhs, paramIdx); ok {
					fi.Params[i].HandedOff = true
				}
			}
		case *ast.IncDecStmt:
			ex.hubWrite(fi, v.X)
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				if i, ok := paramUse(ex.pkg.Info, res, paramIdx); ok {
					fi.Params[i].HandedOff = true
				}
			}
		case *ast.SendStmt:
			if i, ok := paramUse(ex.pkg.Info, v.Value, paramIdx); ok {
				fi.Params[i].HandedOff = true
			}
		case *ast.CompositeLit:
			for _, el := range v.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if i, ok := paramUse(ex.pkg.Info, el, paramIdx); ok {
					fi.Params[i].HandedOff = true
				}
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if i, ok := paramUse(ex.pkg.Info, v.X, paramIdx); ok {
					fi.Params[i].HandedOff = true
				}
			}
		}
		return true
	})
	dedupeSinks(fi)
}

// call records the facts of one call expression: the static edge, the
// parameter passes, schedule-callback tracking, and direct ordered
// sinks.
func (ex *extractor) call(fi *FuncInfo, call *ast.CallExpr, paramIdx map[types.Object]int, markLit func(*ast.FuncLit, bool, bool)) {
	info := ex.pkg.Info
	name := calleeName(call)

	// Direct ordered sinks (maporder's one-level summary).
	switch {
	case scheduleSinks[name]:
		fi.Sinks = append(fi.Sinks, fmt.Sprintf("calls %s, entering the event/transmission order", name))
	case emitSinks[name]:
		fi.Sinks = append(fi.Sinks, fmt.Sprintf("emits output via %s", name))
	case (name == "Add" || name == "Merge") && isStatsAccumCallInfo(info, call):
		fi.Sinks = append(fi.Sinks, fmt.Sprintf("%s on a stats accumulator folds a float sum, order-sensitive in the last ulp", name))
	}

	// Schedule-callback tracking: fn and arg positions.
	if sched, ok := scheduleArgFuncs[name]; ok && len(call.Args) > sched.argIdx {
		fnExpr := call.Args[sched.fnIdx]
		if lit, ok := fnExpr.(*ast.FuncLit); ok {
			markLit(lit, sched.lane, !sched.lane)
			// The containment edge created at the literal's visit carries
			// the flags; the arg handoff resolves against the literal's id
			// below via litArgPass (handled in poolpair directly — here
			// record the pass for declared-function callbacks only).
		} else if fn := resolveFuncExpr(info, fnExpr); fn != nil && moduleLocal(fi.Pkg, fn) {
			fi.Calls = append(fi.Calls, CallFact{
				Callee:   funcIDOf(fn),
				Name:     displayNameOf(fn),
				Site:     siteOf(ex.pkg.Fset, call.Pos()),
				Lane:     sched.lane,
				Deferred: !sched.lane,
			})
			if i, ok := paramUse(info, call.Args[sched.argIdx], paramIdx); ok {
				fi.Params[i].PassedTo = append(fi.Params[i].PassedTo, ParamPass{Callee: funcIDOf(fn), Param: 0})
			}
		} else {
			// Unresolvable callback: the arg handoff is conservative.
			if i, ok := paramUse(info, call.Args[sched.argIdx], paramIdx); ok {
				fi.Params[i].HandedOff = true
			}
		}
	}

	callee := resolveCallee(info, call)
	if callee != nil && moduleLocal(fi.Pkg, callee) {
		fi.Calls = append(fi.Calls, CallFact{
			Callee: funcIDOf(callee),
			Name:   displayNameOf(callee),
			Site:   siteOf(ex.pkg.Fset, call.Pos()),
		})
	}

	// Parameter passes through ordinary argument positions.
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	for argPos, arg := range call.Args {
		i, ok := paramUse(info, arg, paramIdx)
		if !ok {
			continue
		}
		if strings.HasPrefix(name, "Release") {
			fi.Params[i].Released = true
			continue
		}
		if sched, ok := scheduleArgFuncs[name]; ok && argPos == sched.argIdx {
			continue // handled above (callback-arg pass or conservative handoff)
		}
		if callee == nil || !moduleLocal(fi.Pkg, callee) || sig == nil ||
			(sig.Variadic() && argPos >= sig.Params().Len()-1) || argPos >= sig.Params().Len() {
			// Dynamic, external, or variadic-tail: assume the callee
			// takes ownership (the old intraprocedural behavior).
			fi.Params[i].HandedOff = true
			continue
		}
		fi.Params[i].PassedTo = append(fi.Params[i].PassedTo, ParamPass{Callee: funcIDOf(callee), Param: argPos})
	}
}

// hubWrite records a write through a hub-typed root or to a
// package-level variable.
func (ex *extractor) hubWrite(fi *FuncInfo, expr ast.Expr) {
	id := rootIdent(expr)
	if id == nil {
		return
	}
	obj := ex.pkg.Info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	switch {
	case v.Pkg() != nil && v.Parent() == v.Pkg().Scope():
		fi.HubWrites = append(fi.HubWrites, HubWrite{
			Site: siteOf(ex.pkg.Fset, expr.Pos()),
			What: "package-level " + id.Name,
		})
	case expr != ast.Expr(id) && isHubType(v.Type()):
		fi.HubWrites = append(fi.HubWrites, HubWrite{
			Site: siteOf(ex.pkg.Fset, expr.Pos()),
			What: fmt.Sprintf("shared %s state through %s", typeName(v.Type()), id.Name),
		})
	}
}

// paramUse reports whether expr is (exactly) a tracked parameter
// identifier, returning its index.
func paramUse(info *types.Info, expr ast.Expr, paramIdx map[types.Object]int) (int, bool) {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := info.Uses[id]
	if obj == nil {
		return 0, false
	}
	i, ok := paramIdx[obj]
	return i, ok
}

// litFuncID is the stable id of a function literal: package path plus
// the literal's base-file position.
func litFuncID(pkgPath string, fset *token.FileSet, pos token.Pos) FuncID {
	p := fset.Position(pos)
	f := p.Filename
	if i := strings.LastIndexByte(f, '/'); i >= 0 {
		f = f[i+1:]
	}
	return FuncID(fmt.Sprintf("%s.$%s:%d:%d", pkgPath, f, p.Line, p.Column))
}

// callbackFuncID resolves the fn argument of a ScheduleCall*-family
// call to the FuncID of the callback it schedules ("" when the target
// is dynamic).
func callbackFuncID(pkgPath string, fset *token.FileSet, info *types.Info, fnExpr ast.Expr) FuncID {
	if lit, ok := fnExpr.(*ast.FuncLit); ok {
		return litFuncID(pkgPath, fset, lit.Pos())
	}
	if fn := resolveFuncExpr(info, fnExpr); fn != nil {
		return funcIDOf(fn)
	}
	return ""
}

func dedupeSinks(fi *FuncInfo) {
	if len(fi.Sinks) < 2 {
		return
	}
	seen := map[string]bool{}
	out := fi.Sinks[:0]
	for _, s := range fi.Sinks {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	fi.Sinks = out
}

// isStatsAccumCallInfo is isStatsAccumCall against a bare types.Info
// (shared between the extractor and the maporder analyzer).
func isStatsAccumCallInfo(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), "internal/stats")
}

// --- strongly connected components -----------------------------------

// condense runs Tarjan's algorithm over the call graph restricted to
// ids present in funcs and returns the SCCs in reverse topological
// order (callees before callers) — the order bottom-up summary
// propagation consumes.
func condense(funcs map[FuncID]*FuncInfo) [][]FuncID {
	ids := make([]FuncID, 0, len(funcs))
	for id := range funcs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	succs := func(id FuncID) []FuncID {
		fi := funcs[id]
		var out []FuncID
		for _, c := range fi.Calls {
			if _, ok := funcs[c.Callee]; ok {
				out = append(out, c.Callee)
			}
		}
		for _, p := range fi.Params {
			for _, pass := range p.PassedTo {
				if _, ok := funcs[pass.Callee]; ok {
					out = append(out, pass.Callee)
				}
			}
		}
		return out
	}

	// Iterative Tarjan (explicit stack; module depth can exceed the
	// goroutine stack comfort zone on deep helper chains).
	index := map[FuncID]int{}
	low := map[FuncID]int{}
	onStack := map[FuncID]bool{}
	var stack []FuncID
	var sccs [][]FuncID
	next := 0

	type frame struct {
		id    FuncID
		succ  []FuncID
		child int
	}
	for _, root := range ids {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{id: root, succ: succs(root)}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.child < len(f.succ) {
				w := f.succ[f.child]
				f.child++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{id: w, succ: succs(w)})
				} else if onStack[w] && index[w] < low[f.id] {
					low[f.id] = index[w]
				}
				continue
			}
			// All successors done: close the node.
			if low[f.id] == index[f.id] {
				var scc []FuncID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == f.id {
						break
					}
				}
				sort.Slice(scc, func(i, j int) bool { return scc[i] < scc[j] })
				sccs = append(sccs, scc)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.id] < low[p.id] {
					low[p.id] = low[f.id]
				}
			}
		}
	}
	return sccs
}
