package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// The golden suites: each testdata package is loaded under a
// repro/internal/... import path (so seedsource treats it as a
// simulation package) and its want comments must match the analyzer's
// diagnostics exactly — including the annotation-policy diagnostics
// for bare, misspelled, and stale suppressions.

func TestMapOrderGolden(t *testing.T) {
	linttest.Run(t, "repro/internal/testdata/maporder",
		filepath.Join("testdata", "maporder"), lint.MapOrder)
}

func TestSeedSourceGolden(t *testing.T) {
	linttest.Run(t, "repro/internal/testdata/seedsource",
		filepath.Join("testdata", "seedsource"), lint.SeedSource)
}

// TestSeedSourceSkipsNonSimulationPackages loads the same corpus under
// a cmd/ import path: drivers may read the wall clock and use ambient
// entropy, so nothing may be reported (want comments are ignored by
// loading with no diagnostics expected).
func TestSeedSourceSkipsNonSimulationPackages(t *testing.T) {
	pkg, err := lint.LoadDir("repro/cmd/seedsource", filepath.Join("testdata", "seedsource"))
	if err != nil {
		t.Fatal(err)
	}
	res := lint.Analyze([]*lint.Package{pkg}, lint.SeedSource)
	for _, d := range res.Diags {
		if d.Analyzer == "seedsource" {
			t.Errorf("seedsource fired outside a simulation package: %s", d)
		}
	}
}

func TestPoolPairGolden(t *testing.T) {
	linttest.Run(t, "repro/internal/testdata/poolpair",
		filepath.Join("testdata", "poolpair"), lint.PoolPair)
}

func TestShardSafeGolden(t *testing.T) {
	linttest.Run(t, "repro/internal/testdata/shardsafe",
		filepath.Join("testdata", "shardsafe"), lint.ShardSafe)
}

// TestShardSafeSkipsUnshardedPackages loads the same corpus under a
// package path that never executes inside a parallel window: nothing
// may be reported.
func TestShardSafeSkipsUnshardedPackages(t *testing.T) {
	pkg, err := lint.LoadDir("repro/internal/protocol", filepath.Join("testdata", "shardsafe"))
	if err != nil {
		t.Fatal(err)
	}
	res := lint.Analyze([]*lint.Package{pkg}, lint.ShardSafe)
	for _, d := range res.Diags {
		if d.Analyzer == "shardsafe" {
			t.Errorf("shardsafe fired outside a shard-tagged package: %s", d)
		}
	}
}

// TestAnalyzersHaveDistinctKeys guards the annotation namespace: the
// suppression matcher routes by key, so two analyzers sharing one
// would let an exemption for one silence the other.
func TestAnalyzersHaveDistinctKeys(t *testing.T) {
	seen := map[string]string{}
	for _, a := range lint.Analyzers() {
		if a.Name == "" || a.Doc == "" || a.SuppressKey == "" {
			t.Errorf("analyzer %+v missing metadata", a)
		}
		if prev, dup := seen[a.SuppressKey]; dup {
			t.Errorf("analyzers %s and %s share suppression key %q", prev, a.Name, a.SuppressKey)
		}
		seen[a.SuppressKey] = a.Name
	}
}
