package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFaultSeedInterprocedural is the engine's proof of life: the
// -tags faultseed build of internal/network seeds a hub write buried
// two module-local calls below a lane function and an acquired packet
// handed to a reference-dropping helper (faultseed_lint.go). Both are
// invisible to the old intraprocedural analyzers; the interprocedural
// engine must report both, each naming the full call path, and nothing
// else. Plain builds exclude the seeded file, so TestRepoLintClean
// keeps the module at zero — that pairing mirrors the PR 7 faultseed
// pattern.
func TestFaultSeedInterprocedural(t *testing.T) {
	root := moduleRootDir(t)
	pkgs, err := LoadWithTags(root, []string{"faultseed"}, "./internal/network")
	if err != nil {
		t.Fatalf("loading faultseed network: %v", err)
	}
	res := Analyze(pkgs)

	var hubWrite, leak *Diagnostic
	for i := range res.Diags {
		d := &res.Diags[i]
		switch d.Analyzer {
		case "shardsafe":
			hubWrite = d
		case "poolpair":
			leak = d
		}
	}
	if hubWrite == nil {
		t.Fatalf("seeded buried hub write not reported; diags: %v", res.Diags)
	}
	if !strings.Contains(hubWrite.Message, "writes shared Network state through w") {
		t.Errorf("hub-write message = %q", hubWrite.Message)
	}
	wantPath := "network.(*Network).faultSeedLaneProbe → network.(*Network).faultSeedHopA → network.(*Network).faultSeedHopB"
	if hubWrite.CallPath != wantPath {
		t.Errorf("hub-write call path = %q, want %q", hubWrite.CallPath, wantPath)
	}
	if filepath.Base(hubWrite.File) != "faultseed_lint.go" {
		t.Errorf("hub write reported in %s, want faultseed_lint.go", hubWrite.File)
	}

	if leak == nil {
		t.Fatalf("seeded dropped-acquire leak not reported; diags: %v", res.Diags)
	}
	if !strings.Contains(leak.Message, "passes pooled p to network.faultSeedInspect, whose summary neither") {
		t.Errorf("leak message = %q", leak.Message)
	}
	if filepath.Base(leak.File) != "faultseed_lint.go" {
		t.Errorf("leak reported in %s, want faultseed_lint.go", leak.File)
	}

	if len(res.Diags) != 2 {
		t.Errorf("want exactly the two seeded diagnostics, got %d:\n%v", len(res.Diags), res.Diags)
	}
}

// TestSummaryCacheWarm exercises the summary cache's warm path: a
// second load of the same package must take every function-fact record
// from the cache (zero extractions) and produce identical diagnostics.
func TestSummaryCacheWarm(t *testing.T) {
	saved := summaryCacheDir
	summaryCacheDir = t.TempDir()
	defer func() { summaryCacheDir = saved }()

	dir := filepath.Join("testdata", "poolpair")
	load := func() *Result {
		pkg, err := LoadDir("repro/internal/testdata/poolpair", dir)
		if err != nil {
			t.Fatalf("loading corpus: %v", err)
		}
		return Analyze([]*Package{pkg})
	}
	cold := load()
	if cold.Timing.CacheMisses == 0 {
		t.Fatalf("cold run should extract at least one package (misses=0, hits=%d)", cold.Timing.CacheHits)
	}
	warm := load()
	if warm.Timing.CacheMisses != 0 || warm.Timing.CacheHits == 0 {
		t.Errorf("warm run: hits=%d misses=%d, want all hits", warm.Timing.CacheHits, warm.Timing.CacheMisses)
	}
	if len(warm.Diags) != len(cold.Diags) {
		t.Fatalf("warm diags %d != cold diags %d", len(warm.Diags), len(cold.Diags))
	}
	for i := range warm.Diags {
		if warm.Diags[i].String() != cold.Diags[i].String() {
			t.Errorf("diag %d differs:\ncold: %s\nwarm: %s", i, cold.Diags[i], warm.Diags[i])
		}
	}
}

// TestSummaryCacheKeyTracksContent: editing a source file must change
// the package's cache key, so stale facts can never be served.
func TestSummaryCacheKeyTracksContent(t *testing.T) {
	tmp := t.TempDir()
	src := filepath.Join(tmp, "a.go")
	write := func(body string) {
		if err := os.WriteFile(src, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("package p\n\nfunc A() {}\n")
	pkg1, err := LoadDir("repro/internal/testdata/cachekey", tmp)
	if err != nil {
		t.Fatal(err)
	}
	k1 := packageCacheKey(pkg1)
	write("package p\n\nfunc A() { _ = 1 }\n")
	pkg2, err := LoadDir("repro/internal/testdata/cachekey", tmp)
	if err != nil {
		t.Fatal(err)
	}
	k2 := packageCacheKey(pkg2)
	if k1 == "" || k2 == "" {
		t.Fatalf("empty cache key (k1=%q k2=%q)", k1, k2)
	}
	if k1 == k2 {
		t.Error("cache key unchanged after source edit")
	}
}

func moduleRootDir(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
