// Package runner is the parallel run harness for the experiment suite:
// it fans independent simulation runs (trials, parameter-sweep points,
// protocol comparisons) across a pool of workers while keeping results
// bit-for-bit reproducible at any worker count.
//
// The reproducibility contract has three parts:
//
//   - Seed derivation is positional: run i of a harness invocation with
//     base seed s receives Seed = s XOR splitmix64(i). A run's stream
//     therefore depends only on (base, index), never on scheduling
//     order or on how many workers execute the batch.
//   - Each run must be self-contained: it builds its own Network and
//     Simulator (which the network package requires — a Network is
//     owned by one run) and draws randomness only from its Run.Seed or
//     from values passed in via its sweep point.
//   - Results are collected positionally into a slice indexed by run,
//     so aggregation code iterates them in run order regardless of
//     completion order.
//
// Panics inside a run are captured and returned as a *PanicError
// carrying the run identity and stack; the first failing run (by index)
// wins and the remaining undispatched runs are cancelled.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Run identifies one unit of parallel work.
type Run struct {
	// Index is the 0-based position of the run within its batch.
	Index int
	// Seed is the run's private PRNG seed, derived positionally from
	// the batch's base seed (see DeriveSeed).
	Seed uint64
}

// DeriveSeed maps a base seed and run index to the run's seed:
// base XOR splitmix64(index). splitmix64 scatters nearby indices to
// uncorrelated values, so consecutive runs get independent streams even
// for small bases, and the result depends only on (base, index).
func DeriveSeed(base uint64, index int) uint64 {
	z := uint64(index) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return base ^ (z ^ (z >> 31))
}

// Config controls one Map/Sweep invocation.
type Config struct {
	// Workers caps the number of runs executing concurrently. Zero or
	// negative means GOMAXPROCS.
	Workers int
	// Context, when non-nil, allows early cancellation: once done, no
	// further runs are dispatched (in-flight runs finish) and the
	// context's error is returned unless a run already failed.
	Context context.Context
}

// PanicError wraps a panic raised inside a run.
type PanicError struct {
	Run   Run
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: run %d (seed %#x) panicked: %v\n%s", e.Run.Index, e.Run.Seed, e.Value, e.Stack)
}

// Map executes fn for runs 0..n-1 on a pool of cfg.Workers workers and
// returns the n results in run order. Each run receives its positional
// identity and derived seed. The first error (smallest run index among
// failed runs) is returned alongside the partial results; runs not yet
// dispatched when an error or cancellation occurs are skipped and leave
// zero values in the result slice.
func Map[T any](cfg Config, baseSeed uint64, n int, fn func(Run) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	errs := make([]error, n)

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	parent := cfg.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	// Feed run indices; stop feeding once cancelled so a failure or an
	// external cancellation skips the tail of the batch.
	indices := make(chan int)
	go func() {
		defer close(indices)
		for i := 0; i < n; i++ {
			select {
			case indices <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				r := Run{Index: i, Seed: DeriveSeed(baseSeed, i)}
				results[i], errs[i] = protect(fn, r)
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	if err := parent.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// Sweep executes fn once per sweep point and returns the results in
// point order. It is Map with the batch defined by a slice of parameter
// points — the shape of a dimension sweep, a trial loop, or a protocol
// comparison.
func Sweep[P, T any](cfg Config, baseSeed uint64, points []P, fn func(Run, P) (T, error)) ([]T, error) {
	return Map(cfg, baseSeed, len(points), func(r Run) (T, error) {
		return fn(r, points[r.Index])
	})
}

// protect runs fn, converting a panic into a *PanicError.
func protect[T any](fn func(Run) (T, error), r Run) (v T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Run: r, Value: p, Stack: debug.Stack()}
		}
	}()
	return fn(r)
}
