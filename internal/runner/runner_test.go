package runner

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/xrand"
)

// simulate is a stand-in for a simulation run: a deterministic function
// of the run seed alone, with enough draws to expose stream mixups.
func simulate(r Run) (uint64, error) {
	rng := xrand.New(r.Seed)
	var acc uint64
	for i := 0; i < 1000; i++ {
		acc += rng.Uint64()
	}
	return acc, nil
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 64
	counts := []int{1, 4, runtime.NumCPU(), 0} // 0 = GOMAXPROCS default
	var want []uint64
	for _, workers := range counts {
		got, err := Map(Config{Workers: workers}, 7, n, simulate)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d run %d = %#x, want %#x", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapOrdering(t *testing.T) {
	got, err := Map(Config{Workers: 8}, 0, 100, func(r Run) (int, error) {
		return r.Index * r.Index, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(1, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("indices %d and %d collide on seed %#x", j, i, s)
		}
		seen[s] = i
	}
	if DeriveSeed(1, 3) != DeriveSeed(1, 3) {
		t.Fatal("DeriveSeed is not a pure function")
	}
	if DeriveSeed(1, 3) == DeriveSeed(2, 3) {
		t.Fatal("base seed must perturb the derived seed")
	}
}

func TestMapPanicCapture(t *testing.T) {
	_, err := Map(Config{Workers: 4}, 3, 10, func(r Run) (int, error) {
		if r.Index == 5 {
			panic("boom at five")
		}
		return r.Index, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Run.Index != 5 || pe.Run.Seed != DeriveSeed(3, 5) {
		t.Fatalf("panic run = %+v", pe.Run)
	}
	if !strings.Contains(pe.Error(), "boom at five") || len(pe.Stack) == 0 {
		t.Fatalf("panic error lost its payload: %v", pe)
	}
}

func TestMapErrorCancelsTail(t *testing.T) {
	bad := errors.New("bad run")
	var executed atomic.Int32
	_, err := Map(Config{Workers: 1}, 0, 1000, func(r Run) (int, error) {
		executed.Add(1)
		if r.Index == 2 {
			return 0, bad
		}
		return r.Index, nil
	})
	if !errors.Is(err, bad) {
		t.Fatalf("err = %v, want %v", err, bad)
	}
	// With one worker the failure at index 2 must stop dispatch almost
	// immediately (at most one more run may already be queued).
	if n := executed.Load(); n > 4 {
		t.Fatalf("executed %d runs after early failure", n)
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int32
	_, err := Map(Config{Workers: 1, Context: ctx}, 0, 1000, func(r Run) (int, error) {
		if executed.Add(1) == 3 {
			cancel()
		}
		return r.Index, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := executed.Load(); n > 5 {
		t.Fatalf("executed %d runs after cancellation", n)
	}
}

func TestSweep(t *testing.T) {
	points := []string{"a", "bb", "ccc"}
	got, err := Sweep(Config{Workers: 2}, 9, points, func(r Run, p string) (int, error) {
		if points[r.Index] != p {
			t.Errorf("run %d got point %q", r.Index, p)
		}
		return len(p), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != len(points[i]) {
			t.Fatalf("sweep result %d = %d", i, v)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(Config{}, 1, 0, func(r Run) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v %v", got, err)
	}
}

func BenchmarkMapOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Map(Config{Workers: 4}, 1, 64, func(r Run) (uint64, error) {
			return r.Seed, nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
