package logicalid

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/hypercube"
	"repro/internal/vcgrid"
)

// scheme8x8 reproduces the paper's Figure 2 configuration: an 8*8 VC
// MANET divided into four 4-dimensional logical hypercubes.
func scheme8x8(t *testing.T, opts ...Option) *Scheme {
	t.Helper()
	g := vcgrid.New(geom.RectWH(0, 0, 2000, 2000), 250)
	s, err := New(g, 4, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFigure2Decomposition(t *testing.T) {
	s := scheme8x8(t)
	w, h := s.BlockSize()
	if w != 4 || h != 4 {
		t.Fatalf("block %dx%d want 4x4", w, h)
	}
	mc, mr := s.MeshSize()
	if mc != 2 || mr != 2 || s.NumHypercubes() != 4 {
		t.Fatalf("mesh %dx%d (%d cubes) want 2x2 (4)", mc, mr, s.NumHypercubes())
	}
	// Each hypercube block contains exactly 16 VCs.
	for h := HID(0); h < 4; h++ {
		if got := len(s.BlockVCs(h)); got != 16 {
			t.Fatalf("block %d has %d VCs want 16", h, got)
		}
	}
}

// TestFigure3LabelLayout verifies the exact 16-label layout of the
// paper's Figure 3. The figure draws the block with label 0000 in the
// top-left; our rows run south-to-north, so figure row 0 is by=0 here
// with the same left-to-right columns. What matters — and what this test
// pins down — is the relative layout of the 16 labels.
func TestFigure3LabelLayout(t *testing.T) {
	s := scheme8x8(t)
	want := [4][4]string{
		{"0000", "0001", "0100", "0101"},
		{"0010", "0011", "0110", "0111"},
		{"1000", "1001", "1100", "1101"},
		{"1010", "1011", "1110", "1111"},
	}
	for row := 0; row < 4; row++ {
		for col := 0; col < 4; col++ {
			p := s.PlaceOf(vcgrid.VC{CX: col, CY: row})
			if p.HID != 0 {
				t.Fatalf("VC (%d,%d) in hypercube %d want 0", col, row, p.HID)
			}
			if got := p.HNID.Bits(4); got != want[row][col] {
				t.Errorf("label at (col=%d,row=%d) = %s want %s", col, row, got, want[row][col])
			}
		}
	}
}

// TestFigure3AdditionalLinks verifies the figure's "additional logical
// links between hypercube nodes": node 0000's hypercube neighbors are
// 0001 and 0010 (grid-adjacent) plus 0100 and 1000 (two-cell jumps).
func TestFigure3AdditionalLinks(t *testing.T) {
	s := scheme8x8(t)
	at := func(label string) vcgrid.VC {
		var l hypercube.Label
		for _, ch := range label {
			l = l<<1 | hypercube.Label(ch-'0')
		}
		return s.VCAt(0, l)
	}
	// Grid-adjacent neighbor links.
	if vcgrid.DistVCs(at("0000"), at("0001")) != 1 {
		t.Error("0000-0001 should be grid-adjacent")
	}
	if vcgrid.DistVCs(at("0000"), at("0010")) != 1 {
		t.Error("0000-0010 should be grid-adjacent")
	}
	// Additional (jump) links span two cells.
	if vcgrid.DistVCs(at("0000"), at("0100")) != 2 {
		t.Error("0000-0100 should jump two columns")
	}
	if vcgrid.DistVCs(at("0000"), at("1000")) != 2 {
		t.Error("0000-1000 should jump two rows")
	}
}

func TestPlaceRoundTrip(t *testing.T) {
	s := scheme8x8(t)
	for cy := 0; cy < 8; cy++ {
		for cx := 0; cx < 8; cx++ {
			v := vcgrid.VC{CX: cx, CY: cy}
			p := s.PlaceOf(v)
			back := s.VCAt(p.HID, p.HNID)
			if back != v {
				t.Fatalf("round trip %v -> %+v -> %v", v, p, back)
			}
			if s.CHIDToPlace(p.CHID) != p {
				t.Fatalf("CHID round trip failed for %v", v)
			}
		}
	}
}

func TestCHIDsAreUnique(t *testing.T) {
	s := scheme8x8(t)
	seen := map[CHID]bool{}
	for cy := 0; cy < 8; cy++ {
		for cx := 0; cx < 8; cx++ {
			p := s.PlaceOf(vcgrid.VC{CX: cx, CY: cy})
			if seen[p.CHID] {
				t.Fatalf("duplicate CHID %d", p.CHID)
			}
			seen[p.CHID] = true
		}
	}
}

func TestHNIDsUniqueWithinBlock(t *testing.T) {
	s := scheme8x8(t)
	for h := HID(0); h < HID(s.NumHypercubes()); h++ {
		seen := map[hypercube.Label]bool{}
		for _, v := range s.BlockVCs(h) {
			p := s.PlaceOf(v)
			if p.HID != h {
				t.Fatalf("BlockVCs(%d) returned VC of block %d", h, p.HID)
			}
			if seen[p.HNID] {
				t.Fatalf("duplicate HNID %v in block %d", p.HNID, h)
			}
			seen[p.HNID] = true
		}
	}
}

func TestPlaceAt(t *testing.T) {
	s := scheme8x8(t)
	p := s.PlaceAt(geom.Pt(10, 10)) // VC (0,0)
	if p.HID != 0 || p.HNID != 0 {
		t.Fatalf("origin place %+v", p)
	}
	p = s.PlaceAt(geom.Pt(1999, 1999)) // VC (7,7): block (1,1), local (3,3)
	if p.HID != 3 || p.HNID.Bits(4) != "1111" {
		t.Fatalf("far corner place %+v (label %s)", p, p.HNID.Bits(4))
	}
}

func TestMeshCoordAndNeighbors(t *testing.T) {
	s := scheme8x8(t)
	mx, my := s.MeshCoord(3)
	if mx != 1 || my != 1 {
		t.Fatalf("MeshCoord(3) = %d,%d", mx, my)
	}
	if s.HIDAt(0, 1) != 2 || s.HIDAt(2, 0) != -1 || s.HIDAt(-1, 0) != -1 {
		t.Fatal("HIDAt wrong")
	}
	n := s.MeshNeighbors(0)
	if len(n) != 2 {
		t.Fatalf("mesh corner neighbors %v", n)
	}
}

func TestIsBorder(t *testing.T) {
	s := scheme8x8(t)
	cases := []struct {
		v      vcgrid.VC
		border bool
	}{
		{vcgrid.VC{CX: 0, CY: 0}, false}, // grid corner: no adjacent block
		{vcgrid.VC{CX: 3, CY: 0}, true},  // east edge of block 0, block 1 beyond
		{vcgrid.VC{CX: 4, CY: 0}, true},  // west edge of block 1
		{vcgrid.VC{CX: 1, CY: 1}, false}, // interior
		{vcgrid.VC{CX: 0, CY: 3}, true},  // north edge of block 0, block 2 beyond
		{vcgrid.VC{CX: 7, CY: 7}, false}, // grid corner
		{vcgrid.VC{CX: 3, CY: 3}, true},  // corner facing blocks 1 and 2
	}
	for _, c := range cases {
		if got := s.IsBorder(c.v); got != c.border {
			t.Errorf("IsBorder(%v)=%v want %v", c.v, got, c.border)
		}
	}
}

func TestBorderPairs(t *testing.T) {
	s := scheme8x8(t)
	pairs := s.BorderPairs(0, 1) // horizontally adjacent blocks
	if len(pairs) != 4 {
		t.Fatalf("%d border pairs want 4", len(pairs))
	}
	for _, pr := range pairs {
		if s.PlaceOf(pr[0]).HID != 0 || s.PlaceOf(pr[1]).HID != 1 {
			t.Fatalf("pair %v crosses wrong blocks", pr)
		}
		if vcgrid.DistVCs(pr[0], pr[1]) != 1 {
			t.Fatalf("pair %v not adjacent", pr)
		}
	}
	if s.BorderPairs(0, 3) != nil {
		t.Fatal("diagonal blocks are not mesh-adjacent")
	}
}

func TestOddDimension(t *testing.T) {
	g := vcgrid.New(geom.RectWH(0, 0, 2000, 1000), 250) // 8x4 VCs
	s, err := New(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, h := s.BlockSize()
	if w != 4 || h != 2 {
		t.Fatalf("3-cube block %dx%d want 4x2", w, h)
	}
	if s.NumHypercubes() != 4 {
		t.Fatalf("cubes %d want 4", s.NumHypercubes())
	}
	// Round trip still holds.
	for cy := 0; cy < 4; cy++ {
		for cx := 0; cx < 8; cx++ {
			v := vcgrid.VC{CX: cx, CY: cy}
			p := s.PlaceOf(v)
			if s.VCAt(p.HID, p.HNID) != v {
				t.Fatalf("odd-dim round trip failed at %v", v)
			}
		}
	}
}

func TestPartialEdgeBlocks(t *testing.T) {
	// A 6x6 grid with dim-4 (4x4) blocks leaves partial blocks at the
	// east and north edges: incomplete hypercubes.
	g := vcgrid.New(geom.RectWH(0, 0, 1500, 1500), 250)
	s, err := New(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumHypercubes() != 4 {
		t.Fatalf("cubes %d want 4", s.NumHypercubes())
	}
	if got := len(s.BlockVCs(0)); got != 16 {
		t.Fatalf("full block has %d VCs", got)
	}
	if got := len(s.BlockVCs(1)); got != 8 { // 2 cols x 4 rows remain
		t.Fatalf("partial block has %d VCs want 8", got)
	}
	if got := len(s.BlockVCs(3)); got != 4 { // 2x2 corner
		t.Fatalf("corner block has %d VCs want 4", got)
	}
	for _, v := range s.BlockVCs(3) {
		p := s.PlaceOf(v)
		if s.VCAt(p.HID, p.HNID) != v {
			t.Fatalf("partial block round trip failed at %v", v)
		}
	}
}

func TestBadDimension(t *testing.T) {
	g := vcgrid.New(geom.RectWH(0, 0, 1000, 1000), 250)
	if _, err := New(g, 0); err == nil {
		t.Fatal("dim 0 should error")
	}
	if _, err := New(g, hypercube.MaxDim+1); err == nil {
		t.Fatal("oversized dim should error")
	}
}

func TestGrayLabelsAdjacency(t *testing.T) {
	s := scheme8x8(t, WithGrayLabels())
	// Under Gray labelling every horizontally or vertically adjacent
	// pair inside a block differs in exactly one bit.
	for by := 0; by < 4; by++ {
		for bx := 0; bx < 4; bx++ {
			p := s.PlaceOf(vcgrid.VC{CX: bx, CY: by})
			if bx+1 < 4 {
				q := s.PlaceOf(vcgrid.VC{CX: bx + 1, CY: by})
				if hypercube.Hamming(p.HNID, q.HNID) != 1 {
					t.Fatalf("gray horizontal pair (%d,%d) hamming != 1", bx, by)
				}
			}
			if by+1 < 4 {
				q := s.PlaceOf(vcgrid.VC{CX: bx, CY: by + 1})
				if hypercube.Hamming(p.HNID, q.HNID) != 1 {
					t.Fatalf("gray vertical pair (%d,%d) hamming != 1", bx, by)
				}
			}
		}
	}
	// Round trip still holds under Gray labels.
	for cy := 0; cy < 8; cy++ {
		for cx := 0; cx < 8; cx++ {
			v := vcgrid.VC{CX: cx, CY: cy}
			p := s.PlaceOf(v)
			if s.VCAt(p.HID, p.HNID) != v {
				t.Fatalf("gray round trip failed at %v", v)
			}
		}
	}
}

// Property check mirroring §4.1: CHID<->HNID one-to-one within a block,
// HNID->HID many-to-one, HID<->MNID one-to-one (MNID == HID by type).
func TestIdentifierRelations(t *testing.T) {
	s := scheme8x8(t)
	labelsPerHID := map[HID]map[hypercube.Label]CHID{}
	for cy := 0; cy < 8; cy++ {
		for cx := 0; cx < 8; cx++ {
			p := s.PlaceOf(vcgrid.VC{CX: cx, CY: cy})
			m, ok := labelsPerHID[p.HID]
			if !ok {
				m = map[hypercube.Label]CHID{}
				labelsPerHID[p.HID] = m
			}
			if prev, dup := m[p.HNID]; dup {
				t.Fatalf("HNID %v maps to CHIDs %d and %d in HID %d", p.HNID, prev, p.CHID, p.HID)
			}
			m[p.HNID] = p.CHID
		}
	}
	if len(labelsPerHID) != 4 {
		t.Fatalf("HIDs %d want 4", len(labelsPerHID))
	}
	for h, m := range labelsPerHID {
		if len(m) != 16 {
			t.Fatalf("HID %d has %d labels want 16 (many-to-one HNID->HID)", h, len(m))
		}
	}
}

// TestRoundTripProperty quick-checks PlaceOf/VCAt inversion over random
// grid shapes and dimensions.
func TestRoundTripProperty(t *testing.T) {
	f := func(colsSeed, rowsSeed, dimSeed, xSeed, ySeed uint8) bool {
		cols := 2 + int(colsSeed%14)
		rows := 2 + int(rowsSeed%14)
		dim := 1 + int(dimSeed%6)
		g := vcgrid.New(geom.RectWH(0, 0, float64(cols)*100, float64(rows)*100), 100)
		s, err := New(g, dim)
		if err != nil {
			return false
		}
		v := vcgrid.VC{CX: int(xSeed) % cols, CY: int(ySeed) % rows}
		p := s.PlaceOf(v)
		return s.VCAt(p.HID, p.HNID) == v && s.CHIDToPlace(p.CHID) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestHNIDUniquenessProperty: within any block, labels never collide.
func TestHNIDUniquenessProperty(t *testing.T) {
	f := func(dimSeed, graySeed uint8) bool {
		dim := 1 + int(dimSeed%6)
		var opts []Option
		if graySeed%2 == 1 {
			opts = append(opts, WithGrayLabels())
		}
		g := vcgrid.New(geom.RectWH(0, 0, 1600, 1600), 100) // 16x16
		s, err := New(g, dim, opts...)
		if err != nil {
			return false
		}
		seen := map[[2]int]bool{} // (HID, HNID)
		for cy := 0; cy < g.Rows(); cy++ {
			for cx := 0; cx < g.Cols(); cx++ {
				p := s.PlaceOf(vcgrid.VC{CX: cx, CY: cy})
				key := [2]int{int(p.HID), int(p.HNID)}
				if seen[key] {
					return false
				}
				seen[key] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
