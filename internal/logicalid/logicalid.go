// Package logicalid implements the paper's logical identifier scheme
// (§4.1): "a simple function is used to map each CH to a hypercube node,
// using system parameters such as central coordinate, length and width
// of the whole network, diameter of VCs, and dimension of logical
// hypercubes". It defines the four identifier kinds —
//
//	CHID — Cluster Head ID, one per virtual circle (1:1 with HNID),
//	HNID — Hypercube Node ID, the label within a logical hypercube,
//	HID  — Hypercube ID (many HNIDs to one HID),
//	MNID — Mesh Node ID (1:1 with HID),
//
// and the bidirectional mappings between them and grid geometry. The
// label layout reproduces the paper's Figure 3 exactly: within a block
// the label is the bit-interleaving of the VC's row and column indices
// (row bit, column bit, row bit, column bit, ... from the most
// significant end), which makes half the logical links coincide with
// grid adjacency and the other half the figure's "additional logical
// links" that jump two cells.
package logicalid

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/hypercube"
	"repro/internal/vcgrid"
)

// CHID identifies a cluster head slot; it equals the linear index of the
// VC the CH serves, so the CHID-HNID relation is one-to-one as required.
type CHID int

// HID identifies one logical hypercube; it equals the linear mesh index
// of the block, so the HID-MNID relation is one-to-one as required.
type HID int

// MNID identifies a mesh node. MNID == HID by construction.
type MNID = HID

// Scheme carries the system parameters of the mapping.
type Scheme struct {
	grid *vcgrid.Grid
	dim  int

	blockW, blockH int // VCs per hypercube block
	meshCols       int
	meshRows       int
	colBits        int // bits of the label taken from the column index
	rowBits        int // bits of the label taken from the row index
	useGray        bool
}

// Option configures a Scheme.
type Option func(*Scheme)

// WithGrayLabels switches the in-block mapping from plain binary
// interleaving (the paper's Figure 3 layout) to Gray-coded interleaving,
// under which *every* grid-adjacent VC pair inside a block is also a
// hypercube neighbor. It exists for the label-mapping ablation.
func WithGrayLabels() Option { return func(s *Scheme) { s.useGray = true } }

// New builds the identifier scheme for the given grid and hypercube
// dimension. The block shape is 2^ceil(dim/2) columns by
// 2^floor(dim/2) rows (square for even dim, 2:1 for odd). The grid need
// not divide evenly into blocks: edge blocks simply have absent labels,
// i.e. incomplete hypercubes, which the model embraces.
func New(grid *vcgrid.Grid, dim int, opts ...Option) (*Scheme, error) {
	if dim < 1 || dim > hypercube.MaxDim {
		return nil, fmt.Errorf("logicalid: dimension %d out of range [1,%d]", dim, hypercube.MaxDim)
	}
	s := &Scheme{grid: grid, dim: dim}
	s.colBits = (dim + 1) / 2
	s.rowBits = dim / 2
	s.blockW = 1 << uint(s.colBits)
	s.blockH = 1 << uint(s.rowBits)
	s.meshCols = (grid.Cols() + s.blockW - 1) / s.blockW
	s.meshRows = (grid.Rows() + s.blockH - 1) / s.blockH
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// Grid returns the underlying VC grid.
func (s *Scheme) Grid() *vcgrid.Grid { return s.grid }

// Dim returns the hypercube dimension.
func (s *Scheme) Dim() int { return s.dim }

// BlockSize returns the block shape in VCs (columns, rows).
func (s *Scheme) BlockSize() (w, h int) { return s.blockW, s.blockH }

// MeshSize returns the mesh-tier shape (columns, rows of hypercubes).
func (s *Scheme) MeshSize() (cols, rows int) { return s.meshCols, s.meshRows }

// NumHypercubes returns the number of mesh nodes.
func (s *Scheme) NumHypercubes() int { return s.meshCols * s.meshRows }

// gray returns the standard reflected binary Gray code of v.
func gray(v int) int { return v ^ (v >> 1) }

// grayInv inverts gray.
func grayInv(g int) int {
	v := 0
	for ; g != 0; g >>= 1 {
		v ^= g
	}
	return v
}

// interleave packs row and column index bits into a label, row bit
// first from the MSB end, alternating while both have bits left; the
// axis with more bits contributes the leading bits.
func (s *Scheme) interleave(bx, by int) hypercube.Label {
	if s.useGray {
		bx, by = gray(bx), gray(by)
	}
	label := 0
	ci, ri := s.colBits-1, s.rowBits-1
	for pos := s.dim - 1; pos >= 0; pos-- {
		// Row bit goes at the most significant remaining position when
		// rows have as many bits left as columns (matches Figure 3:
		// k1 = row MSB for dim 4); otherwise columns lead.
		if ri >= ci && ri >= 0 {
			label |= ((by >> uint(ri)) & 1) << uint(pos)
			ri--
		} else {
			label |= ((bx >> uint(ci)) & 1) << uint(pos)
			ci--
		}
	}
	return hypercube.Label(label)
}

// deinterleave inverts interleave.
func (s *Scheme) deinterleave(l hypercube.Label) (bx, by int) {
	ci, ri := s.colBits-1, s.rowBits-1
	for pos := s.dim - 1; pos >= 0; pos-- {
		bit := (int(l) >> uint(pos)) & 1
		if ri >= ci && ri >= 0 {
			by |= bit << uint(ri)
			ri--
		} else {
			bx |= bit << uint(ci)
			ci--
		}
	}
	if s.useGray {
		bx, by = grayInv(bx), grayInv(by)
	}
	return bx, by
}

// Place is the full logical location of one VC: which hypercube (HID ==
// MNID), which node within it (HNID), and the flat CHID.
type Place struct {
	CHID CHID
	HID  HID
	HNID hypercube.Label
}

// PlaceOf returns the logical location of a VC. Invalid VCs panic — the
// caller owns grid bounds.
func (s *Scheme) PlaceOf(v vcgrid.VC) Place {
	if !s.grid.Valid(v) {
		panic(fmt.Sprintf("logicalid: invalid VC %v", v))
	}
	mx, my := v.CX/s.blockW, v.CY/s.blockH
	bx, by := v.CX%s.blockW, v.CY%s.blockH
	return Place{
		CHID: CHID(s.grid.Index(v)),
		HID:  HID(my*s.meshCols + mx),
		HNID: s.interleave(bx, by),
	}
}

// PlaceAt returns the logical location of a geographic point.
func (s *Scheme) PlaceAt(p geom.Point) Place {
	return s.PlaceOf(s.grid.VCOf(p))
}

// VCAt inverts PlaceOf: the VC hosting the given hypercube node. The
// result may lie outside the grid when the edge block is partial; check
// with Grid().Valid.
func (s *Scheme) VCAt(h HID, l hypercube.Label) vcgrid.VC {
	mx, my := int(h)%s.meshCols, int(h)/s.meshCols
	bx, by := s.deinterleave(l)
	return vcgrid.VC{CX: mx*s.blockW + bx, CY: my*s.blockH + by}
}

// MeshCoord returns the mesh-tier coordinates of a hypercube.
func (s *Scheme) MeshCoord(h HID) (mx, my int) {
	return int(h) % s.meshCols, int(h) / s.meshCols
}

// HIDAt returns the hypercube at the given mesh coordinates, or -1 if
// outside the mesh.
func (s *Scheme) HIDAt(mx, my int) HID {
	if mx < 0 || mx >= s.meshCols || my < 0 || my >= s.meshRows {
		return -1
	}
	return HID(my*s.meshCols + mx)
}

// MeshNeighbors returns the 4-neighborhood of h at the mesh tier.
func (s *Scheme) MeshNeighbors(h HID) []HID {
	mx, my := s.MeshCoord(h)
	out := make([]HID, 0, 4)
	for _, c := range [4][2]int{{mx - 1, my}, {mx + 1, my}, {mx, my - 1}, {mx, my + 1}} {
		if n := s.HIDAt(c[0], c[1]); n >= 0 {
			out = append(out, n)
		}
	}
	return out
}

// IsBorder reports whether a VC borders another hypercube block — its
// CH would be a Border Cluster Head (BCH). All other CHs are Inner
// Cluster Heads (ICHs).
func (s *Scheme) IsBorder(v vcgrid.VC) bool {
	bx, by := v.CX%s.blockW, v.CY%s.blockH
	if bx == 0 && v.CX > 0 {
		return true
	}
	if bx == s.blockW-1 && v.CX < s.grid.Cols()-1 {
		return true
	}
	if by == 0 && v.CY > 0 {
		return true
	}
	if by == s.blockH-1 && v.CY < s.grid.Rows()-1 {
		return true
	}
	return false
}

// BlockVCs returns the valid VCs of the hypercube h, i.e. the present
// label slots of the (possibly incomplete at the grid edge) cube.
func (s *Scheme) BlockVCs(h HID) []vcgrid.VC {
	mx, my := s.MeshCoord(h)
	var out []vcgrid.VC
	for by := 0; by < s.blockH; by++ {
		for bx := 0; bx < s.blockW; bx++ {
			v := vcgrid.VC{CX: mx*s.blockW + bx, CY: my*s.blockH + by}
			if s.grid.Valid(v) {
				out = append(out, v)
			}
		}
	}
	return out
}

// CHIDToPlace resolves a CHID to its full logical location.
func (s *Scheme) CHIDToPlace(c CHID) Place {
	return s.PlaceOf(s.grid.FromIndex(int(c)))
}

// BorderPairs returns, for the hypercube pair (h, g) adjacent on the
// mesh, the VC pairs (one in h, one in g) whose tiles share an edge —
// the candidate BCH-BCH logical links between adjacent mesh nodes. It
// returns nil when h and g are not mesh-adjacent.
func (s *Scheme) BorderPairs(h, g HID) [][2]vcgrid.VC {
	hx, hy := s.MeshCoord(h)
	gx, gy := s.MeshCoord(g)
	dx, dy := gx-hx, gy-hy
	if dx*dx+dy*dy != 1 {
		return nil
	}
	var out [][2]vcgrid.VC
	for _, v := range s.BlockVCs(h) {
		w := vcgrid.VC{CX: v.CX + dx, CY: v.CY + dy}
		if s.grid.Valid(w) && s.PlaceOf(w).HID == g {
			out = append(out, [2]vcgrid.VC{v, w})
		}
	}
	return out
}
