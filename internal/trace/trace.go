// Package trace provides structured, levelled event tracing for
// simulation runs. Experiments run with tracing disabled (the default
// no-op sink costs one branch per call); debugging sessions attach a
// writer sink and optionally filter by category.
//
// The categories mirror the protocol layers of the reproduction so a
// trace of a run reads like the paper's walk-through of its algorithms:
// cluster formation, logical route maintenance, membership summaries,
// and multicast forwarding.
package trace

import (
	"fmt"
	"io"
	"sync"
)

// Category classifies a trace event by subsystem.
type Category int

// Trace categories, one per protocol subsystem.
const (
	Sim Category = iota
	Mobility
	Radio
	Cluster
	Routes
	Membership
	Multicast
	Baseline
	NumCategories
)

var categoryNames = [NumCategories]string{
	"sim", "mobility", "radio", "cluster", "routes", "membership",
	"multicast", "baseline",
}

// String implements fmt.Stringer.
func (c Category) String() string {
	if c < 0 || c >= NumCategories {
		return fmt.Sprintf("category(%d)", int(c))
	}
	return categoryNames[c]
}

// Tracer receives trace events. Implementations must be cheap when
// disabled.
type Tracer interface {
	// Enabled reports whether events of the category are recorded; call
	// sites use it to skip argument formatting entirely.
	Enabled(c Category) bool
	// Eventf records one event at simulated time now.
	Eventf(c Category, now float64, format string, args ...any)
}

// Nop is a Tracer that records nothing.
var Nop Tracer = nop{}

type nop struct{}

func (nop) Enabled(Category) bool                    { return false }
func (nop) Eventf(Category, float64, string, ...any) {}

// Writer traces to an io.Writer with per-category enablement. It is safe
// for use from a single simulation goroutine; the mutex exists only so
// multiple concurrent *runs* may share a writer in debugging sessions.
type Writer struct {
	mu      sync.Mutex
	w       io.Writer
	enabled [NumCategories]bool
	events  uint64
}

// NewWriter returns a tracer that writes the given categories to w. With
// no categories, all are enabled.
func NewWriter(w io.Writer, cats ...Category) *Writer {
	t := &Writer{w: w}
	if len(cats) == 0 {
		for i := range t.enabled {
			t.enabled[i] = true
		}
		return t
	}
	for _, c := range cats {
		if c >= 0 && c < NumCategories {
			t.enabled[c] = true
		}
	}
	return t
}

// Enabled implements Tracer.
func (t *Writer) Enabled(c Category) bool {
	return c >= 0 && c < NumCategories && t.enabled[c]
}

// Eventf implements Tracer.
func (t *Writer) Eventf(c Category, now float64, format string, args ...any) {
	if !t.Enabled(c) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events++
	fmt.Fprintf(t.w, "%10.4f %-10s %s\n", now, c, fmt.Sprintf(format, args...))
}

// Events returns the number of events recorded.
func (t *Writer) Events() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Counter counts events per category without formatting them; the
// experiment harness uses it to assert protocol activity cheaply.
type Counter struct {
	Counts [NumCategories]uint64
}

// Enabled implements Tracer: a counter accepts every category.
func (t *Counter) Enabled(Category) bool { return true }

// Eventf implements Tracer.
func (t *Counter) Eventf(c Category, _ float64, _ string, _ ...any) {
	if c >= 0 && c < NumCategories {
		t.Counts[c]++
	}
}
