package trace

import (
	"strings"
	"testing"
)

func TestNop(t *testing.T) {
	if Nop.Enabled(Multicast) {
		t.Fatal("Nop must be disabled")
	}
	Nop.Eventf(Multicast, 1, "ignored %d", 1) // must not panic
}

func TestWriterAllCategories(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	for c := Category(0); c < NumCategories; c++ {
		if !w.Enabled(c) {
			t.Fatalf("category %v should be enabled by default", c)
		}
	}
	w.Eventf(Cluster, 1.5, "node %d elected", 7)
	out := b.String()
	if !strings.Contains(out, "cluster") || !strings.Contains(out, "node 7 elected") {
		t.Fatalf("unexpected output %q", out)
	}
	if w.Events() != 1 {
		t.Fatalf("Events=%d", w.Events())
	}
}

func TestWriterFiltered(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b, Routes)
	if w.Enabled(Multicast) {
		t.Fatal("multicast should be filtered out")
	}
	w.Eventf(Multicast, 0, "dropped")
	w.Eventf(Routes, 0, "kept")
	if strings.Contains(b.String(), "dropped") {
		t.Fatal("filtered event was written")
	}
	if !strings.Contains(b.String(), "kept") {
		t.Fatal("enabled event was not written")
	}
	if w.Events() != 1 {
		t.Fatalf("Events=%d want 1", w.Events())
	}
}

func TestCategoryString(t *testing.T) {
	if Sim.String() != "sim" || Membership.String() != "membership" {
		t.Fatal("category names wrong")
	}
	if got := Category(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("out-of-range category string %q", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if !c.Enabled(Radio) {
		t.Fatal("counter accepts everything")
	}
	c.Eventf(Radio, 0, "x")
	c.Eventf(Radio, 0, "y")
	c.Eventf(Cluster, 0, "z")
	c.Eventf(Category(-1), 0, "ignored")
	if c.Counts[Radio] != 2 || c.Counts[Cluster] != 1 {
		t.Fatalf("counts %v", c.Counts)
	}
}
