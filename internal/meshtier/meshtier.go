// Package meshtier implements the mesh tier of the HVDB model: "a
// logical 2-dimensional mesh network by viewing each k-dimensional
// hypercube as one mesh node ... possibly an incomplete mesh" (§3).
// Mesh node IDs are the HIDs of package logicalid (row-major ints).
//
// Routing is dimension-ordered (XY) when the path is intact, with BFS
// fallback through present nodes otherwise — the same structure as the
// hypercube tier, at mesh geometry.
package meshtier

import (
	"fmt"
)

// ID is a mesh node identifier: row-major index, identical in value to
// logicalid.HID (kept as int here so meshtier stays dependency-free).
type ID = int

// Mesh is a possibly incomplete 2-D mesh.
type Mesh struct {
	cols, rows int
	present    []bool
	count      int
}

// New returns an all-absent mesh of the given shape. It panics on
// non-positive dimensions — a configuration error.
func New(cols, rows int) *Mesh {
	if cols <= 0 || rows <= 0 {
		panic(fmt.Sprintf("meshtier: invalid shape %dx%d", cols, rows))
	}
	return &Mesh{cols: cols, rows: rows, present: make([]bool, cols*rows)}
}

// Complete returns a mesh with every node present.
func Complete(cols, rows int) *Mesh {
	m := New(cols, rows)
	for i := range m.present {
		m.present[i] = true
	}
	m.count = len(m.present)
	return m
}

// Cols returns the number of columns.
func (m *Mesh) Cols() int { return m.cols }

// Rows returns the number of rows.
func (m *Mesh) Rows() int { return m.rows }

// Size returns cols*rows.
func (m *Mesh) Size() int { return len(m.present) }

// Count returns the number of present nodes.
func (m *Mesh) Count() int { return m.count }

// Coord returns the (x, y) of an ID.
func (m *Mesh) Coord(id ID) (x, y int) { return id % m.cols, id / m.cols }

// At returns the ID at (x, y), or -1 outside the mesh.
func (m *Mesh) At(x, y int) ID {
	if x < 0 || x >= m.cols || y < 0 || y >= m.rows {
		return -1
	}
	return y*m.cols + x
}

// Has reports whether id is present.
func (m *Mesh) Has(id ID) bool {
	return id >= 0 && id < len(m.present) && m.present[id]
}

// Add marks id present; out-of-range IDs panic.
func (m *Mesh) Add(id ID) {
	if id < 0 || id >= len(m.present) {
		panic(fmt.Sprintf("meshtier: id %d outside %dx%d mesh", id, m.cols, m.rows))
	}
	if !m.present[id] {
		m.present[id] = true
		m.count++
	}
}

// Remove marks id absent.
func (m *Mesh) Remove(id ID) {
	if id >= 0 && id < len(m.present) && m.present[id] {
		m.present[id] = false
		m.count--
	}
}

// Present returns all present IDs in ascending order.
func (m *Mesh) Present() []ID {
	out := make([]ID, 0, m.count)
	for id, ok := range m.present {
		if ok {
			out = append(out, id)
		}
	}
	return out
}

// Neighbors returns the present 4-neighbors of id.
func (m *Mesh) Neighbors(id ID) []ID {
	x, y := m.Coord(id)
	out := make([]ID, 0, 4)
	for _, c := range [4][2]int{{x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}} {
		if n := m.At(c[0], c[1]); n >= 0 && m.present[n] {
			out = append(out, n)
		}
	}
	return out
}

// XYPath returns the dimension-ordered path from src to dst (x first,
// then y), ignoring presence — the complete-mesh baseline route.
func (m *Mesh) XYPath(src, dst ID) []ID {
	sx, sy := m.Coord(src)
	dx, dy := m.Coord(dst)
	path := []ID{src}
	for x := sx; x != dx; {
		if x < dx {
			x++
		} else {
			x--
		}
		path = append(path, m.At(x, sy))
	}
	for y := sy; y != dy; {
		if y < dy {
			y++
		} else {
			y--
		}
		path = append(path, m.At(dx, y))
	}
	return path
}

// Route returns a shortest path from src to dst through present nodes
// (inclusive), or nil if disconnected. XY routing is tried first; BFS
// covers the faulted case.
func (m *Mesh) Route(src, dst ID) []ID {
	if !m.Has(src) || !m.Has(dst) {
		return nil
	}
	if src == dst {
		return []ID{src}
	}
	xy := m.XYPath(src, dst)
	ok := true
	for _, id := range xy {
		if !m.present[id] {
			ok = false
			break
		}
	}
	if ok {
		return xy
	}
	return m.bfs(src, dst)
}

func (m *Mesh) bfs(src, dst ID) []ID {
	prev := make([]ID, len(m.present))
	seen := make([]bool, len(m.present))
	seen[src] = true
	frontier := []ID{src}
	for len(frontier) > 0 {
		var next []ID
		for _, u := range frontier {
			for _, v := range m.Neighbors(u) {
				if seen[v] {
					continue
				}
				seen[v] = true
				prev[v] = u
				if v == dst {
					var rev []ID
					for cur := dst; ; cur = prev[cur] {
						rev = append(rev, cur)
						if cur == src {
							break
						}
					}
					for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
						rev[i], rev[j] = rev[j], rev[i]
					}
					return rev
				}
				next = append(next, v)
			}
		}
		frontier = next
	}
	return nil
}

// Distance returns the hop length of Route, or -1 if disconnected.
func (m *Mesh) Distance(src, dst ID) int {
	p := m.Route(src, dst)
	if p == nil {
		return -1
	}
	return len(p) - 1
}

// Connected reports whether the present nodes form one component.
func (m *Mesh) Connected() bool {
	if m.count == 0 {
		return true
	}
	start := -1
	for id, ok := range m.present {
		if ok {
			start = id
			break
		}
	}
	seen := make([]bool, len(m.present))
	seen[start] = true
	reached := 1
	stack := []ID{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range m.Neighbors(u) {
			if !seen[v] {
				seen[v] = true
				reached++
				stack = append(stack, v)
			}
		}
	}
	return reached == m.count
}

// MulticastTree computes a multicast tree from root over the present
// mesh covering dests, as parent pointers (root maps to itself). This is
// the mesh-tier tree of the paper's Figure 6 step 2, built greedily from
// XY paths (which share prefixes) with BFS fallback around absent mesh
// nodes. Unreachable or absent destinations are returned in missed.
func (m *Mesh) MulticastTree(root ID, dests []ID) (tree map[ID]ID, missed []ID) {
	tree = map[ID]ID{root: root}
	if !m.Has(root) {
		return tree, append(missed, dests...)
	}
	for _, d := range dests {
		if !m.Has(d) {
			missed = append(missed, d)
			continue
		}
		if _, ok := tree[d]; ok {
			continue
		}
		path := m.pathToTree(root, d, tree)
		if path == nil {
			missed = append(missed, d)
			continue
		}
		for i := 1; i < len(path); i++ {
			if _, ok := tree[path[i]]; !ok {
				tree[path[i]] = path[i-1]
			}
		}
	}
	return tree, missed
}

func (m *Mesh) pathToTree(root, d ID, tree map[ID]ID) []ID {
	xy := m.XYPath(root, d)
	ok := true
	for _, id := range xy {
		if !m.present[id] {
			ok = false
			break
		}
	}
	if ok {
		last := 0
		for i, id := range xy {
			if _, in := tree[id]; in {
				last = i
			}
		}
		return xy[last:]
	}
	// BFS from d outward to the nearest in-tree node; prev points back
	// toward d, so walking prev from the found tree node yields a
	// tree-node-first path.
	prev := make([]ID, len(m.present))
	seen := make([]bool, len(m.present))
	seen[d] = true
	frontier := []ID{d}
	for len(frontier) > 0 {
		var next []ID
		for _, u := range frontier {
			for _, v := range m.Neighbors(u) {
				if seen[v] {
					continue
				}
				seen[v] = true
				prev[v] = u
				if _, in := tree[v]; in {
					path := []ID{v}
					for cur := v; cur != d; {
						cur = prev[cur]
						path = append(path, cur)
					}
					return path
				}
				next = append(next, v)
			}
		}
		frontier = next
	}
	return nil
}

// TreeEdges converts parent pointers to a child adjacency list.
func TreeEdges(tree map[ID]ID) map[ID][]ID {
	out := make(map[ID][]ID, len(tree))
	for child, parent := range tree {
		if child != parent {
			out[parent] = append(out[parent], child)
		}
	}
	return out
}
