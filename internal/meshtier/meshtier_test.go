package meshtier

import (
	"testing"

	"repro/internal/xrand"
)

func TestShapeAndCoords(t *testing.T) {
	m := Complete(4, 3)
	if m.Cols() != 4 || m.Rows() != 3 || m.Size() != 12 || m.Count() != 12 {
		t.Fatal("shape wrong")
	}
	x, y := m.Coord(7)
	if x != 3 || y != 1 {
		t.Fatalf("Coord(7) = %d,%d", x, y)
	}
	if m.At(3, 1) != 7 {
		t.Fatalf("At(3,1) = %d", m.At(3, 1))
	}
	if m.At(-1, 0) != -1 || m.At(4, 0) != -1 || m.At(0, 3) != -1 {
		t.Fatal("out-of-mesh At should be -1")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(0, 5)
}

func TestAddRemove(t *testing.T) {
	m := New(3, 3)
	m.Add(4)
	m.Add(4)
	if m.Count() != 1 || !m.Has(4) {
		t.Fatal("Add failed")
	}
	m.Remove(4)
	if m.Count() != 0 || m.Has(4) {
		t.Fatal("Remove failed")
	}
	if m.Has(-1) || m.Has(9) {
		t.Fatal("out-of-range Has should be false")
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(2, 2).Add(4)
}

func TestNeighbors(t *testing.T) {
	m := Complete(3, 3)
	if got := len(m.Neighbors(4)); got != 4 { // center
		t.Fatalf("center neighbors %d", got)
	}
	if got := len(m.Neighbors(0)); got != 2 { // corner
		t.Fatalf("corner neighbors %d", got)
	}
	m.Remove(1)
	if got := len(m.Neighbors(0)); got != 1 {
		t.Fatalf("neighbors after removal %d", got)
	}
}

func TestXYPath(t *testing.T) {
	m := Complete(4, 4)
	p := m.XYPath(0, 15) // (0,0) -> (3,3)
	if len(p) != 7 {
		t.Fatalf("XY path length %d want 7", len(p))
	}
	// X-first: second node is (1,0) = 1.
	if p[1] != 1 {
		t.Fatalf("XY path %v should go x-first", p)
	}
	// Reverse direction.
	q := m.XYPath(15, 0)
	if len(q) != 7 || q[1] != 14 {
		t.Fatalf("reverse XY path %v", q)
	}
}

func TestRouteCompleteAndFault(t *testing.T) {
	m := Complete(4, 4)
	p := m.Route(0, 15)
	if len(p) != 7 {
		t.Fatalf("route length %d", len(p))
	}
	// Punch out the XY path's corner; route must detour at same length.
	m.Remove(3) // (3,0), the XY turn point
	p = m.Route(0, 15)
	if p == nil || len(p) != 7 {
		t.Fatalf("detour route %v", p)
	}
	for _, id := range p {
		if id == 3 {
			t.Fatal("route through removed node")
		}
	}
}

func TestRouteAdjacencyValidity(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 200; trial++ {
		m := Complete(5, 5)
		for i := 0; i < 8; i++ {
			m.Remove(rng.Intn(25))
		}
		ids := m.Present()
		if len(ids) < 2 {
			continue
		}
		src := ids[rng.Intn(len(ids))]
		dst := ids[rng.Intn(len(ids))]
		p := m.Route(src, dst)
		if p == nil {
			continue
		}
		for i := 1; i < len(p); i++ {
			x1, y1 := m.Coord(p[i-1])
			x2, y2 := m.Coord(p[i])
			man := abs(x1-x2) + abs(y1-y2)
			if man != 1 || !m.Has(p[i]) {
				t.Fatalf("invalid route step %d->%d in %v", p[i-1], p[i], p)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestRouteDisconnected(t *testing.T) {
	m := New(3, 1)
	m.Add(0)
	m.Add(2)
	if m.Route(0, 2) != nil {
		t.Fatal("disconnected route should be nil")
	}
	if m.Distance(0, 2) != -1 {
		t.Fatal("disconnected distance should be -1")
	}
}

func TestRouteSelfAndMissing(t *testing.T) {
	m := Complete(2, 2)
	if p := m.Route(1, 1); len(p) != 1 {
		t.Fatalf("self route %v", p)
	}
	m.Remove(0)
	if m.Route(0, 1) != nil || m.Route(1, 0) != nil {
		t.Fatal("route with absent endpoint should be nil")
	}
}

func TestConnected(t *testing.T) {
	m := New(3, 3)
	if !m.Connected() {
		t.Fatal("empty mesh vacuously connected")
	}
	m.Add(0)
	m.Add(8)
	if m.Connected() {
		t.Fatal("two distant nodes disconnected")
	}
	for _, id := range []ID{1, 2, 5} {
		m.Add(id)
	}
	if !m.Connected() {
		t.Fatal("L-chain should connect 0 to 8")
	}
}

func TestMulticastTree(t *testing.T) {
	m := Complete(4, 4)
	tree, missed := m.MulticastTree(0, []ID{5, 15, 12})
	if len(missed) != 0 {
		t.Fatalf("missed %v", missed)
	}
	for _, d := range []ID{5, 15, 12} {
		cur := d
		for steps := 0; cur != 0; steps++ {
			if steps > 16 {
				t.Fatalf("dest %d does not reach root", d)
			}
			parent, ok := tree[cur]
			if !ok {
				t.Fatalf("dangling node %d", cur)
			}
			x1, y1 := m.Coord(parent)
			x2, y2 := m.Coord(cur)
			if abs(x1-x2)+abs(y1-y2) != 1 {
				t.Fatalf("non-adjacent tree edge %d-%d", parent, cur)
			}
			cur = parent
		}
	}
}

func TestMulticastTreeSharing(t *testing.T) {
	m := Complete(4, 1) // a line: 0-1-2-3
	tree, _ := m.MulticastTree(0, []ID{2, 3})
	// Path to 3 extends path to 2; tree = {0,1,2,3}.
	if len(tree) != 4 {
		t.Fatalf("tree size %d want 4: %v", len(tree), tree)
	}
}

func TestMulticastTreeFaultsAndMissed(t *testing.T) {
	m := Complete(3, 3)
	m.Remove(1) // block XY path 0->2
	tree, missed := m.MulticastTree(0, []ID{2})
	if len(missed) != 0 {
		t.Fatalf("missed %v; a detour exists", missed)
	}
	cur := ID(2)
	for cur != 0 {
		parent := tree[cur]
		if parent == 1 {
			t.Fatal("tree through removed node")
		}
		cur = parent
	}
	// Isolate node 8.
	m.Remove(5)
	m.Remove(7)
	_, missed = m.MulticastTree(0, []ID{8})
	if len(missed) != 1 || missed[0] != 8 {
		t.Fatalf("missed %v want [8]", missed)
	}
	// Absent root misses everything.
	m2 := New(2, 2)
	m2.Add(1)
	_, missed2 := m2.MulticastTree(0, []ID{1})
	if len(missed2) != 1 {
		t.Fatal("absent root should miss all")
	}
}

func TestTreeEdges(t *testing.T) {
	tree := map[ID]ID{0: 0, 1: 0, 2: 1}
	edges := TreeEdges(tree)
	if len(edges[0]) != 1 || edges[0][0] != 1 {
		t.Fatalf("edges %v", edges)
	}
	if len(edges[1]) != 1 || edges[1][0] != 2 {
		t.Fatalf("edges %v", edges)
	}
}

func TestDistanceCompleteManhattan(t *testing.T) {
	m := Complete(6, 6)
	rng := xrand.New(2)
	for trial := 0; trial < 100; trial++ {
		a, b := rng.Intn(36), rng.Intn(36)
		x1, y1 := m.Coord(a)
		x2, y2 := m.Coord(b)
		if got := m.Distance(a, b); got != abs(x1-x2)+abs(y1-y2) {
			t.Fatalf("distance %d->%d = %d want manhattan", a, b, got)
		}
	}
}
