// Package gps models the positioning service the paper assumes every
// mobile node carries ("each MN can acquire its location information
// such as geographical position, moving velocity, and moving direction,
// using some devices such as a GPS").
//
// The paper treats positioning as an oracle; we reproduce that default
// but also provide a noisy receiver so experiments can probe how much
// positioning error the logical-location machinery tolerates — a natural
// sensitivity study the paper's model invites.
package gps

import (
	"repro/internal/geom"
	"repro/internal/xrand"
)

// Fix is one positioning read-out: where the node is and how it moves.
type Fix struct {
	Pos geom.Point
	Vel geom.Vector // meters per simulated second
}

// Source yields ground-truth kinematic state; mobility models implement
// it.
type Source interface {
	// TrueFix returns the node's exact position and velocity at time now.
	TrueFix(now float64) Fix
}

// Receiver turns ground truth into the fix protocols observe.
type Receiver interface {
	// Fix samples the receiver at time now.
	Fix(src Source, now float64) Fix
}

// Oracle is the paper's idealized GPS: it reports the true state.
type Oracle struct{}

// Fix implements Receiver.
func (Oracle) Fix(src Source, now float64) Fix { return src.TrueFix(now) }

// Noisy perturbs position with zero-mean Gaussian error of the given
// standard deviation per axis (meters) and velocity with SigmaVel
// (meters/second per axis). A Noisy receiver with zero sigmas behaves
// like Oracle.
type Noisy struct {
	SigmaPos float64
	SigmaVel float64
	Rand     *xrand.Rand
}

// NewNoisy returns a receiver adding Gaussian error from its own PRNG
// stream.
func NewNoisy(sigmaPos, sigmaVel float64, rng *xrand.Rand) *Noisy {
	return &Noisy{SigmaPos: sigmaPos, SigmaVel: sigmaVel, Rand: rng}
}

// Fix implements Receiver.
func (n *Noisy) Fix(src Source, now float64) Fix {
	f := src.TrueFix(now)
	if n.SigmaPos > 0 {
		f.Pos.X += n.Rand.NormFloat64() * n.SigmaPos
		f.Pos.Y += n.Rand.NormFloat64() * n.SigmaPos
	}
	if n.SigmaVel > 0 {
		f.Vel.DX += n.Rand.NormFloat64() * n.SigmaVel
		f.Vel.DY += n.Rand.NormFloat64() * n.SigmaVel
	}
	return f
}

// StaticSource is a Source pinned at one point with zero velocity; handy
// in tests and for infrastructure nodes.
type StaticSource geom.Point

// TrueFix implements Source.
func (s StaticSource) TrueFix(float64) Fix {
	return Fix{Pos: geom.Point(s)}
}
