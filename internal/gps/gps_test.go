package gps

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

func TestOracleReportsTruth(t *testing.T) {
	src := StaticSource(geom.Pt(10, 20))
	f := Oracle{}.Fix(src, 5)
	if f.Pos != geom.Pt(10, 20) || f.Vel != (geom.Vector{}) {
		t.Fatalf("oracle fix %+v", f)
	}
}

func TestNoisyZeroSigmaIsOracle(t *testing.T) {
	src := StaticSource(geom.Pt(1, 2))
	n := NewNoisy(0, 0, xrand.New(1))
	if f := n.Fix(src, 0); f.Pos != geom.Pt(1, 2) {
		t.Fatalf("zero-sigma noisy fix %+v", f)
	}
}

func TestNoisyErrorStatistics(t *testing.T) {
	src := StaticSource(geom.Pt(0, 0))
	n := NewNoisy(5, 0, xrand.New(2))
	const samples = 20000
	var sumX, sumX2 float64
	for i := 0; i < samples; i++ {
		f := n.Fix(src, 0)
		sumX += f.Pos.X
		sumX2 += f.Pos.X * f.Pos.X
	}
	mean := sumX / samples
	std := math.Sqrt(sumX2/samples - mean*mean)
	if math.Abs(mean) > 0.2 {
		t.Errorf("noise mean %v want ~0", mean)
	}
	if math.Abs(std-5) > 0.2 {
		t.Errorf("noise std %v want ~5", std)
	}
}

func TestNoisyVelocityError(t *testing.T) {
	src := StaticSource(geom.Pt(0, 0))
	n := NewNoisy(0, 1, xrand.New(3))
	diff := 0
	for i := 0; i < 100; i++ {
		if f := n.Fix(src, 0); f.Vel != (geom.Vector{}) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("velocity noise never applied")
	}
}
