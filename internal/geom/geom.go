// Package geom provides the 2-D geometric primitives used throughout the
// simulator: points, vectors, circles, and rectangles. All coordinates are
// in meters in a flat Euclidean plane, which matches the paper's model of
// a geographical area divided into equal circular regions.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane, in meters.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by the vector v.
func (p Point) Add(v Vector) Point { return Point{p.X + v.DX, p.Y + v.DY} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vector { return Vector{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred comparison form on hot paths such
// as neighbor discovery.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// In reports whether p lies inside the rectangle r (inclusive of the
// minimum edge, exclusive of the maximum edge, so that tiling rectangles
// partition the plane).
func (p Point) In(r Rect) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y) }

// Vector is a displacement in the plane, in meters.
type Vector struct {
	DX, DY float64
}

// Vec is shorthand for Vector{dx, dy}.
func Vec(dx, dy float64) Vector { return Vector{DX: dx, DY: dy} }

// Add returns the component-wise sum v+w.
func (v Vector) Add(w Vector) Vector { return Vector{v.DX + w.DX, v.DY + w.DY} }

// Scale returns v scaled by s.
func (v Vector) Scale(s float64) Vector { return Vector{v.DX * s, v.DY * s} }

// Len returns the Euclidean length of v.
func (v Vector) Len() float64 { return math.Hypot(v.DX, v.DY) }

// Dot returns the dot product of v and w.
func (v Vector) Dot(w Vector) float64 { return v.DX*w.DX + v.DY*w.DY }

// Unit returns the unit vector in the direction of v. The zero vector is
// returned unchanged.
func (v Vector) Unit() Vector {
	l := v.Len()
	if l == 0 {
		return Vector{}
	}
	return Vector{v.DX / l, v.DY / l}
}

// Angle returns the direction of v in radians in (-pi, pi].
func (v Vector) Angle() float64 { return math.Atan2(v.DY, v.DX) }

// FromPolar returns the vector with the given length and direction
// (radians).
func FromPolar(length, angle float64) Vector {
	return Vector{length * math.Cos(angle), length * math.Sin(angle)}
}

// Circle is a disc with center C and radius R, used both for radio ranges
// and for the paper's Virtual Circles.
type Circle struct {
	C Point
	R float64
}

// Contains reports whether p is inside or on the circle.
func (c Circle) Contains(p Point) bool {
	return c.C.Dist2(p) <= c.R*c.R
}

// Overlaps reports whether two circles intersect (share at least one
// point).
func (c Circle) Overlaps(d Circle) bool {
	rr := c.R + d.R
	return c.C.Dist2(d.C) <= rr*rr
}

// Rect is an axis-aligned rectangle [Min, Max).
type Rect struct {
	Min, Max Point
}

// RectWH returns the rectangle with origin (x, y) and the given width and
// height.
func RectWH(x, y, w, h float64) Rect {
	return Rect{Min: Pt(x, y), Max: Pt(x+w, y+h)}
}

// W returns the rectangle's width.
func (r Rect) W() float64 { return r.Max.X - r.Min.X }

// H returns the rectangle's height.
func (r Rect) H() float64 { return r.Max.Y - r.Min.Y }

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Pt((r.Min.X+r.Max.X)/2, (r.Min.Y+r.Max.Y)/2)
}

// Clamp returns p constrained to lie within r (inclusive of both edges).
func (r Rect) Clamp(p Point) Point {
	return Pt(clamp(p.X, r.Min.X, r.Max.X), clamp(p.Y, r.Min.Y, r.Max.Y))
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Reflect bounces the point p off the walls of r, mutating the velocity v
// as needed, and returns the reflected point and velocity. It is used by
// mobility models with billiard boundary behaviour.
func (r Rect) Reflect(p Point, v Vector) (Point, Vector) {
	for i := 0; i < 8; i++ { // bounded number of bounces per step
		changed := false
		if p.X < r.Min.X {
			p.X = 2*r.Min.X - p.X
			v.DX = -v.DX
			changed = true
		} else if p.X > r.Max.X {
			p.X = 2*r.Max.X - p.X
			v.DX = -v.DX
			changed = true
		}
		if p.Y < r.Min.Y {
			p.Y = 2*r.Min.Y - p.Y
			v.DY = -v.DY
			changed = true
		} else if p.Y > r.Max.Y {
			p.Y = 2*r.Max.Y - p.Y
			v.DY = -v.DY
			changed = true
		}
		if !changed {
			return p, v
		}
	}
	// Degenerate velocity far larger than the arena: clamp.
	return r.Clamp(p), v
}

// SegmentCircleIntersect reports whether the segment from a to b passes
// within radius r of center c. It is used for conservative link
// obstruction tests.
func SegmentCircleIntersect(a, b, c Point, r float64) bool {
	ab := b.Sub(a)
	ac := c.Sub(a)
	abLen2 := ab.Dot(ab)
	t := 0.0
	if abLen2 > 0 {
		t = ac.Dot(ab) / abLen2
	}
	t = clamp(t, 0, 1)
	closest := a.Add(ab.Scale(t))
	return closest.Dist2(c) <= r*r
}
