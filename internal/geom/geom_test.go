package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		d    float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-1, -1), Pt(2, 3), 5},
		{Pt(0, 0), Pt(0, 7.5), 7.5},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); !almostEq(got, c.d) {
			t.Errorf("Dist(%v,%v)=%v want %v", c.p, c.q, got, c.d)
		}
		if got := c.p.Dist2(c.q); !almostEq(got, c.d*c.d) {
			t.Errorf("Dist2(%v,%v)=%v want %v", c.p, c.q, got, c.d*c.d)
		}
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		d1, d2 := a.Dist(b), b.Dist(a)
		return d1 == d2 || almostEq(d1, d2) // == handles +Inf for extreme inputs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Pt(float64(ax), float64(ay))
		b := Pt(float64(bx), float64(by))
		c := Pt(float64(cx), float64(cy))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorOps(t *testing.T) {
	v := Vec(3, 4)
	if !almostEq(v.Len(), 5) {
		t.Errorf("Len=%v want 5", v.Len())
	}
	u := v.Unit()
	if !almostEq(u.Len(), 1) {
		t.Errorf("Unit().Len()=%v want 1", u.Len())
	}
	if got := Vec(0, 0).Unit(); got != (Vector{}) {
		t.Errorf("zero Unit=%v want zero", got)
	}
	if got := v.Scale(2); !almostEq(got.Len(), 10) {
		t.Errorf("Scale(2).Len()=%v want 10", got.Len())
	}
	if got := v.Add(Vec(-3, -4)); got != (Vector{}) {
		t.Errorf("Add inverse = %v want zero", got)
	}
	if got := v.Dot(Vec(4, -3)); !almostEq(got, 0) {
		t.Errorf("perpendicular Dot=%v want 0", got)
	}
}

func TestFromPolarRoundTrip(t *testing.T) {
	f := func(l uint8, a float64) bool {
		length := float64(l) + 0.5
		angle := math.Mod(a, math.Pi) // keep away from branch cut
		v := FromPolar(length, angle)
		return almostEq(v.Len(), length)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointAddSub(t *testing.T) {
	p := Pt(1, 2)
	q := p.Add(Vec(3, -1))
	if q != Pt(4, 1) {
		t.Fatalf("Add got %v", q)
	}
	if d := q.Sub(p); d != Vec(3, -1) {
		t.Fatalf("Sub got %v", d)
	}
}

func TestCircleContains(t *testing.T) {
	c := Circle{C: Pt(0, 0), R: 10}
	if !c.Contains(Pt(0, 10)) {
		t.Error("boundary point should be contained")
	}
	if !c.Contains(Pt(7, 7)) {
		t.Error("interior point should be contained")
	}
	if c.Contains(Pt(8, 8)) {
		t.Error("exterior point should not be contained")
	}
}

func TestCircleOverlaps(t *testing.T) {
	a := Circle{C: Pt(0, 0), R: 5}
	b := Circle{C: Pt(10, 0), R: 5}
	if !a.Overlaps(b) {
		t.Error("tangent circles should overlap")
	}
	c := Circle{C: Pt(10.1, 0), R: 5}
	if a.Overlaps(c) {
		t.Error("separated circles should not overlap")
	}
	if !a.Overlaps(a) {
		t.Error("circle overlaps itself")
	}
}

func TestRectBasics(t *testing.T) {
	r := RectWH(0, 0, 100, 50)
	if r.W() != 100 || r.H() != 50 {
		t.Fatalf("W/H got %v %v", r.W(), r.H())
	}
	if r.Center() != Pt(50, 25) {
		t.Fatalf("Center got %v", r.Center())
	}
	if !Pt(0, 0).In(r) {
		t.Error("min corner should be inside (half-open)")
	}
	if Pt(100, 50).In(r) {
		t.Error("max corner should be outside (half-open)")
	}
	if got := r.Clamp(Pt(-5, 60)); got != Pt(0, 50) {
		t.Errorf("Clamp got %v", got)
	}
}

func TestRectReflect(t *testing.T) {
	r := RectWH(0, 0, 100, 100)
	p, v := r.Reflect(Pt(-10, 50), Vec(-1, 0))
	if p != Pt(10, 50) {
		t.Errorf("reflected point %v want (10,50)", p)
	}
	if v != Vec(1, 0) {
		t.Errorf("reflected velocity %v want (1,0)", v)
	}
	// In-bounds points are untouched.
	p, v = r.Reflect(Pt(40, 40), Vec(1, 1))
	if p != Pt(40, 40) || v != Vec(1, 1) {
		t.Errorf("in-bounds reflect changed state: %v %v", p, v)
	}
}

func TestRectReflectStaysInsideProperty(t *testing.T) {
	r := RectWH(0, 0, 100, 100)
	f := func(x, y int16, vx, vy int8) bool {
		p := Pt(float64(x%120), float64(y%120))
		v := Vec(float64(vx), float64(vy))
		q, _ := r.Reflect(p, v)
		return q.X >= 0 && q.X <= 100 && q.Y >= 0 && q.Y <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentCircleIntersect(t *testing.T) {
	if !SegmentCircleIntersect(Pt(0, 0), Pt(10, 0), Pt(5, 3), 4) {
		t.Error("segment passes within radius; want intersect")
	}
	if SegmentCircleIntersect(Pt(0, 0), Pt(10, 0), Pt(5, 5), 4) {
		t.Error("segment stays outside radius; want no intersect")
	}
	// Degenerate zero-length segment behaves as a point test.
	if !SegmentCircleIntersect(Pt(5, 0), Pt(5, 0), Pt(5, 1), 2) {
		t.Error("degenerate segment within radius; want intersect")
	}
}

func TestVectorAngle(t *testing.T) {
	if a := Vec(1, 0).Angle(); !almostEq(a, 0) {
		t.Errorf("angle of +x = %v", a)
	}
	if a := Vec(0, 1).Angle(); !almostEq(a, math.Pi/2) {
		t.Errorf("angle of +y = %v", a)
	}
}
