// Package viz renders ASCII views of a running HVDB world: the VC grid
// with cluster-head occupancy and roles (the paper's Figure 2 as a live
// snapshot), one hypercube's label layout with presence (Figure 3), and
// the mesh tier. The renderings are used by cmd/hvdbmap and by examples
// for human-readable snapshots; they are deliberately plain text so they
// diff well in tests.
package viz

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/logicalid"
	"repro/internal/network"
	"repro/internal/vcgrid"
)

// GridView renders the VC grid, one cell per VC, rows printed north to
// south:
//
//	B  border CH present (BCH)
//	i  inner CH present (ICH)
//	.  no cluster head (incomplete slot)
//
// Block borders between hypercubes are drawn with | and -.
func GridView(bb *core.Backbone) string {
	scheme := bb.Scheme()
	grid := scheme.Grid()
	blockW, blockH := scheme.BlockSize()
	var b strings.Builder
	for cy := grid.Rows() - 1; cy >= 0; cy-- {
		if (cy+1)%blockH == 0 && cy != grid.Rows()-1 {
			// Horizontal separator between block rows.
			for cx := 0; cx < grid.Cols(); cx++ {
				if cx > 0 && cx%blockW == 0 {
					b.WriteString("+-")
				} else if cx > 0 {
					b.WriteString("--")
				}
				b.WriteString("-")
			}
			b.WriteByte('\n')
		}
		for cx := 0; cx < grid.Cols(); cx++ {
			if cx > 0 {
				if cx%blockW == 0 {
					b.WriteString("| ")
				} else {
					b.WriteString("  ")
				}
			}
			vc := vcgrid.VC{CX: cx, CY: cy}
			slot := logicalid.CHID(grid.Index(vc))
			switch {
			case bb.CHNodeOf(slot) == network.NoNode:
				b.WriteByte('.')
			case scheme.IsBorder(vc):
				b.WriteByte('B')
			default:
				b.WriteByte('i')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CubeView renders one hypercube's label layout with presence: present
// labels print as their bit strings, absent slots as dashes — Figure 3
// with live occupancy.
func CubeView(bb *core.Backbone, h logicalid.HID) string {
	scheme := bb.Scheme()
	grid := scheme.Grid()
	blockW, blockH := scheme.BlockSize()
	mx, my := scheme.MeshCoord(h)
	var b strings.Builder
	fmt.Fprintf(&b, "hypercube %d (mesh %d,%d), dim %d:\n", h, mx, my, scheme.Dim())
	for by := blockH - 1; by >= 0; by-- {
		for bx := 0; bx < blockW; bx++ {
			if bx > 0 {
				b.WriteByte(' ')
			}
			vc := vcgrid.VC{CX: mx*blockW + bx, CY: my*blockH + by}
			if !grid.Valid(vc) {
				b.WriteString(strings.Repeat("x", scheme.Dim()))
				continue
			}
			place := scheme.PlaceOf(vc)
			if bb.CHNodeOf(place.CHID) == network.NoNode {
				b.WriteString(strings.Repeat("-", scheme.Dim()))
			} else {
				b.WriteString(place.HNID.Bits(scheme.Dim()))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MeshView renders the mesh tier: # for actual mesh nodes (hypercubes
// with at least one CH), . for empty blocks.
func MeshView(bb *core.Backbone) string {
	mesh := bb.Mesh()
	var b strings.Builder
	for y := mesh.Rows() - 1; y >= 0; y-- {
		for x := 0; x < mesh.Cols(); x++ {
			if x > 0 {
				b.WriteByte(' ')
			}
			if mesh.Has(mesh.At(x, y)) {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary renders a one-paragraph textual snapshot of the backbone.
func Summary(bb *core.Backbone, cm *cluster.Manager) string {
	scheme := bb.Scheme()
	heads := cm.Heads()
	bch, ich := 0, 0
	for vc := range heads {
		if scheme.IsBorder(vc) {
			bch++
		} else {
			ich++
		}
	}
	complete := 0
	for h := 0; h < scheme.NumHypercubes(); h++ {
		c := bb.Cube(logicalid.HID(h))
		if c.Count() == c.Size() {
			complete++
		}
	}
	mesh := bb.Mesh()
	return fmt.Sprintf(
		"backbone: %d/%d VCs headed (%d BCH, %d ICH); %d/%d hypercubes complete; mesh %d/%d nodes, connected=%v",
		len(heads), scheme.Grid().Count(), bch, ich,
		complete, scheme.NumHypercubes(),
		mesh.Count(), mesh.Size(), mesh.Connected(),
	)
}
