package viz

import (
	"strings"
	"testing"

	"repro/internal/logicalid"
	"repro/internal/scenario"
	"repro/internal/vcgrid"
)

func buildWorld(t *testing.T) *scenario.World {
	t.Helper()
	spec := scenario.DefaultSpec()
	spec.Nodes = 0 // anchors only: fully occupied backbone
	w, err := scenario.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGridViewFullBackbone(t *testing.T) {
	w := buildWorld(t)
	out := GridView(w.BB)
	if strings.Contains(out, ".") {
		t.Fatalf("fully anchored backbone should have no empty slots:\n%s", out)
	}
	if !strings.Contains(out, "B") || !strings.Contains(out, "i") {
		t.Fatalf("expected both BCH and ICH markers:\n%s", out)
	}
	if !strings.Contains(out, "|") {
		t.Fatalf("expected block separators:\n%s", out)
	}
	// 8 rows of cells plus 1 separator row.
	if got := strings.Count(out, "\n"); got != 9 {
		t.Fatalf("line count %d want 9:\n%s", got, out)
	}
}

func TestGridViewShowsHoles(t *testing.T) {
	w := buildWorld(t)
	w.Net.Node(w.CM.CHOf(vcgrid.VC{CX: 1, CY: 1})).Fail()
	w.CM.Elect()
	out := GridView(w.BB)
	if !strings.Contains(out, ".") {
		t.Fatalf("failed CH should render as hole:\n%s", out)
	}
}

func TestCubeView(t *testing.T) {
	w := buildWorld(t)
	out := CubeView(w.BB, 0)
	// The Figure 3 layout appears with rows top-down (north first):
	// bottom line of the print is by=0: 0000 0001 0100 0101.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if last != "0000 0001 0100 0101" {
		t.Fatalf("bottom row %q want Figure 3's first row", last)
	}
	// Kill a CH: its label becomes dashes.
	w.Net.Node(w.CM.CHOf(vcgrid.VC{CX: 0, CY: 0})).Fail()
	w.CM.Elect()
	out = CubeView(w.BB, 0)
	if !strings.Contains(out, "----") {
		t.Fatalf("absent label should render as dashes:\n%s", out)
	}
}

func TestMeshView(t *testing.T) {
	w := buildWorld(t)
	out := MeshView(w.BB)
	if strings.Count(out, "#") != 4 {
		t.Fatalf("mesh should have 4 actual nodes:\n%s", out)
	}
	// Empty an entire block: its mesh node must vanish.
	for _, vc := range w.Scheme.BlockVCs(logicalid.HID(3)) {
		if ch := w.CM.CHOf(vc); ch >= 0 {
			w.Net.Node(ch).Fail()
		}
	}
	w.CM.Elect()
	out = MeshView(w.BB)
	if strings.Count(out, "#") != 3 || !strings.Contains(out, ".") {
		t.Fatalf("mesh after emptying block 3:\n%s", out)
	}
}

func TestSummary(t *testing.T) {
	w := buildWorld(t)
	s := Summary(w.BB, w.CM)
	for _, want := range []string{"64/64 VCs", "4/4 hypercubes", "connected=true"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q: %s", want, s)
		}
	}
}
