package scenario

import (
	"reflect"
	"testing"
)

// assertNoPacketLeaks drains the simulator and checks the pooled-packet
// acquire/release balance — the world-teardown leak check.
func assertNoPacketLeaks(t *testing.T, w *World) {
	t.Helper()
	w.Sim.Run()
	if n := w.Net.PooledInFlight(); n != 0 {
		t.Fatalf("pooled-packet leak: %d packets still checked out after teardown", n)
	}
}

func TestScriptValidate(t *testing.T) {
	bad := []Directive{
		{At: -1, Kind: KindNodeChurn, Count: 1, Period: 1, Duration: 1},
		{Kind: "warp-drive"},
		{Kind: KindNodeChurn, Count: 0, Period: 1, Duration: 1},
		{Kind: KindNodeChurn, Count: 1, Period: 10, Duration: 2},
		{Kind: KindMemberChurn, Count: 1, Period: 0, Duration: 1},
		{Kind: KindMemberChurn, Count: 1, Period: 1, Duration: 1, Group: -1},
		{Kind: KindTraffic, Pattern: PatternCBR, Packets: 1, Interval: 1, Payload: 64, Group: -2},
		{Kind: KindTraffic, Pattern: PatternCBR, Packets: 0, Interval: 1, Payload: 64},
		{Kind: KindTraffic, Pattern: PatternCBR, Packets: 1, Interval: 1, Payload: 0},
		{Kind: KindTraffic, Pattern: "morse", Packets: 1, Interval: 1, Payload: 64},
		{Kind: KindTraffic, Pattern: PatternPoisson, Packets: 1, Interval: 1, Payload: 64},
		{Kind: KindTraffic, Pattern: PatternOnOff, Packets: 1, Interval: 1, Payload: 64, Duration: 5},
		{Kind: KindTraffic, Pattern: PatternFlash, Packets: 1, Interval: 1, Payload: 64, Duration: 5},
		{Kind: KindRadioLoss, Loss: 1.5, Duration: 1},
		{Kind: KindRadioLoss, Loss: 0.5},
		{Kind: KindPartition},
		{Kind: KindPartition, Duration: 5, Frac: 1},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad directive %d (%+v) validated", i, d)
		}
	}
	if err := (&Script{Name: "empty"}).Validate(); err == nil {
		t.Error("empty script validated")
	}
}

func TestBuiltinScriptsValid(t *testing.T) {
	for _, name := range BuiltinScripts() {
		s, err := BuiltinScript(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Horizon() <= 0 {
			t.Fatalf("%s: zero horizon", name)
		}
	}
	if _, err := BuiltinScript("nope"); err == nil {
		t.Fatal("unknown built-in should error")
	}
}

func TestParseScript(t *testing.T) {
	src := `{
	  "name": "mini",
	  "directives": [
	    {"at": 0, "kind": "traffic", "pattern": "cbr",
	     "group": 0, "interval": 0.5, "packets": 3, "payload": 128},
	    {"at": 1, "kind": "radio-loss", "loss": 0.2, "duration": 2}
	  ]
	}`
	s, err := ParseScript([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "mini" || len(s.Directives) != 2 {
		t.Fatalf("parsed %+v", s)
	}
	if _, err := ParseScript([]byte(`{"name":"x","directives":[{"kind":"traffic","warp":9}]}`)); err == nil {
		t.Fatal("unknown field should be rejected")
	}
	if _, err := ParseScript([]byte(`{"name":"x","directives":[]}`)); err == nil {
		t.Fatal("empty script should be rejected")
	}
	if _, err := ParseScript([]byte(src + `{"oops":1}`)); err == nil {
		t.Fatal("trailing data after the script should be rejected")
	}
}

func TestRunScriptDeliversAndIsDeterministic(t *testing.T) {
	sc, err := BuiltinScript("churn-storm")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *ScriptResult {
		spec := DefaultSpec()
		spec.Seed = 7
		spec.Nodes = 60
		spec.Groups = 1
		spec.MembersPerGroup = 8
		spec.Mobility = Static
		w, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		stk, err := w.Protocol("hvdb")
		if err != nil {
			t.Fatal(err)
		}
		stk.Start()
		w.WarmUp(12)
		res, err := w.RunScript(stk, sc)
		if err != nil {
			t.Fatal(err)
		}
		stk.Stop()
		assertNoPacketLeaks(t, w)
		return res
	}
	a, b := run(), run()
	if a.Sent == 0 || a.Expected == 0 {
		t.Fatalf("script generated no traffic: %+v", a)
	}
	if a.PDR() < 0.5 {
		t.Fatalf("PDR %.2f under churn storm below 0.5 (%d/%d)", a.PDR(), a.Delivered, a.Expected)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("script run not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestScriptRestoresWorldState(t *testing.T) {
	// Deliberately overlapping windows — two radio-loss windows of
	// different levels and two concurrent node-churn bursts — so the
	// restore paths are exercised under composition, not just alone.
	sc := &Script{Name: "restore", Directives: []Directive{
		{At: 0, Kind: KindTraffic, Pattern: PatternCBR, Interval: 0.5, Packets: 4, Payload: 128},
		{At: 0.5, Kind: KindRadioLoss, Loss: 0.9, Duration: 2},
		{At: 1, Kind: KindRadioLoss, Loss: 0.4, Duration: 4},
		{At: 1, Kind: KindPartition, Frac: 0.3, Duration: 3},
		{At: 1, Kind: KindNodeChurn, Count: 2, Period: 1, Duration: 3},
		{At: 2, Kind: KindNodeChurn, Count: 1, Period: 1, Duration: 4},
	}}
	spec := DefaultSpec()
	spec.Seed = 3
	spec.Nodes = 50
	spec.Groups = 1
	spec.MembersPerGroup = 6
	spec.Mobility = Static
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	lossBefore := make([]float64, w.Net.Len())
	for _, n := range w.Net.Nodes() {
		lossBefore[n.ID] = n.Radio.LossProb
	}
	stk, err := w.Protocol("flooding")
	if err != nil {
		t.Fatal(err)
	}
	stk.Start()
	w.WarmUp(2)
	if _, err := w.RunScript(stk, sc); err != nil {
		t.Fatal(err)
	}
	stk.Stop()
	// Every window must have closed: all nodes back up, loss restored.
	for _, n := range w.Net.Nodes() {
		if !n.Up() {
			t.Fatalf("node %d still down after partition/churn windows closed", n.ID)
		}
		if n.Radio.LossProb != lossBefore[n.ID] {
			t.Fatalf("node %d loss %g not restored to %g", n.ID, n.Radio.LossProb, lossBefore[n.ID])
		}
	}
	assertNoPacketLeaks(t, w)
}

// TestOnOffIntervalLongerThanPeriod: a send gap that overshoots whole
// on/off cycles must resume at a future on phase, never schedule into
// the past (this panicked the kernel before the catch-up loop).
func TestOnOffIntervalLongerThanPeriod(t *testing.T) {
	sc := &Script{Name: "overshoot", Directives: []Directive{
		{At: 0, Kind: KindTraffic, Pattern: PatternOnOff, Interval: 2.5, Period: 1, Duration: 12, Packets: 4, Payload: 64},
	}}
	spec := DefaultSpec()
	spec.Nodes = 30
	spec.Mobility = Static
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	stk, err := w.Protocol("flooding")
	if err != nil {
		t.Fatal(err)
	}
	stk.Start()
	w.WarmUp(2)
	res, err := w.RunScript(stk, sc)
	if err != nil {
		t.Fatal(err)
	}
	stk.Stop()
	if res.Sent == 0 {
		t.Fatal("overshooting on/off generator sent nothing")
	}
}

// TestRunScriptRejectsUnknownGroup: group references are validated
// against the world, not just statically.
func TestRunScriptRejectsUnknownGroup(t *testing.T) {
	sc := &Script{Name: "typo", Directives: []Directive{
		{At: 0, Kind: KindTraffic, Pattern: PatternCBR, Group: 7, Interval: 1, Packets: 2, Payload: 64},
	}}
	spec := DefaultSpec()
	spec.Nodes = 20
	spec.Mobility = Static
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	stk, err := w.Protocol("flooding")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunScript(stk, sc); err == nil {
		t.Fatal("group 7 on a 1-group world should be rejected")
	}
}

func TestScriptMemberChurnTracksAudience(t *testing.T) {
	sc := &Script{Name: "churny", Directives: []Directive{
		{At: 0, Kind: KindTraffic, Pattern: PatternCBR, Interval: 1, Packets: 8, Payload: 128},
		{At: 0.5, Kind: KindMemberChurn, Count: 1, Period: 1, Duration: 6},
	}}
	spec := DefaultSpec()
	spec.Seed = 11
	spec.Nodes = 60
	spec.Groups = 1
	spec.MembersPerGroup = 8
	spec.Mobility = Static
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	stk, err := w.Protocol("flooding")
	if err != nil {
		t.Fatal(err)
	}
	stk.Start()
	w.WarmUp(2)
	res, err := w.RunScript(stk, sc)
	if err != nil {
		t.Fatal(err)
	}
	stk.Stop()
	// Flooding reaches every connected node, so delivery against the
	// *current* membership must stay near-perfect through the churn.
	if res.PDR() < 0.9 {
		t.Fatalf("flooding PDR %.2f under member churn (%d/%d)", res.PDR(), res.Delivered, res.Expected)
	}
	assertNoPacketLeaks(t, w)
}
