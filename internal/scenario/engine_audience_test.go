package scenario

import "testing"

// TestAudienceBoundedAndReleasedAtTeardown is the audience-map
// counterpart of the pooled-packet leak check: retained per-packet
// audience state must stay proportional to the send rate over one
// audienceTTL window (entries release once fully accounted or on TTL
// expiry), and the map must be empty once the script drains.
func TestAudienceBoundedAndReleasedAtTeardown(t *testing.T) {
	sc := &Script{Name: "audience-bound", Directives: []Directive{
		// 40 sends over ~20 s: far longer than one TTL window, so a
		// regression back to retain-forever shows up as a peak near the
		// total send count.
		{At: 0, Kind: KindTraffic, Pattern: PatternCBR, Group: 0,
			Interval: 0.5, Packets: 40, Payload: 256},
	}}
	spec := DefaultSpec()
	spec.Seed = 11
	spec.Nodes = 60
	spec.Groups = 1
	spec.MembersPerGroup = 8
	spec.Mobility = Static
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	stk, err := w.Protocol("hvdb")
	if err != nil {
		t.Fatal(err)
	}
	stk.Start()
	w.WarmUp(10)
	res, err := w.RunScript(stk, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("script sent nothing; the audience checks below would be vacuous")
	}
	if res.AudienceOpen != 0 {
		t.Errorf("audience entries leaked: %d still tracked at teardown", res.AudienceOpen)
	}
	if res.AudiencePeak == 0 {
		t.Error("AudiencePeak = 0: sends were not tracked at all")
	}
	// TTL is 5 s and the send gap 0.5 s, so even if nothing were ever
	// fully accounted the live window holds ~11 entries; give slack for
	// in-flight stragglers but stay far under the total send count.
	if limit := 15; res.AudiencePeak > limit {
		t.Errorf("AudiencePeak = %d for %d sends; want <= %d (entries must be released on the fly, not retained for the run)",
			res.AudiencePeak, res.Sent, limit)
	}
	stk.Stop()
	assertNoPacketLeaks(t, w)
}
