package scenario

import (
	"testing"

	"repro/internal/des"
	"repro/internal/membership"
	"repro/internal/network"
	"repro/internal/protocol"
)

func TestBuildDefault(t *testing.T) {
	w, err := Build(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if w.Net.Len() != 64+200 {
		t.Fatalf("nodes %d want 264 (64 anchors + 200 ordinary)", w.Net.Len())
	}
	if len(w.Anchors) != 64 || len(w.Ordinary) != 200 {
		t.Fatalf("anchors %d ordinary %d", len(w.Anchors), len(w.Ordinary))
	}
	if w.Scheme.NumHypercubes() != 4 {
		t.Fatalf("hypercubes %d want 4", w.Scheme.NumHypercubes())
	}
	if len(w.Members[0]) != 10 {
		t.Fatalf("group members %d want 10", len(w.Members[0]))
	}
	// Anchors guarantee every VC has a CH after the initial election.
	if got := len(w.CM.Heads()); got != 64 {
		t.Fatalf("clusters headed %d want 64", got)
	}
}

func TestBuildValidation(t *testing.T) {
	bad := DefaultSpec()
	bad.ArenaSize = 0
	if _, err := Build(bad); err == nil {
		t.Fatal("zero arena should fail")
	}
	bad = DefaultSpec()
	bad.Dim = 99
	if _, err := Build(bad); err == nil {
		t.Fatal("absurd dimension should fail")
	}
}

func TestBuildDeterministic(t *testing.T) {
	spec := DefaultSpec()
	spec.Nodes = 50
	a, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Net.Len(); i++ {
		pa := a.Net.Node(network.NodeID(i)).TruePos()
		pb := b.Net.Node(network.NodeID(i)).TruePos()
		if pa != pb {
			t.Fatalf("node %d placed at %v vs %v for same seed", i, pa, pb)
		}
	}
	if len(a.Members[0]) != len(b.Members[0]) {
		t.Fatal("group assignment not deterministic")
	}
	for i := range a.Members[0] {
		if a.Members[0][i] != b.Members[0][i] {
			t.Fatal("group members differ across identical builds")
		}
	}
}

func TestMobilityKinds(t *testing.T) {
	for _, kind := range []MobilityKind{Static, Waypoint, Walk, GaussMarkov, GroupMotion, Manhattan} {
		spec := DefaultSpec()
		spec.Nodes = 20
		spec.Mobility = kind
		w, err := Build(spec)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		w.Sim.RunUntil(5)
		for _, id := range w.Ordinary {
			p := w.Net.Node(id).TruePos()
			if p.X < 0 || p.X > spec.ArenaSize || p.Y < 0 || p.Y > spec.ArenaSize {
				t.Fatalf("%s: node %d escaped arena: %v", kind, id, p)
			}
		}
	}
}

func TestNoAnchorsCapableFraction(t *testing.T) {
	spec := DefaultSpec()
	spec.AnchorCHs = false
	spec.CHCapableFrac = 0.5
	spec.Nodes = 200
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Anchors) != 0 {
		t.Fatal("anchors present despite AnchorCHs=false")
	}
	capable := 0
	for _, n := range w.Net.Nodes() {
		if n.CHCapable {
			capable++
		}
	}
	if capable < 60 || capable > 140 {
		t.Fatalf("capable count %d far from half of 200", capable)
	}
}

func TestStartStopAndWarmUp(t *testing.T) {
	spec := DefaultSpec()
	spec.Nodes = 30
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	w.WarmUp(5)
	if w.Sim.Now() != 5 {
		t.Fatalf("warm-up ended at %v", w.Sim.Now())
	}
	if w.Net.Stats().ControlBytes != 0 {
		t.Fatal("WarmUp should reset traffic counters")
	}
	w.Stop()
	// Let in-flight packets drain, then the periodic planes must be
	// quiet: no new events in a later window.
	w.Sim.RunUntil(10)
	before := w.Sim.Executed()
	w.Sim.RunUntil(30)
	if got := w.Sim.Executed() - before; got != 0 {
		t.Fatalf("stack still active after Stop: %d events in the quiet window", got)
	}
}

func TestCBRSchedulesExactCount(t *testing.T) {
	spec := DefaultSpec()
	spec.Nodes = 10
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	w.CBR(func() uint64 { n++; return uint64(n) }, 0.5, 7)
	w.Sim.RunUntil(100)
	if n != 7 {
		t.Fatalf("CBR fired %d times want 7", n)
	}
}

func TestFailRandomAnchors(t *testing.T) {
	w, err := Build(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	failed := w.FailRandomAnchors(10)
	if len(failed) != 10 {
		t.Fatalf("failed %d want 10", len(failed))
	}
	for _, id := range failed {
		if w.Net.Node(id).Up() {
			t.Fatalf("node %d still up", id)
		}
	}
}

func TestProtocolArms(t *testing.T) {
	spec := DefaultSpec()
	spec.Nodes = 40
	spec.Groups = 1
	spec.MembersPerGroup = 5
	for _, name := range protocol.Names() {
		w, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		p, err := w.Protocol(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("name %q want %q", p.Name(), name)
		}
		p.Start()
		if name == "hvdb" {
			w.WarmUp(12) // the backbone needs convergence before sends start
		}
		uid := p.Send(w.RandomSource(), 0, 100)
		w.Sim.RunUntil(w.Sim.Now() + 10)
		p.Stop()
		if uid != 0 && p.Stats().Sent == 0 {
			t.Fatalf("%s: Stats().Sent not counted", name)
		}
	}
	w, _ := Build(spec)
	if _, err := w.Protocol("nope"); err == nil {
		t.Fatal("unknown protocol arm should error")
	}
}

func TestGroupMembershipJoined(t *testing.T) {
	spec := DefaultSpec()
	spec.Groups = 3
	spec.MembersPerGroup = 6
	spec.Nodes = 60
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 3; g++ {
		if len(w.Members[membership.Group(g)]) != 6 {
			t.Fatalf("group %d has %d members", g, len(w.Members[membership.Group(g)]))
		}
		for _, id := range w.Members[membership.Group(g)] {
			found := false
			for _, jg := range w.MS.GroupsOf(id) {
				if jg == membership.Group(g) {
					found = true
				}
			}
			if !found {
				t.Fatalf("member %d not joined to group %d in membership service", id, g)
			}
		}
	}
}

func TestRandomSourceIsOrdinary(t *testing.T) {
	w, err := Build(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		src := w.RandomSource()
		if w.Net.Node(src).CHCapable {
			t.Fatal("random source should be an ordinary node when available")
		}
	}
}

func TestGPSErrorSpec(t *testing.T) {
	spec := DefaultSpec()
	spec.Nodes = 30
	spec.GPSError = 20
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	// With 20 m positioning error, reported fixes differ from truth for
	// most nodes most of the time.
	differs := 0
	for _, n := range w.Net.Nodes() {
		if n.Fix().Pos != n.TruePos() {
			differs++
		}
	}
	if differs < w.Net.Len()/2 {
		t.Fatalf("only %d/%d noisy fixes differ from truth", differs, w.Net.Len())
	}
	// The stack must still converge and deliver despite the error.
	w.Start()
	w.WarmUp(12)
	delivered := 0
	w.MC.OnDeliver(func(network.NodeID, uint64, des.Time, int) { delivered++ })
	w.MC.Send(w.RandomSource(), 0, 128)
	w.Sim.RunUntil(w.Sim.Now() + 5)
	w.Stop()
	if delivered == 0 {
		t.Fatal("no delivery under 20 m GPS error")
	}
}
