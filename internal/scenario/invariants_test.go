package scenario

import (
	"testing"

	"repro/internal/des"
	"repro/internal/logicalid"
	"repro/internal/network"
)

// TestSystemInvariantsAcrossSeeds drives randomized worlds through a
// warm-up and checks the structural invariants of the model regardless
// of seed, mobility, or population:
//
//  1. every cluster head is CH-capable and up;
//  2. a node heads at most one VC;
//  3. the CH of a VC resides in that VC (by its own GPS fix);
//  4. logical neighbor relations are symmetric;
//  5. a hypercube's materialized cube matches the CH occupancy;
//  6. the mesh has a node exactly where a cube has members.
func TestSystemInvariantsAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		spec := DefaultSpec()
		spec.Seed = seed
		spec.Nodes = 60 + int(seed)*17
		spec.Mobility = []MobilityKind{Waypoint, Walk, GaussMarkov}[seed%3]
		spec.MaxSpeed = float64(2 + seed)
		w, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		w.Start()
		w.Sim.RunUntil(8)
		w.Stop()

		headsOf := map[network.NodeID]int{}
		for vc, ch := range w.CM.Heads() {
			n := w.Net.Node(ch)
			if n == nil || !n.Up() {
				t.Fatalf("seed %d: dead CH %d heads %v", seed, ch, vc)
			}
			if !n.CHCapable {
				t.Fatalf("seed %d: non-capable CH %d", seed, ch)
			}
			headsOf[ch]++
			if headsOf[ch] > 1 {
				t.Fatalf("seed %d: node %d heads multiple VCs", seed, ch)
			}
			if got := w.Grid.VCOf(n.Fix().Pos); got != vc {
				t.Fatalf("seed %d: CH %d of %v reports position in %v", seed, ch, vc, got)
			}
		}

		// Logical neighbor symmetry over occupied slots.
		for vc := range w.CM.Heads() {
			slot := logicalid.CHID(w.Grid.Index(vc))
			for _, nb := range w.BB.LogicalNeighbors(slot) {
				back := w.BB.LogicalNeighbors(nb)
				found := false
				for _, s := range back {
					if s == slot {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("seed %d: asymmetric logical link %d -> %d", seed, slot, nb)
				}
			}
		}

		// Cube occupancy and mesh presence consistency.
		mesh := w.BB.Mesh()
		for h := 0; h < w.Scheme.NumHypercubes(); h++ {
			cube := w.BB.Cube(logicalid.HID(h))
			occupied := 0
			for _, vc := range w.Scheme.BlockVCs(logicalid.HID(h)) {
				if w.CM.CHOf(vc) != network.NoNode {
					occupied++
					if !cube.Has(w.Scheme.PlaceOf(vc).HNID) {
						t.Fatalf("seed %d: cube %d missing occupied label", seed, h)
					}
				}
			}
			if cube.Count() != occupied {
				t.Fatalf("seed %d: cube %d count %d != occupied %d", seed, h, cube.Count(), occupied)
			}
			if mesh.Has(h) != (occupied > 0) {
				t.Fatalf("seed %d: mesh presence of %d inconsistent", seed, h)
			}
		}
	}
}

// TestDeterministicEndToEnd replays an identical scenario twice and
// demands bit-identical delivery traces — the reproducibility guarantee
// every experiment relies on.
func TestDeterministicEndToEnd(t *testing.T) {
	run := func() []uint64 {
		spec := DefaultSpec()
		spec.Seed = 77
		spec.Nodes = 70
		spec.Groups = 1
		spec.MembersPerGroup = 8
		w, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		w.Start()
		w.WarmUp(10)
		var traceLog []uint64
		w.MC.OnDeliver(func(member network.NodeID, uid uint64, born des.Time, hops int) {
			traceLog = append(traceLog, uint64(member)<<32|uid&0xffffffff)
		})
		src := w.Ordinary[3]
		for i := 0; i < 5; i++ {
			w.MC.Send(src, 0, 200)
			w.Sim.RunUntil(w.Sim.Now() + 1)
		}
		w.Sim.RunUntil(w.Sim.Now() + 5)
		w.Stop()
		return traceLog
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("delivery traces differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery traces diverge at %d", i)
		}
	}
}
