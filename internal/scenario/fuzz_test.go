package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseScript is the native fuzz target for the script JSON parser.
// The contract under fuzzing:
//
//   - malformed input returns an error, never panics;
//   - a successfully parsed script passes Validate (ParseScript already
//     validates — a parse that returns a script violating its own
//     validator would let invalid timetables reach RunScript);
//   - parsing round-trips: re-marshaling a parsed script and parsing it
//     again yields the same script, so shrunken fuzz scripts written to
//     JSON replay exactly (hvdbsim -script).
//
// Run it as a regression suite with plain `go test` (the committed
// corpus under testdata/fuzz/FuzzParseScript) or as a search with
// `go test -fuzz FuzzParseScript -fuzztime 30s ./internal/scenario/`.
func FuzzParseScript(f *testing.F) {
	for _, name := range BuiltinScripts() {
		s, err := BuiltinScript(name)
		if err != nil {
			f.Fatal(err)
		}
		data, err := json.Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","directives":[{"kind":"traffic","pattern":"cbr","interval":1e309}]}`))
	f.Add([]byte(`{"name":"x","directives":[null,{"at":"soon"}]}`))
	f.Add([]byte(`{"directives":[{"kind":"partition","duration":1,"frac":-0}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseScript(data)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "scenario: ") {
				t.Fatalf("parse error lost its package prefix: %v", err)
			}
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("ParseScript returned a script failing its own validator: %v", err)
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("parsed script does not re-marshal: %v", err)
		}
		s2, err := ParseScript(out)
		if err != nil {
			t.Fatalf("re-marshaled script does not re-parse: %v\njson: %s", err, out)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("script changed across a JSON round-trip:\nfirst:  %+v\nsecond: %+v", s, s2)
		}
	})
}

// TestParseScriptErrorNamesDirective pins the index attribution of
// directive-level parse errors: a type error or unknown field inside
// directive i must name i, so a long generated timetable can be fixed
// without binary-searching the JSON by hand.
func TestParseScriptErrorNamesDirective(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`{"name":"x","directives":[
			{"at":0,"kind":"radio-loss","loss":0.2,"duration":2},
			{"at":"tomorrow","kind":"radio-loss"}]}`, "directive 1:"},
		{`{"name":"x","directives":[{"kind":"traffic","warp":9}]}`, "directive 0:"},
		{`{"name":"x","directives":[
			{"at":0,"kind":"radio-loss","loss":0.2,"duration":2},
			{"at":0,"kind":"partition","duration":1},
			{"at":0,"kind":"node-churn","count":true}]}`, "directive 2:"},
	}
	for _, c := range cases {
		_, err := ParseScript([]byte(c.src))
		if err == nil {
			t.Fatalf("bad script parsed: %s", c.src)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("error %q does not name the offending directive (%s)", err, c.want)
		}
	}
}
