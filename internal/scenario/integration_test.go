package scenario

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/gps"
	"repro/internal/membership"
	"repro/internal/mobility"
	"repro/internal/network"
	"repro/internal/radio"
)

// slowMover crosses from one point to another at constant velocity —
// deterministic cross-hypercube motion for integration tests.
type slowMover struct {
	from geom.Point
	vel  geom.Vector
}

func (m *slowMover) Advance(float64)   {}
func (m *slowMover) PieceEnd() float64 { return math.Inf(1) }
func (m *slowMover) TrueFix(now float64) gps.Fix {
	return gps.Fix{Pos: m.from.Add(m.vel.Scale(now)), Vel: m.vel}
}
func (m *slowMover) DriftBound() (speed, jump float64) {
	return math.Hypot(m.vel.DX, m.vel.DY), 0
}

// TestMemberMigratesAcrossHypercubes is the end-to-end mobility test:
// a group member starts in hypercube 0, walks into hypercube 1, and
// multicast keeps reaching it in both positions once the periodic
// membership plane has refreshed.
func TestMemberMigratesAcrossHypercubes(t *testing.T) {
	spec := DefaultSpec()
	spec.Nodes = 0 // backbone anchors only; we add the actors by hand
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The migrating member: starts at VC (2,2) (cube 0), moves east at
	// 10 m/s, crossing into cube 1 (x >= 1000) at t=37.5.
	mover := w.Net.AddNode(&slowMover{from: geom.Pt(625, 625), vel: geom.Vec(10, 0)}, radio.DefaultMN, nil, false)
	w.Mux.BindNode(mover)
	// A static source in cube 2.
	src := w.Net.AddNode(&mobility.Static{P: geom.Pt(625, 1625)}, radio.DefaultMN, nil, false)
	w.Mux.BindNode(src)
	w.MS.Join(mover.ID, 3)

	w.Start()
	w.WarmUp(15) // membership converged; mover still in cube 0

	if got := w.Scheme.PlaceAt(mover.TruePos()).HID; got != 0 {
		t.Fatalf("mover should still be in cube 0 at t=15, got %d", got)
	}
	deliveries := 0
	w.MC.OnDeliver(func(member network.NodeID, uid uint64, born des.Time, hops int) {
		if member == mover.ID {
			deliveries++
		}
	})
	if w.MC.Send(src.ID, 3, 128) == 0 {
		t.Fatal("send 1 failed")
	}
	w.Sim.RunUntil(w.Sim.Now() + 5)
	if deliveries != 1 {
		t.Fatalf("delivery in cube 0 failed: %d", deliveries)
	}

	// Let the mover cross into cube 1 and the membership plane refresh
	// (local 1 s, MNT 2 s, HT 8 s periods; allow two HT rounds).
	w.Sim.RunUntil(60)
	if got := w.Scheme.PlaceAt(mover.TruePos()).HID; got != 1 {
		t.Fatalf("mover should be in cube 1 at t=60, got %d", got)
	}
	if w.MC.Send(src.ID, 3, 128) == 0 {
		t.Fatal("send 2 failed")
	}
	w.Sim.RunUntil(w.Sim.Now() + 5)
	w.Stop()
	if deliveries != 2 {
		t.Fatalf("delivery after migration failed: %d deliveries total", deliveries)
	}
	assertNoPacketLeaks(t, w)
}

// TestMulticastUnderContinuousMobility runs the full stack with every
// ordinary node moving and verifies sustained delivery over a long run.
func TestMulticastUnderContinuousMobility(t *testing.T) {
	spec := DefaultSpec()
	spec.Seed = 9
	spec.Nodes = 120
	spec.Mobility = Waypoint
	spec.MinSpeed = 2
	spec.MaxSpeed = 8
	spec.Pause = 2
	spec.Groups = 2
	spec.MembersPerGroup = 8
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	w.WarmUp(15)

	delivered := 0
	w.MC.OnDeliver(func(network.NodeID, uint64, des.Time, int) { delivered++ })
	sent := 0
	for i := 0; i < 12; i++ {
		g := membership.Group(i % 2)
		if w.MC.Send(w.RandomSource(), g, 256) != 0 {
			sent++
		}
		w.Sim.RunUntil(w.Sim.Now() + 2)
	}
	w.Sim.RunUntil(w.Sim.Now() + 5)
	w.Stop()

	expected := sent * spec.MembersPerGroup
	if expected == 0 {
		t.Fatal("nothing sent")
	}
	pdr := float64(delivered) / float64(expected)
	if pdr < 0.85 {
		t.Fatalf("PDR %.2f under mobility below 0.85 (%d/%d)", pdr, delivered, expected)
	}
	assertNoPacketLeaks(t, w)
}

// TestBackboneSurvivesMassAnchorFailure: availability at system level —
// a third of the backbone dies and multicast still delivers after
// re-convergence.
func TestBackboneSurvivesMassAnchorFailure(t *testing.T) {
	spec := DefaultSpec()
	spec.Seed = 13
	spec.Nodes = 80
	spec.Mobility = Static
	spec.Groups = 1
	spec.MembersPerGroup = 10
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	w.WarmUp(15)
	delivered := 0
	w.MC.OnDeliver(func(network.NodeID, uint64, des.Time, int) { delivered++ })

	w.FailRandomAnchors(len(w.Anchors) / 3)
	w.Sim.RunUntil(w.Sim.Now() + 12) // re-elect, re-beacon, re-summarize

	// Members whose VC lost its only CH-capable node are legitimately
	// unreachable (their cluster has no head); measure delivery against
	// the coverable members.
	coverable := 0
	for _, id := range w.Members[0] {
		vc := w.Grid.VCOf(w.Net.Node(id).TruePos())
		if w.CM.CHOf(vc) != network.NoNode {
			coverable++
		}
	}
	if coverable == 0 {
		t.Skip("all members lost their cluster heads in this draw")
	}
	sent := 0
	for i := 0; i < 5; i++ {
		if w.MC.Send(w.RandomSource(), 0, 128) != 0 {
			sent++
		}
		w.Sim.RunUntil(w.Sim.Now() + 1)
	}
	w.Sim.RunUntil(w.Sim.Now() + 5)
	w.Stop()
	if sent == 0 {
		t.Fatal("no sends succeeded")
	}
	pdr := float64(delivered) / float64(sent*coverable)
	if pdr < 0.8 {
		t.Fatalf("PDR %.2f of coverable members below 0.8 (%d/%d, %d of %d members coverable)",
			pdr, delivered, sent*coverable, coverable, len(w.Members[0]))
	}
	assertNoPacketLeaks(t, w)
}
