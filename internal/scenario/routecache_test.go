package scenario

import (
	"testing"
)

// TestRouteCacheInvalidationWiring exercises the cache's invalidation
// edges through the protocol plane, asserted via the Hits / Misses /
// Invalidated counters:
//
//   - sends populate the cache (misses) and repeat sends at an
//     unchanged version reuse it (hits);
//   - stack Join/Leave eagerly invalidates the group's entries;
//   - a partition directive (and its heal) invalidates everything.
func TestRouteCacheInvalidationWiring(t *testing.T) {
	spec := DefaultSpec()
	spec.Seed = 23
	spec.Nodes = 60
	spec.Mobility = Static // hold versions still between rounds
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	stk, err := w.Protocol("hvdb")
	if err != nil {
		t.Fatal(err)
	}
	stk.Start()
	w.WarmUp(12)
	cache := w.BB.Trees()

	send := func() {
		// The lowest-ID member is up in a static world; one send walks
		// the mesh and cube tiers, touching every tree on the path. The
		// multicast service fronts the route cache with a TTL layer
		// (Config.CacheTTL, 10s by default), so advance past it first:
		// only an expired TTL entry recomputes through bb.Trees().
		w.Sim.RunUntil(w.Sim.Now() + 11)
		if uid := stk.Send(w.Members[0][0], 0, 64); uid == 0 {
			t.Fatal("prime send failed")
		}
		w.Sim.RunUntil(w.Sim.Now() + 1)
	}

	send()
	if cache.Misses == 0 {
		t.Fatal("first send computed no trees through the cache")
	}
	if cache.Len() == 0 {
		t.Fatal("first send left the cache empty")
	}
	misses := cache.Misses
	send()
	if cache.Hits == 0 {
		t.Fatalf("repeat send at an unchanged version hit nothing (misses %d -> %d)", misses, cache.Misses)
	}

	// Leave: the group's entries must be eagerly dropped.
	inv := cache.Invalidated
	stk.Leave(w.Members[0][1], 0)
	if cache.Invalidated <= inv {
		t.Fatalf("Leave did not invalidate group entries (Invalidated still %d)", cache.Invalidated)
	}
	if cache.Len() != 0 {
		t.Fatalf("single-group world still holds %d entries after InvalidateGroup", cache.Len())
	}

	// Join: same eager hook; first repopulate so there is something to drop.
	send()
	if cache.Len() == 0 {
		t.Fatal("send after Leave did not repopulate the cache")
	}
	inv = cache.Invalidated
	stk.Join(w.Members[0][1], 0)
	if cache.Invalidated <= inv {
		t.Fatalf("Join did not invalidate group entries (Invalidated still %d)", cache.Invalidated)
	}

	// Partition open and heal: both ends of the window invalidate the
	// whole cache (plus any CH-churn invalidations the failures cause).
	send()
	if cache.Len() == 0 {
		t.Fatal("send before the partition did not repopulate the cache")
	}
	inv = cache.Invalidated
	sc := &Script{Name: "partition-only", Directives: []Directive{
		{At: 0, Kind: KindPartition, Frac: 0.25, Duration: 2},
	}}
	if _, err := w.RunScript(stk, sc); err != nil {
		t.Fatal(err)
	}
	if cache.Invalidated <= inv {
		t.Fatalf("partition/heal did not invalidate the cache (Invalidated still %d)", cache.Invalidated)
	}
	stk.Stop()
	assertNoPacketLeaks(t, w)
}
