package scenario

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/membership"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// scriptSeedSalt decorrelates script randomness from the world's build
// and mobility streams: directive i of a run with world seed s draws
// from runner.DeriveSeed(s ^ scriptSeedSalt, i).
const scriptSeedSalt = 0x5c71b7e1a9d2f04d

// drainMargin is how long RunScript keeps the simulator running past
// the script's horizon so in-flight packets settle.
const drainMargin des.Duration = 5

// audienceTTL bounds how long a packet's send-time audience entry is
// retained: an entry is released once every audience member has been
// accounted for, or this long after the send — whichever comes first.
// Deliveries settle well inside the drain margin (that is what
// drainMargin exists for), so the TTL reuses it; since every send
// happens at or before the script horizon (Directive.end bounds each
// generator), every entry expires by the end of the drain and the
// audience map is empty at teardown. This keeps live audience state
// proportional to the send rate over one TTL window instead of the
// total packet count of the run.
const audienceTTL = drainMargin

// ScriptResult reports the measured outcome of one script run.
type ScriptResult struct {
	// Script is the script's name.
	Script string
	// Sent counts successful sends; Expected the audience-member
	// deliveries those sends could have produced (live current members
	// at each send); Delivered those that arrived; Stale deliveries to
	// nodes outside the packet's send-time audience (e.g. members that
	// had already left).
	Sent, Expected, Delivered, Stale int
	// MeanDelay, P50Delay, and P95Delay summarize end-to-end delivery
	// delay in seconds.
	MeanDelay, P50Delay, P95Delay float64
	// CtrlPerNodeS is control overhead in bytes/node/second over the
	// script window.
	CtrlPerNodeS float64
	// Jain is the forwarding-load fairness index over live nodes,
	// covering traffic since the last counter reset.
	Jain float64
	// Elapsed is the simulated span of the run including the drain.
	Elapsed des.Duration
	// AudiencePeak is the high-water mark of concurrently tracked
	// audience entries — the engine's retained per-packet state is
	// bounded by the send rate over one audienceTTL window, not by the
	// total packet count. AudienceOpen is how many entries were still
	// tracked at teardown; it is always 0 (entries are released when
	// fully accounted or on TTL expiry), mirroring the
	// PooledInFlight()==0 pool-leak check.
	AudiencePeak, AudienceOpen int
	// DelaySamples is how many deliveries the delay histogram absorbed
	// (always equal to Delivered), and DelayDigest its full-state
	// fingerprint — the scengen harness asserts both are rerun-,
	// worker-, and shard-count-invariant.
	DelaySamples int
	DelayDigest  uint64
}

// PDR returns Delivered / Expected.
func (r *ScriptResult) PDR() float64 {
	if r.Expected == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Expected)
}

// scriptRun is the live state of one script execution.
type scriptRun struct {
	w   *World
	stk protocol.Stack
	res ScriptResult

	// current mirrors the engine-driven membership per group; audience
	// snapshots the live current members of each sent packet. Entries
	// are released when fully accounted or on TTL expiry (audienceTTL);
	// audQ[audHead:] is the pending-expiry FIFO in send order, so expiry
	// is a deterministic O(1) front pop (send times are nondecreasing).
	current  map[membership.Group]map[network.NodeID]bool
	audience map[uint64]*audEntry
	audQ     []audPending
	audHead  int
	// delays streams into a log-spaced histogram at delivery time: the
	// engine retains O(1) metric state per run, not one float64 per
	// delivery. Mean stays exact; P50/P95 carry the histogram's bounded
	// relative error (stats.LogHist.Percentile).
	delays stats.LogHist

	// Radio-loss window bookkeeping, shared across (possibly
	// overlapping) radio-loss directives: lossBase holds each node's
	// pre-script loss probability, captured when the first window
	// opens; lossActive lists the loss levels of the windows currently
	// open. Every open/close recomputes the effective per-node loss as
	// max(base, max(active)), so overlapping windows compose and the
	// final close restores the base values exactly.
	lossBase   []float64
	lossActive []float64
}

// audEntry is the retained state of one in-flight script packet: the
// members still owed a delivery. The member bit clears as each delivery
// is counted, so len(members)==0 means fully accounted.
type audEntry struct {
	members map[network.NodeID]bool
}

// audPending queues one packet for TTL expiry.
type audPending struct {
	uid    uint64
	expire des.Time
}

type churnVictim struct {
	id   network.NodeID
	tick int
}

// RunScript plays a script against this world through one protocol arm
// and returns the measured outcome. The stack should be started and the
// world warmed up first; traffic counters measured by the result cover
// the span from the call to the returned Elapsed.
//
// Determinism: every directive draws from its own positionally derived
// PRNG stream (runner.DeriveSeed over the world seed), so results are a
// pure function of (spec, script) regardless of how many sibling worlds
// run concurrently.
func (w *World) RunScript(stk protocol.Stack, sc *Script) (*ScriptResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	// Group references are checked against this world (static Validate
	// cannot know the group population): a typoed group would otherwise
	// run silently with a permanently empty audience.
	for i := range sc.Directives {
		d := &sc.Directives[i]
		if d.Kind != KindTraffic && d.Kind != KindMemberChurn {
			continue
		}
		if _, ok := w.Members[membership.Group(d.Group)]; !ok {
			return nil, fmt.Errorf("scenario: script %q directive %d: group %d not in this world (have %d groups)",
				sc.Name, i, d.Group, len(w.Members))
		}
	}
	r := &scriptRun{
		w:        w,
		stk:      stk,
		res:      ScriptResult{Script: sc.Name},
		current:  make(map[membership.Group]map[network.NodeID]bool),
		audience: make(map[uint64]*audEntry),
	}
	for g, members := range w.Members {
		set := make(map[network.NodeID]bool, len(members))
		for _, id := range members {
			set[id] = true
		}
		r.current[g] = set
	}
	stk.Deliveries(r.onDeliver)

	start := w.Sim.Now()
	ctrl0 := w.Net.Stats().ControlBytes
	for i := range sc.Directives {
		d := sc.Directives[i]
		rng := xrand.New(runner.DeriveSeed(w.Spec.Seed^scriptSeedSalt, i))
		r.schedule(start, d, rng)
	}
	w.RunUntil(start + des.Duration(sc.Horizon()) + drainMargin)
	stk.Deliveries(nil)

	// Every send happened at or before the horizon, so every surviving
	// entry has expired by now; the sweep leaves the map empty unless
	// the release bookkeeping has a leak — which AudienceOpen reports,
	// mirroring the pooled-packet teardown check.
	r.expireAudience(w.Sim.Now())
	r.res.AudienceOpen = len(r.audience)

	r.res.Elapsed = w.Sim.Now() - start
	if n := w.Net.Len(); n > 0 && r.res.Elapsed > 0 {
		r.res.CtrlPerNodeS = float64(w.Net.Stats().ControlBytes-ctrl0) / float64(n) / float64(r.res.Elapsed)
	}
	r.res.Jain = stats.JainIndex(w.Net.ForwardLoads())
	r.res.MeanDelay = r.delays.Mean()
	r.res.P50Delay = r.delays.Percentile(50)
	r.res.P95Delay = r.delays.Percentile(95)
	r.res.DelaySamples = r.delays.N()
	r.res.DelayDigest = r.delays.Fingerprint()
	return &r.res, nil
}

// onDeliver classifies one delivery against the packet's send-time
// audience and releases the entry once every member is accounted for.
func (r *scriptRun) onDeliver(member network.NodeID, uid uint64, born des.Time, _ int) {
	e, ok := r.audience[uid]
	if !ok {
		return // not a script packet (or already released)
	}
	if e.members[member] {
		r.res.Delivered++
		r.delays.Add(float64(r.w.Sim.Now() - born))
		delete(e.members, member)
		if len(e.members) == 0 {
			delete(r.audience, uid) // fully accounted
		}
	} else {
		r.res.Stale++
	}
}

// send originates one script packet and snapshots its audience: the
// current members of the group that are up right now.
func (r *scriptRun) send(src network.NodeID, g membership.Group, payload int) {
	now := r.w.Sim.Now()
	r.expireAudience(now)
	uid := r.stk.Send(src, g, payload)
	if uid == 0 {
		return // source down or unreachable: nothing on the air
	}
	r.res.Sent++
	aud := make(map[network.NodeID]bool)
	for id := range r.current[g] {
		if n := r.w.Net.Node(id); n != nil && n.Up() {
			aud[id] = true
		}
	}
	r.audience[uid] = &audEntry{members: aud}
	r.audQ = append(r.audQ, audPending{uid: uid, expire: now + audienceTTL})
	if open := len(r.audience); open > r.res.AudiencePeak {
		r.res.AudiencePeak = open
	}
	r.res.Expected += len(aud)
}

// expireAudience releases audience entries whose TTL has passed. Sends
// happen at nondecreasing times, so the pending queue is scanned from
// the front only; entries already released as fully accounted make the
// delete a no-op. The spent queue prefix is compacted once it dominates
// the backing array, keeping the queue itself bounded by the live
// window too.
func (r *scriptRun) expireAudience(now des.Time) {
	for r.audHead < len(r.audQ) && r.audQ[r.audHead].expire <= now {
		delete(r.audience, r.audQ[r.audHead].uid)
		r.audHead++
	}
	if r.audHead > 64 && r.audHead*2 >= len(r.audQ) {
		n := copy(r.audQ, r.audQ[r.audHead:])
		r.audQ = r.audQ[:n]
		r.audHead = 0
	}
}

// schedule installs one directive's events on the simulator.
func (r *scriptRun) schedule(start des.Time, d Directive, rng *xrand.Rand) {
	at := start + des.Duration(d.At)
	switch d.Kind {
	case KindNodeChurn:
		r.scheduleNodeChurn(at, d, rng)
	case KindMemberChurn:
		r.scheduleMemberChurn(at, d, rng)
	case KindTraffic:
		r.scheduleTraffic(at, d, rng)
	case KindRadioLoss:
		r.scheduleRadioLoss(at, d)
	case KindPartition:
		r.schedulePartition(at, d)
	}
}

// pickOrdinary selects a random up ordinary node, or NoNode when none
// qualifies (every candidate is down or excluded).
func (r *scriptRun) pickOrdinary(rng *xrand.Rand, exclude map[network.NodeID]bool) network.NodeID {
	var candidates []network.NodeID
	for _, id := range r.w.Ordinary { // build order = ID order: deterministic
		if exclude[id] {
			continue
		}
		if n := r.w.Net.Node(id); n != nil && n.Up() {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) == 0 {
		return network.NoNode
	}
	return candidates[rng.Pick(len(candidates))]
}

func (r *scriptRun) scheduleNodeChurn(at des.Time, d Directive, rng *xrand.Rand) {
	ticks := int(d.Duration / d.Period)
	tick := 0
	// The victim FIFO is private to this directive: overlapping
	// node-churn windows each manage (and heal) their own victims.
	var killed []churnVictim
	var fire func()
	fire = func() {
		// Revive victims killed two or more ticks ago, then fell fresh
		// ones, so the down population stays a rolling window.
		for len(killed) > 0 && killed[0].tick <= tick-2 {
			r.w.Net.Node(killed[0].id).Recover()
			killed = killed[1:]
		}
		for i := 0; i < d.Count; i++ {
			id := r.pickOrdinary(rng, nil)
			if id == network.NoNode {
				break
			}
			r.w.Net.Node(id).Fail()
			killed = append(killed, churnVictim{id, tick})
		}
		tick++
		if tick < ticks {
			r.w.Sim.After(des.Duration(d.Period), fire)
			return
		}
		// Window over: heal everything still down.
		r.w.Sim.After(des.Duration(d.Period), func() {
			for _, v := range killed {
				r.w.Net.Node(v.id).Recover()
			}
			killed = nil
		})
	}
	r.w.Sim.Schedule(at, fire)
}

func (r *scriptRun) scheduleMemberChurn(at des.Time, d Directive, rng *xrand.Rand) {
	g := membership.Group(d.Group)
	ticks := int(d.Duration / d.Period)
	tick := 0
	var fire func()
	fire = func() {
		for i := 0; i < d.Count; i++ {
			// Deterministic leaver: the lowest current member ID.
			leaver := network.NoNode
			for id := range r.current[g] {
				if leaver == network.NoNode || id < leaver {
					leaver = id
				}
			}
			if leaver != network.NoNode {
				r.stk.Leave(leaver, g)
				delete(r.current[g], leaver)
			}
			// RunScript validated the group, so r.current[g] exists.
			if joiner := r.pickOrdinary(rng, r.current[g]); joiner != network.NoNode {
				r.stk.Join(joiner, g)
				r.current[g][joiner] = true
			}
		}
		tick++
		if tick < ticks {
			r.w.Sim.After(des.Duration(d.Period), fire)
		}
	}
	r.w.Sim.Schedule(at, fire)
}

func (r *scriptRun) scheduleTraffic(at des.Time, d Directive, rng *xrand.Rand) {
	g := membership.Group(d.Group)
	switch d.Pattern {
	case PatternFlash:
		// Count sources, staggered over the window's first half, each
		// sending its own burst.
		for i := 0; i < d.Count; i++ {
			offset := des.Duration(rng.Range(0, d.Duration/2))
			src := network.NoNode
			sent := 0
			var fire func()
			fire = func() {
				if src == network.NoNode {
					src = r.pickOrdinary(rng, nil)
					if src == network.NoNode {
						return
					}
				}
				r.send(src, g, d.Payload)
				sent++
				if sent < d.Packets {
					r.w.Sim.After(des.Duration(d.Interval), fire)
				}
			}
			r.w.Sim.Schedule(at+offset, fire)
		}
	default:
		src := network.NoNode
		sent := 0
		deadline := at + des.Duration(d.Duration)
		phaseEnd := at + des.Duration(d.Period) // onoff only
		var fire func()
		fire = func() {
			if src == network.NoNode {
				src = r.pickOrdinary(rng, nil)
				if src == network.NoNode {
					return
				}
			}
			now := r.w.Sim.Now()
			if d.Duration > 0 && now > deadline {
				return // honored by every pattern, optional for cbr
			}
			if d.Pattern == PatternOnOff && now >= phaseEnd {
				// Skip off phases entirely; resume at the next on-phase
				// start that has not already passed (with interval >
				// period a send can overshoot several phases at once).
				resume := phaseEnd + des.Duration(d.Period)
				for resume < now {
					resume += 2 * des.Duration(d.Period)
				}
				phaseEnd = resume + des.Duration(d.Period)
				r.w.Sim.Schedule(resume, fire)
				return
			}
			r.send(src, g, d.Payload)
			sent++
			if sent >= d.Packets {
				return
			}
			gap := des.Duration(d.Interval)
			if d.Pattern == PatternPoisson {
				gap = des.Duration(rng.ExpFloat64() * d.Interval)
			}
			r.w.Sim.After(gap, fire)
		}
		r.w.Sim.Schedule(at, fire)
	}
}

func (r *scriptRun) scheduleRadioLoss(at des.Time, d Directive) {
	r.w.Sim.Schedule(at, func() {
		if len(r.lossActive) == 0 {
			// First window to open: capture the pre-script base values.
			r.lossBase = make([]float64, r.w.Net.Len())
			for _, n := range r.w.Net.Nodes() {
				r.lossBase[n.ID] = n.Radio.LossProb
			}
		}
		r.lossActive = append(r.lossActive, d.Loss)
		r.applyLoss()
	})
	r.w.Sim.Schedule(at+des.Duration(d.Duration), func() {
		for i, l := range r.lossActive {
			if l == d.Loss {
				r.lossActive = append(r.lossActive[:i], r.lossActive[i+1:]...)
				break
			}
		}
		r.applyLoss()
	})
}

// applyLoss sets every node's loss probability to max(base, max of the
// open windows); with no window open the base values are restored
// exactly.
func (r *scriptRun) applyLoss() {
	peak := 0.0
	for _, l := range r.lossActive {
		peak = math.Max(peak, l)
	}
	for _, n := range r.w.Net.Nodes() {
		n.Radio.LossProb = math.Max(r.lossBase[n.ID], peak)
	}
}

func (r *scriptRun) schedulePartition(at des.Time, d Directive) {
	frac := d.Frac
	if frac == 0 {
		frac = 0.25
	}
	arena := r.w.Net.Arena()
	mid := (arena.Min.X + arena.Max.X) / 2
	half := arena.W() * frac / 2
	var failed []network.NodeID
	r.w.Sim.Schedule(at, func() {
		for _, n := range r.w.Net.Nodes() { // ID order: deterministic
			if !n.Up() {
				continue
			}
			if x := n.TruePos().X; x >= mid-half && x <= mid+half {
				n.Fail()
				failed = append(failed, n.ID)
			}
		}
		// A partition strip takes down backbone population wholesale:
		// release the memoized multicast trees eagerly (eviction only —
		// the version keys already exclude them from reuse).
		r.w.BB.Trees().InvalidateAll()
	})
	r.w.Sim.Schedule(at+des.Duration(d.Duration), func() {
		for _, id := range failed {
			r.w.Net.Node(id).Recover() // no-op if churn already revived it
		}
		failed = nil
		r.w.BB.Trees().InvalidateAll() // heal: same eager release
	})
}
