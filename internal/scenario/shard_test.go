package scenario

import (
	"fmt"
	"testing"

	"repro/internal/des"
)

// shardSpec is a small lossy world that exercises loss draws, capacity
// serialization, and mobility — everything whose ordering the sharded
// kernel must preserve.
func shardSpec(shards int) Spec {
	spec := DefaultSpec()
	spec.Nodes = 60
	spec.MembersPerGroup = 10
	spec.LossProb = 0.05
	spec.Mobility = Waypoint
	spec.Shards = shards
	return spec
}

// shardScript mixes traffic with the directives that must fence windows:
// a mid-run partition (global topology event) plus member churn.
func shardScript() *Script {
	return &Script{
		Name: "shard-mix",
		Directives: []Directive{
			{Kind: KindTraffic, At: 0, Group: 0, Pattern: PatternCBR, Count: 1, Packets: 12, Interval: 0.5, Payload: 256, Duration: 8},
			{Kind: KindMemberChurn, At: 2, Group: 0, Count: 1, Period: 1, Duration: 3},
			{Kind: KindPartition, At: 4, Duration: 2, Frac: 0.25},
		},
	}
}

// shardFingerprint runs the script on a fresh world and reduces the run
// to a string whose equality is bit equality of every observable.
func shardFingerprint(t *testing.T, spec Spec, requireSharded bool) string {
	t.Helper()
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if requireSharded {
		if w.Eng == nil {
			t.Fatalf("shards=%d world fell back to serial: %s", spec.Shards, w.ShardNote)
		}
	} else if spec.Shards <= 1 && w.Eng != nil {
		t.Fatal("serial spec built a sharded engine")
	}
	stk, err := w.Protocol("hvdb")
	if err != nil {
		t.Fatal(err)
	}
	stk.Start()
	w.WarmUp(10)
	res, err := w.RunScript(stk, shardScript())
	if err != nil {
		t.Fatal(err)
	}
	stk.Stop()
	w.RunUntil(w.Sim.Now() + 5) // drain
	if n := w.Net.PooledInFlight(); n != 0 {
		t.Fatalf("shards=%d: %d pooled packets leaked", spec.Shards, n)
	}
	return fmt.Sprintf("sent=%d expected=%d delivered=%d stale=%d mean=%v p50=%v p95=%v ctrl=%v jain=%v events=%d",
		res.Sent, res.Expected, res.Delivered, res.Stale,
		res.MeanDelay, res.P50Delay, res.P95Delay, res.CtrlPerNodeS, res.Jain,
		w.Sim.Executed())
}

func TestShardedBuildEnables(t *testing.T) {
	w, err := Build(shardSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if w.Eng == nil {
		t.Fatalf("sharding declined: %s", w.ShardNote)
	}
	if got := w.Eng.Shards(); got != 4 {
		t.Fatalf("shards %d want 4", got)
	}
	if !w.Net.Sharded() {
		t.Fatal("network not bound to the engine")
	}
}

// TestShardCountByteIdentical is the tentpole contract: the same spec
// and script produce byte-identical results and executed-event counts
// at every shard count.
func TestShardCountByteIdentical(t *testing.T) {
	base := shardFingerprint(t, shardSpec(1), false)
	for _, k := range []int{2, 4} {
		if got := shardFingerprint(t, shardSpec(k), true); got != base {
			t.Fatalf("shards=%d diverged from serial:\n  serial: %s\n  sharded: %s", k, base, got)
		}
	}
}

// TestShardedSerialUnchanged: a Shards=1 spec must not construct an
// engine at all — the serial path is literally the old code.
func TestShardedSerialUnchanged(t *testing.T) {
	w, err := Build(shardSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if w.Eng != nil || w.ShardNote != "" {
		t.Fatalf("serial world has engine=%v note=%q", w.Eng, w.ShardNote)
	}
}

// TestBroadcastStraddlesShardCorners plants receivers in all four
// stripes of a shards=4 world within one radio range of a central
// sender: the (serial) broadcast must reach every stripe and the
// sharded run must match the serial one exactly.
func TestBroadcastStraddlesShardCorners(t *testing.T) {
	run := func(shards int) string {
		spec := shardSpec(shards)
		spec.Nodes = 40
		w, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		if shards > 1 && w.Eng == nil {
			t.Fatalf("sharding declined: %s", w.ShardNote)
		}
		w.Start()
		w.RunUntil(15)
		// The periodic beacon/hello planes broadcast continuously; after a
		// window the per-kind byte ledger captures every broadcast
		// delivered anywhere in the arena, including across stripe
		// boundaries.
		st := w.Net.Stats()
		return fmt.Sprintf("ctrl=%d data=%d lost=%d events=%d",
			st.ControlBytes, st.DataBytes, st.Lost, w.Sim.Executed())
	}
	serial := run(1)
	if got := run(4); got != serial {
		t.Fatalf("broadcast accounting diverged:\n  serial: %s\n  shards=4: %s", serial, got)
	}
}

// TestEventAtWindowBarrier schedules lane work exactly at a window
// boundary: with lookahead L = 1 the first window covers [0, 1]
// inclusive — events at exactly tmin+L may run in it, which is sound
// because any intent logged during the window lands at a strictly
// larger (at, seq) key (intent seqs are reserved at the barrier, after
// every pre-scheduled seq). Each lane records its own trace (lane 0
// runs inline, lane 1 on a worker; a shared slice would race) with the
// lane clock, which must read the event's own timestamp, never the
// stale serial clock.
func TestEventAtWindowBarrier(t *testing.T) {
	sim := des.New()
	eng := des.NewSharded(sim, 2, 1.0)
	traces := make([][]string, 2)
	hop := func(lane int, label string, at des.Time) {
		eng.ScheduleLaneDirect(lane, at, func(any, uint64) {
			traces[lane] = append(traces[lane], fmt.Sprintf("%s@%v", label, eng.LaneNow(lane)))
		}, nil, 0)
	}
	hop(0, "a", 0)
	hop(1, "b", 1.0) // exactly at the first window's bound
	hop(0, "c", 1.0)
	hop(1, "d", 0.5)
	eng.RunUntil(3)
	if got, want := fmt.Sprint(traces[0]), "[a@0 c@1]"; got != want {
		t.Fatalf("lane 0 trace %v want %v", got, want)
	}
	if got, want := fmt.Sprint(traces[1]), "[d@0.5 b@1]"; got != want {
		t.Fatalf("lane 1 trace %v want %v", got, want)
	}
}

// TestPartitionHealMidWindow pins the auto-fencing mechanism that makes
// mid-run topology directives safe: a global event at 0.5 must execute
// before any lane event past it, even though the lookahead window
// starting at 0.2 would otherwise stretch to 1.2. The lane callbacks
// read an unsynchronized flag the global event writes — correct only if
// windows never span a global event (and the race detector enforces
// exactly that in the raced CI sweep).
func TestPartitionHealMidWindow(t *testing.T) {
	sim := des.New()
	eng := des.NewSharded(sim, 2, 1.0)
	partitioned := false
	saw := make([]map[string]bool, 2)
	saw[0], saw[1] = map[string]bool{}, map[string]bool{}
	lane := func(i int, label string, at des.Time) {
		eng.ScheduleLaneDirect(i, at, func(any, uint64) {
			saw[i][label] = partitioned
		}, nil, 0)
	}
	lane(0, "before", 0.2)
	sim.Schedule(0.5, func() { partitioned = true }) // a "partition" directive
	lane(0, "after0", 0.6)
	lane(1, "after1", 0.8)
	eng.RunUntil(2)
	if saw[0]["before"] {
		t.Fatal("lane event at 0.2 saw the partition from 0.5")
	}
	if !saw[0]["after0"] || !saw[1]["after1"] {
		t.Fatalf("lane events after 0.5 missed the partition: %v", saw)
	}
}

// TestStripeAssignmentCoversArena sanity-checks the stripe map: every
// node lands in a valid stripe and nodes in clearly distinct horizontal
// bands land in distinct stripes.
func TestStripeAssignmentCoversArena(t *testing.T) {
	spec := shardSpec(4)
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if w.Eng == nil {
		t.Fatalf("sharding declined: %s", w.ShardNote)
	}
	seen := map[int]int{}
	for _, n := range w.Net.Nodes() {
		lane := w.Net.ExecLaneIdx(n.ID) // serial context: always 0
		if lane != 0 {
			t.Fatalf("ExecLaneIdx outside a window returned %d", lane)
		}
	}
	// Count stripes through positions: with 264 spread nodes all four
	// stripes should be populated.
	arena := w.Net.Arena()
	for _, n := range w.Net.Nodes() {
		x := n.TruePos().X
		s := int((x - arena.Min.X) / arena.W() * 4)
		if s > 3 {
			s = 3
		}
		seen[s]++
	}
	for s := 0; s < 4; s++ {
		if seen[s] == 0 {
			t.Fatalf("stripe %d empty: %v", s, seen)
		}
	}
}
