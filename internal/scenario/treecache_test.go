package scenario

import (
	"fmt"
	"testing"
)

// runScriptedWorld builds a fresh world from the same spec, runs one
// built-in script over the hvdb arm with the route cache in the given
// mode, and renders every measured field of the result. Byte-comparing
// the rendering between cache-on and cache-bypass runs is the
// observational-transparency contract of internal/route: a memoized
// tree must equal the tree a fresh computation would have produced, so
// the cache cannot shift a single delivery, delay, or counter — even
// under churn storms and partition/heal dynamics, which drive the
// invalidation hooks mid-run.
func runScriptedWorld(t *testing.T, script string, bypass bool) string {
	t.Helper()
	spec := DefaultSpec()
	spec.Seed = 11
	spec.Nodes = 120
	spec.Groups = 1
	spec.MembersPerGroup = 10
	spec.LossProb = 0.05 // loss draws make transmission order observable
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	stk, err := w.Protocol("hvdb")
	if err != nil {
		t.Fatal(err)
	}
	w.BB.Trees().SetBypass(bypass)
	sc, err := BuiltinScript(script)
	if err != nil {
		t.Fatal(err)
	}
	stk.Start()
	w.WarmUp(12)
	res, err := w.RunScript(stk, sc)
	if err != nil {
		t.Fatal(err)
	}
	stk.Stop()
	assertNoPacketLeaks(t, w)
	// %v renders float64s at shortest-round-trip precision, so string
	// equality below is bit equality — the comparison really is
	// byte-identical, not identical-to-9-digits.
	return fmt.Sprintf("%s sent=%d expected=%d delivered=%d stale=%d mean=%v p50=%v p95=%v ctrl=%v jain=%v elapsed=%v",
		res.Script, res.Sent, res.Expected, res.Delivered, res.Stale,
		res.MeanDelay, res.P50Delay, res.P95Delay, res.CtrlPerNodeS, res.Jain, res.Elapsed)
}

// TestTreeCacheTransparent runs the churn-storm and partition-heal
// scripts — the two that exercise Join/Leave, CH failover, and
// partition/heal invalidation — with the route cache on and bypassed,
// asserting byte-identical results. It runs in the raced determinism
// sweep (CI determinism job).
func TestTreeCacheTransparent(t *testing.T) {
	for _, script := range []string{"churn-storm", "partition-heal"} {
		script := script
		t.Run(script, func(t *testing.T) {
			t.Parallel()
			cached := runScriptedWorld(t, script, false)
			bypassed := runScriptedWorld(t, script, true)
			if cached != bypassed {
				t.Fatalf("route cache changed observable behavior:\ncached:   %s\nbypassed: %s", cached, bypassed)
			}
		})
	}
}

// TestScriptMetricsDefinedWithZeroDeliveries drives a script through a
// world whose radios lose every transmission: no flow can deliver, and
// every metric must come out at its defined empty-sample value (see the
// stats package contract) — no NaN, no divide-by-zero.
func TestScriptMetricsDefinedWithZeroDeliveries(t *testing.T) {
	spec := DefaultSpec()
	spec.Seed = 3
	spec.Nodes = 40
	spec.LossProb = 1 // ordinary radios lose everything
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The anchors' CH radios are lossless by default: sink them too.
	for _, id := range w.Anchors {
		w.Net.Node(id).Radio.LossProb = 1
	}
	stk, err := w.Protocol("hvdb")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := BuiltinScript("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	stk.Start()
	w.WarmUp(8)
	res, err := w.RunScript(stk, sc)
	if err != nil {
		t.Fatal(err)
	}
	stk.Stop()
	if res.Delivered != 0 {
		t.Fatalf("lossy world delivered %d packets", res.Delivered)
	}
	if pdr := res.PDR(); pdr != 0 {
		t.Fatalf("PDR %v want 0", pdr)
	}
	if res.MeanDelay != 0 || res.P50Delay != 0 || res.P95Delay != 0 {
		t.Fatalf("empty delay metrics should be zeros, got %v/%v/%v", res.MeanDelay, res.P50Delay, res.P95Delay)
	}
	// Nothing was forwarded, so loads are all-zero: perfectly even.
	if res.Jain != 1 {
		t.Fatalf("all-zero forwarding loads: Jain %v want 1", res.Jain)
	}
}
