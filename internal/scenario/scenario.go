// Package scenario assembles complete simulation setups: arena, node
// population (heterogeneous capability per the paper's assumption),
// mobility, the full HVDB protocol stack, group membership, traffic
// generation, and failure injection. Experiments and examples build
// worlds from a Spec instead of wiring packages by hand, select
// protocol arms by name through World.Protocol (internal/protocol),
// and drive mid-run dynamics — churn bursts, traffic generators, radio
// degradation, partitions — through the scripted scenario engine
// (Script, World.RunScript).
package scenario

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/georoute"
	"repro/internal/gps"
	"repro/internal/logicalid"
	"repro/internal/membership"
	"repro/internal/mobility"
	"repro/internal/multicast"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/radio"
	"repro/internal/vcgrid"
	"repro/internal/xrand"
)

// MobilityKind selects the movement model of the ordinary nodes.
type MobilityKind string

// Supported mobility models.
const (
	Static      MobilityKind = "static"
	Waypoint    MobilityKind = "waypoint"
	Walk        MobilityKind = "walk"
	GaussMarkov MobilityKind = "gauss-markov"
	GroupMotion MobilityKind = "group"
	Manhattan   MobilityKind = "manhattan"
)

// Spec declares one scenario.
type Spec struct {
	Seed uint64
	// ArenaSize is the square arena side in meters; CellSize the VC
	// tile side; Dim the hypercube dimension.
	ArenaSize, CellSize float64
	Dim                 int
	// Nodes is the number of ordinary mobile nodes (on top of anchors).
	Nodes int
	// AnchorCHs places one static CH-capable node at every VCC — the
	// paper's strong-capability backbone population (tanks, vehicles).
	// Without anchors, a fraction CHCapableFrac of ordinary nodes is
	// CH-capable.
	AnchorCHs     bool
	CHCapableFrac float64
	// Mobility parameters for ordinary nodes.
	Mobility           MobilityKind
	MinSpeed, MaxSpeed float64
	Pause              float64
	// Groups and MembersPerGroup define multicast membership, assigned
	// to random ordinary nodes.
	Groups          int
	MembersPerGroup int
	// LossProb sets per-transmission loss on ordinary radios.
	LossProb float64
	// GPSError adds zero-mean Gaussian positioning error (meters std
	// dev per axis) to every node's receiver; 0 keeps the paper's
	// oracle-GPS assumption.
	GPSError float64
	// Shards > 1 runs the world on the sharded event kernel: the arena
	// is partitioned into Shards spatial stripes and confined relay
	// deliveries execute on per-shard worker lanes under conservative
	// lookahead windows (des.Sharded). Results are bit-identical at any
	// shard count; 0 and 1 mean the plain serial kernel. When the world
	// cannot hold the sharding contract (e.g. tracing enabled), Build
	// falls back to serial and records the reason in World.ShardNote.
	Shards int
}

// DefaultSpec is the Figure 2 configuration with a modest mobile
// population.
func DefaultSpec() Spec {
	return Spec{
		Seed:            1,
		ArenaSize:       2000,
		CellSize:        250,
		Dim:             4,
		Nodes:           200,
		AnchorCHs:       true,
		CHCapableFrac:   0.2,
		Mobility:        Waypoint,
		MinSpeed:        1,
		MaxSpeed:        5,
		Pause:           10,
		Groups:          1,
		MembersPerGroup: 10,
	}
}

// World is a fully wired simulation.
type World struct {
	Spec   Spec
	Sim    *des.Simulator
	Net    *network.Network
	Mux    *network.Mux
	Grid   *vcgrid.Grid
	Scheme *logicalid.Scheme
	CM     *cluster.Manager
	BB     *core.Backbone
	MS     *membership.Service
	MC     *multicast.Service

	// Eng is the sharded event kernel, non-nil when Spec.Shards > 1 and
	// sharding engaged; drive the world through World.RunUntil so lane
	// events execute. ShardNote records why sharding was declined when
	// it was requested but could not engage (the world then runs
	// serially, with identical results).
	Eng       *des.Sharded
	ShardNote string

	Rng *xrand.Rand
	// Members lists the member nodes of each group.
	Members map[membership.Group][]network.NodeID
	// Ordinary lists the non-anchor nodes (traffic sources are drawn
	// from these).
	Ordinary []network.NodeID
	// Anchors lists the anchor CH nodes (empty without AnchorCHs).
	Anchors []network.NodeID

	// group is the shared mover of GroupMotion scenarios, lazily built.
	group *mobility.Group
}

// Build wires a world from the spec.
func Build(spec Spec) (*World, error) {
	if spec.ArenaSize <= 0 || spec.CellSize <= 0 {
		return nil, fmt.Errorf("scenario: invalid arena %v cell %v", spec.ArenaSize, spec.CellSize)
	}
	w := &World{Spec: spec, Members: make(map[membership.Group][]network.NodeID)}
	w.Sim = des.New()
	w.Rng = xrand.New(spec.Seed)
	arena := geom.RectWH(0, 0, spec.ArenaSize, spec.ArenaSize)
	w.Net = network.New(w.Sim, arena, w.Rng.Split())
	w.Grid = vcgrid.New(arena, spec.CellSize)

	chRadio := radio.DefaultCH
	mnRadio := radio.DefaultMN
	mnRadio.LossProb = spec.LossProb

	receiver := func() gps.Receiver {
		if spec.GPSError <= 0 {
			return nil // network defaults to the oracle
		}
		return gps.NewNoisy(spec.GPSError, 0, w.Rng.Split())
	}
	if spec.AnchorCHs {
		for i := 0; i < w.Grid.Count(); i++ {
			n := w.Net.AddNode(&mobility.Static{P: w.Grid.Center(w.Grid.FromIndex(i))}, chRadio, receiver(), true)
			w.Anchors = append(w.Anchors, n.ID)
		}
	}
	for i := 0; i < spec.Nodes; i++ {
		capable := !spec.AnchorCHs && w.Rng.Bool(spec.CHCapableFrac)
		rm := mnRadio
		if capable {
			rm = chRadio
		}
		n := w.Net.AddNode(w.buildMobility(arena), rm, receiver(), capable)
		w.Ordinary = append(w.Ordinary, n.ID)
	}

	w.Mux = network.Bind(w.Net)
	w.CM = cluster.NewManager(w.Net, w.Grid, cluster.DefaultConfig())
	var err error
	w.Scheme, err = logicalid.New(w.Grid, spec.Dim)
	if err != nil {
		return nil, err
	}
	w.BB = core.New(w.Net, w.Mux, w.CM, w.Scheme, core.DefaultConfig())
	w.MS = membership.New(w.BB, membership.DefaultConfig())
	w.MC = multicast.New(w.BB, w.MS, w.Mux, multicast.DefaultConfig())

	// Group membership over ordinary nodes (members move; that is the
	// point of the protocol).
	pool := append([]network.NodeID(nil), w.Ordinary...)
	if len(pool) == 0 {
		pool = append(pool, w.Anchors...)
	}
	for g := 0; g < spec.Groups; g++ {
		perm := w.Rng.Perm(len(pool))
		count := spec.MembersPerGroup
		if count > len(pool) {
			count = len(pool)
		}
		for i := 0; i < count; i++ {
			id := pool[perm[i]]
			w.MS.Join(id, membership.Group(g))
			w.Members[membership.Group(g)] = append(w.Members[membership.Group(g)], id)
		}
	}
	w.CM.Elect()
	w.enableSharding()
	return w, nil
}

// enableSharding engages the sharded kernel when the spec asks for it.
// It runs after the whole stack is wired: every node (and hence the
// radio grain, which becomes the conservative lookahead) is known, and
// the georoute router is already listening for OnShard. Failure to
// engage is not an error — the serial kernel produces identical
// results — so it only leaves a note.
func (w *World) enableSharding() {
	if w.Spec.Shards <= 1 {
		return
	}
	g := w.Net.Grain()
	if g <= 0 {
		w.ShardNote = "no radio delay quantum to derive a lookahead from"
		return
	}
	eng := des.NewSharded(w.Sim, w.Spec.Shards, des.Duration(g))
	if err := w.Net.EnableSharding(eng, georoute.KindPrefix); err != nil {
		w.ShardNote = err.Error()
		return
	}
	w.Eng = eng
}

// RunUntil advances the world to simulated time t: through the sharded
// engine when one is engaged (so shard-lane events execute), else the
// plain simulator. All world-level drivers (WarmUp, RunScript, the
// experiment harness) go through here.
func (w *World) RunUntil(t des.Time) {
	if w.Eng != nil {
		w.Eng.RunUntil(t)
		return
	}
	w.Sim.RunUntil(t)
}

func (w *World) buildMobility(arena geom.Rect) mobility.Model {
	s := w.Spec
	switch s.Mobility {
	case Waypoint:
		return mobility.NewWaypoint(arena, s.MinSpeed, s.MaxSpeed, s.Pause, w.Rng.Split())
	case Walk:
		return mobility.NewWalk(arena, s.MaxSpeed, 10, w.Rng.Split())
	case GaussMarkov:
		return mobility.NewGaussMarkov(arena, s.MaxSpeed, 0.85, 1, w.Rng.Split())
	case Manhattan:
		return mobility.NewManhattan(arena, w.Spec.CellSize, s.MaxSpeed, w.Rng.Split())
	case GroupMotion:
		if w.group == nil {
			w.group = mobility.NewGroup(arena, s.MinSpeed, s.MaxSpeed, s.Pause, w.Rng.Split())
		}
		offset := geom.Vec(w.Rng.Range(-60, 60), w.Rng.Range(-60, 60))
		return w.group.Member(offset, 10, w.Rng.Split())
	default:
		return &mobility.Static{P: geom.Pt(w.Rng.Range(arena.Min.X, arena.Max.X), w.Rng.Range(arena.Min.Y, arena.Max.Y))}
	}
}

// Start launches the full periodic protocol stack.
func (w *World) Start() {
	w.CM.Start()
	w.BB.Start()
	w.MS.Start()
}

// Stop cancels the periodic stack.
func (w *World) Stop() {
	w.CM.Stop()
	w.BB.Stop()
	w.MS.Stop()
}

// WarmUp runs the stack for d simulated seconds and then clears traffic
// counters, so measurements start from a converged state.
func (w *World) WarmUp(d des.Duration) {
	w.RunUntil(w.Sim.Now() + d)
	w.Net.ResetTraffic()
}

// CBR schedules constant-bit-rate multicast traffic: the source sends a
// payload of size bytes to the group every interval, count times, using
// the provided send function (HVDB's MC.Send or a baseline's Send).
// Returns a slice that accumulates the UIDs of sent packets.
func (w *World) CBR(send func() uint64, interval des.Duration, count int) *[]uint64 {
	uids := &[]uint64{}
	var i int
	var tick func()
	tick = func() {
		if i >= count {
			return
		}
		i++
		if uid := send(); uid != 0 {
			*uids = append(*uids, uid)
		}
		w.Sim.After(interval, tick)
	}
	w.Sim.After(0, tick)
	return uids
}

// FailRandomAnchors takes down the given number of anchor CH nodes,
// returning the failed IDs.
func (w *World) FailRandomAnchors(count int) []network.NodeID {
	perm := w.Rng.Perm(len(w.Anchors))
	var out []network.NodeID
	for i := 0; i < count && i < len(w.Anchors); i++ {
		id := w.Anchors[perm[i]]
		w.Net.Node(id).Fail()
		out = append(out, id)
	}
	return out
}

// Protocol instantiates one registered protocol arm (see
// internal/protocol) on this world and enrolls the world's preassigned
// group members. Arm names: hvdb, flooding, dsm, pbm, spbm, cbt.
// Building never transmits; call Start on the returned stack to launch
// its control planes.
func (w *World) Protocol(name string) (protocol.Stack, error) {
	stk, err := protocol.Build(name, protocol.Deps{
		Net: w.Net, Mux: w.Mux, CM: w.CM, BB: w.BB, MS: w.MS, MC: w.MC,
	})
	if err != nil {
		return nil, err
	}
	// Enroll members in (group, assignment) order — deterministic, and
	// idempotent for the hvdb arm (the world already joined them).
	for _, g := range w.Groups() {
		for _, id := range w.Members[g] {
			stk.Join(id, g)
		}
	}
	return stk, nil
}

// Groups returns the world's group IDs in ascending order.
func (w *World) Groups() []membership.Group {
	out := make([]membership.Group, 0, len(w.Members))
	for g := range w.Members {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RandomSource picks an ordinary node to originate traffic.
func (w *World) RandomSource() network.NodeID {
	if len(w.Ordinary) == 0 {
		return w.Anchors[w.Rng.Pick(len(w.Anchors))]
	}
	return w.Ordinary[w.Rng.Pick(len(w.Ordinary))]
}
