package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// Script is a deterministic timetable of directives applied to a
// running world: mid-run dynamics (node churn, membership churn, radio
// degradation, area partition) and traffic generation, all scheduled on
// the discrete-event simulator. Scripts are plain data — experiments
// tweak copies of the built-in ones, and cmd/hvdbsim loads them from
// JSON files (see ParseScript for the grammar).
type Script struct {
	// Name labels the script in experiment output.
	Name string `json:"name"`
	// Directives is the timetable; entries may overlap freely.
	Directives []Directive `json:"directives"`
}

// Directive kinds.
const (
	// KindNodeChurn is a node churn burst: every Period seconds within
	// [At, At+Duration], Count random up ordinary nodes fail and nodes
	// killed two ticks earlier recover; everything still down recovers
	// at the window end.
	KindNodeChurn = "node-churn"
	// KindMemberChurn is a membership churn wave: every Period seconds
	// within the window, Count members of Group leave (lowest IDs first,
	// deterministically) and Count non-members join.
	KindMemberChurn = "member-churn"
	// KindTraffic starts a traffic generator (see the Pattern* patterns)
	// sending Packets payloads of Payload bytes to Group.
	KindTraffic = "traffic"
	// KindRadioLoss raises every radio's loss probability to at least
	// Loss for the window, restoring the original values afterwards.
	KindRadioLoss = "radio-loss"
	// KindPartition fails every node inside a vertical strip covering
	// Frac of the arena width (centered) for the window, then recovers
	// them — an impassable band of terrain splitting the arena.
	KindPartition = "partition"
)

// Traffic patterns of KindTraffic directives.
const (
	// PatternCBR sends at fixed Interval gaps starting at At; a
	// non-zero Duration bounds the stream even if Packets remain.
	PatternCBR = "cbr"
	// PatternPoisson sends with exponentially distributed gaps of mean
	// Interval, stopping after Packets sends or at At+Duration.
	PatternPoisson = "poisson"
	// PatternOnOff alternates on/off phases of Period seconds, sending
	// at Interval gaps while on, until Packets sends or At+Duration.
	PatternOnOff = "onoff"
	// PatternFlash is a flash crowd: Count sources each send Packets
	// payloads at Interval gaps, starting at staggered offsets within
	// [At, At+Duration/2].
	PatternFlash = "flash"
)

// Directive is one timed action of a script. Which fields apply depends
// on Kind (see the Kind and Pattern constants); Validate enforces the
// per-kind requirements.
type Directive struct {
	// At is the start time in simulated seconds, relative to the instant
	// the script starts running.
	At float64 `json:"at"`
	// Kind selects the action.
	Kind string `json:"kind"`
	// Duration is the window length in seconds (churn, loss, partition,
	// bounded traffic patterns).
	Duration float64 `json:"duration,omitempty"`
	// Period is the repeat interval within the window (churn ticks,
	// on/off phase length).
	Period float64 `json:"period,omitempty"`
	// Count sizes bursts: nodes per churn tick, members per wave, flash
	// sources.
	Count int `json:"count,omitempty"`
	// Group is the multicast group of traffic and membership directives.
	Group int `json:"group,omitempty"`
	// Pattern selects the traffic generator.
	Pattern string `json:"pattern,omitempty"`
	// Interval is the (mean) inter-send gap of a traffic generator.
	Interval float64 `json:"interval,omitempty"`
	// Packets is how many payloads a generator (or each flash source)
	// sends; Payload their size in bytes.
	Packets int `json:"packets,omitempty"`
	Payload int `json:"payload,omitempty"`
	// Loss is the per-transmission loss probability of a radio-loss
	// window.
	Loss float64 `json:"loss,omitempty"`
	// Frac is the arena-width fraction of a partition strip (default
	// 0.25 when zero).
	Frac float64 `json:"frac,omitempty"`
}

// Validate checks one directive's per-kind requirements.
func (d *Directive) Validate() error {
	if d.At < 0 {
		return fmt.Errorf("directive %q: negative start %g", d.Kind, d.At)
	}
	switch d.Kind {
	case KindNodeChurn, KindMemberChurn:
		if d.Count <= 0 || d.Period <= 0 || d.Duration <= 0 {
			return fmt.Errorf("%s: needs count, period, duration > 0", d.Kind)
		}
		if d.Period > d.Duration {
			// At least one tick must fit, and the window-end heal (one
			// period after the last tick) must land inside the script
			// horizon — otherwise victims would outlive the run.
			return fmt.Errorf("%s: period %g exceeds duration %g", d.Kind, d.Period, d.Duration)
		}
		if d.Kind == KindMemberChurn && d.Group < 0 {
			return fmt.Errorf("member-churn: negative group %d", d.Group)
		}
	case KindTraffic:
		if d.Group < 0 {
			return fmt.Errorf("traffic: negative group %d", d.Group)
		}
		if d.Packets <= 0 || d.Interval <= 0 {
			return fmt.Errorf("traffic: needs packets, interval > 0")
		}
		if d.Payload <= 0 {
			return fmt.Errorf("traffic: needs payload > 0")
		}
		switch d.Pattern {
		case PatternCBR:
		case PatternPoisson:
			if d.Duration <= 0 {
				return fmt.Errorf("traffic/poisson: needs duration > 0")
			}
		case PatternOnOff:
			if d.Duration <= 0 || d.Period <= 0 {
				return fmt.Errorf("traffic/onoff: needs period, duration > 0")
			}
		case PatternFlash:
			if d.Duration <= 0 || d.Count <= 0 {
				return fmt.Errorf("traffic/flash: needs count, duration > 0")
			}
		default:
			return fmt.Errorf("traffic: unknown pattern %q (have cbr, poisson, onoff, flash)", d.Pattern)
		}
	case KindRadioLoss:
		if d.Loss <= 0 || d.Loss > 1 || d.Duration <= 0 {
			return fmt.Errorf("radio-loss: needs 0 < loss <= 1 and duration > 0")
		}
	case KindPartition:
		if d.Duration <= 0 {
			return fmt.Errorf("partition: needs duration > 0")
		}
		if d.Frac < 0 || d.Frac >= 1 {
			return fmt.Errorf("partition: frac %g outside [0, 1)", d.Frac)
		}
	default:
		return fmt.Errorf("unknown directive kind %q (have %s)", d.Kind,
			strings.Join([]string{KindNodeChurn, KindMemberChurn, KindTraffic, KindRadioLoss, KindPartition}, ", "))
	}
	return nil
}

// end returns when the directive's last effect fires (relative time).
func (d *Directive) end() float64 {
	switch d.Kind {
	case KindTraffic:
		switch d.Pattern {
		case PatternCBR:
			if d.Duration > 0 {
				return d.At + d.Duration
			}
			return d.At + d.Interval*float64(d.Packets)
		case PatternFlash:
			return d.At + d.Duration + d.Interval*float64(d.Packets)
		default:
			return d.At + d.Duration
		}
	default:
		return d.At + d.Duration
	}
}

// Validate checks the whole script.
func (s *Script) Validate() error {
	if len(s.Directives) == 0 {
		return fmt.Errorf("script %q has no directives", s.Name)
	}
	for i := range s.Directives {
		if err := s.Directives[i].Validate(); err != nil {
			return fmt.Errorf("script %q directive %d: %w", s.Name, i, err)
		}
	}
	return nil
}

// Horizon returns the relative time of the script's last effect.
func (s *Script) Horizon() float64 {
	var h float64
	for i := range s.Directives {
		if e := s.Directives[i].end(); e > h {
			h = e
		}
	}
	return h
}

// ParseScript decodes a script from its JSON form and validates it.
// The grammar is the Script/Directive field set, e.g.:
//
//	{
//	  "name": "churn-storm",
//	  "directives": [
//	    {"at": 0, "kind": "traffic", "pattern": "cbr",
//	     "group": 0, "interval": 0.5, "packets": 30, "payload": 512},
//	    {"at": 2, "kind": "node-churn", "count": 3, "period": 1, "duration": 15}
//	  ]
//	}
//
// Malformed input returns an error, never panics (FuzzParseScript is
// the regression harness for that contract), and an error inside the
// directive list names the offending directive index.
func ParseScript(data []byte) (*Script, error) {
	// Directives decode in two steps — raw messages first, fields per
	// directive second — so a type or field error can be attributed to
	// the directive it occurred in instead of a byte offset.
	var raw struct {
		Name       string            `json:"name"`
		Directives []json.RawMessage `json:"directives"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("scenario: bad script: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: bad script: trailing data after the JSON object")
	}
	s := &Script{Name: raw.Name, Directives: make([]Directive, len(raw.Directives))}
	for i, msg := range raw.Directives {
		dd := json.NewDecoder(bytes.NewReader(msg))
		dd.DisallowUnknownFields()
		if err := dd.Decode(&s.Directives[i]); err != nil {
			return nil, fmt.Errorf("scenario: bad script: directive %d: %w", i, err)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return s, nil
}

// BuiltinScripts lists the names of the built-in stress scenarios.
func BuiltinScripts() []string {
	return []string{"churn-storm", "flash-crowd", "partition-heal"}
}

// BuiltinScript returns a fresh copy of one built-in stress scenario:
//
//   - churn-storm: CBR plus bursty on/off traffic while node churn and
//     membership churn run concurrently.
//   - flash-crowd: a Poisson background stream, then a flash crowd of
//     simultaneous senders.
//   - partition-heal: CBR through a radio-degradation window and an
//     area partition that heals before the stream ends.
func BuiltinScript(name string) (*Script, error) {
	var s *Script
	switch name {
	case "churn-storm":
		s = &Script{Name: name, Directives: []Directive{
			{At: 0, Kind: KindTraffic, Pattern: PatternCBR, Group: 0, Interval: 0.5, Packets: 30, Payload: 512},
			{At: 1, Kind: KindTraffic, Pattern: PatternOnOff, Group: 0, Interval: 0.4, Period: 3, Duration: 18, Packets: 15, Payload: 256},
			{At: 2, Kind: KindNodeChurn, Count: 3, Period: 1, Duration: 12},
			{At: 2, Kind: KindMemberChurn, Group: 0, Count: 1, Period: 2, Duration: 12},
		}}
	case "flash-crowd":
		s = &Script{Name: name, Directives: []Directive{
			{At: 0, Kind: KindTraffic, Pattern: PatternPoisson, Group: 0, Interval: 1, Duration: 20, Packets: 15, Payload: 512},
			{At: 6, Kind: KindTraffic, Pattern: PatternFlash, Group: 0, Count: 6, Duration: 4, Interval: 0.25, Packets: 5, Payload: 256},
		}}
	case "partition-heal":
		s = &Script{Name: name, Directives: []Directive{
			{At: 0, Kind: KindTraffic, Pattern: PatternCBR, Group: 0, Interval: 0.5, Packets: 40, Payload: 512},
			{At: 3, Kind: KindRadioLoss, Loss: 0.15, Duration: 6},
			{At: 8, Kind: KindPartition, Frac: 0.25, Duration: 7},
		}}
	default:
		return nil, fmt.Errorf("scenario: unknown built-in script %q (have %v)", name, BuiltinScripts())
	}
	return s, nil
}
