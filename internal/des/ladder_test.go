package des

import (
	"container/heap"
	"testing"
)

// refEntry is one pending event of the reference scheduler: the plain
// binary heap ordered by (at, seq) that the ladder queue must reproduce
// exactly.
type refEntry struct {
	at   Time
	seq  uint64
	id   int
	dead bool
}

type refHeap []*refEntry

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEntry)) }
func (h *refHeap) Pop() (x any) { old := *h; n := len(old); x = old[n-1]; *h = old[:n-1]; return }
func (h *refHeap) popLive() *refEntry {
	for h.Len() > 0 {
		e := heap.Pop(h).(*refEntry)
		if !e.dead {
			return e
		}
	}
	return nil
}

// xorshift is a tiny deterministic PRNG so the test needs no seeds from
// the environment.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

func (x *xorshift) float() float64 { return float64(x.next()%1_000_000) / 1_000_000 }

// TestLadderMatchesHeapOrder drives 100k mixed schedule/cancel
// operations through the ladder queue and a reference heap in lockstep
// and asserts the pop order is identical: same event IDs at the same
// timestamps, cancellations honored, across time scales that exercise
// the imminent heap, in-epoch buckets, the far tier's epoch rolls, and
// the sparse spill heap.
func TestLadderMatchesHeapOrder(t *testing.T) {
	const ops = 100_000

	s := New()
	s.SetGrain(5e-4)
	ref := &refHeap{}
	rng := xorshift(0x9e3779b97f4a7c15)

	nextID := 0
	var handles []Handle    // parallel: ladder handle per scheduled id
	var entries []*refEntry // parallel: reference entry per scheduled id
	var popped []int
	scheduled := 0

	// delay draws span six orders of magnitude so every tier gets
	// traffic: in-bucket (us), near-tier (ms), far-tier (s), spill (min).
	randDelay := func() Duration {
		switch rng.next() % 10 {
		case 0:
			return Duration(rng.float() * 1e-6)
		case 1, 2, 3, 4, 5:
			return Duration(rng.float() * 2e-3)
		case 6, 7:
			return Duration(rng.float() * 0.8)
		case 8:
			return Duration(rng.float() * 20)
		default:
			return Duration(rng.float() * 300)
		}
	}

	var runOp func(any)
	schedule := func(at Time) {
		id := nextID
		nextID++
		e := &refEntry{at: at, seq: s.seq, id: id}
		heap.Push(ref, e)
		handles = append(handles, s.ScheduleCall(at, runOp, id))
		entries = append(entries, e)
		scheduled++
	}
	cancelRandom := func() {
		// Try a few draws for a still-pending victim; a miss is fine.
		for try := 0; try < 4 && len(handles) > 0; try++ {
			id := int(rng.next() % uint64(len(handles)))
			if handles[id].Pending() {
				if !handles[id].Cancel() {
					t.Fatalf("cancel of pending handle %d reported false", id)
				}
				entries[id].dead = true
				scheduled++
				return
			}
		}
	}
	runOp = func(arg any) {
		popped = append(popped, arg.(int))
		// Keep the op mix flowing from inside callbacks, where
		// scheduling interacts with the partially drained current
		// bucket.
		for scheduled < ops {
			switch rng.next() % 8 {
			case 0:
				cancelRandom()
			case 1, 2:
				schedule(s.Now() + randDelay())
				continue // keep a couple per event on average
			default:
				schedule(s.Now() + randDelay())
			}
			break
		}
	}

	for i := 0; i < 512; i++ {
		schedule(randDelay())
	}
	s.Run()

	if scheduled < ops {
		t.Fatalf("only %d of %d ops performed; op mix starved", scheduled, ops)
	}
	var want []int
	for e := ref.popLive(); e != nil; e = ref.popLive() {
		want = append(want, e.id)
	}
	if len(popped) != len(want) {
		t.Fatalf("ladder executed %d events, reference %d", len(popped), len(want))
	}
	for i := range want {
		if popped[i] != want[i] {
			t.Fatalf("pop order diverges at %d: ladder ran id %d, reference id %d",
				i, popped[i], want[i])
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending=%d after drain", s.Pending())
	}
}

// TestLadderGrainAdaptation sanity-checks that extreme workloads do not
// wedge the width adaptation: a microsecond-scale storm followed by a
// sparse minutes-scale timer phase must both drain in order.
func TestLadderGrainAdaptation(t *testing.T) {
	s := New()
	var last Time = -1
	check := func() {
		if s.Now() < last {
			t.Fatalf("clock went backwards: %v after %v", s.Now(), last)
		}
		last = s.Now()
	}
	for i := 0; i < 50_000; i++ {
		s.Schedule(Time(i)*1e-7, check)
	}
	for i := 0; i < 100; i++ {
		s.Schedule(10+Time(i)*30, check)
	}
	s.Run()
	if s.Executed() != 50_100 {
		t.Fatalf("Executed=%d want 50100", s.Executed())
	}
}

// TestInfinitySentinels pins the degenerate-roll path: events at
// des.Infinity (a common "never, unless rescheduled" idiom) must not
// wedge the ladder when they are all that remains, and must still run
// in sequence order when the horizon allows them.
func TestInfinitySentinels(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(Infinity, func() { order = append(order, 1) })
	s.Schedule(5, func() { order = append(order, 0) })
	s.Schedule(Infinity, func() { order = append(order, 2) })
	s.SetHorizon(10)
	if end := s.Run(); end != 10 {
		t.Fatalf("horizon run ended at %v want 10", end)
	}
	if len(order) != 1 || order[0] != 0 {
		t.Fatalf("past-horizon Infinity events ran: %v", order)
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending=%d want 2 parked sentinels", s.Pending())
	}
	// Lifting the horizon releases the sentinels in schedule order
	// (matching the monolithic-heap kernel's behavior).
	s.SetHorizon(Infinity)
	s.Run()
	if len(order) != 3 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("sentinel execution order %v want [0 1 2]", order)
	}
}

// BenchmarkScheduleCall measures the steady-state schedule+dispatch
// cycle: each executed event schedules its successor, holding the
// pending set at 4096 events — the shape of a causality-chained
// protocol run.
func BenchmarkScheduleCall(b *testing.B) {
	s := New()
	s.SetGrain(5e-4)
	var delays [1024]Duration
	rng := xorshift(1)
	for i := range delays {
		delays[i] = Duration(1e-4 + rng.float()*2e-3)
	}
	i := 0
	var fn func(any)
	fn = func(any) {
		s.AfterCall(delays[i&1023], fn, nil)
		i++
	}
	for j := 0; j < 4096; j++ {
		s.AfterCall(delays[j&1023], fn, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		s.Step()
	}
}
