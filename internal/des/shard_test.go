package des

import (
	"fmt"
	"testing"
)

// TestShardedRunUntilCancelledFront is a regression test: a cancelled
// event at the global front is discarded by the frontKey peek, which
// pops the entry out of the queue's backing array before recycling the
// record. The pop relocates the entry under the peeked pointer, so
// reading the record through that pointer after the pop recycled a
// stale (possibly nil) event and crashed. Several cancelled entries in
// a row, interleaved with lane work, exercise every relocation shape.
func TestShardedRunUntilCancelledFront(t *testing.T) {
	sim := New()
	eng := NewSharded(sim, 2, 1)

	var order []string
	dead := make([]Handle, 0, 8)
	for i := 0; i < 8; i++ {
		i := i
		dead = append(dead, sim.Schedule(Time(i)*0.25, func() {
			order = append(order, fmt.Sprintf("dead%d", i))
		}))
	}
	sim.Schedule(2.5, func() { order = append(order, "global") })
	for lane := 0; lane < 2; lane++ {
		eng.ScheduleLaneDirect(lane, 1.5, func(any, uint64) {}, nil, 0)
	}
	for _, h := range dead {
		if !h.Cancel() {
			t.Fatal("cancel failed")
		}
	}

	eng.RunUntil(3)

	want := []string{"global"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("executed %v, want %v", order, want)
	}
	if got := sim.Executed(); got != 3 { // 2 lane events + 1 global
		t.Fatalf("executed count %d, want 3", got)
	}
}
