// Package des implements the discrete-event simulation kernel that every
// experiment in this repository runs on. It provides a virtual clock, an
// O(1)-amortized ladder-queue future event list with a free-list of
// recycled event records (so steady-state scheduling allocates nothing),
// periodic timers, and cancellation handles.
//
// The kernel is deliberately single-threaded: MANET protocol simulations
// are causality-chained (a reception schedules the next transmission), so
// the standard structure is one goroutine per *run* and many runs in
// parallel, which the experiment harness arranges. Keeping the kernel
// lock-free makes a run deterministic for a given seed.
//
// # Hot-path design
//
// The future event list is a ladder queue (calendar-queue hybrid) rather
// than a single heap, because at 10k-node scale the pending set holds
// 10^5+ events and every push/pop of a monolithic heap walks log E cold
// cache lines. The ladder splits events by distance from the clock:
//
//   - The imminent tier holds only the bucket currently being drained:
//     a sorted run popped by advancing a head index, plus a small 4-ary
//     side heap for events scheduled after the bucket started draining
//     (the causality chains of the current instant). Pops are
//     sequential reads over cache-resident entries instead of
//     log-depth sifts over the whole pending set.
//   - The near tier is an array of numBuckets FIFO buckets of width
//     s.width seconds each. Scheduling into the near horizon is a plain
//     append; a bucket is sorted once, when the clock reaches it (one
//     sequential pass when its appends arrived in timestamp order, as
//     same-instant protocol rounds do). The width follows the
//     hop-delay quantum of the workload (see SetGrain; the network
//     layer feeds it the radio processing-delay floor) and re-adapts
//     to the observed per-bucket occupancy on every epoch roll.
//   - The far tier is one unsorted overflow slice for events beyond the
//     near horizon. When the near tier drains, the epoch rolls: the
//     ladder re-bases at the earliest pending timestamp and the far
//     tier is re-laddered into fresh buckets.
//   - A 4-ary heap remains as the sparse fallback tier for events
//     beyond farEpochs near-spans (long timeouts, Infinity sentinels),
//     so pathological far-future events cannot bloat the re-ladder
//     scans.
//
// The tiers preserve the exact total order a single heap would produce —
// timestamp, then schedule sequence number — so runs are reproducible
// and byte-identical to the former monolithic-heap kernel
// (TestLadderMatchesHeapOrder cross-checks 100k mixed ops).
//
// Two further choices keep the constant factors down:
//
//   - Event records are pooled. Executing (or popping a cancelled)
//     event returns its record to a free list; Schedule reuses it.
//     Handles carry a generation counter so a handle to a recycled
//     record is inert. Cancellation tombstones the record; the queue
//     reclaims it on pop, so no tier needs deletion surgery.
//   - ScheduleCall carries a (func(any), arg) pair instead of a
//     closure, letting high-volume callers (the network layer
//     schedules its packet transmissions this way) avoid a closure
//     allocation per event. ReserveSeqs and ScheduleCallSeq let a
//     caller batch several events behind one (the network's
//     multi-receiver broadcast transmissions) while keeping each
//     event's original place in the total order.
package des

import (
	"fmt"
	"math"
	"time"
)

// Time is simulated time in seconds since the start of the run.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration = Time

// Infinity is a time later than any event the simulator will execute.
const Infinity Time = Time(math.MaxFloat64)

// FromReal converts a wall-clock duration to simulated seconds. It exists
// so scenario code can be written with time.Second-style literals.
func FromReal(d time.Duration) Duration { return Duration(d.Seconds()) }

// event is one scheduled callback. Exactly one of fn or afn is set; afn
// runs with arg (the ScheduleCall form). Records are pooled: gen
// increments on every recycle so stale Handles cannot touch a reused
// record. A cancelled event is tombstoned (dead) and its record
// reclaimed when the queue pops it; keys live in the tier entries, so
// cancellation needs no queue surgery.
type event struct {
	fn   func()
	afn  func(any)
	ufn  func(any, uint64)
	arg  any
	u    uint64
	gen  uint32
	dead bool
}

// entry is one future-event-list slot. The ordering keys (at, seq) are
// stored by value so tier comparisons never chase the event pointer.
// Events at equal times run in the order their sequence numbers were
// assigned (FIFO tie-break via seq), which keeps runs reproducible.
type entry struct {
	at  Time
	seq uint64
	ev  *event
}

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is valid and refers to no event.
type Handle struct {
	ev  *event
	gen uint32
}

// Cancel prevents the event from running. Cancelling an
// already-executed, already-cancelled, or zero handle is a no-op.
// Cancel reports whether the event was still pending.
func (h Handle) Cancel() bool {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.dead {
		return false
	}
	ev.dead = true
	return true
}

// Pending reports whether the event has neither run nor been cancelled.
func (h Handle) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && !h.ev.dead
}

// Ladder geometry. numBuckets near-tier buckets of defaultWidth seconds
// each cover roughly one second of simulated time at the default width;
// the far tier absorbs everything up to farEpochs near-spans ahead, and
// the sparse heap the rest. Width adapts between minWidth and maxWidth
// (see roll) so both microsecond-scale delivery storms and sparse
// timer-only phases keep bucket occupancy near occupancyTarget.
const (
	numBuckets      = 1024
	farEpochs       = 8
	defaultWidth    = 1e-3
	minWidth        = 1e-7
	maxWidth        = 0.25
	occupancyTarget = 64

	// burstCap is the bucket capacity above which a drained array is
	// pooled in spares rather than parked at its slot; maxSpares bounds
	// the pool (a handful of concurrent burst arrays covers the
	// overlapping protocol rounds seen in practice).
	burstCap  = 4096
	maxSpares = 4
)

// Simulator owns the virtual clock and the future event list.
type Simulator struct {
	now      Time
	free     []*event
	seq      uint64
	executed uint64
	stopped  bool
	horizon  Time

	// Ladder state. Entries with bucket index <= cur live in the
	// imminent tier (cb/side); buckets cur+1..numBuckets-1 hold the
	// rest of the near tier; far holds [nearEnd, farLimit); spill
	// holds >= farLimit.
	width    float64
	base     Time
	nearEnd  Time
	farLimit Time
	cur      int
	buckets  [][]entry
	cb       []entry // imminent tier: the current bucket, sorted; drained by cbHead
	cbHead   int
	side     []entry // late imminent inserts: 4-ary min-heap by (at, seq)
	far      []entry // unsorted overflow, re-laddered on epoch roll
	farTmp   []entry // roll's reusable partition scratch
	spill    []entry // sparse fallback tier: 4-ary min-heap by (at, seq)
	count    int     // pending entries across all tiers

	// spares recycles burst-bucket arrays. A protocol round dumps a
	// 10^5-entry burst into whichever bucket covers its delivery
	// instant, and that bucket index moves every epoch — left to plain
	// append, each burst re-grows a cold slice from scratch (this was
	// ~80% of all allocation at the 10k scale point). Drained buckets
	// with burst-scale capacity park here instead of in their slot, and
	// insert's grow path reuses them. Pure memory management: entries,
	// order, and counts are untouched.
	spares [][]entry

	grain  float64 // width hint from SetGrain, applied at the next roll
	placed uint64  // near-tier placements this epoch (occupancy feedback)
}

// New returns an empty simulator with the clock at zero and no horizon.
func New() *Simulator {
	s := &Simulator{horizon: Infinity, width: defaultWidth}
	s.buckets = make([][]entry, numBuckets)
	s.rebase(0)
	return s
}

// rebase points bucket 0 at time t with the current width.
func (s *Simulator) rebase(t Time) {
	s.base = t
	s.nearEnd = t + Time(float64(numBuckets)*s.width)
	s.farLimit = t + Time(float64(numBuckets)*s.width*farEpochs)
	s.cur = 0
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Executed returns the number of events executed so far; useful both in
// tests and as a cheap progress measure.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending returns the number of entries currently scheduled, including
// cancelled events the queue has not reclaimed yet. A multi-event batch
// scheduled behind one dispatch entry (see ReserveSeqs) counts as one
// until it expands.
func (s *Simulator) Pending() int { return s.count }

// SetHorizon caps the run: events scheduled after t never execute. A run
// ends when the queue drains or the next event lies past the horizon.
func (s *Simulator) SetHorizon(t Time) { s.horizon = t }

// SetGrain hints the scheduler's bucket width: the finest delay quantum
// the workload schedules at high volume (the network layer passes the
// radio tier's per-hop processing-delay floor, radio.Precomp.
// DelayQuantum). The hint applies immediately while the queue is empty
// and at the next epoch roll otherwise; occupancy feedback keeps
// adapting from there. A non-positive grain is ignored.
func (s *Simulator) SetGrain(d Duration) {
	if d <= 0 {
		return
	}
	g := math.Min(math.Max(float64(d), minWidth), maxWidth)
	if s.count == 0 {
		// Empty queue: apply now, re-anchoring the window at the clock
		// (the old base may lie far in the past after a long drain, and
		// a window behind the clock would shunt every insert to the
		// far/spill tiers until the first roll).
		s.width = g
		s.rebase(s.now)
		return
	}
	s.grain = g
}

// alloc takes an event record from the pool (or allocates one).
func (s *Simulator) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free = s.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle returns a record to the pool, invalidating outstanding handles.
func (s *Simulator) recycle(ev *event) {
	ev.gen++
	ev.fn, ev.afn, ev.ufn, ev.arg, ev.u = nil, nil, nil, nil, 0
	ev.dead = false
	s.free = append(s.free, ev)
}

// Schedule runs fn at absolute time at. Scheduling in the past panics:
// that is always a protocol bug, and failing loudly during development is
// preferable to silent causality violations.
func (s *Simulator) Schedule(at Time, fn func()) Handle {
	ev := s.push(at)
	ev.fn = fn
	return Handle{ev, ev.gen}
}

// ScheduleCall runs fn(arg) at absolute time at. It is Schedule for
// hot paths: a caller that reuses one fn and threads per-event state
// through arg schedules without allocating a closure.
func (s *Simulator) ScheduleCall(at Time, fn func(any), arg any) Handle {
	ev := s.push(at)
	ev.afn = fn
	ev.arg = arg
	return Handle{ev, ev.gen}
}

// ScheduleCallU is ScheduleCall with an extra unboxed word: fn runs as
// fn(arg, u). The delivery fan-out threads (from, to) through u and the
// packet through arg, which removes the pooled per-hop record — and
// with it one dependent cold load per executed event — that a single
// arg pointer would otherwise require.
func (s *Simulator) ScheduleCallU(at Time, fn func(any, uint64), arg any, u uint64) Handle {
	ev := s.push(at)
	ev.ufn = fn
	ev.arg = arg
	ev.u = u
	return Handle{ev, ev.gen}
}

// After runs fn after the given delay from the current time.
func (s *Simulator) After(d Duration, fn func()) Handle {
	return s.Schedule(s.now+d, fn)
}

// AfterCall runs fn(arg) after the given delay from the current time.
func (s *Simulator) AfterCall(d Duration, fn func(any), arg any) Handle {
	return s.ScheduleCall(s.now+d, fn, arg)
}

// AfterCallU runs fn(arg, u) after the given delay from the current
// time (see ScheduleCallU).
func (s *Simulator) AfterCallU(d Duration, fn func(any, uint64), arg any, u uint64) Handle {
	return s.ScheduleCallU(s.now+d, fn, arg, u)
}

// ReserveSeqs reserves a contiguous block of n schedule sequence numbers
// and returns the first. A caller that fans one physical event into n
// logical ones (the network's multi-receiver broadcast transmissions)
// reserves the block at send time and materializes the events later via
// ScheduleCallSeq; because the total order is (timestamp, sequence), the
// late events still execute exactly where immediate scheduling would
// have put them.
func (s *Simulator) ReserveSeqs(n int) uint64 {
	first := s.seq
	s.seq += uint64(n)
	return first
}

// ScheduleCallSeq schedules fn(arg) at absolute time at with an explicit
// sequence number previously obtained from ReserveSeqs. The caller must
// guarantee that (at, seq) is still in the future of the execution
// order, i.e. at >= Now() and no event ordered after (at, seq) has
// executed yet; reserving at send time and expanding at the batch's
// earliest (at, seq) satisfies this by construction.
func (s *Simulator) ScheduleCallSeq(at Time, seq uint64, fn func(any), arg any) Handle {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, s.now))
	}
	ev := s.alloc()
	ev.afn = fn
	ev.arg = arg
	s.insert(entry{at: at, seq: seq, ev: ev})
	return Handle{ev, ev.gen}
}

// ScheduleCallSeqU is ScheduleCallSeq for the unboxed-word form of
// ScheduleCallU, under the same (at, seq) contract.
func (s *Simulator) ScheduleCallSeqU(at Time, seq uint64, fn func(any, uint64), arg any, u uint64) Handle {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, s.now))
	}
	ev := s.alloc()
	ev.ufn = fn
	ev.arg = arg
	ev.u = u
	s.insert(entry{at: at, seq: seq, ev: ev})
	return Handle{ev, ev.gen}
}

// push allocates a record for time at, assigns the next sequence number,
// and inserts the entry into the ladder.
func (s *Simulator) push(at Time) *event {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, s.now))
	}
	ev := s.alloc()
	s.insert(entry{at: at, seq: s.seq, ev: ev})
	s.seq++
	return ev
}

// less orders entries by (at, seq).
func (a entry) less(b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// insert places an entry in its tier. Bucket assignment is a monotone
// function of the timestamp (floor((at-base)/width) computed with one
// shared expression), so an entry in a lower-indexed bucket never has a
// later timestamp than one in a higher-indexed bucket — the property
// that lets buckets drain strictly in index order.
func (s *Simulator) insert(e entry) {
	s.count++
	switch {
	case e.at >= s.farLimit:
		s.spill = heapPush(s.spill, e)
	case e.at >= s.nearEnd:
		s.far = append(s.far, e)
	default:
		idx := int(float64(e.at-s.base) / s.width)
		if idx >= numBuckets {
			idx = numBuckets - 1 // float boundary rounding
		}
		s.placed++
		if idx <= s.cur {
			// The clock already reached this bucket: the entry joins the
			// imminent side heap directly (e.at >= now keeps order
			// intact). The side heap stays small — it only ever holds
			// events scheduled after their bucket started draining,
			// i.e. the short causality chains of the current instant.
			s.side = heapPush(s.side, e)
		} else {
			b := s.buckets[idx]
			if len(b) == cap(b) && len(b) >= burstCap/2 {
				// Burst growth: move to a pooled burst array instead of
				// letting append allocate another one.
				b = s.burstGrow(b)
			}
			s.buckets[idx] = append(b, e)
		}
	}
}

// burstGrow moves a full bucket into a pooled burst array when one
// with enough headroom is available; otherwise the caller's append
// grows it normally (and the grown array will be pooled when drained).
func (s *Simulator) burstGrow(b []entry) []entry {
	for i := len(s.spares) - 1; i >= 0; i-- {
		sp := s.spares[i]
		if cap(sp) >= 2*len(b) {
			s.spares = append(s.spares[:i], s.spares[i+1:]...)
			sp = sp[:len(b)]
			copy(sp, b)
			return sp
		}
	}
	return b
}

// front returns the entry with the minimal (at, seq) key without
// removing it, advancing buckets and rolling epochs as needed. It
// returns nil when no events are pending.
//
// The imminent tier is a sorted run (cb, drained by cbHead) plus the
// side heap of late inserts; the minimum is whichever head is smaller.
// Draining a sorted run means burst buckets — a beacon round schedules
// tens of thousands of same-timestamp events — pop by sequential reads
// instead of log-depth heap swaps.
func (s *Simulator) front() *entry {
	for {
		hasCB := s.cbHead < len(s.cb)
		if len(s.side) > 0 {
			if !hasCB || s.side[0].less(s.cb[s.cbHead]) {
				return &s.side[0]
			}
			return &s.cb[s.cbHead]
		}
		if hasCB {
			return &s.cb[s.cbHead]
		}
		if s.cur+1 < numBuckets {
			s.cur++
			if b := s.buckets[s.cur]; len(b) > 0 {
				// The bucket's clock has come: swap it into the imminent
				// run (the drained run's array parks in the bucket slot
				// for the next epoch — no copy, and grown capacity
				// stays in circulation) and sort it once. Appends arrive
				// in sequence order, so a bucket whose timestamps happen
				// to be monotone — same-instant protocol rounds, steady
				// streams — is already sorted and the check is one
				// sequential pass.
				if cap(s.cb) >= burstCap && len(s.spares) < maxSpares {
					// Burst-scale capacity follows the bursts through the
					// spare pool instead of idling at one slot.
					s.spares = append(s.spares, s.cb[:0])
					s.buckets[s.cur] = nil
				} else {
					s.buckets[s.cur] = s.cb[:0]
				}
				s.cb = b
				s.cbHead = 0
				if !sortedEntries(s.cb) {
					sortEntries(s.cb)
				}
			}
			continue
		}
		if len(s.far) == 0 && len(s.spill) == 0 {
			return nil
		}
		s.roll()
	}
}

// sortedEntries reports whether the run is already in (at, seq) order.
func sortedEntries(h []entry) bool {
	for i := 1; i < len(h); i++ {
		if h[i].less(h[i-1]) {
			return false
		}
	}
	return true
}

// roll starts a new epoch: re-base the ladder at the earliest pending
// timestamp, adapt the bucket width to the occupancy observed last
// epoch (and any pending SetGrain hint), and re-ladder the far tier —
// plus any sparse-tier events the new far limit now covers — into the
// fresh buckets.
func (s *Simulator) roll() {
	earliest := Infinity
	for _, e := range s.far {
		if e.at < earliest {
			earliest = e.at
		}
	}
	if len(s.spill) > 0 && s.spill[0].at < earliest {
		earliest = s.spill[0].at
	}

	// Width feedback: halve when buckets ran hot, double when the epoch
	// was sparse. placed counts near-tier placements since the last
	// roll, so the measure tracks what the buckets actually absorbed.
	// The dead band between the two thresholds is wide (64x) on
	// purpose: protocol workloads alternate bursty and quiet epochs,
	// and a twitchy width re-ratchets every bucket's capacity — the
	// slices' amortized growth is only amortized if the per-bucket
	// occupancy stays put.
	if s.grain > 0 {
		s.width = s.grain
		s.grain = 0
	} else if occ := float64(s.placed) / numBuckets; occ > 4*occupancyTarget {
		s.width = math.Max(s.width/2, minWidth)
	} else if occ < occupancyTarget/16 {
		s.width = math.Min(s.width*2, maxWidth)
	}
	s.placed = 0

	s.rebase(earliest)
	if !(s.nearEnd > earliest) {
		// Degenerate re-base: the bucket window cannot advance past
		// earliest — Infinity sentinels, or float granularity at huge
		// timestamps where earliest+span rounds back to earliest. Move
		// the entries at exactly that timestamp straight into the side
		// heap (which orders them by sequence) so front() can serve
		// them; later timestamps, if any, wait for the next roll.
		kept := s.far[:0]
		for _, e := range s.far {
			if e.at == earliest {
				s.side = heapPush(s.side, e)
			} else {
				kept = append(kept, e)
			}
		}
		s.far = kept
		for len(s.spill) > 0 && s.spill[0].at == earliest {
			var e entry
			s.spill, e = heapPop(s.spill)
			s.side = heapPush(s.side, e)
		}
		return
	}
	// Re-ladder the far tier through the shared insert path; partition
	// into the reusable scratch first so appends cannot alias the slice
	// being scanned.
	moved := s.farTmp[:0]
	kept := s.far[:0]
	for _, e := range s.far {
		if e.at < s.nearEnd {
			moved = append(moved, e)
		} else {
			kept = append(kept, e)
		}
	}
	s.farTmp = moved
	s.far = kept
	for _, e := range moved {
		s.count--
		s.insert(e)
	}
	for len(s.spill) > 0 && s.spill[0].at < s.farLimit {
		var e entry
		s.spill, e = heapPop(s.spill)
		s.count--
		s.insert(e)
	}
}

// sortEntries sorts a run by (at, seq) with direct field comparisons
// (a quicksort/insertion hybrid; the generic comparator-closure sorts
// showed up in burst-bucket profiles). Keys are unique (seq is), so
// stability is irrelevant.
func sortEntries(h []entry) {
	for len(h) > 24 {
		// Median-of-three pivot to the front, then Hoare partition.
		m := len(h) / 2
		last := len(h) - 1
		if h[m].less(h[0]) {
			h[m], h[0] = h[0], h[m]
		}
		if h[last].less(h[0]) {
			h[last], h[0] = h[0], h[last]
		}
		if h[last].less(h[m]) {
			h[last], h[m] = h[m], h[last]
		}
		pivot := h[m]
		i, j := 0, last
		for {
			for h[i].less(pivot) {
				i++
			}
			for pivot.less(h[j]) {
				j--
			}
			if i >= j {
				break
			}
			h[i], h[j] = h[j], h[i]
			i++
			j--
		}
		// Recurse into the smaller half, loop on the larger.
		if j+1 < len(h)-j-1 {
			sortEntries(h[:j+1])
			h = h[j+1:]
		} else {
			sortEntries(h[j+1:])
			h = h[:j+1]
		}
	}
	for i := 1; i < len(h); i++ {
		e := h[i]
		j := i - 1
		for j >= 0 && e.less(h[j]) {
			h[j+1] = h[j]
			j--
		}
		h[j+1] = e
	}
}

// 4-ary min-heap of entries ordered by (at, seq), shared by the
// imminent side tier and the sparse tier. The wide fan-out halves the
// depth of a binary layout and the value entries keep sift loops in
// cache.

func heapPush(h []entry, e entry) []entry {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func heapPop(h []entry) ([]entry, entry) {
	root := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = entry{}
	h = h[:last]
	if last > 0 {
		heapDown(h, 0)
	}
	return h, root
}

func heapDown(h []entry, i int) {
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		c := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if h[j].less(h[c]) {
				c = j
			}
		}
		if !h[c].less(h[i]) {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

// Every runs fn at the given period, starting after an initial offset
// (use offset 0 to fire immediately relative to now+period jitter control
// in the caller). The returned Ticker can be stopped.
func (s *Simulator) Every(offset, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("des: non-positive ticker period")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.fireFn = t.fire // bound once; rescheduling reuses it allocation-free
	t.handle = s.After(offset, t.fireFn)
	return t
}

// Ticker is a periodic event created by Every. Each firing reuses the
// ticker's bound callback and a pooled event record, so a long-lived
// ticker costs no allocation per period.
type Ticker struct {
	sim     *Simulator
	period  Duration
	fn      func()
	fireFn  func()
	handle  Handle
	stopped bool
}

func (t *Ticker) fire() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may have stopped us
		t.handle = t.sim.After(t.period, t.fireFn)
	}
}

// Stop cancels future firings. It is idempotent.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.handle.Cancel()
}

// Stop halts the run after the current event returns.
func (s *Simulator) Stop() { s.stopped = true }

// popKnown removes the entry f, which must be the pointer front just
// returned (either the side-heap root or the run head). Splitting peek
// and pop this way lets the execution loop evaluate the two-head
// minimum once per event instead of twice.
func (s *Simulator) popKnown(f *entry) {
	s.count--
	if len(s.side) > 0 && f == &s.side[0] {
		s.side, _ = heapPop(s.side)
		return
	}
	s.cbHead++
}

// runEvent recycles and runs a live entry's event at its timestamp.
func (s *Simulator) runEvent(at Time, ev *event) {
	s.now = at
	fn, afn, ufn, arg, u := ev.fn, ev.afn, ev.ufn, ev.arg, ev.u
	s.recycle(ev)
	s.executed++
	switch {
	case ufn != nil:
		ufn(arg, u)
	case fn != nil:
		fn()
	default:
		afn(arg)
	}
}

// Step executes the single next event, discarding cancelled entries it
// meets on the way. It reports false when the queue is empty, the
// simulator was stopped, or the next event is past the horizon.
func (s *Simulator) Step() bool {
	for {
		f := s.front()
		if f == nil || s.stopped || f.at > s.horizon {
			return false
		}
		at, ev := f.at, f.ev
		s.popKnown(f)
		if ev.dead {
			s.recycle(ev)
			continue
		}
		s.runEvent(at, ev)
		return true
	}
}

// Run executes events until the queue drains, Stop is called, or the
// horizon is reached. It returns the final simulated time.
func (s *Simulator) Run() Time {
	for s.Step() {
	}
	if s.horizon < Infinity && s.now < s.horizon && !s.stopped {
		// Queue drained early; advance the clock to the horizon so that
		// rate metrics (events/second) are computed over the full window.
		s.now = s.horizon
	}
	return s.now
}

// RunUntil executes events with timestamps <= t and then sets the clock
// to exactly t. It is the building block for phased experiments
// (warm-up, measure, tear-down).
func (s *Simulator) RunUntil(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("des: RunUntil(%v) before now %v", t, s.now))
	}
	for !s.stopped {
		f := s.front()
		if f == nil || f.at > t || f.at > s.horizon {
			break
		}
		at, ev := f.at, f.ev
		s.popKnown(f)
		if ev.dead {
			s.recycle(ev)
			continue
		}
		s.runEvent(at, ev)
	}
	if t <= s.horizon && !s.stopped {
		s.now = t
	}
}
