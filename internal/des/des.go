// Package des implements the discrete-event simulation kernel that every
// experiment in this repository runs on. It provides a virtual clock, an
// indexed binary-heap future event list with a free-list of recycled
// event records (so steady-state scheduling allocates nothing), periodic
// timers, and cancellation handles.
//
// The kernel is deliberately single-threaded: MANET protocol simulations
// are causality-chained (a reception schedules the next transmission), so
// the standard structure is one goroutine per *run* and many runs in
// parallel, which the experiment harness arranges. Keeping the kernel
// lock-free makes a run deterministic for a given seed.
//
// # Hot-path design
//
// Three choices keep the kernel fast at 10k-node scale (see DESIGN.md):
//
//   - Event records are pooled. Executing (or popping a cancelled)
//     event returns its record to a free list; Schedule reuses it.
//     Handles carry a generation counter so a handle to a recycled
//     record is inert.
//   - The heap holds value entries (timestamp, sequence, record
//     pointer) rather than pointers, so sift comparisons stay in cache.
//     Cancellation tombstones the record; the queue reclaims it on pop.
//   - ScheduleCall carries a (func(any), arg) pair instead of a closure,
//     letting high-volume callers (the network layer schedules one event
//     per packet hop) avoid a closure allocation per event.
package des

import (
	"fmt"
	"math"
	"time"
)

// Time is simulated time in seconds since the start of the run.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration = Time

// Infinity is a time later than any event the simulator will execute.
const Infinity Time = Time(math.MaxFloat64)

// FromReal converts a wall-clock duration to simulated seconds. It exists
// so scenario code can be written with time.Second-style literals.
func FromReal(d time.Duration) Duration { return Duration(d.Seconds()) }

// event is one scheduled callback. Exactly one of fn or afn is set; afn
// runs with arg (the ScheduleCall form). Records are pooled: gen
// increments on every recycle so stale Handles cannot touch a reused
// record. A cancelled event is tombstoned (dead) and its record
// reclaimed when the queue pops it; keys live in the heap entries, so
// cancellation needs no heap surgery.
type event struct {
	fn   func()
	afn  func(any)
	arg  any
	gen  uint32
	dead bool
}

// heapEntry is one future-event-list slot. The ordering keys (at, seq)
// are stored by value so heap comparisons never chase the event
// pointer — on 100k+-event queues this is the difference between
// cache-resident and cache-missing sift loops. Events at equal times
// run in the order they were scheduled (FIFO tie-break via seq), which
// keeps runs reproducible.
type heapEntry struct {
	at  Time
	seq uint64
	ev  *event
}

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is valid and refers to no event.
type Handle struct {
	ev  *event
	gen uint32
}

// Cancel prevents the event from running. Cancelling an
// already-executed, already-cancelled, or zero handle is a no-op.
// Cancel reports whether the event was still pending.
func (h Handle) Cancel() bool {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.dead {
		return false
	}
	ev.dead = true
	return true
}

// Pending reports whether the event has neither run nor been cancelled.
func (h Handle) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && !h.ev.dead
}

// Simulator owns the virtual clock and the future event list.
type Simulator struct {
	now      Time
	queue    []heapEntry
	free     []*event
	seq      uint64
	executed uint64
	stopped  bool
	horizon  Time
}

// New returns an empty simulator with the clock at zero and no horizon.
func New() *Simulator {
	return &Simulator{horizon: Infinity}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Executed returns the number of events executed so far; useful both in
// tests and as a cheap progress measure.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending returns the number of events currently scheduled, including
// cancelled events the queue has not reclaimed yet.
func (s *Simulator) Pending() int { return len(s.queue) }

// SetHorizon caps the run: events scheduled after t never execute. A run
// ends when the queue drains or the next event lies past the horizon.
func (s *Simulator) SetHorizon(t Time) { s.horizon = t }

// alloc takes an event record from the pool (or allocates one).
func (s *Simulator) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free = s.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle returns a record to the pool, invalidating outstanding handles.
func (s *Simulator) recycle(ev *event) {
	ev.gen++
	ev.fn, ev.afn, ev.arg = nil, nil, nil
	ev.dead = false
	s.free = append(s.free, ev)
}

// Schedule runs fn at absolute time at. Scheduling in the past panics:
// that is always a protocol bug, and failing loudly during development is
// preferable to silent causality violations.
func (s *Simulator) Schedule(at Time, fn func()) Handle {
	ev := s.push(at)
	ev.fn = fn
	return Handle{ev, ev.gen}
}

// ScheduleCall runs fn(arg) at absolute time at. It is Schedule for
// hot paths: a caller that reuses one fn and threads per-event state
// through arg schedules without allocating a closure.
func (s *Simulator) ScheduleCall(at Time, fn func(any), arg any) Handle {
	ev := s.push(at)
	ev.afn = fn
	ev.arg = arg
	return Handle{ev, ev.gen}
}

// After runs fn after the given delay from the current time.
func (s *Simulator) After(d Duration, fn func()) Handle {
	return s.Schedule(s.now+d, fn)
}

// AfterCall runs fn(arg) after the given delay from the current time.
func (s *Simulator) AfterCall(d Duration, fn func(any), arg any) Handle {
	return s.ScheduleCall(s.now+d, fn, arg)
}

// push allocates a record for time at and sifts it into the heap.
func (s *Simulator) push(at Time) *event {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, s.now))
	}
	ev := s.alloc()
	s.queue = append(s.queue, heapEntry{at: at, seq: s.seq, ev: ev})
	s.seq++
	s.siftUp(len(s.queue) - 1)
	return ev
}

// Heap maintenance. The queue is a 4-ary min-heap of value entries
// ordered by (at, seq). The wider fan-out halves the tree depth of the
// binary layout and the value entries keep sift loops in cache, which
// together measurably cut the kernel overhead of 10k-node worlds.

func (s *Simulator) less(i, j int) bool {
	a, b := &s.queue[i], &s.queue[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Simulator) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !s.less(i, parent) {
			return
		}
		s.queue[i], s.queue[parent] = s.queue[parent], s.queue[i]
		i = parent
	}
}

func (s *Simulator) siftDown(i int) {
	n := len(s.queue)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		c := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if s.less(j, c) {
				c = j
			}
		}
		if !s.less(c, i) {
			return
		}
		s.queue[i], s.queue[c] = s.queue[c], s.queue[i]
		i = c
	}
}

// pop removes and returns the root entry's event with its timestamp.
func (s *Simulator) pop() (Time, *event) {
	root := s.queue[0]
	last := len(s.queue) - 1
	s.queue[0] = s.queue[last]
	s.queue[last] = heapEntry{}
	s.queue = s.queue[:last]
	if last > 0 {
		s.siftDown(0)
	}
	return root.at, root.ev
}

// Every runs fn at the given period, starting after an initial offset
// (use offset 0 to fire immediately relative to now+period jitter control
// in the caller). The returned Ticker can be stopped.
func (s *Simulator) Every(offset, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("des: non-positive ticker period")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.fireFn = t.fire // bound once; rescheduling reuses it allocation-free
	t.handle = s.After(offset, t.fireFn)
	return t
}

// Ticker is a periodic event created by Every. Each firing reuses the
// ticker's bound callback and a pooled event record, so a long-lived
// ticker costs no allocation per period.
type Ticker struct {
	sim     *Simulator
	period  Duration
	fn      func()
	fireFn  func()
	handle  Handle
	stopped bool
}

func (t *Ticker) fire() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may have stopped us
		t.handle = t.sim.After(t.period, t.fireFn)
	}
}

// Stop cancels future firings. It is idempotent.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.handle.Cancel()
}

// Stop halts the run after the current event returns.
func (s *Simulator) Stop() { s.stopped = true }

// execute pops the root event, recycles its record, and runs it. The
// record is recycled before the callback runs so that events the callback
// schedules can reuse it immediately.
func (s *Simulator) execute() {
	at, ev := s.pop()
	s.now = at
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	s.recycle(ev)
	s.executed++
	if fn != nil {
		fn()
	} else {
		afn(arg)
	}
}

// dropDead discards cancelled events at the queue root, recycling their
// records.
func (s *Simulator) dropDead() {
	for len(s.queue) > 0 && s.queue[0].ev.dead {
		_, ev := s.pop()
		s.recycle(ev)
	}
}

// Step executes the single next event. It reports false when the queue is
// empty, the simulator was stopped, or the next event is past the
// horizon.
func (s *Simulator) Step() bool {
	s.dropDead()
	if len(s.queue) == 0 || s.stopped || s.queue[0].at > s.horizon {
		return false
	}
	s.execute()
	return true
}

// Run executes events until the queue drains, Stop is called, or the
// horizon is reached. It returns the final simulated time.
func (s *Simulator) Run() Time {
	for s.Step() {
	}
	if s.horizon < Infinity && s.now < s.horizon && !s.stopped {
		// Queue drained early; advance the clock to the horizon so that
		// rate metrics (events/second) are computed over the full window.
		s.now = s.horizon
	}
	return s.now
}

// RunUntil executes events with timestamps <= t and then sets the clock
// to exactly t. It is the building block for phased experiments
// (warm-up, measure, tear-down).
func (s *Simulator) RunUntil(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("des: RunUntil(%v) before now %v", t, s.now))
	}
	for !s.stopped {
		s.dropDead()
		if len(s.queue) == 0 {
			break
		}
		if at := s.queue[0].at; at > t || at > s.horizon {
			break
		}
		s.execute()
	}
	if t <= s.horizon && !s.stopped {
		s.now = t
	}
}
