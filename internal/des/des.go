// Package des implements the discrete-event simulation kernel that every
// experiment in this repository runs on. It provides a virtual clock, a
// binary-heap future event list, periodic timers, and a labelled event
// counter used by the experiment harness to account control overhead.
//
// The kernel is deliberately single-threaded: MANET protocol simulations
// are causality-chained (a reception schedules the next transmission), so
// the standard structure is one goroutine per *run* and many runs in
// parallel, which the experiment harness arranges. Keeping the kernel
// lock-free makes a run deterministic for a given seed.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is simulated time in seconds since the start of the run.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration = Time

// Infinity is a time later than any event the simulator will execute.
const Infinity Time = Time(math.MaxFloat64)

// FromReal converts a wall-clock duration to simulated seconds. It exists
// so scenario code can be written with time.Second-style literals.
func FromReal(d time.Duration) Duration { return Duration(d.Seconds()) }

// Event is a scheduled callback. Fn runs at time At; events at equal
// times run in the order they were scheduled (FIFO tie-break), which
// keeps runs reproducible.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int
	dead bool
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ ev *event }

// Cancel prevents the event from running. Cancelling an already-executed
// or already-cancelled event is a no-op. Cancel reports whether the event
// was still pending.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.ev.dead {
		return false
	}
	h.ev.dead = true
	return true
}

// Pending reports whether the event has neither run nor been cancelled.
func (h Handle) Pending() bool { return h.ev != nil && !h.ev.dead && h.ev.idx >= 0 }

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*q = old[:n-1]
	return ev
}

// Simulator owns the virtual clock and the future event list.
type Simulator struct {
	now      Time
	queue    eventQueue
	seq      uint64
	executed uint64
	stopped  bool
	horizon  Time
}

// New returns an empty simulator with the clock at zero and no horizon.
func New() *Simulator {
	return &Simulator{horizon: Infinity}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Executed returns the number of events executed so far; useful both in
// tests and as a cheap progress measure.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending returns the number of events currently scheduled.
func (s *Simulator) Pending() int { return len(s.queue) }

// SetHorizon caps the run: events scheduled after t never execute. A run
// ends when the queue drains or the next event lies past the horizon.
func (s *Simulator) SetHorizon(t Time) { s.horizon = t }

// Schedule runs fn at absolute time at. Scheduling in the past panics:
// that is always a protocol bug, and failing loudly during development is
// preferable to silent causality violations.
func (s *Simulator) Schedule(at Time, fn func()) Handle {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, s.now))
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return Handle{ev}
}

// After runs fn after the given delay from the current time.
func (s *Simulator) After(d Duration, fn func()) Handle {
	return s.Schedule(s.now+d, fn)
}

// Every runs fn at the given period, starting after an initial offset
// (use offset 0 to fire immediately relative to now+period jitter control
// in the caller). The returned Ticker can be stopped.
func (s *Simulator) Every(offset, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("des: non-positive ticker period")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.handle = s.After(offset, t.fire)
	return t
}

// Ticker is a periodic event created by Every.
type Ticker struct {
	sim     *Simulator
	period  Duration
	fn      func()
	handle  Handle
	stopped bool
}

func (t *Ticker) fire() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may have stopped us
		t.handle = t.sim.After(t.period, t.fire)
	}
}

// Stop cancels future firings. It is idempotent.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.handle.Cancel()
}

// Stop halts the run after the current event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Step executes the single next event. It reports false when the queue is
// empty, the simulator was stopped, or the next event is past the
// horizon.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		if s.stopped {
			return false
		}
		ev := s.queue[0]
		if ev.dead {
			heap.Pop(&s.queue)
			continue
		}
		if ev.at > s.horizon {
			return false
		}
		heap.Pop(&s.queue)
		s.now = ev.at
		ev.dead = true
		s.executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains, Stop is called, or the
// horizon is reached. It returns the final simulated time.
func (s *Simulator) Run() Time {
	for s.Step() {
	}
	if s.horizon < Infinity && s.now < s.horizon && !s.stopped {
		// Queue drained early; advance the clock to the horizon so that
		// rate metrics (events/second) are computed over the full window.
		s.now = s.horizon
	}
	return s.now
}

// RunUntil executes events with timestamps <= t and then sets the clock
// to exactly t. It is the building block for phased experiments
// (warm-up, measure, tear-down).
func (s *Simulator) RunUntil(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("des: RunUntil(%v) before now %v", t, s.now))
	}
	for len(s.queue) > 0 && !s.stopped {
		ev := s.queue[0]
		if ev.dead {
			heap.Pop(&s.queue)
			continue
		}
		if ev.at > t || ev.at > s.horizon {
			break
		}
		heap.Pop(&s.queue)
		s.now = ev.at
		ev.dead = true
		s.executed++
		ev.fn()
	}
	if t <= s.horizon && !s.stopped {
		s.now = t
	}
}
