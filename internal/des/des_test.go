package des

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v want %v", order, want)
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of scheduling order: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New()
	var at Time
	s.Schedule(2.5, func() { at = s.Now() })
	end := s.Run()
	if at != 2.5 {
		t.Fatalf("Now inside event = %v want 2.5", at)
	}
	if end != 2.5 {
		t.Fatalf("final time %v want 2.5", end)
	}
}

func TestAfter(t *testing.T) {
	s := New()
	var times []Time
	s.Schedule(1, func() {
		s.After(0.5, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 1 || times[0] != 1.5 {
		t.Fatalf("After fired at %v want [1.5]", times)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		s.Schedule(1, func() {})
	})
	s.Run()
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	h := s.Schedule(1, func() { fired = true })
	if !h.Pending() {
		t.Fatal("handle should be pending before run")
	}
	if !h.Cancel() {
		t.Fatal("first cancel should report true")
	}
	if h.Cancel() {
		t.Fatal("second cancel should report false")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterExecutionIsNoop(t *testing.T) {
	s := New()
	h := s.Schedule(1, func() {})
	s.Run()
	if h.Cancel() {
		t.Fatal("cancelling an executed event should report false")
	}
}

func TestTicker(t *testing.T) {
	s := New()
	var fires []Time
	s.SetHorizon(10)
	tk := s.Every(1, 2, func() { fires = append(fires, s.Now()) })
	_ = tk
	s.Run()
	want := []Time{1, 3, 5, 7, 9}
	if len(fires) != len(want) {
		t.Fatalf("fires %v want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires %v want %v", fires, want)
		}
	}
}

func TestTickerStop(t *testing.T) {
	s := New()
	count := 0
	var tk *Ticker
	tk = s.Every(1, 1, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	s.SetHorizon(100)
	s.Run()
	if count != 3 {
		t.Fatalf("ticker fired %d times after Stop, want 3", count)
	}
	tk.Stop() // idempotent
}

func TestHorizon(t *testing.T) {
	s := New()
	fired := false
	s.SetHorizon(5)
	s.Schedule(10, func() { fired = true })
	end := s.Run()
	if fired {
		t.Fatal("event past horizon fired")
	}
	if end != 5 {
		t.Fatalf("run should end at horizon, got %v", end)
	}
}

func TestRunUntilPhases(t *testing.T) {
	s := New()
	var fires []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		s.Schedule(at, func() { fires = append(fires, at) })
	}
	s.RunUntil(3)
	if len(fires) != 3 {
		t.Fatalf("RunUntil(3) executed %d events want 3", len(fires))
	}
	if s.Now() != 3 {
		t.Fatalf("clock %v want 3", s.Now())
	}
	s.RunUntil(10)
	if len(fires) != 5 {
		t.Fatalf("second phase executed %d total want 5", len(fires))
	}
	if s.Now() != 10 {
		t.Fatalf("clock %v want 10", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	ran := 0
	s.Schedule(1, func() { ran++; s.Stop() })
	s.Schedule(2, func() { ran++ })
	s.Run()
	if ran != 1 {
		t.Fatalf("Stop did not halt the run: %d events", ran)
	}
}

func TestExecutedCount(t *testing.T) {
	s := New()
	for i := 0; i < 17; i++ {
		s.Schedule(Time(i), func() {})
	}
	s.Run()
	if s.Executed() != 17 {
		t.Fatalf("Executed=%d want 17", s.Executed())
	}
}

func TestPending(t *testing.T) {
	s := New()
	s.Schedule(1, func() {})
	s.Schedule(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending=%d want 2", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("Pending after run=%d want 0", s.Pending())
	}
}

func TestFromReal(t *testing.T) {
	if FromReal(1500*time.Millisecond) != 1.5 {
		t.Fatal("FromReal conversion wrong")
	}
}

// Property: executing N events at arbitrary non-negative offsets always
// yields a non-decreasing clock sequence.
func TestMonotonicClockProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := New()
		var times []Time
		for _, o := range offsets {
			s.Schedule(Time(o), func() { times = append(times, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			s.After(0.1, recurse)
		}
	}
	s.Schedule(0, recurse)
	s.Run()
	if depth != 100 {
		t.Fatalf("nested chain depth %d want 100", depth)
	}
}
