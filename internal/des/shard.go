package des

import (
	"fmt"
	"math"
)

// shard.go: the sharded execution engine. A Sharded wraps one Simulator
// (the "global lane": every event scheduled through the ordinary
// Schedule/After family) and adds k shard lanes, each a plain binary
// heap of self-contained events owned by one worker goroutine. The
// caller classifies events: anything whose handler only touches state
// owned by a single spatial shard (the network's unicast relay
// deliveries) may be placed on that shard's lane; everything else stays
// on the global lane and runs serially.
//
// # Execution discipline
//
// RunUntil alternates two regimes under the classic conservative
// (Chandy-Misra) synchronization argument specialized to a fixed
// lookahead L, the minimum radio hop delay (radio.Precomp.DelayQuantum):
//
//   - serial: while the global lane's front key (at, seq) precedes every
//     lane front, execute it on the wrapped Simulator exactly as an
//     unsharded run would.
//   - parallel: otherwise, open a window [tmin, min(tmin+L, t)] where
//     tmin is the earliest lane front, and let every lane drain its
//     events inside the window concurrently. A lane stops early at the
//     global front key and at the Prepare hook's exclusive cap (the
//     caller's own purity bound, e.g. the next mobility piece boundary).
//
// Lane handlers must not schedule directly: they log intents
// (LogIntent), tagged with the executing parent event's (at, seq) key.
// At the window barrier the per-lane intent logs — each already sorted
// by parent key, because a lane executes its events in key order — are
// k-way merged by parent key and only then draw sequence numbers from
// the single Simulator counter.
//
// # Why this is bit-identical to the serial run
//
// Lane delays are at least L, so an event executed in a window schedules
// only at or beyond the window's end: nothing executed in a window was
// scheduled in it, and the window's event set is fixed at the barrier
// before it opens. Every event the window runs precedes, in (at, seq)
// order, both the global front and everything scheduled at the barrier
// (barrier events carry fresh, larger seqs at times >= the window end).
// The window therefore executes exactly a downward-closed prefix of the
// serial execution order. Within it, the serial run would have executed
// the same events in parent-key order, drawing one seq per scheduled
// delivery as it went — which is precisely the merged order in which the
// barrier draws them. Seq values, timestamps, and executed-event counts
// are therefore equal to the serial run's, at any lane count.
type Sharded struct {
	sim       *Simulator
	k         int
	lookahead Time

	// Prepare, when set, runs at every window barrier before the window
	// opens: Prepare(tmin, bound) must make all state that lane handlers
	// read pure over query instants in [tmin, bound] and return an
	// exclusive cap (> tmin) beyond which purity is not yet guaranteed;
	// the window will not execute events at or past the cap. Return
	// Infinity when no cap applies.
	Prepare func(tmin, bound Time) Time

	lanes    [][]laneEntry // per-lane binary heaps by (at, seq)
	intents  [][]intent    // per-lane logs, owner-written during a window
	laneNow  []Time        // executing event's timestamp, per lane
	laneSeq  []uint64      // executing event's seq, per lane
	laneExec []uint64      // events run this window, folded at barrier
	cursor   []int         // barrier merge cursors

	inParallel bool
	start      []chan phaseBound
	done       chan struct{}
	workersUp  bool
}

// LaneFunc is the only handler shape lanes support: the unboxed-word
// form used by the network delivery path. Lane events have no Handles
// and cannot be cancelled.
type LaneFunc = func(any, uint64)

// laneEntry is one pending lane event. Unlike the Simulator's pooled
// event records, lane entries are self-contained values: no record
// pool, no Handle, no cross-goroutine sharing.
type laneEntry struct {
	at  Time
	seq uint64
	fn  LaneFunc
	arg any
	u   uint64
}

// intent is a deferred schedule request logged during a window, ordered
// for the barrier merge by the parent event's key (pAt, pSeq).
type intent struct {
	pAt  Time
	pSeq uint64
	at   Time
	lane int32 // target lane; laneGlobal = the wrapped Simulator
	fn   LaneFunc
	arg  any
	u    uint64
}

// LaneGlobal targets the wrapped Simulator (the serial lane) in
// LogIntent.
const LaneGlobal = -1

// phaseBound is the per-window execution bound handed to lane workers.
// An event runs iff its key precedes (gAt, gSeq), its time is <= maxAt,
// and its time is strictly below cap.
type phaseBound struct {
	gAt   Time
	gSeq  uint64
	maxAt Time
	cap   Time
}

// NewSharded wraps sim with a k-lane engine (k >= 2) using the given
// conservative lookahead (> 0), the minimum delay of any event a lane
// handler may schedule.
func NewSharded(sim *Simulator, k int, lookahead Time) *Sharded {
	if k < 2 {
		panic(fmt.Sprintf("des: NewSharded with %d lanes; sharding needs at least 2", k))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("des: NewSharded with non-positive lookahead %v", lookahead))
	}
	e := &Sharded{
		sim:       sim,
		k:         k,
		lookahead: lookahead,
		lanes:     make([][]laneEntry, k),
		intents:   make([][]intent, k),
		laneNow:   make([]Time, k),
		laneSeq:   make([]uint64, k),
		laneExec:  make([]uint64, k),
		cursor:    make([]int, k),
		start:     make([]chan phaseBound, k),
		done:      make(chan struct{}, k),
	}
	for i := 1; i < k; i++ {
		e.start[i] = make(chan phaseBound, 1)
	}
	return e
}

// Sim returns the wrapped Simulator (the global lane).
func (e *Sharded) Sim() *Simulator { return e.sim }

// Shards returns the lane count k.
func (e *Sharded) Shards() int { return e.k }

// Lookahead returns the conservative window lookahead L.
func (e *Sharded) Lookahead() Time { return e.lookahead }

// InParallel reports whether a window is currently executing. Callers
// use it to pick between direct scheduling (serial context) and intent
// logging (lane context); reads from lane workers are ordered by the
// window open/close channel operations.
func (e *Sharded) InParallel() bool { return e.inParallel }

// LaneNow returns lane i's clock: the timestamp of its executing (or
// last executed) event. Only lane i's own worker may call this during a
// window.
func (e *Sharded) LaneNow(i int) Time { return e.laneNow[i] }

// LanePending returns the number of pending lane events across all
// lanes (the wrapped Simulator's Pending does not include them).
func (e *Sharded) LanePending() int {
	n := 0
	for i := range e.lanes {
		n += len(e.lanes[i])
	}
	return n
}

// ScheduleLaneDirect schedules a lane event from serial context. It
// draws the next sequence number from the wrapped Simulator's counter —
// exactly the seq an ordinary AfterCallU at this moment would have
// drawn, which is what makes routing an event to a lane instead of the
// global queue invisible to the total order. Must not be called from
// inside a window (lane context logs intents instead).
func (e *Sharded) ScheduleLaneDirect(lane int, at Time, fn LaneFunc, arg any, u uint64) {
	if at < e.sim.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, e.sim.now))
	}
	e.lanePush(lane, laneEntry{at: at, seq: e.sim.ReserveSeqs(1), fn: fn, arg: arg, u: u})
}

// LogIntent records, from inside a window, that the event currently
// executing on fromLane wants fn(arg, u) to run at time at on
// targetLane (or LaneGlobal). The intent is materialized at the window
// barrier with a then-fresh sequence number; because per-lane logs are
// parent-key-sorted and parent keys are globally unique, the barrier's
// k-way merge reproduces the serial run's scheduling order exactly.
func (e *Sharded) LogIntent(fromLane, targetLane int, at Time, fn LaneFunc, arg any, u uint64) {
	e.intents[fromLane] = append(e.intents[fromLane], intent{
		pAt:  e.laneNow[fromLane],
		pSeq: e.laneSeq[fromLane],
		at:   at,
		lane: int32(targetLane),
		fn:   fn,
		arg:  arg,
		u:    u,
	})
}

// RunUntil executes global and lane events with timestamps <= t in the
// serial run's exact order, then sets the clock to t. It is the sharded
// counterpart of Simulator.RunUntil and leaves identical observable
// state (clock, seq counter, executed count, pending sets).
func (e *Sharded) RunUntil(t Time) {
	s := e.sim
	if t < s.now {
		panic(fmt.Sprintf("des: RunUntil(%v) before now %v", t, s.now))
	}
	defer e.stopWorkers()
	effT := t
	if s.horizon < effT {
		effT = s.horizon
	}
	for !s.stopped {
		gAt, gSeq, gOK := s.frontKey()
		if gOK && gAt > effT {
			gOK = false
		}
		lAt, lSeq, lOK := e.minLaneKey()
		if lOK && lAt > effT {
			lOK = false
		}
		if !gOK && !lOK {
			break
		}
		if gOK && (!lOK || keyLess(gAt, gSeq, lAt, lSeq)) {
			// The global front precedes every lane front: run it exactly
			// as the serial simulator would.
			if !s.Step() {
				break
			}
			continue
		}
		if !gOK {
			gAt, gSeq = Infinity, math.MaxUint64
		}
		e.window(effT, gAt, gSeq, lAt)
	}
	if t <= s.horizon && !s.stopped {
		s.now = t
	}
}

// window opens one conservative synchronization window starting at the
// earliest lane front tmin, lets every lane drain it concurrently, and
// runs the barrier.
func (e *Sharded) window(effT Time, gAt Time, gSeq uint64, tmin Time) {
	bound := tmin + e.lookahead
	if bound > effT {
		bound = effT
	}
	cap := Infinity
	if e.Prepare != nil {
		cap = e.Prepare(tmin, bound)
	}
	e.ensureWorkers()
	b := phaseBound{gAt: gAt, gSeq: gSeq, maxAt: bound, cap: cap}
	e.inParallel = true
	for i := 1; i < e.k; i++ {
		e.start[i] <- b
	}
	e.runLane(0, b)
	for i := 1; i < e.k; i++ {
		<-e.done
	}
	e.inParallel = false
	e.barrier()
}

// runLane drains lane i up to the window bound. Only lane i's owner
// (worker goroutine, or the coordinator for lane 0) calls this.
func (e *Sharded) runLane(i int, b phaseBound) {
	for {
		h := e.lanes[i]
		if len(h) == 0 {
			return
		}
		f := h[0]
		if f.at > b.maxAt || f.at >= b.cap || !keyLess(f.at, f.seq, b.gAt, b.gSeq) {
			return
		}
		e.lanePop(i)
		e.laneNow[i] = f.at
		e.laneSeq[i] = f.seq
		e.laneExec[i]++
		f.fn(f.arg, f.u)
	}
}

// barrier folds the window's executed counts into the Simulator, merges
// the per-lane intent logs by parent key, and materializes each intent
// with a fresh sequence number in merged order (see the type comment
// for why this reproduces the serial seq assignment).
func (e *Sharded) barrier() {
	s := e.sim
	for i := 0; i < e.k; i++ {
		s.executed += e.laneExec[i]
		e.laneExec[i] = 0
		e.cursor[i] = 0
	}
	for {
		best := -1
		for i := 0; i < e.k; i++ {
			c := e.cursor[i]
			if c >= len(e.intents[i]) {
				continue
			}
			it := &e.intents[i][c]
			if best < 0 {
				best = i
				continue
			}
			bit := &e.intents[best][e.cursor[best]]
			if keyLess(it.pAt, it.pSeq, bit.pAt, bit.pSeq) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		it := &e.intents[best][e.cursor[best]]
		e.cursor[best]++
		seq := s.ReserveSeqs(1)
		if it.lane == LaneGlobal {
			s.ScheduleCallSeqU(it.at, seq, it.fn, it.arg, it.u)
		} else {
			e.lanePush(int(it.lane), laneEntry{at: it.at, seq: seq, fn: it.fn, arg: it.arg, u: it.u})
		}
		it.fn, it.arg = nil, nil // release references for the GC
	}
	for i := range e.intents {
		e.intents[i] = e.intents[i][:0]
	}
}

// minLaneKey returns the smallest (at, seq) across all lane fronts.
func (e *Sharded) minLaneKey() (Time, uint64, bool) {
	bestAt, bestSeq, ok := Time(0), uint64(0), false
	for i := range e.lanes {
		h := e.lanes[i]
		if len(h) == 0 {
			continue
		}
		if !ok || keyLess(h[0].at, h[0].seq, bestAt, bestSeq) {
			bestAt, bestSeq, ok = h[0].at, h[0].seq, true
		}
	}
	return bestAt, bestSeq, ok
}

// ensureWorkers starts the k-1 lane worker goroutines; RunUntil stops
// them on exit (stopWorkers) so abandoned engines never leak blocked
// goroutines.
func (e *Sharded) ensureWorkers() {
	if e.workersUp {
		return
	}
	e.workersUp = true
	for i := 1; i < e.k; i++ {
		go func(i int) {
			for b := range e.start[i] {
				e.runLane(i, b)
				e.done <- struct{}{}
			}
		}(i)
	}
}

func (e *Sharded) stopWorkers() {
	if !e.workersUp {
		return
	}
	for i := 1; i < e.k; i++ {
		close(e.start[i])
		e.start[i] = make(chan phaseBound, 1)
	}
	e.workersUp = false
}

// keyLess is the (at, seq) total order on event keys.
func keyLess(aAt Time, aSeq uint64, bAt Time, bSeq uint64) bool {
	if aAt != bAt {
		return aAt < bAt
	}
	return aSeq < bSeq
}

// frontKey peeks the global lane's next live event key, discarding
// cancelled entries it meets (exactly what Step would do before
// executing, so the peek is semantically invisible).
func (s *Simulator) frontKey() (Time, uint64, bool) {
	for {
		f := s.front()
		if f == nil {
			return 0, 0, false
		}
		if f.ev.dead {
			// Save the record before popping: f points into the queue's
			// backing array, so popKnown relocates the entry under it.
			ev := f.ev
			s.popKnown(f)
			s.recycle(ev)
			continue
		}
		return f.at, f.seq, true
	}
}

// lanePush inserts into lane i's binary heap.
func (e *Sharded) lanePush(i int, le laneEntry) {
	h := append(e.lanes[i], le)
	j := len(h) - 1
	for j > 0 {
		p := (j - 1) / 2
		if !keyLess(h[j].at, h[j].seq, h[p].at, h[p].seq) {
			break
		}
		h[j], h[p] = h[p], h[j]
		j = p
	}
	e.lanes[i] = h
}

// lanePop removes lane i's heap root.
func (e *Sharded) lanePop(i int) {
	h := e.lanes[i]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = laneEntry{} // release references for the GC
	h = h[:n]
	j := 0
	for {
		l, r := 2*j+1, 2*j+2
		m := j
		if l < n && keyLess(h[l].at, h[l].seq, h[m].at, h[m].seq) {
			m = l
		}
		if r < n && keyLess(h[r].at, h[r].seq, h[m].at, h[m].seq) {
			m = r
		}
		if m == j {
			break
		}
		h[j], h[m] = h[m], h[j]
		j = m
	}
	e.lanes[i] = h
}
