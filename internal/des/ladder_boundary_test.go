package des

import (
	"container/heap"
	"testing"
)

// TestLadderTierBoundaryInserts pins insert's tier assignment at the
// exact epoch-roll horizons: an event at precisely nearEnd must take
// the far tier (the near window is half-open), one at precisely
// farLimit the spill heap, and ones a hair inside each horizon the
// tier below — and all of them must still execute in exact (at, seq)
// order against the reference heap once the epoch rolls re-ladder
// them.
func TestLadderTierBoundaryInserts(t *testing.T) {
	s := New()
	s.SetGrain(1e-3) // empty queue: applies now, window re-anchored at 0

	ref := &refHeap{}
	var popped []int
	nextID := 0
	run := func(arg any) { popped = append(popped, arg.(int)) }
	schedule := func(at Time) {
		e := &refEntry{at: at, seq: s.seq, id: nextID}
		heap.Push(ref, e)
		s.ScheduleCall(at, run, nextID)
		nextID++
	}

	const eps = 1e-9
	nearEnd, farLimit := s.nearEnd, s.farLimit

	schedule(nearEnd) // exactly at the near horizon
	if len(s.far) != 1 {
		t.Fatalf("event at nearEnd placed outside the far tier (far=%d spill=%d)", len(s.far), len(s.spill))
	}
	schedule(nearEnd - eps) // last representable instant of the near tier
	if len(s.far) != 1 {
		t.Fatalf("event below nearEnd leaked into the far tier")
	}
	schedule(farLimit) // exactly at the far horizon
	if len(s.spill) != 1 {
		t.Fatalf("event at farLimit placed outside the spill heap (far=%d spill=%d)", len(s.far), len(s.spill))
	}
	schedule(farLimit - eps) // last instant of the far tier
	if len(s.far) != 2 || len(s.spill) != 1 {
		t.Fatalf("event below farLimit misplaced (far=%d spill=%d)", len(s.far), len(s.spill))
	}
	// Ties at the boundary instants: sequence numbers must break them.
	schedule(nearEnd)
	schedule(farLimit)
	// Background traffic on both sides of each horizon so the rolls
	// have near-tier work to drain between boundary events.
	rng := xorshift(0xb0a710ad)
	for i := 0; i < 2000; i++ {
		schedule(Time(rng.float() * 10))
	}

	s.Run()

	var want []int
	for e := ref.popLive(); e != nil; e = ref.popLive() {
		want = append(want, e.id)
	}
	if len(popped) != len(want) {
		t.Fatalf("ladder executed %d events, reference %d", len(popped), len(want))
	}
	for i := range want {
		if popped[i] != want[i] {
			t.Fatalf("pop order diverges at %d: ladder ran id %d, reference id %d", i, popped[i], want[i])
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending=%d after drain", s.Pending())
	}
}

// TestLadderLateInsertDrainingBucket covers the imminent side heap: an
// event scheduled from inside a callback into the bucket already being
// drained (insert's idx <= cur path) must run within the same bucket
// pass, in (at, seq) order relative to the entries still ahead of the
// drain head.
func TestLadderLateInsertDrainingBucket(t *testing.T) {
	s := New()
	s.SetGrain(1e-3)

	var order []int
	// Three events in one bucket; the first one schedules two more into
	// the same draining bucket: one at the current instant (must run
	// after the pre-scheduled same-instant event, by seq) and one just
	// before the bucket edge.
	s.ScheduleCall(0.0105, func(any) {
		order = append(order, 0)
		s.ScheduleCall(s.Now(), func(any) { order = append(order, 3) }, nil)
		s.ScheduleCall(0.0109, func(any) { order = append(order, 4) }, nil)
		if len(s.side) == 0 {
			t.Fatalf("late inserts into the draining bucket bypassed the side heap (side=%d)", len(s.side))
		}
	}, nil)
	s.ScheduleCall(0.0105, func(any) { order = append(order, 1) }, nil)
	s.ScheduleCall(0.0107, func(any) { order = append(order, 2) }, nil)
	s.Run()

	want := []int{0, 1, 3, 2, 4}
	if len(order) != len(want) {
		t.Fatalf("executed %d events, want %d (%v)", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

// TestReserveSeqsCancelReschedule cross-checks the reserved-sequence
// batch path against the reference heap: a block reserved early and
// materialized late must execute in its reserved positions even though
// later-sequence events were scheduled in between; cancelling a batch
// member tombstones exactly that member; and a replacement scheduled
// afterwards takes a fresh sequence number after the block.
func TestReserveSeqsCancelReschedule(t *testing.T) {
	s := New()
	s.SetGrain(5e-4)

	ref := &refHeap{}
	var popped []int
	run := func(arg any) { popped = append(popped, arg.(int)) }
	schedule := func(at Time, id int) Handle {
		heap.Push(ref, &refEntry{at: at, seq: s.seq, id: id})
		return s.ScheduleCall(at, run, id)
	}

	// Reserve a block of 4 sequence numbers for a batch at t=0.02,
	// before any of its events exist.
	first := s.ReserveSeqs(4)

	// Later-sequence competition at the same timestamp and around it.
	schedule(0.02, 100)
	schedule(0.019, 101)
	hVictim := schedule(0.02, 102)

	// Materialize the batch out of order; reserved sequence numbers
	// place every member ahead of ids 100/102 at the same instant.
	entries := make([]*refEntry, 4)
	handles := make([]Handle, 4)
	for _, k := range []int{2, 0, 3, 1} {
		e := &refEntry{at: 0.02, seq: first + uint64(k), id: k}
		entries[k] = e
		heap.Push(ref, e)
		handles[k] = s.ScheduleCallSeq(0.02, first+uint64(k), run, k)
	}

	// Cancel one batch member and one plain event, then reschedule a
	// replacement: it must land after everything reserved or scheduled
	// so far.
	if !handles[2].Cancel() {
		t.Fatal("cancel of a pending reserved-seq handle reported false")
	}
	entries[2].dead = true
	if !hVictim.Cancel() {
		t.Fatal("cancel of a pending handle reported false")
	}
	for _, e := range *ref {
		if e.id == 102 {
			e.dead = true
		}
	}
	schedule(0.02, 103)

	s.Run()

	var want []int
	for e := ref.popLive(); e != nil; e = ref.popLive() {
		want = append(want, e.id)
	}
	if len(popped) != len(want) {
		t.Fatalf("ladder executed %d events, reference %d (%v vs %v)", len(popped), len(want), popped, want)
	}
	for i := range want {
		if popped[i] != want[i] {
			t.Fatalf("pop order %v, want %v", popped, want)
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending=%d after drain", s.Pending())
	}
}
