package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestSeedsIndependent(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) produced only %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 9)
		if v < -3 || v >= 9 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v too far from 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean %v too far from 1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for n := 0; n < 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(23)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	// Still a permutation.
	count := make(map[int]int)
	for _, x := range xs {
		count[x]++
	}
	for _, o := range orig {
		if count[o] != 1 {
			t.Fatalf("shuffle lost element %d: %v", o, xs)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(29)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(31)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", frac)
	}
}

func TestPickEmpty(t *testing.T) {
	if got := New(1).Pick(0); got != -1 {
		t.Fatalf("Pick(0) = %d want -1", got)
	}
}
