// Package xrand provides a small, fast, deterministic pseudo-random
// number generator for the simulator. Every experiment in the repository
// is reproducible from a single uint64 seed; the generator is
// xoshiro256** seeded through splitmix64, the combination recommended by
// the xoshiro authors. The package intentionally mirrors a subset of
// math/rand's method set so call sites read idiomatically, but it is not
// safe for concurrent use: each simulation owns one *Rand (the simulator
// is single-threaded per run; parallelism happens across runs).
package xrand

import "math"

// Rand is a deterministic PRNG. The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, so that
// nearby seeds yield uncorrelated streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r, consuming one value of
// r's stream. It is used to give each node or subsystem its own stream so
// that adding a consumer does not perturb the draws seen by others.
func (r *Rand) Split() *Rand { return New(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n)) // modulo bias negligible for n << 2^64
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate (Box-Muller, polar form).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen index of a non-empty slice length, or
// -1 for an empty one. It reads better than Intn at selection sites.
func (r *Rand) Pick(n int) int {
	if n == 0 {
		return -1
	}
	return r.Intn(n)
}
