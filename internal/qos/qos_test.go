package qos_test

import (
	"testing"

	"repro/internal/logicalid"
	"repro/internal/membership"
	"repro/internal/qos"
	"repro/internal/scenario"
)

// buildWorld wires a converged world with one group spanning two cubes.
func buildWorld(t *testing.T) (*scenario.World, *qos.Manager) {
	t.Helper()
	spec := scenario.DefaultSpec()
	spec.Seed = 5
	spec.Nodes = 80
	spec.Groups = 1
	spec.MembersPerGroup = 8
	spec.Mobility = scenario.Static
	w, err := scenario.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	w.WarmUp(14)
	return w, qos.NewManager(w.BB, w.MS, w.MC)
}

func TestHardAdmissionAndRelease(t *testing.T) {
	w, m := buildWorld(t)
	defer w.Stop()
	src := w.RandomSource()
	s, err := m.Open(src, 0, 100e3, qos.Hard)
	if err != nil {
		t.Fatalf("admission failed: %v", err)
	}
	if s.Coverage() != 1 {
		t.Fatalf("hard session coverage %v want 1", s.Coverage())
	}
	if len(s.Reserved) == 0 || s.Demanded == 0 {
		t.Fatal("session reserved nothing")
	}
	if m.Active() != 1 || m.Admitted != 1 {
		t.Fatal("bookkeeping wrong")
	}
	util := m.Utilization()
	if util <= 0 {
		t.Fatal("utilization should be positive with an open session")
	}
	m.Close(s.ID)
	if m.Active() != 0 {
		t.Fatal("close did not remove session")
	}
	if got := m.Utilization(); got >= util {
		t.Fatalf("utilization %v did not drop after close (was %v)", got, util)
	}
	m.Close(s.ID) // idempotent
}

func TestHardAdmissionExhaustsCapacity(t *testing.T) {
	w, m := buildWorld(t)
	defer w.Stop()
	src := w.RandomSource()
	// CH radios carry 11 Mb/s; sessions of 4 Mb/s exhaust a CH after
	// two. Keep opening until rejection.
	admitted := 0
	for i := 0; i < 10; i++ {
		if _, err := m.Open(src, 0, 4e6, qos.Hard); err != nil {
			break
		}
		admitted++
	}
	if admitted == 0 {
		t.Fatal("no session admitted at all")
	}
	if admitted >= 10 {
		t.Fatal("capacity never exhausted; admission not enforcing")
	}
	if m.Rejected == 0 {
		t.Fatal("rejection not counted")
	}
}

func TestHardRejectionRollsBack(t *testing.T) {
	w, m := buildWorld(t)
	defer w.Stop()
	src := w.RandomSource()
	// Fill to rejection.
	for i := 0; i < 10; i++ {
		if _, err := m.Open(src, 0, 4e6, qos.Hard); err != nil {
			break
		}
	}
	utilAtReject := m.Utilization()
	// Another rejected attempt must not leak reservations.
	if _, err := m.Open(src, 0, 4e6, qos.Hard); err == nil {
		t.Fatal("expected rejection")
	}
	if got := m.Utilization(); got != utilAtReject {
		t.Fatalf("rejected session leaked reservations: %v -> %v", utilAtReject, got)
	}
}

func TestSoftAdmissionAlwaysAdmits(t *testing.T) {
	w, m := buildWorld(t)
	defer w.Stop()
	src := w.RandomSource()
	// Saturate hard first.
	for i := 0; i < 10; i++ {
		if _, err := m.Open(src, 0, 4e6, qos.Hard); err != nil {
			break
		}
	}
	s, err := m.Open(src, 0, 4e6, qos.Soft)
	if err != nil {
		t.Fatalf("soft admission should not fail: %v", err)
	}
	if s.Coverage() >= 1 {
		t.Fatalf("soft session on a saturated backbone should be partial, got %v", s.Coverage())
	}
}

func TestImpossibleRateRejectedHard(t *testing.T) {
	w, m := buildWorld(t)
	defer w.Stop()
	if _, err := m.Open(w.RandomSource(), 0, 1e12, qos.Hard); err == nil {
		t.Fatal("absurd rate admitted")
	}
}

func TestOpenFromDownSource(t *testing.T) {
	w, m := buildWorld(t)
	defer w.Stop()
	src := w.RandomSource()
	w.Net.Node(src).Fail()
	if _, err := m.Open(src, 0, 1000, qos.Hard); err == nil {
		t.Fatal("down source admitted")
	}
}

func TestTreeCHsSpanMemberCubes(t *testing.T) {
	w, m := buildWorld(t)
	defer w.Stop()
	src := w.RandomSource()
	grid := w.Grid
	vc := grid.VCOf(w.Net.Node(src).TruePos())
	chs := m.TreeCHs(logicalid.CHID(grid.Index(vc)), membership.Group(0))
	if len(chs) < 2 {
		t.Fatalf("tree spans only %d CHs for an 8-member group", len(chs))
	}
}
