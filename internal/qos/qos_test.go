package qos_test

import (
	"slices"
	"testing"

	"repro/internal/logicalid"
	"repro/internal/membership"
	"repro/internal/network"
	"repro/internal/qos"
	"repro/internal/scenario"
)

// buildWorld wires a converged world with one group spanning two cubes.
func buildWorld(t *testing.T) (*scenario.World, *qos.Manager) {
	t.Helper()
	spec := scenario.DefaultSpec()
	spec.Seed = 5
	spec.Nodes = 80
	spec.Groups = 1
	spec.MembersPerGroup = 8
	spec.Mobility = scenario.Static
	w, err := scenario.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	w.WarmUp(14)
	return w, qos.NewManager(w.BB, w.MS, w.MC)
}

func TestHardAdmissionAndRelease(t *testing.T) {
	w, m := buildWorld(t)
	defer w.Stop()
	src := w.RandomSource()
	s, err := m.Open(src, 0, 100e3, qos.Hard)
	if err != nil {
		t.Fatalf("admission failed: %v", err)
	}
	if s.Coverage() != 1 {
		t.Fatalf("hard session coverage %v want 1", s.Coverage())
	}
	if len(s.Reserved) == 0 || s.Demanded == 0 {
		t.Fatal("session reserved nothing")
	}
	if m.Active() != 1 || m.Admitted != 1 {
		t.Fatal("bookkeeping wrong")
	}
	util := m.Utilization()
	if util <= 0 {
		t.Fatal("utilization should be positive with an open session")
	}
	m.Close(s.ID)
	if m.Active() != 0 {
		t.Fatal("close did not remove session")
	}
	if got := m.Utilization(); got >= util {
		t.Fatalf("utilization %v did not drop after close (was %v)", got, util)
	}
	m.Close(s.ID) // idempotent
}

func TestHardAdmissionExhaustsCapacity(t *testing.T) {
	w, m := buildWorld(t)
	defer w.Stop()
	src := w.RandomSource()
	// CH radios carry 11 Mb/s; sessions of 4 Mb/s exhaust a CH after
	// two. Keep opening until rejection.
	admitted := 0
	for i := 0; i < 10; i++ {
		if _, err := m.Open(src, 0, 4e6, qos.Hard); err != nil {
			break
		}
		admitted++
	}
	if admitted == 0 {
		t.Fatal("no session admitted at all")
	}
	if admitted >= 10 {
		t.Fatal("capacity never exhausted; admission not enforcing")
	}
	if m.Rejected == 0 {
		t.Fatal("rejection not counted")
	}
}

func TestHardRejectionRollsBack(t *testing.T) {
	w, m := buildWorld(t)
	defer w.Stop()
	src := w.RandomSource()
	// Fill to rejection.
	for i := 0; i < 10; i++ {
		if _, err := m.Open(src, 0, 4e6, qos.Hard); err != nil {
			break
		}
	}
	utilAtReject := m.Utilization()
	// Another rejected attempt must not leak reservations.
	if _, err := m.Open(src, 0, 4e6, qos.Hard); err == nil {
		t.Fatal("expected rejection")
	}
	if got := m.Utilization(); got != utilAtReject {
		t.Fatalf("rejected session leaked reservations: %v -> %v", utilAtReject, got)
	}
}

func TestSoftAdmissionAlwaysAdmits(t *testing.T) {
	w, m := buildWorld(t)
	defer w.Stop()
	src := w.RandomSource()
	// Saturate hard first.
	for i := 0; i < 10; i++ {
		if _, err := m.Open(src, 0, 4e6, qos.Hard); err != nil {
			break
		}
	}
	s, err := m.Open(src, 0, 4e6, qos.Soft)
	if err != nil {
		t.Fatalf("soft admission should not fail: %v", err)
	}
	if s.Coverage() >= 1 {
		t.Fatalf("soft session on a saturated backbone should be partial, got %v", s.Coverage())
	}
}

func TestImpossibleRateRejectedHard(t *testing.T) {
	w, m := buildWorld(t)
	defer w.Stop()
	if _, err := m.Open(w.RandomSource(), 0, 1e12, qos.Hard); err == nil {
		t.Fatal("absurd rate admitted")
	}
}

func TestOpenFromDownSource(t *testing.T) {
	w, m := buildWorld(t)
	defer w.Stop()
	src := w.RandomSource()
	w.Net.Node(src).Fail()
	if _, err := m.Open(src, 0, 1000, qos.Hard); err == nil {
		t.Fatal("down source admitted")
	}
}

func TestTreeCHsSpanMemberCubes(t *testing.T) {
	w, m := buildWorld(t)
	defer w.Stop()
	src := w.RandomSource()
	grid := w.Grid
	vc := grid.VCOf(w.Net.Node(src).TruePos())
	chs := m.TreeCHs(logicalid.CHID(grid.Index(vc)), membership.Group(0))
	if len(chs) < 2 {
		t.Fatalf("tree spans only %d CHs for an 8-member group", len(chs))
	}
}

// TestHardAdmissionDeterministic is the ISSUE 5 headline regression
// test: the CH set a session reserves must be a pure function of the
// protocol state, never of map iteration order. The original bug fed
// mesh.MulticastTree a destination list built by ranging the MT-Summary
// map; greedy tree construction depends on destination order, so two
// admissions under identical state could reserve different CH sets.
// The test fails some anchors first (incomplete cubes force the tree
// builders through their fallback paths, where insertion order shapes
// the tree) and then reruns Hard-mode admission many times with the
// route cache bypassed, so every iteration reconstructs its trees from
// scratch.
func TestHardAdmissionDeterministic(t *testing.T) {
	w, m := buildWorld(t)
	defer w.Stop()
	w.FailRandomAnchors(6)
	w.Sim.RunUntil(w.Sim.Now() + 10) // let elections and summaries settle
	src := w.RandomSource()

	w.BB.Trees().SetBypass(true)
	var want []network.NodeID
	for i := 0; i < 50; i++ {
		s, err := m.Open(src, 0, 1e3, qos.Hard)
		if err != nil {
			t.Fatalf("iteration %d: admission failed: %v", i, err)
		}
		got := append([]network.NodeID(nil), s.Reserved...)
		m.Close(s.ID) // release so capacity stays constant across iterations
		if i == 0 {
			if len(got) == 0 {
				t.Fatal("first admission reserved nothing; test world too small")
			}
			want = got
			continue
		}
		if !slices.Equal(got, want) {
			t.Fatalf("iteration %d reserved %v, iteration 0 reserved %v", i, got, want)
		}
	}

	// The memoized path must agree with the from-scratch computes.
	w.BB.Trees().SetBypass(false)
	for i := 0; i < 2; i++ { // second pass exercises the cache hit
		s, err := m.Open(src, 0, 1e3, qos.Hard)
		if err != nil {
			t.Fatalf("cached admission failed: %v", err)
		}
		if !slices.Equal(s.Reserved, want) {
			t.Fatalf("cached admission reserved %v, fresh computes reserved %v", s.Reserved, want)
		}
		m.Close(s.ID)
	}
	// The first cached admission populated the route cache (the second
	// short-circuits at the manager's own versioned memo, which is the
	// point: admission re-probes are free while versions hold).
	if w.BB.Trees().Misses == 0 || w.BB.Trees().Len() == 0 {
		t.Fatalf("cached admission never went through the route cache (misses=%d len=%d)",
			w.BB.Trees().Misses, w.BB.Trees().Len())
	}
}
