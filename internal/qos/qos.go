// Package qos implements session admission over the HVDB, realizing the
// paper's QoS discussion (§2.3): a *hard* mode in the spirit of IntServ
// — a multicast session reserves bandwidth on every cluster head its
// trees cross, and is rejected (with rollback) if any reservation
// fails — and a *soft* mode in the spirit of DiffServ, which admits the
// session regardless and only reports how much of the demand the
// backbone could cover. The paper argues soft QoS suits highly dynamic
// MANETs better; the two modes make that trade-off measurable.
//
// Reservations are node-level (a CH's radio capacity), which models the
// TDMA-slot style reservation of the paper's reference [9] at the
// granularity the backbone operates on.
package qos

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hypercube"
	"repro/internal/logicalid"
	"repro/internal/membership"
	"repro/internal/multicast"
	"repro/internal/network"
	"repro/internal/route"
	"repro/internal/vcgrid"
)

// Mode selects the admission discipline.
type Mode int

const (
	// Hard rejects a session unless every CH on its trees can reserve
	// the demanded rate (IntServ-like).
	Hard Mode = iota
	// Soft admits every session and reports coverage (DiffServ-like).
	Soft
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Hard {
		return "hard"
	}
	return "soft"
}

// SessionID identifies an admitted session.
type SessionID int

// Session is one admitted QoS multicast session.
type Session struct {
	ID    SessionID
	Group membership.Group
	// Rate is the reserved bandwidth in bits/second.
	Rate float64
	// Mode is the admission discipline the session was opened under.
	Mode Mode
	// Reserved lists the CH nodes holding a reservation.
	Reserved []network.NodeID
	// Demanded counts the CHs the trees crossed; Coverage is
	// len(Reserved)/Demanded (1.0 under Hard).
	Demanded int
}

// Coverage returns the fraction of tree CHs holding a reservation.
func (s *Session) Coverage() float64 {
	if s.Demanded == 0 {
		return 1
	}
	return float64(len(s.Reserved)) / float64(s.Demanded)
}

// Manager admits and releases sessions over one backbone.
type Manager struct {
	bb *core.Backbone
	ms *membership.Service
	mc *multicast.Service

	next     SessionID
	sessions map[SessionID]*Session

	// chMemo memoizes treeCHs per (source slot, group) at the cache's
	// input versions — the same validity discipline as the route cache
	// itself, via its exported Memo primitive: admission probes the
	// same sessions repeatedly while the backbone is quiet.
	chMemo route.Memo[chKey, []network.NodeID]

	// Admitted and Rejected count admission outcomes.
	Admitted, Rejected uint64
}

type chKey struct {
	slot  logicalid.CHID
	group membership.Group
}

// NewManager returns a session manager over the given stack.
func NewManager(bb *core.Backbone, ms *membership.Service, mc *multicast.Service) *Manager {
	return &Manager{bb: bb, ms: ms, mc: mc, sessions: make(map[SessionID]*Session)}
}

// versions stamps the inputs tree construction reads: CH occupancy and
// the membership summary views.
func (m *Manager) versions() route.Versions {
	return route.Versions{Topo: m.bb.Clusters().Version(), Summary: m.ms.SummaryVersion()}
}

// treeCHs computes the set of CH nodes the session's multicast trees
// would cross from the given source slot: the mesh-tier tree over the
// member-bearing hypercubes plus, within each crossed hypercube, the
// hypercube-tier tree over member CH slots (mirroring Figure 6's two
// tiers). The result is memoized per input version through the
// backbone's route cache; callers must not modify the returned slice.
func (m *Manager) treeCHs(srcSlot logicalid.CHID, g membership.Group) []network.NodeID {
	v := m.versions()
	key := chKey{slot: srcSlot, group: g}
	if !m.bb.Trees().Bypassed() {
		if chs, ok := m.chMemo.Get(v, key); ok {
			return chs
		}
	}
	chs := m.computeTreeCHs(v, srcSlot, g)
	if !m.bb.Trees().Bypassed() {
		m.chMemo.Put(v, key, chs)
	}
	return chs
}

func (m *Manager) computeTreeCHs(v route.Versions, srcSlot logicalid.CHID, g membership.Group) []network.NodeID {
	scheme := m.bb.Scheme()
	trees := m.bb.Trees()
	rootHID := scheme.CHIDToPlace(srcSlot).HID
	// The mesh tree comes from the data plane's one shared construction
	// (multicast.MeshTreeAt) through the same version-keyed cache entry
	// the data plane uses — admission and routing can never disagree on
	// a tree.
	meshTree := m.mc.MeshTreeAt(srcSlot, rootHID, g)

	seen := map[network.NodeID]bool{}
	var out []network.NodeID
	add := func(id network.NodeID) {
		if id != network.NoNode && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	// Iterate the mesh tree in HID order. The per-cube work is
	// independent and out is deduplicated and sorted below, so this is
	// for clarity, not correctness.
	for _, h := range sortedHIDs(meshTree) {
		cube := m.bb.SharedCube(h)
		// Entry label: the source label in the root cube, else the
		// geographically nearest CH slot (as the data plane picks).
		entry := scheme.CHIDToPlace(srcSlot).HNID
		entrySlot := srcSlot
		if h != rootHID {
			labels := cube.Labels()
			if len(labels) == 0 {
				continue
			}
			entry = labels[0]
			entryVC := scheme.VCAt(h, entry)
			entrySlot = logicalid.CHID(scheme.Grid().Index(entryVC))
		}
		// Members of this cube per the *cube-local* view at its entry
		// slot; the admission view uses the source's MNT view for its
		// own cube and the HT-derived existence for others.
		tree := trees.CubeLabelTree(v, route.CubeKey{Cube: h, Entry: entrySlot, Group: int(g)}, func() route.LabelTree {
			cubeDests := m.ms.CubeMembers(entrySlot, g) // sorted by construction
			t, _ := cube.MulticastTree(entry, chidsToLabels(scheme, cubeDests))
			return t
		})
		for l := range tree {
			vc := scheme.VCAt(h, l)
			if scheme.Grid().Valid(vc) {
				add(m.bb.CHNodeOf(logicalid.CHID(scheme.Grid().Index(vc))))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedHIDs returns the tree's hypercubes in ascending order (via the
// shared sorted-ID helper, like every other order-sensitive tree walk).
func sortedHIDs(tree route.MeshTree) []logicalid.HID {
	out := make([]logicalid.HID, 0, len(tree))
	for h := range tree {
		out = append(out, h)
	}
	return network.SortedIDs(out)
}

func chidsToLabels(scheme *logicalid.Scheme, slots []logicalid.CHID) []hypercube.Label {
	labels := make([]hypercube.Label, 0, len(slots))
	for _, s := range slots {
		labels = append(labels, scheme.CHIDToPlace(s).HNID)
	}
	return labels
}

// Open admits a session of the given rate from the source node to the
// group. Under Hard mode it either reserves on every tree CH or rejects
// with full rollback; under Soft it reserves wherever possible.
func (m *Manager) Open(src network.NodeID, g membership.Group, rate float64, mode Mode) (*Session, error) {
	grid := m.bb.Scheme().Grid()
	n := m.bb.Net().Node(src)
	if n == nil || !n.Up() {
		return nil, fmt.Errorf("qos: source %d unavailable", src)
	}
	vc := grid.VCOf(n.Fix().Pos)
	ch := m.bb.Clusters().CHOf(vc)
	if ch == network.NoNode {
		return nil, fmt.Errorf("qos: source %d has no cluster head", src)
	}
	srcSlot := logicalid.CHID(grid.Index(vc))
	chs := m.treeCHs(srcSlot, g)
	s := &Session{Group: g, Rate: rate, Mode: mode, Demanded: len(chs)}
	for _, id := range chs {
		node := m.bb.Net().Node(id)
		if node != nil && node.Up() && node.Capacity().Reserve(rate) {
			s.Reserved = append(s.Reserved, id)
			continue
		}
		if mode == Hard {
			m.release(s)
			m.Rejected++
			return nil, fmt.Errorf("qos: CH %d cannot reserve %.0f b/s", id, rate)
		}
	}
	m.next++
	s.ID = m.next
	m.sessions[s.ID] = s
	m.Admitted++
	return s, nil
}

// Close releases a session's reservations. Closing an unknown session
// is a no-op.
func (m *Manager) Close(id SessionID) {
	s, ok := m.sessions[id]
	if !ok {
		return
	}
	m.release(s)
	delete(m.sessions, id)
}

func (m *Manager) release(s *Session) {
	for _, id := range s.Reserved {
		if node := m.bb.Net().Node(id); node != nil {
			node.Capacity().Release(s.Rate)
		}
	}
	s.Reserved = nil
}

// Reconcile releases the reservations a session holds on CHs whose
// backbone role has died mid-session — nodes that failed, or that lost
// their cluster-head role to churn — so the reserved bandwidth returns
// to the pool instead of leaking on a route that no longer exists. Both
// hard and soft sessions are reconciled; a hard session that loses a
// reservation degrades to partial coverage rather than being torn down
// (the paper's soft-QoS argument: admission is a snapshot, dynamics
// erode it). It returns the number of reservations released.
func (m *Manager) Reconcile() int {
	ids := make([]SessionID, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	released := 0
	for _, id := range ids {
		s := m.sessions[id]
		kept := s.Reserved[:0]
		for _, ch := range s.Reserved {
			node := m.bb.Net().Node(ch)
			if node != nil && node.Up() && m.bb.SlotOfNode(ch) >= 0 {
				kept = append(kept, ch)
				continue
			}
			if node != nil {
				node.Capacity().Release(s.Rate)
			}
			released++
		}
		s.Reserved = kept
	}
	return released
}

// Active returns the number of open sessions.
func (m *Manager) Active() int { return len(m.sessions) }

// Utilization reports the mean reserved fraction over the CH nodes
// currently heading clusters — the backbone's QoS load. The sum runs
// in sorted cluster order: float addition is not associative, so
// summing in map order would leak the iteration order into the
// reported mean's last ulp.
func (m *Manager) Utilization() float64 {
	heads := m.bb.Clusters().Heads()
	vcs := make([]vcgrid.VC, 0, len(heads))
	for vc := range heads {
		vcs = append(vcs, vc)
	}
	sort.Slice(vcs, func(i, j int) bool {
		if vcs[i].CX != vcs[j].CX {
			return vcs[i].CX < vcs[j].CX
		}
		return vcs[i].CY < vcs[j].CY
	})
	total, count := 0.0, 0
	for _, vc := range vcs {
		if node := m.bb.Net().Node(heads[vc]); node != nil {
			total += node.Capacity().Utilization()
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}
