package qos

import (
	"repro/internal/logicalid"
	"repro/internal/membership"
	"repro/internal/network"
)

// TreeCHs exposes treeCHs to the external test package.
func (m *Manager) TreeCHs(slot logicalid.CHID, g membership.Group) []network.NodeID {
	return m.treeCHs(slot, g)
}
