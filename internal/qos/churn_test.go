package qos_test

import (
	"testing"

	"repro/internal/qos"
)

// TestReconcileReleasesDeadRoutes is the admission-under-churn check:
// when a CH on a session's trees dies mid-session, Reconcile must
// release the bandwidth it reserved — for soft and hard sessions alike
// — instead of leaking it on a route that no longer exists.
func TestReconcileReleasesDeadRoutes(t *testing.T) {
	w, m := buildWorld(t)
	defer w.Stop()
	src := w.RandomSource()

	hard, err := m.Open(src, 0, 50e3, qos.Hard)
	if err != nil {
		t.Fatalf("hard admission: %v", err)
	}
	soft, err := m.Open(src, 0, 50e3, qos.Soft)
	if err != nil {
		t.Fatalf("soft admission: %v", err)
	}

	// Both sessions reserve on the same trees; kill one reserved CH and
	// let the cluster layer notice.
	victim := hard.Reserved[0]
	node := w.Net.Node(victim)
	if node.Capacity().Utilization() == 0 {
		t.Fatal("victim holds no reservation before failure")
	}
	node.Fail()
	w.CM.Elect()

	hardBefore, softBefore := len(hard.Reserved), len(soft.Reserved)
	released := m.Reconcile()
	if released < 2 {
		t.Fatalf("Reconcile released %d reservations, want >= 2 (hard + soft held the dead CH)", released)
	}
	if node.Capacity().Utilization() != 0 {
		t.Fatalf("dead CH still holds %.2f of its capacity reserved", node.Capacity().Utilization())
	}
	if len(hard.Reserved) >= hardBefore {
		t.Fatalf("hard session kept %d reservations, had %d before the failure", len(hard.Reserved), hardBefore)
	}
	if len(soft.Reserved) >= softBefore {
		t.Fatalf("soft session kept %d reservations, had %d before the failure", len(soft.Reserved), softBefore)
	}
	for _, s := range []*qos.Session{hard, soft} {
		for _, id := range s.Reserved {
			if id == victim {
				t.Fatalf("%s session still lists the dead CH %d as reserved", s.Mode, victim)
			}
		}
	}

	// Reconcile with a healthy backbone is a no-op.
	if again := m.Reconcile(); again != 0 {
		t.Fatalf("second Reconcile released %d more reservations", again)
	}

	// Closing after reconciliation must not double-release: utilization
	// over the backbone returns to zero exactly.
	m.Close(hard.ID)
	m.Close(soft.ID)
	if got := m.Utilization(); got != 0 {
		t.Fatalf("utilization %v after closing every session", got)
	}
}

// TestReconcileReleasesDemotedCH covers the churn case where the CH
// node survives but loses its backbone role to a re-election: the
// reservation rides on the role, so it must be released too.
func TestReconcileReleasesDemotedCH(t *testing.T) {
	w, m := buildWorld(t)
	defer w.Stop()
	s, err := m.Open(w.RandomSource(), 0, 50e3, qos.Soft)
	if err != nil {
		t.Fatalf("admission: %v", err)
	}
	// Demote one reserved CH by failing it, re-electing (a standby may
	// take over the slot), and reviving it as an ordinary node.
	victim := s.Reserved[0]
	w.Net.Node(victim).Fail()
	w.CM.Elect()
	w.Net.Node(victim).Recover()
	if w.BB.SlotOfNode(victim) >= 0 {
		t.Skip("victim regained its CH slot immediately; demotion not observable in this draw")
	}
	if m.Reconcile() == 0 {
		t.Fatal("Reconcile released nothing for the demoted CH")
	}
	if got := w.Net.Node(victim).Capacity().Utilization(); got != 0 {
		t.Fatalf("demoted CH still holds %.2f reserved", got)
	}
}
