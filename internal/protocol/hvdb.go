package protocol

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/network"
	"repro/internal/qos"
	"repro/internal/vcgrid"
)

func init() {
	Register("hvdb", newHVDB)
}

// hvdbStack adapts the full HVDB protocol stack — clustering, backbone,
// membership, multicast, and the QoS admission plane — to the Stack
// interface.
type hvdbStack struct {
	d   Deps
	qm  *qos.Manager
	on  DeliverFunc
	stx Stats
}

func newHVDB(d Deps) (Stack, error) {
	if d.CM == nil || d.BB == nil || d.MS == nil || d.MC == nil {
		return nil, fmt.Errorf("protocol: hvdb arm needs the CM/BB/MS/MC planes wired")
	}
	s := &hvdbStack{d: d, qm: qos.NewManager(d.BB, d.MS, d.MC)}
	d.MC.OnDeliver(s.observe)
	// Cluster-head churn invalidates QoS reservations held on the old
	// heads: reconcile on every CH change so sessions release bandwidth
	// reserved on routes that no longer exist (instead of leaking it
	// until Close). The same event obsoletes every memoized multicast
	// tree (their topology version moved), so the route cache releases
	// them eagerly rather than waiting for key-by-key replacement.
	d.CM.OnChange(func(vcgrid.VC, network.NodeID, network.NodeID) {
		s.qm.Reconcile()
		d.BB.Trees().InvalidateAll()
	})
	return s, nil
}

func (s *hvdbStack) Name() string { return "hvdb" }

// Start launches the periodic planes in dependency order: clustering,
// then backbone beacons, then membership summaries.
func (s *hvdbStack) Start() {
	s.d.CM.Start()
	s.d.BB.Start()
	s.d.MS.Start()
}

// Stop cancels the periodic planes.
func (s *hvdbStack) Stop() {
	s.d.CM.Stop()
	s.d.BB.Stop()
	s.d.MS.Stop()
}

// Join and Leave update the membership plane and eagerly release the
// group's memoized trees. (Correctness never needs the hook — a
// membership change reaches tree inputs only through summary rounds,
// which move the cache's version key — but the entries are dead weight
// the moment the group's population shifts.)
func (s *hvdbStack) Join(id network.NodeID, g Group) {
	s.d.MS.Join(id, g)
	s.d.BB.Trees().InvalidateGroup(int(g))
}

func (s *hvdbStack) Leave(id network.NodeID, g Group) {
	s.d.MS.Leave(id, g)
	s.d.BB.Trees().InvalidateGroup(int(g))
}

func (s *hvdbStack) Send(src network.NodeID, g Group, payloadSize int) uint64 {
	uid := s.d.MC.Send(src, g, payloadSize)
	if uid != 0 {
		s.stx.Sent++
	}
	return uid
}

func (s *hvdbStack) Deliveries(f DeliverFunc) { s.on = f }

func (s *hvdbStack) observe(member network.NodeID, uid uint64, born des.Time, hops int) {
	s.stx.Delivered++
	if s.on != nil {
		s.on(member, uid, born, hops)
	}
}

func (s *hvdbStack) Stats() Stats {
	st := s.stx
	st.QoSAdmitted = s.qm.Admitted
	st.QoSRejected = s.qm.Rejected
	return st
}

// QoS implements QoSCapable: the session-admission plane over this
// arm's backbone.
func (s *hvdbStack) QoS() *qos.Manager { return s.qm }
