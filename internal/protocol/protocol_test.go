package protocol_test

import (
	"reflect"
	"testing"

	"repro/internal/des"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/qos"
	"repro/internal/scenario"
)

func TestNamesCoverAllArms(t *testing.T) {
	want := []string{"cbt", "dsm", "flooding", "hvdb", "pbm", "spbm"}
	if got := protocol.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v want %v", got, want)
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := protocol.Build("nope", protocol.Deps{}); err == nil {
		t.Fatal("unknown arm should error")
	}
}

func TestHVDBNeedsPlanes(t *testing.T) {
	if _, err := protocol.Build("hvdb", protocol.Deps{}); err == nil {
		t.Fatal("hvdb arm without planes should error")
	}
}

// buildWorld wires a small static world for arm-level tests.
func buildWorld(t *testing.T) *scenario.World {
	t.Helper()
	spec := scenario.DefaultSpec()
	spec.Seed = 2
	spec.Nodes = 60
	spec.Groups = 1
	spec.MembersPerGroup = 8
	spec.Mobility = scenario.Static
	w, err := scenario.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestStackContract drives every arm through the full Stack surface on
// its own world and checks the uniform accounting: Sent counts
// successful sends, Deliveries observes exactly what Stats().Delivered
// counts, and members enrolled by the world actually receive.
func TestStackContract(t *testing.T) {
	for _, name := range protocol.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := buildWorld(t)
			stk, err := w.Protocol(name)
			if err != nil {
				t.Fatal(err)
			}
			stk.Start()
			w.WarmUp(12)

			members := make(map[network.NodeID]bool)
			for _, id := range w.Members[0] {
				members[id] = true
			}
			observed := 0
			stk.Deliveries(func(member network.NodeID, uid uint64, born des.Time, hops int) {
				observed++
				if !members[member] {
					t.Errorf("delivery to non-member %d", member)
				}
			})
			sends := 0
			for i := 0; i < 4; i++ {
				if stk.Send(w.RandomSource(), 0, 256) != 0 {
					sends++
				}
				w.Sim.RunUntil(w.Sim.Now() + 1)
			}
			w.Sim.RunUntil(w.Sim.Now() + 5)
			stk.Stop()

			st := stk.Stats()
			if int(st.Sent) != sends {
				t.Fatalf("Stats().Sent = %d want %d", st.Sent, sends)
			}
			if int(st.Delivered) != observed {
				t.Fatalf("Stats().Delivered = %d but observer saw %d", st.Delivered, observed)
			}
			if sends == 0 || observed == 0 {
				t.Fatalf("arm moved no traffic (sends %d, deliveries %d)", sends, observed)
			}
		})
	}
}

// TestHVDBQoSPlane checks the hvdb arm exposes its session-admission
// plane through the QoSCapable surface.
func TestHVDBQoSPlane(t *testing.T) {
	w := buildWorld(t)
	stk, err := w.Protocol("hvdb")
	if err != nil {
		t.Fatal(err)
	}
	stk.Start()
	w.WarmUp(12)
	qc, ok := stk.(protocol.QoSCapable)
	if !ok {
		t.Fatal("hvdb arm should be QoSCapable")
	}
	if _, err := qc.QoS().Open(w.RandomSource(), 0, 50e3, qos.Soft); err != nil {
		t.Fatalf("soft session: %v", err)
	}
	if got := stk.Stats().QoSAdmitted; got != 1 {
		t.Fatalf("Stats().QoSAdmitted = %d want 1", got)
	}
	stk.Stop()
}
