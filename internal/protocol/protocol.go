// Package protocol unifies every multicast arm of the comparison —
// HVDB itself and the five baseline schemes of §2.2 — behind one Stack
// interface with a name-keyed registry, so experiments, commands, and
// scenario scripts select arms by name instead of wiring each scheme by
// hand.
//
// A Stack is built from the planes of an already-built scenario world
// (see Deps); building never transmits, so two arms can be compared on
// identically specced worlds without cross-contaminating their traffic
// accounting. Registration happens in this package's init functions,
// keeping the arm list closed over the schemes the paper compares.
package protocol

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/membership"
	"repro/internal/multicast"
	"repro/internal/network"
	"repro/internal/qos"
)

// Group identifies a multicast group. All arms share the membership
// package's group value space.
type Group = membership.Group

// DeliverFunc observes one member delivery: the receiving member, the
// packet's UID, its birth time, and the hop count the arm reports
// (physical hops for flat schemes, logical hops for HVDB).
type DeliverFunc func(member network.NodeID, uid uint64, born des.Time, hops int)

// Stats is the uniform counter snapshot of one arm.
type Stats struct {
	// Sent counts successful Send calls (UID != 0); Delivered counts
	// distinct (packet, member) deliveries.
	Sent, Delivered uint64
	// QoSAdmitted and QoSRejected count session admissions on arms with
	// a QoS plane (zero elsewhere).
	QoSAdmitted, QoSRejected uint64
}

// Stack is the uniform surface of one multicast protocol arm.
type Stack interface {
	// Name returns the registry name of the arm.
	Name() string
	// Start and Stop control the arm's periodic control planes (no-ops
	// for stateless schemes such as flooding).
	Start()
	Stop()
	// Join and Leave maintain group membership.
	Join(id network.NodeID, g Group)
	Leave(id network.NodeID, g Group)
	// Send multicasts a payload of the given size from src to the group
	// and returns the packet UID, or 0 if the send could not start.
	Send(src network.NodeID, g Group, payloadSize int) uint64
	// Deliveries registers the delivery observer (nil clears it).
	Deliveries(f DeliverFunc)
	// Stats returns the arm's counter snapshot.
	Stats() Stats
}

// QoSCapable is implemented by stacks carrying a session-admission
// plane (currently only the hvdb arm).
type QoSCapable interface {
	// QoS returns the arm's session manager.
	QoS() *qos.Manager
}

// Deps hands a Builder the planes of one built scenario world. Every
// arm needs Net and Mux; the hvdb arm additionally needs the CM/BB/MS/MC
// planes the world wired.
type Deps struct {
	Net *network.Network
	Mux *network.Mux
	CM  *cluster.Manager
	BB  *core.Backbone
	MS  *membership.Service
	MC  *multicast.Service
}

// Builder constructs one arm over a world's planes. Builders must not
// transmit: traffic starts at Start.
type Builder func(d Deps) (Stack, error)

// registry maps arm names to builders; populated by init functions.
var registry = map[string]Builder{}

// Register adds an arm under a unique name; duplicate registration is a
// programming error.
func Register(name string, b Builder) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("protocol: duplicate registration of %q", name))
	}
	registry[name] = b
}

// Names returns the registered arm names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Build constructs the named arm over the given planes.
func Build(name string, d Deps) (Stack, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("protocol: unknown arm %q (have %v)", name, Names())
	}
	return b(d)
}
