package protocol

import (
	"repro/internal/baseline"
	"repro/internal/des"
	"repro/internal/network"
)

func init() {
	register := func(name string, build func(*network.Network, *network.Mux) baseline.Protocol) {
		Register(name, func(d Deps) (Stack, error) {
			s := &baselineStack{p: build(d.Net, d.Mux)}
			s.p.OnDeliver(s.observe)
			return s, nil
		})
	}
	register("flooding", func(n *network.Network, m *network.Mux) baseline.Protocol { return baseline.NewFlooding(n, m) })
	register("dsm", func(n *network.Network, m *network.Mux) baseline.Protocol { return baseline.NewDSM(n, m) })
	register("pbm", func(n *network.Network, m *network.Mux) baseline.Protocol { return baseline.NewPBM(n, m) })
	register("spbm", func(n *network.Network, m *network.Mux) baseline.Protocol { return baseline.NewSPBM(n, m) })
	register("cbt", func(n *network.Network, m *network.Mux) baseline.Protocol { return baseline.NewCBT(n, m) })
}

// baselineStack adapts a baseline.Protocol to the Stack interface.
type baselineStack struct {
	p   baseline.Protocol
	on  DeliverFunc
	stx Stats
}

func (s *baselineStack) Name() string { return s.p.Name() }
func (s *baselineStack) Start()       { s.p.Start() }
func (s *baselineStack) Stop()        { s.p.Stop() }

func (s *baselineStack) Join(id network.NodeID, g Group)  { s.p.Join(id, baseline.Group(g)) }
func (s *baselineStack) Leave(id network.NodeID, g Group) { s.p.Leave(id, baseline.Group(g)) }

func (s *baselineStack) Send(src network.NodeID, g Group, payloadSize int) uint64 {
	uid := s.p.Send(src, baseline.Group(g), payloadSize)
	if uid != 0 {
		s.stx.Sent++
	}
	return uid
}

func (s *baselineStack) Deliveries(f DeliverFunc) { s.on = f }

func (s *baselineStack) observe(member network.NodeID, uid uint64, born des.Time, hops int) {
	s.stx.Delivered++
	if s.on != nil {
		s.on(member, uid, born, hops)
	}
}

func (s *baselineStack) Stats() Stats { return s.stx }
