package experiment

import (
	"runtime"
	"strings"
	"testing"
)

// runAndRender executes one experiment, applies the structural smoke
// checks (tables exist, have rows, render with their ID), and returns
// every table rendered — aligned and CSV, notes included — as one
// string.
func runAndRender(t *testing.T, id string, o Options) string {
	t.Helper()
	tables, err := Run(id, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("no tables")
	}
	var b strings.Builder
	for _, tb := range tables {
		if len(tb.Columns) == 0 {
			t.Fatalf("table %s has no columns", tb.ID)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("table %s has no rows", tb.ID)
		}
		s := tb.String()
		if !strings.Contains(s, tb.ID) {
			t.Fatalf("table %s renders without its ID", tb.ID)
		}
		b.WriteString(s)
		b.WriteString(tb.CSV())
	}
	return b.String()
}

// TestAllExperimentsQuick smoke-runs every registered experiment at
// reduced scale and enforces the harness determinism contract in the
// same sweep: tables must be byte-identical at worker counts 1, 4, and
// NumCPU for the same seed, because each run's PRNG stream is derived
// positionally (runner.DeriveSeed) and results are collected in run
// order. The heavier sweeps are skipped with -short.
func TestAllExperimentsQuick(t *testing.T) {
	heavy := map[string]bool{"c3": true, "c5": true, "c6": true, "f5": true, "stress": true}
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 && !testing.Short() {
		counts = append(counts, n)
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && heavy[id] {
				t.Skip("heavy sweep skipped with -short")
			}
			t.Parallel() // experiments are self-contained worlds
			var want string
			for _, workers := range counts {
				o := QuickOptions()
				o.Workers = workers
				got := runAndRender(t, id, o)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("experiment %s differs between -parallel %d and -parallel %d:\n--- workers=%d ---\n%s\n--- workers=%d ---\n%s",
						id, counts[0], workers, counts[0], want, workers, got)
				}
			}
		})
	}
}

// TestSerialRerunDeterminism guards against hidden global state: the
// same experiment run twice in one process must render identically.
func TestSerialRerunDeterminism(t *testing.T) {
	o := QuickOptions()
	o.Workers = 1
	for _, id := range []string{"c1", "c4", "f4"} {
		if runAndRender(t, id, o) != runAndRender(t, id, o) {
			t.Fatalf("experiment %s is not deterministic across reruns", id)
		}
	}
}
