package experiment

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"c1", "c2", "c3", "c4", "c5", "c6", "f1", "f2", "f3", "f4", "f5", "f6", "scale", "stress"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs %v want %v", got, want)
		}
	}
	for _, id := range got {
		if Title(id) == "" {
			t.Fatalf("experiment %s has no title", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("zz", QuickOptions()); err == nil {
		t.Fatal("unknown ID should error")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"}}
	tb.AddRow("1") // short row padded
	tb.AddRow("22", "333")
	tb.Note("hello %d", 7)
	s := tb.String()
	for _, want := range []string{"== X: demo ==", "a", "bb", "22", "333", "note: hello 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Fatalf("F = %q", F(1.23456))
	}
	if I(42) != "42" || U(7) != "7" {
		t.Fatal("I/U wrong")
	}
	if Pct(0.5) != "50.0%" {
		t.Fatalf("Pct = %q", Pct(0.5))
	}
}

// TestFigure2ExactDecomposition checks the figure-accurate invariants of
// the cheap, deterministic experiments.
func TestFigure2ExactDecomposition(t *testing.T) {
	tables := Figure2(QuickOptions())
	if len(tables) != 2 {
		t.Fatalf("tables %d", len(tables))
	}
	main := tables[0]
	if len(main.Rows) != 4 {
		t.Fatalf("hypercube rows %d want 4", len(main.Rows))
	}
	for _, row := range main.Rows {
		if row[2] != "16" {
			t.Fatalf("block with %s VCs want 16", row[2])
		}
		if row[3] != "7" { // 4+4 border VCs minus the shared corner
			t.Fatalf("border VCs %s want 7", row[3])
		}
	}
}

func TestFigure3ExactLayout(t *testing.T) {
	tables := Figure3(QuickOptions())
	layout := tables[0]
	wantRows := []string{
		"0000 0001 0100 0101",
		"0010 0011 0110 0111",
		"1000 1001 1100 1101",
		"1010 1011 1110 1111",
	}
	for i, row := range layout.Rows {
		if row[1] != wantRows[i] {
			t.Fatalf("figure 3 row %d = %q want %q", i, row[1], wantRows[i])
		}
	}
	links := tables[1]
	jumps := 0
	for _, row := range links.Rows {
		if row[2] == "additional logical link" {
			jumps++
		}
	}
	if jumps != 2 {
		t.Fatalf("node 0000 jump links %d want 2", jumps)
	}
}

func TestFigure4Converges(t *testing.T) {
	tables := Figure4(QuickOptions())
	main := tables[0]
	if len(main.Rows) == 0 {
		t.Fatal("no k rows")
	}
	for _, row := range main.Rows {
		if row[3] != "100.0%" {
			t.Fatalf("k=%s coverage %s want 100%%", row[0], row[3])
		}
	}
	// The §4.1 example table must list the five neighbors of node 1000.
	ex := tables[1]
	if len(ex.Rows) != 5 {
		t.Fatalf("node 1000 has %d logical neighbors want 5", len(ex.Rows))
	}
}

func TestFigure5ShowsPartialInvolvement(t *testing.T) {
	tables := Figure5(QuickOptions())
	main := tables[0]
	for _, row := range main.Rows {
		hvdbInvolved, _ := strconv.Atoi(row[2])
		dsmInvolved, _ := strconv.Atoi(row[6])
		if hvdbInvolved >= dsmInvolved {
			t.Fatalf("hvdb involves %d nodes, dsm %d; paper expects a portion vs all",
				hvdbInvolved, dsmInvolved)
		}
		if row[7] == "0.0%" {
			t.Fatal("MT coverage zero: membership plane broken")
		}
	}
}

func TestFigure6Delivers(t *testing.T) {
	tables := Figure6(QuickOptions())
	for _, row := range tables[0].Rows {
		pdr := strings.TrimSuffix(row[1], "%")
		v, err := strconv.ParseFloat(pdr, 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < 80 {
			t.Fatalf("group size %s PDR %v%% below 80%%", row[0], v)
		}
	}
}

func TestClaimAvailabilityShape(t *testing.T) {
	tables := ClaimAvailability(QuickOptions())
	rows := tables[0].Rows
	// At zero failures, available paths equal the dimension.
	for _, row := range rows {
		if row[1] == "0" {
			if row[0] != row[2] {
				t.Fatalf("dim %s with no failures has %s paths; want equal", row[0], row[2])
			}
		}
	}
}

func TestClaimLoadBalanceDirection(t *testing.T) {
	tables := ClaimLoadBalance(QuickOptions())
	rows := tables[0].Rows
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	var hvdbJain, cbtJain float64
	for _, row := range rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		switch row[0] {
		case "hvdb":
			hvdbJain = v
		case "cbt":
			cbtJain = v
		}
	}
	if hvdbJain <= cbtJain {
		t.Fatalf("hvdb jain %v should exceed cbt %v (the paper's load-balancing claim)", hvdbJain, cbtJain)
	}
}

func TestClaimDiameterMatchesDimension(t *testing.T) {
	tables := ClaimDiameter(QuickOptions())
	for _, row := range tables[0].Rows {
		if row[0] != row[1] {
			t.Fatalf("dim %s cube diameter %s; complete cube diameter must equal dimension", row[0], row[1])
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Columns: []string{"a", "b"}}
	tb.AddRow("1", `va"l,ue`)
	tb.Note("n1")
	csv := tb.CSV()
	want := "a,b\n1,\"va\"\"l,ue\"\n# n1\n"
	if csv != want {
		t.Fatalf("CSV = %q want %q", csv, want)
	}
}
