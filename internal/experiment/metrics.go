package experiment

import (
	"repro/internal/des"
	"repro/internal/membership"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// runMetrics accumulates delivery statistics for one traffic phase.
// Delays and hop counts stream into log-spaced histograms at delivery
// time (exact means, bounded-error percentiles), so the retained metric
// state is O(1) in the packet count.
type runMetrics struct {
	sim      *des.Simulator
	expected map[uint64]int // uid -> audience size at send time

	delivered int
	delays    stats.LogHist
	hops      stats.LogHist
}

func newRunMetrics(sim *des.Simulator) *runMetrics {
	return &runMetrics{sim: sim, expected: make(map[uint64]int)}
}

// observe is wired into delivery observers.
func (m *runMetrics) observe(_ network.NodeID, uid uint64, born des.Time, hops int) {
	if _, ok := m.expected[uid]; !ok {
		return // warm-up or foreign packet
	}
	m.delivered++
	m.delays.Add(float64(m.sim.Now() - born))
	m.hops.Add(float64(hops))
}

// expect registers a sent packet and its audience size.
func (m *runMetrics) expect(uid uint64, audience int) {
	if uid != 0 {
		m.expected[uid] = audience
	}
}

// pdr returns delivered / expected deliveries.
func (m *runMetrics) pdr() float64 {
	total := 0
	for _, n := range m.expected {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(m.delivered) / float64(total)
}

// stackTraffic drives count CBR packets from one random source to group
// g over any protocol arm and returns the metrics after draining.
func stackTraffic(w *scenario.World, stk protocol.Stack, g membership.Group, count, payload int, interval des.Duration) *runMetrics {
	m := newRunMetrics(w.Sim)
	stk.Deliveries(m.observe)
	src := w.RandomSource()
	w.CBR(func() uint64 {
		uid := stk.Send(src, g, payload)
		m.expect(uid, len(w.Members[g]))
		return uid
	}, interval, count)
	w.RunUntil(w.Sim.Now() + interval*des.Duration(count) + 5)
	return m
}

// controlPerNodeSecond reads control overhead normalized by node count
// and elapsed time.
func controlPerNodeSecond(w *scenario.World, elapsed des.Duration) float64 {
	if elapsed <= 0 || w.Net.Len() == 0 {
		return 0
	}
	return float64(w.Net.Stats().ControlBytes) / float64(w.Net.Len()) / float64(elapsed)
}
