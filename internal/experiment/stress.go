package experiment

import (
	"fmt"

	"repro/internal/runner"
	"repro/internal/scenario"
)

// stressArms is the comparison order of the stress tables: HVDB first,
// then the §2.2 schemes.
var stressArms = []string{"hvdb", "flooding", "dsm", "pbm", "spbm", "cbt"}

// stressScript returns the named built-in script sized for the run:
// full scale uses the scripts as shipped; quick scale shortens windows
// and shrinks bursts so the smoke sweep stays fast.
func stressScript(name string, scale float64) *scenario.Script {
	sc := must(scenario.BuiltinScript(name))
	if scale >= 1 {
		return sc
	}
	for i := range sc.Directives {
		d := &sc.Directives[i]
		if d.Packets > 0 {
			d.Packets = max(2, d.Packets/3)
		}
		if d.Count > 1 {
			d.Count = d.Count / 2
		}
		if d.Duration > 0 {
			d.Duration /= 2
			if d.Period > d.Duration {
				d.Period = d.Duration
			}
		}
	}
	return sc
}

// flashSenders reads the flash-crowd burst width of the script actually
// run at this scale, so the table note stays truthful at quick scale.
func flashSenders(scale float64) int {
	for _, d := range stressScript("flash-crowd", scale).Directives {
		if d.Pattern == scenario.PatternFlash {
			return d.Count
		}
	}
	return 0
}

// Stress is the scripted dynamic-scenario family: every protocol arm of
// the registry against the three built-in stress scripts — churn storm,
// flash crowd, partition/heal — on identically specced mobile worlds.
// Each (script, arm) cell is one self-contained run, so the whole grid
// fans across workers with byte-identical tables at any worker count.
func Stress(o Options) []*Table {
	scripts := scenario.BuiltinScripts()

	type cell struct {
		script string
		arm    string
	}
	var cells []cell
	for _, script := range scripts {
		for _, arm := range stressArms {
			cells = append(cells, cell{script, arm})
		}
	}
	rows := parSweep(o, cells, func(_ runner.Run, c cell) []string {
		sc := stressScript(c.script, o.Scale)
		spec := scenario.DefaultSpec()
		spec.Seed = o.Seed
		spec.Nodes = scaleInt(160, o.Scale, 64)
		spec.Groups = 1
		spec.MembersPerGroup = scaleInt(15, o.Scale, 8)
		w := must(scenario.Build(spec))
		stk := must(w.Protocol(c.arm))
		stk.Start()
		w.WarmUp(scaleDur(12, o.Scale, 10))
		res := must(w.RunScript(stk, sc))
		stk.Stop()
		return []string{
			c.arm, Pct(res.PDR()), I(res.Stale), F(res.CtrlPerNodeS),
			F(res.P50Delay * 1000), F(res.P95Delay * 1000), F(res.Jain),
		}
	})

	var tables []*Table
	for si, script := range scripts {
		t := &Table{
			ID:    fmt.Sprintf("S%d", si+1),
			Title: fmt.Sprintf("stress scenario %q: all protocol arms under the scripted dynamics", script),
			Columns: []string{
				"protocol", "PDR (current members)", "stale", "ctrl B/node/s",
				"p50 delay (ms)", "p95 delay (ms)", "jain",
			},
		}
		addRows(t, rows[si*len(stressArms):(si+1)*len(stressArms)])
		tables = append(tables, t)
	}
	tables[0].Note("churn storm: rolling node failures plus member join/leave waves under CBR + bursty on/off traffic")
	tables[1].Note("flash crowd: a Poisson background stream plus %d simultaneous burst senders", flashSenders(o.Scale))
	tables[2].Note("partition/heal: a radio-degradation window, then an impassable center strip that heals mid-stream")
	for _, t := range tables {
		t.Note("PDR is measured against each packet's send-time audience (live current members); stale = deliveries to departed members")
	}
	return tables
}
