package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/hypercube"
	"repro/internal/logicalid"
	"repro/internal/membership"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/vcgrid"
)

// Figure1 reproduces the paper's Figure 1: the three-tier HVDB model is
// constructed over a live MANET and its tier populations reported.
func Figure1(o Options) []*Table {
	spec := scenario.DefaultSpec()
	spec.Seed = o.Seed
	spec.Nodes = scaleInt(300, o.Scale, 40)
	w := must(scenario.Build(spec))
	w.Start()
	w.Sim.RunUntil(10)
	w.Stop()

	heads := w.CM.Heads()
	bch, ich := 0, 0
	for vc := range heads {
		if w.Scheme.IsBorder(vc) {
			bch++
		} else {
			ich++
		}
	}
	t := &Table{
		ID:      "F1",
		Title:   "HVDB model construction (paper Fig. 1: MNT / HT / MT tiers)",
		Columns: []string{"tier", "population", "detail"},
	}
	t.AddRow("mobile node tier", I(w.Net.Len()),
		fmt.Sprintf("%d clusters with CHs (%d BCH, %d ICH)", len(heads), bch, ich))
	complete, connected := 0, 0
	for h := 0; h < w.Scheme.NumHypercubes(); h++ {
		c := w.BB.Cube(logicalid.HID(h))
		if c.Count() == c.Size() {
			complete++
		}
		if c.Count() > 0 && c.Connected() {
			connected++
		}
	}
	t.AddRow("hypercube tier", I(w.Scheme.NumHypercubes()),
		fmt.Sprintf("dim %d; %d complete, %d connected", w.Scheme.Dim(), complete, connected))
	mesh := w.BB.Mesh()
	t.AddRow("mesh tier", I(mesh.Count()),
		fmt.Sprintf("%dx%d mesh, connected=%v", mesh.Cols(), mesh.Rows(), mesh.Connected()))
	t.Note("one-to-one CH<->hypercube-node mapping; mesh node actual iff its hypercube has a CH")
	return []*Table{t}
}

// Figure2 reproduces the paper's Figure 2: the 8*8 VC example MANET
// divided into four 4-dimensional logical hypercubes.
func Figure2(o Options) []*Table {
	grid := vcgrid.New(geom.RectWH(0, 0, 2000, 2000), 250)
	scheme := must(logicalid.New(grid, 4))
	t := &Table{
		ID:      "F2",
		Title:   "8x8 VC MANET divided into four 4-D hypercubes (paper Fig. 2)",
		Columns: []string{"hypercube (HID)", "mesh coord", "VCs", "border VCs"},
	}
	for h := 0; h < scheme.NumHypercubes(); h++ {
		hid := logicalid.HID(h)
		mx, my := scheme.MeshCoord(hid)
		vcs := scheme.BlockVCs(hid)
		borders := 0
		for _, vc := range vcs {
			if scheme.IsBorder(vc) {
				borders++
			}
		}
		t.AddRow(I(h), fmt.Sprintf("(%d,%d)", mx, my), I(len(vcs)), I(borders))
	}
	t.Note("grid rows render south-to-north; the figure's layout is the transpose")

	// Render the HID map as the figure draws it.
	m := &Table{ID: "F2b", Title: "VC-to-hypercube map", Columns: []string{"row", "HIDs (west to east)"}}
	for cy := grid.Rows() - 1; cy >= 0; cy-- {
		var cells []string
		for cx := 0; cx < grid.Cols(); cx++ {
			cells = append(cells, I(int(scheme.PlaceOf(vcgrid.VC{CX: cx, CY: cy}).HID)))
		}
		m.AddRow(I(cy), strings.Join(cells, " "))
	}
	return []*Table{t, m}
}

// Figure3 reproduces the paper's Figure 3: the label layout of one 4-D
// logical hypercube and its additional logical links.
func Figure3(o Options) []*Table {
	grid := vcgrid.New(geom.RectWH(0, 0, 2000, 2000), 250)
	scheme := must(logicalid.New(grid, 4))
	t := &Table{
		ID:      "F3",
		Title:   "4-D logical hypercube label layout (paper Fig. 3)",
		Columns: []string{"row", "labels (west to east)"},
	}
	for by := 0; by < 4; by++ {
		var cells []string
		for bx := 0; bx < 4; bx++ {
			cells = append(cells, scheme.PlaceOf(vcgrid.VC{CX: bx, CY: by}).HNID.Bits(4))
		}
		t.AddRow(I(by), strings.Join(cells, " "))
	}

	links := &Table{
		ID:      "F3b",
		Title:   "logical links of node 0000: grid links and additional (jump) links",
		Columns: []string{"neighbor", "grid distance (cells)", "kind"},
	}
	for _, nb := range hypercube.AllNeighbors(0, 4) {
		vc := scheme.VCAt(0, nb)
		d := vcgrid.DistVCs(vcgrid.VC{CX: 0, CY: 0}, vc)
		kind := "grid-adjacent"
		if d > 1 {
			kind = "additional logical link"
		}
		links.AddRow(nb.Bits(4), I(d), kind)
	}
	return []*Table{t, links}
}

// Figure4 exercises the Figure 4 algorithm: proactive local logical
// route maintenance, sweeping the horizon k and reporting convergence
// and cost, and verifying the §4.1 worked example for node 1000.
func Figure4(o Options) []*Table {
	t := &Table{
		ID:      "F4",
		Title:   "proactive local logical route maintenance (paper Fig. 4)",
		Columns: []string{"k", "reach (ground truth)", "destinations known", "coverage", "routes/dest", "ctrl bytes/CH/round"},
	}
	kMax := scaleInt(5, o.Scale, 3)
	// One independent backbone world per horizon k.
	rows := parMap(o, kMax, func(r runner.Run) []string {
		k := r.Index + 1
		spec := scenario.DefaultSpec()
		spec.Seed = o.Seed
		spec.Nodes = 0 // pure backbone: one anchor CH per VC
		w := must(scenario.Build(spec))
		cfg := core.DefaultConfig()
		cfg.K = k
		cfg.RouteTTL = 1000
		// Rebuild the backbone with horizon k (scenario wires defaults).
		w2 := rebuildWithK(w, cfg)

		rounds := k + 1
		for i := 0; i < rounds; i++ {
			w2.BB.BeaconRound()
			w2.Sim.RunUntil(w2.Sim.Now() + cfg.BeaconPeriod)
		}
		var reach, known, routesPerDest stats.Accumulator
		for slot := 0; slot < w2.Grid.Count(); slot++ {
			s := logicalid.CHID(slot)
			gt := w2.BB.LogicalReach(s, k)
			reach.Add(float64(len(gt)))
			known.Add(float64(w2.BB.KnownDestinations(s)))
			nRoutes := 0
			for dest := range gt {
				nRoutes += len(w2.BB.Routes(s, dest))
			}
			if len(gt) > 0 {
				routesPerDest.Add(float64(nRoutes) / float64(len(gt)))
			}
		}
		ctrl := float64(w2.Net.Stats().ControlBytes) / float64(w2.Grid.Count()) / float64(rounds)
		coverage := 0.0
		if reach.Mean() > 0 {
			coverage = known.Mean() / reach.Mean()
		}
		return []string{I(k), F(reach.Mean()), F(known.Mean()), Pct(coverage), F(routesPerDest.Mean()), F(ctrl)}
	})
	addRows(t, rows)
	t.Note("paper: multiple candidate logical routes per destination sustain QoS on failure")

	// Verify the worked example of §4.1 at k=4.
	ex := section41Example(o)
	return []*Table{t, ex}
}

// rebuildWithK rebuilds the protocol stack of a freshly built world with
// a custom core config (the scenario package wires defaults).
func rebuildWithK(w *scenario.World, cfg core.Config) *scenario.World {
	mux := networkBind(w)
	w.BB = core.New(w.Net, mux, w.CM, w.Scheme, cfg)
	w.MS = membership.New(w.BB, membership.DefaultConfig())
	w.CM.Elect()
	return w
}

func section41Example(o Options) *Table {
	spec := scenario.DefaultSpec()
	spec.Seed = o.Seed
	spec.Nodes = 0
	w := must(scenario.Build(spec))
	cfg := core.DefaultConfig()
	cfg.RouteTTL = 1000
	w = rebuildWithK(w, cfg)
	for i := 0; i < 3; i++ {
		w.BB.BeaconRound()
		w.Sim.RunUntil(w.Sim.Now() + cfg.BeaconPeriod)
	}
	// Node 1000 of block 0 sits at VC (0,2).
	slot := logicalid.CHID(w.Grid.Index(vcgrid.VC{CX: 0, CY: 2}))
	t := &Table{
		ID:      "F4b",
		Title:   "§4.1 worked example: local logical routes at node 1000",
		Columns: []string{"destination label", "best hops", "routes", "delay (ms)"},
	}
	for _, nb := range w.BB.LogicalNeighbors(slot) {
		routes := w.BB.Routes(slot, nb)
		if len(routes) == 0 {
			t.AddRow(labelOf(w, nb), "-", "0", "-")
			continue
		}
		t.AddRow(labelOf(w, nb), I(routes[0].Hops), I(len(routes)), F(routes[0].Delay*1000))
	}
	// The paper's 2-hop example: 1000 -> 1001 -> 1100.
	dst := logicalid.CHID(w.Grid.Index(vcgrid.VC{CX: 2, CY: 2})) // label 1100
	routes := w.BB.Routes(slot, dst)
	for _, r := range routes {
		if r.Hops == 2 {
			t.Note("2-logical-hop route to 1100 via %s present (paper's example)", labelOf(w, r.NextHop))
			break
		}
	}
	return t
}

func labelOf(w *scenario.World, slot logicalid.CHID) string {
	p := w.Scheme.CHIDToPlace(slot)
	return p.HNID.Bits(w.Scheme.Dim())
}

// membershipPlaneKinds matches the traffic of the Figure 5 plane,
// whether sent directly or inside a geo envelope.
func membershipPlaneKinds(kind string) bool {
	for _, k := range []string{membership.LocalKind, membership.MNTKind, membership.HTKind} {
		if kind == k || kind == "geo:"+k {
			return true
		}
	}
	return false
}

func kindsOf(bases ...string) func(string) bool {
	return func(kind string) bool {
		for _, b := range bases {
			if kind == b || kind == "geo:"+b {
				return true
			}
		}
		return false
	}
}

// Figure5 exercises the Figure 5 algorithm: summary-based membership
// update. It measures the membership plane in isolation — bytes per
// node per second AND the number of nodes the plane involves — against
// the all-nodes-involved alternatives the paper criticizes, and reports
// MT-view convergence.
func Figure5(o Options) []*Table {
	t := &Table{
		ID:    "F5",
		Title: "summary-based membership update (paper Fig. 5): plane-isolated cost",
		Columns: []string{"groups", "hvdb B/node/s", "hvdb nodes involved", "spbm B/node/s",
			"spbm nodes involved", "dsm B/node/s", "dsm nodes involved", "MT coverage"},
	}
	horizon := scaleDur(20, o.Scale, 10)
	groupCounts := scaleInts([]int{1, 4, 8}, o.Scale, []int{1, 2})
	planes := []string{"hvdb", "spbm", "dsm"}

	// Each (group count, membership plane) pair is measured on its own
	// world; flatten the grid into one batch of independent runs.
	type arm struct {
		groups int
		plane  string
	}
	var arms []arm
	for _, groups := range groupCounts {
		for _, plane := range planes {
			arms = append(arms, arm{groups, plane})
		}
	}
	type planeCost struct {
		bytes    float64
		involved int
		coverage float64 // hvdb plane only
	}
	costs := parSweep(o, arms, func(_ runner.Run, a arm) planeCost {
		spec := scenario.DefaultSpec()
		spec.Seed = o.Seed
		spec.Nodes = scaleInt(200, o.Scale, 64)
		spec.Groups = a.groups
		spec.MembersPerGroup = 8
		spec.Mobility = scenario.Static

		if a.plane != "hvdb" {
			// Baseline planes are measured through their registry arm;
			// the hvdb plane below is measured in isolation (membership
			// service only), which the full-arm surface cannot express.
			w := must(scenario.Build(spec))
			p := must(w.Protocol(a.plane))
			w.Net.ResetTraffic()
			p.Start()
			w.Sim.RunUntil(horizon)
			p.Stop()
			kind := baselineSPBMUpdateKind
			if a.plane == "dsm" {
				kind = baselineDSMPositionKind
			}
			match := kindsOf(kind)
			return planeCost{
				bytes:    float64(w.Net.BytesMatching(match)) / float64(w.Net.Len()) / float64(horizon),
				involved: w.Net.SendersMatching(match),
			}
		}

		// HVDB membership plane.
		w := must(scenario.Build(spec))
		w.CM.Elect()
		w.Net.ResetTraffic()
		w.MS.Start()
		w.Sim.RunUntil(horizon)
		w.MS.Stop()
		// MT coverage: fraction of (slot, group) pairs whose MT view
		// names at least the true member-bearing hypercubes.
		covered, total := 0, 0
		truth := groundTruthCubes(w)
		for slot := 0; slot < w.Grid.Count(); slot++ {
			for g := 0; g < a.groups; g++ {
				total++
				view := w.MS.MTSummary(logicalid.CHID(slot), membership.Group(g))
				ok := true
				for h := range truth[membership.Group(g)] {
					if !view[h] {
						ok = false
						break
					}
				}
				if ok {
					covered++
				}
			}
		}
		return planeCost{
			bytes:    float64(w.Net.BytesMatching(membershipPlaneKinds)) / float64(w.Net.Len()) / float64(horizon),
			involved: w.Net.SendersMatching(membershipPlaneKinds),
			coverage: float64(covered) / float64(total),
		}
	})
	for gi, groups := range groupCounts {
		hv := costs[gi*len(planes)]
		sp := costs[gi*len(planes)+1]
		ds := costs[gi*len(planes)+2]
		t.AddRow(I(groups), F(hv.bytes), I(hv.involved), F(sp.bytes), I(sp.involved),
			F(ds.bytes), I(ds.involved), Pct(hv.coverage))
	}
	t.Note("paper: summaries disseminate to only a portion of nodes; DSM/SPBM involve all nodes")
	t.Note("hvdb involvement = members + CHs + geo relays; DSM/SPBM involve every node by design")
	return []*Table{t}
}

// groundTruthCubes maps each group to the hypercubes actually hosting
// members right now.
func groundTruthCubes(w *scenario.World) map[membership.Group]map[logicalid.HID]bool {
	out := make(map[membership.Group]map[logicalid.HID]bool)
	for g, members := range w.Members {
		hs := make(map[logicalid.HID]bool)
		for _, id := range members {
			n := w.Net.Node(id)
			if n == nil || !n.Up() {
				continue
			}
			hs[w.Scheme.PlaceAt(n.TruePos()).HID] = true
		}
		out[g] = hs
	}
	return out
}

// Figure6 exercises the Figure 6 algorithm end to end: PDR, delay, and
// logical hops of HVDB multicast across group sizes.
func Figure6(o Options) []*Table {
	t := &Table{
		ID:      "F6",
		Title:   "logical location-based multicast routing (paper Fig. 6)",
		Columns: []string{"group size", "PDR", "mean delay (ms)", "p95 delay (ms)", "mean logical hops"},
	}
	packets := scaleInt(20, o.Scale, 5)
	rows := parSweep(o, scaleInts([]int{5, 10, 20}, o.Scale, []int{5, 10}), func(_ runner.Run, size int) []string {
		spec := scenario.DefaultSpec()
		spec.Seed = o.Seed
		spec.Nodes = scaleInt(200, o.Scale, 64)
		spec.Groups = 1
		spec.MembersPerGroup = size
		spec.Mobility = scenario.Static
		w := must(scenario.Build(spec))
		stk := must(w.Protocol("hvdb"))
		stk.Start()
		w.WarmUp(12)
		m := stackTraffic(w, stk, 0, packets, 512, 0.5)
		stk.Stop()
		return []string{I(size), Pct(m.pdr()), F(m.delays.Mean() * 1000), F(m.delays.Percentile(95) * 1000), F(m.hops.Mean())}
	})
	addRows(t, rows)
	t.Note("trees cached per the paper; intermediate CHs keep no per-session state")
	return []*Table{t}
}

// Baseline kind names re-exported locally to avoid importing the
// baseline package twice under different aliases.
const (
	baselineSPBMUpdateKind  = "spbm-update"
	baselineDSMPositionKind = "dsm-position"
)
