package experiment

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/network"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// Options control experiment size. Scale 1 runs the full configuration
// reported in EXPERIMENTS.md; Scale < 1 selects the reduced
// configuration used by unit tests and quick benchmark runs.
type Options struct {
	Seed  uint64
	Scale float64
	// Workers caps how many independent runs (trials, sweep points,
	// protocol arms) execute concurrently; 0 means GOMAXPROCS. Tables
	// are byte-identical at every worker count for a given seed: each
	// run derives its PRNG stream positionally from the seed (see
	// runner.DeriveSeed) and results are collected in run order.
	Workers int
	// Shards > 1 runs the scale-family worlds on the sharded event
	// kernel (scenario.Spec.Shards). Tables and event counts are
	// byte-identical at every setting — sharding only changes wall
	// clock — and a world that declines sharding is a hard error here,
	// so a benchmark can never silently measure the serial path.
	Shards int
	// MaxNodes caps the population of the scale sweep; 0 means
	// DefaultMaxNodes (100k). The sweep's node counts ascend, so the cap
	// drops a suffix of points and never disturbs the positional seeds
	// of the rest — raising it (the nightly 1M knob) adds rows without
	// changing existing ones.
	MaxNodes int
}

// DefaultOptions runs full-size experiments with the default seed.
func DefaultOptions() Options { return Options{Seed: 1, Scale: 1} }

// QuickOptions runs the reduced configurations.
func QuickOptions() Options { return Options{Seed: 1, Scale: 0.25} }

// Runner regenerates the tables of one experiment.
type Runner func(Options) []*Table

// registry maps experiment IDs to runners.
var registry = map[string]struct {
	run   Runner
	title string
}{
	"f1":     {Figure1, "HVDB model construction (Fig. 1)"},
	"f2":     {Figure2, "8x8 VC / four 4-D hypercube decomposition (Fig. 2)"},
	"f3":     {Figure3, "4-D hypercube label layout (Fig. 3)"},
	"f4":     {Figure4, "proactive local logical route maintenance (Fig. 4)"},
	"f5":     {Figure5, "summary-based membership update (Fig. 5)"},
	"f6":     {Figure6, "logical location-based multicast routing (Fig. 6)"},
	"c1":     {ClaimAvailability, "claim: high availability via disjoint paths"},
	"c2":     {ClaimLoadBalance, "claim: load balancing vs tree-based backbone"},
	"c3":     {ClaimScalability, "claim: control overhead scalability"},
	"c4":     {ClaimDiameter, "claim: small diameter / few logical hops"},
	"c5":     {ClaimComparison, "protocol comparison (PDR/delay/overhead)"},
	"c6":     {ClaimChurn, "group dynamics: delivery under membership churn"},
	"scale":  {Scale, "simulator scale sweep up to 100,000-node worlds"},
	"stress": {Stress, "scripted stress scenarios: 6 protocol arms x 3 dynamic scripts"},
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns the one-line description of an experiment.
func Title(id string) string { return registry[id].title }

// Run executes one experiment by ID.
func Run(id string, o Options) ([]*Table, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q (have %v)", id, IDs())
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return e.run(o), nil
}

// must unwraps constructor errors; experiment configurations are static
// and a failure is a programming error.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// parMap fans n runs across the option's worker budget and returns
// their results in run order. Run failures are panics (the package's
// must convention), which the runner captures per run; re-panic the
// first one here so the Runner signature stays error-free.
func parMap[T any](o Options, n int, fn func(runner.Run) T) []T {
	out, err := runner.Map(runner.Config{Workers: o.Workers}, o.Seed, n, func(r runner.Run) (T, error) {
		return fn(r), nil
	})
	if err != nil {
		panic(err)
	}
	return out
}

// addRows folds a batch of positionally collected rows into a table in
// run order.
func addRows(t *Table, rows [][]string) {
	for _, row := range rows {
		t.AddRow(row...)
	}
}

// parSweep runs fn once per sweep point, in parallel, results in point
// order.
func parSweep[P, T any](o Options, points []P, fn func(runner.Run, P) T) []T {
	out, err := runner.Sweep(runner.Config{Workers: o.Workers}, o.Seed, points, func(r runner.Run, p P) (T, error) {
		return fn(r, p), nil
	})
	if err != nil {
		panic(err)
	}
	return out
}

// networkBind rebinds a fresh mux onto the world's nodes (used when an
// experiment rebuilds the protocol stack with custom configs).
func networkBind(w *scenario.World) *network.Mux {
	m := network.Bind(w.Net)
	w.Mux = m
	return m
}

// scaleInt picks the full or reduced value by scale.
func scaleInt(full int, scale float64, small int) int {
	if scale >= 1 {
		return full
	}
	return small
}

// scaleDur picks the full or reduced duration by scale.
func scaleDur(full des.Duration, scale float64, small des.Duration) des.Duration {
	if scale >= 1 {
		return full
	}
	return small
}

// scaleInts picks the full or reduced sweep by scale.
func scaleInts(full []int, scale float64, small []int) []int {
	if scale >= 1 {
		return full
	}
	return small
}
