// Package experiment regenerates every figure of the paper and
// quantifies every claim its design argument makes, producing ASCII
// tables the benchmark harness and the hvdbbench command print. The
// experiment IDs (f1..f6, c1..c5) are indexed in DESIGN.md and the
// outcomes recorded in EXPERIMENTS.md.
package experiment

import (
	"fmt"
	"strings"
)

// Table is one result table of an experiment.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Columns) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-text note rendered under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// F formats a float compactly for table cells.
func F(v float64) string { return fmt.Sprintf("%.4g", v) }

// I formats an int for table cells.
func I(v int) string { return fmt.Sprintf("%d", v) }

// U formats a uint64 for table cells.
func U(v uint64) string { return fmt.Sprintf("%d", v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// String renders the table as aligned ASCII.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-style CSV (header row first); cells
// containing commas or quotes are quoted. Notes are emitted as trailing
// comment lines prefixed with "#".
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}
