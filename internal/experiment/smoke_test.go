package experiment

import (
	"testing"
)

// The all-experiment smoke pass lives in TestAllExperimentsQuick
// (determinism_test.go), which folds the structural checks into the
// worker-count-invariance sweep so each experiment runs exactly once
// per compared worker count.

// TestRepairLatencyTable checks the C1b availability outcome: alternates
// exist at failure time in most trials and repair completes within a
// few beacon periods.
func TestRepairLatencyTable(t *testing.T) {
	tbl := repairLatency(QuickOptions())
	if len(tbl.Rows) == 0 {
		t.Fatal("no repair trials")
	}
	for _, row := range tbl.Rows {
		if row[2] == "unrepaired" {
			t.Fatalf("trial %s never repaired", row[0])
		}
	}
}

// TestChurnExperimentShape: zero churn must give full delivery against
// current members.
func TestChurnExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy sweep skipped with -short")
	}
	tables := ClaimChurn(QuickOptions())
	first := tables[0].Rows[0]
	if first[0] != "0" {
		t.Fatalf("first row should be zero churn, got %q", first[0])
	}
	if first[1] != "100.0%" {
		t.Fatalf("zero-churn PDR %s want 100%%", first[1])
	}
}
