package experiment

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick smoke-runs every registered experiment at
// reduced scale: each must produce at least one table with rows and
// render without panicking. The heavier sweeps are skipped with -short.
func TestAllExperimentsRunQuick(t *testing.T) {
	heavy := map[string]bool{"c3": true, "c5": true, "c6": true, "f5": true}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && heavy[id] {
				t.Skip("heavy sweep skipped with -short")
			}
			tables, err := Run(id, QuickOptions())
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Columns) == 0 {
					t.Fatalf("table %s has no columns", tb.ID)
				}
				if len(tb.Rows) == 0 {
					t.Fatalf("table %s has no rows", tb.ID)
				}
				if !strings.Contains(tb.String(), tb.ID) {
					t.Fatalf("table %s renders without its ID", tb.ID)
				}
			}
		})
	}
}

// TestRepairLatencyTable checks the C1b availability outcome: alternates
// exist at failure time in most trials and repair completes within a
// few beacon periods.
func TestRepairLatencyTable(t *testing.T) {
	tbl := repairLatency(QuickOptions())
	if len(tbl.Rows) == 0 {
		t.Fatal("no repair trials")
	}
	for _, row := range tbl.Rows {
		if row[2] == "unrepaired" {
			t.Fatalf("trial %s never repaired", row[0])
		}
	}
}

// TestChurnExperimentShape: zero churn must give full delivery against
// current members.
func TestChurnExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy sweep skipped with -short")
	}
	tables := ClaimChurn(QuickOptions())
	first := tables[0].Rows[0]
	if first[0] != "0" {
		t.Fatalf("first row should be zero churn, got %q", first[0])
	}
	if first[1] != "100.0%" {
		t.Fatalf("zero-churn PDR %s want 100%%", first[1])
	}
}
