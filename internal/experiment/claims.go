package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/hypercube"
	"repro/internal/logicalid"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// ClaimAvailability quantifies the paper's availability argument: "in an
// incomplete logical hypercube, there are multiple disjoint local
// logical routes between each pair of CHs ... multiple candidate logical
// routes become available immediately". For each dimension it sweeps the
// node failure fraction and reports surviving disjoint paths and pair
// connectivity.
func ClaimAvailability(o Options) []*Table {
	t := &Table{
		ID:      "C1",
		Title:   "availability: surviving disjoint paths and connectivity under CH failures",
		Columns: []string{"dim", "fail frac", "avail. disjoint paths (mean)", "pair connectivity", "diameter"},
	}
	dims := scaleInts([]int{3, 4, 5, 6}, o.Scale, []int{3, 4})
	fracs := []float64{0, 0.1, 0.2, 0.3}
	trials := scaleInt(200, o.Scale, 40)

	// One sweep point per (dim, frac) cell; each cell's trials draw from
	// the cell's positionally derived stream.
	type cell struct {
		dim  int
		frac float64
	}
	var cells []cell
	for _, dim := range dims {
		for _, frac := range fracs {
			cells = append(cells, cell{dim, frac})
		}
	}
	rows := parSweep(o, cells, func(r runner.Run, c cell) []string {
		rng := xrand.New(r.Seed)
		var paths stats.Accumulator
		connected, totalPairs := 0, 0
		var worstDiam int
		for trial := 0; trial < trials; trial++ {
			cube := hypercube.Complete(c.dim)
			kills := int(c.frac * float64(cube.Size()))
			for i := 0; i < kills; i++ {
				cube.Remove(hypercube.Label(rng.Intn(cube.Size())))
			}
			labels := cube.Labels()
			if len(labels) < 2 {
				continue
			}
			for k := 0; k < 4; k++ {
				a := labels[rng.Intn(len(labels))]
				b := labels[rng.Intn(len(labels))]
				if a == b {
					continue
				}
				totalPairs++
				paths.Add(float64(cube.AvailablePaths(a, b)))
				if cube.Distance(a, b) >= 0 {
					connected++
				}
			}
			if d := cube.Diameter(); d > worstDiam {
				worstDiam = d
			}
		}
		conn := 0.0
		if totalPairs > 0 {
			conn = float64(connected) / float64(totalPairs)
		}
		return []string{I(c.dim), F(c.frac), F(paths.Mean()), Pct(conn), I(worstDiam)}
	})
	addRows(t, rows)
	t.Note("paper: an n-cube offers n disjoint paths and sustains n-1 failures; diameter is n when complete")
	return []*Table{t, repairLatency(o)}
}

// repairLatency measures the protocol-level availability: after a
// next-hop CH fails, how long until the Figure 4 beacons restore a
// usable route, and whether an alternate route was already in the table
// at the instant of failure (the paper's "available immediately").
func repairLatency(o Options) *Table {
	t := &Table{
		ID:      "C1b",
		Title:   "availability: route repair after next-hop CH failure",
		Columns: []string{"trial", "alternate at failure", "repair latency (s)", "beacon period (s)"},
	}
	trials := scaleInt(8, o.Scale, 3)
	// Each trial is a self-contained world; fan them out and fold the
	// per-trial outcomes back in trial order.
	type outcome struct {
		row     []string
		hasAlt  bool
		latency float64 // repair latency; < 0 means the route never repaired
		skipped bool    // trial produced no usable src/dst pair: no row at all
	}
	outcomes := parMap(o, trials, func(r runner.Run) outcome {
		trial := r.Index
		spec := scenario.DefaultSpec()
		spec.Seed = o.Seed + uint64(trial)
		spec.Nodes = 0
		w := must(scenario.Build(spec))
		cfg := core.DefaultConfig()
		cfg.RouteTTL = 1000
		w2 := rebuildWithK(w, cfg)
		for i := 0; i < cfg.K+1; i++ {
			w2.BB.BeaconRound()
			w2.Sim.RunUntil(w2.Sim.Now() + cfg.BeaconPeriod)
		}
		rng := xrand.New(spec.Seed)
		src := logicalid.CHID(rng.Intn(w2.Grid.Count()))
		// Destination two logical hops away, routed via a next hop we
		// then kill. Smallest qualifying ID: map iteration order would
		// make the trial outcome irreproducible.
		var dst logicalid.CHID = -1
		for d, dd := range w2.BB.LogicalReach(src, 2) {
			if dd == 2 && (dst < 0 || d < dst) {
				dst = d
			}
		}
		if dst < 0 {
			return outcome{skipped: true}
		}
		routes := w2.BB.Routes(src, dst)
		if len(routes) == 0 {
			return outcome{skipped: true}
		}
		victim := routes[0].NextHop
		w2.Net.Node(w2.BB.CHNodeOf(victim)).Fail()
		w2.CM.Elect()
		// Alternate already in table?
		hasAlt := false
		for _, r := range w2.BB.Routes(src, dst) {
			if r.NextHop != victim && w2.BB.CHNodeOf(r.NextHop) != network.NoNode {
				hasAlt = true
				break
			}
		}
		// Measure beacon rounds until a live-next-hop route (re)appears.
		failAt := w2.Sim.Now()
		repaired := des.Time(-1)
		for i := 0; i < 6 && repaired < 0; i++ {
			w2.BB.BeaconRound()
			w2.Sim.RunUntil(w2.Sim.Now() + cfg.BeaconPeriod)
			for _, r := range w2.BB.Routes(src, dst) {
				if w2.BB.CHNodeOf(r.NextHop) != network.NoNode {
					repaired = w2.Sim.Now()
					break
				}
			}
		}
		if repaired >= 0 {
			l := float64(repaired - failAt)
			return outcome{
				row:     []string{I(trial), boolStr(hasAlt), F(l), F(float64(cfg.BeaconPeriod))},
				hasAlt:  hasAlt,
				latency: l,
			}
		}
		return outcome{
			row:     []string{I(trial), boolStr(hasAlt), "unrepaired", F(float64(cfg.BeaconPeriod))},
			hasAlt:  hasAlt,
			latency: -1,
		}
	})

	immediate := 0
	var lat stats.Sample
	for _, oc := range outcomes {
		if oc.skipped {
			continue
		}
		if oc.hasAlt {
			immediate++
		}
		if oc.latency >= 0 {
			lat.Add(oc.latency)
		}
		t.AddRow(oc.row...)
	}
	t.Note("alternate-at-failure %d/%d trials (the paper's 'available immediately'); mean repair %.2g s",
		immediate, trials, lat.Mean())
	return t
}

func boolStr(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// ClaimLoadBalance quantifies "no single node is more loaded than any
// other nodes, and no problem of bottlenecks exists, which is likely to
// occur in tree-based architectures": identical multi-source traffic on
// the HVDB versus a core-based tree, comparing the forwarding-load
// distribution over the same node population.
func ClaimLoadBalance(o Options) []*Table {
	t := &Table{
		ID:      "C2",
		Title:   "load balancing: forwarding-load distribution, HVDB vs core-based tree",
		Columns: []string{"protocol", "jain index", "max/mean load", "max load", "PDR"},
	}
	packets := scaleInt(15, o.Scale, 5)
	sources := scaleInt(6, o.Scale, 3)

	build := func() *scenario.World {
		spec := scenario.DefaultSpec()
		spec.Seed = o.Seed
		spec.Nodes = scaleInt(160, o.Scale, 64)
		spec.Groups = 1
		spec.MembersPerGroup = scaleInt(16, o.Scale, 8)
		spec.Mobility = scenario.Static
		return must(scenario.Build(spec))
	}

	// The two protocol arms run on identically specced (but separately
	// built) worlds, so they fan out as independent runs. One shared
	// drive keeps the traffic pattern identical between arms.
	drive := func(w *scenario.World, stk protocol.Stack) *runMetrics {
		stk.Start()
		w.WarmUp(12)
		m := newRunMetrics(w.Sim)
		stk.Deliveries(m.observe)
		for s := 0; s < sources; s++ {
			src := w.RandomSource()
			for p := 0; p < packets; p++ {
				uid := stk.Send(src, 0, 512)
				m.expect(uid, len(w.Members[0]))
				w.Sim.RunUntil(w.Sim.Now() + 0.3)
			}
		}
		w.Sim.RunUntil(w.Sim.Now() + 5)
		stk.Stop()
		return m
	}
	rows := parSweep(o, []string{"hvdb", "cbt"}, func(_ runner.Run, proto string) []string {
		w := build()
		m := drive(w, must(w.Protocol(proto)))
		return loadRow(proto, w, m)
	})
	addRows(t, rows)
	t.Note("jain index near 1 = even load; the rendezvous core concentrates traffic by design")
	return []*Table{t}
}

func loadRow(name string, w *scenario.World, m *runMetrics) []string {
	loads := w.Net.ForwardLoads()
	var acc stats.Accumulator
	for _, l := range loads {
		acc.Add(l)
	}
	maxMean := 0.0
	if acc.Mean() > 0 {
		maxMean = acc.Max() / acc.Mean()
	}
	return []string{name, F(stats.JainIndex(loads)), F(maxMean), F(acc.Max()), Pct(m.pdr())}
}

// ClaimScalability quantifies the paper's central scalability argument:
// control overhead per node as the network grows, HVDB summaries versus
// the all-nodes-involved schemes (DSM floods, SPBM updates, PBM member
// floods).
func ClaimScalability(o Options) []*Table {
	t := &Table{
		ID:      "C3",
		Title:   "control overhead scaling (bytes/node/s) vs network size",
		Columns: []string{"VCs", "nodes", "hvdb", "dsm", "pbm", "spbm"},
	}
	horizon := scaleDur(16, o.Scale, 8)
	sizes := scaleInts([]int{4, 8, 12}, o.Scale, []int{4, 8}) // grid side g -> g*g VCs
	protos := []string{"hvdb", "dsm", "pbm", "spbm"}
	nodesFor := func(g int) int { return g * g * 2 }

	// Flatten the size x protocol grid into one batch of independent
	// runs (each builds its own world), then reassemble rows per size.
	type arm struct {
		g     int
		proto string
	}
	var arms []arm
	for _, g := range sizes {
		for _, proto := range protos {
			arms = append(arms, arm{g, proto})
		}
	}
	cells := parSweep(o, arms, func(_ runner.Run, a arm) string {
		spec := scenario.DefaultSpec()
		spec.Seed = o.Seed
		spec.ArenaSize = float64(a.g) * 250
		spec.Dim = 4
		spec.Nodes = nodesFor(a.g)
		spec.Groups = 2
		spec.MembersPerGroup = 8
		spec.Mobility = scenario.Static

		w := must(scenario.Build(spec))
		stk := must(w.Protocol(a.proto))
		stk.Start()
		w.Sim.RunUntil(horizon)
		stk.Stop()
		return F(controlPerNodeSecond(w, horizon))
	})
	for gi, g := range sizes {
		row := []string{I(g * g), I(g*g + nodesFor(g))}
		row = append(row, cells[gi*len(protos):(gi+1)*len(protos)]...)
		t.AddRow(row...)
	}
	t.Note("paper: summaries reach only a portion of nodes, so per-node cost should grow slowest for hvdb")
	return []*Table{t}
}

// ClaimDiameter quantifies "small diameter facilitates small number of
// logical hops on the logical routes": logical hop counts across
// dimensions and the end-to-end hop behaviour they induce.
func ClaimDiameter(o Options) []*Table {
	t := &Table{
		ID:      "C1",
		Title:   "small diameter: logical hops between CH pairs by dimension",
		Columns: []string{"dim", "cube diameter", "mean logical hops", "p95 logical hops", "mean physical hops/logical hop"},
	}
	t.ID = "C4"
	dims := scaleInts([]int{2, 4, 6}, o.Scale, []int{2, 4})
	rows := parSweep(o, dims, func(r runner.Run, dim int) []string {
		rng := xrand.New(r.Seed)
		blockW := 1 << uint((dim+1)/2)
		blockH := 1 << uint(dim/2)
		spec := scenario.DefaultSpec()
		spec.Seed = o.Seed
		spec.Dim = dim
		spec.ArenaSize = float64(max(blockW, blockH)) * 2 * 250
		spec.Nodes = 0
		w := must(scenario.Build(spec))
		w.CM.Elect()

		cube := w.BB.Cube(0)
		var hops stats.Sample
		var physPerLogical stats.Accumulator
		slots := w.Grid.Count()
		pairs := scaleInt(300, o.Scale, 60)
		for i := 0; i < pairs; i++ {
			a := logicalid.CHID(rng.Intn(slots))
			b := logicalid.CHID(rng.Intn(slots))
			if a == b {
				continue
			}
			// Logical distance: BFS over the live logical topology.
			reach := w.BB.LogicalReach(a, 64)
			if d, ok := reach[b]; ok {
				hops.Add(float64(d))
				// Physical cost of one logical hop ~ cells crossed.
				va := w.Grid.FromIndex(int(a))
				vb := w.Grid.FromIndex(int(b))
				cells := float64(absInt(va.CX-vb.CX) + absInt(va.CY-vb.CY))
				if d > 0 {
					physPerLogical.Add(cells / float64(d))
				}
			}
		}
		return []string{I(dim), I(cube.Diameter()), F(hops.Mean()), F(hops.Percentile(95)), F(physPerLogical.Mean())}
	})
	addRows(t, rows)
	t.Note("complete n-cube diameter is n (paper §2.1 property 2); jump links trade physical length for logical hop count")
	return []*Table{t}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ClaimComparison is the head-to-head evaluation a full IPDPS paper
// would have carried: PDR, delay, and control overhead for HVDB and the
// four related schemes across node speeds, on identical worlds.
func ClaimComparison(o Options) []*Table {
	speeds := scaleInts([]int{0, 5, 10, 20}, o.Scale, []int{0, 10})
	protos := []string{"hvdb", "flooding", "dsm", "pbm", "spbm", "cbt"}
	pdrT := &Table{ID: "C5", Title: "protocol comparison: packet delivery ratio vs max speed (m/s)",
		Columns: append([]string{"protocol"}, intHeaders(speeds)...)}
	delayT := &Table{ID: "C5b", Title: "protocol comparison: mean delay (ms) vs max speed (m/s)",
		Columns: append([]string{"protocol"}, intHeaders(speeds)...)}
	ctlT := &Table{ID: "C5c", Title: "protocol comparison: control bytes/node/s vs max speed (m/s)",
		Columns: append([]string{"protocol"}, intHeaders(speeds)...)}
	jainT := &Table{ID: "C5d", Title: "protocol comparison: forwarding-load Jain index vs max speed (m/s)",
		Columns: append([]string{"protocol"}, intHeaders(speeds)...)}

	packets := scaleInt(15, o.Scale, 5)

	// The proto x speed grid is the suite's biggest batch of mutually
	// independent runs; flatten it, fan out, and reassemble per-proto
	// rows from the positional results.
	type arm struct {
		proto string
		speed int
	}
	var arms []arm
	for _, proto := range protos {
		for _, speed := range speeds {
			arms = append(arms, arm{proto, speed})
		}
	}
	type cell struct {
		pdr, delay, ctl, jain string
	}
	cells := parSweep(o, arms, func(_ runner.Run, a arm) cell {
		spec := scenario.DefaultSpec()
		spec.Seed = o.Seed
		spec.Nodes = scaleInt(160, o.Scale, 64)
		spec.Groups = 1
		spec.MembersPerGroup = scaleInt(15, o.Scale, 8)
		if a.speed == 0 {
			spec.Mobility = scenario.Static
		} else {
			spec.Mobility = scenario.Waypoint
			spec.MinSpeed = 1
			spec.MaxSpeed = float64(a.speed)
			spec.Pause = 2
		}
		w := must(scenario.Build(spec))
		warm := scaleDur(12, o.Scale, 10)
		stk := must(w.Protocol(a.proto))
		stk.Start()
		w.WarmUp(warm)
		m := stackTraffic(w, stk, 0, packets, 512, 0.5)
		stk.Stop()
		elapsed := w.Sim.Now() - warm
		return cell{
			pdr:   Pct(m.pdr()),
			delay: F(m.delays.Mean() * 1000),
			ctl:   F(controlPerNodeSecond(w, elapsed)),
			jain:  F(stats.JainIndex(w.Net.ForwardLoads())),
		}
	})
	for pi, proto := range protos {
		pdrRow := []string{proto}
		delayRow := []string{proto}
		ctlRow := []string{proto}
		jainRow := []string{proto}
		for si := range speeds {
			c := cells[pi*len(speeds)+si]
			pdrRow = append(pdrRow, c.pdr)
			delayRow = append(delayRow, c.delay)
			ctlRow = append(ctlRow, c.ctl)
			jainRow = append(jainRow, c.jain)
		}
		pdrT.AddRow(pdrRow...)
		delayT.AddRow(delayRow...)
		ctlT.AddRow(ctlRow...)
		jainT.AddRow(jainRow...)
	}
	pdrT.Note("flooding is the delivery upper bound; hvdb should stay close at far lower data cost")
	ctlT.Note("dsm floods every node's position network-wide: the paper's non-scalable reference point")
	return []*Table{pdrT, delayT, ctlT, jainT}
}

func intHeaders(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}
