package experiment

// The Scale family measures how far the simulator itself scales: the
// paper evaluates 200-600 node worlds, and the hot-path work in
// internal/des and internal/network (pooled event heap, incremental
// spatial index, interned accounting) exists precisely to open
// 10,000-node scenarios. The "scale" experiment reports the
// deterministic protocol-side metrics per population; ScaleBench wraps
// the same worlds with wall-clock and allocation measurement for the
// BENCH_scale.json baseline emitted by `hvdbbench -json`.

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/des"
	"repro/internal/membership"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// scaleConfig is one population of the scale sweep. Arena side grows
// with the node count so spatial density stays near the paper's running
// example (200 nodes on 2000 m); sides are multiples of one hypercube
// block (4 VCs) so the logical decomposition stays regular.
type scaleConfig struct {
	nodes int
	arena float64
	// cell overrides the VC tile side; 0 keeps the spec default (250 m).
	// The mega worlds widen cells so the anchor backbone stays near the
	// 56x56 grid of the 10k point instead of growing quadratically.
	cell float64
}

// DefaultMaxNodes caps the scale sweep at the largest population the
// standard CI environment is provisioned for. The 1M point runs only
// when a caller raises Options.MaxNodes (the nightly job's -maxnodes
// knob).
const DefaultMaxNodes = 100000

// scaleConfigs returns the sweep: the paper's population up to the 10k
// target at full scale plus the mega-scale points up to o.MaxNodes, two
// miniature worlds at quick scale. Node counts ascend, so the MaxNodes
// cut always drops a suffix and every surviving config keeps its sweep
// index — and with it its positional seed.
func scaleConfigs(o Options) []scaleConfig {
	if o.Scale < 1 {
		return []scaleConfig{{nodes: 100, arena: 1500}, {nodes: 250, arena: 2250}}
	}
	all := []scaleConfig{
		{nodes: 200, arena: 2000},
		{nodes: 1000, arena: 4000},
		{nodes: 5000, arena: 10000},
		{nodes: 10000, arena: 14000},
		// Mega worlds: constant ~51 nodes/km^2 density, constant 56x56
		// VC backbone via wider cells (arena = 56 cells exactly).
		{nodes: 50000, arena: 31360, cell: 560},
		{nodes: 100000, arena: 44240, cell: 790},
		{nodes: 1000000, arena: 140000, cell: 2500},
	}
	max := o.MaxNodes
	if max <= 0 {
		max = DefaultMaxNodes
	}
	n := len(all)
	for n > 0 && all[n-1].nodes > max {
		n--
	}
	return all[:n]
}

// scaleSpec builds the scenario of one sweep point: anchored CHs,
// default waypoint mobility, one group of 20 members (10 in the
// miniature worlds) drawn from the mobile population.
func scaleSpec(seed uint64, c scaleConfig, shards int) scenario.Spec {
	spec := scenario.DefaultSpec()
	spec.Seed = seed
	spec.Nodes = c.nodes
	spec.ArenaSize = c.arena
	spec.Groups = 1
	spec.MembersPerGroup = 20
	if c.nodes < 200 {
		spec.MembersPerGroup = 10
	}
	spec.Shards = shards
	if c.cell > 0 {
		spec.CellSize = c.cell
	}
	return spec
}

// Scale timing: warm the protocol stack (the membership planes need
// their MNT/HT rounds to converge before delivery is meaningful), then
// a CBR phase, then drain.
const (
	scaleWarmBase  des.Duration = 15
	scaleDrainBase des.Duration = 5
	// scaleRefArena is the 10k row's arena side: the largest world whose
	// geo paths fit the base warmup/drain windows. Every paper-faithful
	// population sits at or below it and keeps the recorded timing
	// exactly.
	scaleRefArena              = 14000.0
	scalePackets               = 10
	scalePayload               = 512
	scaleGap      des.Duration = 0.5
)

// scaleTiming returns one sweep point's warmup and drain windows.
// Geo-routed path length grows with arena diameter, so the mega worlds
// (arena > scaleRefArena) scale both windows linearly with arena side,
// rounded up to whole simulated seconds — otherwise deliveries outlive
// the observation window and the recorded PDR measures the cutoff, not
// the protocol (the pre-PR-10 mega rows sagged to 71.5% at N=100k for
// exactly that reason). Rows at or below the reference arena keep the
// base 15 s + 5 s bit-exactly, so their recorded tables never move.
func scaleTiming(c scaleConfig) (warm, drain des.Duration) {
	warm, drain = scaleWarmBase, scaleDrainBase
	if c.arena > scaleRefArena {
		f := c.arena / scaleRefArena
		warm = des.Duration(math.Ceil(float64(scaleWarmBase) * f))
		drain = des.Duration(math.Ceil(float64(scaleDrainBase) * f))
	}
	return warm, drain
}

// scaleResult carries the deterministic outcomes of one scale world.
type scaleResult struct {
	total    int // nodes including anchors
	clusters int
	events   uint64
	m        *runMetrics
	ctrlPNS  float64 // control bytes/node/second over the whole run
	simEnd   des.Time
}

// runScaleWorld drives one population end to end. Everything it returns
// is a pure function of (seed, config) — independent of shards, which
// only changes how the same event sequence is scheduled onto cores, and
// of sample, which only changes how often the host observes the run —
// so the sweep parallelizes with byte-identical tables at any worker or
// shard count, sampled or not.
//
// A non-nil sample is invoked at ~1-simulated-second barriers (the
// kernel contract makes chunked RunUntil event-identical to a single
// call); benchScalePoint uses it to track peak heap.
func runScaleWorld(seed uint64, c scaleConfig, shards int, sample func()) scaleResult {
	w := must(scenario.Build(scaleSpec(seed, c, shards)))
	if shards > 1 && w.Eng == nil {
		panic(fmt.Sprintf("experiment: scale world declined shards=%d: %s", shards, w.ShardNote))
	}
	stk := must(w.Protocol("hvdb"))
	stk.Start()
	warm, drain := scaleTiming(c)
	runSampled(w, warm, sample) // no traffic reset: ctrlPNS covers the whole run
	m := newRunMetrics(w.Sim)
	stk.Deliveries(m.observe)
	src := w.RandomSource()
	g := membership.Group(0)
	w.CBR(func() uint64 {
		uid := stk.Send(src, g, scalePayload)
		m.expect(uid, len(w.Members[g]))
		return uid
	}, scaleGap, scalePackets)
	runSampled(w, w.Sim.Now()+scaleGap*des.Duration(scalePackets)+drain, sample)
	stk.Stop()
	return scaleResult{
		total:    w.Net.Len(),
		clusters: len(w.CM.Heads()),
		events:   w.Sim.Executed(),
		m:        m,
		ctrlPNS:  controlPerNodeSecond(w, w.Sim.Now()),
		simEnd:   w.Sim.Now(),
	}
}

// runSampled advances the world to deadline, in ~1-simulated-second
// chunks when a sampler is installed so the host can observe memory at
// quiet barriers. The chunking itself is invisible to the simulation:
// RunUntil(a); RunUntil(b) executes the identical event sequence as
// RunUntil(b).
func runSampled(w *scenario.World, deadline des.Time, sample func()) {
	if sample == nil {
		w.RunUntil(deadline)
		return
	}
	const step = des.Duration(1)
	for t := w.Sim.Now() + step; t < deadline; t += step {
		w.RunUntil(t)
		sample()
	}
	w.RunUntil(deadline)
	sample()
}

// Scale regenerates the scale table: protocol behavior as the world
// grows from the paper's population to 10,000 nodes.
func Scale(o Options) []*Table {
	configs := scaleConfigs(o)
	rows := parSweep(o, configs, func(r runner.Run, c scaleConfig) []string {
		res := runScaleWorld(r.Seed, c, o.Shards, nil)
		return []string{
			I(c.nodes), I(res.total), I(int(c.arena)), I(res.clusters),
			U(res.events), Pct(res.m.pdr()),
			F(res.m.delays.Mean() * 1000), F(res.ctrlPNS),
		}
	})
	t := &Table{
		ID:    "scale",
		Title: "simulator scale sweep: 10 CBR multicast packets per population",
		Columns: []string{
			"mobile", "total", "arena_m", "clusters",
			"events", "pdr", "delay_ms", "ctrl_B/node/s",
		},
	}
	addRows(t, rows)
	t.Note("arena grows with population (constant density ~%d nodes/km^2); events = kernel events over %gs simulated at arenas <= %gm, warmup/drain scaling with arena side beyond it", 50, float64(scaleWarmBase)+float64(scalePackets)*float64(scaleGap)+float64(scaleDrainBase), scaleRefArena)
	t.Note("wall-clock and allocation figures for the same worlds come from `hvdbbench -json` (BENCH_scale.json)")
	return []*Table{t}
}

// ScalePoint is one measured entry of the scale benchmark: the
// deterministic world outcomes plus the host-side performance of
// simulating it (these vary by machine and are therefore not part of
// the experiment's table contract). Shards and GoMaxProcs record the
// kernel configuration the point was measured under; Events must be
// identical across points that differ only in those two fields — the
// perf-smoke gate enforces exactly that.
type ScalePoint struct {
	Nodes          int     `json:"nodes"`
	TotalNodes     int     `json:"total_nodes"`
	ArenaM         float64 `json:"arena_m"`
	Shards         int     `json:"shards"`
	GoMaxProcs     int     `json:"go_max_procs"`
	SimSeconds     float64 `json:"sim_seconds"`
	Events         uint64  `json:"events"`
	DeliveryRatio  float64 `json:"delivery_ratio"`
	WallSeconds    float64 `json:"wall_seconds"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	// PeakHeapBytes is the highest live-heap growth over the pre-run
	// baseline observed at ~1-simulated-second barriers (and at the end
	// of the run); BytesPerNode divides it by the total node count. Both
	// are host-side figures like WallSeconds, outside the table contract.
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	BytesPerNode  float64 `json:"bytes_per_node"`
}

// benchShardCounts is the shard axis of the BENCH_scale.json baseline:
// the serial kernel and the default sharded configuration.
var benchShardCounts = []int{1, 4}

// ScaleBench runs the scale sweep serially (one world at a time, so
// wall-clock and allocation deltas are attributable) and returns the
// per-population performance baseline. With o.Shards zero every
// population is measured at each benchShardCounts setting (the baseline
// contract: a serial and a shards=4 point per N); a positive o.Shards
// measures only that configuration.
func ScaleBench(o Options) []ScalePoint {
	counts := benchShardCounts
	if o.Shards > 0 {
		counts = []int{o.Shards}
	}
	var out []ScalePoint
	for i, c := range scaleConfigs(normalizeScaleOpts(o)) {
		for _, k := range counts {
			o.Shards = k
			out = append(out, benchScalePoint(o, i, c))
		}
	}
	return out
}

// ScaleBenchN runs the single sweep point with the given mobile-node
// population at o.Shards (0 or 1 = serial) — the CI perf-smoke gate
// measures the N=1000 and N=5000 worlds at both baseline shard counts.
// The point's seed is derived from its position in the full sweep, so
// the measured world is identical to that row of ScaleBench (and to the
// committed BENCH_scale.json entry).
func ScaleBenchN(o Options, nodes int) (ScalePoint, error) {
	for i, c := range scaleConfigs(normalizeScaleOpts(o)) {
		if c.nodes == nodes {
			return benchScalePoint(o, i, c), nil
		}
	}
	return ScalePoint{}, fmt.Errorf("experiment: no scale sweep point with %d nodes", nodes)
}

func normalizeScaleOpts(o Options) Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// benchScalePoint measures one sweep point: deterministic world
// outcomes plus wall-clock and allocation deltas around the run.
func benchScalePoint(o Options, i int, c scaleConfig) ScalePoint {
	o = normalizeScaleOpts(o)
	shards := o.Shards
	if shards < 1 {
		shards = 1
	}
	seed := runner.DeriveSeed(o.Seed, i)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	peak := m0.HeapAlloc
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	start := time.Now() //hvdb:wallclock benchmark timing around a finished run; wall/events-per-second never feeds simulation state or the deterministic table columns
	res := runScaleWorld(seed, c, shards, sample)
	wall := time.Since(start).Seconds() //hvdb:wallclock benchmark timing, pairs with the start stamp above
	runtime.ReadMemStats(&m1)
	p := ScalePoint{
		Nodes:         c.nodes,
		TotalNodes:    res.total,
		ArenaM:        c.arena,
		Shards:        shards,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		SimSeconds:    float64(res.simEnd),
		Events:        res.events,
		DeliveryRatio: res.m.pdr(),
		WallSeconds:   wall,
	}
	if wall > 0 {
		p.EventsPerSec = float64(res.events) / wall
	}
	if res.events > 0 {
		p.AllocsPerEvent = float64(m1.Mallocs-m0.Mallocs) / float64(res.events)
		p.BytesPerEvent = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(res.events)
	}
	p.PeakHeapBytes = peak - m0.HeapAlloc
	if res.total > 0 {
		p.BytesPerNode = float64(p.PeakHeapBytes) / float64(res.total)
	}
	return p
}
