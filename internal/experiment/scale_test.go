package experiment

import (
	"testing"

	"repro/internal/membership"
	"repro/internal/scenario"
)

// TestScaleSmoke is the acceptance gate of the 10k-node tentpole: a
// 10,000-mobile-node world (plus its 3,136 anchor CHs) runs the full
// protocol stack with CBR multicast traffic for 60 simulated seconds
// and completes. Before the incremental spatial index and the pooled
// event kernel, this configuration did not finish within a CI budget at
// all; the test existing and passing is the regression fence.
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("10,000-node world skipped with -short")
	}
	cfg := scaleConfig{nodes: 10000, arena: 14000}
	w, err := scenario.Build(scaleSpec(1, cfg, 1))
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	w.WarmUp(15)
	m := newRunMetrics(w.Sim)
	w.MC.OnDeliver(m.observe)
	src := w.RandomSource()
	g := membership.Group(0)
	w.CBR(func() uint64 {
		uid := w.MC.Send(src, g, 512)
		m.expect(uid, len(w.Members[g]))
		return uid
	}, 1.0, 30)
	w.Sim.RunUntil(60)
	w.Stop()

	if got := w.Net.Len(); got < 13000 {
		t.Fatalf("world has %d nodes, want >= 13000", got)
	}
	if w.Sim.Now() < 60 {
		t.Fatalf("run stopped at t=%v, want 60 simulated seconds", w.Sim.Now())
	}
	if w.Sim.Executed() == 0 {
		t.Fatal("no events executed")
	}
	if len(w.CM.Heads()) == 0 {
		t.Fatal("no clusters formed")
	}
	if m.delivered == 0 {
		t.Fatal("no multicast deliveries in 60 simulated seconds")
	}
	t.Logf("10k world: %d events, %d clusters, pdr %.1f%%",
		w.Sim.Executed(), len(w.CM.Heads()), 100*m.pdr())
}

// TestScaleQuickTable checks the structural contract of the scale
// experiment at quick size (the determinism sweep covers the rest).
func TestScaleQuickTable(t *testing.T) {
	tables := Scale(QuickOptions())
	if len(tables) != 1 {
		t.Fatalf("scale produced %d tables, want 1", len(tables))
	}
	if got := len(tables[0].Rows); got != len(scaleConfigs(QuickOptions())) {
		t.Fatalf("scale table has %d rows, want one per population", got)
	}
}

// TestScaleConfigsMaxNodesSuffix pins the seed-stability contract of
// the MaxNodes cap: capping the sweep only drops a suffix, so every
// surviving population keeps its sweep index (and positional seed).
func TestScaleConfigsMaxNodesSuffix(t *testing.T) {
	full := scaleConfigs(Options{Scale: 1, MaxNodes: 1 << 30})
	if n := len(full); n != 7 || full[n-1].nodes != 1000000 {
		t.Fatalf("uncapped sweep = %+v, want 7 points up to 1M", full)
	}
	def := scaleConfigs(Options{Scale: 1})
	if n := len(def); n != 6 || def[n-1].nodes != 100000 {
		t.Fatalf("default sweep = %+v, want 6 points up to the %d cap", def, DefaultMaxNodes)
	}
	for i := range def {
		if def[i] != full[i] {
			t.Fatalf("capping reordered point %d: %+v vs %+v", i, def[i], full[i])
		}
	}
	for i := 1; i < len(full); i++ {
		if full[i].nodes <= full[i-1].nodes {
			t.Fatalf("sweep populations not ascending at %d: the MaxNodes suffix cut relies on it", i)
		}
	}
}

// TestScaleBenchShape checks ScaleBench fills the performance fields
// the BENCH_scale.json baseline publishes: one serial and one shards=4
// point per population, with identical event counts inside each pair.
func TestScaleBenchShape(t *testing.T) {
	pts := ScaleBench(QuickOptions())
	if want := len(scaleConfigs(QuickOptions())) * len(benchShardCounts); len(pts) != want {
		t.Fatalf("%d bench points, want %d (one per population per shard count)", len(pts), want)
	}
	events := map[int]uint64{}
	for _, p := range pts {
		if p.Events == 0 || p.WallSeconds <= 0 || p.EventsPerSec <= 0 {
			t.Fatalf("bench point %+v missing performance measurements", p)
		}
		if p.TotalNodes < p.Nodes {
			t.Fatalf("bench point %+v: total below mobile population", p)
		}
		if p.Shards < 1 || p.GoMaxProcs < 1 {
			t.Fatalf("bench point %+v missing kernel configuration", p)
		}
		if prev, ok := events[p.Nodes]; ok && prev != p.Events {
			t.Fatalf("N=%d events differ across shard counts: %d vs %d", p.Nodes, prev, p.Events)
		}
		events[p.Nodes] = p.Events
	}
}

// TestScaleShardEventEquality is the experiment-layer shard gate: the
// same scale world executes exactly the same event sequence at shard
// counts 1, 2, and 4 — not just the same count, the same measured
// metrics to the last bit.
func TestScaleShardEventEquality(t *testing.T) {
	cfg := scaleConfigs(QuickOptions())[1] // 250 nodes: big enough for real traffic
	type fp struct {
		events uint64
		pdr    float64
		ctrl   float64
	}
	var base fp
	for i, k := range []int{1, 2, 4} {
		res := runScaleWorld(1, cfg, k, nil)
		got := fp{events: res.events, pdr: res.m.pdr(), ctrl: res.ctrlPNS}
		if i == 0 {
			base = got
			continue
		}
		if got != base {
			t.Fatalf("shards=%d diverged: %+v vs serial %+v", k, got, base)
		}
	}
	// The memory sampler chunks RunUntil at ~1 s barriers; the chunking
	// must be invisible to the simulation.
	calls := 0
	res := runScaleWorld(1, cfg, 1, func() { calls++ })
	got := fp{events: res.events, pdr: res.m.pdr(), ctrl: res.ctrlPNS}
	if got != base {
		t.Fatalf("sampled run diverged: %+v vs unsampled %+v", got, base)
	}
	if calls == 0 {
		t.Fatal("sampler never invoked")
	}
}
