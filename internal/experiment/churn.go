package experiment

import (
	"repro/internal/des"
	"repro/internal/network"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// ClaimChurn evaluates dynamic group membership — the axis on which the
// paper dismisses SGM ("this protocol is more suitable for the groups in
// which the group membership is static") and claims its summary plane
// handles joins and leaves through periodic refresh. The experiment
// sweeps the churn rate (member replacements per second) and measures
// the delivery ratio against the *current* membership at each send, plus
// the staleness-induced leakage (deliveries to nodes that had already
// left).
//
// The scenario engine implements the same send-time-audience semantics
// for scripted runs (scenario.RunScript: scheduleMemberChurn plus the
// audience snapshot in scriptRun.send/onDeliver); this experiment keeps
// its hand-rolled loop so its recorded tables stay byte-stable. Changes
// to either audience model should be mirrored in the other.
func ClaimChurn(o Options) []*Table {
	t := &Table{
		ID:    "C6",
		Title: "group dynamics: delivery under membership churn",
		Columns: []string{"churn (changes/s)", "PDR (current members)", "stale deliveries",
			"mean delay (ms)"},
	}
	packets := scaleInt(30, o.Scale, 10)
	// One independent world per churn rate.
	rows := parSweep(o, []float64{0, 8, 4, 2}, func(_ runner.Run, churnPeriod float64) []string {
		spec := scenario.DefaultSpec()
		spec.Seed = o.Seed
		spec.Nodes = scaleInt(160, o.Scale, 64)
		spec.Groups = 1
		spec.MembersPerGroup = scaleInt(12, o.Scale, 8)
		spec.Mobility = scenario.Static
		w := must(scenario.Build(spec))
		stk := must(w.Protocol("hvdb"))
		stk.Start()
		w.WarmUp(14)

		// Membership set mirrors the service's ground truth.
		current := map[network.NodeID]bool{}
		for _, id := range w.Members[0] {
			current[id] = true
		}
		// Churn: every churnPeriod seconds one member leaves and one
		// non-member joins.
		churnRate := 0.0
		if churnPeriod > 0 {
			churnRate = 2 / churnPeriod // one leave + one join
			var tick func()
			tick = func() {
				// Deterministic leaver: the lowest current member ID
				// (map iteration order would break reproducibility).
				var leaver network.NodeID = network.NoNode
				for id := range current {
					if leaver == network.NoNode || id < leaver {
						leaver = id
					}
				}
				if leaver != network.NoNode {
					stk.Leave(leaver, 0)
					delete(current, leaver)
				}
				for tries := 0; tries < 50; tries++ {
					cand := w.Ordinary[w.Rng.Pick(len(w.Ordinary))]
					if !current[cand] {
						stk.Join(cand, 0)
						current[cand] = true
						break
					}
				}
				w.Sim.After(des.Duration(churnPeriod), tick)
			}
			w.Sim.After(des.Duration(churnPeriod), tick)
		}

		// Per-send audience snapshot.
		audience := map[uint64]map[network.NodeID]bool{}
		delivered, stale := 0, 0
		var delays stats.LogHist
		stk.Deliveries(func(member network.NodeID, uid uint64, born des.Time, hops int) {
			aud, ok := audience[uid]
			if !ok {
				return
			}
			if aud[member] {
				delivered++
				delays.Add(float64(w.Sim.Now() - born))
			} else {
				stale++
			}
		})
		expected := 0
		src := w.RandomSource()
		w.CBR(func() uint64 {
			uid := stk.Send(src, 0, 256)
			if uid != 0 {
				snap := make(map[network.NodeID]bool, len(current))
				for id := range current {
					snap[id] = true
				}
				audience[uid] = snap
				expected += len(snap)
			}
			return uid
		}, 1, packets)
		w.Sim.RunUntil(w.Sim.Now() + des.Duration(packets) + 6)
		stk.Stop()

		pdr := 0.0
		if expected > 0 {
			pdr = float64(delivered) / float64(expected)
		}
		return []string{F(churnRate), Pct(pdr), I(stale), F(delays.Mean() * 1000)}
	})
	addRows(t, rows)
	t.Note("membership refresh cadence: local 1 s, MNT 2 s, HT 8 s; churned joins propagate within ~1 MNT period in-cube")
	t.Note("stale deliveries = packets reaching nodes that had left (bounded by the refresh cadence)")
	return []*Table{t}
}
