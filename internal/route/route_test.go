package route

import (
	"testing"

	"repro/internal/des"
	"repro/internal/logicalid"
)

func TestCacheHitMissAndVersionReplacement(t *testing.T) {
	var c Cache
	v1 := Versions{Topo: 1, Summary: 1}
	k := MeshKey{Group: 0, Root: 2, Slot: 7}
	computes := 0
	compute := func() MeshTree {
		computes++
		return MeshTree{2: 2}
	}

	t1 := c.MeshTree(v1, k, compute)
	if computes != 1 || c.Misses != 1 || c.Hits != 0 {
		t.Fatalf("first lookup: computes=%d hits=%d misses=%d", computes, c.Hits, c.Misses)
	}
	t2 := c.MeshTree(v1, k, compute)
	if computes != 1 || c.Hits != 1 {
		t.Fatalf("second lookup should hit: computes=%d hits=%d", computes, c.Hits)
	}
	// Hits share the stored tree: caching is memoization, not copying.
	if len(t1) != 1 || len(t2) != 1 || t2[2] != 2 {
		t.Fatalf("hit returned wrong tree %v", t2)
	}

	// A version move replaces the entry in place — no unbounded growth.
	v2 := Versions{Topo: 2, Summary: 1}
	c.MeshTree(v2, k, compute)
	if computes != 2 {
		t.Fatal("topology version move must recompute")
	}
	if c.Len() != 1 {
		t.Fatalf("stale entry not replaced: len=%d", c.Len())
	}
	c.MeshTree(Versions{Topo: 2, Summary: 9}, k, compute)
	if computes != 3 {
		t.Fatal("summary version move must recompute")
	}
}

func TestCacheKeysAreIndependent(t *testing.T) {
	var c Cache
	v := Versions{Topo: 1, Summary: 1}
	c.MeshTree(v, MeshKey{Group: 0, Root: 1, Slot: 4}, func() MeshTree { return MeshTree{1: 1} })
	c.MeshTree(v, MeshKey{Group: 1, Root: 1, Slot: 4}, func() MeshTree { return MeshTree{1: 1} })
	c.CubeSlotTree(v, CubeKey{Cube: 1, Entry: 4, Group: 0}, func() SlotTree { return SlotTree{4: 4} })
	c.CubeLabelTree(v, CubeKey{Cube: 1, Entry: 4, Group: 0}, func() LabelTree { return LabelTree{0: 0} })
	if c.Len() != 4 {
		t.Fatalf("expected 4 independent entries, got %d", c.Len())
	}
	// The same CubeKey addresses different namespaces for the two cube
	// tree families.
	if c.Misses != 4 {
		t.Fatalf("misses=%d want 4", c.Misses)
	}
}

func TestCacheBypassRecomputes(t *testing.T) {
	var c Cache
	v := Versions{Topo: 1, Summary: 1}
	k := MeshKey{Group: 0, Root: 0, Slot: 0}
	computes := 0
	compute := func() MeshTree { computes++; return nil }
	c.SetBypass(true)
	if !c.Bypassed() {
		t.Fatal("bypass flag lost")
	}
	c.MeshTree(v, k, compute)
	c.MeshTree(v, k, compute)
	if computes != 2 {
		t.Fatalf("bypass must recompute every lookup, computes=%d", computes)
	}
	if c.Len() != 0 {
		t.Fatal("bypass must not store entries")
	}
	c.SetBypass(false)
	c.MeshTree(v, k, compute)
	c.MeshTree(v, k, compute)
	if computes != 3 {
		t.Fatal("re-enabled cache should memoize again")
	}
}

func TestCacheInvalidation(t *testing.T) {
	var c Cache
	v := Versions{Topo: 1, Summary: 1}
	mk := func(g int) MeshKey { return MeshKey{Group: g, Root: 0, Slot: 0} }
	ck := func(g int) CubeKey { return CubeKey{Cube: 0, Entry: 0, Group: g} }
	for g := 0; g < 3; g++ {
		c.MeshTree(v, mk(g), func() MeshTree { return nil })
		c.CubeSlotTree(v, ck(g), func() SlotTree { return nil })
		c.CubeLabelTree(v, ck(g), func() LabelTree { return nil })
	}
	if c.Len() != 9 {
		t.Fatalf("len=%d want 9", c.Len())
	}
	c.InvalidateGroup(1)
	if c.Len() != 6 {
		t.Fatalf("group eviction left len=%d want 6", c.Len())
	}
	if c.Invalidated != 3 {
		t.Fatalf("Invalidated=%d want 3", c.Invalidated)
	}
	c.InvalidateAll()
	if c.Len() != 0 || c.Invalidated != 9 {
		t.Fatalf("InvalidateAll left len=%d invalidated=%d", c.Len(), c.Invalidated)
	}
	// Evicted keys recompute on next lookup.
	misses := c.Misses
	c.MeshTree(v, mk(0), func() MeshTree { return nil })
	if c.Misses != misses+1 {
		t.Fatal("evicted key should miss")
	}
}

func TestSnapshotMemoTTL(t *testing.T) {
	var m SnapshotMemo[int, int]
	computes := 0
	get := func(now des.Time) int {
		return m.Get(now, 2, 7, func() int { computes++; return computes })
	}
	if got := get(0); got != 1 {
		t.Fatalf("first get %d want 1", got)
	}
	if got := get(2); got != 1 {
		t.Fatalf("within TTL got %d want cached 1", got)
	}
	if m.Hits != 1 || m.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", m.Hits, m.Misses)
	}
	if got := get(2.5); got != 2 {
		t.Fatalf("past TTL got %d want recomputed 2", got)
	}
	if m.Len() != 1 {
		t.Fatalf("len=%d want 1", m.Len())
	}
}

// TestKeyTypes pins the key fields to the logical identifier types so a
// refactor cannot silently widen or narrow the cache key space.
func TestKeyTypes(t *testing.T) {
	k := MeshKey{Group: 1, Root: logicalid.HID(2), Slot: logicalid.CHID(3)}
	if k.Root != 2 || k.Slot != 3 {
		t.Fatal("mesh key fields scrambled")
	}
	ck := CubeKey{Cube: logicalid.HID(1), Entry: logicalid.CHID(2), Group: 3}
	if ck.Cube != 1 || ck.Entry != 2 {
		t.Fatal("cube key fields scrambled")
	}
}
