package route

import "repro/internal/des"

// SnapshotMemo is the TTL-stamped sibling of Cache for snapshot-based
// protocols (DSM's per-sender source trees, CBT's shared core tree): an
// entry stays valid for a fixed staleness window regardless of what the
// network does meanwhile. That staleness is protocol behavior — it is
// exactly the weakness of snapshot schemes the paper's comparison
// quantifies — so unlike Cache, a SnapshotMemo hit may legitimately
// differ from a fresh computation and there is no bypass equivalence.
type SnapshotMemo[K comparable, V any] struct {
	// Hits and Misses count lookups, mirroring Cache's counters.
	Hits, Misses uint64

	entries map[K]snapEntry[V]
}

type snapEntry[V any] struct {
	val     V
	expires des.Time
}

// Get returns the entry for k, computing and storing it with the given
// time-to-live when absent or expired at now.
func (m *SnapshotMemo[K, V]) Get(now des.Time, ttl des.Duration, k K, compute func() V) V {
	if e, ok := m.entries[k]; ok && e.expires >= now {
		m.Hits++
		return e.val
	}
	m.Misses++
	v := compute()
	if m.entries == nil {
		m.entries = make(map[K]snapEntry[V])
	}
	m.entries[k] = snapEntry[V]{val: v, expires: now + ttl}
	return v
}

// Len returns the number of stored entries (live and expired).
func (m *SnapshotMemo[K, V]) Len() int { return len(m.entries) }
