// Package route memoizes multicast-tree construction across the
// protocol plane. The HVDB data plane (internal/multicast), the QoS
// admission path (internal/qos), and the snapshot-tree baselines
// (internal/baseline) all repeatedly rebuild trees whose inputs change
// only when the backbone or the membership views change; this package
// turns those rebuilds into lookups.
//
// # Keying and the determinism argument
//
// A memoized tree is keyed by everything its construction reads:
//
//   - the cluster-topology version (cluster.Manager.Version) — CH
//     occupancy decides which mesh nodes, cube labels, and logical
//     links exist;
//   - the membership summary version (membership.Service.SummaryVersion)
//     — the MNT and MT views supply the destination sets;
//   - the group, the root (the slot whose view the tree is computed
//     from), and for cube-tier trees the hypercube.
//
// Tree construction itself is deterministic in those inputs *provided
// destination lists arrive in sorted order* (greedy MulticastTree
// output depends on destination order — see qos.treeCHs' headline
// bugfix), so a hit returns exactly what a fresh computation would
// have produced: caching is observationally invisible. SetBypass(true)
// disables lookups so tests can assert that equivalence end to end.
//
// # Invalidation
//
// Entries are replaced in place when a lookup arrives with newer
// versions, so correctness never depends on explicit invalidation.
// The Invalidate hooks exist to release stale entries eagerly — the
// protocol plane fires them on membership Join/Leave, on cluster-head
// election and failover, and on scenario partition/heal directives —
// and to keep the cache's footprint proportional to the live key set.
package route

import (
	"repro/internal/hypercube"
	"repro/internal/logicalid"
)

// Versions is the pair of input-version stamps a memoized tree is
// valid for.
type Versions struct {
	// Topo is the cluster-topology version (CH occupancy).
	Topo uint64
	// Summary is the membership summary-view version.
	Summary uint64
}

// MeshKey identifies one mesh-tier tree: the group, the root
// hypercube, and the CH slot whose MT view supplied the destinations
// (views converge independently per slot, so the slot is part of the
// input set).
type MeshKey struct {
	Group int
	Root  logicalid.HID
	Slot  logicalid.CHID
}

// CubeKey identifies one cube-tier tree: the hypercube, the entry slot
// (also the slot whose MNT view supplied the destinations), and the
// group.
type CubeKey struct {
	Cube  logicalid.HID
	Entry logicalid.CHID
	Group int
}

// MeshTree is a mesh-tier multicast tree as parent pointers over
// hypercube IDs (the root maps to itself).
type MeshTree = map[logicalid.HID]logicalid.HID

// LabelTree is a cube-tier tree over hypercube labels — the admission
// view's tree (hypercube.Cube.MulticastTree output).
type LabelTree = map[hypercube.Label]hypercube.Label

// SlotTree is a cube-tier tree over CH slots — the data plane's tree
// spanning the intra-cube logical link graph.
type SlotTree = map[logicalid.CHID]logicalid.CHID

type entry[V any] struct {
	v   Versions
	val V
}

// Memo is the version-stamped memoization primitive Cache is built
// from: at most one live entry per key, replaced when a lookup arrives
// with different versions, valid only while both stamps match. It is
// exported so consumers memoizing results *derived* from trees (the
// QoS manager's admission memo) share the same validity discipline
// instead of re-implementing it.
type Memo[K comparable, V any] struct {
	entries map[K]entry[V]
}

// Get returns the entry for k if one is stored at exactly these
// versions.
func (m *Memo[K, V]) Get(v Versions, k K) (V, bool) {
	e, ok := m.entries[k]
	if !ok || e.v != v {
		var zero V
		return zero, false
	}
	return e.val, true
}

// Put stores val for k at the given versions, replacing any previous
// entry for k.
func (m *Memo[K, V]) Put(v Versions, k K, val V) {
	if m.entries == nil {
		m.entries = make(map[K]entry[V])
	}
	m.entries[k] = entry[V]{v: v, val: val}
}

// Invalidate drops every entry whose key matches pred, returning how
// many were dropped.
func (m *Memo[K, V]) Invalidate(pred func(K) bool) int {
	n := 0
	for k := range m.entries {
		if pred(k) {
			delete(m.entries, k)
			n++
		}
	}
	return n
}

// Len returns the number of live entries.
func (m *Memo[K, V]) Len() int { return len(m.entries) }

// Cache memoizes the three tree families of the protocol plane. The
// zero value is ready to use. Returned trees are shared: callers must
// treat them as immutable (every existing consumer does — trees are
// walked, never edited).
type Cache struct {
	bypass bool

	mesh        Memo[MeshKey, MeshTree]
	cubeLabel   Memo[CubeKey, LabelTree]
	cubeLogical Memo[CubeKey, SlotTree]

	// Hits and Misses count lookups; Invalidated counts entries dropped
	// by the eager hooks (version-mismatch replacement is not counted —
	// it is the cache's normal operation).
	Hits, Misses, Invalidated uint64
}

// SetBypass disables (true) or re-enables (false) memoization: with
// bypass on every lookup recomputes. Because construction is
// deterministic in the keyed inputs, bypass must not change any
// simulation outcome — the determinism sweep asserts exactly that.
func (c *Cache) SetBypass(b bool) { c.bypass = b }

// Bypassed reports whether the cache is in bypass mode.
func (c *Cache) Bypassed() bool { return c.bypass }

// MeshTree returns the memoized mesh-tier tree for the key, computing
// it on first use at these versions.
func (c *Cache) MeshTree(v Versions, k MeshKey, compute func() MeshTree) MeshTree {
	if c.bypass {
		return compute()
	}
	if t, ok := c.mesh.Get(v, k); ok {
		c.Hits++
		return t
	}
	c.Misses++
	t := compute()
	c.mesh.Put(v, k, t)
	return t
}

// CubeLabelTree returns the memoized label-graph cube tree for the key
// (the admission path's view of Figure 6's hypercube tier).
func (c *Cache) CubeLabelTree(v Versions, k CubeKey, compute func() LabelTree) LabelTree {
	if c.bypass {
		return compute()
	}
	if t, ok := c.cubeLabel.Get(v, k); ok {
		c.Hits++
		return t
	}
	c.Misses++
	t := compute()
	c.cubeLabel.Put(v, k, t)
	return t
}

// CubeSlotTree returns the memoized logical-link-graph cube tree for
// the key (the data plane's Figure 6 step 4 tree).
func (c *Cache) CubeSlotTree(v Versions, k CubeKey, compute func() SlotTree) SlotTree {
	if c.bypass {
		return compute()
	}
	if t, ok := c.cubeLogical.Get(v, k); ok {
		c.Hits++
		return t
	}
	c.Misses++
	t := compute()
	c.cubeLogical.Put(v, k, t)
	return t
}

// InvalidateGroup eagerly drops every entry of one multicast group —
// the Join/Leave hook.
func (c *Cache) InvalidateGroup(g int) {
	n := c.mesh.Invalidate(func(k MeshKey) bool { return k.Group == g })
	n += c.cubeLabel.Invalidate(func(k CubeKey) bool { return k.Group == g })
	n += c.cubeLogical.Invalidate(func(k CubeKey) bool { return k.Group == g })
	c.Invalidated += uint64(n)
}

// InvalidateAll eagerly drops everything — the CH-churn and
// partition/heal hook.
func (c *Cache) InvalidateAll() {
	n := c.mesh.Invalidate(func(MeshKey) bool { return true })
	n += c.cubeLabel.Invalidate(func(CubeKey) bool { return true })
	n += c.cubeLogical.Invalidate(func(CubeKey) bool { return true })
	c.Invalidated += uint64(n)
}

// Len returns the number of live entries across all tree families.
func (c *Cache) Len() int {
	return c.mesh.Len() + c.cubeLabel.Len() + c.cubeLogical.Len()
}
