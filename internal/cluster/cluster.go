// Package cluster implements the mobile-node tier of the HVDB model: the
// mobility-prediction and location-based clustering of Sivavakeesar,
// Pavlou and Liotta [23] that the paper adopts. Nodes are grouped by the
// virtual circle they reside in; within each VC, a cluster head is
// elected by the paper's two criteria:
//
//  1. "it has the highest probability, in comparison to other MNs within
//     the same cluster, to stay for longer time within the cluster" —
//     realized as the longest predicted residence time from the node's
//     position and velocity;
//  2. "it has the minimum distance from the center of the cluster" —
//     the tie-break, with node ID as the final deterministic tie-break.
//
// Only CH-capable nodes are eligible, per the paper's heterogeneous
// capability assumption. Election runs periodically: every node
// broadcasts one cluster beacon (counted as control traffic), and the
// election within each VC is then evaluated from the beaconed fixes.
// The beacon exchange is collapsed to this single round rather than a
// multi-round distributed agreement; the message cost and the election
// outcome match [23], which is what the upper tiers consume.
package cluster

import (
	"math"
	"sort"

	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/gps"
	"repro/internal/network"
	"repro/internal/trace"
	"repro/internal/vcgrid"
)

// ResidenceCap is the prediction horizon in seconds: a stationary node
// predicts "forever", capped here to keep scores comparable.
const ResidenceCap = 3600.0

// ResidenceTime predicts how long a node with the given fix stays inside
// the circle, by intersecting its straight-line trajectory with the
// circle boundary. Nodes already outside return 0; (near-)stationary
// nodes return ResidenceCap.
func ResidenceTime(fix gps.Fix, c geom.Circle) float64 {
	rel := fix.Pos.Sub(c.C)
	distIn := c.R*c.R - rel.Dot(rel)
	if distIn < 0 {
		return 0
	}
	v2 := fix.Vel.Dot(fix.Vel)
	if v2 < 1e-12 {
		return ResidenceCap
	}
	// Solve |rel + v t|^2 = R^2 for the positive root.
	b := rel.Dot(fix.Vel)
	t := (-b + math.Sqrt(b*b+v2*distIn)) / v2
	if t > ResidenceCap {
		return ResidenceCap
	}
	return t
}

// Config parameterizes the clustering protocol.
type Config struct {
	// Period is the election/beacon interval in simulated seconds.
	Period des.Duration
	// BeaconSize is the on-air size of one cluster beacon in bytes.
	BeaconSize int
	// Jitter spreads node beacons uniformly over [0, Jitter) within each
	// period to avoid synchronized bursts.
	Jitter des.Duration
}

// DefaultConfig matches the 2005-era literature: 1 s beacons of ~32
// bytes (position + velocity + ID + flags).
func DefaultConfig() Config {
	return Config{Period: 1.0, BeaconSize: 32, Jitter: 0.1}
}

// ChangeFunc observes cluster-head changes in a VC: old or new may be
// network.NoNode when a VC gains its first CH or loses its only
// candidate.
type ChangeFunc func(vc vcgrid.VC, old, new network.NodeID)

// Manager runs clustering over one network.
type Manager struct {
	net  *network.Network
	grid *vcgrid.Grid
	cfg  Config
	tr   trace.Tracer

	chByVC   map[vcgrid.VC]network.NodeID
	chBySlot []network.NodeID // dense CHOf mirror of chByVC, by VC index
	vcByNode []vcgrid.VC
	isCH     []bool
	onChange []ChangeFunc

	elections uint64
	changes   uint64
	version   uint64
	ticker    *des.Ticker

	// Election scratch, reused across rounds (indexed by VC index).
	cand    []candidate
	touched []int
}

// candidate is one CH-capable node's election entry within a VC.
type candidate struct {
	id    network.NodeID
	score float64 // residence time
	dist  float64 // to VCC
}

// NewManager returns a manager for the network over the grid. Call
// Start to begin periodic elections.
func NewManager(net *network.Network, grid *vcgrid.Grid, cfg Config) *Manager {
	if cfg.Period <= 0 {
		cfg = DefaultConfig()
	}
	m := &Manager{
		net:      net,
		grid:     grid,
		cfg:      cfg,
		tr:       trace.Nop,
		chByVC:   make(map[vcgrid.VC]network.NodeID),
		chBySlot: make([]network.NodeID, grid.Count()),
		vcByNode: make([]vcgrid.VC, net.Len()),
		isCH:     make([]bool, net.Len()),
	}
	for i := range m.chBySlot {
		m.chBySlot[i] = network.NoNode
	}
	return m
}

// SetTracer installs a tracer; nil resets to no-op.
func (m *Manager) SetTracer(t trace.Tracer) {
	if t == nil {
		t = trace.Nop
	}
	m.tr = t
}

// OnChange registers a cluster-head change observer.
func (m *Manager) OnChange(f ChangeFunc) { m.onChange = append(m.onChange, f) }

// Start runs an immediate election and schedules periodic re-elections.
func (m *Manager) Start() {
	m.Elect()
	m.ticker = m.net.Sim().Every(m.cfg.Period, m.cfg.Period, m.Elect)
}

// Stop cancels periodic elections.
func (m *Manager) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
	}
}

// Elect performs one beacon round plus election. It is exported so
// experiments can drive elections directly without the ticker.
func (m *Manager) Elect() {
	m.elections++
	// Nodes may have been added since construction; grow per-node state.
	if n := m.net.Len(); n > len(m.vcByNode) {
		m.vcByNode = append(m.vcByNode, make([]vcgrid.VC, n-len(m.vcByNode))...)
		m.isCH = append(m.isCH, make([]bool, n-len(m.isCH))...)
	}
	if n := m.grid.Count(); n > len(m.cand) {
		m.cand = make([]candidate, n)
		for i := range m.cand {
			m.cand[i].id = network.NoNode
		}
	}
	// Beacon round: every live node transmits one cluster beacon. The
	// broadcast is charged to the sender; reception needs no handler
	// (the election below consumes the same fixes the beacons carry), so
	// the packet is pooled and recycled after its last delivery.
	for _, n := range m.net.Nodes() {
		if !n.Up() {
			continue
		}
		pkt := m.net.AcquirePacket()
		pkt.Kind = "cluster-beacon"
		pkt.Src, pkt.Dst = n.ID, network.NoNode
		pkt.Size, pkt.Control = m.cfg.BeaconSize, true
		pkt.UID = m.net.NextUID()
		m.net.Broadcast(n.ID, pkt)
		m.net.ReleasePacket(pkt)
	}

	// Bucket nodes by home VC and elect per VC. Winners accumulate in
	// the reused per-VC scratch; touched lists the VC indices to settle
	// and reset, keeping the round allocation-free.
	m.touched = m.touched[:0]
	for _, n := range m.net.Nodes() {
		if !n.Up() {
			continue
		}
		fix := n.Fix()
		vc := m.grid.VCOf(fix.Pos)
		m.vcByNode[n.ID] = vc
		if !n.CHCapable {
			continue
		}
		c := candidate{
			id:    n.ID,
			score: ResidenceTime(fix, m.grid.Circle(vc)),
			dist:  fix.Pos.Dist(m.grid.Center(vc)),
		}
		idx := m.grid.Index(vc)
		cur := &m.cand[idx]
		if cur.id == network.NoNode {
			m.touched = append(m.touched, idx)
			*cur = c
		} else if better(c.score, c.dist, int(c.id), cur.score, cur.dist, int(cur.id)) {
			*cur = c
		}
	}

	// Apply results in VC-index order (deterministic change
	// notifications), noting changes.
	changesBefore := m.changes
	sort.Ints(m.touched)
	newCH := make(map[vcgrid.VC]network.NodeID, len(m.touched))
	for i := range m.isCH {
		m.isCH[i] = false
	}
	for _, idx := range m.touched {
		vc := m.grid.FromIndex(idx)
		id := m.cand[idx].id
		m.cand[idx].id = network.NoNode // reset scratch for the next round
		newCH[vc] = id
		m.isCH[id] = true
		if old := m.chOr(vc); old != id {
			m.changes++
			m.notify(vc, old, id)
		}
	}
	for i := 0; i < m.grid.Count(); i++ {
		vc := m.grid.FromIndex(i)
		if old, had := m.chByVC[vc]; had {
			if _, still := newCH[vc]; !still {
				m.changes++
				m.notify(vc, old, network.NoNode)
			}
		}
	}
	m.chByVC = newCH
	// Rebuild the dense CHOf mirror (hot lookups read it instead of
	// hashing a 16-byte VC key per call).
	for i := range m.chBySlot {
		m.chBySlot[i] = network.NoNode
	}
	for vc, id := range newCH {
		m.chBySlot[m.grid.Index(vc)] = id
	}
	if m.changes != changesBefore {
		m.version++ // a new CH assignment took effect
	}
}

func better(s1, d1 float64, id1 int, s2, d2 float64, id2 int) bool {
	if s1 != s2 {
		return s1 > s2
	}
	if d1 != d2 {
		return d1 < d2
	}
	return id1 < id2
}

func (m *Manager) chOr(vc vcgrid.VC) network.NodeID {
	if !m.grid.Valid(vc) {
		return network.NoNode
	}
	return m.chBySlot[m.grid.Index(vc)]
}

func (m *Manager) notify(vc vcgrid.VC, old, new network.NodeID) {
	m.tr.Eventf(trace.Cluster, float64(m.net.Sim().Now()), "CH of %v: %d -> %d", vc, old, new)
	for _, f := range m.onChange {
		f(vc, old, new)
	}
}

// CHOf returns the current cluster head of the VC, or network.NoNode.
func (m *Manager) CHOf(vc vcgrid.VC) network.NodeID { return m.chOr(vc) }

// IsCH reports whether the node currently heads a cluster.
func (m *Manager) IsCH(id network.NodeID) bool {
	return int(id) >= 0 && int(id) < len(m.isCH) && m.isCH[id]
}

// VCOfNode returns the node's home VC as of the last election.
func (m *Manager) VCOfNode(id network.NodeID) vcgrid.VC {
	return m.vcByNode[id]
}

// Members returns the nodes whose home VC (last election) is vc,
// including the CH itself.
func (m *Manager) Members(vc vcgrid.VC) []network.NodeID {
	var out []network.NodeID
	for _, n := range m.net.Nodes() {
		if n.Up() && m.vcByNode[n.ID] == vc {
			out = append(out, n.ID)
		}
	}
	return out
}

// Heads returns the current set of (VC, CH) pairs; the map is shared —
// callers must not modify it.
func (m *Manager) Heads() map[vcgrid.VC]network.NodeID { return m.chByVC }

// Elections returns the number of election rounds run.
func (m *Manager) Elections() uint64 { return m.elections }

// Version is a monotonic counter that increments exactly when a new CH
// assignment takes effect (at the end of Elect, after the map swap).
// Layers that derive state from CH occupancy — the backbone's logical
// neighbor cache — use it as their invalidation stamp.
func (m *Manager) Version() uint64 { return m.version }

// Changes returns the cumulative number of CH changes, the cluster
// stability metric of [23].
func (m *Manager) Changes() uint64 { return m.changes }
