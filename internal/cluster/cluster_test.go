package cluster

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/gps"
	"repro/internal/mobility"
	"repro/internal/network"
	"repro/internal/radio"
	"repro/internal/vcgrid"
	"repro/internal/xrand"
)

func TestResidenceTime(t *testing.T) {
	c := geom.Circle{C: geom.Pt(0, 0), R: 100}
	// Moving east at 10 m/s from the center: exits after 10 s.
	got := ResidenceTime(gps.Fix{Pos: geom.Pt(0, 0), Vel: geom.Vec(10, 0)}, c)
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("residence %v want 10", got)
	}
	// From 50 m west of center moving east: 150 m to the east rim.
	got = ResidenceTime(gps.Fix{Pos: geom.Pt(-50, 0), Vel: geom.Vec(10, 0)}, c)
	if math.Abs(got-15) > 1e-9 {
		t.Fatalf("residence %v want 15", got)
	}
	// Stationary: capped.
	got = ResidenceTime(gps.Fix{Pos: geom.Pt(0, 0)}, c)
	if got != ResidenceCap {
		t.Fatalf("stationary residence %v want cap", got)
	}
	// Outside the circle already: zero.
	got = ResidenceTime(gps.Fix{Pos: geom.Pt(200, 0), Vel: geom.Vec(1, 0)}, c)
	if got != 0 {
		t.Fatalf("outside residence %v want 0", got)
	}
	// Moving away from near the rim: short residence.
	got = ResidenceTime(gps.Fix{Pos: geom.Pt(90, 0), Vel: geom.Vec(10, 0)}, c)
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("rim residence %v want 1", got)
	}
}

func TestResidenceTimeTangential(t *testing.T) {
	c := geom.Circle{C: geom.Pt(0, 0), R: 100}
	// Tangential motion from the center: chord of length 100 at 10 m/s.
	got := ResidenceTime(gps.Fix{Pos: geom.Pt(0, 50), Vel: geom.Vec(10, 0)}, c)
	want := math.Sqrt(100*100-50*50) / 10
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("tangential residence %v want %v", got, want)
	}
}

// buildNet places nodes at fixed positions; nodes are CH-capable unless
// listed in nonCapable.
func buildNet(positions []geom.Point, nonCapable map[int]bool) (*des.Simulator, *network.Network, *Manager) {
	sim := des.New()
	net := network.New(sim, geom.RectWH(0, 0, 1000, 1000), xrand.New(1))
	for i, p := range positions {
		net.AddNode(&mobility.Static{P: p}, radio.DefaultMN, nil, !nonCapable[i])
	}
	grid := vcgrid.New(geom.RectWH(0, 0, 1000, 1000), 250)
	m := NewManager(net, grid, DefaultConfig())
	return sim, net, m
}

func TestElectionPrefersCentralNode(t *testing.T) {
	// Two static CH-capable nodes in VC (0,0): both have capped
	// residence, so distance to the VCC (125,125) breaks the tie.
	_, _, m := buildNet([]geom.Point{
		geom.Pt(120, 120), // closer to VCC
		geom.Pt(20, 20),
	}, nil)
	m.Elect()
	if ch := m.CHOf(vcgrid.VC{CX: 0, CY: 0}); ch != 0 {
		t.Fatalf("CH = %d want 0 (closest to VCC)", ch)
	}
	if !m.IsCH(0) || m.IsCH(1) {
		t.Fatal("IsCH flags wrong")
	}
}

func TestElectionPrefersLongerResidence(t *testing.T) {
	// A moving node about to leave the VC loses to a stationary node
	// even though the mover is closer to the VCC.
	sim := des.New()
	net := network.New(sim, geom.RectWH(0, 0, 1000, 1000), xrand.New(2))
	grid := vcgrid.New(geom.RectWH(0, 0, 1000, 1000), 250)
	// Mover: at the VCC but moving fast (exits in ~17.7s).
	net.AddNode(newLinear(geom.Pt(125, 125), geom.Vec(10, 0)), radio.DefaultMN, nil, true)
	// Stayer: off-center but static (capped residence).
	net.AddNode(&mobility.Static{P: geom.Pt(60, 60)}, radio.DefaultMN, nil, true)
	m := NewManager(net, grid, DefaultConfig())
	m.Elect()
	if ch := m.CHOf(vcgrid.VC{CX: 0, CY: 0}); ch != 1 {
		t.Fatalf("CH = %d want 1 (longer residence)", ch)
	}
}

func TestNonCapableNodesNeverElected(t *testing.T) {
	_, _, m := buildNet([]geom.Point{
		geom.Pt(125, 125), // perfect position but not CH-capable
		geom.Pt(10, 10),
	}, map[int]bool{0: true})
	m.Elect()
	if ch := m.CHOf(vcgrid.VC{CX: 0, CY: 0}); ch != 1 {
		t.Fatalf("CH = %d want 1 (only capable candidate)", ch)
	}
}

func TestVCWithoutCapableNodesHasNoCH(t *testing.T) {
	_, _, m := buildNet([]geom.Point{geom.Pt(125, 125)}, map[int]bool{0: true})
	m.Elect()
	if ch := m.CHOf(vcgrid.VC{CX: 0, CY: 0}); ch != network.NoNode {
		t.Fatalf("CH = %d want NoNode", ch)
	}
}

func TestMembersAndVCOfNode(t *testing.T) {
	_, _, m := buildNet([]geom.Point{
		geom.Pt(10, 10), geom.Pt(240, 240), // VC (0,0)
		geom.Pt(260, 10), // VC (1,0)
	}, nil)
	m.Elect()
	if vc := m.VCOfNode(2); vc != (vcgrid.VC{CX: 1, CY: 0}) {
		t.Fatalf("node 2 VC %v", vc)
	}
	members := m.Members(vcgrid.VC{CX: 0, CY: 0})
	if len(members) != 2 {
		t.Fatalf("members %v want 2 nodes", members)
	}
}

func TestDownNodesExcluded(t *testing.T) {
	_, net, m := buildNet([]geom.Point{
		geom.Pt(120, 120),
		geom.Pt(20, 20),
	}, nil)
	m.Elect()
	if m.CHOf(vcgrid.VC{CX: 0, CY: 0}) != 0 {
		t.Fatal("setup: node 0 should win")
	}
	net.Node(0).Fail()
	m.Elect()
	if ch := m.CHOf(vcgrid.VC{CX: 0, CY: 0}); ch != 1 {
		t.Fatalf("after failure CH = %d want 1", ch)
	}
}

func TestChangeNotificationAndCounter(t *testing.T) {
	_, net, m := buildNet([]geom.Point{
		geom.Pt(120, 120),
		geom.Pt(20, 20),
	}, nil)
	var events []network.NodeID
	m.OnChange(func(vc vcgrid.VC, old, new network.NodeID) {
		events = append(events, new)
	})
	m.Elect() // first election: NoNode -> 0
	net.Node(0).Fail()
	m.Elect() // 0 -> 1
	if len(events) != 2 || events[0] != 0 || events[1] != 1 {
		t.Fatalf("change events %v", events)
	}
	if m.Changes() != 2 {
		t.Fatalf("Changes=%d want 2", m.Changes())
	}
	if m.Elections() != 2 {
		t.Fatalf("Elections=%d want 2", m.Elections())
	}
}

func TestVCDisappearanceNotifies(t *testing.T) {
	_, net, m := buildNet([]geom.Point{geom.Pt(125, 125)}, nil)
	lost := false
	m.OnChange(func(vc vcgrid.VC, old, new network.NodeID) {
		if new == network.NoNode {
			lost = true
		}
	})
	m.Elect()
	net.Node(0).Fail()
	m.Elect()
	if !lost {
		t.Fatal("losing the only candidate should notify NoNode")
	}
}

func TestBeaconTrafficAccounted(t *testing.T) {
	sim, net, m := buildNet([]geom.Point{
		geom.Pt(10, 10), geom.Pt(100, 100), geom.Pt(500, 500),
	}, nil)
	m.Elect()
	sim.Run()
	st := net.Stats()
	if st.KindTx["cluster-beacon"] != 3 {
		t.Fatalf("beacons sent %d want 3", st.KindTx["cluster-beacon"])
	}
	if st.ControlBytes != 3*uint64(DefaultConfig().BeaconSize) {
		t.Fatalf("control bytes %d", st.ControlBytes)
	}
}

func TestPeriodicElections(t *testing.T) {
	sim, _, m := buildNet([]geom.Point{geom.Pt(125, 125)}, nil)
	m.Start()
	sim.SetHorizon(5.5)
	sim.Run()
	m.Stop()
	// Start fires immediately and then each 1 s period: t=0 plus 1..5.
	if e := m.Elections(); e != 6 {
		t.Fatalf("Elections=%d want 6", e)
	}
}

func TestStableClustersUnderGroupMobility(t *testing.T) {
	// Nodes moving as one group should keep one stable CH per VC far
	// more often than not: low change count relative to elections.
	sim := des.New()
	net := network.New(sim, geom.RectWH(0, 0, 1000, 1000), xrand.New(5))
	rng := xrand.New(6)
	grid := vcgrid.New(geom.RectWH(0, 0, 1000, 1000), 250)
	g := mobility.NewGroup(geom.RectWH(100, 100, 800, 800), 2, 3, 0, rng.Split())
	for i := 0; i < 8; i++ {
		net.AddNode(g.Member(geom.Vec(float64(i)*8, 0), 3, rng.Split()), radio.DefaultMN, nil, true)
	}
	m := NewManager(net, grid, DefaultConfig())
	m.Start()
	sim.SetHorizon(60)
	sim.Run()
	if m.Elections() < 50 {
		t.Fatalf("elections %d", m.Elections())
	}
	// The group spans at most a couple of VCs; CH changes should be far
	// rarer than elections.
	if m.Changes() > m.Elections() {
		t.Fatalf("cluster instability: %d changes in %d elections", m.Changes(), m.Elections())
	}
}

// linear is a constant-velocity mobility model for tests.
type linear struct {
	p0 geom.Point
	v  geom.Vector
}

func newLinear(p geom.Point, v geom.Vector) *linear { return &linear{p, v} }

func (l *linear) Advance(float64)   {}
func (l *linear) PieceEnd() float64 { return math.Inf(1) }
func (l *linear) TrueFix(now float64) gps.Fix {
	return gps.Fix{Pos: l.p0.Add(l.v.Scale(now)), Vel: l.v}
}
func (l *linear) DriftBound() (speed, jump float64) {
	return math.Hypot(l.v.DX, l.v.DY), 0
}
