package scengen

import (
	"encoding/json"

	"repro/internal/scenario"
)

// defaultShrinkBudget caps predicate evaluations per Shrink call. Each
// evaluation typically reruns the failing configuration a few times,
// so the budget bounds total shrink cost, not just iteration count.
const defaultShrinkBudget = 120

// Shrink minimizes a failing script: it bisects the directive list
// (ddmin), then repeatedly halves magnitudes — start times, burst
// counts, packet counts, payload sizes, window tick counts — keeping
// every candidate Validate-clean and accepting only candidates fails
// still flags. fails may be probabilistic (a map-order bug does not
// misbehave on every rerun); it must be one-sided — returning true
// requires witnessed misbehavior — so a flaky false only ever leaves
// the result larger, never wrong. The input script is not modified,
// and the returned script still fails (in the witnessed sense).
func Shrink(sc *scenario.Script, fails func(*scenario.Script) bool, budget int) *scenario.Script {
	if budget <= 0 {
		budget = defaultShrinkBudget
	}
	s := &shrinker{fails: fails, budget: budget}
	cur := cloneScript(sc)
	cur.Directives = s.ddmin(cur.Name, cur.Directives)
	for changed := true; changed && s.budget > 0; {
		changed = false
		for i := range cur.Directives {
			for _, cand := range shrinkDirective(cur.Directives[i]) {
				trial := cloneScript(cur)
				trial.Directives[i] = cand
				if s.check(trial) {
					cur = trial
					changed = true
					break
				}
			}
		}
	}
	return cur
}

type shrinker struct {
	fails  func(*scenario.Script) bool
	budget int
}

// check spends one budget unit asking whether the candidate is valid
// and still failing.
func (s *shrinker) check(c *scenario.Script) bool {
	if s.budget <= 0 || c.Validate() != nil {
		return false
	}
	s.budget--
	return s.fails(c)
}

// ddmin is delta debugging over the directive list: try dropping
// chunks of shrinking granularity, restarting coarse whenever a drop
// sticks, until no single directive can go.
func (s *shrinker) ddmin(name string, ds []scenario.Directive) []scenario.Directive {
	n := 2
	for len(ds) > 1 && n <= len(ds) && s.budget > 0 {
		chunk := (len(ds) + n - 1) / n
		reduced := false
		for lo := 0; lo < len(ds); lo += chunk {
			hi := lo + chunk
			if hi > len(ds) {
				hi = len(ds)
			}
			trial := make([]scenario.Directive, 0, len(ds)-(hi-lo))
			trial = append(trial, ds[:lo]...)
			trial = append(trial, ds[hi:]...)
			if len(trial) > 0 && s.check(&scenario.Script{Name: name, Directives: trial}) {
				ds = trial
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(ds) {
				break
			}
			n *= 2
			if n > len(ds) {
				n = len(ds)
			}
		}
	}
	return ds
}

// shrinkDirective lists single-field reductions of one directive, most
// aggressive first. Every candidate keeps the directive valid: tick
// counts halve through Period multiples, counts floor at 1.
func shrinkDirective(d scenario.Directive) []scenario.Directive {
	var out []scenario.Directive
	add := func(f func(*scenario.Directive)) {
		c := d
		f(&c)
		if c != d && c.Validate() == nil {
			out = append(out, c)
		}
	}
	if d.At > 0 {
		add(func(c *scenario.Directive) { c.At = 0 })
		add(func(c *scenario.Directive) { c.At = d.At / 2 })
	}
	switch d.Kind {
	case scenario.KindNodeChurn, scenario.KindMemberChurn:
		if ticks := int(d.Duration / d.Period); ticks > 1 {
			add(func(c *scenario.Directive) { c.Duration = c.Period })
			add(func(c *scenario.Directive) { c.Duration = c.Period * float64(ticks/2) })
		}
	default:
		if d.Duration > 0.5 {
			add(func(c *scenario.Directive) { c.Duration = d.Duration / 2 })
		}
	}
	if d.Count > 1 {
		add(func(c *scenario.Directive) { c.Count = 1 })
		add(func(c *scenario.Directive) { c.Count = d.Count / 2 })
	}
	if d.Packets > 1 {
		add(func(c *scenario.Directive) { c.Packets = 1 })
		add(func(c *scenario.Directive) { c.Packets = d.Packets / 2 })
	}
	if d.Payload > 16 {
		add(func(c *scenario.Directive) { c.Payload = 16 })
		add(func(c *scenario.Directive) { c.Payload = d.Payload / 2 })
	}
	return out
}

func cloneScript(sc *scenario.Script) *scenario.Script {
	c := &scenario.Script{Name: sc.Name}
	c.Directives = append([]scenario.Directive(nil), sc.Directives...)
	return c
}

// ScriptJSON renders a script exactly as `hvdbsim -script` loads it:
// indented JSON with a trailing newline.
func ScriptJSON(sc *scenario.Script) []byte {
	b, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		// Script/Directive hold only plain JSON-encodable fields.
		panic("scengen: script not encodable: " + err.Error())
	}
	return append(b, '\n')
}
