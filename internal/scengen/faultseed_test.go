//go:build faultseed

// This file runs only under `go test -tags faultseed`: the build tag
// compiles a deliberate map-order iteration back into the multicast
// cube-tier fan-out (internal/multicast/faultseed_on.go), and the test
// below proves the generated-scenario harness catches it end to end —
// detection by a generated script, shrinking to a minimal timetable,
// and replayability of the emitted JSON. A fuzzer that cannot find a
// planted bug is testing nothing; CI runs this as part of fuzz-smoke.

package scengen

import (
	"testing"

	"repro/internal/multicast"
	"repro/internal/scenario"
)

// TestFaultSeedCaughtAndShrunk: the seeded fault must be (1) detected
// by a generated script within a small campaign, (2) shrunk to a
// replayable script of at most 5 directives, and (3) still failing
// after a JSON round-trip through the exact bytes `hvdbsim -script`
// would load.
func TestFaultSeedCaughtAndShrunk(t *testing.T) {
	if !multicast.FaultSeedActive {
		t.Fatal("faultseed tag set but multicast.FaultSeedActive is false; hook plumbing broken")
	}
	prof := DefaultProfile()
	// Weight traffic double: the seeded fault is in the data plane, so
	// scripts without sends cannot witness it.
	prof.Kinds = []string{
		scenario.KindTraffic, scenario.KindTraffic, scenario.KindNodeChurn,
		scenario.KindRadioLoss, scenario.KindPartition,
	}
	cfg := CampaignConfig{
		Check:        DefaultCheckConfig(),
		Profile:      prof,
		Seed:         0xfa017,
		Scripts:      40,
		MaxFailures:  1,
		ShrinkBudget: 80,
		Log:          t.Logf,
	}
	res := Campaign(cfg)
	if len(res.Failures) == 0 {
		t.Fatalf("harness missed the seeded map-order fault across %d generated scripts", res.Scripts)
	}
	f := res.Failures[0]
	t.Logf("caught at script %d (gen seed %#x):\n%s", f.Index, f.GenSeed, f.Report)
	if f.Minimized == nil {
		t.Fatal("campaign did not shrink the failure")
	}
	if n := len(f.Minimized.Directives); n > 5 {
		t.Fatalf("shrinker left %d directives, want <= 5:\n%s", n, ScriptJSON(f.Minimized))
	}
	if err := f.Minimized.Validate(); err != nil {
		t.Fatalf("minimized script invalid: %v", err)
	}

	data := ScriptJSON(f.Minimized)
	t.Logf("minimized script:\n%s", data)
	replayed, err := scenario.ParseScript(data)
	if err != nil {
		t.Fatalf("minimized script does not re-parse: %v", err)
	}

	// The fault is probabilistic per rerun (map order may coincide), so
	// witnessing is retried; any single detection proves the replayed
	// script still triggers it.
	ck := cfg.Check
	ck.Spec.Seed = f.WorldSeed
	ck.Arms = violatedArms(f.Report, ck.Arms)
	for attempt := 0; attempt < 6; attempt++ {
		if Check(ck, replayed).Failed() {
			return
		}
	}
	t.Fatal("minimized script no longer fails after the JSON round-trip")
}
