package scengen

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/des"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// campaignWorldSalt decorrelates per-script world seeds from the
// per-script generator seeds of the same campaign base.
const campaignWorldSalt = 0x46a309ed571cf2bb

// CheckConfig configures one invariant check of a script.
type CheckConfig struct {
	// Spec is the world template; every run builds a fresh world from
	// it (Spec.Seed is the world seed). It needs at least as many
	// Groups as the script references.
	Spec scenario.Spec
	// Warmup runs the control planes before the script starts.
	Warmup des.Duration
	// Arms lists the protocol arms to check; empty means hvdb only.
	Arms []string
	// Workers sizes the worker pool of the concurrent first pass; the
	// serial second pass must reproduce it byte-identically regardless.
	// Zero means 4, matching the experiment determinism sweep.
	Workers int
	// Shards lists the sharded-kernel configurations whose results must
	// reproduce the serial run byte-identically (the shards invariant);
	// empty skips the shard checks. Entries of 1 are redundant (the
	// serial pass is the reference) but harmless.
	Shards []int
}

// DefaultCheckConfig is the smoke-tier configuration: a small
// Figure 2 world with lossy ordinary radios (loss draws and capacity
// serialization make transmission order observable).
func DefaultCheckConfig() CheckConfig {
	spec := scenario.DefaultSpec()
	spec.Nodes = 60
	spec.MembersPerGroup = 10
	spec.LossProb = 0.05
	return CheckConfig{Spec: spec, Warmup: 10, Arms: []string{"hvdb"}, Workers: 4, Shards: []int{2, 4}}
}

// Invariant names reported in Violations.
const (
	// InvRun: the script must execute without error on a world that has
	// its groups (generated scripts always reference valid groups).
	InvRun = "run"
	// InvRerun: rerunning the same (spec, arm, script) must reproduce
	// the result byte-identically, including the executed-event count.
	InvRerun = "rerun"
	// InvWorkers: results must be independent of the worker count /
	// scheduling of sibling runs (the concurrent first pass must match
	// serial reruns that match each other).
	InvWorkers = "workers"
	// InvTreeCache: the route cache must be observationally invisible —
	// cache-on and cache-bypass runs must be byte-identical.
	InvTreeCache = "treecache"
	// InvShards: results must be independent of the shard count — a run
	// on the sharded kernel (Spec.Shards > 1) must reproduce the serial
	// run byte-identically, including the executed-event count; a world
	// that silently declines sharding also violates (the check would be
	// vacuous).
	InvShards = "shards"
	// InvPoolLeak: network.PooledInFlight() must be zero once the stack
	// is stopped and the simulator drained.
	InvPoolLeak = "poolleak"
	// InvStats: the stats empty-sample contract — no NaN/Inf anywhere,
	// zero deliveries mean zero delay metrics, PDR and Jain in [0,1].
	InvStats = "stats"
	// InvStream: the streaming-metrics contract — every audience entry
	// is released by script teardown (ScriptResult.AudienceOpen == 0,
	// the audience-map analogue of the pool-leak check) and the delay
	// histogram absorbed exactly one observation per counted delivery
	// (DelaySamples == Delivered). The histogram's full-state digest is
	// part of the fingerprint, so its rerun/worker/shard invariance is
	// enforced by the fp comparisons of those invariants.
	InvStream = "stream"
)

// Violation is one broken invariant on one protocol arm.
type Violation struct {
	Invariant string
	Arm       string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s/%s] %s", v.Invariant, v.Arm, v.Detail)
}

// Report is the outcome of one Check.
type Report struct {
	Script     *scenario.Script
	Violations []Violation
}

// Failed reports whether any invariant broke.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

func (r *Report) String() string {
	if !r.Failed() {
		return fmt.Sprintf("script %q: ok", r.Script.Name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "script %q: %d violation(s)", r.Script.Name, len(r.Violations))
	for _, v := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

// runOutcome is the observable result of one script run, reduced to
// exactly what the invariants compare.
type runOutcome struct {
	// fp renders every measured field at %v (shortest round-trip)
	// precision plus the executed-event count, so string equality is
	// bit equality.
	fp        string
	inflight  int
	statsErr  string
	streamErr string
	// shardNote is non-empty when the spec asked for sharding and the
	// world fell back to serial (scenario.World.ShardNote).
	shardNote string
	err       error
}

// runArm builds a fresh world from spec, plays the script through one
// protocol arm (optionally with the route cache bypassed), drains the
// simulator, and reduces the run to its outcome.
func runArm(spec scenario.Spec, arm string, sc *scenario.Script, warmup des.Duration, bypass bool) runOutcome {
	w, err := scenario.Build(spec)
	if err != nil {
		return runOutcome{err: err}
	}
	stk, err := w.Protocol(arm)
	if err != nil {
		return runOutcome{err: err}
	}
	w.BB.Trees().SetBypass(bypass)
	stk.Start()
	w.WarmUp(warmup)
	res, err := w.RunScript(stk, sc)
	if err != nil {
		return runOutcome{err: err}
	}
	stk.Stop()
	w.RunUntil(w.Sim.Now() + 5) // drain in-flight deliveries and stopped tickers
	w.Sim.Run()                 // and any stragglers past the drain window
	return runOutcome{
		fp: fmt.Sprintf("sent=%d expected=%d delivered=%d stale=%d mean=%v p50=%v p95=%v ctrl=%v jain=%v elapsed=%v events=%d delaydg=%#x audpeak=%d",
			res.Sent, res.Expected, res.Delivered, res.Stale,
			res.MeanDelay, res.P50Delay, res.P95Delay, res.CtrlPerNodeS, res.Jain, res.Elapsed,
			w.Sim.Executed(), res.DelayDigest, res.AudiencePeak),
		inflight:  w.Net.PooledInFlight(),
		statsErr:  statsContract(res),
		streamErr: streamContract(res),
		shardNote: w.ShardNote,
	}
}

// streamContract checks the streaming-metrics bookkeeping of a result;
// it returns "" when the result honors it.
func streamContract(res *scenario.ScriptResult) string {
	if res.AudienceOpen != 0 {
		return fmt.Sprintf("%d audience entries still tracked at teardown", res.AudienceOpen)
	}
	if res.DelaySamples != res.Delivered {
		return fmt.Sprintf("delay histogram absorbed %d samples for %d deliveries", res.DelaySamples, res.Delivered)
	}
	if res.AudiencePeak > res.Sent {
		return fmt.Sprintf("audience peak %d exceeds %d sends", res.AudiencePeak, res.Sent)
	}
	return ""
}

// statsContract checks the empty-sample/no-NaN contract of a result;
// it returns "" when the result honors it.
func statsContract(res *scenario.ScriptResult) string {
	fields := map[string]float64{
		"mean": res.MeanDelay, "p50": res.P50Delay, "p95": res.P95Delay,
		"ctrl": res.CtrlPerNodeS, "jain": res.Jain, "pdr": res.PDR(),
	}
	for _, name := range []string{"mean", "p50", "p95", "ctrl", "jain", "pdr"} {
		if v := fields[name]; math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Sprintf("%s is %v", name, v)
		}
	}
	if res.Delivered == 0 && (res.MeanDelay != 0 || res.P50Delay != 0 || res.P95Delay != 0) {
		return fmt.Sprintf("zero deliveries but delays %v/%v/%v", res.MeanDelay, res.P50Delay, res.P95Delay)
	}
	if pdr := res.PDR(); pdr < 0 || pdr > 1 {
		return fmt.Sprintf("pdr %v outside [0,1]", pdr)
	}
	if res.Jain < 0 || res.Jain > 1 {
		return fmt.Sprintf("jain %v outside [0,1]", res.Jain)
	}
	if res.Delivered < 0 || res.Stale < 0 || res.Delivered > res.Expected {
		return fmt.Sprintf("delivery counters inconsistent: delivered=%d expected=%d stale=%d",
			res.Delivered, res.Expected, res.Stale)
	}
	return ""
}

// Check runs one script through every configured arm and asserts the
// standing invariants: a concurrent first pass (Workers-wide, the
// worker-count-independence probe), a serial rerun that must reproduce
// each first-pass result byte-identically, a cache-bypass run on the
// hvdb arm that must match the cached one, sharded-kernel runs at
// every cfg.Shards count that must match the serial fingerprint, plus
// the pool-leak and stats contracts on every run.
func Check(cfg CheckConfig, sc *scenario.Script) *Report {
	rep := &Report{Script: sc}
	if err := sc.Validate(); err != nil {
		rep.Violations = append(rep.Violations, Violation{Invariant: InvRun, Detail: err.Error()})
		return rep
	}
	arms := cfg.Arms
	if len(arms) == 0 {
		arms = []string{"hvdb"}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	// First pass: all arms on a worker pool. The runs share nothing, so
	// any cross-run contamination shows up as a mismatch below.
	first, _ := runner.Map(runner.Config{Workers: workers}, 0, len(arms),
		func(r runner.Run) (runOutcome, error) {
			return runArm(cfg.Spec, arms[r.Index], sc, cfg.Warmup, false), nil
		})
	for i, arm := range arms {
		out := first[i]
		if out.err != nil {
			rep.Violations = append(rep.Violations, Violation{InvRun, arm, out.err.Error()})
			continue
		}
		if out.inflight != 0 {
			rep.Violations = append(rep.Violations, Violation{InvPoolLeak, arm,
				fmt.Sprintf("%d pooled packets still checked out after teardown", out.inflight)})
		}
		if out.statsErr != "" {
			rep.Violations = append(rep.Violations, Violation{InvStats, arm, out.statsErr})
		}
		if out.streamErr != "" {
			rep.Violations = append(rep.Violations, Violation{InvStream, arm, out.streamErr})
		}
		second := runArm(cfg.Spec, arm, sc, cfg.Warmup, false)
		if second.err != nil {
			rep.Violations = append(rep.Violations, Violation{InvRun, arm, second.err.Error()})
			continue
		}
		if second.fp != out.fp {
			// A third, serial run arbitrates: if it reproduces the serial
			// second run, only the pooled first pass deviated (scheduling
			// sensitivity); otherwise the run is nondeterministic outright.
			third := runArm(cfg.Spec, arm, sc, cfg.Warmup, false)
			inv := InvWorkers
			if third.fp != second.fp {
				inv = InvRerun
			}
			rep.Violations = append(rep.Violations, Violation{inv, arm,
				fmt.Sprintf("results diverged across reruns:\n  pooled: %s\n  serial: %s", out.fp, second.fp)})
			continue // fingerprints are unstable: a bypass diff would be noise
		}
		if arm == "hvdb" {
			byp := runArm(cfg.Spec, arm, sc, cfg.Warmup, true)
			if byp.err != nil {
				rep.Violations = append(rep.Violations, Violation{InvRun, arm, byp.err.Error()})
			} else if byp.fp != out.fp {
				rep.Violations = append(rep.Violations, Violation{InvTreeCache, arm,
					fmt.Sprintf("route cache changed observable behavior:\n  cached:   %s\n  bypassed: %s", out.fp, byp.fp)})
			}
		}
		// Shards invariant: the same script on the sharded kernel must
		// reproduce the serial fingerprint byte-identically at every
		// configured shard count. Only reached when the serial
		// fingerprint is stable, so a mismatch here implicates the
		// kernel, not run-to-run noise.
		for _, k := range cfg.Shards {
			if k <= 1 {
				continue
			}
			sspec := cfg.Spec
			sspec.Shards = k
			sh := runArm(sspec, arm, sc, cfg.Warmup, false)
			if sh.err != nil {
				rep.Violations = append(rep.Violations, Violation{InvRun, arm, sh.err.Error()})
				continue
			}
			if sh.shardNote != "" {
				rep.Violations = append(rep.Violations, Violation{InvShards, arm,
					fmt.Sprintf("world declined shards=%d (check would be vacuous): %s", k, sh.shardNote)})
				continue
			}
			if sh.fp != out.fp {
				// A second sharded run arbitrates: if it reproduces the
				// first, the divergence is a stable function of the shard
				// count; otherwise the sharded run itself is flaky.
				again := runArm(sspec, arm, sc, cfg.Warmup, false)
				inv := InvShards
				if again.fp != sh.fp {
					inv = InvRerun
				}
				rep.Violations = append(rep.Violations, Violation{inv, arm,
					fmt.Sprintf("shards=%d diverged from serial:\n  serial:    %s\n  shards=%d: %s", k, out.fp, k, sh.fp)})
			}
		}
	}
	return rep
}

// CampaignConfig configures a batch of generated-script checks.
type CampaignConfig struct {
	Check   CheckConfig
	Profile Profile
	// Seed is the campaign base seed: script i is generated from
	// runner.DeriveSeed(Seed, i) and checked on a world seeded with
	// runner.DeriveSeed(Seed^campaignWorldSalt, i), so campaigns are a
	// pure function of (Seed, Scripts, config).
	Seed uint64
	// Scripts is how many scripts to generate and check.
	Scripts int
	// ArmsFor, when set, overrides Check.Arms per script index — e.g.
	// cycling one baseline arm through the batch to bound cost.
	ArmsFor func(i int) []string
	// MaxFailures stops the campaign early; 0 means 1.
	MaxFailures int
	// ShrinkBudget caps predicate evaluations while minimizing each
	// failure; 0 means the Shrink default, negative disables shrinking.
	ShrinkBudget int
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// Failure is one failing script of a campaign.
type Failure struct {
	// Index and GenSeed identify the script within the campaign;
	// WorldSeed is the spec seed it was checked under.
	Index     int
	GenSeed   uint64
	WorldSeed uint64
	Script    *scenario.Script
	Report    *Report
	// Minimized is the shrunken script (nil when shrinking is disabled);
	// it still fails and replays via `hvdbsim -script`.
	Minimized *scenario.Script
}

// CampaignResult summarizes a campaign.
type CampaignResult struct {
	Scripts  int // scripts checked (may stop early at MaxFailures)
	Failures []*Failure
}

// Campaign generates and checks cfg.Scripts scripts, shrinking each
// failure to a minimal script that still fails. Same seed, same
// config: same scripts, same verdicts.
func Campaign(cfg CampaignConfig) *CampaignResult {
	prof := cfg.Profile.withDefaults()
	maxFail := cfg.MaxFailures
	if maxFail <= 0 {
		maxFail = 1
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := &CampaignResult{}
	for i := 0; i < cfg.Scripts; i++ {
		genSeed := runner.DeriveSeed(cfg.Seed, i)
		sc := prof.Generate(genSeed)
		ck := cfg.Check
		ck.Spec.Seed = runner.DeriveSeed(cfg.Seed^campaignWorldSalt, i)
		if cfg.ArmsFor != nil {
			ck.Arms = cfg.ArmsFor(i)
		}
		rep := Check(ck, sc)
		res.Scripts++
		if !rep.Failed() {
			logf("script %d/%d (seed %#x): ok", i+1, cfg.Scripts, genSeed)
			continue
		}
		logf("script %d/%d (seed %#x): FAIL\n%s", i+1, cfg.Scripts, genSeed, rep)
		f := &Failure{Index: i, GenSeed: genSeed, WorldSeed: ck.Spec.Seed, Script: sc, Report: rep}
		if cfg.ShrinkBudget >= 0 {
			// Shrink against only the arms that violated — the cheapest
			// predicate that still witnesses the failure.
			ck.Arms = violatedArms(rep, ck.Arms)
			f.Minimized = Shrink(sc, func(c *scenario.Script) bool {
				return Check(ck, c).Failed()
			}, cfg.ShrinkBudget)
			logf("minimized to %d directive(s)", len(f.Minimized.Directives))
		}
		res.Failures = append(res.Failures, f)
		if len(res.Failures) >= maxFail {
			break
		}
	}
	return res
}

// violatedArms returns the arms (in configured order) with at least
// one violation; arms defaults to hvdb-only like Check.
func violatedArms(rep *Report, arms []string) []string {
	if len(arms) == 0 {
		arms = []string{"hvdb"}
	}
	bad := make(map[string]bool, len(rep.Violations))
	for _, v := range rep.Violations {
		bad[v.Arm] = true
	}
	out := make([]string, 0, len(arms))
	for _, a := range arms {
		if bad[a] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return arms
	}
	return out
}
