package scengen

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/multicast"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// TestGenerateValidAndDeterministic checks the generator's two ground
// rules over a seed sweep: every script passes Validate (and survives
// a JSON round-trip unchanged), and the same seed always yields the
// same script.
func TestGenerateValidAndDeterministic(t *testing.T) {
	prof := DefaultProfile()
	for i := 0; i < 200; i++ {
		seed := runner.DeriveSeed(0xfeed, i)
		sc := prof.Generate(seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %#x: generated invalid script: %v\n%s", seed, err, ScriptJSON(sc))
		}
		again := prof.Generate(seed)
		if !reflect.DeepEqual(sc, again) {
			t.Fatalf("seed %#x: generation not deterministic", seed)
		}
		parsed, err := scenario.ParseScript(ScriptJSON(sc))
		if err != nil {
			t.Fatalf("seed %#x: generated script does not re-parse: %v", seed, err)
		}
		if !reflect.DeepEqual(sc, parsed) {
			t.Fatalf("seed %#x: script changed across JSON round-trip", seed)
		}
		if n := len(sc.Directives); n < prof.MinDirectives || n > prof.MaxDirectives {
			t.Fatalf("seed %#x: %d directives outside [%d, %d]", seed, n, prof.MinDirectives, prof.MaxDirectives)
		}
	}
}

// TestGenerateCoversAllKinds makes sure the default profile actually
// explores the whole directive space: across a modest seed sweep every
// kind and every traffic pattern must appear.
func TestGenerateCoversAllKinds(t *testing.T) {
	kinds := map[string]bool{}
	patterns := map[string]bool{}
	prof := DefaultProfile()
	for i := 0; i < 100; i++ {
		sc := prof.Generate(runner.DeriveSeed(7, i))
		for _, d := range sc.Directives {
			kinds[d.Kind] = true
			if d.Kind == scenario.KindTraffic {
				patterns[d.Pattern] = true
			}
		}
	}
	for _, k := range allKinds {
		if !kinds[k] {
			t.Errorf("kind %q never generated", k)
		}
	}
	for _, p := range allPatterns {
		if !patterns[p] {
			t.Errorf("pattern %q never generated", p)
		}
	}
}

// TestGenerateRespectsProfile pins the profile knobs the smoke tier
// and the fault-seed self-test rely on: kind restriction and bounds.
func TestGenerateRespectsProfile(t *testing.T) {
	prof := DefaultProfile()
	prof.Kinds = []string{scenario.KindTraffic, scenario.KindRadioLoss}
	prof.MaxPackets = 4
	prof.MaxCount = 2
	for i := 0; i < 50; i++ {
		sc := prof.Generate(runner.DeriveSeed(21, i))
		for _, d := range sc.Directives {
			if d.Kind != scenario.KindTraffic && d.Kind != scenario.KindRadioLoss {
				t.Fatalf("kind %q outside the restricted profile", d.Kind)
			}
			if d.Packets > 4 || d.Count > 2 {
				t.Fatalf("directive exceeds profile bounds: %+v", d)
			}
		}
	}
}

// smokeCampaignConfig is the CI smoke tier: small worlds, hvdb checked
// on every script, one baseline arm cycled through every fourth script
// so the non-hvdb stacks stay covered without quadrupling the cost.
func smokeCampaignConfig(scripts int) CampaignConfig {
	baselines := []string{"flooding", "dsm", "pbm", "spbm", "cbt"}
	return CampaignConfig{
		Check:   DefaultCheckConfig(),
		Profile: DefaultProfile(),
		Seed:    0x5ce9c0de,
		Scripts: scripts,
		ArmsFor: func(i int) []string {
			if i%4 == 3 {
				return []string{"hvdb", baselines[(i/4)%len(baselines)]}
			}
			return []string{"hvdb"}
		},
	}
}

// TestFuzzSmokeCampaign is the standing smoke tier: ~100 generated
// scripts (a dozen under -short) checked against the full invariant
// set. Any failure is shrunk and written to $SCENGEN_FAILDIR (or the
// test temp dir) for replay via `hvdbsim -script`; CI uploads that
// directory as an artifact.
func TestFuzzSmokeCampaign(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 12
	}
	cfg := smokeCampaignConfig(n)
	cfg.Log = t.Logf
	res := Campaign(cfg)
	if len(res.Failures) == 0 {
		if res.Scripts != n {
			t.Fatalf("campaign checked %d scripts, want %d", res.Scripts, n)
		}
		return
	}
	dir := os.Getenv("SCENGEN_FAILDIR")
	if dir == "" {
		dir = t.TempDir()
	}
	for _, f := range res.Failures {
		min := f.Minimized
		if min == nil {
			min = f.Script
		}
		path := filepath.Join(dir, fmt.Sprintf("scengen-fail-%016x.json", f.GenSeed))
		if err := os.WriteFile(path, ScriptJSON(min), 0o644); err != nil {
			t.Errorf("writing %s: %v", path, err)
		}
		t.Errorf("script %d (gen seed %#x, world seed %#x): %s\nminimized script written to %s\nreplay: go run ./cmd/hvdbsim -proto hvdb -seed %#x -script %s",
			f.Index, f.GenSeed, f.WorldSeed, f.Report, path, f.WorldSeed, path)
	}
}

// TestCampaignDeterministic reruns a slice of the smoke campaign and
// requires identical scripts and identical verdicts — the property
// that makes a CI failure reproducible on a laptop with nothing but
// the seed.
func TestCampaignDeterministic(t *testing.T) {
	n := 4
	run := func() ([]string, int) {
		cfg := smokeCampaignConfig(n)
		var scripts []string
		for i := 0; i < n; i++ {
			scripts = append(scripts, string(ScriptJSON(cfg.Profile.Generate(runner.DeriveSeed(cfg.Seed, i)))))
		}
		return scripts, len(Campaign(cfg).Failures)
	}
	s1, f1 := run()
	s2, f2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same campaign seed generated different scripts")
	}
	if f1 != f2 {
		t.Fatalf("same campaign seed produced different verdicts: %d vs %d failures", f1, f2)
	}
}

// TestFaultSeedCompiledOut guards the fuzzing machinery itself: a
// plain build must not carry the seeded determinism fault (it is
// compiled in only under -tags faultseed, for the self-test that
// proves the harness catches it).
func TestFaultSeedCompiledOut(t *testing.T) {
	if multicast.FaultSeedActive {
		t.Fatal("multicast fault seed active in a plain build; the faultseed build tag leaked")
	}
}

// FuzzScriptInvariants is the native fuzz entry point: each input is a
// generator seed, expanded to a script and checked on a tiny world.
// The committed corpus under testdata/fuzz runs as regression cases on
// every plain `go test`; `go test -fuzz FuzzScriptInvariants` searches
// new seeds.
func FuzzScriptInvariants(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(0x5ce9c0de))
	f.Add(uint64(0xffffffffffffffff))
	f.Fuzz(func(t *testing.T, seed uint64) {
		sc := DefaultProfile().Generate(seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %#x: invalid script: %v", seed, err)
		}
		cfg := DefaultCheckConfig()
		// One tiny world per input keeps seed-corpus replay cheap and
		// fuzzing throughput usable.
		cfg.Spec.ArenaSize = 1000 // 4x4 grid: one dim-4 hypercube
		cfg.Spec.Nodes = 24
		cfg.Spec.MembersPerGroup = 6
		cfg.Spec.Seed = seed
		cfg.Warmup = 8
		rep := Check(cfg, sc)
		if rep.Failed() {
			t.Fatalf("%s\nscript:\n%s", rep, ScriptJSON(sc))
		}
	})
}
