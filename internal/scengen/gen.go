// Package scengen manufactures adversarial scenario workloads and
// asserts the repo's standing invariants against them: it generates
// random valid scenario.Script timetables from a seeded profile
// (Profile, Generate), runs each one across protocol arms under the
// full determinism contract (Check), and shrinks any failing script to
// a minimal JSON timetable that `hvdbsim -script` replays directly
// (Shrink, ScriptJSON).
//
// Both shipped determinism bugs in the protocol plane were flushed out
// by *new* scenario directives, not by hand-written unit tests — this
// package turns that observation into machinery. It is wired three
// ways: Go native fuzz targets (FuzzScriptInvariants in this package,
// FuzzParseScript in internal/scenario), the `hvdbsim -fuzz N` batch
// mode for long offline campaigns, and a deterministic ~100-script CI
// smoke tier (TestFuzzSmokeCampaign).
package scengen

import (
	"fmt"
	"math"

	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/xrand"
)

// genSeedSalt decorrelates generator draws from the world-build and
// script-execution streams that use the same base seed elsewhere.
const genSeedSalt = 0x9b1a4f23c0d87e65

// Profile bounds the scripts Generate produces. Zero fields take the
// DefaultProfile values, so partial literals are safe.
type Profile struct {
	// MinDirectives and MaxDirectives bound the timetable length.
	MinDirectives, MaxDirectives int
	// MaxAt is the latest directive start time (seconds); MaxWindow the
	// longest churn/loss/partition/traffic window.
	MaxAt, MaxWindow float64
	// MaxCount bounds churn burst sizes and flash-crowd source counts.
	MaxCount int
	// MaxPackets and MaxPayload bound each traffic generator.
	MaxPackets, MaxPayload int
	// MinInterval and MaxInterval bound traffic inter-send gaps.
	MinInterval, MaxInterval float64
	// Groups is how many multicast groups directives may reference;
	// worlds checked against these scripts need at least as many.
	Groups int
	// Kinds restricts the directive kinds drawn; empty means all five.
	Kinds []string
}

// DefaultProfile sizes scripts for small smoke worlds: short horizons
// (a script's last effect lands within ~15 simulated seconds), small
// bursts, all kinds and traffic patterns enabled.
func DefaultProfile() Profile {
	return Profile{
		MinDirectives: 2, MaxDirectives: 8,
		MaxAt: 6, MaxWindow: 5,
		MaxCount: 3, MaxPackets: 10, MaxPayload: 512,
		MinInterval: 0.1, MaxInterval: 0.8,
		Groups: 1,
	}
}

// withDefaults fills zero fields from DefaultProfile.
func (p Profile) withDefaults() Profile {
	d := DefaultProfile()
	if p.MinDirectives <= 0 {
		p.MinDirectives = d.MinDirectives
	}
	if p.MaxDirectives < p.MinDirectives {
		p.MaxDirectives = p.MinDirectives + d.MaxDirectives - d.MinDirectives
	}
	if p.MaxAt <= 0 {
		p.MaxAt = d.MaxAt
	}
	if p.MaxWindow <= 0 {
		p.MaxWindow = d.MaxWindow
	}
	if p.MaxCount <= 0 {
		p.MaxCount = d.MaxCount
	}
	if p.MaxPackets <= 0 {
		p.MaxPackets = d.MaxPackets
	}
	if p.MaxPayload < 16 {
		p.MaxPayload = d.MaxPayload
	}
	if p.MinInterval <= 0 {
		p.MinInterval = d.MinInterval
	}
	if p.MaxInterval < p.MinInterval {
		p.MaxInterval = p.MinInterval + d.MaxInterval - d.MinInterval
	}
	if p.Groups <= 0 {
		p.Groups = d.Groups
	}
	return p
}

// allKinds is the draw set when Profile.Kinds is empty.
var allKinds = []string{
	scenario.KindNodeChurn, scenario.KindMemberChurn, scenario.KindTraffic,
	scenario.KindRadioLoss, scenario.KindPartition,
}

var allPatterns = []string{
	scenario.PatternCBR, scenario.PatternPoisson, scenario.PatternOnOff, scenario.PatternFlash,
}

// Generate builds a random valid script from the profile. Generation
// is deterministic and positional: directive i draws from its own
// stream runner.DeriveSeed(seed^genSeedSalt, i) (the timetable length
// from position -1), so the same seed always yields the same script
// and editing the profile's length bounds does not reshuffle the
// directives that survive. Every produced script passes Validate.
func (p Profile) Generate(seed uint64) *scenario.Script {
	p = p.withDefaults()
	hdr := xrand.New(runner.DeriveSeed(seed^genSeedSalt, -1))
	n := p.MinDirectives + hdr.Intn(p.MaxDirectives-p.MinDirectives+1)
	sc := &scenario.Script{Name: fmt.Sprintf("gen-%016x", seed)}
	for i := 0; i < n; i++ {
		rng := xrand.New(runner.DeriveSeed(seed^genSeedSalt, i))
		sc.Directives = append(sc.Directives, p.directive(rng))
	}
	return sc
}

// quantize rounds to 1/64-second steps: the JSON stays readable, and
// every value is an exact binary float, so the shrinker's halvings and
// the engine's Period arithmetic are exact.
func quantize(x float64) float64 { return math.Round(x*64) / 64 }

// directive draws one valid directive from the profile.
func (p Profile) directive(rng *xrand.Rand) scenario.Directive {
	kinds := p.Kinds
	if len(kinds) == 0 {
		kinds = allKinds
	}
	d := scenario.Directive{
		At:   quantize(rng.Range(0, p.MaxAt)),
		Kind: kinds[rng.Pick(len(kinds))],
	}
	switch d.Kind {
	case scenario.KindNodeChurn, scenario.KindMemberChurn:
		d.Count = 1 + rng.Intn(p.MaxCount)
		d.Period = quantize(rng.Range(0.25, 1.5))
		// Duration is a whole number of ticks so Period <= Duration holds
		// exactly and the shrinker can halve the tick count.
		ticks := 1 + rng.Intn(int(math.Max(1, p.MaxWindow/1.5)))
		d.Duration = d.Period * float64(ticks)
		if d.Kind == scenario.KindMemberChurn {
			d.Group = rng.Intn(p.Groups)
		}
	case scenario.KindTraffic:
		d.Group = rng.Intn(p.Groups)
		d.Pattern = allPatterns[rng.Pick(len(allPatterns))]
		d.Interval = quantize(rng.Range(p.MinInterval, p.MaxInterval))
		d.Packets = 1 + rng.Intn(p.MaxPackets)
		d.Payload = 16 + rng.Intn(p.MaxPayload-15)
		switch d.Pattern {
		case scenario.PatternCBR:
			if rng.Bool(0.5) { // unbounded half the time, like the builtins
				d.Duration = quantize(rng.Range(1, p.MaxWindow))
			}
		case scenario.PatternPoisson:
			d.Duration = quantize(rng.Range(1, p.MaxWindow))
		case scenario.PatternOnOff:
			d.Duration = quantize(rng.Range(1, p.MaxWindow))
			d.Period = quantize(rng.Range(0.2, 1.5))
		case scenario.PatternFlash:
			d.Duration = quantize(rng.Range(1, p.MaxWindow))
			d.Count = 1 + rng.Intn(p.MaxCount)
		}
	case scenario.KindRadioLoss:
		d.Loss = quantize(rng.Range(0.05, 0.9))
		d.Duration = quantize(rng.Range(0.5, p.MaxWindow))
	case scenario.KindPartition:
		d.Frac = quantize(rng.Range(0.05, 0.5))
		d.Duration = quantize(rng.Range(0.5, p.MaxWindow))
	}
	return d
}
