package network

import (
	"cmp"
	"slices"
)

// This file holds the shared deterministic-iteration helpers. The
// repository's determinism contract (DESIGN.md) forbids any map
// iteration from feeding a transmission: with nonzero radio loss every
// send draws from the sender's loss stream, so transmit order is
// observable in the recorded tables. Protocol planes therefore collect
// IDs and sort before sending; these generics replace the per-package
// copies of that helper.

// SortedIDs sorts an ID slice ascending in place and returns it. Use it
// on IDs collected from a map (members, head slots, tree nodes) before
// iterating to transmit; pass a reused scratch slice on hot paths to
// keep the round allocation-free.
func SortedIDs[ID cmp.Ordered](ids []ID) []ID {
	slices.Sort(ids)
	return ids
}

// Children appends to out the children of parent in tree — the keys
// mapping to parent, excluding parent's own self-loop entry — sorted
// ascending, and returns the extended slice. It is the shared helper
// for walking parent-pointer multicast trees in deterministic order;
// out follows the usual append contract (pass nil, or a reused scratch
// truncated to len 0).
func Children[ID cmp.Ordered](tree map[ID]ID, parent ID, out []ID) []ID {
	mark := len(out)
	for child, p := range tree {
		if p == parent && child != parent {
			out = append(out, child)
		}
	}
	slices.Sort(out[mark:])
	return out
}
