//go:build !faultseed

package network

// FaultSeedLintActive reports whether the deliberately seeded lint
// faults are compiled in (see faultseed_lint.go). Plain builds say
// false; internal/lint's fault-seed self-test asserts the tagged load
// catches both seeded bugs with full call paths.
const FaultSeedLintActive = false
