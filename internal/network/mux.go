package network

// Mux dispatches received packets to per-kind handlers, letting several
// protocol layers (clustering beacons, route maintenance, membership,
// multicast data) coexist on one node. Unknown kinds go to the fallback
// handler if one is set, else are dropped silently — the network layer
// counts every transmission, so drops remain visible in the accounting.
type Mux struct {
	handlers map[string]Handler
	fallback Handler
	aux      map[string]any

	// One-entry dispatch cache: deliveries arrive in same-kind bursts
	// (beacon rounds, membership floods, multicast storms), so most
	// dispatches resolve with one short string compare instead of a map
	// hash. Handle invalidates it.
	lastKind string
	lastH    Handler
}

// NewMux returns an empty dispatcher.
func NewMux() *Mux {
	return &Mux{handlers: make(map[string]Handler), aux: make(map[string]any)}
}

// Aux returns a value attached by SetAux, or nil. Protocol layers use it
// to share one instance per mux (e.g. the geo-routing layer).
func (m *Mux) Aux(key string) any { return m.aux[key] }

// SetAux attaches a shared value to the mux.
func (m *Mux) SetAux(key string, v any) { m.aux[key] = v }

// Handle registers h for packets of the given kind, replacing any
// previous registration.
func (m *Mux) Handle(kind string, h Handler) {
	m.handlers[kind] = h
	m.lastKind, m.lastH = "", nil
}

// HandleFallback registers the handler for kinds with no registration.
func (m *Mux) HandleFallback(h Handler) { m.fallback = h }

// Dispatch routes the packet to its handler. It has the Handler
// signature so a Mux can be installed directly via SetHandler.
func (m *Mux) Dispatch(n *Node, from NodeID, pkt *Packet) {
	if pkt.Kind == m.lastKind && m.lastH != nil {
		m.lastH(n, from, pkt)
		return
	}
	if h, ok := m.handlers[pkt.Kind]; ok {
		m.lastKind, m.lastH = pkt.Kind, h
		h(n, from, pkt)
		return
	}
	if m.fallback != nil {
		m.fallback(n, from, pkt)
	}
}

// Bind installs a fresh Mux on every node of the network and returns it.
// All nodes share the mux; per-node state lives in the protocol layers.
func Bind(w *Network) *Mux {
	m := NewMux()
	for _, n := range w.Nodes() {
		n.SetHandler(m.Dispatch)
	}
	return m
}

// BindNode installs the mux on one node (used when nodes join late).
func (m *Mux) BindNode(n *Node) { n.SetHandler(m.Dispatch) }
