package network

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/gps"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/xrand"
)

func testNet() (*des.Simulator, *Network) {
	sim := des.New()
	net := New(sim, geom.RectWH(0, 0, 1000, 1000), xrand.New(42))
	return sim, net
}

func addStatic(net *Network, x, y float64) *Node {
	return net.AddNode(&mobility.Static{P: geom.Pt(x, y)}, radio.DefaultMN, nil, false)
}

func TestAddAndLookup(t *testing.T) {
	_, net := testNet()
	a := addStatic(net, 0, 0)
	b := addStatic(net, 10, 0)
	if a.ID != 0 || b.ID != 1 {
		t.Fatalf("IDs %d %d", a.ID, b.ID)
	}
	if net.Node(0) != a || net.Node(1) != b {
		t.Fatal("lookup mismatch")
	}
	if net.Node(-1) != nil || net.Node(2) != nil {
		t.Fatal("out-of-range lookup should be nil")
	}
	if net.Len() != 2 {
		t.Fatalf("Len=%d", net.Len())
	}
}

func TestNeighbors(t *testing.T) {
	_, net := testNet()
	a := addStatic(net, 0, 0)
	b := addStatic(net, 100, 0) // within 250 m
	c := addStatic(net, 500, 0) // out of range of a, within range of b
	nbrs := net.Neighbors(a.ID)
	if len(nbrs) != 1 || nbrs[0] != b.ID {
		t.Fatalf("neighbors of a = %v want [b]", nbrs)
	}
	nbrsB := net.Neighbors(b.ID)
	if len(nbrsB) != 1 { // a is a neighbor; c is 400m away > 250
		t.Fatalf("neighbors of b = %v", nbrsB)
	}
	_ = c
}

func TestNeighborsExcludeDown(t *testing.T) {
	_, net := testNet()
	a := addStatic(net, 0, 0)
	b := addStatic(net, 100, 0)
	b.Fail()
	if nbrs := net.Neighbors(a.ID); len(nbrs) != 0 {
		t.Fatalf("down node appeared as neighbor: %v", nbrs)
	}
	b.Recover()
	if nbrs := net.Neighbors(a.ID); len(nbrs) != 1 {
		t.Fatalf("recovered node missing: %v", nbrs)
	}
}

func TestAddNodeGrowingCellSizeNoDuplicates(t *testing.T) {
	// A radio range above the initial cell size triggers a grid rebuild;
	// the just-added node must be indexed exactly once.
	_, net := testNet()
	a := addStatic(net, 0, 0)
	big := radio.Model{Range: 400, Bandwidth: 2e6, ProcDelay: 1e-3}
	b := net.AddNode(&mobility.Static{P: geom.Pt(100, 0)}, big, nil, false)
	nbrs := net.Neighbors(a.ID)
	if len(nbrs) != 1 || nbrs[0] != b.ID {
		t.Fatalf("neighbors of a = %v want exactly [%d]", nbrs, b.ID)
	}
}

func TestUnicastDelivery(t *testing.T) {
	sim, net := testNet()
	a := addStatic(net, 0, 0)
	b := addStatic(net, 100, 0)
	var got *Packet
	var from NodeID
	b.SetHandler(func(n *Node, f NodeID, pkt *Packet) { got, from = pkt, f })
	ok := net.Unicast(a.ID, b.ID, &Packet{Kind: "test", Src: a.ID, Dst: b.ID, Size: 100})
	if !ok {
		t.Fatal("in-range unicast refused")
	}
	if got != nil {
		t.Fatal("delivery should be asynchronous")
	}
	sim.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if from != a.ID || got.Hops != 1 {
		t.Fatalf("from=%v hops=%d", from, got.Hops)
	}
	if sim.Now() <= 0 {
		t.Fatal("delivery should take positive time")
	}
}

func TestUnicastOutOfRange(t *testing.T) {
	_, net := testNet()
	a := addStatic(net, 0, 0)
	b := addStatic(net, 900, 0)
	if net.Unicast(a.ID, b.ID, &Packet{Kind: "test", Size: 10}) {
		t.Fatal("out-of-range unicast accepted")
	}
}

func TestUnicastToDownNode(t *testing.T) {
	_, net := testNet()
	a := addStatic(net, 0, 0)
	b := addStatic(net, 100, 0)
	b.Fail()
	if net.Unicast(a.ID, b.ID, &Packet{Kind: "test", Size: 10}) {
		t.Fatal("unicast to down node accepted")
	}
}

func TestNodeFailsWhilePacketInFlight(t *testing.T) {
	sim, net := testNet()
	a := addStatic(net, 0, 0)
	b := addStatic(net, 100, 0)
	delivered := false
	b.SetHandler(func(*Node, NodeID, *Packet) { delivered = true })
	net.Unicast(a.ID, b.ID, &Packet{Kind: "test", Size: 1000})
	b.Fail() // goes down before the delivery event fires
	sim.Run()
	if delivered {
		t.Fatal("packet delivered to node that failed mid-flight")
	}
}

func TestBroadcast(t *testing.T) {
	sim, net := testNet()
	a := addStatic(net, 500, 500)
	received := map[NodeID]int{}
	for i := 0; i < 5; i++ {
		n := addStatic(net, 500+float64(i+1)*30, 500)
		n.SetHandler(func(n *Node, _ NodeID, _ *Packet) { received[n.ID]++ })
	}
	far := addStatic(net, 0, 0)
	far.SetHandler(func(n *Node, _ NodeID, _ *Packet) { received[n.ID]++ })
	count := net.Broadcast(a.ID, &Packet{Kind: "beacon", Src: a.ID, Size: 50, Control: true})
	if count != 5 {
		t.Fatalf("broadcast reached %d want 5", count)
	}
	sim.Run()
	if len(received) != 5 {
		t.Fatalf("delivered to %d nodes want 5", len(received))
	}
	if received[far.ID] != 0 {
		t.Fatal("out-of-range node received broadcast")
	}
	// Broadcast charges the sender exactly once.
	if a.TxPackets != 1 {
		t.Fatalf("TxPackets=%d want 1 (wireless broadcast advantage)", a.TxPackets)
	}
}

func TestAccountingControlVsData(t *testing.T) {
	sim, net := testNet()
	a := addStatic(net, 0, 0)
	b := addStatic(net, 100, 0)
	net.Unicast(a.ID, b.ID, &Packet{Kind: "ctrl", Size: 10, Control: true})
	net.Unicast(a.ID, b.ID, &Packet{Kind: "data", Size: 1000})
	sim.Run()
	st := net.Stats()
	if st.ControlBytes != 10 || st.DataBytes != 1000 {
		t.Fatalf("ctrl=%d data=%d", st.ControlBytes, st.DataBytes)
	}
	if st.KindTx["ctrl"] != 1 || st.KindTx["data"] != 1 {
		t.Fatalf("per-kind tx %v", st.KindTx)
	}
	if st.KindBytes["data"] != 1000 {
		t.Fatalf("per-kind bytes %v", st.KindBytes)
	}
}

func TestForwardLoadAccounting(t *testing.T) {
	sim, net := testNet()
	a := addStatic(net, 0, 0)
	b := addStatic(net, 100, 0)
	c := addStatic(net, 200, 0)
	// b forwards a's packet to c.
	b.SetHandler(func(n *Node, _ NodeID, pkt *Packet) {
		if pkt.Dst != n.ID {
			net.Unicast(n.ID, c.ID, pkt)
		}
	})
	net.Unicast(a.ID, b.ID, &Packet{Kind: "data", Src: a.ID, Dst: c.ID, Size: 100})
	sim.Run()
	if b.ForwardLoad != 1 {
		t.Fatalf("b.ForwardLoad=%d want 1", b.ForwardLoad)
	}
	if a.ForwardLoad != 0 {
		t.Fatalf("a.ForwardLoad=%d want 0 (originated)", a.ForwardLoad)
	}
	loads := net.ForwardLoads()
	if len(loads) != 3 {
		t.Fatalf("loads length %d", len(loads))
	}
}

func TestResetTraffic(t *testing.T) {
	sim, net := testNet()
	a := addStatic(net, 0, 0)
	b := addStatic(net, 100, 0)
	net.Unicast(a.ID, b.ID, &Packet{Kind: "x", Size: 10, Control: true})
	sim.Run()
	net.ResetTraffic()
	st := net.Stats()
	if st.ControlBytes != 0 || len(st.KindTx) != 0 || a.TxPackets != 0 || b.RxPackets() != 0 {
		t.Fatal("ResetTraffic left residue")
	}
}

func TestLossyLink(t *testing.T) {
	sim := des.New()
	net := New(sim, geom.RectWH(0, 0, 1000, 1000), xrand.New(7))
	lossy := radio.Model{Range: 250, Bandwidth: 2e6, ProcDelay: 1e-3, LossProb: 1.0}
	a := net.AddNode(&mobility.Static{P: geom.Pt(0, 0)}, lossy, nil, false)
	b := net.AddNode(&mobility.Static{P: geom.Pt(100, 0)}, radio.DefaultMN, nil, false)
	delivered := false
	b.SetHandler(func(*Node, NodeID, *Packet) { delivered = true })
	if !net.Unicast(a.ID, b.ID, &Packet{Kind: "x", Size: 10}) {
		t.Fatal("transmission should be attempted")
	}
	sim.Run()
	if delivered {
		t.Fatal("LossProb=1 delivered a packet")
	}
	if net.Stats().Lost != 1 {
		t.Fatalf("Lost=%d want 1", net.Stats().Lost)
	}
}

func TestAdoptPacketReleasesChildOnRecycle(t *testing.T) {
	_, net := testNet()
	inner := net.AcquirePacket()
	env := net.AcquirePacket()
	net.AdoptPacket(env, inner)
	net.ReleasePacket(inner) // caller done; the envelope keeps it alive
	if p := net.AcquirePacket(); p == inner {
		t.Fatal("adopted child recycled while its parent was still live")
	}
	net.ReleasePacket(env) // parent recycles -> child reference released
	if p := net.AcquirePacket(); p != inner {
		t.Fatal("child not recycled after its parent was released")
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{Kind: "x", Size: 10, UID: 99, Hops: 2}
	q := p.Clone()
	q.Hops = 5
	if p.Hops != 2 {
		t.Fatal("clone aliases original")
	}
	if q.UID != 99 || q.Kind != "x" {
		t.Fatal("clone dropped fields")
	}
}

func TestMovingNodesChangeNeighbors(t *testing.T) {
	sim := des.New()
	net := New(sim, geom.RectWH(0, 0, 2000, 2000), xrand.New(9))
	// Node b moves right at 100 m/s away from a at origin.
	a := net.AddNode(&mobility.Static{P: geom.Pt(0, 0)}, radio.DefaultMN, nil, false)
	bMob := &mobility.Walk{Arena: geom.RectWH(0, 0, 2000, 2000), Speed: 0, Epoch: 1e9}
	_ = bMob
	b := net.AddNode(newLinearMover(geom.Pt(200, 0), geom.Vec(100, 0)), radio.DefaultMN, nil, false)
	if len(net.Neighbors(a.ID)) != 1 {
		t.Fatal("b should start as neighbor")
	}
	sim.Schedule(5, func() { // b is now at x=700, out of 250 m range
		if len(net.Neighbors(a.ID)) != 0 {
			t.Error("b should have left radio range")
		}
	})
	sim.Run()
	_ = b
}

// linearMover is a minimal deterministic mobility model for tests.
type linearMover struct {
	p0 geom.Point
	v  geom.Vector
}

func newLinearMover(p geom.Point, v geom.Vector) *linearMover {
	return &linearMover{p0: p, v: v}
}

func (m *linearMover) Advance(float64)   {}
func (m *linearMover) PieceEnd() float64 { return math.Inf(1) }
func (m *linearMover) TrueFix(now float64) gps.Fix {
	return gps.Fix{Pos: m.p0.Add(m.v.Scale(now)), Vel: m.v}
}
func (m *linearMover) DriftBound() (speed, jump float64) {
	return math.Hypot(m.v.DX, m.v.DY), 0
}

func TestSparseIndexOccupancy(t *testing.T) {
	// A clustered population in a mega-arena must materialize only the
	// index pages it stands on: allocated-tile memory tracks occupied
	// area, not arena area.
	sim := des.New()
	net := New(sim, geom.RectWH(0, 0, 50000, 50000), xrand.New(42))
	if len(net.tiles) < 256 {
		t.Fatalf("arena too small to exercise sparsity: %d tiles", len(net.tiles))
	}
	// 60 nodes clustered in a 2x2 km corner patch.
	rng := xrand.New(7)
	for i := 0; i < 60; i++ {
		addStatic(net, rng.Range(0, 2000), rng.Range(0, 2000))
	}
	occupied := 0
	for _, tl := range net.tiles {
		if tl != nil {
			occupied++
		}
	}
	if occupied == 0 {
		t.Fatal("no tiles materialized for an occupied cluster")
	}
	// The 2 km patch spans at most 2 tiles per axis at the default cell
	// size (a tile covers 8 cells >= 2.8 km); with grid padding and the
	// boundary this stays far below even 1% of the directory.
	if max := len(net.tiles) / 100; occupied > max {
		t.Fatalf("occupancy %d tiles exceeds 1%% of the %d-tile directory: index is not sparse", occupied, len(net.tiles))
	}
	// Queries across tile boundaries still see every in-range neighbor.
	a := addStatic(net, 2790, 2790) // last cell of tile (0,0) at cellSize 350
	b := addStatic(net, 2810, 2810) // first cell of tile (1,1)
	nbrs := net.Neighbors(a.ID)
	found := false
	for _, id := range nbrs {
		if id == b.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("cross-tile neighbor missing: %v", nbrs)
	}
}
