package network

import (
	"fmt"
	"testing"
)

// BenchmarkBroadcastFanout measures the full broadcast hot path —
// neighbor query, loss draws, batched transmission scheduling, dispatch
// expansion, and delivery — at the neighborhood degrees a dense MANET
// produces. Receivers sit on a ring well inside radio range so the
// degree is exact; the pooled-packet path is used so the steady state
// is allocation-free.
func BenchmarkBroadcastFanout(b *testing.B) {
	for _, degree := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("degree=%d", degree), func(b *testing.B) {
			sim, net := testNet()
			src := addStatic(net, 500, 500)
			for i := 0; i < degree; i++ {
				// Distinct distances inside range (all within ~160 m)
				// so per-receiver delivery times differ like real
				// neighborhoods.
				n := addStatic(net, 500+40+float64(i)*120/float64(degree), 500)
				n.SetHandler(func(*Node, NodeID, *Packet) {})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pkt := net.AcquirePacket()
				pkt.Kind = "bench"
				pkt.Src = src.ID
				pkt.Size = 64
				if got := net.Broadcast(src.ID, pkt); got != degree {
					b.Fatalf("broadcast reached %d want %d", got, degree)
				}
				net.ReleasePacket(pkt)
				for sim.Step() {
				}
			}
			b.StopTimer()
			if net.PooledInFlight() != 0 {
				b.Fatalf("pooled packets leaked: %d", net.PooledInFlight())
			}
		})
	}
}
