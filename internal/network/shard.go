package network

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/geom"
)

// shard.go: the network side of the sharded kernel. EnableSharding
// binds the network to a des.Sharded engine: nodes are assigned to
// spatial stripes, each stripe gets its own laneState (position memos,
// neighbor memo, traffic counters, packet pool), and confined
// deliveries — geo-routed relay hops whose handler only touches the
// receiving node and its own lane — execute on per-shard lanes inside
// the engine's conservative windows. Everything else (broadcasts,
// timers, consumes, topology directives) stays on the global lane and
// runs serially, which is what keeps results bit-identical at any
// shard count. DESIGN.md ("Sharded kernel") carries the full argument.

// Lane is a shard-local view of the network: the query and transmit
// surface routing handlers need, resolved against one shard's lane
// state and clock. Inside a parallel window a handler must touch the
// network only through its shard's Lane; outside windows every Lane
// reads the serial clock and lane 0's view is exactly the plain
// Network API, so routing code uses one code path for both regimes.
type Lane struct {
	w   *Network
	idx int
}

// Index returns the lane's shard index.
func (l *Lane) Index() int { return l.idx }

// Now returns the lane's clock: the executing lane event's timestamp
// inside a parallel window, the serial simulator clock otherwise.
func (l *Lane) Now() des.Time {
	if l.w.eng != nil && l.w.eng.InParallel() {
		return l.w.eng.LaneNow(l.idx)
	}
	return l.w.sim.Now()
}

// TruePosOf returns a node's exact position at the lane's current time,
// through the lane's own memo.
func (l *Lane) TruePosOf(id NodeID) geom.Point {
	return l.w.truePosAt(l.w.lane(l.idx), id, l.Now())
}

// NeighborsPos is Network.NeighborsPos against the lane's memo and
// clock.
func (l *Lane) NeighborsPos(id NodeID, ids []NodeID, pos []geom.Point) ([]NodeID, []geom.Point) {
	return l.w.neighborsPosLS(l.w.lane(l.idx), l.Now(), id, ids, pos)
}

// Unicast is Network.Unicast charged to the lane's counters and clock.
func (l *Lane) Unicast(from, to NodeID, pkt *Packet) bool {
	return l.w.unicastLS(l.w.lane(l.idx), l.Now(), from, to, pkt)
}

// AcquirePacket draws from the lane's packet pool.
func (l *Lane) AcquirePacket() *Packet { return l.w.acquirePacketLS(l.w.lane(l.idx)) }

// ReleasePacket returns a reference to the lane's pool.
func (l *Lane) ReleasePacket(p *Packet) { l.w.releasePacketLS(l.w.lane(l.idx), p) }

// RetainPacket adds a reference (no lane state involved; a packet is
// only ever reachable from one in-flight event at a time).
func (l *Lane) RetainPacket(p *Packet) { l.w.RetainPacket(p) }

// AdoptPacket pins child to parent's lifetime (see Network.AdoptPacket).
func (l *Lane) AdoptPacket(parent, child *Packet) { l.w.AdoptPacket(parent, child) }

// lane returns shard i's lane state; lane 0 is the Network's embedded
// (serial) state.
func (w *Network) lane(i int) *laneState {
	if i == 0 {
		return &w.laneState
	}
	return &w.aux[i-1]
}

// LaneCount returns the number of lanes: the shard count when sharding
// is enabled, else 1.
func (w *Network) LaneCount() int {
	if w.eng == nil {
		return 1
	}
	return w.eng.Shards()
}

// BaseLane returns lane 0's view. It is valid before EnableSharding —
// routing layers bind to it unconditionally and gain extra lanes
// through OnShard.
func (w *Network) BaseLane() *Lane { return w.LaneAt(0) }

// LaneAt returns the stable view of lane i.
func (w *Network) LaneAt(i int) *Lane {
	for len(w.laneViews) <= i {
		w.laneViews = append(w.laneViews, Lane{w: w, idx: len(w.laneViews)})
	}
	return &w.laneViews[i]
}

// ExecLaneIdx returns the lane on which state keyed by node id must be
// accessed right now: the node's shard inside a parallel window, lane 0
// (serial) otherwise. Delivery handlers use it to pick their per-lane
// scratch.
func (w *Network) ExecLaneIdx(id NodeID) int {
	if w.eng != nil && w.eng.InParallel() {
		return int(w.shardOf[id])
	}
	return 0
}

// OnShard registers a hook called with the shard count when sharding is
// enabled — immediately, if it already is. Routing layers use it to
// size their per-lane state.
func (w *Network) OnShard(fn func(k int)) {
	w.onShard = append(w.onShard, fn)
	if w.eng != nil {
		fn(w.eng.Shards())
	}
}

// Grain returns the smallest radio hop-delay quantum admitted so far
// (0 before the first node). It is the natural conservative lookahead:
// no transmission can deliver sooner than one quantum after its send.
func (w *Network) Grain() float64 { return w.grain }

// Sharded reports whether EnableSharding has been applied.
func (w *Network) Sharded() bool { return w.eng != nil }

// EnableSharding binds the network to eng. confinedPrefix names the
// packet-kind prefix whose relay deliveries are confined to the
// receiver's shard (the geo-routing envelope namespace); the network
// does not know the routing layer's kind space, so the caller supplies
// it. On error the network is left unsharded and fully functional —
// callers fall back to the serial path.
func (w *Network) EnableSharding(eng *des.Sharded, confinedPrefix string) error {
	if w.eng != nil {
		return fmt.Errorf("network: sharding already enabled")
	}
	if eng.Sim() != w.sim {
		return fmt.Errorf("network: engine wraps a different simulator")
	}
	if confinedPrefix == "" {
		return fmt.Errorf("network: empty confined-kind prefix would confine every delivery")
	}
	if w.trOn {
		return fmt.Errorf("network: tracing enabled; lane-local trace emission would interleave nondeterministically")
	}
	l := eng.Lookahead()
	if w.grain == 0 || des.Duration(w.grain) < l {
		return fmt.Errorf("network: radio grain %v below the engine lookahead %v", w.grain, l)
	}
	for _, n := range w.nodes {
		if q := n.pre.DelayQuantum(); des.Duration(q) < l {
			return fmt.Errorf("network: node %d hop-delay quantum %v below the lookahead %v", n.ID, q, l)
		}
		if span := w.safeSpan(&w.sp[n.ID]); span < l {
			return fmt.Errorf("network: node %d drift consumes the index slack in %v, below the lookahead %v", n.ID, span, l)
		}
	}
	w.eng = eng
	w.confinedPrefix = confinedPrefix
	k := eng.Shards()
	w.shardOf = make([]int32, len(w.nodes))
	w.aux = make([]laneState, k-1)
	for i := range w.aux {
		w.initLane(&w.aux[i], len(w.nodes))
	}
	w.LaneAt(k - 1) // materialize all lane views
	w.pieces = w.pieces[:0]
	for _, n := range w.nodes {
		sp := &w.sp[n.ID]
		w.shardOf[n.ID] = w.stripeOf(sp.anchorPos)
		if end := des.Time(sp.mob.PieceEnd()); end < des.Infinity {
			w.piecePush(pieceEntry{end: end, id: n.ID})
		}
	}
	eng.Prepare = w.prepareWindow
	for _, fn := range w.onShard {
		fn(k)
	}
	return nil
}

// stripeOf maps a position to its spatial stripe: k equal-width
// vertical bands over the arena, clamped so out-of-arena wanderers land
// in the border stripes. Stripes are assigned once, from the node's
// entry position — a static map keeps shardOf reads race-free from
// every lane, and correctness never depends on the assignment (only
// the confined-traffic locality, and hence the speedup, does).
func (w *Network) stripeOf(p geom.Point) int32 {
	k := int32(w.eng.Shards())
	s := int32((p.X - w.arena.Min.X) / w.arena.W() * float64(k))
	if s < 0 {
		s = 0
	} else if s >= k {
		s = k - 1
	}
	return s
}

// prepareWindow is the engine's Prepare hook, run serially at every
// window barrier over [tmin, bound]. It makes everything lane handlers
// read pure over query instants in the window:
//
//   - Mobility pieces: models mutate state (and draw randomness) only
//     at piece crossings, so every piece ending at or before tmin is
//     advanced here, in deterministic (end, id) heap order. The
//     returned cap is the earliest remaining boundary: an event at or
//     past it would query across a crossing, so the engine keeps the
//     window strictly below it (the cap exceeds tmin by construction,
//     so windows always make progress). Advancing at the barrier
//     instead of first-query is invisible to results because crossing
//     times and draws are trajectory-intrinsic.
//   - The spatial index: refreshed up to the window end — but kept a
//     float ulp below the cap, so the refresh itself never crosses the
//     cap piece — after which every in-window refreshTo(now) finds
//     nothing expired and the scan structures stay read-only.
//
// Heap entries may be stale (serial-phase queries advance models
// without touching the heap) and are corrected lazily when they
// surface: stored ends only ever underestimate the true piece end, so
// the corrected top is a sound cap for the whole heap.
func (w *Network) prepareWindow(tmin, bound des.Time) des.Time {
	for len(w.pieces) > 0 {
		top := w.pieces[0]
		sp := &w.sp[top.id]
		end := des.Time(sp.mob.PieceEnd())
		if end != top.end {
			w.pieceFix(end) // stale entry: re-seat at the true end
			continue
		}
		if end > tmin {
			break
		}
		sp.mob.Advance(float64(tmin))
		w.pieceFix(des.Time(sp.mob.PieceEnd()))
	}
	pcap := des.Infinity
	if len(w.pieces) > 0 {
		pcap = w.pieces[0].end
	}
	rb := bound
	if c := des.Time(math.Nextafter(float64(pcap), math.Inf(-1))); c < rb {
		rb = c
	}
	w.refreshTo(rb)
	return pcap
}

// Piece heap: a min-heap of pieceEntry ordered by (end, id). Only the
// barrier (serial context) touches it.

func pieceLess(a, b pieceEntry) bool {
	if a.end != b.end {
		return a.end < b.end
	}
	return a.id < b.id
}

func (w *Network) piecePush(e pieceEntry) {
	h := append(w.pieces, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !pieceLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	w.pieces = h
}

// pieceFix re-seats the heap top at a new end time, removing it when
// the model has no further boundary.
func (w *Network) pieceFix(end des.Time) {
	h := w.pieces
	if end >= des.Infinity {
		n := len(h) - 1
		h[0] = h[n]
		h = h[:n]
		w.pieces = h
		if n == 0 {
			return
		}
	} else {
		h[0].end = end
	}
	i, n := 0, len(h)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && pieceLess(h[l], h[m]) {
			m = l
		}
		if r < n && pieceLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
