//go:build faultseed

package network

// This file seeds the two bug shapes the PR 10 interprocedural lint
// engine exists to catch, both invisible to a purely intraprocedural
// check: a hub write buried two module-local calls below a lane
// function, and an acquired pooled packet handed to a helper that
// silently drops the reference. internal/lint's fault-seed self-test
// loads this package with -tags faultseed and asserts that shardsafe
// and poolpair report both, each naming the full call path; plain
// builds never compile this file, so the module stays lint-clean.

// FaultSeedLintActive reports that the seeded lint faults are compiled
// in (mirrors multicast.FaultSeedActive from the PR 7 pattern).
const FaultSeedLintActive = true

// faultSeedLaneProbe is a lane function: the hub write it reaches
// through two helpers is a cross-shard race were it ever scheduled.
func (w *Network) faultSeedLaneProbe(ls *laneState) {
	ls.pktCheckedOut += 0
	w.faultSeedHopA()
}

func (w *Network) faultSeedHopA() { w.faultSeedHopB() }

// faultSeedHopB clobbers shared hub state two calls below the lane
// root.
func (w *Network) faultSeedHopB() { w.grain = 0 }

// faultSeedLeakProbe acquires a pooled packet and hands it to a
// read-only helper: the reference dies in the callee.
func (w *Network) faultSeedLeakProbe() int {
	p := w.AcquirePacket()
	return faultSeedInspect(p)
}

// faultSeedInspect neither releases nor re-hands-off its parameter.
func faultSeedInspect(p *Packet) int { return p.Size }
