// Package network is the MANET substrate: mobile nodes with radios and
// mobility models, single-hop unicast/broadcast delivery with realistic
// delay and loss, a spatial index for neighbor queries, failure
// injection, and the traffic accounting every experiment reports
// (control vs. data overhead, per-node forwarding load).
//
// Protocols are written as packet handlers on nodes; the network
// schedules deliveries on the shared discrete-event simulator. A single
// Network is owned by a single simulation run and is not safe for
// concurrent use; runs are parallelized at the harness level by
// internal/runner, which gives every run its own Network, Simulator,
// and PRNG stream (no state in this package is shared between runs).
//
// # Hot-path design
//
// Five structures keep the substrate fast at 10k-node scale (DESIGN.md
// has the full story):
//
//   - The spatial index is incremental. Instead of rebuilding the cell
//     grid at every distinct simulation time (O(N) mobility advances per
//     event), each node carries a cell assignment plus a safe-until
//     deadline derived from its mobility model's DriftBound: until the
//     deadline, the node's true position provably stays within half a
//     cell of the position its cell was computed from. A query refreshes
//     only the nodes whose deadlines have passed (a small index heap),
//     widens the scan radius by that half-cell slack, and re-checks
//     candidates exactly. Static nodes — the anchor CH population —
//     never refresh at all. Cell buckets carry each member's anchor
//     position inline, so the prefilter is a sequential scan, and a
//     one-entry memo replays repeated same-sender same-instant queries
//     (a CH geo-routing one envelope per logical neighbor) without
//     rescanning.
//   - The delivery path runs on dense per-node arrays (liveness,
//     receive counters, handlers, plus the spatial SoA slice), never
//     loading *Node structs, and per-node positions at the current
//     instant are memoized, so a broadcast storm touching the same
//     nodes at one timestamp advances each mobility model once.
//   - A Broadcast schedules one pooled multi-receiver transmission
//     event instead of one scheduler entry per neighbor; it expands at
//     the batch's earliest delivery key with the reserved sequence
//     numbers, so the pending-event set scales with transmissions, not
//     transmissions x degree, while timestamps and tie-break order stay
//     bit-identical to per-neighbor scheduling.
//   - Traffic accounting interns the packet kind: one map lookup per
//     transmission into a counter struct (tx, bytes, sender bitset)
//     behind a one-entry cache riding same-kind bursts. The Mux keeps
//     the same cache over handler dispatch.
//   - Packet hops schedule pooled delivery records through
//     des.ScheduleCall, and packets themselves can be pooled
//     (AcquirePacket/ReleasePacket) with network-managed reference
//     counts, so the steady-state per-hop allocation count is zero.
package network

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/gps"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// NodeID identifies a node within one Network.
type NodeID int

// NoNode is the invalid node ID.
const NoNode NodeID = -1

// Packet is a single transmission unit. Protocols attach their own
// payload; Size is what occupies the channel and is what the overhead
// accounting integrates.
type Packet struct {
	// Kind names the protocol message type, e.g. "beacon",
	// "mnt-summary", "mcast-data". It keys the per-kind traffic counters.
	Kind string
	// Src is the originating node; Dst the final destination (protocols
	// performing multi-hop routing re-send at each hop).
	Src, Dst NodeID
	// Group carries a multicast group ID where relevant.
	Group int
	// Size is the on-air size in bytes, headers included.
	Size int
	// Control marks protocol overhead as opposed to application data.
	Control bool
	// Hops counts physical transmissions so far; the network increments
	// it on every delivery.
	Hops int
	// Born is the simulated time the packet's application payload was
	// created, for end-to-end delay measurement across re-encapsulation.
	Born des.Time
	// UID is unique per originated packet and survives forwarding, so
	// duplicate suppression and delivery accounting can key on it.
	UID uint64
	// Payload is protocol-defined.
	Payload any

	// Pool management (see AcquirePacket): refs counts the holders of a
	// pooled packet — the sending caller plus every in-flight delivery —
	// and child is a pooled packet this one keeps alive (see
	// AdoptPacket), released when this packet recycles.
	refs   int32
	pooled bool
	child  *Packet
}

// Clone returns a copy of the packet for duplication at branch points;
// payloads are shared (protocol payloads are immutable by convention).
// The copy is always heap-owned, never pooled, so cloning is also the
// way a handler retains a pooled packet past its delivery.
func (p *Packet) Clone() *Packet {
	q := *p
	q.refs, q.pooled, q.child = 0, false, nil
	return &q
}

// Handler receives packets delivered to a node. from is the physical
// (one-hop) sender.
type Handler func(n *Node, from NodeID, pkt *Packet)

// Node is one mobile node.
type Node struct {
	ID  NodeID
	net *Network

	Mob   mobility.Model
	Radio radio.Model
	GPS   gps.Receiver
	// CHCapable marks nodes with the stronger capability class that the
	// paper requires of cluster heads.
	CHCapable bool
	// cap meters residual bandwidth for QoS admission. It is lazily
	// materialized by Capacity(): only nodes an admission plane actually
	// touches pay for the meter, so the millions of idle nodes in a
	// mega-world carry none.
	cap *radio.Capacity

	rng xrand.Rand    // private stream, split off the network's at AddNode
	pre radio.Precomp // cached link budget of Radio

	// Traffic counters (transmissions this node performed). Receive
	// counters live in the network's dense per-node arrays — the
	// delivery hot path updates them without loading the Node — and are
	// read through RxPackets/RxBytes.
	TxPackets, TxBytes uint64
	// ForwardLoad counts transmissions done on behalf of others (the
	// load-balancing experiments read it).
	ForwardLoad uint64
}

// RxPackets returns how many packets the node has received.
func (n *Node) RxPackets() uint64 { return n.net.hot[n.ID].rxPkts }

// RxBytes returns how many bytes the node has received.
func (n *Node) RxBytes() uint64 { return n.net.hot[n.ID].rxBytes }

// Up reports whether the node is alive.
func (n *Node) Up() bool { return n.net.hot[n.ID].up }

// SetHandler installs the packet receive callback.
func (n *Node) SetHandler(h Handler) { n.net.hot[n.ID].handler = h }

// Rand returns the node's private PRNG stream.
func (n *Node) Rand() *xrand.Rand { return &n.rng }

// Capacity returns the node's residual-bandwidth meter for QoS
// admission, materializing it on first touch. A fresh meter is fully
// free, so lazy allocation is observationally identical to the eager
// per-node meters it replaces.
func (n *Node) Capacity() *radio.Capacity {
	if n.cap == nil {
		n.cap = radio.NewCapacity(n.Radio.Bandwidth)
	}
	return n.cap
}

// Net returns the owning network.
func (n *Node) Net() *Network { return n.net }

// Fix samples the node's positioning receiver at the current simulated
// time.
func (n *Node) Fix() gps.Fix {
	return n.GPS.Fix(n.Mob, float64(n.net.sim.Now()))
}

// TruePos returns the node's ground-truth position (the network layer
// itself always uses truth for propagation; GPS error only affects what
// protocols believe). The position is memoized per simulation instant.
func (n *Node) TruePos() geom.Point {
	return n.net.truePos(n)
}

// Fail takes the node down: it stops receiving and transmitting until
// Recover. The node leaves the spatial index immediately, so neighbor
// queries at the same instant already exclude it.
func (n *Node) Fail() {
	if !n.net.hot[n.ID].up {
		return
	}
	n.net.hot[n.ID].up = false
	n.net.indexRemove(n.ID)
}

// Recover brings a failed node back and re-enters it into the spatial
// index at its current true position.
func (n *Node) Recover() {
	if n.net.hot[n.ID].up {
		return
	}
	n.net.hot[n.ID].up = true
	n.net.indexInsert(n.ID)
}

// laneState groups the per-lane mutable state of the delivery path:
// position memos, the neighbor-query memo, traffic accounting, and the
// packet pool. The unsharded network has exactly one (embedded in
// Network, so field references read naturally); EnableSharding adds one
// per extra shard, and every delivery executes against the lane of the
// shard that owns it, so concurrent lane workers never share a memo, a
// counter, or a free list. Counters are folded across lanes at read
// time (sums and bitset unions commute, so totals are shard-count
// independent); memos and pools are pure caches that never influence
// results.
type laneState struct {
	// exact memoizes each node's true position per simulation instant.
	// It lives apart from sp because the memo *hit* is the hot case —
	// every candidate surviving a neighbor scan's prefilter checks it —
	// and the 24-byte records pack ~3 nodes per cache line where the
	// full spatialState spans two lines on its own.
	exact []posMemo

	// One-entry neighbor-query memo. Protocol bursts query the same
	// sender repeatedly within one instant (a CH geo-routes one
	// envelope per logical neighbor back to back); the memo replays
	// the result as two appends instead of a grid scan. topoVer
	// invalidates it on any index membership change.
	nbrMemoID  NodeID
	nbrMemoAt  des.Time
	nbrMemoVer uint64
	nbrMemoIDs []NodeID
	nbrMemoPos []geom.Point

	// Aggregate accounting, interned by packet kind, with a one-entry
	// cache riding the same-kind burstiness of protocol traffic.
	kinds     map[string]*kindCounter
	lastKind  string
	lastKC    *kindCounter
	ctrlBytes uint64
	dataBytes uint64
	lost      uint64

	// Free list for pooled packets; pktCheckedOut balances
	// AcquirePacket against pool recycling. A packet acquired on one
	// lane may recycle on another (the per-lane counts then go +1/-1),
	// so only the sum across lanes is meaningful — it must return to
	// zero once the simulator drains (the leak check scenario
	// integration tests assert at world teardown).
	freePkts      []*Packet
	pktCheckedOut int
}

// spatialState is the per-node bookkeeping of the incremental index.
// It deliberately duplicates the mobility model in one parallel
// struct-of-arrays slice: refreshTo and NeighborsPos iterate thousands
// of candidates per query, and walking w.sp[id] stays within a few
// contiguous cache lines where chasing *Node pointers would miss on
// every candidate. (Liveness, receive counters, and handlers live in
// their own denser arrays; see Network.)
type spatialState struct {
	// cell is the node's current bucket; anchorPos the position the
	// bucket and deadline were computed from.
	cell      cellKey
	anchorPos geom.Point
	// safeUntil is the last instant the drift bound guarantees the true
	// position within half a cell of anchorPos.
	safeUntil des.Time
	// heapIdx is the node's slot in the refresh heap; -1 when absent
	// (down nodes, and static nodes whose deadline is infinite).
	heapIdx int32
	// mob aliases Node.Mob so position refreshes never touch the Node.
	mob mobility.Model
	// driftSpeed/driftJump cache Mob.DriftBound().
	driftSpeed, driftJump float64
}

// Network owns the nodes of one simulated MANET.
type Network struct {
	sim    *des.Simulator
	arena  geom.Rect
	nodes  []*Node
	rng    *xrand.Rand
	tracer trace.Tracer
	trOn   bool // gates per-loss trace calls (arg boxing allocates)

	// Incremental spatial index over node positions. Cells form a
	// two-level sparse grid over the arena (padded by gridPad cells per
	// side for movers that exceed the arena, e.g. group-motion offsets);
	// out-of-range positions clamp to the border cells, which preserves
	// query correctness because clamping never increases cell distance.
	// The coarse level is a page directory of tile pointers (tileW x
	// tileW cells each, nil until a node lands there), so an arena's
	// index memory is proportional to its occupied area, not its total
	// cell count — the property that lets sparse mega-arenas scale.
	// Buckets carry each member's anchor position inline (cellEntry),
	// so the query prefilter is one sequential scan per bucket and only
	// surviving candidates touch the per-node spatial state. Tiles are
	// materialized only from serial context (insert/refresh at window
	// barriers); scans never allocate, which keeps them pure inside
	// parallel windows.
	cellSize float64
	slack    float64 // staleness tolerance of cached cell positions
	gridMinX float64
	gridMinY float64
	gridCols int
	gridRows int
	tileCols int
	tileRows int
	tiles    []*gridTile // page directory, indexed ty*tileCols+tx
	sp       []spatialState
	refresh  []NodeID // index min-heap keyed by sp[id].safeUntil

	// laneState is lane 0: the serial execution context, and shard 0's
	// context during a parallel window (serial execution and windows
	// never overlap, so the sharing is race-free). Embedding keeps the
	// unsharded hot path's field accesses — w.exact, w.kinds, w.lost —
	// exactly as they were.
	laneState

	// hot packs the delivery hot path's per-node state — liveness,
	// receive counters, handler, and the node pointer — into one record
	// so a delivery touches a single cache line where four parallel
	// arrays cost four misses at 10k-node scale. hot[id].up is the
	// authoritative liveness flag (Node.Up reads it).
	hot []nodeHot

	// topoVer invalidates every lane's neighbor memo on any index
	// membership change. Written only from serial context (Fail/Recover
	// and index maintenance); lanes read it.
	topoVer uint64

	nextUID uint64

	// grain is the smallest radio delay quantum admitted so far; it
	// feeds the event scheduler's bucket sizing (des.Simulator.SetGrain)
	// and, when sharding is enabled, the engine's conservative lookahead.
	grain float64

	// deliverFn is the one method value every delivery event shares as
	// its ScheduleCallU target; deliverLaneFn is its counterpart for
	// events on shard lanes (it resolves the receiver's lane state).
	deliverFn     func(any, uint64)
	deliverLaneFn func(any, uint64)

	// freeTx pools broadcast transmission records (broadcasts only run
	// from serial context, so one shared pool suffices).
	freeTx []*transmission

	// Sharding state (nil/empty unless EnableSharding was called).
	// shardOf maps each node to its spatial stripe; aux holds the lane
	// states of shards 1..k-1 (shard 0 shares the embedded laneState);
	// laneViews are the stable Lane handles handed to routing layers.
	// pieces is a lazily-corrected min-heap over mobile nodes'
	// mobility-piece end times: the window barrier advances expiring
	// pieces and caps each window below the earliest remaining boundary,
	// which is what makes concurrent in-window TrueFix reads pure.
	eng            *des.Sharded
	confinedPrefix string
	shardOf        []int32
	aux            []laneState
	laneViews      []Lane
	pieces         []pieceEntry
	onShard        []func(k int)
}

// pieceEntry is one mobile node's entry in the piece-expiry heap,
// ordered by (end, id). Entries may be stale — serial-phase TrueFix
// calls advance pieces without touching the heap — and are corrected
// lazily when they surface at the top.
type pieceEntry struct {
	end des.Time
	id  NodeID
}

// posMemo is one node's true-position memo: pos is valid at instant at
// (-1 = never computed).
type posMemo struct {
	at  des.Time
	pos geom.Point
}

// nodeHot is the per-node record of the delivery hot path. Field order
// keeps the three words deliver always touches (counters and handler)
// adjacent.
type nodeHot struct {
	rxPkts  uint64
	rxBytes uint64
	handler Handler
	node    *Node
	up      bool
}

// cellKey addresses one cell of the dense grid.
type cellKey struct{ cx, cy int }

// cellEntry is one bucket member of the spatial index: the node plus a
// copy of the anchor position its bucket assignment was computed from,
// and whether the node is static (anchor CHs). Keeping the scan data
// inline makes the query prefilter a walk over contiguous 32-byte
// records; for static nodes the anchor *is* the exact position, so the
// whole range check completes without loading any per-node state.
type cellEntry struct {
	id     NodeID
	x, y   float64
	static bool
}

// gridPad is how many cells the grid extends beyond the arena on
// each side, absorbing movers that wander slightly outside it.
const gridPad = 2

// Tile geometry of the sparse index: tileW x tileW cells per page.
// 8x8 keeps a page at 64 slice headers (~1.5 KB) — fine-grained enough
// that a clustered population in a mega-arena allocates only the pages
// it stands on, coarse enough that the directory is 1/64th of the cell
// count in pointers.
const (
	tileShift = 3
	tileW     = 1 << tileShift
	tileMask  = tileW - 1
	tileCells = tileW * tileW
)

// gridTile is one materialized page of the spatial index: a dense
// tileW x tileW block of ID-ordered buckets, indexed iy<<tileShift|ix
// with ix, iy the cell coordinates within the tile.
type gridTile struct {
	buckets [tileCells][]cellEntry
}

// maxSlack caps the staleness slack of the incremental index (meters).
// Larger slack means rarer refreshes but more candidates per query to
// prefilter; at MANET node speeds, 60 m keeps refreshes far below one
// per node-second while adding only a thin shell to the query radius.
const maxSlack = 60.0

// kindCounter aggregates the traffic of one packet kind.
type kindCounter struct {
	tx      uint64
	bytes   uint64
	senders []uint64 // bitset over NodeID
}

func (k *kindCounter) setSender(id NodeID) {
	w := int(id) >> 6
	for len(k.senders) <= w {
		k.senders = append(k.senders, 0)
	}
	k.senders[w] |= 1 << (uint(id) & 63)
}

// New returns an empty network over the given arena on the given
// simulator.
func New(sim *des.Simulator, arena geom.Rect, rng *xrand.Rand) *Network {
	w := &Network{
		sim:      sim,
		arena:    arena,
		rng:      rng,
		tracer:   trace.Nop,
		cellSize: radio.DefaultCH.Range,
	}
	w.initLane(&w.laneState, 0)
	w.deliverFn = w.runDelivery
	w.deliverLaneFn = w.runDeliveryLane
	w.sizeGrid()
	return w
}

// initLane readies a lane state: non-nil kind map, empty memos, and a
// position-memo slot per existing node.
func (w *Network) initLane(ls *laneState, nodes int) {
	ls.kinds = make(map[string]*kindCounter)
	ls.nbrMemoID = NoNode
	ls.exact = make([]posMemo, nodes)
	for i := range ls.exact {
		ls.exact[i] = posMemo{at: -1}
	}
}

// sizeGrid (re)computes the grid dimensions for the current cell size
// and allocates an empty page directory (tiles materialize on first
// insert).
func (w *Network) sizeGrid() {
	w.slack = math.Min(w.cellSize/2, maxSlack)
	w.gridMinX = w.arena.Min.X - gridPad*w.cellSize
	w.gridMinY = w.arena.Min.Y - gridPad*w.cellSize
	w.gridCols = int(math.Ceil(w.arena.W()/w.cellSize)) + 2*gridPad + 1
	w.gridRows = int(math.Ceil(w.arena.H()/w.cellSize)) + 2*gridPad + 1
	w.tileCols = (w.gridCols + tileMask) >> tileShift
	w.tileRows = (w.gridRows + tileMask) >> tileShift
	w.tiles = make([]*gridTile, w.tileCols*w.tileRows)
}

// SetTracer installs a tracer; nil resets to no-op. Tracing and the
// sharded kernel are mutually exclusive (lane-local emission would
// interleave nondeterministically): EnableSharding refuses a traced
// network, and installing a tracer afterwards panics rather than
// silently corrupting the trace stream.
func (w *Network) SetTracer(t trace.Tracer) {
	if t == nil {
		t = trace.Nop
	}
	if w.eng != nil && t != trace.Nop {
		panic("network: cannot install a tracer on a sharded network")
	}
	w.tracer = t
	w.trOn = t != trace.Nop
}

// Sim returns the simulator the network schedules on.
func (w *Network) Sim() *des.Simulator { return w.sim }

// Arena returns the simulation area.
func (w *Network) Arena() geom.Rect { return w.arena }

// AddNode creates a node with the given mobility, radio, and positioning
// receiver. Nodes start up.
func (w *Network) AddNode(mob mobility.Model, rm radio.Model, receiver gps.Receiver, chCapable bool) *Node {
	if receiver == nil {
		receiver = gps.Oracle{}
	}
	n := &Node{
		ID:        NodeID(len(w.nodes)),
		net:       w,
		Mob:       mob,
		Radio:     rm,
		GPS:       receiver,
		CHCapable: chCapable,
		rng:       *xrand.New(w.rng.Uint64()), // = Split(), stream-identical
		pre:       rm.Precompute(),
	}
	w.nodes = append(w.nodes, n)
	w.sp = append(w.sp, spatialState{heapIdx: -1, mob: mob})
	w.exact = append(w.exact, posMemo{at: -1})
	w.hot = append(w.hot, nodeHot{up: true, node: n})
	sp := &w.sp[n.ID]
	sp.driftSpeed, sp.driftJump = mob.DriftBound()
	if q := n.pre.DelayQuantum(); q > 0 && (w.grain == 0 || q < w.grain) {
		// A finer radio class tightens the hop-delay quantum; let the
		// scheduler size its near-horizon buckets to it.
		w.grain = q
		w.sim.SetGrain(des.Duration(q))
	}
	if rm.Range > w.cellSize {
		// A longer-range radio widens the grid cells; re-bucket everyone
		// (the rebuild indexes the new node along with the rest).
		w.cellSize = rm.Range
		w.reindexAll()
	} else {
		w.indexInsert(n.ID)
	}
	if w.eng != nil {
		w.admitSharded(n)
	}
	return n
}

// admitSharded extends the sharding state for a node added after
// EnableSharding (late joiners in integration scenarios): stripe
// assignment from its entry position, a position-memo slot on every aux
// lane, and a piece-heap entry when it moves. The node must satisfy the
// same bounds EnableSharding checked for the initial population.
func (w *Network) admitSharded(n *Node) {
	sp := &w.sp[n.ID]
	if q := n.pre.DelayQuantum(); des.Duration(q) < w.eng.Lookahead() {
		panic(fmt.Sprintf("network: node %d hop-delay quantum %v below the shard lookahead %v", n.ID, q, w.eng.Lookahead()))
	}
	if span := w.safeSpan(sp); span < w.eng.Lookahead() {
		panic(fmt.Sprintf("network: node %d drift consumes the index slack in %v, below the shard lookahead %v", n.ID, span, w.eng.Lookahead()))
	}
	w.shardOf = append(w.shardOf, w.stripeOf(sp.anchorPos))
	for i := range w.aux {
		w.aux[i].exact = append(w.aux[i].exact, posMemo{at: -1})
	}
	if end := des.Time(sp.mob.PieceEnd()); end < des.Infinity {
		w.piecePush(pieceEntry{end: end, id: n.ID})
	}
}

// reindexAll rebuilds every live node's bucket after a cell-size change
// (only possible while nodes are still being admitted).
func (w *Network) reindexAll() {
	w.sizeGrid()
	w.refresh = w.refresh[:0]
	for _, n := range w.nodes {
		w.sp[n.ID].heapIdx = -1
		if w.hot[n.ID].up {
			w.indexInsert(n.ID)
		}
	}
}

// Node returns the node with the given ID, or nil if out of range.
func (w *Network) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(w.nodes) {
		return nil
	}
	return w.nodes[id]
}

// Nodes returns all nodes (shared slice; callers must not modify).
func (w *Network) Nodes() []*Node { return w.nodes }

// Len returns the number of nodes.
func (w *Network) Len() int { return len(w.nodes) }

// NextUID mints a unique packet UID.
func (w *Network) NextUID() uint64 {
	w.nextUID++
	return w.nextUID
}

// cellOf maps a position to dense-grid cell coordinates, clamping
// positions outside the padded arena to the border cells.
func (w *Network) cellOf(p geom.Point) cellKey {
	cx := int((p.X - w.gridMinX) / w.cellSize)
	cy := int((p.Y - w.gridMinY) / w.cellSize)
	if cx < 0 {
		cx = 0
	} else if cx >= w.gridCols {
		cx = w.gridCols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= w.gridRows {
		cy = w.gridRows - 1
	}
	return cellKey{cx, cy}
}

// tileAt returns the page holding a cell, nil if never materialized.
func (w *Network) tileAt(c cellKey) *gridTile {
	return w.tiles[(c.cy>>tileShift)*w.tileCols+c.cx>>tileShift]
}

// ensureTile returns the page holding a cell, materializing it on
// first touch. Only called from serial context (index maintenance).
func (w *Network) ensureTile(c cellKey) *gridTile {
	ti := (c.cy>>tileShift)*w.tileCols + c.cx>>tileShift
	t := w.tiles[ti]
	if t == nil {
		t = &gridTile{}
		w.tiles[ti] = t
	}
	return t
}

// tileSlot is a cell's bucket index within its page.
func tileSlot(c cellKey) int { return (c.cy&tileMask)<<tileShift | (c.cx & tileMask) }

// truePos returns the node's exact position at the current instant,
// memoized so repeated queries within one event burst advance the
// mobility model once. It is tied to the serial clock: inside a
// parallel window, positions must be read through a Lane (which knows
// its own clock and memo), so calling this there is a bug worth
// failing loudly over.
func (w *Network) truePos(n *Node) geom.Point {
	if w.eng != nil && w.eng.InParallel() {
		panic("network: TruePos from a parallel window; read positions through the Lane view")
	}
	return w.truePosAt(&w.laneState, n.ID, w.sim.Now())
}

// truePosAt works purely off the compact memo slice: the candidate
// loops of NeighborsPos and refreshTo call it per candidate, and the
// common case — the position was already computed this instant by an
// earlier scan — touches one 24-byte record. Only a miss evaluates the
// mobility model; inside a parallel window that evaluation is a pure
// read (the barrier advanced every piece crossing the window), so
// concurrent lanes may query the same node through their own memos.
func (w *Network) truePosAt(ls *laneState, id NodeID, now des.Time) geom.Point {
	e := &ls.exact[id]
	if e.at != now {
		e.pos = w.sp[id].mob.TrueFix(float64(now)).Pos
		e.at = now
	}
	return e.pos
}

// safeSpan returns how long the node's bucket stays valid: the time for
// the drift bound to consume the staleness slack.
func (w *Network) safeSpan(sp *spatialState) des.Duration {
	slack := w.slack - sp.driftJump
	if slack <= 0 {
		return 0 // jump exceeds the slack: revalidate at every instant
	}
	if sp.driftSpeed <= 0 {
		return des.Infinity
	}
	return des.Duration(slack / sp.driftSpeed)
}

// indexInsert (re)computes the node's position, bucket, and deadline and
// enters it into the index. The node must currently be outside the index.
func (w *Network) indexInsert(id NodeID) {
	w.topoVer++
	n := w.nodes[id]
	sp := &w.sp[id]
	now := w.sim.Now()
	pos := w.truePos(n)
	sp.anchorPos = pos
	sp.cell = w.cellOf(pos)
	span := w.safeSpan(sp)
	static := span >= des.Infinity
	w.bucketInsert(sp.cell, cellEntry{id: id, x: pos.X, y: pos.Y, static: static})
	if static {
		sp.safeUntil = des.Infinity
		return // never expires (static node): stay out of the heap
	}
	sp.safeUntil = now + span
	w.heapPush(id)
}

// indexRemove takes the node out of its bucket and the refresh heap.
func (w *Network) indexRemove(id NodeID) {
	w.topoVer++
	sp := &w.sp[id]
	w.bucketRemove(sp.cell, id)
	if sp.heapIdx >= 0 {
		w.heapRemove(int(sp.heapIdx))
	}
}

// Buckets are kept in ascending node-ID order. The order is load-
// bearing: neighbor scans enumerate bucket members in storage order,
// and that enumeration order decides broadcast receiver numbering,
// per-receiver loss draws, and greedy-routing tie-breaks. Insertion-
// order buckets would make all of those depend on the history of index
// refreshes — which differs between a serial run and a sharded run
// (barriers refresh eagerly) — so the canonical order is what keeps
// results bit-identical across shard counts.

// bucketInsert places an entry at its ID-ordered slot, materializing
// the cell's page on first touch.
func (w *Network) bucketInsert(c cellKey, e cellEntry) {
	t := w.ensureTile(c)
	slot := tileSlot(c)
	b := append(t.buckets[slot], e)
	i := len(b) - 1
	for i > 0 && b[i-1].id > e.id {
		b[i] = b[i-1]
		i--
	}
	b[i] = e
	t.buckets[slot] = b
}

func (w *Network) bucketRemove(c cellKey, id NodeID) {
	t := w.tileAt(c)
	if t == nil {
		return
	}
	slot := tileSlot(c)
	b := t.buckets[slot]
	for i := range b {
		if b[i].id == id {
			t.buckets[slot] = append(b[:i], b[i+1:]...)
			return
		}
	}
}

// bucketRefresh updates the anchor position stored inline for a node
// that revalidated without crossing a cell boundary.
func (w *Network) bucketRefresh(c cellKey, id NodeID, pos geom.Point) {
	t := w.tileAt(c)
	if t == nil {
		return
	}
	b := t.buckets[tileSlot(c)]
	for i := range b {
		if b[i].id == id {
			b[i].x, b[i].y = pos.X, pos.Y
			return
		}
	}
}

// refreshTo revalidates every node whose deadline precedes now, moving
// it between buckets when it crossed a cell boundary. Nodes are popped
// in (deadline, ID) order, so the mobility models advance in a
// deterministic sequence.
func (w *Network) refreshTo(now des.Time) {
	for len(w.refresh) > 0 {
		id := w.refresh[0]
		sp := &w.sp[id]
		if sp.safeUntil >= now {
			return
		}
		pos := w.truePosAt(&w.laneState, id, now)
		sp.anchorPos = pos
		if c := w.cellOf(pos); c != sp.cell {
			w.bucketRemove(sp.cell, id)
			sp.cell = c
			w.bucketInsert(c, cellEntry{id: id, x: pos.X, y: pos.Y})
		} else {
			w.bucketRefresh(sp.cell, id, pos)
		}
		sp.safeUntil = now + w.safeSpan(sp)
		w.heapFix(0)
	}
}

// Refresh heap: an index min-heap of node IDs ordered by
// (safeUntil, ID); spatialState.heapIdx tracks positions.

func (w *Network) heapLess(i, j int) bool {
	a, b := w.refresh[i], w.refresh[j]
	sa, sb := w.sp[a].safeUntil, w.sp[b].safeUntil
	if sa != sb {
		return sa < sb
	}
	return a < b
}

func (w *Network) heapSwap(i, j int) {
	w.refresh[i], w.refresh[j] = w.refresh[j], w.refresh[i]
	w.sp[w.refresh[i]].heapIdx = int32(i)
	w.sp[w.refresh[j]].heapIdx = int32(j)
}

func (w *Network) heapPush(id NodeID) {
	w.sp[id].heapIdx = int32(len(w.refresh))
	w.refresh = append(w.refresh, id)
	w.heapUp(len(w.refresh) - 1)
}

func (w *Network) heapRemove(i int) {
	last := len(w.refresh) - 1
	w.sp[w.refresh[i]].heapIdx = -1
	if i != last {
		w.refresh[i] = w.refresh[last]
		w.sp[w.refresh[i]].heapIdx = int32(i)
	}
	w.refresh = w.refresh[:last]
	if i != last {
		w.heapFix(i)
	}
}

func (w *Network) heapFix(i int) {
	w.heapDown(i)
	w.heapUp(i)
}

func (w *Network) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !w.heapLess(i, parent) {
			return
		}
		w.heapSwap(i, parent)
		i = parent
	}
}

func (w *Network) heapDown(i int) {
	n := len(w.refresh)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			return
		}
		c := l
		if r < n && w.heapLess(r, l) {
			c = r
		}
		if !w.heapLess(c, i) {
			return
		}
		w.heapSwap(i, c)
		i = c
	}
}

// Neighbors returns the IDs of live nodes within the sender's radio
// range, excluding the sender itself. The result is freshly allocated;
// hot paths use NeighborsAppend with a reused buffer instead.
func (w *Network) Neighbors(id NodeID) []NodeID {
	return w.NeighborsAppend(id, nil)
}

// NeighborsAppend appends the IDs of live nodes within the sender's
// radio range to out and returns the extended slice. Candidates come
// from buckets within range plus the half-cell staleness slack; each is
// then checked against its exact current position, so results are exact
// despite the index being refreshed lazily.
func (w *Network) NeighborsAppend(id NodeID, out []NodeID) []NodeID {
	out, _ = w.NeighborsPos(id, out, nil)
	return out
}

// NeighborsPos is NeighborsAppend that additionally appends each
// neighbor's exact current position to pos (parallel to ids) when pos
// is non-nil. Routing hot paths use it to avoid recomputing positions
// the range check already produced.
func (w *Network) NeighborsPos(id NodeID, ids []NodeID, pos []geom.Point) ([]NodeID, []geom.Point) {
	return w.neighborsPosLS(&w.laneState, w.sim.Now(), id, ids, pos)
}

func (w *Network) neighborsPosLS(ls *laneState, now des.Time, id NodeID, ids []NodeID, pos []geom.Point) ([]NodeID, []geom.Point) {
	n := w.Node(id)
	if n == nil || !w.hot[id].up {
		return ids, pos
	}
	if ls.nbrMemoID != id || ls.nbrMemoAt != now || ls.nbrMemoVer != w.topoVer {
		w.scanNeighbors(ls, n, now)
	}
	ids = append(ids, ls.nbrMemoIDs...)
	if pos != nil {
		pos = append(pos, ls.nbrMemoPos...)
	}
	return ids, pos
}

// scanNeighbors runs the grid scan for the sender at the given instant
// and records the result in the lane's one-entry memo. Inside a
// parallel window the scan is read-only over all shared structures:
// refreshTo finds nothing to pop (the barrier refreshed past the
// window), bucket walks and position evaluations are pure, and all
// writes land in the caller's own lane state.
func (w *Network) scanNeighbors(ls *laneState, n *Node, now des.Time) {
	id := n.ID
	ls.nbrMemoID, ls.nbrMemoAt, ls.nbrMemoVer = id, now, w.topoVer
	ids, pos := ls.nbrMemoIDs[:0], ls.nbrMemoPos[:0]
	w.refreshTo(now) //hvdb:serialonly in-window the barrier has refreshed past the window bound, so the pop loop body never executes; index writes below this edge happen in serial context only

	p := w.truePosAt(ls, id, now)
	// A node in range r has its anchor position within r+slack of p, so
	// scanning the cells overlapping that disc and prefiltering on the
	// anchor (no mobility advance) is exhaustive; only candidates inside
	// the shell get the exact position check.
	reach := n.Radio.Range + w.slack
	reach2 := reach * reach
	c0 := w.cellOf(geom.Pt(p.X-reach, p.Y-reach))
	c1 := w.cellOf(geom.Pt(p.X+reach, p.Y+reach))
	r2 := n.pre.Range2
	// Enumeration order is load-bearing (see the bucket-order comment):
	// cells are walked row-major — cy ascending, cx ascending — exactly
	// as the dense grid did, with each row visited tile page by tile
	// page. A nil page skips its whole tileW-cell span of the row.
	tx0, tx1 := c0.cx>>tileShift, c1.cx>>tileShift
	for cy := c0.cy; cy <= c1.cy; cy++ {
		base := (cy >> tileShift) * w.tileCols
		iy := (cy & tileMask) << tileShift
		for tx := tx0; tx <= tx1; tx++ {
			t := w.tiles[base+tx]
			if t == nil {
				continue
			}
			lo, hi := 0, tileMask
			if tx == tx0 {
				lo = c0.cx & tileMask
			}
			if tx == tx1 {
				hi = c1.cx & tileMask
			}
			row := t.buckets[iy+lo : iy+hi+1]
			for _, bucket := range row {
				for i := range bucket {
					e := &bucket[i]
					// The prefilter runs entirely on the bucket's inline
					// anchor copies — no per-node loads for rejected
					// candidates.
					dx, dy := p.X-e.x, p.Y-e.y
					d2 := dx*dx + dy*dy
					if d2 > reach2 || e.id == id {
						continue
					}
					if e.static {
						// Static nodes never drift: the anchor is the
						// exact position.
						if d2 <= r2 {
							ids = append(ids, e.id)
							pos = append(pos, geom.Pt(e.x, e.y))
						}
						continue
					}
					op := w.truePosAt(ls, e.id, now)
					if p.Dist2(op) <= r2 {
						ids = append(ids, e.id)
						pos = append(pos, op)
					}
				}
			}
		}
	}
	ls.nbrMemoIDs, ls.nbrMemoPos = ids, pos
}

// InRange reports whether a's radio currently reaches b and both are up.
func (w *Network) InRange(a, b NodeID) bool {
	na, nb := w.Node(a), w.Node(b)
	if na == nil || nb == nil || !w.hot[a].up || !w.hot[b].up {
		return false
	}
	return na.pre.InRange2(w.truePos(na).Dist2(w.truePos(nb)))
}

// account charges a transmission to the sender and the lane's per-kind
// counters. The node counters are safe from lane context because a
// node only transmits from events executing on its own shard; the kind
// counters are lane-private and folded at read time.
func (w *Network) account(ls *laneState, n *Node, pkt *Packet) {
	n.TxPackets++
	n.TxBytes += uint64(pkt.Size)
	kc := ls.lastKC
	if kc == nil || pkt.Kind != ls.lastKind {
		kc = ls.kinds[pkt.Kind]
		if kc == nil {
			kc = &kindCounter{}
			ls.kinds[pkt.Kind] = kc
		}
		ls.lastKind, ls.lastKC = pkt.Kind, kc
	}
	kc.tx++
	kc.bytes += uint64(pkt.Size)
	kc.setSender(n.ID)
	if pkt.Control {
		ls.ctrlBytes += uint64(pkt.Size)
	} else {
		ls.dataBytes += uint64(pkt.Size)
	}
	if pkt.Src != n.ID {
		n.ForwardLoad++
	}
}

// packHop encodes a delivery's (from, to) pair into the scheduler's
// unboxed event word; the packet itself rides in the event's arg slot.
// Together they make a delivery event self-contained — no pooled
// per-hop record, so executing it costs one less dependent cold load.
func packHop(from, to NodeID) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// runDelivery is the shared ScheduleCallU target for all deliveries
// (installed once as w.deliverFn so events don't allocate closures).
func (w *Network) runDelivery(a any, u uint64) {
	w.deliverLS(&w.laneState, NodeID(uint32(u>>32)), NodeID(uint32(u)), a.(*Packet))
}

// runDeliveryLane is runDelivery for events placed on a shard lane: the
// receive counters and the packet recycle are charged to the lane that
// owns the receiver. It also runs at most once per receiver per event,
// so the whole body touches only that shard's state.
func (w *Network) runDeliveryLane(a any, u uint64) {
	to := NodeID(uint32(u))
	w.deliverLS(w.lane(int(w.shardOf[to])), NodeID(uint32(u>>32)), to, a.(*Packet))
}

// isConfined reports whether a delivery may execute on the receiver's
// shard lane: a relay hop of the routing layer's confined kind space
// (the geo envelope prefix) that is not the final consume at pkt.Dst.
// Consumes, anycast sends (Dst == NoNode), and all other kinds reach
// protocol state beyond the receiving shard and stay on the global lane.
func (w *Network) isConfined(to NodeID, pkt *Packet) bool {
	return pkt.Dst != NoNode && to != pkt.Dst && strings.HasPrefix(pkt.Kind, w.confinedPrefix)
}

// scheduleDelivery routes one delivery according to the execution
// context. Unsharded: an ordinary simulator event. Sharded, from serial
// context: confined deliveries go straight onto the receiver's lane
// with a fresh sequence number (ScheduleLaneDirect draws the same seq
// an AfterCallU here would have, so the rerouting is invisible to the
// total order); global ones schedule normally. Inside a parallel
// window, nothing schedules directly — the delivery is logged as an
// intent keyed by the executing event and materialized at the barrier.
func (w *Network) scheduleDelivery(now des.Time, delay des.Duration, from, to NodeID, pkt *Packet) {
	if pkt.pooled {
		pkt.refs++
	}
	if w.eng == nil {
		w.sim.AfterCallU(delay, w.deliverFn, pkt, packHop(from, to))
		return
	}
	at := now + delay
	if w.eng.InParallel() {
		fromLane := int(w.shardOf[from])
		if w.isConfined(to, pkt) {
			w.eng.LogIntent(fromLane, int(w.shardOf[to]), at, w.deliverLaneFn, pkt, packHop(from, to))
		} else {
			w.eng.LogIntent(fromLane, des.LaneGlobal, at, w.deliverFn, pkt, packHop(from, to))
		}
		return
	}
	if w.isConfined(to, pkt) {
		w.eng.ScheduleLaneDirect(int(w.shardOf[to]), at, w.deliverLaneFn, pkt, packHop(from, to))
		return
	}
	w.sim.AfterCallU(delay, w.deliverFn, pkt, packHop(from, to))
}

// transmission is one pooled multi-receiver broadcast in flight: the
// receiver set and each receiver's exact delivery time, captured at
// send time into reusable parallel slices (struct-of-arrays scratch),
// plus the block of schedule sequence numbers reserved for them. A
// Broadcast schedules a single transmission event instead of one
// scheduler entry per neighbor; the pending-event set then scales with
// transmissions, not with transmissions x degree.
type transmission struct {
	w    *Network
	from NodeID
	pkt  *Packet
	ids  []NodeID   // receivers in neighbor order
	at   []des.Time // per-receiver delivery instant, parallel to ids
	seq  uint64     // first sequence number of the reserved block
	min  int        // receiver holding the batch's minimal (at, seq) key
}

// runTransmission dispatches a multi-receiver transmission. It executes
// at the batch's earliest (time, sequence) key: the remaining receivers
// are materialized as ordinary delivery events at their original keys
// (mostly landing in the scheduler's imminent bucket — per-receiver
// delivery times differ only by propagation, microseconds against
// millisecond buckets), and the earliest receiver's delivery runs
// inline. Event-for-event, timestamps, sequence numbers, and the
// executed-event count are identical to scheduling every delivery at
// send time.
func runTransmission(a any) {
	t := a.(*transmission)
	w, from, pkt, min := t.w, t.from, t.pkt, t.min
	for i, to := range t.ids {
		if i == min {
			continue
		}
		w.sim.ScheduleCallSeqU(t.at[i], t.seq+uint64(i), w.deliverFn, pkt, packHop(from, to))
	}
	inlineTo := t.ids[min]
	t.pkt = nil
	t.ids = t.ids[:0]
	t.at = t.at[:0]
	w.freeTx = append(w.freeTx, t) // recycle before the handler runs
	w.deliverLS(&w.laneState, from, inlineTo, pkt)
}

func (w *Network) allocTransmission() *transmission {
	if n := len(w.freeTx); n > 0 {
		t := w.freeTx[n-1]
		w.freeTx = w.freeTx[:n-1]
		return t
	}
	return &transmission{}
}

// Unicast transmits pkt from one node to a one-hop neighbor. It reports
// whether the transmission was attempted (sender up, receiver up, in
// range); a true return still allows in-flight loss per the radio model.
// Delivery is scheduled on the simulator after the radio's hop delay.
func (w *Network) Unicast(from, to NodeID, pkt *Packet) bool {
	return w.unicastLS(&w.laneState, w.sim.Now(), from, to, pkt)
}

// unicastLS is Unicast against an explicit lane state and clock, the
// form lane handlers reach through their Lane view. Every write it
// performs lands either in ls (accounting, loss) or in state owned by
// the sending node (tx counters, the loss draw from the sender's rng) —
// and a node's transmissions always execute on the shard that owns it,
// in the same (at, seq) order as the serial run, so the rng draw
// sequence per node is shard-count independent.
func (w *Network) unicastLS(ls *laneState, now des.Time, from, to NodeID, pkt *Packet) bool {
	src := w.Node(from)
	dst := w.Node(to)
	if src == nil || dst == nil || !w.hot[from].up || !w.hot[to].up {
		return false
	}
	d2 := w.truePosAt(ls, from, now).Dist2(w.truePosAt(ls, to, now))
	if !src.pre.InRange2(d2) {
		return false
	}
	w.account(ls, src, pkt)
	if src.Radio.Lost(&src.rng) {
		ls.lost++
		if w.trOn {
			w.tracer.Eventf(trace.Radio, float64(now), "LOST %s %d->%d", pkt.Kind, from, to)
		}
		return true
	}
	w.scheduleDelivery(now, des.Duration(src.pre.HopDelay2(pkt.Size, d2)), from, to, pkt)
	return true
}

// Broadcast transmits pkt to every current one-hop neighbor of the
// sender with a single channel occupation (wireless broadcast
// advantage): the sender's counters are charged once, each receiver
// draws loss independently. It returns the number of neighbors the
// packet was put on air to.
//
// The receivers that survive the loss draw are batched into one pooled
// transmission event rather than one scheduler entry each; the batch
// reserves the same sequence numbers immediate scheduling would have
// consumed and expands at its earliest delivery key (runTransmission),
// so delivery timestamps, tie-break order, and the executed-event count
// are bit-identical to the unbatched path.
func (w *Network) Broadcast(from NodeID, pkt *Packet) int {
	if w.eng != nil && w.eng.InParallel() {
		// A broadcast reserves a seq block and schedules a global
		// transmission event — both serial-only operations. Confined
		// (lane-executable) traffic is unicast relay forwarding;
		// protocols broadcast from timer and consume events, which are
		// global and run serially.
		panic("network: Broadcast from a parallel window")
	}
	src := w.Node(from)
	if src == nil || !w.hot[from].up {
		return 0
	}
	now := w.sim.Now()
	if w.nbrMemoID != from || w.nbrMemoAt != now || w.nbrMemoVer != w.topoVer {
		w.scanNeighbors(&w.laneState, src, now)
	}
	// Read the memo slices directly — nothing in the loop below can
	// trigger a rescan, and the per-transmission copy into caller
	// scratch is measurable at 10k-scale broadcast volume.
	nbrs, poss := w.nbrMemoIDs, w.nbrMemoPos
	w.account(&w.laneState, src, pkt)
	sp := w.truePos(src)
	t := w.allocTransmission()
	for i, to := range nbrs {
		if src.Radio.Lost(&src.rng) {
			w.lost++
			continue
		}
		d2 := sp.Dist2(poss[i])
		t.ids = append(t.ids, to)
		t.at = append(t.at, now+des.Duration(src.pre.HopDelay2(pkt.Size, d2)))
	}
	n := len(t.ids)
	if n <= 1 {
		if n == 1 {
			// Schedule the lone delivery at its absolute time with the
			// one sequence number the unbatched path would have used —
			// a relative re-derivation (at-now) can land 1 ulp off.
			if pkt.pooled {
				pkt.refs++
			}
			w.sim.ScheduleCallSeqU(t.at[0], w.sim.ReserveSeqs(1), w.deliverFn, pkt, packHop(from, t.ids[0]))
			t.ids = t.ids[:0]
			t.at = t.at[:0]
		}
		w.freeTx = append(w.freeTx, t)
		return len(nbrs)
	}
	t.w, t.from, t.pkt = w, from, pkt
	if pkt.pooled {
		pkt.refs += int32(n) // one reference per eventual delivery
	}
	t.seq = w.sim.ReserveSeqs(n)
	// The dispatch key is the earliest (time, sequence) of the batch:
	// the first index attaining the minimal time (reserved sequence
	// numbers increase with the index).
	min := 0
	for i := 1; i < n; i++ {
		if t.at[i] < t.at[min] {
			min = i
		}
	}
	t.min = min
	w.sim.ScheduleCallSeq(t.at[min], t.seq+uint64(min), runTransmission, t)
	return len(nbrs)
}

// deliverLS completes one delivery against the lane that owns the
// receiver: receive counters and the handler run, then the lane drops
// its in-flight packet reference.
func (w *Network) deliverLS(ls *laneState, from, to NodeID, pkt *Packet) {
	e := &w.hot[to]
	if e.up { // may have gone down while the packet was in flight
		pkt.Hops++
		e.rxPkts++
		e.rxBytes += uint64(pkt.Size)
		if e.handler != nil {
			e.handler(e.node, from, pkt)
		}
	}
	if pkt.pooled {
		w.unrefLS(ls, pkt)
	}
}

// AcquirePacket returns a zeroed packet from the network's pool. The
// caller owns one reference: after its last Unicast/Broadcast of the
// packet it must call ReleasePacket, and the network returns the packet
// to the pool once every in-flight delivery has also completed. Receive
// handlers must not retain a pooled packet past their return — Clone
// yields an unpooled copy for that. Best suited to high-volume packets
// whose handlers consume them immediately (beacons, geo envelopes).
func (w *Network) AcquirePacket() *Packet {
	return w.acquirePacketLS(&w.laneState)
}

func (w *Network) acquirePacketLS(ls *laneState) *Packet {
	var p *Packet
	if n := len(ls.freePkts); n > 0 {
		p = ls.freePkts[n-1]
		ls.freePkts = ls.freePkts[:n-1]
	} else {
		p = &Packet{}
	}
	p.pooled = true
	p.refs = 1
	ls.pktCheckedOut++
	return p
}

// PooledInFlight returns how many pooled packets are currently checked
// out of the pool — acquired by a caller or still referenced by
// in-flight deliveries. Once every send has released its reference and
// the simulator has drained, the balance is zero; a positive residue
// after teardown is a leak (a handler retained a pooled packet, or a
// Release call is missing). A packet acquired on one lane may recycle
// on another, so the per-lane balances are summed; only the total is
// meaningful.
func (w *Network) PooledInFlight() int {
	n := w.pktCheckedOut
	for i := range w.aux {
		n += w.aux[i].pktCheckedOut
	}
	return n
}

// ReleasePacket drops the caller's reference to a packet obtained from
// AcquirePacket. Calling it on nil or unpooled packets is a no-op, so
// call sites need not distinguish.
func (w *Network) ReleasePacket(p *Packet) {
	w.releasePacketLS(&w.laneState, p)
}

func (w *Network) releasePacketLS(ls *laneState, p *Packet) {
	if p != nil && p.pooled {
		w.unrefLS(ls, p)
	}
}

// RetainPacket adds a reference to a pooled packet, for a holder that
// keeps it alive across scheduling boundaries the network cannot see
// (e.g. a routing envelope carrying it over several hops). Each Retain
// needs a matching ReleasePacket. No-op for nil or unpooled packets.
func (w *Network) RetainPacket(p *Packet) {
	if p != nil && p.pooled {
		p.refs++
	}
}

// AdoptPacket makes a pooled parent keep child alive: child gains a
// reference now and loses it when the parent recycles. An encapsulating
// protocol uses this to pin its payload packet to the envelope's
// lifetime, so every envelope outcome — delivered, dropped, or lost in
// flight — releases the payload without the protocol seeing the loss.
// No-op unless both packets are pooled.
func (w *Network) AdoptPacket(parent, child *Packet) {
	if parent == nil || child == nil || !parent.pooled || !child.pooled {
		return
	}
	child.refs++
	parent.child = child
}

func (w *Network) unrefLS(ls *laneState, p *Packet) {
	p.refs--
	if p.refs <= 0 {
		child := p.child
		*p = Packet{}
		ls.freePkts = append(ls.freePkts, p)
		ls.pktCheckedOut--
		if child != nil {
			w.releasePacketLS(ls, child)
		}
	}
}

// Stats is a snapshot of the network's aggregate traffic accounting.
type Stats struct {
	ControlBytes, DataBytes uint64
	Lost                    uint64
	KindTx                  map[string]uint64
	KindBytes               map[string]uint64
}

// eachLane visits lane 0 and every aux lane. Readers use it to fold
// the per-lane counters: sums and bitset unions commute, so the folded
// totals do not depend on which shard carried which traffic — they are
// shard-count independent whenever the underlying event totals are.
func (w *Network) eachLane(f func(ls *laneState)) {
	f(&w.laneState)
	for i := range w.aux {
		f(&w.aux[i])
	}
}

// Stats returns a copy of the aggregate counters, folded across lanes.
func (w *Network) Stats() Stats {
	kt := make(map[string]uint64, len(w.kinds))
	kb := make(map[string]uint64, len(w.kinds))
	st := Stats{KindTx: kt, KindBytes: kb}
	w.eachLane(func(ls *laneState) {
		st.ControlBytes += ls.ctrlBytes
		st.DataBytes += ls.dataBytes
		st.Lost += ls.lost
		for k, c := range ls.kinds {
			if c.tx == 0 && c.bytes == 0 {
				continue
			}
			kt[k] += c.tx
			kb[k] += c.bytes
		}
	})
	return st
}

// BytesMatching sums transmitted bytes over packet kinds accepted by
// match; used to isolate one protocol plane's traffic (a geo-routed
// plane appears both under its own kind and under "geo:<kind>").
func (w *Network) BytesMatching(match func(kind string) bool) uint64 {
	var total uint64
	w.eachLane(func(ls *laneState) {
		for k, c := range ls.kinds {
			if match(k) {
				total += c.bytes
			}
		}
	})
	return total
}

// SendersMatching counts distinct nodes that transmitted any packet of
// a kind accepted by match — the "how many nodes are involved"
// measure of the paper's membership argument.
func (w *Network) SendersMatching(match func(kind string) bool) int {
	var union []uint64
	w.eachLane(func(ls *laneState) {
		//hvdb:unordered bitset union is commutative: the appends only zero-extend to the widest sender set and every bit lands via |=
		for k, c := range ls.kinds {
			if !match(k) {
				continue
			}
			for len(union) < len(c.senders) {
				union = append(union, 0)
			}
			for i, b := range c.senders {
				union[i] |= b
			}
		}
	})
	total := 0
	for _, b := range union {
		total += bits.OnesCount64(b)
	}
	return total
}

// ResetTraffic zeroes all traffic counters (network-wide and per-node);
// experiments call it at the end of the warm-up phase. Interned kind
// counters are kept and zeroed in place, so the measurement phase does
// not re-allocate them.
func (w *Network) ResetTraffic() {
	w.eachLane(func(ls *laneState) {
		ls.ctrlBytes, ls.dataBytes, ls.lost = 0, 0, 0
		for _, c := range ls.kinds {
			c.tx, c.bytes = 0, 0
			for i := range c.senders {
				c.senders[i] = 0
			}
		}
	})
	for _, n := range w.nodes {
		n.TxPackets, n.TxBytes, n.ForwardLoad = 0, 0, 0
	}
	for i := range w.hot {
		w.hot[i].rxPkts, w.hot[i].rxBytes = 0, 0
	}
}

// ForwardLoads returns the per-node forwarding load vector (for Jain
// index computation), restricted to live nodes.
func (w *Network) ForwardLoads() []float64 {
	out := make([]float64, 0, len(w.nodes))
	for _, n := range w.nodes {
		if w.hot[n.ID].up {
			out = append(out, float64(n.ForwardLoad))
		}
	}
	return out
}

// String summarizes the network.
func (w *Network) String() string {
	up := 0
	for _, n := range w.nodes {
		if w.hot[n.ID].up {
			up++
		}
	}
	return fmt.Sprintf("network{nodes=%d up=%d arena=%gx%g}", len(w.nodes), up, w.arena.W(), w.arena.H())
}
