// Package network is the MANET substrate: mobile nodes with radios and
// mobility models, single-hop unicast/broadcast delivery with realistic
// delay and loss, a spatial index for neighbor queries, failure
// injection, and the traffic accounting every experiment reports
// (control vs. data overhead, per-node forwarding load).
//
// Protocols are written as packet handlers on nodes; the network
// schedules deliveries on the shared discrete-event simulator. A single
// Network is owned by a single simulation run and is not safe for
// concurrent use; runs are parallelized at the harness level by
// internal/runner, which gives every run its own Network, Simulator,
// and PRNG stream (no state in this package is shared between runs).
package network

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/gps"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// NodeID identifies a node within one Network.
type NodeID int

// NoNode is the invalid node ID.
const NoNode NodeID = -1

// Packet is a single transmission unit. Protocols attach their own
// payload; Size is what occupies the channel and is what the overhead
// accounting integrates.
type Packet struct {
	// Kind names the protocol message type, e.g. "beacon",
	// "mnt-summary", "mcast-data". It keys the per-kind traffic counters.
	Kind string
	// Src is the originating node; Dst the final destination (protocols
	// performing multi-hop routing re-send at each hop).
	Src, Dst NodeID
	// Group carries a multicast group ID where relevant.
	Group int
	// Size is the on-air size in bytes, headers included.
	Size int
	// Control marks protocol overhead as opposed to application data.
	Control bool
	// Hops counts physical transmissions so far; the network increments
	// it on every delivery.
	Hops int
	// Born is the simulated time the packet's application payload was
	// created, for end-to-end delay measurement across re-encapsulation.
	Born des.Time
	// UID is unique per originated packet and survives forwarding, so
	// duplicate suppression and delivery accounting can key on it.
	UID uint64
	// Payload is protocol-defined.
	Payload any
}

// Clone returns a copy of the packet for duplication at branch points;
// payloads are shared (protocol payloads are immutable by convention).
func (p *Packet) Clone() *Packet {
	q := *p
	return &q
}

// Handler receives packets delivered to a node. from is the physical
// (one-hop) sender.
type Handler func(n *Node, from NodeID, pkt *Packet)

// Node is one mobile node.
type Node struct {
	ID  NodeID
	net *Network

	Mob   mobility.Model
	Radio radio.Model
	GPS   gps.Receiver
	// CHCapable marks nodes with the stronger capability class that the
	// paper requires of cluster heads.
	CHCapable bool
	// Cap meters residual bandwidth for QoS admission.
	Cap *radio.Capacity

	up      bool
	handler Handler
	rng     *xrand.Rand

	// Traffic counters (transmissions this node performed).
	TxPackets, TxBytes uint64
	RxPackets, RxBytes uint64
	// ForwardLoad counts transmissions done on behalf of others (the
	// load-balancing experiments read it).
	ForwardLoad uint64
}

// Up reports whether the node is alive.
func (n *Node) Up() bool { return n.up }

// SetHandler installs the packet receive callback.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// Rand returns the node's private PRNG stream.
func (n *Node) Rand() *xrand.Rand { return n.rng }

// Net returns the owning network.
func (n *Node) Net() *Network { return n.net }

// Fix samples the node's positioning receiver at the current simulated
// time.
func (n *Node) Fix() gps.Fix {
	return n.GPS.Fix(n.Mob, float64(n.net.sim.Now()))
}

// TruePos returns the node's ground-truth position (the network layer
// itself always uses truth for propagation; GPS error only affects what
// protocols believe).
func (n *Node) TruePos() geom.Point {
	return n.Mob.TrueFix(float64(n.net.sim.Now())).Pos
}

// Fail takes the node down: it stops receiving and transmitting until
// Recover. The spatial index is invalidated so neighbor queries at the
// same instant already exclude the node.
func (n *Node) Fail() {
	n.up = false
	n.net.gridValid = false
}

// Recover brings a failed node back.
func (n *Node) Recover() {
	n.up = true
	n.net.gridValid = false
}

// Network owns the nodes of one simulated MANET.
type Network struct {
	sim    *des.Simulator
	arena  geom.Rect
	nodes  []*Node
	rng    *xrand.Rand
	tracer trace.Tracer

	// Spatial index over node positions, rebuilt lazily per distinct
	// simulation time.
	cellSize  float64
	cells     map[cellKey][]NodeID
	gridAt    des.Time
	gridValid bool

	nextUID uint64

	// Aggregate accounting.
	kindTx      map[string]uint64 // transmissions per packet kind
	kindBytes   map[string]uint64
	kindSenders map[string]map[NodeID]bool // distinct transmitters per kind
	ctrlBytes   uint64
	dataBytes   uint64
	lost        uint64
}

type cellKey struct{ cx, cy int }

// New returns an empty network over the given arena on the given
// simulator.
func New(sim *des.Simulator, arena geom.Rect, rng *xrand.Rand) *Network {
	return &Network{
		sim:         sim,
		arena:       arena,
		rng:         rng,
		tracer:      trace.Nop,
		cellSize:    radio.DefaultCH.Range,
		kindTx:      make(map[string]uint64),
		kindBytes:   make(map[string]uint64),
		kindSenders: make(map[string]map[NodeID]bool),
	}
}

// SetTracer installs a tracer; nil resets to no-op.
func (w *Network) SetTracer(t trace.Tracer) {
	if t == nil {
		t = trace.Nop
	}
	w.tracer = t
}

// Sim returns the simulator the network schedules on.
func (w *Network) Sim() *des.Simulator { return w.sim }

// Arena returns the simulation area.
func (w *Network) Arena() geom.Rect { return w.arena }

// AddNode creates a node with the given mobility, radio, and positioning
// receiver. Nodes start up.
func (w *Network) AddNode(mob mobility.Model, rm radio.Model, receiver gps.Receiver, chCapable bool) *Node {
	if receiver == nil {
		receiver = gps.Oracle{}
	}
	n := &Node{
		ID:        NodeID(len(w.nodes)),
		net:       w,
		Mob:       mob,
		Radio:     rm,
		GPS:       receiver,
		CHCapable: chCapable,
		Cap:       radio.NewCapacity(rm.Bandwidth),
		up:        true,
		rng:       w.rng.Split(),
	}
	w.nodes = append(w.nodes, n)
	if rm.Range > w.cellSize {
		w.cellSize = rm.Range
	}
	w.gridValid = false
	return n
}

// Node returns the node with the given ID, or nil if out of range.
func (w *Network) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(w.nodes) {
		return nil
	}
	return w.nodes[id]
}

// Nodes returns all nodes (shared slice; callers must not modify).
func (w *Network) Nodes() []*Node { return w.nodes }

// Len returns the number of nodes.
func (w *Network) Len() int { return len(w.nodes) }

// NextUID mints a unique packet UID.
func (w *Network) NextUID() uint64 {
	w.nextUID++
	return w.nextUID
}

func (w *Network) cellOf(p geom.Point) cellKey {
	return cellKey{int(math.Floor(p.X / w.cellSize)), int(math.Floor(p.Y / w.cellSize))}
}

func (w *Network) refreshGrid() {
	now := w.sim.Now()
	if w.gridValid && w.gridAt == now {
		return
	}
	if w.cells == nil {
		w.cells = make(map[cellKey][]NodeID, len(w.nodes))
	} else {
		for k := range w.cells {
			delete(w.cells, k)
		}
	}
	for _, n := range w.nodes {
		if !n.up {
			continue
		}
		k := w.cellOf(n.TruePos())
		w.cells[k] = append(w.cells[k], n.ID)
	}
	w.gridAt = now
	w.gridValid = true
}

// Neighbors returns the IDs of live nodes within the sender's radio
// range, excluding the sender itself. The result is freshly allocated.
func (w *Network) Neighbors(id NodeID) []NodeID {
	n := w.Node(id)
	if n == nil || !n.up {
		return nil
	}
	w.refreshGrid()
	pos := n.TruePos()
	r := n.Radio.Range
	reach := int(math.Ceil(r/w.cellSize)) + 1
	center := w.cellOf(pos)
	var out []NodeID
	for dx := -reach; dx <= reach; dx++ {
		for dy := -reach; dy <= reach; dy++ {
			for _, other := range w.cells[cellKey{center.cx + dx, center.cy + dy}] {
				if other == id {
					continue
				}
				o := w.nodes[other]
				if pos.Dist2(o.TruePos()) <= r*r {
					out = append(out, other)
				}
			}
		}
	}
	return out
}

// InRange reports whether a's radio currently reaches b and both are up.
func (w *Network) InRange(a, b NodeID) bool {
	na, nb := w.Node(a), w.Node(b)
	if na == nil || nb == nil || !na.up || !nb.up {
		return false
	}
	return na.Radio.Reaches(na.TruePos(), nb.TruePos())
}

func (w *Network) account(n *Node, pkt *Packet) {
	n.TxPackets++
	n.TxBytes += uint64(pkt.Size)
	w.kindTx[pkt.Kind]++
	w.kindBytes[pkt.Kind] += uint64(pkt.Size)
	senders := w.kindSenders[pkt.Kind]
	if senders == nil {
		senders = make(map[NodeID]bool)
		w.kindSenders[pkt.Kind] = senders
	}
	senders[n.ID] = true
	if pkt.Control {
		w.ctrlBytes += uint64(pkt.Size)
	} else {
		w.dataBytes += uint64(pkt.Size)
	}
	if pkt.Src != n.ID {
		n.ForwardLoad++
	}
}

// Unicast transmits pkt from one node to a one-hop neighbor. It reports
// whether the transmission was attempted (sender up, receiver up, in
// range); a true return still allows in-flight loss per the radio model.
// Delivery is scheduled on the simulator after the radio's hop delay.
func (w *Network) Unicast(from, to NodeID, pkt *Packet) bool {
	src := w.Node(from)
	dst := w.Node(to)
	if src == nil || dst == nil || !src.up || !dst.up {
		return false
	}
	sp, dp := src.TruePos(), dst.TruePos()
	d := sp.Dist(dp)
	if !src.Radio.InRange(d) {
		return false
	}
	w.account(src, pkt)
	if src.Radio.Lost(src.rng) {
		w.lost++
		w.tracer.Eventf(trace.Radio, float64(w.sim.Now()), "LOST %s %d->%d", pkt.Kind, from, to)
		return true
	}
	delay := des.Duration(src.Radio.TxDelay(pkt.Size, d))
	w.sim.After(delay, func() { w.deliver(from, to, pkt) })
	return true
}

// Broadcast transmits pkt to every current one-hop neighbor of the
// sender with a single channel occupation (wireless broadcast
// advantage): the sender's counters are charged once, each receiver
// draws loss independently. It returns the number of neighbors the
// packet was put on air to.
func (w *Network) Broadcast(from NodeID, pkt *Packet) int {
	src := w.Node(from)
	if src == nil || !src.up {
		return 0
	}
	nbrs := w.Neighbors(from)
	w.account(src, pkt)
	sp := src.TruePos()
	for _, to := range nbrs {
		if src.Radio.Lost(src.rng) {
			w.lost++
			continue
		}
		dst := w.nodes[to]
		delay := des.Duration(src.Radio.TxDelay(pkt.Size, sp.Dist(dst.TruePos())))
		to := to
		w.sim.After(delay, func() { w.deliver(from, to, pkt) })
	}
	return len(nbrs)
}

func (w *Network) deliver(from, to NodeID, pkt *Packet) {
	dst := w.Node(to)
	if dst == nil || !dst.up {
		return // went down while the packet was in flight
	}
	pkt.Hops++
	dst.RxPackets++
	dst.RxBytes += uint64(pkt.Size)
	if dst.handler != nil {
		dst.handler(dst, from, pkt)
	}
}

// Stats is a snapshot of the network's aggregate traffic accounting.
type Stats struct {
	ControlBytes, DataBytes uint64
	Lost                    uint64
	KindTx                  map[string]uint64
	KindBytes               map[string]uint64
}

// Stats returns a copy of the aggregate counters.
func (w *Network) Stats() Stats {
	kt := make(map[string]uint64, len(w.kindTx))
	for k, v := range w.kindTx {
		kt[k] = v
	}
	kb := make(map[string]uint64, len(w.kindBytes))
	for k, v := range w.kindBytes {
		kb[k] = v
	}
	return Stats{
		ControlBytes: w.ctrlBytes,
		DataBytes:    w.dataBytes,
		Lost:         w.lost,
		KindTx:       kt,
		KindBytes:    kb,
	}
}

// BytesMatching sums transmitted bytes over packet kinds accepted by
// match; used to isolate one protocol plane's traffic (a geo-routed
// plane appears both under its own kind and under "geo:<kind>").
func (w *Network) BytesMatching(match func(kind string) bool) uint64 {
	var total uint64
	for k, b := range w.kindBytes {
		if match(k) {
			total += b
		}
	}
	return total
}

// SendersMatching counts distinct nodes that transmitted any packet of
// a kind accepted by match — the "how many nodes are involved"
// measure of the paper's membership argument.
func (w *Network) SendersMatching(match func(kind string) bool) int {
	seen := make(map[NodeID]bool)
	for k, senders := range w.kindSenders {
		if !match(k) {
			continue
		}
		for id := range senders {
			seen[id] = true
		}
	}
	return len(seen)
}

// ResetTraffic zeroes all traffic counters (network-wide and per-node);
// experiments call it at the end of the warm-up phase.
func (w *Network) ResetTraffic() {
	w.ctrlBytes, w.dataBytes, w.lost = 0, 0, 0
	for k := range w.kindTx {
		delete(w.kindTx, k)
	}
	for k := range w.kindBytes {
		delete(w.kindBytes, k)
	}
	for k := range w.kindSenders {
		delete(w.kindSenders, k)
	}
	for _, n := range w.nodes {
		n.TxPackets, n.TxBytes, n.RxPackets, n.RxBytes, n.ForwardLoad = 0, 0, 0, 0, 0
	}
}

// ForwardLoads returns the per-node forwarding load vector (for Jain
// index computation), restricted to live nodes.
func (w *Network) ForwardLoads() []float64 {
	out := make([]float64, 0, len(w.nodes))
	for _, n := range w.nodes {
		if n.up {
			out = append(out, float64(n.ForwardLoad))
		}
	}
	return out
}

// String summarizes the network.
func (w *Network) String() string {
	up := 0
	for _, n := range w.nodes {
		if n.up {
			up++
		}
	}
	return fmt.Sprintf("network{nodes=%d up=%d arena=%gx%g}", len(w.nodes), up, w.arena.W(), w.arena.H())
}
