package network

import (
	"strings"
	"testing"
)

func TestBytesAndSendersMatching(t *testing.T) {
	sim, net := testNet()
	a := addStatic(net, 0, 0)
	b := addStatic(net, 100, 0)
	c := addStatic(net, 200, 0)
	net.Unicast(a.ID, b.ID, &Packet{Kind: "plane-x", Size: 10, Control: true})
	net.Unicast(b.ID, c.ID, &Packet{Kind: "geo:plane-x", Size: 20, Control: true})
	net.Unicast(c.ID, b.ID, &Packet{Kind: "plane-y", Size: 40})
	sim.Run()

	planeX := func(kind string) bool {
		return kind == "plane-x" || strings.HasPrefix(kind, "geo:plane-x")
	}
	if got := net.BytesMatching(planeX); got != 30 {
		t.Fatalf("plane-x bytes %d want 30", got)
	}
	if got := net.SendersMatching(planeX); got != 2 {
		t.Fatalf("plane-x senders %d want 2 (a and b)", got)
	}
	all := func(string) bool { return true }
	if got := net.SendersMatching(all); got != 3 {
		t.Fatalf("all senders %d want 3", got)
	}
	net.ResetTraffic()
	if net.BytesMatching(all) != 0 || net.SendersMatching(all) != 0 {
		t.Fatal("ResetTraffic left matcher state")
	}
}

func TestSendersCountedOncePerKind(t *testing.T) {
	sim, net := testNet()
	a := addStatic(net, 0, 0)
	b := addStatic(net, 100, 0)
	for i := 0; i < 5; i++ {
		net.Unicast(a.ID, b.ID, &Packet{Kind: "k", Size: 1})
	}
	sim.Run()
	if got := net.SendersMatching(func(k string) bool { return k == "k" }); got != 1 {
		t.Fatalf("senders %d want 1", got)
	}
}

func TestInRangeAndString(t *testing.T) {
	_, net := testNet()
	a := addStatic(net, 0, 0)
	b := addStatic(net, 100, 0)
	c := addStatic(net, 900, 0)
	if !net.InRange(a.ID, b.ID) {
		t.Fatal("adjacent nodes should be in range")
	}
	if net.InRange(a.ID, c.ID) {
		t.Fatal("distant nodes should be out of range")
	}
	b.Fail()
	if net.InRange(a.ID, b.ID) {
		t.Fatal("down node should not be in range")
	}
	if net.InRange(a.ID, NodeID(99)) || net.InRange(NodeID(-2), a.ID) {
		t.Fatal("invalid IDs should not be in range")
	}
	s := net.String()
	if !strings.Contains(s, "nodes=3") || !strings.Contains(s, "up=2") {
		t.Fatalf("String() = %q", s)
	}
}

func TestNodeAccessors(t *testing.T) {
	_, net := testNet()
	a := addStatic(net, 5, 5)
	if a.Net() != net {
		t.Fatal("Net() accessor wrong")
	}
	if a.Rand() == nil {
		t.Fatal("node PRNG missing")
	}
	if a.Fix().Pos != a.TruePos() {
		t.Fatal("oracle fix should match truth")
	}
}

func TestBroadcastFromDownNode(t *testing.T) {
	_, net := testNet()
	a := addStatic(net, 0, 0)
	addStatic(net, 100, 0)
	a.Fail()
	if got := net.Broadcast(a.ID, &Packet{Kind: "x", Size: 1}); got != 0 {
		t.Fatalf("down node broadcast reached %d", got)
	}
	if net.Broadcast(NodeID(99), &Packet{Kind: "x", Size: 1}) != 0 {
		t.Fatal("invalid node broadcast should reach 0")
	}
}
