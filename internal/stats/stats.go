// Package stats provides the statistical accumulators the experiment
// harness reports with: running mean/variance, percentiles, fixed-bin
// histograms, Jain's fairness index (the paper's load-balancing claim is
// quantified with it), and Student-t confidence intervals across
// replicated runs.
//
// # The empty-sample contract
//
// Scenario runs can legitimately produce no observations — a script
// whose flows all fail delivers zero packets — and the metrics pipeline
// must render such runs as defined numbers, never NaN or a panic. Every
// reduction here therefore has a pinned empty-input result:
//
//   - Accumulator and Sample moments (Mean, Std, Var, Min, Max) are 0;
//   - Sample.Percentile and Sample.Median are 0;
//   - JainIndex of no loads is 0 (no flows — fairness is undefined and
//     reported as the out-of-range sentinel), while all-zero loads are
//     perfectly even and report 1;
//   - CoefficientOfVariation of an empty or zero-mean input is 0;
//   - MeanCI of fewer than two samples has half-width 0.
//
// Consumers (scenario.RunScript, the experiment tables) rely on these
// values instead of re-guarding at every call site.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Accumulator keeps running count, mean, and variance using Welford's
// algorithm, plus min and max. The zero value is ready to use.
type Accumulator struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// AddN records the observation x with weight n (n identical samples).
func (a *Accumulator) AddN(x float64, n uint64) {
	for i := uint64(0); i < n; i++ {
		a.Add(x)
	}
}

// N returns the number of observations.
func (a *Accumulator) N() uint64 { return a.n }

// Mean returns the sample mean, or 0 with no observations.
func (a *Accumulator) Mean() float64 { return a.mean }

// Sum returns the total of all observations.
func (a *Accumulator) Sum() float64 { return a.mean * float64(a.n) }

// Var returns the unbiased sample variance.
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest observation, or 0 with no observations.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 with no observations.
func (a *Accumulator) Max() float64 { return a.max }

// String summarizes the accumulator for harness output.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		a.n, a.Mean(), a.Std(), a.min, a.max)
}

// Merge folds the other accumulator into a (parallel reduction across
// replicated runs). Chan-style merging keeps the harness single-pass.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	mean := a.mean + delta*float64(b.n)/float64(n)
	m2 := a.m2 + b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n, a.mean, a.m2 = n, mean, m2
}

// Sample retains every observation so exact percentiles can be computed.
// Use it for bounded-cardinality metrics (per-run results); use
// Accumulator for per-packet metrics.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns the recorded observations (shared slice; callers must
// not modify it).
func (s *Sample) Values() []float64 { return s.xs }

// Mean returns the sample mean, or 0 with no observations.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Std returns the unbiased sample standard deviation.
func (s *Sample) Std() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks, or 0 with no observations.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// JainIndex computes Jain's fairness index of the loads xs:
// (sum x)^2 / (n * sum x^2). It is 1 for perfectly even load and 1/n when
// one element carries everything; the paper's load-balancing claim is
// "no node is more loaded than any others", i.e. index near 1.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1 // all zero loads are perfectly even
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// CoefficientOfVariation returns std/mean of xs, another dispersion
// measure reported alongside the Jain index.
func CoefficientOfVariation(xs []float64) float64 {
	var s Sample
	for _, x := range xs {
		s.Add(x)
	}
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.Std() / m
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi); observations
// outside the range are clamped into the edge bins so totals are
// preserved.
type Histogram struct {
	Lo, Hi float64
	Bins   []uint64
	count  uint64
}

// NewHistogram returns a histogram with the given bin count over
// [lo, hi). It panics on a non-positive bin count or an empty range,
// which are always configuration errors.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]uint64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i]++
	h.count++
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// String renders a compact ASCII bar chart, one row per bin.
func (h *Histogram) String() string {
	var b strings.Builder
	width := h.Hi - h.Lo
	var maxBin uint64
	for _, c := range h.Bins {
		if c > maxBin {
			maxBin = c
		}
	}
	for i, c := range h.Bins {
		lo := h.Lo + width*float64(i)/float64(len(h.Bins))
		hi := h.Lo + width*float64(i+1)/float64(len(h.Bins))
		bar := 0
		if maxBin > 0 {
			bar = int(40 * c / maxBin)
		}
		fmt.Fprintf(&b, "[%8.3g,%8.3g) %8d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	return b.String()
}

// MeanCI returns the mean of xs and the half-width of its two-sided 95%
// Student-t confidence interval. With fewer than two samples the
// half-width is 0.
func MeanCI(xs []float64) (mean, halfWidth float64) {
	var s Sample
	for _, x := range xs {
		s.Add(x)
	}
	n := s.N()
	mean = s.Mean()
	if n < 2 {
		return mean, 0
	}
	t := tCritical95(n - 1)
	return mean, t * s.Std() / math.Sqrt(float64(n))
}

// tCritical95 returns the two-sided 95% critical value of Student's t
// with df degrees of freedom (table for small df, normal approximation
// beyond).
func tCritical95(df int) float64 {
	table := []float64{ // df = 1..30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.NaN()
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.960
}

// TimeSeries accumulates (time, value) observations into fixed-width
// windows, reporting per-window sums — the rate-over-time view used for
// overhead and delivery plots. Observations before the start time are
// folded into the first window; the series grows as needed.
type TimeSeries struct {
	Start, Width float64
	sums         []float64
	counts       []uint64
}

// NewTimeSeries returns a series with the given window width (seconds),
// starting at start. It panics on a non-positive width.
func NewTimeSeries(start, width float64) *TimeSeries {
	if width <= 0 {
		panic("stats: non-positive time series window")
	}
	return &TimeSeries{Start: start, Width: width}
}

// Add records a value at time t.
func (ts *TimeSeries) Add(t, v float64) {
	idx := 0
	if t > ts.Start {
		idx = int((t - ts.Start) / ts.Width)
	}
	for idx >= len(ts.sums) {
		ts.sums = append(ts.sums, 0)
		ts.counts = append(ts.counts, 0)
	}
	ts.sums[idx] += v
	ts.counts[idx]++
}

// Windows returns the number of windows materialized so far.
func (ts *TimeSeries) Windows() int { return len(ts.sums) }

// Sum returns the total of window i (0 for untouched windows).
func (ts *TimeSeries) Sum(i int) float64 {
	if i < 0 || i >= len(ts.sums) {
		return 0
	}
	return ts.sums[i]
}

// Count returns the number of observations in window i.
func (ts *TimeSeries) Count(i int) uint64 {
	if i < 0 || i >= len(ts.counts) {
		return 0
	}
	return ts.counts[i]
}

// Rate returns window i's sum divided by the window width — the
// per-second rate over that window.
func (ts *TimeSeries) Rate(i int) float64 { return ts.Sum(i) / ts.Width }

// Rates returns the per-second rate of every window.
func (ts *TimeSeries) Rates() []float64 {
	out := make([]float64, len(ts.sums))
	for i := range ts.sums {
		out[i] = ts.Rate(i)
	}
	return out
}
