package stats

import "math"

// LogHist is a deterministic log-spaced histogram: the streaming
// replacement for Sample on hot per-delivery paths, where retaining one
// float64 per observation is O(packets) memory the mega-scale worlds
// cannot afford. It keeps an exact count, sum (so Mean is exact, in the
// observation order's float sum like Sample's), and min/max, plus a
// fixed array of logHistSub linear sub-buckets per power-of-two octave;
// Percentile answers from the buckets with a bounded relative error
// (see Percentile) instead of exactly.
//
// Determinism: bucketing uses only exact float operations
// (math.Frexp, scaling by powers of two, truncation) — no logarithms —
// so the same observations produce the same bins on every platform.
// The zero value is ready to use, and an empty histogram follows the
// package's empty-sample contract: Mean, Percentile, Min, and Max all
// report 0.
type LogHist struct {
	count    uint64
	sum      float64
	min, max float64
	bins     [logHistBins]uint64
}

// Histogram geometry. math.Frexp decomposes x = frac * 2^exp with
// frac in [0.5, 1); octaves logHistMinExp..logHistMaxExp are covered,
// each split into logHistSub equal-width sub-buckets, so one bucket
// spans a relative width of at most 1/logHistSub. Bin 0 is the
// underflow bin: zero, negative, and sub-2^(logHistMinExp-1) values
// (all reported as 0 — for the delay/hop observations this histogram
// serves, anything below a nanosecond is indistinguishable from zero).
// Values at or above 2^logHistMaxExp clamp into the top bin.
const (
	logHistSub    = 16
	logHistMinExp = -30
	logHistMaxExp = 20
	logHistBins   = (logHistMaxExp-logHistMinExp+1)*logHistSub + 1
)

// logHistBucket maps an observation to its bin. Exact float arithmetic
// only: 2*frac-1 is exact for frac in [0.5, 1), and the logHistSub
// scale is a power of two.
func logHistBucket(x float64) int {
	if x <= 0 || math.IsNaN(x) {
		return 0
	}
	frac, exp := math.Frexp(x)
	if exp < logHistMinExp {
		return 0
	}
	if exp > logHistMaxExp {
		return logHistBins - 1
	}
	s := int((2*frac - 1) * logHistSub)
	return 1 + (exp-logHistMinExp)*logHistSub + s
}

// logHistBounds returns the [lo, hi) value range of a non-underflow bin.
func logHistBounds(b int) (lo, hi float64) {
	e := (b-1)/logHistSub + logHistMinExp
	s := (b - 1) % logHistSub
	lo = math.Ldexp(1+float64(s)/logHistSub, e-1)
	hi = math.Ldexp(1+float64(s+1)/logHistSub, e-1)
	return lo, hi
}

// Add folds one observation into the histogram.
func (h *LogHist) Add(x float64) {
	if h.count == 0 || x < h.min {
		h.min = x
	}
	if h.count == 0 || x > h.max {
		h.max = x
	}
	h.count++
	h.sum += x
	h.bins[logHistBucket(x)]++
}

// N returns the observation count.
func (h *LogHist) N() int { return int(h.count) }

// Sum returns the exact sum of the observations.
func (h *LogHist) Sum() float64 { return h.sum }

// Mean returns the exact mean (0 when empty).
func (h *LogHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the exact extremes (0 when empty).
func (h *LogHist) Min() float64 { return h.min }
func (h *LogHist) Max() float64 { return h.max }

// Percentile returns the p-th percentile with Sample.Percentile's
// conventions (empty is 0, p<=0 the minimum, p>=100 the maximum,
// interior ranks linearly interpolated at rank p/100*(N-1)) — but
// answered from the buckets: each order statistic is located in its
// bin and placed by intra-bin linear interpolation. The result is
// within one bucket width of the exact sample percentile, a relative
// error of at most 1/logHistSub (6.25%) for positive observations
// (TestLogHistPercentileErrorBound pins this against exact Sample
// percentiles), and is clamped to the observed [Min, Max].
func (h *LogHist) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if h.min == h.max {
		return h.min // constant distribution: exact
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := p / 100 * float64(h.count-1)
	lo := math.Floor(rank)
	frac := rank - lo
	v := h.orderStat(uint64(lo))
	if frac > 0 {
		v += frac * (h.orderStat(uint64(lo)+1) - v)
	}
	return math.Min(math.Max(v, h.min), h.max)
}

// Median is the 50th percentile.
func (h *LogHist) Median() float64 { return h.Percentile(50) }

// orderStat approximates the 0-based k-th smallest observation from
// the bins, spreading a bin's n observations evenly across its value
// range.
func (h *LogHist) orderStat(k uint64) float64 {
	var cum uint64
	for b := range h.bins {
		n := h.bins[b]
		if n == 0 {
			continue
		}
		if k < cum+n {
			if b == 0 {
				return 0
			}
			lo, hi := logHistBounds(b)
			return lo + (hi-lo)*((float64(k-cum)+0.5)/float64(n))
		}
		cum += n
	}
	return h.max
}

// Merge folds another histogram into this one. The bin counts, the
// observation count, and min/max make this an order-insensitive
// reduction; the sum is a float sum, so Mean can differ in the last
// ulps across merge orders — merge in a deterministic order when the
// result feeds the byte-identical-tables contract, exactly as for
// Accumulator.Merge.
func (h *LogHist) Merge(o *LogHist) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range o.bins {
		h.bins[i] += o.bins[i]
	}
}

// Fingerprint digests the full histogram state (count, sum, extremes,
// and every occupied bin) into one FNV-1a hash. Two runs that fold the
// same observations in the same order fingerprint identically; the
// scengen harness uses this to assert the streaming-metrics pipeline
// is rerun-, worker-, and shard-count-invariant.
func (h *LogHist) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	f := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			f ^= v & 0xff
			f *= prime
			v >>= 8
		}
	}
	mix(h.count)
	mix(math.Float64bits(h.sum))
	mix(math.Float64bits(h.min))
	mix(math.Float64bits(h.max))
	for b := range h.bins {
		if h.bins[b] != 0 {
			mix(uint64(b))
			mix(h.bins[b])
		}
	}
	return f
}
