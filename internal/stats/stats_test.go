package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N=%d", a.N())
	}
	if !almostEq(a.Mean(), 5, 1e-12) {
		t.Fatalf("Mean=%v want 5", a.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if !almostEq(a.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("Var=%v want %v", a.Var(), 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max %v %v", a.Min(), a.Max())
	}
	if !almostEq(a.Sum(), 40, 1e-9) {
		t.Fatalf("Sum=%v want 40", a.Sum())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Var() != 0 || a.Std() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestAccumulatorAddN(t *testing.T) {
	var a, b Accumulator
	a.AddN(3, 5)
	for i := 0; i < 5; i++ {
		b.Add(3)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() {
		t.Fatal("AddN should equal repeated Add")
	}
}

func TestAccumulatorMergeMatchesCombined(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(vs []float64) []float64 {
			out := vs[:0:0]
			for _, v := range vs {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
					out = append(out, v)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, all Accumulator
		for _, x := range xs {
			a.Add(x)
			all.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
			all.Add(y)
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			almostEq(a.Mean(), all.Mean(), 1e-6*(1+math.Abs(all.Mean()))) &&
			almostEq(a.Var(), all.Var(), 1e-4*(1+all.Var()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Median(); !almostEq(got, 50.5, 1e-9) {
		t.Errorf("median %v want 50.5", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 %v want 1", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("p100 %v want 100", got)
	}
	if got := s.Percentile(95); !almostEq(got, 95.05, 1e-9) {
		t.Errorf("p95 %v want 95.05", got)
	}
}

// TestSampleEmpty pins the package's empty-sample contract (see the
// package comment): zero-observation reductions are 0, never NaN.
func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.Std() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	if s.Median() != 0 || s.Percentile(0) != 0 || s.Percentile(95) != 0 || s.Percentile(100) != 0 {
		t.Fatal("empty percentiles should report zeros")
	}
	if s.N() != 0 {
		t.Fatal("empty sample has observations")
	}
	if got := CoefficientOfVariation(nil); got != 0 {
		t.Fatalf("empty CoV %v want 0", got)
	}
	if mean, hw := MeanCI(nil); mean != 0 || hw != 0 {
		t.Fatalf("empty MeanCI (%v, %v) want zeros", mean, hw)
	}
	if mean, hw := MeanCI([]float64{3}); mean != 3 || hw != 0 {
		t.Fatalf("single-sample MeanCI (%v, %v) want (3, 0)", mean, hw)
	}
}

func TestSamplePercentileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, p1, p2 uint8) bool {
		var s Sample
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				s.Add(x)
			}
		}
		a := float64(p1 % 101)
		b := float64(p2 % 101)
		if a > b {
			a, b = b, a
		}
		return s.Percentile(a) <= s.Percentile(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); !almostEq(got, 1, 1e-12) {
		t.Errorf("even loads index %v want 1", got)
	}
	if got := JainIndex([]float64{4, 0, 0, 0}); !almostEq(got, 0.25, 1e-12) {
		t.Errorf("single hot spot index %v want 0.25", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Errorf("empty index %v want 0", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero index %v want 1", got)
	}
}

func TestJainIndexBoundsProperty(t *testing.T) {
	f := func(xs []uint16) bool {
		if len(xs) == 0 {
			return true
		}
		loads := make([]float64, len(xs))
		for i, x := range xs {
			loads[i] = float64(x)
		}
		j := JainIndex(loads)
		return j >= 1.0/float64(len(xs))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if got := CoefficientOfVariation([]float64{5, 5, 5}); got != 0 {
		t.Errorf("constant CV %v want 0", got)
	}
	if got := CoefficientOfVariation(nil); got != 0 {
		t.Errorf("empty CV %v want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1, 2.5, 5, 9.99, -3, 42} {
		h.Add(x)
	}
	if h.Count() != 7 {
		t.Fatalf("Count=%d", h.Count())
	}
	// -3 clamps into bin 0, 42 into bin 4.
	if h.Bins[0] != 3 { // 0, 1, -3
		t.Errorf("bin0=%d want 3", h.Bins[0])
	}
	if h.Bins[4] != 2 { // 9.99, 42
		t.Errorf("bin4=%d want 2", h.Bins[4])
	}
	if h.String() == "" {
		t.Error("String should render")
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestMeanCI(t *testing.T) {
	mean, hw := MeanCI([]float64{10, 10, 10, 10})
	if mean != 10 || hw != 0 {
		t.Fatalf("constant CI got %v±%v", mean, hw)
	}
	mean, hw = MeanCI([]float64{8, 12})
	if mean != 10 {
		t.Fatalf("mean %v want 10", mean)
	}
	// std = 2*sqrt(2)... actually std of {8,12} = sqrt(8) = 2.828; se = 2; t(1)=12.706
	if !almostEq(hw, 12.706*2.8284271247/math.Sqrt(2), 1e-3) {
		t.Fatalf("half width %v", hw)
	}
	if _, hw := MeanCI([]float64{1}); hw != 0 {
		t.Fatal("single sample should have zero half-width")
	}
}

func TestTCriticalMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 40; df++ {
		v := tCritical95(df)
		if v > prev+1e-9 {
			t.Fatalf("t-critical not non-increasing at df=%d", df)
		}
		prev = v
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Fatal("df=0 should be NaN")
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(10, 2)
	ts.Add(10, 4)   // window 0
	ts.Add(11.9, 6) // window 0
	ts.Add(12, 1)   // window 1
	ts.Add(17, 3)   // window 3
	ts.Add(5, 2)    // before start: folds into window 0
	if ts.Windows() != 4 {
		t.Fatalf("windows %d want 4", ts.Windows())
	}
	if ts.Sum(0) != 12 || ts.Count(0) != 3 {
		t.Fatalf("window 0: sum %v count %d", ts.Sum(0), ts.Count(0))
	}
	if ts.Sum(1) != 1 || ts.Sum(2) != 0 || ts.Sum(3) != 3 {
		t.Fatal("window sums wrong")
	}
	if ts.Rate(0) != 6 {
		t.Fatalf("rate %v want 6", ts.Rate(0))
	}
	if got := ts.Rates(); len(got) != 4 || got[3] != 1.5 {
		t.Fatalf("rates %v", got)
	}
	if ts.Sum(-1) != 0 || ts.Sum(9) != 0 || ts.Count(9) != 0 {
		t.Fatal("out-of-range windows should read zero")
	}
}

func TestTimeSeriesPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewTimeSeries(0, 0)
}
