package stats

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// TestLogHistEmptyContract pins the package's empty-sample contract
// for the streaming histogram: every reduction of an empty LogHist is
// 0, never NaN or a panic.
func TestLogHistEmptyContract(t *testing.T) {
	var h LogHist
	for name, got := range map[string]float64{
		"Mean":            h.Mean(),
		"Sum":             h.Sum(),
		"Min":             h.Min(),
		"Max":             h.Max(),
		"Median":          h.Median(),
		"Percentile(0)":   h.Percentile(0),
		"Percentile(95)":  h.Percentile(95),
		"Percentile(100)": h.Percentile(100),
	} {
		if got != 0 {
			t.Errorf("empty LogHist %s = %g, want 0", name, got)
		}
	}
	if h.N() != 0 {
		t.Errorf("empty LogHist N = %d", h.N())
	}
	var o LogHist
	h.Merge(&o) // merging empties stays empty
	if h.N() != 0 || h.Mean() != 0 {
		t.Error("merge of two empty LogHists is not empty")
	}
}

// TestLogHistBucketBounds checks that every observation lands in a bin
// whose bounds contain it and whose relative width is at most
// 1/logHistSub — the invariant the percentile error bound rests on.
func TestLogHistBucketBounds(t *testing.T) {
	rng := xrand.New(3)
	for i := 0; i < 20000; i++ {
		// Log-uniform across the full covered range.
		x := math.Ldexp(rng.Range(0.5, 1), int(rng.Range(logHistMinExp, logHistMaxExp+1)))
		b := logHistBucket(x)
		if b <= 0 || b >= logHistBins {
			t.Fatalf("x=%g: bucket %d out of the in-range bins", x, b)
		}
		lo, hi := logHistBounds(b)
		if x < lo || x >= hi {
			t.Fatalf("x=%g outside its bucket [%g, %g)", x, lo, hi)
		}
		if rel := (hi - lo) / lo; rel > 1.0/logHistSub+1e-12 {
			t.Fatalf("bucket %d relative width %g exceeds 1/%d", b, rel, logHistSub)
		}
	}
	// Underflow and clamp edges.
	for _, x := range []float64{0, -1, math.Ldexp(1, logHistMinExp-5), math.NaN()} {
		if b := logHistBucket(x); b != 0 {
			t.Errorf("logHistBucket(%g) = %d, want underflow bin 0", x, b)
		}
	}
	if b := logHistBucket(math.Ldexp(1, logHistMaxExp+3)); b != logHistBins-1 {
		t.Errorf("overflow did not clamp into the top bin: got %d", b)
	}
}

// TestLogHistMeanExact verifies Mean matches Sample.Mean bit-for-bit:
// both fold the observations into one float64 sum in Add order.
func TestLogHistMeanExact(t *testing.T) {
	rng := xrand.New(7)
	var h LogHist
	var s Sample
	for i := 0; i < 5000; i++ {
		x := rng.ExpFloat64() * 0.012
		h.Add(x)
		s.Add(x)
	}
	if h.Mean() != s.Mean() {
		t.Errorf("LogHist.Mean = %v, Sample.Mean = %v: exact-mean contract broken", h.Mean(), s.Mean())
	}
	if h.N() != s.N() {
		t.Errorf("N mismatch: %d vs %d", h.N(), s.N())
	}
}

// TestLogHistPercentileErrorBound pins the histogram percentile
// against the exact Sample percentile on known distributions: the
// relative error must stay within one bucket width (1/logHistSub).
func TestLogHistPercentileErrorBound(t *testing.T) {
	const tol = 1.0/logHistSub + 1e-9
	gens := map[string]func(*xrand.Rand) float64{
		// Delay-like: exponential around 12 ms.
		"exponential": func(r *xrand.Rand) float64 { return r.ExpFloat64() * 0.012 },
		// Uniform window.
		"uniform": func(r *xrand.Rand) float64 { return r.Range(0.001, 0.2) },
		// Heavy-tailed: lognormal.
		"lognormal": func(r *xrand.Rand) float64 { return math.Exp(r.NormFloat64()*1.5 - 4) },
		// Hop-count-like small integers.
		"hops": func(r *xrand.Rand) float64 { return float64(1 + r.Intn(12)) },
	}
	for name, gen := range gens {
		rng := xrand.New(41)
		var h LogHist
		var s Sample
		for i := 0; i < 20000; i++ {
			x := gen(rng)
			h.Add(x)
			s.Add(x)
		}
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 95, 99} {
			exact := s.Percentile(p)
			got := h.Percentile(p)
			if exact <= 0 {
				t.Fatalf("%s p%g: exact percentile %g not positive; bad test distribution", name, p, exact)
			}
			if rel := math.Abs(got-exact) / exact; rel > tol {
				t.Errorf("%s p%g: hist %g vs exact %g, relative error %g > %g", name, p, got, exact, rel, tol)
			}
		}
		// The extremes are exact.
		if h.Percentile(0) != s.Percentile(0) || h.Percentile(100) != s.Percentile(100) {
			t.Errorf("%s: extremes not exact: [%g, %g] vs [%g, %g]",
				name, h.Percentile(0), h.Percentile(100), s.Percentile(0), s.Percentile(100))
		}
	}
	// Constant distributions answer exactly at every p.
	var c LogHist
	for i := 0; i < 100; i++ {
		c.Add(0.25)
	}
	for _, p := range []float64{0, 17, 50, 95, 100} {
		if got := c.Percentile(p); got != 0.25 {
			t.Errorf("constant distribution p%g = %g, want 0.25 exactly", p, got)
		}
	}
}

// TestLogHistDeterministicAndMergeOrderInsensitive: the same
// observations fingerprint identically on every run, and a merge of
// per-part histograms is independent of merge order (integer-valued
// observations keep the float sum exact, so even the sum agrees).
func TestLogHistDeterministicAndMergeOrderInsensitive(t *testing.T) {
	mk := func() (whole, a, b LogHist) {
		rng := xrand.New(99)
		for i := 0; i < 4096; i++ {
			x := float64(rng.Intn(1 << 16))
			whole.Add(x)
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		return whole, a, b
	}
	w1, a1, b1 := mk()
	w2, a2, b2 := mk()
	if w1.Fingerprint() != w2.Fingerprint() {
		t.Fatal("identical observation streams fingerprint differently")
	}
	var ab, ba LogHist
	ab.Merge(&a1)
	ab.Merge(&b1)
	ba.Merge(&b2)
	ba.Merge(&a2)
	if ab.Fingerprint() != ba.Fingerprint() {
		t.Fatal("merge order changed the merged histogram")
	}
	if ab.N() != w1.N() || ab.Percentile(95) != w1.Percentile(95) {
		t.Fatal("merged histogram disagrees with the directly built one")
	}
}
