// Package core assembles the paper's primary contribution: the logical
// Hypercube-based Virtual Dynamic Backbone (HVDB). It binds the mobile
// node tier (package cluster) to the hypercube tier (packages hypercube
// and logicalid) and the mesh tier (package meshtier), classifies
// cluster heads into border (BCH) and inner (ICH) roles, and runs the
// paper's Figure 4 algorithm — proactive local logical route
// maintenance — in which every CH periodically beacons its local
// logical route state (delay and bandwidth per route) to its
// 1-logical-hop neighbor CHs and accumulates QoS-annotated routes to
// every CH at most K logical hops away.
//
// # Logical links
//
// Per §4.1, a 1-logical-hop route "connects two CHs" and "does not rely
// on any other CH to route packets along the link". In the VC geometry
// this yields two kinds of logical links, both visible in the paper's
// Figure 3 and in its worked example for node 1000:
//
//   - grid links between CHs of edge-adjacent VCs (e.g. 1000-0010),
//     including the BCH-BCH links crossing hypercube borders, and
//   - hypercube links between CHs whose labels differ in one bit
//     (e.g. the "additional logical links" 1000-1100 and 1000-0000).
//
// A logical link is realized by location-based unicast (package
// georoute) through ordinary cluster members, which is exactly why it
// relies on no intermediate CH.
package core

import (
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/georoute"
	"repro/internal/hypercube"
	"repro/internal/logicalid"
	"repro/internal/meshtier"
	"repro/internal/network"
	"repro/internal/route"
	"repro/internal/trace"
	"repro/internal/vcgrid"
)

// BeaconKind is the packet kind of Figure 4 route beacons.
const BeaconKind = "hvdb-beacon"

// Config parameterizes the backbone.
type Config struct {
	// K is the local route horizon in logical hops (the paper's k,
	// "e.g. k = 4").
	K int
	// BeaconPeriod is the Figure 4 beacon interval in simulated seconds.
	BeaconPeriod des.Duration
	// RouteTTL expires table entries not refreshed for this long.
	RouteTTL des.Duration
	// MaxRoutesPerDest bounds how many distinct-next-hop routes are kept
	// per destination; multiple routes are the paper's availability
	// mechanism ("multiple candidate logical routes become available
	// immediately").
	MaxRoutesPerDest int
	// BeaconHeader and BeaconEntry size the on-air beacon in bytes.
	BeaconHeader, BeaconEntry int
}

// DefaultConfig mirrors the paper's running example: k = 4, with beacon
// cadence slower than cluster beacons (route state changes at CH-churn
// speed, not node-motion speed).
func DefaultConfig() Config {
	return Config{
		K:                4,
		BeaconPeriod:     2.0,
		RouteTTL:         6.5,
		MaxRoutesPerDest: 3,
		BeaconHeader:     16,
		BeaconEntry:      12,
	}
}

// Route is one QoS-annotated logical route table entry.
type Route struct {
	Dest    logicalid.CHID
	NextHop logicalid.CHID
	// Hops is the logical hop count.
	Hops int
	// Delay is the accumulated measured one-way delay in seconds.
	Delay float64
	// Bandwidth is the bottleneck free bandwidth along the route in
	// bits/second.
	Bandwidth float64
	// Expires is the simulation time the entry goes stale.
	Expires des.Time
}

// beaconEntry is the wire form of one advertised route.
type beaconEntry struct {
	Dest      logicalid.CHID
	Hops      int
	Delay     float64
	Bandwidth float64
}

// beaconPayload is the wire form of a Figure 4 beacon.
type beaconPayload struct {
	FromSlot logicalid.CHID
	Sent     des.Time
	FreeBW   float64
	Entries  []beaconEntry
}

// routeTable holds the logical routes known at one CH slot (VC). The
// table belongs to the slot rather than the node so that CH handover
// within a VC keeps the accumulated state, mirroring the paper's
// non-dynamic-backbone property.
type routeTable struct {
	routes map[logicalid.CHID][]Route // by destination
}

func newRouteTable() *routeTable {
	return &routeTable{routes: make(map[logicalid.CHID][]Route)}
}

// Backbone is the HVDB instance over one network.
type Backbone struct {
	net    *network.Network
	cm     *cluster.Manager
	scheme *logicalid.Scheme
	geo    *georoute.Router
	cfg    Config
	tr     trace.Tracer
	trOn   bool // gates per-beacon trace calls (arg boxing allocates)

	tables map[logicalid.CHID]*routeTable
	inner  *network.Mux // dispatch for logically-routed inner packets

	// nbrCache memoizes LogicalNeighbors per slot; entries are valid
	// while their stamp matches the cluster manager's Version (CH
	// occupancy only changes when an election applies).
	nbrCache []nbrCacheEntry

	// trees is the protocol-plane multicast-tree cache shared by the
	// data plane and the QoS admission path (see internal/route).
	trees route.Cache

	// meshMemo/cubeMemo memoize SharedMesh/SharedCube per cluster
	// topology version (occupancy is the only dynamic input).
	meshMemo struct {
		stamp uint64 // cm.Version()+1; 0 = never filled
		mesh  *meshtier.Mesh
	}
	cubeMemo []cubeMemoEntry

	// beaconSlots is the reused, sorted slot list of one BeaconRound.
	beaconSlots []logicalid.CHID

	// entryArena is the round's shared beaconEntry backing array: one
	// allocation per round instead of one (plus growth) per slot. A
	// fresh arena is allocated each round because payloads reference
	// their sub-slices until every delivery has run; the previous
	// arena simply falls to the GC when its last payload does.
	entryArenaCap int

	ticker  *des.Ticker
	beacons uint64
}

type nbrCacheEntry struct {
	stamp uint64 // cm.Version()+1; 0 = never filled
	ids   []logicalid.CHID
}

type cubeMemoEntry struct {
	stamp uint64
	cube  *hypercube.Cube
}

// New assembles a backbone. The mux must already be bound to the
// network's nodes; the backbone installs the geo-routing layer and its
// beacon handling on it. Invalid configs fall back to DefaultConfig.
func New(net *network.Network, mux *network.Mux, cm *cluster.Manager, scheme *logicalid.Scheme, cfg Config) *Backbone {
	if cfg.K <= 0 || cfg.BeaconPeriod <= 0 {
		cfg = DefaultConfig()
	}
	b := &Backbone{
		net:    net,
		cm:     cm,
		scheme: scheme,
		cfg:    cfg,
		tr:     trace.Nop,
		tables: make(map[logicalid.CHID]*routeTable),
		inner:  network.NewMux(),
	}
	b.geo = georoute.Attach(net, mux)
	b.geo.DeliverFallback(func(n *network.Node, pkt *network.Packet) {
		b.inner.Dispatch(n, pkt.Src, pkt)
	})
	b.inner.Handle(BeaconKind, b.onBeacon)
	return b
}

// SetTracer installs a tracer; nil resets to no-op.
func (b *Backbone) SetTracer(t trace.Tracer) {
	if t == nil {
		t = trace.Nop
	}
	b.tr = t
	b.trOn = t != trace.Nop
	b.geo.SetTracer(t)
}

// Geo exposes the location-based unicast layer (baselines reuse it).
func (b *Backbone) Geo() *georoute.Router { return b.geo }

// Scheme returns the logical identifier scheme.
func (b *Backbone) Scheme() *logicalid.Scheme { return b.scheme }

// Clusters returns the clustering manager.
func (b *Backbone) Clusters() *cluster.Manager { return b.cm }

// Net returns the underlying network.
func (b *Backbone) Net() *network.Network { return b.net }

// Config returns the active configuration.
func (b *Backbone) Config() Config { return b.cfg }

// HandleInner registers an upper-layer consumer (membership summaries,
// multicast data) for logically-routed packets of the given kind.
func (b *Backbone) HandleInner(kind string, h network.Handler) {
	b.inner.Handle(kind, h)
}

// Start begins periodic Figure 4 beaconing.
func (b *Backbone) Start() {
	b.ticker = b.net.Sim().Every(b.cfg.BeaconPeriod, b.cfg.BeaconPeriod, b.BeaconRound)
}

// Stop cancels beaconing.
func (b *Backbone) Stop() {
	if b.ticker != nil {
		b.ticker.Stop()
	}
}

// CHNodeOf returns the node currently heading the VC of the given slot,
// or network.NoNode.
func (b *Backbone) CHNodeOf(slot logicalid.CHID) network.NodeID {
	return b.cm.CHOf(b.scheme.Grid().FromIndex(int(slot)))
}

// SlotOfNode returns the CH slot a node currently heads, or -1.
func (b *Backbone) SlotOfNode(id network.NodeID) logicalid.CHID {
	if !b.cm.IsCH(id) {
		return -1
	}
	return logicalid.CHID(b.scheme.Grid().Index(b.cm.VCOfNode(id)))
}

// IsBCH reports whether the slot's CH is a border cluster head.
func (b *Backbone) IsBCH(slot logicalid.CHID) bool {
	return b.scheme.IsBorder(b.scheme.Grid().FromIndex(int(slot)))
}

// Trees returns the backbone's shared multicast-tree cache.
func (b *Backbone) Trees() *route.Cache { return &b.trees }

// Cube materializes the current (possibly incomplete) logical hypercube
// h from the live CH set. The cube is freshly allocated and the caller
// may modify it; hot paths use SharedCube instead.
func (b *Backbone) Cube(h logicalid.HID) *hypercube.Cube {
	c := hypercube.New(b.scheme.Dim())
	for _, vc := range b.scheme.BlockVCs(h) {
		if b.cm.CHOf(vc) != network.NoNode {
			c.Add(b.scheme.PlaceOf(vc).HNID)
		}
	}
	return c
}

// SharedCube returns the current hypercube h, memoized per cluster
// topology version. The result is shared — callers must not modify it.
func (b *Backbone) SharedCube(h logicalid.HID) *hypercube.Cube {
	if b.cubeMemo == nil {
		b.cubeMemo = make([]cubeMemoEntry, b.scheme.NumHypercubes())
	}
	e := &b.cubeMemo[h]
	stamp := b.cm.Version() + 1
	if e.stamp != stamp {
		e.cube = b.Cube(h)
		e.stamp = stamp
	}
	return e.cube
}

// Mesh materializes the current mesh tier: a mesh node is actual "only
// when a logical hypercube exists in it", i.e. at least one CH in the
// block. The mesh is freshly allocated and the caller may modify it;
// hot paths use SharedMesh instead.
func (b *Backbone) Mesh() *meshtier.Mesh {
	cols, rows := b.scheme.MeshSize()
	m := meshtier.New(cols, rows)
	for h := 0; h < b.scheme.NumHypercubes(); h++ {
		for _, vc := range b.scheme.BlockVCs(logicalid.HID(h)) {
			if b.cm.CHOf(vc) != network.NoNode {
				m.Add(h)
				break
			}
		}
	}
	return m
}

// SharedMesh returns the current mesh tier, memoized per cluster
// topology version. The result is shared — callers must not modify it.
func (b *Backbone) SharedMesh() *meshtier.Mesh {
	stamp := b.cm.Version() + 1
	if b.meshMemo.stamp != stamp {
		b.meshMemo.mesh = b.Mesh()
		b.meshMemo.stamp = stamp
	}
	return b.meshMemo.mesh
}

// LogicalNeighbors returns the CH slots one logical hop from the given
// slot under the current CH set: grid-adjacent VCs with CHs (including
// across hypercube borders) plus same-block hypercube-label neighbors.
// Results are sorted, memoized per cluster topology version, and shared
// — callers must not modify the returned slice.
func (b *Backbone) LogicalNeighbors(slot logicalid.CHID) []logicalid.CHID {
	grid := b.scheme.Grid()
	if b.nbrCache == nil {
		b.nbrCache = make([]nbrCacheEntry, grid.Count())
	}
	e := &b.nbrCache[slot]
	stamp := b.cm.Version() + 1
	if e.stamp == stamp {
		return e.ids
	}
	vc := grid.FromIndex(int(slot))
	place := b.scheme.PlaceOf(vc)
	out := e.ids[:0]
	add := func(w vcgrid.VC) {
		if !grid.Valid(w) || b.cm.CHOf(w) == network.NoNode {
			return
		}
		s := logicalid.CHID(grid.Index(w))
		if s == slot {
			return
		}
		for _, have := range out {
			if have == s {
				return
			}
		}
		out = append(out, s)
	}
	for _, w := range grid.Adjacent(vc) {
		add(w)
	}
	for _, nb := range hypercube.AllNeighbors(place.HNID, b.scheme.Dim()) {
		add(b.scheme.VCAt(place.HID, nb))
	}
	out = network.SortedIDs(out)
	e.stamp = stamp
	e.ids = out
	return out
}

// SendLogical forwards an inner packet one logical hop from the CH of
// fromSlot to the CH of toSlot using location-based unicast through
// cluster members. It reports whether transmission started.
func (b *Backbone) SendLogical(fromSlot, toSlot logicalid.CHID, inner *network.Packet) bool {
	from := b.CHNodeOf(fromSlot)
	to := b.CHNodeOf(toSlot)
	if from == network.NoNode || to == network.NoNode {
		return false
	}
	target := b.scheme.Grid().Center(b.scheme.Grid().FromIndex(int(toSlot)))
	return b.geo.Send(from, target, to, inner)
}

// table returns (creating if needed) the route table of a slot.
func (b *Backbone) table(slot logicalid.CHID) *routeTable {
	t, ok := b.tables[slot]
	if !ok {
		t = newRouteTable()
		b.tables[slot] = t
	}
	return t
}

// BeaconRound performs one Figure 4 step 1 for every current CH: send
// the local logical route information to all 1-logical-hop neighbor
// CHs. Slots beacon in ascending order (not map order), so the round's
// event sequence is identical across reruns. Exported so experiments
// can drive rounds directly.
func (b *Backbone) BeaconRound() {
	now := b.net.Sim().Now()
	b.beaconSlots = b.beaconSlots[:0]
	for vc := range b.cm.Heads() {
		b.beaconSlots = append(b.beaconSlots, logicalid.CHID(b.scheme.Grid().Index(vc)))
	}
	b.beaconSlots = network.SortedIDs(b.beaconSlots)
	arena := make([]beaconEntry, 0, b.entryArenaCap)
	for _, slot := range b.beaconSlots {
		ch := b.CHNodeOf(slot)
		var entries []beaconEntry
		entries, arena = b.exportEntries(slot, now, arena)
		free := 0.0
		if n := b.net.Node(ch); n != nil {
			free = n.Capacity().Free()
		}
		payload := &beaconPayload{FromSlot: slot, Sent: now, FreeBW: free, Entries: entries}
		size := b.cfg.BeaconHeader + len(entries)*b.cfg.BeaconEntry
		for _, nb := range b.LogicalNeighbors(slot) {
			inner := b.net.AcquirePacket()
			inner.Kind = BeaconKind
			inner.Src, inner.Dst = ch, b.CHNodeOf(nb)
			inner.Size, inner.Control, inner.Born = size, true, now
			inner.UID = b.net.NextUID()
			inner.Payload = payload
			if b.SendLogical(slot, nb, inner) {
				b.beacons++
			}
			b.net.ReleasePacket(inner)
		}
	}
	if cap(arena) > b.entryArenaCap {
		b.entryArenaCap = cap(arena)
	}
}

// exportEntries renders the advertisable routes of a slot — itself at
// hops 0 plus every live table entry with fewer than K hops (a neighbor
// would extend it by one) — appended to the round's shared arena. It
// returns the slot's sub-slice and the extended arena. Growing the
// arena mid-round is safe: earlier slots' sub-slices keep referencing
// the old backing array, which their payloads pin.
func (b *Backbone) exportEntries(slot logicalid.CHID, now des.Time, arena []beaconEntry) ([]beaconEntry, []beaconEntry) {
	t := b.table(slot)
	start := len(arena)
	arena = append(arena, beaconEntry{Dest: slot, Hops: 0, Delay: 0, Bandwidth: 1e12})
	//hvdb:unordered wire order of beacon entries is not observable: onBeacon merges each entry into the receiver's table keyed by Dest (per-dest independent), and within a dest sortRoutes keeps canonical order
	for dest, routes := range t.routes {
		var best *Route
		for i := range routes {
			r := &routes[i]
			if r.Expires < now {
				continue
			}
			if best == nil || r.Hops < best.Hops || (r.Hops == best.Hops && r.Delay < best.Delay) {
				best = r
			}
		}
		if best != nil && best.Hops < b.cfg.K {
			arena = append(arena, beaconEntry{
				Dest: dest, Hops: best.Hops, Delay: best.Delay, Bandwidth: best.Bandwidth,
			})
		}
	}
	return arena[start:len(arena):len(arena)], arena
}

// onBeacon is Figure 4 step 2: update local logical routes.
func (b *Backbone) onBeacon(n *network.Node, _ network.NodeID, pkt *network.Packet) {
	payload, ok := pkt.Payload.(*beaconPayload)
	if !ok {
		return
	}
	slot := b.SlotOfNode(n.ID)
	if slot < 0 {
		return // no longer a CH; the beacon outlived the role
	}
	now := b.net.Sim().Now()
	linkDelay := float64(now - payload.Sent)
	if linkDelay < 0 {
		linkDelay = 0
	}
	t := b.table(slot)
	for _, e := range payload.Entries {
		if e.Dest == slot {
			continue
		}
		hops := e.Hops + 1
		if hops > b.cfg.K {
			continue
		}
		bw := payload.FreeBW
		if e.Bandwidth < bw {
			bw = e.Bandwidth
		}
		t.update(Route{
			Dest:      e.Dest,
			NextHop:   payload.FromSlot,
			Hops:      hops,
			Delay:     e.Delay + linkDelay,
			Bandwidth: bw,
			Expires:   now + b.cfg.RouteTTL,
		}, b.cfg.MaxRoutesPerDest)
	}
	if b.trOn {
		b.tr.Eventf(trace.Routes, float64(now), "slot %d absorbed beacon from %d (%d entries)",
			slot, payload.FromSlot, len(payload.Entries))
	}
}

// update inserts or refreshes a route, keeping at most maxRoutes routes
// per destination with distinct next hops (preferring fewer hops, then
// lower delay). The slice is tiny (maxRoutes is 3 by default), so the
// sorted order is restored by a single insertion pass rather than a
// sort.Slice call per beacon entry.
func (t *routeTable) update(r Route, maxRoutes int) {
	routes := t.routes[r.Dest]
	for i := range routes {
		if routes[i].NextHop == r.NextHop {
			routes[i] = r
			sortRoutes(routes) // in place; the map's slice header is unchanged
			return
		}
	}
	if routes == nil {
		// First route to this destination: size the slice for the cap
		// plus the one overflow slot trimmed below, so steady-state
		// updates never reallocate.
		routes = make([]Route, 0, maxRoutes+1)
	}
	routes = sortRoutes(append(routes, r))
	if len(routes) > maxRoutes {
		routes = routes[:maxRoutes]
	}
	t.routes[r.Dest] = routes
}

// sortRoutes insertion-sorts by (hops, delay); stable for equal keys.
func sortRoutes(routes []Route) []Route {
	for i := 1; i < len(routes); i++ {
		for j := i; j > 0 && routeLess(&routes[j], &routes[j-1]); j-- {
			routes[j], routes[j-1] = routes[j-1], routes[j]
		}
	}
	return routes
}

func routeLess(a, b *Route) bool {
	if a.Hops != b.Hops {
		return a.Hops < b.Hops
	}
	return a.Delay < b.Delay
}

// Routes returns the live routes from one slot to a destination slot,
// best first. The slice is freshly allocated.
func (b *Backbone) Routes(from, to logicalid.CHID) []Route {
	now := b.net.Sim().Now()
	var out []Route
	for _, r := range b.table(from).routes[to] {
		if r.Expires >= now {
			out = append(out, r)
		}
	}
	return out
}

// BestRoute returns the best live route satisfying the QoS constraints
// (minBW in bits/second, maxDelay in seconds; zero means unconstrained),
// or nil. This is the QoS selection the paper's availability argument
// relies on: when the current route breaks, the next candidate is
// already in the table.
func (b *Backbone) BestRoute(from, to logicalid.CHID, minBW, maxDelay float64) *Route {
	for _, r := range b.Routes(from, to) {
		if minBW > 0 && r.Bandwidth < minBW {
			continue
		}
		if maxDelay > 0 && r.Delay > maxDelay {
			continue
		}
		r := r
		return &r
	}
	return nil
}

// KnownDestinations returns how many distinct destinations have a live
// route from the slot — the convergence measure of Figure 4
// experiments.
func (b *Backbone) KnownDestinations(from logicalid.CHID) int {
	now := b.net.Sim().Now()
	count := 0
	for _, routes := range b.table(from).routes {
		for _, r := range routes {
			if r.Expires >= now {
				count++
				break
			}
		}
	}
	return count
}

// Beacons returns the number of logical beacons sent so far.
func (b *Backbone) Beacons() uint64 { return b.beacons }

// LogicalReach returns the set of slots within at most k logical hops
// of the start slot in the *current* logical topology (ground truth by
// BFS, independent of route tables) — what a converged table should
// know. Used by tests and the Figure 4 experiment.
func (b *Backbone) LogicalReach(start logicalid.CHID, k int) map[logicalid.CHID]int {
	dist := map[logicalid.CHID]int{start: 0}
	frontier := []logicalid.CHID{start}
	for d := 1; d <= k; d++ {
		var next []logicalid.CHID
		for _, u := range frontier {
			for _, v := range b.LogicalNeighbors(u) {
				if _, ok := dist[v]; !ok {
					dist[v] = d
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	delete(dist, start)
	return dist
}
