package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/hypercube"
	"repro/internal/logicalid"
	"repro/internal/mobility"
	"repro/internal/network"
	"repro/internal/radio"
	"repro/internal/vcgrid"
	"repro/internal/xrand"
)

// testbed builds the paper's example configuration: an 8x8 VC grid
// (2000x2000 m, 250 m cells) divided into four 4-D hypercubes, with one
// static CH-capable node at every VCC. skip lists VC indices left
// without any node (holes -> incomplete hypercubes).
type testbed struct {
	sim    *des.Simulator
	net    *network.Network
	cm     *cluster.Manager
	scheme *logicalid.Scheme
	bb     *Backbone
	// nodeAt maps VC index to the node placed there (NoNode if skipped).
	nodeAt map[int]network.NodeID
}

func newTestbed(t *testing.T, cfg Config, skip ...int) *testbed {
	t.Helper()
	tb := &testbed{nodeAt: map[int]network.NodeID{}}
	tb.sim = des.New()
	arena := geom.RectWH(0, 0, 2000, 2000)
	tb.net = network.New(tb.sim, arena, xrand.New(7))
	grid := vcgrid.New(arena, 250)
	skipped := map[int]bool{}
	for _, s := range skip {
		skipped[s] = true
	}
	for i := 0; i < grid.Count(); i++ {
		if skipped[i] {
			tb.nodeAt[i] = network.NoNode
			continue
		}
		n := tb.net.AddNode(&mobility.Static{P: grid.Center(grid.FromIndex(i))}, radio.DefaultCH, nil, true)
		tb.nodeAt[i] = n.ID
	}
	mux := network.Bind(tb.net)
	tb.cm = cluster.NewManager(tb.net, grid, cluster.DefaultConfig())
	var err error
	tb.scheme, err = logicalid.New(grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	tb.bb = New(tb.net, mux, tb.cm, tb.scheme, cfg)
	tb.cm.Elect()
	return tb
}

// slotOfLabel returns the CH slot of the given label string in block 0.
func (tb *testbed) slotOfLabel(label string) logicalid.CHID {
	var l hypercube.Label
	for _, ch := range label {
		l = l<<1 | hypercube.Label(ch-'0')
	}
	vc := tb.scheme.VCAt(0, l)
	return logicalid.CHID(tb.scheme.Grid().Index(vc))
}

func TestBackboneAssembly(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	// With a CH in every VC, all four hypercubes are complete and the
	// mesh is complete — the paper's Figure 1 structure.
	for h := logicalid.HID(0); h < 4; h++ {
		c := tb.bb.Cube(h)
		if c.Count() != 16 {
			t.Fatalf("cube %d has %d nodes want 16", h, c.Count())
		}
		if !c.Connected() {
			t.Fatalf("cube %d disconnected", h)
		}
	}
	m := tb.bb.Mesh()
	if m.Count() != 4 || !m.Connected() {
		t.Fatalf("mesh count %d", m.Count())
	}
}

func TestIncompleteStructures(t *testing.T) {
	// Empty an entire block (block 3: VCs with cx>=4, cy>=4) plus one
	// VC of block 0.
	var skip []int
	grid := vcgrid.New(geom.RectWH(0, 0, 2000, 2000), 250)
	for cy := 4; cy < 8; cy++ {
		for cx := 4; cx < 8; cx++ {
			skip = append(skip, grid.Index(vcgrid.VC{CX: cx, CY: cy}))
		}
	}
	skip = append(skip, grid.Index(vcgrid.VC{CX: 1, CY: 1})) // label 0011 in block 0
	tb := newTestbed(t, DefaultConfig(), skip...)
	if c := tb.bb.Cube(0); c.Count() != 15 {
		t.Fatalf("cube 0 count %d want 15", c.Count())
	}
	if c := tb.bb.Cube(3); c.Count() != 0 {
		t.Fatalf("cube 3 count %d want 0", c.Count())
	}
	m := tb.bb.Mesh()
	if m.Has(3) {
		t.Fatal("mesh node 3 should be absent (no hypercube exists in it)")
	}
	if m.Count() != 3 {
		t.Fatalf("mesh count %d want 3", m.Count())
	}
}

// TestSection41NeighborExample pins the paper's worked example: the
// 1-logical-hop routes of node 1000 are 1001, 1010, 0010, 1100 and
// 0000. Label 1000 sits at VC (0,2) — the grid's west edge — so it has
// no adjacent-hypercube route, exactly the five the paper lists.
func TestSection41NeighborExample(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	slot := tb.slotOfLabel("1000")
	want := map[logicalid.CHID]bool{
		tb.slotOfLabel("1001"): true,
		tb.slotOfLabel("1010"): true,
		tb.slotOfLabel("0010"): true,
		tb.slotOfLabel("1100"): true,
		tb.slotOfLabel("0000"): true,
	}
	got := tb.bb.LogicalNeighbors(slot)
	if len(got) != len(want) {
		t.Fatalf("neighbors %v want %d slots", got, len(want))
	}
	for _, s := range got {
		if !want[s] {
			t.Fatalf("unexpected logical neighbor slot %d", s)
		}
	}
}

func TestLogicalNeighborsSkipEmptyVCs(t *testing.T) {
	grid := vcgrid.New(geom.RectWH(0, 0, 2000, 2000), 250)
	hole := grid.Index(vcgrid.VC{CX: 1, CY: 2}) // label 1001
	tb := newTestbed(t, DefaultConfig(), hole)
	slot := tb.slotOfLabel("1000")
	for _, s := range tb.bb.LogicalNeighbors(slot) {
		if s == logicalid.CHID(hole) {
			t.Fatal("empty VC appeared as logical neighbor")
		}
	}
	if got := len(tb.bb.LogicalNeighbors(slot)); got != 4 {
		t.Fatalf("neighbors %d want 4 after hole", got)
	}
}

func TestBCHClassification(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	grid := tb.scheme.Grid()
	// (3,0) is on the block 0/1 border: BCH. (1,1) is interior: ICH.
	if !tb.bb.IsBCH(logicalid.CHID(grid.Index(vcgrid.VC{CX: 3, CY: 0}))) {
		t.Fatal("(3,0) should be a BCH")
	}
	if tb.bb.IsBCH(logicalid.CHID(grid.Index(vcgrid.VC{CX: 1, CY: 1}))) {
		t.Fatal("(1,1) should be an ICH")
	}
}

// runBeaconRounds advances the simulation through n beacon periods.
func (tb *testbed) runBeaconRounds(n int, cfg Config) {
	for i := 0; i < n; i++ {
		tb.bb.BeaconRound()
		tb.sim.RunUntil(tb.sim.Now() + cfg.BeaconPeriod)
	}
}

// TestFigure4Convergence: after k beacon rounds every CH knows a route
// to exactly the CHs within k logical hops.
func TestFigure4Convergence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RouteTTL = 100 // no expiry during the test
	tb := newTestbed(t, cfg)
	tb.runBeaconRounds(cfg.K+1, cfg)

	slot := tb.slotOfLabel("1000")
	reach := tb.bb.LogicalReach(slot, cfg.K)
	if len(reach) == 0 {
		t.Fatal("ground-truth reach empty")
	}
	for dest, d := range reach {
		routes := tb.bb.Routes(slot, dest)
		if len(routes) == 0 {
			t.Fatalf("no route to slot %d at logical distance %d", dest, d)
		}
		if routes[0].Hops != d {
			t.Errorf("best route to %d has %d hops want %d", dest, routes[0].Hops, d)
		}
	}
	if known := tb.bb.KnownDestinations(slot); known < len(reach) {
		t.Fatalf("converged table knows %d dests want >= %d", known, len(reach))
	}
}

// TestSection41TwoHopExample: the paper lists 1000 -> 1001 -> 1100 as a
// 2-logical-hop route. After convergence, slot 1100 must be reachable
// both directly (1 hop) and via 1001 (2 hops) — multiple candidate
// routes per destination.
func TestSection41TwoHopExample(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RouteTTL = 100
	tb := newTestbed(t, cfg)
	tb.runBeaconRounds(3, cfg)

	src := tb.slotOfLabel("1000")
	dst := tb.slotOfLabel("1100")
	routes := tb.bb.Routes(src, dst)
	if len(routes) < 2 {
		t.Fatalf("want multiple routes to 1100, got %d", len(routes))
	}
	if routes[0].Hops != 1 {
		t.Fatalf("best route %d hops want 1", routes[0].Hops)
	}
	foundVia1001 := false
	for _, r := range routes {
		if r.NextHop == tb.slotOfLabel("1001") && r.Hops == 2 {
			foundVia1001 = true
		}
	}
	if !foundVia1001 {
		t.Fatal("missing the paper's 2-hop route 1000 -> 1001 -> 1100")
	}
}

func TestRoutesCarryQoSAnnotations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RouteTTL = 100
	tb := newTestbed(t, cfg)
	tb.runBeaconRounds(3, cfg)
	src := tb.slotOfLabel("0000")
	dst := tb.slotOfLabel("0011")
	routes := tb.bb.Routes(src, dst)
	if len(routes) == 0 {
		t.Fatal("no routes")
	}
	for _, r := range routes {
		if r.Delay <= 0 {
			t.Fatalf("route delay %v should be positive (measured)", r.Delay)
		}
		if r.Bandwidth <= 0 {
			t.Fatalf("route bandwidth %v should be positive", r.Bandwidth)
		}
	}
}

func TestBestRouteQoSFiltering(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RouteTTL = 100
	tb := newTestbed(t, cfg)
	tb.runBeaconRounds(cfg.K+1, cfg)
	src := tb.slotOfLabel("0000")
	dst := tb.slotOfLabel("1111")
	if r := tb.bb.BestRoute(src, dst, 0, 0); r == nil {
		t.Fatal("unconstrained best route missing")
	}
	// Impossible bandwidth demand filters everything.
	if r := tb.bb.BestRoute(src, dst, 1e13, 0); r != nil {
		t.Fatalf("impossible QoS admitted: %+v", r)
	}
	// Impossible delay bound filters everything.
	if r := tb.bb.BestRoute(src, dst, 0, 1e-9); r != nil {
		t.Fatalf("impossible delay admitted: %+v", r)
	}
}

func TestRouteExpiry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RouteTTL = 3
	tb := newTestbed(t, cfg)
	tb.runBeaconRounds(2, cfg)
	src := tb.slotOfLabel("0000")
	dst := tb.slotOfLabel("0001")
	if len(tb.bb.Routes(src, dst)) == 0 {
		t.Fatal("route should exist after beaconing")
	}
	// Let everything expire without further beacons.
	tb.sim.RunUntil(tb.sim.Now() + 10)
	if got := tb.bb.Routes(src, dst); len(got) != 0 {
		t.Fatalf("stale routes survived: %v", got)
	}
}

// TestAvailabilityAfterCHFailure: the paper's availability claim — when
// a route breaks, alternate routes are already in the table.
func TestAvailabilityAfterCHFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RouteTTL = 100
	tb := newTestbed(t, cfg)
	tb.runBeaconRounds(3, cfg)

	src := tb.slotOfLabel("0000")
	dst := tb.slotOfLabel("0011")
	via1 := tb.slotOfLabel("0001")
	routes := tb.bb.Routes(src, dst)
	if len(routes) < 2 {
		t.Fatalf("need multiple routes for the availability claim, got %d", len(routes))
	}
	// Kill the CH of the best route's next hop (0001 or 0010).
	tb.net.Node(tb.nodeAt[int(via1)]).Fail()
	tb.cm.Elect() // the VC loses its CH
	alive := 0
	for _, r := range tb.bb.Routes(src, dst) {
		if tb.bb.CHNodeOf(r.NextHop) != network.NoNode {
			alive++
		}
	}
	if alive == 0 {
		t.Fatal("no candidate route survived a single CH failure")
	}
}

func TestSendLogicalDelivers(t *testing.T) {
	cfg := DefaultConfig()
	tb := newTestbed(t, cfg)
	src := tb.slotOfLabel("0000")
	dst := tb.slotOfLabel("1100") // two cells away: multi-hop physical
	var got *network.Packet
	tb.bb.HandleInner("test-inner", func(n *network.Node, _ network.NodeID, pkt *network.Packet) {
		got = pkt
	})
	ok := tb.bb.SendLogical(src, dst, &network.Packet{
		Kind: "test-inner", Src: tb.bb.CHNodeOf(src), Dst: tb.bb.CHNodeOf(dst),
		Size: 64, UID: tb.net.NextUID(),
	})
	if !ok {
		t.Fatal("SendLogical refused")
	}
	tb.sim.Run()
	if got == nil {
		t.Fatal("inner packet not delivered")
	}
}

func TestSendLogicalToEmptySlotFails(t *testing.T) {
	grid := vcgrid.New(geom.RectWH(0, 0, 2000, 2000), 250)
	hole := grid.Index(vcgrid.VC{CX: 1, CY: 0})
	tb := newTestbed(t, DefaultConfig(), hole)
	if tb.bb.SendLogical(tb.slotOfLabel("0000"), logicalid.CHID(hole), &network.Packet{Kind: "x", Size: 1}) {
		t.Fatal("send to CH-less slot should fail")
	}
}

func TestBeaconTrafficIsControl(t *testing.T) {
	cfg := DefaultConfig()
	tb := newTestbed(t, cfg)
	tb.net.ResetTraffic()
	tb.bb.BeaconRound()
	tb.sim.RunUntil(tb.sim.Now() + 1)
	st := tb.net.Stats()
	if st.DataBytes != 0 {
		t.Fatalf("beacons counted as data: %d bytes", st.DataBytes)
	}
	if st.ControlBytes == 0 {
		t.Fatal("beacon traffic not accounted")
	}
	if tb.bb.Beacons() == 0 {
		t.Fatal("beacon counter not incremented")
	}
}

func TestStartStopTicker(t *testing.T) {
	cfg := DefaultConfig()
	tb := newTestbed(t, cfg)
	tb.bb.Start()
	tb.sim.SetHorizon(5)
	tb.sim.Run()
	tb.bb.Stop()
	if tb.bb.Beacons() == 0 {
		t.Fatal("ticker never beaconed")
	}
	// Converged at least partially by now.
	if tb.bb.KnownDestinations(tb.slotOfLabel("0000")) == 0 {
		t.Fatal("no routes learned under ticker operation")
	}
}

func TestLogicalReachGroundTruth(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	slot := tb.slotOfLabel("0000")
	r1 := tb.bb.LogicalReach(slot, 1)
	if len(r1) != len(tb.bb.LogicalNeighbors(slot)) {
		t.Fatal("reach(1) should equal neighbor count")
	}
	r2 := tb.bb.LogicalReach(slot, 2)
	if len(r2) <= len(r1) {
		t.Fatal("reach(2) should strictly grow")
	}
	for s, d := range r1 {
		if d != 1 {
			t.Fatalf("slot %d at distance %d in reach(1)", s, d)
		}
	}
}

func TestSlotOfNode(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	ch := tb.bb.CHNodeOf(0)
	if ch == network.NoNode {
		t.Fatal("slot 0 should have a CH")
	}
	if tb.bb.SlotOfNode(ch) != 0 {
		t.Fatalf("SlotOfNode(%d) = %d want 0", ch, tb.bb.SlotOfNode(ch))
	}
	// A non-CH node maps to -1. All testbed nodes are CHs (one per VC),
	// so check a failed one.
	tb.net.Node(ch).Fail()
	tb.cm.Elect()
	if tb.bb.SlotOfNode(ch) != -1 {
		t.Fatal("failed node should not map to a slot")
	}
}
