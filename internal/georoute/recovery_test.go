package georoute

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/network"
)

// TestRecoveryDoesNotLoopOnRing is the regression test for perimeter
// loops: a ring of nodes around a large void, with the target position
// inside the void and no node there. Before the visited-set fix the
// right-hand walk circled the ring until TTL; now the walk must
// terminate (anycast-complete or drop) well within the hop budget.
func TestRecoveryDoesNotLoopOnRing(t *testing.T) {
	e := newEnv(42)
	// A 12-node ring of radius 600 m centered at (1500,1500); adjacent
	// ring nodes ~310 m apart but radio range is 250 m... use radius
	// 450 so spacing ~233 m keeps the ring connected.
	const n = 12
	center := geom.Pt(1500, 1500)
	for i := 0; i < n; i++ {
		angle := 2 * 3.141592653589793 * float64(i) / n
		p := center.Add(geom.FromPolar(450, angle))
		e.add(p.X, p.Y)
	}
	e.finish()
	// Target: the void center, anycast. The nearest ring node should
	// consume it after at most one recovery excursion.
	if !e.r.Send(0, center, network.NoNode, inner(e.net, 0)) {
		t.Fatal("send refused")
	}
	e.sim.Run()
	if len(e.delivered) != 1 {
		t.Fatalf("delivered %d dropped %d; ring walk did not terminate cleanly",
			len(e.delivered), e.r.Dropped())
	}
	if got := e.delivered[0].Hops; got > n+2 {
		t.Fatalf("hops %d exceed one ring circumnavigation (%d)", got, n+2)
	}
}

// TestRecoveryNamedDestinationUnreachable: a named destination outside
// the connected component must drop after a bounded walk, not loop.
func TestRecoveryNamedUnreachableDrops(t *testing.T) {
	e := newEnv(43)
	const n = 10
	center := geom.Pt(1500, 1500)
	for i := 0; i < n; i++ {
		angle := 2 * 3.141592653589793 * float64(i) / n
		p := center.Add(geom.FromPolar(400, angle))
		e.add(p.X, p.Y)
	}
	// The named destination sits isolated in the void.
	dst := e.add(center.X, center.Y)
	// Move it out of everyone's range... the void center is 400 m from
	// ring nodes, beyond the 250 m range, so it is already isolated.
	e.finish()
	e.r.Send(0, center, dst.ID, inner(e.net, 0))
	e.sim.Run()
	if len(e.delivered) != 0 {
		t.Fatal("unreachable destination was delivered")
	}
	if e.r.Dropped() != 1 {
		t.Fatalf("dropped %d want 1 (bounded walk)", e.r.Dropped())
	}
}
