package georoute

import (
	"testing"

	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/network"
	"repro/internal/radio"
	"repro/internal/xrand"
)

type env struct {
	sim *des.Simulator
	net *network.Network
	mux *network.Mux
	r   *Router

	delivered []*network.Packet
	at        []network.NodeID
}

func newEnv(seed uint64) *env {
	e := &env{}
	e.sim = des.New()
	e.net = network.New(e.sim, geom.RectWH(0, 0, 3000, 3000), xrand.New(seed))
	return e
}

func (e *env) finish() {
	e.mux = network.Bind(e.net)
	e.r = Attach(e.net, e.mux)
	e.r.DeliverFallback(func(n *network.Node, inner *network.Packet) {
		e.delivered = append(e.delivered, inner)
		e.at = append(e.at, n.ID)
	})
}

func (e *env) add(x, y float64) *network.Node {
	return e.net.AddNode(&mobility.Static{P: geom.Pt(x, y)}, radio.DefaultMN, nil, false)
}

func inner(net *network.Network, src network.NodeID) *network.Packet {
	return &network.Packet{Kind: "payload", Src: src, Size: 100, UID: net.NextUID()}
}

func TestDirectNeighborDelivery(t *testing.T) {
	e := newEnv(1)
	a := e.add(0, 0)
	b := e.add(200, 0)
	e.finish()
	if !e.r.Send(a.ID, geom.Pt(200, 0), b.ID, inner(e.net, a.ID)) {
		t.Fatal("send refused")
	}
	e.sim.Run()
	if len(e.delivered) != 1 || e.at[0] != b.ID {
		t.Fatalf("delivered %v at %v", e.delivered, e.at)
	}
	if e.r.Delivered != 1 || e.r.Dropped() != 0 {
		t.Fatalf("counters %d/%d", e.r.Delivered, e.r.Dropped())
	}
}

func TestMultiHopGreedyChain(t *testing.T) {
	e := newEnv(2)
	// Chain of nodes 200 m apart; radio range 250 m.
	var last *network.Node
	for i := 0; i <= 10; i++ {
		last = e.add(float64(i)*200, 0)
	}
	e.finish()
	if !e.r.Send(0, geom.Pt(2000, 0), last.ID, inner(e.net, 0)) {
		t.Fatal("send refused")
	}
	e.sim.Run()
	if len(e.delivered) != 1 {
		t.Fatalf("delivered %d want 1", len(e.delivered))
	}
	if e.delivered[0].Hops != 10 {
		t.Fatalf("hops %d want 10 (greedy shortest chain)", e.delivered[0].Hops)
	}
}

func TestSelfDelivery(t *testing.T) {
	e := newEnv(3)
	a := e.add(0, 0)
	e.finish()
	if !e.r.Send(a.ID, geom.Pt(0, 0), a.ID, inner(e.net, a.ID)) {
		t.Fatal("self send refused")
	}
	if len(e.delivered) != 1 {
		t.Fatal("self delivery should be synchronous")
	}
}

func TestAnycastToLocation(t *testing.T) {
	e := newEnv(4)
	e.add(0, 0)
	e.add(200, 0)
	c := e.add(400, 0)
	e.finish()
	// No named destination: the packet should settle at the node
	// nearest the target (600,0), which is c.
	if !e.r.Send(0, geom.Pt(600, 0), network.NoNode, inner(e.net, 0)) {
		t.Fatal("send refused")
	}
	e.sim.Run()
	if len(e.delivered) != 1 || e.at[0] != c.ID {
		t.Fatalf("anycast delivered at %v want %d", e.at, c.ID)
	}
}

func TestPerimeterRecoveryAroundVoid(t *testing.T) {
	e := newEnv(5)
	// A "U" around a radio void: the greedy path from the west arm
	// stalls at the void edge; perimeter mode must route around the rim.
	// West arm.
	e.add(0, 1000)   // 0 source
	e.add(220, 1000) // 1 local maximum (no neighbor closer to target)
	// Rim detour south.
	e.add(300, 800)  // 2
	e.add(450, 650)  // 3
	e.add(650, 550)  // 4
	e.add(850, 650)  // 5
	e.add(1000, 800) // 6
	// East arm: destination.
	dst := e.add(1100, 1000) // 7
	e.finish()
	if !e.r.Send(0, geom.Pt(1100, 1000), dst.ID, inner(e.net, 0)) {
		t.Fatal("send refused")
	}
	e.sim.Run()
	if len(e.delivered) != 1 {
		t.Fatalf("void not routed around: delivered=%d dropped=%d", e.r.Delivered, e.r.Dropped())
	}
	if e.delivered[0].Hops < 5 {
		t.Fatalf("hops %d suspiciously few for the rim detour", e.delivered[0].Hops)
	}
}

func TestDisconnectedDrops(t *testing.T) {
	e := newEnv(6)
	e.add(0, 0)
	dst := e.add(2500, 2500) // far out of any range
	e.finish()
	e.r.Send(0, geom.Pt(2500, 2500), dst.ID, inner(e.net, 0))
	e.sim.Run()
	if len(e.delivered) != 0 {
		t.Fatal("impossible delivery")
	}
	if e.r.Dropped() == 0 {
		t.Fatal("drop not counted")
	}
}

func TestTTLBoundsForwarding(t *testing.T) {
	e := newEnv(7)
	// Dense line long enough to exceed the TTL budget: spacing 100 m,
	// so >64 hops needed if greedy picked minimal steps; greedy takes
	// max-progress steps (240 m), so build length > 64*240 m is too
	// big for the arena. Instead verify TTL decrements by sending
	// through a ring that perimeter mode could loop on.
	var ids []network.NodeID
	for i := 0; i < 20; i++ {
		ids = append(ids, e.add(float64(i)*100, 0).ID)
	}
	e.finish()
	// Target far beyond the east end with no node there: the packet
	// anycast-completes at the last node instead of looping.
	e.r.Send(ids[0], geom.Pt(5000, 0), network.NoNode, inner(e.net, ids[0]))
	e.sim.Run()
	if len(e.delivered) != 1 || e.at[0] != ids[len(ids)-1] {
		t.Fatalf("anycast to far point should stop at line end; at=%v", e.at)
	}
}

func TestEnvelopeOverheadAccounted(t *testing.T) {
	e := newEnv(8)
	a := e.add(0, 0)
	b := e.add(200, 0)
	e.finish()
	e.r.Send(a.ID, geom.Pt(200, 0), b.ID, &network.Packet{Kind: "payload", Src: a.ID, Size: 100, UID: 1})
	e.sim.Run()
	st := e.net.Stats()
	if st.KindBytes[KindPrefix+"payload"] != 100+HeaderSize {
		t.Fatalf("geo bytes %d want %d", st.KindBytes[KindPrefix+"payload"], 100+HeaderSize)
	}
}

func TestGabrielNeighborsPlanarity(t *testing.T) {
	e := newEnv(9)
	// Three collinear-ish nodes: the long edge 0-2 must be pruned
	// because 1 lies inside its diameter disc.
	a := e.add(0, 0)
	e.add(100, 10)
	c := e.add(200, 0)
	e.finish()
	nbrs := e.r.gabrielNeighbors(&e.r.rl[0], e.net.Node(a.ID), e.net.Node(a.ID).TruePos())
	for _, id := range nbrs {
		if id == c.ID {
			t.Fatal("gabriel graph kept a dominated edge")
		}
	}
	if len(nbrs) != 1 {
		t.Fatalf("gabriel neighbors %v want just the middle node", nbrs)
	}
}

func TestDownSourceRefused(t *testing.T) {
	e := newEnv(10)
	a := e.add(0, 0)
	e.add(200, 0)
	e.finish()
	a.Fail()
	if e.r.Send(a.ID, geom.Pt(200, 0), 1, inner(e.net, a.ID)) {
		t.Fatal("send from down node accepted")
	}
}
