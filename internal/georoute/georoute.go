// Package georoute implements the location-based unicast routing the
// paper delegates to ("we assume to use some location-based unicast
// routing algorithm to send a packet from one logical hypercube to its
// next hop logical hypercube", §4.3): greedy geographic forwarding with
// a right-hand-rule perimeter recovery on a Gabriel-planarized neighbor
// graph, following GPSR [11], which the paper itself cites for the
// recovery strategy.
//
// The router is hop-by-hop: each forwarding decision uses only the
// current node's neighbor positions and the packet's target coordinates,
// exactly the locality property that makes location-based routing scale.
// That locality is also what lets relay hops execute on the sharded
// kernel's parallel lanes: a forwarding decision reads positions and
// transmits through one network.Lane, and all its scratch state —
// neighbor buffers, header and envelope pools, the kind-interning
// caches, the drop counter — lives in a per-lane rlane, so concurrent
// lanes never share a mutable word. Consumption (Delivered, consumer
// dispatch) only ever runs in serial context: a delivery at the final
// destination is never shard-confined, so the network executes it on
// the global lane.
package georoute

import (
	"math"
	"strings"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/trace"
)

// KindPrefix prefixes the packet kind of geo-routed envelopes; the full
// kind is KindPrefix + inner.Kind, so traffic accounting attributes the
// envelope to the protocol plane it carries. It is also the confined
// namespace the network's sharding is told about: relay deliveries of
// these kinds may run on shard lanes.
const KindPrefix = "geo:"

// Kind is the bare envelope kind used when the inner kind is empty.
const Kind = "geo"

// HeaderSize is the on-air overhead of the geo envelope in bytes:
// target position (16), final destination (4), mode+entry distance (12),
// TTL and flags (4).
const HeaderSize = 36

// DefaultTTL bounds the physical hop count of one geo-routed packet.
const DefaultTTL = 128

// Header is the geo-routing envelope around an inner packet. Field
// order is part of the hot path: every per-hop decision touches
// FinalDst, Inner, Target, TTL, Hops, and Recovering, so they lead the
// struct and share its first cache line; the perimeter-recovery state
// (rare) trails.
type Header struct {
	// FinalDst, when not NoNode, names the node that should consume the
	// inner packet; the packet completes at FinalDst, or at the node
	// closest to Target when FinalDst is NoNode (anycast-to-location).
	FinalDst network.NodeID
	// Inner is the encapsulated upper-layer packet.
	Inner *network.Packet
	// Target is the geographic destination the greedy mode steers to.
	Target geom.Point
	// TTL is the remaining physical hop budget.
	TTL int
	// Hops counts physical transmissions of this envelope; it is copied
	// to the inner packet on delivery so end-to-end hop metrics survive
	// per-hop re-encapsulation.
	Hops int
	// Perimeter mode state: whether we are in recovery, the distance to
	// target at which recovery was entered, and the previous hop (for
	// the right-hand rule).
	Recovering bool
	EntryDist  float64
	PrevHop    network.NodeID
	// Visited marks nodes traversed while in recovery. Real GPSR's face
	// routing is loop-free by construction; this simplified right-hand
	// traversal uses the visited set for the same guarantee, preferring
	// unvisited perimeter neighbors and dropping only when the whole
	// reachable perimeter has been walked.
	Visited map[network.NodeID]bool
}

// DeliverFunc consumes an inner packet that reached its destination.
type DeliverFunc func(n *network.Node, inner *network.Packet)

// rlane is the router's per-lane state: everything a forwarding
// decision mutates. One exists per shard lane (one total when the
// network is unsharded); a decision executing on lane i touches only
// rl[i] and lane-i network state.
type rlane struct {
	lane *network.Lane

	// envKinds interns the "geo:"+inner.Kind envelope kinds so the
	// per-hop envelope needs no string concatenation; the one-entry
	// cache rides same-kind bursts.
	envKinds   map[string]string
	lastEnvIn  string
	lastEnvOut string

	// nbrBuf/nbrPos and gabBuf/gabPos are reused neighbor scratch
	// buffers (IDs and parallel exact positions); forwarding decisions
	// are not re-entrant within a lane, so one set suffices per lane.
	nbrBuf []network.NodeID
	nbrPos []geom.Point
	gabBuf []network.NodeID
	gabPos []geom.Point

	// freeHdr pools Headers: one is live per geo-routed packet from
	// Send to consume/drop, so steady-state forwarding allocates none.
	// A header acquired on one lane may release on another; only the
	// pooling is lane-local, never the lifetime.
	freeHdr []*Header

	// dropped counts inner packets abandoned on this lane; drops can
	// happen mid-relay, hence per-lane. Read via Router.Dropped.
	dropped uint64
}

// Router performs geographic unicast over one network. One router is
// shared by all protocol planes of a mux (see Attach); each plane
// registers consumers for its own inner packet kinds.
type Router struct {
	net *network.Network
	tr  trace.Tracer
	// trOn gates the per-packet trace calls: formatting arguments box
	// into interfaces even for the no-op tracer, which is measurable at
	// millions of forwarding decisions.
	trOn bool

	consumers       map[string]DeliverFunc
	fallbackDeliver DeliverFunc
	// One-entry cache over consumer dispatch. Consumption is
	// serial-only (see the package comment), so this state is safe on
	// the Router itself.
	lastConsKind string
	lastCons     DeliverFunc
	// Delivered counts inner packets consumed, for experiments
	// (serial-only, like all consumption).
	Delivered uint64

	rl []rlane
}

// auxKey identifies the shared router on a mux.
const auxKey = "georoute"

// Attach returns the mux's shared router, creating and registering it on
// first use. Envelopes are dispatched through the mux fallback by their
// KindPrefix, so protocol planes can register exact kinds freely.
func Attach(net *network.Network, mux *network.Mux) *Router {
	if r, ok := mux.Aux(auxKey).(*Router); ok {
		return r
	}
	r := &Router{
		net:       net,
		tr:        trace.Nop,
		consumers: make(map[string]DeliverFunc),
	}
	r.growLanes(1)
	net.OnShard(r.growLanes)
	mux.SetAux(auxKey, r)
	mux.Handle(Kind, r.onPacket)
	mux.HandleFallback(func(n *network.Node, from network.NodeID, pkt *network.Packet) {
		if strings.HasPrefix(pkt.Kind, KindPrefix) {
			r.onPacket(n, from, pkt)
		}
	})
	return r
}

// growLanes sizes the per-lane state to k lanes (registered with the
// network's OnShard hook, and called once directly for the serial lane).
func (r *Router) growLanes(k int) {
	for len(r.rl) < k {
		r.rl = append(r.rl, rlane{
			lane:     r.net.LaneAt(len(r.rl)),
			envKinds: make(map[string]string),
			nbrPos:   make([]geom.Point, 0, 32),
			gabPos:   make([]geom.Point, 0, 32),
		})
	}
}

// Dropped returns how many inner packets were abandoned (TTL expiry,
// perimeter dead ends, failed transmissions), folded across lanes.
func (r *Router) Dropped() uint64 {
	var n uint64
	for i := range r.rl {
		n += r.rl[i].dropped
	}
	return n
}

// Deliver registers the consumer for inner packets of the given kind,
// replacing any previous registration.
func (r *Router) Deliver(kind string, fn DeliverFunc) {
	r.consumers[kind] = fn
	r.lastConsKind, r.lastCons = "", nil
}

// DeliverFallback registers the consumer for inner kinds with no exact
// registration.
func (r *Router) DeliverFallback(fn DeliverFunc) { r.fallbackDeliver = fn }

// SetTracer installs a tracer; nil resets to no-op.
func (r *Router) SetTracer(t trace.Tracer) {
	if t == nil {
		t = trace.Nop
	}
	r.tr = t
	r.trOn = t != trace.Nop
}

// Send geo-routes inner from the node `from` toward the target
// position, to be consumed by final (or by the node nearest the target
// if final is NoNode). It reports whether a first transmission was made
// (or the packet was consumed locally). Send runs in serial context
// (protocol timers and consumes are global events); the first hop
// executes on lane 0.
//
// A pooled inner packet is kept alive by the per-hop envelopes that
// carry it (AdoptPacket): whichever way a hop ends — delivered,
// dropped, or lost in flight — recycling the envelope releases its
// reference, so callers may release theirs as soon as Send returns.
func (r *Router) Send(from network.NodeID, target geom.Point, final network.NodeID, inner *network.Packet) bool {
	n := r.net.Node(from)
	if n == nil || !n.Up() {
		return false
	}
	rl := &r.rl[r.net.ExecLaneIdx(from)]
	h := r.acquireHeader(rl)
	h.Target, h.FinalDst = target, final
	h.TTL = DefaultTTL
	h.PrevHop = network.NoNode
	h.Inner = inner
	return r.forward(rl, n, h)
}

// acquireHeader takes a zeroed Header from the lane's pool.
func (r *Router) acquireHeader(rl *rlane) *Header {
	if n := len(rl.freeHdr); n > 0 {
		h := rl.freeHdr[n-1]
		rl.freeHdr = rl.freeHdr[:n-1]
		return h
	}
	return &Header{}
}

// releaseHeader recycles a Header whose packet reached its end of life
// (consumed or dropped); headers on envelopes lost in flight are simply
// garbage collected.
func (r *Router) releaseHeader(rl *rlane, h *Header) {
	*h = Header{}
	rl.freeHdr = append(rl.freeHdr, h)
}

// envKind returns the interned envelope kind for an inner kind.
func (r *Router) envKind(rl *rlane, inner string) string {
	if inner == "" {
		return Kind
	}
	if inner == rl.lastEnvIn {
		return rl.lastEnvOut
	}
	k, ok := rl.envKinds[inner]
	if !ok {
		k = KindPrefix + inner
		rl.envKinds[inner] = k
	}
	rl.lastEnvIn, rl.lastEnvOut = inner, k
	return k
}

// envelope wraps the header in a pooled per-hop packet; transmit
// releases it once the network has taken its in-flight references.
func (r *Router) envelope(rl *rlane, h *Header) *network.Packet {
	p := rl.lane.AcquirePacket()
	p.Kind = r.envKind(rl, h.Inner.Kind)
	p.Src = h.Inner.Src
	p.Dst = h.FinalDst
	p.Group = h.Inner.Group
	p.Size = h.Inner.Size + HeaderSize
	p.Control = h.Inner.Control
	p.Born = h.Inner.Born
	p.UID = h.Inner.UID
	p.Payload = h
	rl.lane.AdoptPacket(p, h.Inner) // inner lives as long as its envelope
	return p
}

func (r *Router) onPacket(n *network.Node, from network.NodeID, pkt *network.Packet) {
	rl := &r.rl[r.net.ExecLaneIdx(n.ID)]
	h, ok := pkt.Payload.(*Header)
	if !ok {
		rl.dropped++
		return
	}
	h.PrevHop = from
	r.forward(rl, n, h)
}

// forward makes one forwarding decision at node n, on lane rl.
func (r *Router) forward(rl *rlane, n *network.Node, h *Header) bool {
	// Arrived at the named destination? (Checked before computing the
	// node's position — consumption doesn't need it, and logical-hop
	// traffic terminates here once per hop.)
	if h.FinalDst == n.ID {
		r.consume(rl, n, h)
		return true
	}
	pos := rl.lane.TruePosOf(n.ID)
	// Anycast completion: nobody closer to the target.
	next := r.bestGreedy(rl, n, pos, h.Target)
	if h.FinalDst == network.NoNode && next == network.NoNode && !h.Recovering {
		r.consume(rl, n, h)
		return true
	}
	if h.TTL <= 0 {
		r.drop(rl, n, h, "ttl")
		return false
	}
	h.TTL--

	if h.Recovering {
		// Exit recovery as soon as greedy progress is again possible
		// relative to the entry point (GPSR's rule).
		if pos.Dist(h.Target) < h.EntryDist && next != network.NoNode {
			h.Recovering = false
			h.Visited = nil
		} else {
			h.Visited[n.ID] = true
			peri := r.perimeterNext(rl, n, pos, h)
			if peri == network.NoNode {
				r.drop(rl, n, h, "perimeter dead end")
				return false
			}
			return r.transmit(rl, n, peri, h)
		}
	}
	if next == network.NoNode {
		// Local maximum: enter perimeter mode.
		h.Recovering = true
		h.EntryDist = pos.Dist(h.Target)
		h.Visited = map[network.NodeID]bool{n.ID: true}
		peri := r.perimeterNext(rl, n, pos, h)
		if peri == network.NoNode {
			r.drop(rl, n, h, "void with no perimeter")
			return false
		}
		return r.transmit(rl, n, peri, h)
	}
	return r.transmit(rl, n, next, h)
}

func (r *Router) transmit(rl *rlane, n *network.Node, to network.NodeID, h *Header) bool {
	env := r.envelope(rl, h)
	ok := rl.lane.Unicast(n.ID, to, env)
	rl.lane.ReleasePacket(env) // in-flight references keep it alive
	if !ok {
		r.drop(rl, n, h, "tx failed")
		return false
	}
	h.Hops++
	return true
}

// consume hands the inner packet to its registered consumer. Only ever
// reached in serial context: a delivery at FinalDst is not
// shard-confined (the network keeps it on the global lane), and the
// anycast completion path only exists for FinalDst == NoNode envelopes,
// which are global too.
func (r *Router) consume(rl *rlane, n *network.Node, h *Header) {
	r.Delivered++ //hvdb:serialonly consume deliveries (to == FinalDst, or anycast) are global events; the network pins them to the serial lane, never inside a window
	h.Inner.Hops += h.Hops
	if r.trOn {
		r.tr.Eventf(trace.Routes, float64(rl.lane.Now()), "geo delivered %s uid=%d at %d", h.Inner.Kind, h.Inner.UID, n.ID)
	}
	var fn DeliverFunc
	if h.Inner.Kind == r.lastConsKind && r.lastCons != nil {
		fn = r.lastCons
	} else if cfn, ok := r.consumers[h.Inner.Kind]; ok {
		r.lastConsKind, r.lastCons = h.Inner.Kind, cfn //hvdb:serialonly same serial-only path as the Delivered count above
		fn = cfn
	} else {
		fn = r.fallbackDeliver
	}
	if fn != nil {
		fn(n, h.Inner)
	}
	r.releaseHeader(rl, h)
}

func (r *Router) drop(rl *rlane, n *network.Node, h *Header, why string) {
	rl.dropped++
	if r.trOn {
		r.tr.Eventf(trace.Routes, float64(rl.lane.Now()), "geo drop %s uid=%d at %d: %s", h.Inner.Kind, h.Inner.UID, n.ID, why)
	}
	r.releaseHeader(rl, h)
}

// bestGreedy returns the neighbor strictly closer to the target than n
// itself, minimizing remaining distance; NoNode when none (local
// maximum). Distances compare squared — same winner, no square roots.
func (r *Router) bestGreedy(rl *rlane, n *network.Node, pos, target geom.Point) network.NodeID {
	best := network.NoNode
	bestD2 := pos.Dist2(target)
	rl.nbrBuf, rl.nbrPos = rl.lane.NeighborsPos(n.ID, rl.nbrBuf[:0], rl.nbrPos[:0])
	for i, id := range rl.nbrBuf {
		if d2 := rl.nbrPos[i].Dist2(target); d2 < bestD2 {
			best, bestD2 = id, d2
		}
	}
	return best
}

// perimeterNext applies the right-hand rule on the Gabriel-planarized
// neighbor subgraph: take the first edge counterclockwise from the edge
// back to the previous hop (or from the direction toward the target when
// entering recovery).
func (r *Router) perimeterNext(rl *rlane, n *network.Node, pos geom.Point, h *Header) network.NodeID {
	nbrs := r.gabrielNeighbors(rl, n, pos)
	if len(nbrs) == 0 {
		return network.NoNode
	}
	var refAngle float64
	if h.PrevHop != network.NoNode && r.net.Node(h.PrevHop) != nil {
		refAngle = rl.lane.TruePosOf(h.PrevHop).Sub(pos).Angle()
	} else {
		refAngle = h.Target.Sub(pos).Angle()
	}
	best := network.NoNode
	bestDelta := math.Inf(1)
	// First pass prefers unvisited neighbors (loop-free traversal);
	// second pass allows visited ones only when nothing new remains,
	// which lets the walk back out of a dead-end spur exactly once per
	// node before the visited set exhausts and the packet drops.
	for pass := 0; pass < 2 && best == network.NoNode; pass++ {
		for i, id := range nbrs {
			if id == h.PrevHop && len(nbrs) > 1 {
				continue // only return to sender as a last resort
			}
			if pass == 0 && h.Visited[id] {
				continue
			}
			if pass == 1 && !h.Visited[id] {
				continue // covered in pass 0
			}
			a := rl.gabPos[i].Sub(pos).Angle()
			delta := math.Mod(a-refAngle+4*math.Pi, 2*math.Pi)
			if delta == 0 {
				delta = 2 * math.Pi
			}
			if delta < bestDelta {
				best, bestDelta = id, delta
			}
		}
		if pass == 1 {
			break
		}
	}
	if best == network.NoNode && h.PrevHop != network.NoNode {
		return h.PrevHop
	}
	return best
}

// gabrielNeighbors filters n's physical neighbors to the Gabriel graph:
// edge (u, v) survives iff no common neighbor lies inside the disc with
// diameter uv. The Gabriel graph is planar and connectivity-preserving,
// the standard GPSR planarization.
// gabrielNeighbors returns the surviving neighbor IDs with their
// positions in rl.gabPos (parallel), for the caller's angle computations.
func (r *Router) gabrielNeighbors(rl *rlane, n *network.Node, pos geom.Point) []network.NodeID {
	rl.nbrBuf, rl.nbrPos = rl.lane.NeighborsPos(n.ID, rl.nbrBuf[:0], rl.nbrPos[:0])
	nbrs, poss := rl.nbrBuf, rl.nbrPos
	out, outPos := rl.gabBuf[:0], rl.gabPos[:0]
	for i, v := range nbrs {
		vp := poss[i]
		mid := geom.Pt((pos.X+vp.X)/2, (pos.Y+vp.Y)/2)
		radius2 := pos.Dist2(vp) / 4
		keep := true
		for j, w := range nbrs {
			if w == v {
				continue
			}
			if poss[j].Dist2(mid) < radius2 {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, v)
			outPos = append(outPos, vp)
		}
	}
	rl.gabBuf, rl.gabPos = out, outPos // keep capacity for the next decision
	return out
}
