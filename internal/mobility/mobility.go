// Package mobility implements the node movement models under which the
// HVDB model and its baselines are evaluated: random waypoint (the
// standard MANET benchmark model), random walk, Gauss-Markov, reference
// point group mobility (the paper's battlefield motivation: units moving
// as groups), and static placement.
//
// A Model is advanced by the simulation in discrete steps but exposes
// continuous kinematics between updates, which is what the clustering
// tier's mobility prediction consumes ([23] predicts residence time in a
// virtual circle from position and velocity).
//
// # Piecewise-pure evaluation
//
// Every model is a sequence of linear pieces: between two intrinsic
// breakpoints (a waypoint arrival, an epoch redraw, a wall bounce, an
// intersection turn) the position is an affine function of time. TrueFix
// queries inside the current piece are pure — they mutate nothing and
// their float result depends only on the piece state and the query time,
// never on which other instants were queried before. All randomness and
// state mutation happens at piece crossings (Advance), and crossing
// times are trajectory-intrinsic: the same pieces are produced no matter
// when or how often the model is queried. This query-path independence
// is what lets the sharded simulation kernel read positions from
// concurrent workers inside a synchronization window (the network layer
// advances every expiring piece at the window barrier, so in-window
// reads are pure) while staying bit-identical to a serial run.
package mobility

import (
	"math"

	"repro/internal/geom"
	"repro/internal/gps"
	"repro/internal/xrand"
)

// Model is the per-node movement state machine. Implementations are
// deterministic given their PRNG stream.
type Model interface {
	gps.Source
	// Advance crosses piece boundaries up to and including time now: on
	// return, PieceEnd() > now. Callers must advance with non-decreasing
	// times. Advancing within the current piece is a no-op, and TrueFix
	// queries strictly inside the current piece are pure (no mutation).
	Advance(now float64)
	// PieceEnd returns the end of the current linear piece: TrueFix(t)
	// for t in [pieceStart, PieceEnd()) is a pure affine evaluation.
	PieceEnd() float64
	// DriftBound returns constants (speed, jump) bounding how far the
	// node can move: for any t and dt >= 0, the displacement between
	// TrueFix(t).Pos and TrueFix(t+dt).Pos is at most speed*dt + jump.
	// jump covers instantaneous discontinuities (e.g. group-motion
	// jitter); it is 0 for continuous movers. The network layer's
	// incremental spatial index derives cell-refresh deadlines from this
	// bound, so it must hold unconditionally.
	DriftBound() (speed, jump float64)
}

// Static is a Model that never moves.
type Static struct{ P geom.Point }

// Advance implements Model.
func (s *Static) Advance(float64) {}

// PieceEnd implements Model: a static node is one infinite piece.
func (s *Static) PieceEnd() float64 { return math.Inf(1) }

// DriftBound implements Model: a static node never drifts.
func (s *Static) DriftBound() (speed, jump float64) { return 0, 0 }

// TrueFix implements gps.Source.
func (s *Static) TrueFix(float64) gps.Fix { return gps.Fix{Pos: s.P} }

// Waypoint is the random waypoint model: pick a uniform destination in
// the arena, travel at a uniform speed in [MinSpeed, MaxSpeed], pause,
// repeat. Speeds are in meters per simulated second.
//
// One leg (pause + travel) is one piece: the node holds at legPos until
// moveT, then moves linearly, arriving at endT where the next leg is
// drawn.
type Waypoint struct {
	Arena              geom.Rect
	MinSpeed, MaxSpeed float64
	MaxPause           float64

	rng *xrand.Rand

	legPos geom.Point  // position held from the leg's start until moveT
	dest   geom.Point  // waypoint the leg travels to
	vel    geom.Vector // travel velocity (zero while pausing)
	speed  float64
	moveT  float64 // pause end: travel starts here
	endT   float64 // arrival at dest: the piece boundary
}

// NewWaypoint returns a waypoint mover starting at a uniform position.
func NewWaypoint(arena geom.Rect, minSpeed, maxSpeed, maxPause float64, rng *xrand.Rand) *Waypoint {
	w := &Waypoint{
		Arena:    arena,
		MinSpeed: minSpeed,
		MaxSpeed: maxSpeed,
		MaxPause: maxPause,
		rng:      rng,
	}
	w.legPos = uniformPoint(arena, rng)
	w.pickLeg(0)
	return w
}

func uniformPoint(r geom.Rect, rng *xrand.Rand) geom.Point {
	return geom.Pt(rng.Range(r.Min.X, r.Max.X), rng.Range(r.Min.Y, r.Max.Y))
}

// pickLeg draws the next destination, speed, and pause, starting from
// legPos at time now. All randomness of the leg is consumed here, so the
// trajectory does not depend on when the leg is later evaluated.
func (w *Waypoint) pickLeg(now float64) {
	w.dest = uniformPoint(w.Arena, w.rng)
	if w.MaxSpeed <= w.MinSpeed {
		w.speed = w.MaxSpeed
	} else {
		w.speed = w.rng.Range(w.MinSpeed, w.MaxSpeed)
	}
	if w.speed <= 0 {
		w.speed = 0.1 // avoid the RWP zero-speed freeze pathology
	}
	if w.MaxPause > 0 {
		w.moveT = now + w.rng.Range(0, w.MaxPause)
	} else {
		w.moveT = now
	}
	travel := w.legPos.Dist(w.dest) / w.speed
	if travel < 1e-9 {
		travel = 1e-9 // degenerate zero-length leg: still make progress
	}
	w.endT = w.moveT + travel
	w.vel = w.dest.Sub(w.legPos).Unit().Scale(w.speed)
}

// DriftBound implements Model: waypoint speed never exceeds the larger
// of the configured bounds (or the 0.1 m/s anti-freeze floor).
func (w *Waypoint) DriftBound() (speed, jump float64) {
	s := math.Max(w.MaxSpeed, w.MinSpeed)
	return math.Max(s, 0.1), 0
}

// PieceEnd implements Model.
func (w *Waypoint) PieceEnd() float64 { return w.endT }

// Advance implements Model.
func (w *Waypoint) Advance(now float64) {
	for now >= w.endT {
		w.legPos = w.dest
		w.pickLeg(w.endT)
	}
}

// TrueFix implements gps.Source.
func (w *Waypoint) TrueFix(now float64) gps.Fix {
	w.Advance(now)
	if now <= w.moveT {
		return gps.Fix{Pos: w.legPos}
	}
	return gps.Fix{
		Pos: w.legPos.Add(w.vel.Scale(now - w.moveT)),
		Vel: w.vel,
	}
}

// wallHit returns the time (relative to the piece start) at which a
// point moving from pos with velocity vel first reaches a wall of the
// arena, and the velocity after reflecting there. It returns +Inf when
// the motion never hits a wall (zero or inward velocity).
func wallHit(arena geom.Rect, pos geom.Point, vel geom.Vector) (dt float64, hitPos geom.Point, refl geom.Vector) {
	dt = math.Inf(1)
	hitX, hitY := false, false
	if vel.DX > 0 {
		if d := (arena.Max.X - pos.X) / vel.DX; d < dt {
			dt, hitX, hitY = d, true, false
		}
	} else if vel.DX < 0 {
		if d := (arena.Min.X - pos.X) / vel.DX; d < dt {
			dt, hitX, hitY = d, true, false
		}
	}
	if vel.DY > 0 {
		if d := (arena.Max.Y - pos.Y) / vel.DY; d < dt {
			dt, hitX, hitY = d, false, true
		} else if d == dt {
			hitY = true
		}
	} else if vel.DY < 0 {
		if d := (arena.Min.Y - pos.Y) / vel.DY; d < dt {
			dt, hitX, hitY = d, false, true
		} else if d == dt {
			hitY = true
		}
	}
	if math.IsInf(dt, 1) {
		return dt, pos, vel
	}
	if dt < 0 {
		dt = 0 // float residue: already at (or a hair past) the wall
	}
	hitPos = pos.Add(vel.Scale(dt))
	refl = vel
	if hitX {
		// Snap the hit coordinate exactly onto the wall so the next piece
		// starts inside the arena and its own wall-hit time is positive.
		if vel.DX > 0 {
			hitPos.X = arena.Max.X
		} else {
			hitPos.X = arena.Min.X
		}
		refl.DX = -refl.DX
	}
	if hitY {
		if vel.DY > 0 {
			hitPos.Y = arena.Max.Y
		} else {
			hitPos.Y = arena.Min.Y
		}
		refl.DY = -refl.DY
	}
	return dt, hitPos, refl
}

// Walk is a random walk (a.k.a. random direction with reflection): move
// with a constant speed in a direction re-drawn every Epoch seconds,
// bouncing off arena walls. Pieces end at the earlier of the next epoch
// redraw and the next wall bounce.
type Walk struct {
	Arena geom.Rect
	Speed float64
	Epoch float64

	rng   *xrand.Rand
	pos   geom.Point // position at the piece start t0
	vel   geom.Vector
	t0    float64
	nextT float64 // next direction redraw
	endT  float64 // piece end: min(nextT, wall hit)
}

// NewWalk returns a random-walk mover starting at a uniform position.
func NewWalk(arena geom.Rect, speed, epoch float64, rng *xrand.Rand) *Walk {
	w := &Walk{Arena: arena, Speed: speed, Epoch: epoch, rng: rng}
	w.pos = uniformPoint(arena, rng)
	w.redirect()
	return w
}

// redirect draws a fresh heading at the piece start t0.
func (w *Walk) redirect() {
	angle := w.rng.Range(-math.Pi, math.Pi)
	w.vel = geom.FromPolar(w.Speed, angle)
	w.nextT = w.t0 + w.Epoch
	w.seal()
}

// seal recomputes the piece end for the current (pos, vel, t0, nextT).
func (w *Walk) seal() {
	w.endT = w.nextT
	if dt, _, _ := wallHit(w.Arena, w.pos, w.vel); w.t0+dt < w.endT {
		w.endT = w.t0 + dt
	}
}

// DriftBound implements Model.
func (w *Walk) DriftBound() (speed, jump float64) { return w.Speed, 0 }

// PieceEnd implements Model.
func (w *Walk) PieceEnd() float64 { return w.endT }

// Advance implements Model.
func (w *Walk) Advance(now float64) {
	for now >= w.endT {
		if w.endT >= w.nextT { // epoch boundary: redraw the heading
			w.pos = w.pos.Add(w.vel.Scale(w.nextT - w.t0))
			w.t0 = w.nextT
			w.redirect()
			continue
		}
		// Wall bounce: reflect at the exact hit point.
		_, hitPos, refl := wallHit(w.Arena, w.pos, w.vel)
		w.pos, w.vel = hitPos, refl
		w.t0 = w.endT
		w.seal()
	}
}

// TrueFix implements gps.Source.
func (w *Walk) TrueFix(now float64) gps.Fix {
	w.Advance(now)
	return gps.Fix{Pos: w.pos.Add(w.vel.Scale(now - w.t0)), Vel: w.vel}
}

// GaussMarkov produces temporally correlated motion: speed and direction
// follow first-order autoregressive processes with memory Alpha in
// [0, 1] (1 = straight-line, 0 = memoryless), updated every Epoch
// seconds. It avoids the sharp-turn artifacts of random waypoint.
// Between epoch updates the motion is linear, bouncing off walls, so a
// piece ends at the earlier of the next epoch and the next wall hit.
type GaussMarkov struct {
	Arena     geom.Rect
	MeanSpeed float64
	Alpha     float64
	Epoch     float64
	SigmaS    float64 // speed innovation std dev
	SigmaD    float64 // direction innovation std dev (radians)
	// SpeedCap hard-limits the speed process (the AR(1) recursion is
	// clamped to [0, SpeedCap] at every epoch). The cap makes the
	// model's drift bounded, which the network's incremental spatial
	// index requires; NewGaussMarkov sets 3x the mean speed, far beyond
	// the ~2.4-sigma stationary spread of the default parameters.
	SpeedCap float64

	rng   *xrand.Rand
	pos   geom.Point // position at the piece start t0
	speed float64
	dir   float64
	vel   geom.Vector
	t0    float64
	nextT float64 // next AR(1) epoch update
	endT  float64 // piece end: min(nextT, wall hit)
}

// NewGaussMarkov returns a Gauss-Markov mover starting at a uniform
// position heading in a uniform direction at the mean speed.
func NewGaussMarkov(arena geom.Rect, meanSpeed, alpha, epoch float64, rng *xrand.Rand) *GaussMarkov {
	g := &GaussMarkov{
		Arena: arena, MeanSpeed: meanSpeed, Alpha: alpha, Epoch: epoch,
		SigmaS: meanSpeed / 4, SigmaD: 0.4, SpeedCap: 3 * meanSpeed, rng: rng,
	}
	g.pos = uniformPoint(arena, rng)
	g.speed = meanSpeed
	g.dir = rng.Range(-math.Pi, math.Pi)
	g.nextT = epoch
	g.seal()
	return g
}

// speedCap returns the effective clamp: SpeedCap when set, else a
// generous default of the mean speed plus six innovation sigmas.
func (g *GaussMarkov) speedCap() float64 {
	if g.SpeedCap > 0 {
		return g.SpeedCap
	}
	return g.MeanSpeed + 6*g.SigmaS
}

// seal recomputes the cached velocity and piece end.
func (g *GaussMarkov) seal() {
	g.vel = geom.FromPolar(g.speed, g.dir)
	g.endT = g.nextT
	if dt, _, _ := wallHit(g.Arena, g.pos, g.vel); g.t0+dt < g.endT {
		g.endT = g.t0 + dt
	}
}

// DriftBound implements Model: Advance clamps the speed process to
// speedCap, so it is a hard bound on instantaneous speed.
func (g *GaussMarkov) DriftBound() (speed, jump float64) { return g.speedCap(), 0 }

// PieceEnd implements Model.
func (g *GaussMarkov) PieceEnd() float64 { return g.endT }

// Advance implements Model.
func (g *GaussMarkov) Advance(now float64) {
	for now >= g.endT {
		if g.endT >= g.nextT { // epoch boundary: AR(1) update
			g.pos = g.pos.Add(g.vel.Scale(g.nextT - g.t0))
			g.t0 = g.nextT
			a := g.Alpha
			g.speed = a*g.speed + (1-a)*g.MeanSpeed +
				math.Sqrt(1-a*a)*g.SigmaS*g.rng.NormFloat64()
			if g.speed < 0 {
				g.speed = 0
			}
			if cap := g.speedCap(); g.speed > cap {
				g.speed = cap // keep DriftBound a hard guarantee
			}
			g.dir = a*g.dir + (1-a)*g.dir + // mean direction = current
				math.Sqrt(1-a*a)*g.SigmaD*g.rng.NormFloat64()
			g.nextT += g.Epoch
			g.seal()
			continue
		}
		// Wall bounce: adopt the reflected heading at the exact hit point.
		_, hitPos, refl := wallHit(g.Arena, g.pos, g.vel)
		g.pos = hitPos
		g.t0 = g.endT
		if refl != g.vel {
			g.dir = refl.Angle()
		}
		g.seal()
	}
}

// TrueFix implements gps.Source.
func (g *GaussMarkov) TrueFix(now float64) gps.Fix {
	g.Advance(now)
	return gps.Fix{Pos: g.pos.Add(g.vel.Scale(now - g.t0)), Vel: g.vel}
}

// Group implements reference point group mobility (RPGM): a logical
// group center moves by random waypoint and each member jitters around a
// fixed offset from the center. This is the paper's battlefield and
// disaster-relief motivation, where units move together and CH-capable
// vehicles anchor clusters.
type Group struct {
	center *Waypoint
}

// NewGroup returns the shared group center mover.
func NewGroup(arena geom.Rect, minSpeed, maxSpeed, maxPause float64, rng *xrand.Rand) *Group {
	return &Group{center: NewWaypoint(arena, minSpeed, maxSpeed, maxPause, rng)}
}

// Member returns a Model for one group member with the given offset from
// the center and jitter radius.
func (g *Group) Member(offset geom.Vector, jitter float64, rng *xrand.Rand) Model {
	m := &groupMember{group: g, offset: offset, jitter: jitter, rng: rng}
	m.redraw()
	return m
}

type groupMember struct {
	group  *Group
	offset geom.Vector
	jitter float64
	rng    *xrand.Rand

	// jitterVec is redrawn once per whole simulated second: epoch k
	// covers [k, k+1). The redraw grid is trajectory-intrinsic (one draw
	// per elapsed second, queried or not), so member trajectories do not
	// depend on when they are sampled.
	epoch     int
	jitterVec geom.Vector
}

func (m *groupMember) redraw() {
	angle := m.rng.Range(-math.Pi, math.Pi)
	m.jitterVec = geom.FromPolar(m.rng.Range(0, m.jitter), angle)
}

// Advance implements Model.
func (m *groupMember) Advance(now float64) {
	m.group.center.Advance(now)
	for e := int(math.Floor(now)); m.epoch < e; {
		m.epoch++
		m.redraw()
	}
}

// PieceEnd implements Model: a member's piece ends at the earlier of
// the group center's piece end and its next jitter redraw.
func (m *groupMember) PieceEnd() float64 {
	return math.Min(m.group.center.PieceEnd(), float64(m.epoch+1))
}

// DriftBound implements Model: a member drifts with the group center
// plus the jitter discontinuity (the jitter vector is redrawn once per
// simulated second, displacing the member by at most twice the jitter
// radius in one instant).
func (m *groupMember) DriftBound() (speed, jump float64) {
	speed, _ = m.group.center.DriftBound()
	return speed, 2 * m.jitter
}

// TrueFix implements gps.Source.
func (m *groupMember) TrueFix(now float64) gps.Fix {
	m.Advance(now)
	f := m.group.center.TrueFix(now)
	f.Pos = f.Pos.Add(m.offset).Add(m.jitterVec)
	return f
}

// Manhattan is the Manhattan-grid mobility model used for vehicular
// scenarios: nodes move only along the lines of a street grid with the
// given block size, choosing straight/left/right at intersections with
// probabilities 0.5/0.25/0.25 (the standard parameterization). One
// street segment (run to the next intersection) is one piece.
type Manhattan struct {
	Arena geom.Rect
	Block float64
	Speed float64

	rng  *xrand.Rand
	pos  geom.Point  // position at the piece start t0
	dir  geom.Vector // unit axis direction
	t0   float64
	endT float64 // arrival at the next intersection
}

// NewManhattan returns a mover starting at a random intersection heading
// in a random axis direction. Block must divide the arena reasonably;
// positions snap to the street grid.
func NewManhattan(arena geom.Rect, block, speed float64, rng *xrand.Rand) *Manhattan {
	m := &Manhattan{Arena: arena, Block: block, Speed: speed, rng: rng}
	cols := int(arena.W() / block)
	rows := int(arena.H() / block)
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	m.pos = geom.Pt(
		arena.Min.X+float64(rng.Intn(cols+1))*block,
		arena.Min.Y+float64(rng.Intn(rows+1))*block,
	)
	m.pos = arena.Clamp(m.pos)
	m.dir = m.randomAxis()
	// The initial draw may point off the grid at an edge intersection;
	// redraw until the first block stays inside (a valid axis always
	// exists because the arena is at least one block wide).
	for tries := 0; tries < 16; tries++ {
		next := m.pos.Add(m.dir.Scale(m.Block))
		if next.X >= arena.Min.X && next.X <= arena.Max.X &&
			next.Y >= arena.Min.Y && next.Y <= arena.Max.Y {
			break
		}
		m.dir = m.randomAxis()
	}
	m.seal()
	return m
}

func (m *Manhattan) randomAxis() geom.Vector {
	switch m.rng.Intn(4) {
	case 0:
		return geom.Vec(1, 0)
	case 1:
		return geom.Vec(-1, 0)
	case 2:
		return geom.Vec(0, 1)
	default:
		return geom.Vec(0, -1)
	}
}

// turn picks the next direction at an intersection: straight 0.5, left
// 0.25, right 0.25; directions leading out of the arena are re-drawn.
func (m *Manhattan) turn() {
	for tries := 0; tries < 8; tries++ {
		d := m.dir
		r := m.rng.Float64()
		switch {
		case r < 0.5:
			// straight: keep d
		case r < 0.75:
			d = geom.Vec(-d.DY, d.DX) // left
		default:
			d = geom.Vec(d.DY, -d.DX) // right
		}
		next := m.pos.Add(d.Scale(m.Block))
		if next.X >= m.Arena.Min.X && next.X <= m.Arena.Max.X &&
			next.Y >= m.Arena.Min.Y && next.Y <= m.Arena.Max.Y {
			m.dir = d
			return
		}
		// Heading off the grid: force a new random axis and retry.
		m.dir = m.randomAxis()
	}
	m.dir = m.dir.Scale(-1) // dead end: U-turn
}

// along returns the distance to the next intersection along the current
// street from the piece-start position.
func (m *Manhattan) along() float64 {
	var along float64
	if m.dir.DX != 0 {
		offset := math.Mod(m.pos.X-m.Arena.Min.X, m.Block)
		if m.dir.DX > 0 {
			along = m.Block - offset
		} else {
			along = offset
		}
	} else {
		offset := math.Mod(m.pos.Y-m.Arena.Min.Y, m.Block)
		if m.dir.DY > 0 {
			along = m.Block - offset
		} else {
			along = offset
		}
	}
	if along < 1e-9 {
		along = m.Block
	}
	return along
}

// seal recomputes the piece end for the current (pos, dir, t0).
func (m *Manhattan) seal() { m.endT = m.t0 + m.along()/m.Speed }

// DriftBound implements Model.
func (m *Manhattan) DriftBound() (speed, jump float64) { return m.Speed, 0 }

// PieceEnd implements Model.
func (m *Manhattan) PieceEnd() float64 { return m.endT }

// Advance implements Model.
func (m *Manhattan) Advance(now float64) {
	for now >= m.endT {
		m.pos = m.pos.Add(m.dir.Scale(m.along()))
		m.t0 = m.endT
		m.turn()
		m.seal()
	}
}

// TrueFix implements gps.Source.
func (m *Manhattan) TrueFix(now float64) gps.Fix {
	m.Advance(now)
	return gps.Fix{
		Pos: m.pos.Add(m.dir.Scale(m.Speed * (now - m.t0))),
		Vel: m.dir.Scale(m.Speed),
	}
}
