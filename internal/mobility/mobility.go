// Package mobility implements the node movement models under which the
// HVDB model and its baselines are evaluated: random waypoint (the
// standard MANET benchmark model), random walk, Gauss-Markov, reference
// point group mobility (the paper's battlefield motivation: units moving
// as groups), and static placement.
//
// A Model is advanced by the simulation in discrete steps but exposes
// continuous kinematics between updates, which is what the clustering
// tier's mobility prediction consumes ([23] predicts residence time in a
// virtual circle from position and velocity).
package mobility

import (
	"math"

	"repro/internal/geom"
	"repro/internal/gps"
	"repro/internal/xrand"
)

// Model is the per-node movement state machine. Implementations are
// deterministic given their PRNG stream.
type Model interface {
	gps.Source
	// Advance moves internal state to time now. Callers must advance with
	// non-decreasing times.
	Advance(now float64)
	// DriftBound returns constants (speed, jump) bounding how far the
	// node can move: for any t and dt >= 0, the displacement between
	// TrueFix(t).Pos and TrueFix(t+dt).Pos is at most speed*dt + jump.
	// jump covers instantaneous discontinuities (e.g. group-motion
	// jitter); it is 0 for continuous movers. The network layer's
	// incremental spatial index derives cell-refresh deadlines from this
	// bound, so it must hold unconditionally.
	DriftBound() (speed, jump float64)
}

// Static is a Model that never moves.
type Static struct{ P geom.Point }

// Advance implements Model.
func (s *Static) Advance(float64) {}

// DriftBound implements Model: a static node never drifts.
func (s *Static) DriftBound() (speed, jump float64) { return 0, 0 }

// TrueFix implements gps.Source.
func (s *Static) TrueFix(float64) gps.Fix { return gps.Fix{Pos: s.P} }

// Waypoint is the random waypoint model: pick a uniform destination in
// the arena, travel at a uniform speed in [MinSpeed, MaxSpeed], pause,
// repeat. Speeds are in meters per simulated second.
type Waypoint struct {
	Arena              geom.Rect
	MinSpeed, MaxSpeed float64
	MaxPause           float64

	rng *xrand.Rand

	pos      geom.Point
	dest     geom.Point
	speed    float64
	pauseEnd float64
	lastT    float64
}

// NewWaypoint returns a waypoint mover starting at a uniform position.
func NewWaypoint(arena geom.Rect, minSpeed, maxSpeed, maxPause float64, rng *xrand.Rand) *Waypoint {
	w := &Waypoint{
		Arena:    arena,
		MinSpeed: minSpeed,
		MaxSpeed: maxSpeed,
		MaxPause: maxPause,
		rng:      rng,
	}
	w.pos = uniformPoint(arena, rng)
	w.pickLeg(0)
	return w
}

func uniformPoint(r geom.Rect, rng *xrand.Rand) geom.Point {
	return geom.Pt(rng.Range(r.Min.X, r.Max.X), rng.Range(r.Min.Y, r.Max.Y))
}

func (w *Waypoint) pickLeg(now float64) {
	w.dest = uniformPoint(w.Arena, w.rng)
	if w.MaxSpeed <= w.MinSpeed {
		w.speed = w.MaxSpeed
	} else {
		w.speed = w.rng.Range(w.MinSpeed, w.MaxSpeed)
	}
	if w.speed <= 0 {
		w.speed = 0.1 // avoid the RWP zero-speed freeze pathology
	}
	if w.MaxPause > 0 {
		w.pauseEnd = now + w.rng.Range(0, w.MaxPause)
	} else {
		w.pauseEnd = now
	}
}

// DriftBound implements Model: waypoint speed never exceeds the larger
// of the configured bounds (or the 0.1 m/s anti-freeze floor).
func (w *Waypoint) DriftBound() (speed, jump float64) {
	s := math.Max(w.MaxSpeed, w.MinSpeed)
	return math.Max(s, 0.1), 0
}

// Advance implements Model.
func (w *Waypoint) Advance(now float64) {
	for now > w.lastT {
		if now < w.pauseEnd { // still pausing
			w.lastT = now
			return
		}
		start := math.Max(w.lastT, w.pauseEnd)
		dist := w.pos.Dist(w.dest)
		travel := dist / w.speed
		if start+travel <= now { // reach destination within the step
			w.pos = w.dest
			w.lastT = start + travel
			w.pickLeg(w.lastT)
			if w.lastT >= now {
				w.lastT = now
				return
			}
			continue
		}
		frac := (now - start) / travel
		w.pos = w.pos.Add(w.dest.Sub(w.pos).Scale(frac))
		w.lastT = now
	}
}

// TrueFix implements gps.Source.
func (w *Waypoint) TrueFix(now float64) gps.Fix {
	w.Advance(now)
	if now < w.pauseEnd {
		return gps.Fix{Pos: w.pos}
	}
	dir := w.dest.Sub(w.pos).Unit()
	return gps.Fix{Pos: w.pos, Vel: dir.Scale(w.speed)}
}

// Walk is a random walk (a.k.a. random direction with reflection): move
// with a constant speed in a direction re-drawn every Epoch seconds,
// bouncing off arena walls.
type Walk struct {
	Arena geom.Rect
	Speed float64
	Epoch float64

	rng   *xrand.Rand
	pos   geom.Point
	vel   geom.Vector
	nextT float64 // next direction change
	lastT float64
}

// NewWalk returns a random-walk mover starting at a uniform position.
func NewWalk(arena geom.Rect, speed, epoch float64, rng *xrand.Rand) *Walk {
	w := &Walk{Arena: arena, Speed: speed, Epoch: epoch, rng: rng}
	w.pos = uniformPoint(arena, rng)
	w.redirect()
	return w
}

func (w *Walk) redirect() {
	angle := w.rng.Range(-math.Pi, math.Pi)
	w.vel = geom.FromPolar(w.Speed, angle)
	w.nextT = w.lastT + w.Epoch
}

// DriftBound implements Model.
func (w *Walk) DriftBound() (speed, jump float64) { return w.Speed, 0 }

// Advance implements Model.
func (w *Walk) Advance(now float64) {
	for now > w.lastT {
		step := math.Min(now, w.nextT) - w.lastT
		w.pos, w.vel = w.Arena.Reflect(w.pos.Add(w.vel.Scale(step)), w.vel)
		w.lastT += step
		if w.lastT >= w.nextT {
			w.redirect()
		}
	}
}

// TrueFix implements gps.Source.
func (w *Walk) TrueFix(now float64) gps.Fix {
	w.Advance(now)
	return gps.Fix{Pos: w.pos, Vel: w.vel}
}

// GaussMarkov produces temporally correlated motion: speed and direction
// follow first-order autoregressive processes with memory Alpha in
// [0, 1] (1 = straight-line, 0 = memoryless), updated every Epoch
// seconds. It avoids the sharp-turn artifacts of random waypoint.
type GaussMarkov struct {
	Arena     geom.Rect
	MeanSpeed float64
	Alpha     float64
	Epoch     float64
	SigmaS    float64 // speed innovation std dev
	SigmaD    float64 // direction innovation std dev (radians)
	// SpeedCap hard-limits the speed process (the AR(1) recursion is
	// clamped to [0, SpeedCap] at every epoch). The cap makes the
	// model's drift bounded, which the network's incremental spatial
	// index requires; NewGaussMarkov sets 3x the mean speed, far beyond
	// the ~2.4-sigma stationary spread of the default parameters.
	SpeedCap float64

	rng   *xrand.Rand
	pos   geom.Point
	speed float64
	dir   float64
	nextT float64
	lastT float64
}

// NewGaussMarkov returns a Gauss-Markov mover starting at a uniform
// position heading in a uniform direction at the mean speed.
func NewGaussMarkov(arena geom.Rect, meanSpeed, alpha, epoch float64, rng *xrand.Rand) *GaussMarkov {
	g := &GaussMarkov{
		Arena: arena, MeanSpeed: meanSpeed, Alpha: alpha, Epoch: epoch,
		SigmaS: meanSpeed / 4, SigmaD: 0.4, SpeedCap: 3 * meanSpeed, rng: rng,
	}
	g.pos = uniformPoint(arena, rng)
	g.speed = meanSpeed
	g.dir = rng.Range(-math.Pi, math.Pi)
	g.nextT = epoch
	return g
}

// speedCap returns the effective clamp: SpeedCap when set, else a
// generous default of the mean speed plus six innovation sigmas.
func (g *GaussMarkov) speedCap() float64 {
	if g.SpeedCap > 0 {
		return g.SpeedCap
	}
	return g.MeanSpeed + 6*g.SigmaS
}

// DriftBound implements Model: Advance clamps the speed process to
// speedCap, so it is a hard bound on instantaneous speed.
func (g *GaussMarkov) DriftBound() (speed, jump float64) { return g.speedCap(), 0 }

// Advance implements Model.
func (g *GaussMarkov) Advance(now float64) {
	for now > g.lastT {
		step := math.Min(now, g.nextT) - g.lastT
		vel := geom.FromPolar(g.speed, g.dir)
		var refl geom.Vector
		g.pos, refl = g.Arena.Reflect(g.pos.Add(vel.Scale(step)), vel)
		if refl != vel { // bounced: adopt the reflected heading
			g.dir = refl.Angle()
		}
		g.lastT += step
		if g.lastT >= g.nextT {
			a := g.Alpha
			g.speed = a*g.speed + (1-a)*g.MeanSpeed +
				math.Sqrt(1-a*a)*g.SigmaS*g.rng.NormFloat64()
			if g.speed < 0 {
				g.speed = 0
			}
			if cap := g.speedCap(); g.speed > cap {
				g.speed = cap // keep DriftBound a hard guarantee
			}
			g.dir = a*g.dir + (1-a)*g.dir + // mean direction = current
				math.Sqrt(1-a*a)*g.SigmaD*g.rng.NormFloat64()
			g.nextT += g.Epoch
		}
	}
}

// TrueFix implements gps.Source.
func (g *GaussMarkov) TrueFix(now float64) gps.Fix {
	g.Advance(now)
	return gps.Fix{Pos: g.pos, Vel: geom.FromPolar(g.speed, g.dir)}
}

// Group implements reference point group mobility (RPGM): a logical
// group center moves by random waypoint and each member jitters around a
// fixed offset from the center. This is the paper's battlefield and
// disaster-relief motivation, where units move together and CH-capable
// vehicles anchor clusters.
type Group struct {
	center *Waypoint
}

// NewGroup returns the shared group center mover.
func NewGroup(arena geom.Rect, minSpeed, maxSpeed, maxPause float64, rng *xrand.Rand) *Group {
	return &Group{center: NewWaypoint(arena, minSpeed, maxSpeed, maxPause, rng)}
}

// Member returns a Model for one group member with the given offset from
// the center and jitter radius.
func (g *Group) Member(offset geom.Vector, jitter float64, rng *xrand.Rand) Model {
	return &groupMember{group: g, offset: offset, jitter: jitter, rng: rng}
}

type groupMember struct {
	group  *Group
	offset geom.Vector
	jitter float64
	rng    *xrand.Rand

	lastJitterT float64
	jitterVec   geom.Vector
}

// Advance implements Model.
func (m *groupMember) Advance(now float64) { m.group.center.Advance(now) }

// DriftBound implements Model: a member drifts with the group center
// plus the jitter discontinuity (the jitter vector is redrawn once per
// simulated second, displacing the member by at most twice the jitter
// radius in one instant).
func (m *groupMember) DriftBound() (speed, jump float64) {
	speed, _ = m.group.center.DriftBound()
	return speed, 2 * m.jitter
}

// TrueFix implements gps.Source.
func (m *groupMember) TrueFix(now float64) gps.Fix {
	f := m.group.center.TrueFix(now)
	// Refresh the intra-group jitter once per simulated second: members
	// wander within a disc around their formation slot.
	if now-m.lastJitterT >= 1 || (m.jitterVec == geom.Vector{} && m.jitter > 0) {
		angle := m.rng.Range(-math.Pi, math.Pi)
		m.jitterVec = geom.FromPolar(m.rng.Range(0, m.jitter), angle)
		m.lastJitterT = now
	}
	f.Pos = f.Pos.Add(m.offset).Add(m.jitterVec)
	return f
}

// Manhattan is the Manhattan-grid mobility model used for vehicular
// scenarios: nodes move only along the lines of a street grid with the
// given block size, choosing straight/left/right at intersections with
// probabilities 0.5/0.25/0.25 (the standard parameterization).
type Manhattan struct {
	Arena geom.Rect
	Block float64
	Speed float64

	rng   *xrand.Rand
	pos   geom.Point
	dir   geom.Vector // unit axis direction
	lastT float64
}

// NewManhattan returns a mover starting at a random intersection heading
// in a random axis direction. Block must divide the arena reasonably;
// positions snap to the street grid.
func NewManhattan(arena geom.Rect, block, speed float64, rng *xrand.Rand) *Manhattan {
	m := &Manhattan{Arena: arena, Block: block, Speed: speed, rng: rng}
	cols := int(arena.W() / block)
	rows := int(arena.H() / block)
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	m.pos = geom.Pt(
		arena.Min.X+float64(rng.Intn(cols+1))*block,
		arena.Min.Y+float64(rng.Intn(rows+1))*block,
	)
	m.pos = arena.Clamp(m.pos)
	m.dir = m.randomAxis()
	// The initial draw may point off the grid at an edge intersection;
	// redraw until the first block stays inside (a valid axis always
	// exists because the arena is at least one block wide).
	for tries := 0; tries < 16; tries++ {
		next := m.pos.Add(m.dir.Scale(m.Block))
		if next.X >= arena.Min.X && next.X <= arena.Max.X &&
			next.Y >= arena.Min.Y && next.Y <= arena.Max.Y {
			break
		}
		m.dir = m.randomAxis()
	}
	return m
}

func (m *Manhattan) randomAxis() geom.Vector {
	switch m.rng.Intn(4) {
	case 0:
		return geom.Vec(1, 0)
	case 1:
		return geom.Vec(-1, 0)
	case 2:
		return geom.Vec(0, 1)
	default:
		return geom.Vec(0, -1)
	}
}

// turn picks the next direction at an intersection: straight 0.5, left
// 0.25, right 0.25; directions leading out of the arena are re-drawn.
func (m *Manhattan) turn() {
	for tries := 0; tries < 8; tries++ {
		d := m.dir
		r := m.rng.Float64()
		switch {
		case r < 0.5:
			// straight: keep d
		case r < 0.75:
			d = geom.Vec(-d.DY, d.DX) // left
		default:
			d = geom.Vec(d.DY, -d.DX) // right
		}
		next := m.pos.Add(d.Scale(m.Block))
		if next.X >= m.Arena.Min.X && next.X <= m.Arena.Max.X &&
			next.Y >= m.Arena.Min.Y && next.Y <= m.Arena.Max.Y {
			m.dir = d
			return
		}
		// Heading off the grid: force a new random axis and retry.
		m.dir = m.randomAxis()
	}
	m.dir = m.dir.Scale(-1) // dead end: U-turn
}

// DriftBound implements Model.
func (m *Manhattan) DriftBound() (speed, jump float64) { return m.Speed, 0 }

// Advance implements Model.
func (m *Manhattan) Advance(now float64) {
	for now > m.lastT {
		// Distance to the next intersection along the current street.
		var along float64
		if m.dir.DX != 0 {
			offset := math.Mod(m.pos.X-m.Arena.Min.X, m.Block)
			if m.dir.DX > 0 {
				along = m.Block - offset
			} else {
				along = offset
			}
		} else {
			offset := math.Mod(m.pos.Y-m.Arena.Min.Y, m.Block)
			if m.dir.DY > 0 {
				along = m.Block - offset
			} else {
				along = offset
			}
		}
		if along < 1e-9 {
			along = m.Block
		}
		tToNext := along / m.Speed
		step := now - m.lastT
		if step < tToNext {
			m.pos = m.pos.Add(m.dir.Scale(step * m.Speed))
			m.lastT = now
			return
		}
		m.pos = m.pos.Add(m.dir.Scale(along))
		m.lastT += tToNext
		m.turn()
	}
}

// TrueFix implements gps.Source.
func (m *Manhattan) TrueFix(now float64) gps.Fix {
	m.Advance(now)
	return gps.Fix{Pos: m.pos, Vel: m.dir.Scale(m.Speed)}
}
