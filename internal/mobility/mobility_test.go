package mobility

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

var arena = geom.RectWH(0, 0, 1000, 1000)

func inArena(p geom.Point) bool {
	return p.X >= 0 && p.X <= 1000 && p.Y >= 0 && p.Y <= 1000
}

func TestStatic(t *testing.T) {
	s := &Static{P: geom.Pt(5, 5)}
	for _, now := range []float64{0, 10, 1e6} {
		f := s.TrueFix(now)
		if f.Pos != geom.Pt(5, 5) || f.Vel != (geom.Vector{}) {
			t.Fatalf("static moved: %+v", f)
		}
	}
}

func TestWaypointStaysInArena(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 5; trial++ {
		w := NewWaypoint(arena, 1, 20, 5, rng.Split())
		for now := 0.0; now < 500; now += 0.7 {
			f := w.TrueFix(now)
			if !inArena(f.Pos) {
				t.Fatalf("waypoint left arena at t=%v: %v", now, f.Pos)
			}
		}
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	w := NewWaypoint(arena, 5, 10, 0, xrand.New(2))
	prev := w.TrueFix(0).Pos
	for now := 1.0; now < 200; now++ {
		cur := w.TrueFix(now).Pos
		if d := cur.Dist(prev); d > 10+1e-6 {
			t.Fatalf("moved %v m in 1 s, exceeds max speed 10", d)
		}
		prev = cur
	}
}

func TestWaypointActuallyMoves(t *testing.T) {
	w := NewWaypoint(arena, 5, 10, 0, xrand.New(3))
	start := w.TrueFix(0).Pos
	end := w.TrueFix(100).Pos
	if start.Dist(end) == 0 {
		t.Fatal("waypoint node never moved")
	}
}

func TestWaypointPauseHasZeroVelocity(t *testing.T) {
	// With an enormous pause the node is almost surely paused after
	// reaching its first destination.
	w := NewWaypoint(arena, 1000, 1000, 1e6, xrand.New(4))
	f := w.TrueFix(100) // any leg is at most ~1.4s at speed 1000
	if f.Vel != (geom.Vector{}) {
		t.Fatalf("paused node has velocity %v", f.Vel)
	}
}

func TestWaypointMonotonicAdvanceConsistency(t *testing.T) {
	// Sampling densely vs sparsely must land at the same position,
	// since Advance is deterministic in its PRNG consumption order.
	a := NewWaypoint(arena, 1, 20, 2, xrand.New(5))
	b := NewWaypoint(arena, 1, 20, 2, xrand.New(5))
	for now := 0.0; now <= 300; now += 0.25 {
		a.Advance(now)
	}
	b.Advance(300)
	pa, pb := a.TrueFix(300).Pos, b.TrueFix(300).Pos
	if pa.Dist(pb) > 1e-6 {
		t.Fatalf("dense %v vs sparse %v sampling diverged", pa, pb)
	}
}

func TestWalkStaysInArenaAndMoves(t *testing.T) {
	w := NewWalk(arena, 10, 3, xrand.New(6))
	start := w.TrueFix(0).Pos
	moved := false
	for now := 0.0; now < 400; now += 0.9 {
		f := w.TrueFix(now)
		if !inArena(f.Pos) {
			t.Fatalf("walk left arena at t=%v: %v", now, f.Pos)
		}
		if f.Pos.Dist(start) > 1 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("walk never moved")
	}
}

func TestWalkSpeedConstant(t *testing.T) {
	w := NewWalk(arena, 7, 5, xrand.New(7))
	for now := 0.0; now < 100; now += 1.3 {
		f := w.TrueFix(now)
		if v := f.Vel.Len(); v < 6.99 || v > 7.01 {
			t.Fatalf("walk speed %v want 7", v)
		}
	}
}

func TestGaussMarkovStaysInArena(t *testing.T) {
	g := NewGaussMarkov(arena, 10, 0.8, 1, xrand.New(8))
	for now := 0.0; now < 500; now += 0.5 {
		f := g.TrueFix(now)
		if !inArena(f.Pos) {
			t.Fatalf("gauss-markov left arena at t=%v: %v", now, f.Pos)
		}
		if f.Vel.Len() < 0 {
			t.Fatal("negative speed")
		}
	}
}

func TestGaussMarkovTemporalCorrelation(t *testing.T) {
	// With alpha near 1 the heading should change slowly: consecutive
	// one-second velocity samples should mostly point the same way.
	g := NewGaussMarkov(arena, 10, 0.95, 1, xrand.New(9))
	agree := 0
	total := 0
	prev := g.TrueFix(0).Vel
	for now := 1.0; now < 200; now++ {
		cur := g.TrueFix(now).Vel
		if prev.Len() > 0 && cur.Len() > 0 {
			total++
			if prev.Unit().Dot(cur.Unit()) > 0 {
				agree++
			}
		}
		prev = cur
	}
	if frac := float64(agree) / float64(total); frac < 0.8 {
		t.Fatalf("only %.0f%% of consecutive headings agree; expected high correlation", frac*100)
	}
}

func TestGroupMembersStayTogether(t *testing.T) {
	rng := xrand.New(10)
	g := NewGroup(arena, 5, 10, 0, rng.Split())
	members := []Model{
		g.Member(geom.Vec(10, 0), 5, rng.Split()),
		g.Member(geom.Vec(-10, 0), 5, rng.Split()),
		g.Member(geom.Vec(0, 15), 5, rng.Split()),
	}
	for now := 0.0; now < 300; now += 2.5 {
		var pts []geom.Point
		for _, m := range members {
			pts = append(pts, m.TrueFix(now).Pos)
		}
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				if d := pts[i].Dist(pts[j]); d > 60 {
					t.Fatalf("group members %d and %d drifted %v m apart at t=%v", i, j, d, now)
				}
			}
		}
	}
}

func TestGroupFollowsCenter(t *testing.T) {
	rng := xrand.New(11)
	g := NewGroup(arena, 5, 10, 0, rng.Split())
	m := g.Member(geom.Vec(0, 0), 0, rng.Split())
	// Zero offset, zero jitter member must coincide with the center.
	for now := 0.0; now < 100; now += 3 {
		c := g.center.TrueFix(now).Pos
		p := m.TrueFix(now).Pos
		if c.Dist(p) > 1e-9 {
			t.Fatalf("zero-offset member at %v but center at %v", p, c)
		}
	}
}

func TestModelsAreDeterministic(t *testing.T) {
	build := func() []Model {
		rng := xrand.New(99)
		return []Model{
			NewWaypoint(arena, 1, 15, 3, rng.Split()),
			NewWalk(arena, 8, 4, rng.Split()),
			NewGaussMarkov(arena, 9, 0.7, 1, rng.Split()),
		}
	}
	a, b := build(), build()
	for now := 0.0; now < 120; now += 1.7 {
		for i := range a {
			pa, pb := a[i].TrueFix(now).Pos, b[i].TrueFix(now).Pos
			if pa != pb {
				t.Fatalf("model %d nondeterministic at t=%v: %v vs %v", i, now, pa, pb)
			}
		}
	}
}

func TestManhattanStaysOnStreets(t *testing.T) {
	m := NewManhattan(arena, 250, 15, xrand.New(21))
	for now := 0.0; now < 300; now += 0.8 {
		f := m.TrueFix(now)
		if !inArena(f.Pos) {
			t.Fatalf("manhattan left arena at t=%v: %v", now, f.Pos)
		}
		// At least one coordinate must lie on a street line (multiple
		// of the block size).
		onX := math.Mod(f.Pos.X, 250) < 1e-6 || 250-math.Mod(f.Pos.X, 250) < 1e-6
		onY := math.Mod(f.Pos.Y, 250) < 1e-6 || 250-math.Mod(f.Pos.Y, 250) < 1e-6
		if !onX && !onY {
			t.Fatalf("off-street position %v at t=%v", f.Pos, now)
		}
	}
}

func TestManhattanMovesAxisAligned(t *testing.T) {
	m := NewManhattan(arena, 250, 10, xrand.New(22))
	for now := 0.0; now < 100; now += 1.1 {
		v := m.TrueFix(now).Vel
		if v.DX != 0 && v.DY != 0 {
			t.Fatalf("diagonal velocity %v", v)
		}
		if l := v.Len(); math.Abs(l-10) > 1e-9 {
			t.Fatalf("speed %v want 10", l)
		}
	}
}

func TestManhattanTurnsEventually(t *testing.T) {
	m := NewManhattan(arena, 250, 10, xrand.New(23))
	dirs := map[geom.Vector]bool{}
	for now := 0.0; now < 600; now += 2 {
		v := m.TrueFix(now).Vel
		dirs[v.Unit()] = true
	}
	if len(dirs) < 2 {
		t.Fatalf("never turned: %v", dirs)
	}
}

func TestManhattanDeterministic(t *testing.T) {
	a := NewManhattan(arena, 250, 12, xrand.New(24))
	b := NewManhattan(arena, 250, 12, xrand.New(24))
	for now := 0.0; now < 120; now += 1.3 {
		if a.TrueFix(now).Pos != b.TrueFix(now).Pos {
			t.Fatalf("nondeterministic at t=%v", now)
		}
	}
}
