package hypercube_test

import (
	"fmt"

	"repro/internal/hypercube"
)

// The paper's availability argument in one example: an n-cube offers n
// node-disjoint paths, so routes survive failures.
func ExampleDisjointPaths() {
	paths := hypercube.DisjointPaths(0b0000, 0b1111, 4)
	fmt.Println("disjoint paths:", len(paths))
	// Output: disjoint paths: 4
}

// Routing around failures in an incomplete hypercube (Katseff-style,
// generalized by the paper to arbitrary missing nodes).
func ExampleCube_Route() {
	c := hypercube.Complete(3)
	c.Remove(0b001) // e-cube path 000->001->011->111 is blocked
	path := c.Route(0b000, 0b111)
	for _, l := range path {
		fmt.Println(l.Bits(3))
	}
	// Output:
	// 000
	// 010
	// 011
	// 111
}

// A multicast tree over the hypercube tier: destinations sharing e-cube
// prefixes share tree edges.
func ExampleCube_MulticastTree() {
	c := hypercube.Complete(4)
	tree, missed := c.MulticastTree(0b0000, []hypercube.Label{0b0011, 0b0111})
	fmt.Println("tree nodes:", len(tree), "missed:", len(missed))
	// Output: tree nodes: 4 missed: 0
}
