package hypercube

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestHamming(t *testing.T) {
	cases := []struct {
		a, b Label
		d    int
	}{
		{0b0000, 0b0000, 0},
		{0b0000, 0b1111, 4},
		{0b1010, 0b0101, 4},
		{0b1000, 0b1001, 1},
		{0b1000, 0b1101, 2},
	}
	for _, c := range cases {
		if got := Hamming(c.a, c.b); got != c.d {
			t.Errorf("Hamming(%04b,%04b)=%d want %d", c.a, c.b, got, c.d)
		}
	}
}

func TestLabelBits(t *testing.T) {
	if got := Label(0b0101).Bits(4); got != "0101" {
		t.Fatalf("Bits=%q", got)
	}
	if got := Label(1).Bits(6); got != "000001" {
		t.Fatalf("Bits=%q", got)
	}
}

func TestFlipAndBit(t *testing.T) {
	l := Label(0b1000)
	if l.Flip(0) != 0b1001 || l.Flip(3) != 0b0000 {
		t.Fatal("Flip wrong")
	}
	if l.Bit(3) != 1 || l.Bit(0) != 0 {
		t.Fatal("Bit wrong")
	}
}

func TestNewPanicsOnBadDim(t *testing.T) {
	for _, dim := range []int{0, -1, MaxDim + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", dim)
				}
			}()
			New(dim)
		}()
	}
}

func TestCompleteProperties(t *testing.T) {
	for dim := 1; dim <= 6; dim++ {
		c := Complete(dim)
		if c.Count() != 1<<uint(dim) {
			t.Fatalf("dim %d count %d", dim, c.Count())
		}
		if !c.Connected() {
			t.Fatalf("complete %d-cube not connected", dim)
		}
		// The paper: diameter of the hypercube is n.
		if got := c.Diameter(); got != dim {
			t.Fatalf("complete %d-cube diameter %d want %d", dim, got, dim)
		}
		// Regularity: every node has exactly n neighbors.
		for _, l := range c.Labels() {
			if len(c.Neighbors(l)) != dim {
				t.Fatalf("node %v has %d neighbors want %d", l, len(c.Neighbors(l)), dim)
			}
		}
	}
}

func TestAddRemove(t *testing.T) {
	c := New(3)
	if c.Count() != 0 || c.Has(0) {
		t.Fatal("fresh cube should be empty")
	}
	c.Add(5)
	c.Add(5) // idempotent
	if c.Count() != 1 || !c.Has(5) {
		t.Fatal("Add failed")
	}
	c.Remove(5)
	c.Remove(5) // idempotent
	if c.Count() != 0 || c.Has(5) {
		t.Fatal("Remove failed")
	}
}

func TestAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(3).Add(8)
}

func TestECubePath(t *testing.T) {
	// E-cube corrects lowest dimension first.
	path := ECubePath(0b000, 0b101)
	want := []Label{0b000, 0b001, 0b101}
	if len(path) != len(want) {
		t.Fatalf("path %v want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v want %v", path, want)
		}
	}
	if got := ECubeNext(3, 3); got != 3 {
		t.Fatalf("self next %v", got)
	}
}

func TestECubePathLengthIsHammingProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		src, dst := Label(a&0xFF), Label(b&0xFF)
		return len(ECubePath(src, dst))-1 == Hamming(src, dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRouteComplete(t *testing.T) {
	c := Complete(4)
	p := c.Route(0b0000, 0b1111)
	if len(p) != 5 {
		t.Fatalf("route length %d want 5", len(p))
	}
	if p[0] != 0 || p[len(p)-1] != 0b1111 {
		t.Fatal("route endpoints wrong")
	}
	for i := 1; i < len(p); i++ {
		if Hamming(p[i-1], p[i]) != 1 {
			t.Fatalf("route step %v -> %v is not a hypercube edge", p[i-1], p[i])
		}
	}
}

func TestRouteAroundFault(t *testing.T) {
	c := Complete(3)
	// E-cube path 000 -> 001 -> 011 -> 111; remove 001 to force detour.
	c.Remove(0b001)
	p := c.Route(0b000, 0b111)
	if p == nil {
		t.Fatal("route should exist around single fault")
	}
	if len(p)-1 != 3 { // another shortest path exists: 000-010-011-111
		t.Fatalf("detour length %d want 3", len(p)-1)
	}
	for _, l := range p {
		if l == 0b001 {
			t.Fatal("route used removed node")
		}
	}
}

func TestRouteDisconnected(t *testing.T) {
	c := New(3)
	c.Add(0b000)
	c.Add(0b111)
	if p := c.Route(0b000, 0b111); p != nil {
		t.Fatalf("route across void should be nil, got %v", p)
	}
	if d := c.Distance(0b000, 0b111); d != -1 {
		t.Fatalf("distance %d want -1", d)
	}
}

func TestRouteSelf(t *testing.T) {
	c := Complete(3)
	p := c.Route(5, 5)
	if len(p) != 1 || p[0] != 5 {
		t.Fatalf("self route %v", p)
	}
	if c.Distance(5, 5) != 0 {
		t.Fatal("self distance")
	}
}

func TestRouteMissingEndpoint(t *testing.T) {
	c := Complete(3)
	c.Remove(0)
	if c.Route(0, 5) != nil || c.Route(5, 0) != nil {
		t.Fatal("route to/from absent node should be nil")
	}
}

func TestDisjointPathsCount(t *testing.T) {
	// The paper: n node-disjoint paths between each pair.
	for dim := 2; dim <= 6; dim++ {
		paths := DisjointPaths(0, Label(1<<uint(dim))-1, dim)
		if len(paths) != dim {
			t.Fatalf("dim %d: %d paths want %d", dim, len(paths), dim)
		}
	}
	paths := DisjointPaths(0b0000, 0b0011, 4)
	if len(paths) != 4 {
		t.Fatalf("got %d paths want 4", len(paths))
	}
}

func TestDisjointPathsAreDisjointAndValid(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 200; trial++ {
		dim := 2 + rng.Intn(5)
		src := Label(rng.Intn(1 << uint(dim)))
		dst := Label(rng.Intn(1 << uint(dim)))
		if src == dst {
			continue
		}
		paths := DisjointPaths(src, dst, dim)
		interior := map[Label]int{}
		for pi, p := range paths {
			if p[0] != src || p[len(p)-1] != dst {
				t.Fatalf("path %d endpoints wrong: %v", pi, p)
			}
			for i := 1; i < len(p); i++ {
				if Hamming(p[i-1], p[i]) != 1 {
					t.Fatalf("path %d has non-edge step: %v", pi, p)
				}
			}
			for _, l := range p[1 : len(p)-1] {
				if prev, ok := interior[l]; ok {
					t.Fatalf("node %v shared by paths %d and %d", l, prev, pi)
				}
				interior[l] = pi
			}
		}
	}
}

func TestDisjointPathsSelf(t *testing.T) {
	paths := DisjointPaths(3, 3, 4)
	if len(paths) != 1 || len(paths[0]) != 1 {
		t.Fatalf("self paths %v", paths)
	}
}

func TestAvailablePaths(t *testing.T) {
	c := Complete(4)
	if got := c.AvailablePaths(0b0000, 0b1111); got != 4 {
		t.Fatalf("complete cube available paths %d want 4", got)
	}
	// Removing one interior node kills at most one disjoint path.
	c.Remove(0b0001)
	got := c.AvailablePaths(0b0000, 0b1111)
	if got != 3 {
		t.Fatalf("after one fault %d want 3", got)
	}
	if c.AvailablePaths(0b0001, 0b1111) != 0 {
		t.Fatal("absent endpoint should have 0 paths")
	}
}

// The paper's fault-tolerance claim: the n-cube survives any n-1 node
// failures (connectivity of the rest, when the failed nodes are interior
// to routes, still allows routing between surviving pairs).
func TestSustainsNMinus1Failures(t *testing.T) {
	rng := xrand.New(2)
	for trial := 0; trial < 100; trial++ {
		dim := 3 + rng.Intn(3)
		c := Complete(dim)
		// Fail dim-1 random nodes (never src/dst).
		src := Label(0)
		dst := Label(1<<uint(dim)) - 1
		failed := 0
		for failed < dim-1 {
			l := Label(rng.Intn(1 << uint(dim)))
			if l == src || l == dst || !c.Has(l) {
				continue
			}
			c.Remove(l)
			failed++
		}
		if c.Route(src, dst) == nil {
			t.Fatalf("dim %d: src-dst disconnected by only %d failures", dim, dim-1)
		}
	}
}

func TestConnected(t *testing.T) {
	c := New(3)
	if !c.Connected() {
		t.Fatal("empty cube is vacuously connected")
	}
	c.Add(0)
	if !c.Connected() {
		t.Fatal("singleton connected")
	}
	c.Add(0b111)
	if c.Connected() {
		t.Fatal("two antipodal nodes are disconnected")
	}
	c.Add(0b001)
	c.Add(0b011)
	if !c.Connected() {
		t.Fatal("chain should be connected")
	}
}

func TestDiameterIncomplete(t *testing.T) {
	c := Complete(3)
	// Removing node 001 lengthens no pair beyond 3 in a 3-cube? It can:
	// dist(000,011) becomes 000-010-011 = 2 still. Diameter stays 3.
	c.Remove(0b001)
	if d := c.Diameter(); d < 3 {
		t.Fatalf("diameter %d want >= 3", d)
	}
	empty := New(3)
	if empty.Diameter() != -1 {
		t.Fatal("empty diameter should be -1")
	}
}

func TestMulticastTreeComplete(t *testing.T) {
	c := Complete(4)
	root := Label(0b0000)
	dests := []Label{0b0001, 0b0011, 0b1111, 0b1000}
	tree, missed := c.MulticastTree(root, dests)
	if len(missed) != 0 {
		t.Fatalf("missed %v", missed)
	}
	for _, d := range dests {
		// Every destination must reach the root via parent pointers.
		cur := d
		for steps := 0; cur != root; steps++ {
			if steps > 16 {
				t.Fatalf("dest %v does not reach root", d)
			}
			parent, ok := tree[cur]
			if !ok {
				t.Fatalf("dest %v dangling at %v", d, cur)
			}
			if Hamming(parent, cur) != 1 {
				t.Fatalf("tree edge %v-%v not a hypercube edge", parent, cur)
			}
			cur = parent
		}
	}
}

func TestMulticastTreeSharesPrefixes(t *testing.T) {
	c := Complete(4)
	// Destinations 0011 and 0111 share the e-cube prefix through 0001
	// and 0011; tree size should reflect sharing, not two full paths.
	tree, _ := c.MulticastTree(0b0000, []Label{0b0011, 0b0111})
	// Nodes: 0000, 0001, 0011, 0111 => 4 entries.
	if len(tree) != 4 {
		t.Fatalf("tree has %d nodes want 4 (prefix sharing): %v", len(tree), tree)
	}
}

func TestMulticastTreeAroundFaults(t *testing.T) {
	c := Complete(4)
	c.Remove(0b0001) // blocks the e-cube path 0000->0001->0011
	tree, missed := c.MulticastTree(0b0000, []Label{0b0011})
	if len(missed) != 0 {
		t.Fatalf("missed %v despite alternate routes", missed)
	}
	cur := Label(0b0011)
	for cur != 0b0000 {
		parent, ok := tree[cur]
		if !ok {
			t.Fatal("dangling tree node")
		}
		if parent == 0b0001 {
			t.Fatal("tree uses removed node")
		}
		cur = parent
	}
}

func TestMulticastTreeMissedDests(t *testing.T) {
	c := Complete(3)
	c.Remove(0b111)
	_, missed := c.MulticastTree(0, []Label{0b111, 0b011})
	if len(missed) != 1 || missed[0] != 0b111 {
		t.Fatalf("missed %v want [111]", missed)
	}
	// Absent root: everything missed.
	c2 := New(3)
	c2.Add(1)
	_, missed2 := c2.MulticastTree(0, []Label{1})
	if len(missed2) != 1 {
		t.Fatalf("absent root should miss all dests, got %v", missed2)
	}
}

func TestTreeEdges(t *testing.T) {
	tree := map[Label]Label{0: 0, 1: 0, 3: 1, 2: 0}
	edges := TreeEdges(tree)
	if len(edges[0]) != 2 {
		t.Fatalf("root children %v", edges[0])
	}
	if len(edges[1]) != 1 || edges[1][0] != 3 {
		t.Fatalf("node 1 children %v", edges[1])
	}
}

func TestSubcubePartition(t *testing.T) {
	c := Complete(3)
	zero, one := c.SubcubePartition(2)
	if len(zero) != 4 || len(one) != 4 {
		t.Fatalf("partition sizes %d %d", len(zero), len(one))
	}
	for _, l := range zero {
		if l.Bit(2) != 0 {
			t.Fatalf("label %v in zero half", l)
		}
	}
	for _, l := range one {
		if l.Bit(2) != 1 {
			t.Fatalf("label %v in one half", l)
		}
	}
}

// Property: in random incomplete cubes, Route returns a valid present
// path whenever the endpoints are connected, and its length equals BFS
// distance (shortest).
func TestRouteShortestProperty(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 300; trial++ {
		dim := 3 + rng.Intn(3)
		c := Complete(dim)
		removals := rng.Intn(c.Size() / 2)
		for i := 0; i < removals; i++ {
			c.Remove(Label(rng.Intn(c.Size())))
		}
		labels := c.Labels()
		if len(labels) < 2 {
			continue
		}
		src := labels[rng.Intn(len(labels))]
		dst := labels[rng.Intn(len(labels))]
		p := c.Route(src, dst)
		want := c.bfs(src, dst)
		if src == dst {
			continue
		}
		if (p == nil) != (want == nil) {
			t.Fatalf("route/bfs disagree on reachability %v->%v", src, dst)
		}
		if p == nil {
			continue
		}
		if len(p) != len(want) {
			t.Fatalf("route len %d but bfs len %d", len(p), len(want))
		}
		for i := 1; i < len(p); i++ {
			if Hamming(p[i-1], p[i]) != 1 || !c.Has(p[i]) {
				t.Fatalf("invalid route %v", p)
			}
		}
	}
}
