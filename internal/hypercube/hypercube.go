// Package hypercube implements the n-dimensional hypercube machinery the
// HVDB model is built on: labels and Hamming distance, neighbor
// enumeration, e-cube (dimension-ordered) routing, the node-disjoint
// parallel-paths construction behind the paper's high-availability claim,
// and — following Katseff's incomplete hypercubes, which the paper
// generalizes — routing and multicast over cubes with arbitrary missing
// nodes.
//
// Everything here is pure computation over labels; mapping labels onto
// geographic Virtual Circles is package logicalid's job.
package hypercube

import (
	"fmt"
	"math/bits"
)

// Label is a hypercube node label k1...kn packed into the low n bits of
// a uint32 (k_n is bit 0). Dimensions above 20 are rejected by New, so
// uint32 is ample.
type Label uint32

// MaxDim is the largest supported dimension. The paper considers "small"
// dimensions (3..6); 20 leaves generous experimental headroom while
// keeping table sizes sane.
const MaxDim = 20

// String renders the label as an n-bit binary string given the cube
// dimension.
func (l Label) String() string { return fmt.Sprintf("%b", uint32(l)) }

// Bits renders the label with exactly dim binary digits, matching the
// paper's figures (e.g. "0101" in a 4-cube).
func (l Label) Bits(dim int) string {
	return fmt.Sprintf("%0*b", dim, uint32(l))
}

// Hamming returns the Hamming distance between two labels — the paper's
// H(u, v).
func Hamming(a, b Label) int {
	return bits.OnesCount32(uint32(a ^ b))
}

// Flip returns the label with bit i (0-based from the least significant
// end) inverted — the neighbor across dimension i.
func (l Label) Flip(i int) Label { return l ^ (1 << uint(i)) }

// Bit returns bit i of the label.
func (l Label) Bit(i int) int { return int(l>>uint(i)) & 1 }

// Cube is a possibly incomplete hypercube: a dimension plus a presence
// set. The paper: "We generalize the incomplete hypercube by allowing
// any number of nodes/links to be absent due to many reasons such as
// mobility, transmission range, and failure of nodes."
type Cube struct {
	dim     int
	present []bool // indexed by label
	count   int
}

// New returns an empty (all-absent) cube of the given dimension. It
// panics if dim is outside [1, MaxDim]; that is a configuration error.
func New(dim int) *Cube {
	if dim < 1 || dim > MaxDim {
		panic(fmt.Sprintf("hypercube: dimension %d out of range [1,%d]", dim, MaxDim))
	}
	return &Cube{dim: dim, present: make([]bool, 1<<uint(dim))}
}

// Complete returns a cube with all 2^dim nodes present.
func Complete(dim int) *Cube {
	c := New(dim)
	for l := range c.present {
		c.present[l] = true
	}
	c.count = len(c.present)
	return c
}

// Dim returns the cube dimension n.
func (c *Cube) Dim() int { return c.dim }

// Size returns 2^n, the capacity of the cube.
func (c *Cube) Size() int { return len(c.present) }

// Count returns the number of present nodes.
func (c *Cube) Count() int { return c.count }

// Has reports whether the label is present.
func (c *Cube) Has(l Label) bool {
	return int(l) < len(c.present) && c.present[l]
}

// Add marks the label present. Out-of-range labels panic: the label
// space is fixed by the dimension and a bad label is a mapping bug.
func (c *Cube) Add(l Label) {
	if int(l) >= len(c.present) {
		panic(fmt.Sprintf("hypercube: label %d outside %d-cube", l, c.dim))
	}
	if !c.present[l] {
		c.present[l] = true
		c.count++
	}
}

// Remove marks the label absent.
func (c *Cube) Remove(l Label) {
	if int(l) < len(c.present) && c.present[l] {
		c.present[l] = false
		c.count--
	}
}

// Labels returns all present labels in ascending order.
func (c *Cube) Labels() []Label {
	out := make([]Label, 0, c.count)
	for l, ok := range c.present {
		if ok {
			out = append(out, Label(l))
		}
	}
	return out
}

// Neighbors returns the present hypercube neighbors of l (l itself need
// not be present, which lets a joining node probe the cube).
func (c *Cube) Neighbors(l Label) []Label {
	out := make([]Label, 0, c.dim)
	for i := 0; i < c.dim; i++ {
		if nb := l.Flip(i); c.Has(nb) {
			out = append(out, nb)
		}
	}
	return out
}

// AllNeighbors returns every potential neighbor label regardless of
// presence — the logical link set of the complete cube.
func AllNeighbors(l Label, dim int) []Label {
	out := make([]Label, 0, dim)
	for i := 0; i < dim; i++ {
		out = append(out, l.Flip(i))
	}
	return out
}

// ECubeNext returns the next hop from cur toward dst under e-cube
// (dimension-ordered, lowest dimension first) routing in a complete
// cube, or cur when cur == dst. E-cube is the deadlock-free baseline the
// MPP literature uses; the incomplete cube falls back to Route when the
// e-cube hop is absent.
func ECubeNext(cur, dst Label) Label {
	diff := uint32(cur ^ dst)
	if diff == 0 {
		return cur
	}
	i := bits.TrailingZeros32(diff)
	return cur.Flip(i)
}

// ECubePath returns the complete e-cube path from src to dst, inclusive
// of both endpoints.
func ECubePath(src, dst Label) []Label {
	path := []Label{src}
	for cur := src; cur != dst; {
		cur = ECubeNext(cur, dst)
		path = append(path, cur)
	}
	return path
}

// Route returns a shortest path from src to dst visiting only present
// nodes (inclusive of endpoints), or nil if none exists. It first tries
// pure e-cube (which is shortest and cheap), then falls back to BFS over
// the incomplete cube.
func (c *Cube) Route(src, dst Label) []Label {
	if !c.Has(src) || !c.Has(dst) {
		return nil
	}
	if src == dst {
		return []Label{src}
	}
	// Fast path: e-cube through present nodes only.
	path := []Label{src}
	ok := true
	for cur := src; cur != dst; {
		cur = ECubeNext(cur, dst)
		if !c.Has(cur) {
			ok = false
			break
		}
		path = append(path, cur)
	}
	if ok {
		return path
	}
	return c.bfs(src, dst)
}

func (c *Cube) bfs(src, dst Label) []Label {
	prev := make([]Label, len(c.present))
	seen := make([]bool, len(c.present))
	seen[src] = true
	frontier := []Label{src}
	for len(frontier) > 0 {
		var next []Label
		for _, u := range frontier {
			for i := 0; i < c.dim; i++ {
				v := u.Flip(i)
				if !c.Has(v) || seen[v] {
					continue
				}
				seen[v] = true
				prev[v] = u
				if v == dst {
					return reconstruct(prev, src, dst)
				}
				next = append(next, v)
			}
		}
		frontier = next
	}
	return nil
}

func reconstruct(prev []Label, src, dst Label) []Label {
	var rev []Label
	for cur := dst; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == src {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Distance returns the length in hops of the shortest present path
// between src and dst, or -1 if disconnected.
func (c *Cube) Distance(src, dst Label) int {
	p := c.Route(src, dst)
	if p == nil {
		return -1
	}
	return len(p) - 1
}

// DisjointPaths returns up to n node-disjoint paths (sharing only the
// endpoints) between src and dst in the complete n-cube, the classic
// construction behind the paper's claim that "the hypercube offers n
// node disjoint paths between each pair of nodes, therefore it can
// sustain up to n-1 node failures".
//
// Construction: let D = {dimensions where src and dst differ}, |D| = h.
// For j = 0..h-1, path j corrects the dimensions of D in rotated order
// starting at the j-th — these h paths have length h and are internally
// disjoint. For each dimension d outside D, one more path of length h+2
// goes src -> src^d -> (correct D in order) -> dst^d -> dst.
func DisjointPaths(src, dst Label, dim int) [][]Label {
	if src == dst {
		return [][]Label{{src}}
	}
	var diff, same []int
	for i := 0; i < dim; i++ {
		if src.Bit(i) != dst.Bit(i) {
			diff = append(diff, i)
		} else {
			same = append(same, i)
		}
	}
	h := len(diff)
	paths := make([][]Label, 0, dim)
	for j := 0; j < h; j++ {
		path := []Label{src}
		cur := src
		for k := 0; k < h; k++ {
			cur = cur.Flip(diff[(j+k)%h])
			path = append(path, cur)
		}
		paths = append(paths, path)
	}
	for _, d := range same {
		path := []Label{src, src.Flip(d)}
		cur := src.Flip(d)
		for k := 0; k < h; k++ {
			cur = cur.Flip(diff[k])
			path = append(path, cur)
		}
		path = append(path, dst)
		paths = append(paths, path)
	}
	return paths
}

// AvailablePaths counts how many of the canonical disjoint paths between
// src and dst are fully present in the incomplete cube — the immediate
// "multiple candidate logical routes become available" quantity of the
// paper's availability argument.
func (c *Cube) AvailablePaths(src, dst Label) int {
	if !c.Has(src) || !c.Has(dst) {
		return 0
	}
	n := 0
	for _, path := range DisjointPaths(src, dst, c.dim) {
		ok := true
		for _, l := range path {
			if !c.Has(l) {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	return n
}

// Connected reports whether all present nodes form one connected
// component.
func (c *Cube) Connected() bool {
	if c.count == 0 {
		return true
	}
	var start Label
	for l, ok := range c.present {
		if ok {
			start = Label(l)
			break
		}
	}
	seen := make([]bool, len(c.present))
	seen[start] = true
	reached := 1
	stack := []Label{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i := 0; i < c.dim; i++ {
			v := u.Flip(i)
			if c.Has(v) && !seen[v] {
				seen[v] = true
				reached++
				stack = append(stack, v)
			}
		}
	}
	return reached == c.count
}

// Diameter returns the maximum over present pairs of shortest present
// path length, or -1 if the cube is disconnected or empty. In a complete
// cube this equals the dimension — the paper's small-diameter property.
func (c *Cube) Diameter() int {
	labels := c.Labels()
	if len(labels) == 0 {
		return -1
	}
	max := 0
	for _, src := range labels {
		dist := c.bfsAll(src)
		for _, l := range labels {
			d := dist[l]
			if d < 0 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

func (c *Cube) bfsAll(src Label) []int {
	dist := make([]int, len(c.present))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []Label{src}
	for len(frontier) > 0 {
		var next []Label
		for _, u := range frontier {
			for i := 0; i < c.dim; i++ {
				v := u.Flip(i)
				if c.Has(v) && dist[v] < 0 {
					dist[v] = dist[u] + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// MulticastTree computes a multicast tree from root covering every
// present destination, as parent pointers (tree[l] = parent of l; the
// root maps to itself). It uses the greedy dimension-partition algorithm
// standard in hypercube multicast — at each tree node the remaining
// destinations are partitioned by their e-cube first hop — falling back
// to BFS shortest paths for destinations whose e-cube branch is blocked
// by absent nodes. Destinations absent from the cube are skipped and
// returned in missed.
func (c *Cube) MulticastTree(root Label, dests []Label) (tree map[Label]Label, missed []Label) {
	tree = map[Label]Label{root: root}
	if !c.Has(root) {
		return tree, append(missed, dests...)
	}
	for _, d := range dests {
		if !c.Has(d) {
			missed = append(missed, d)
			continue
		}
		if _, ok := tree[d]; ok {
			continue
		}
		// Greedy: walk the e-cube path from the destination backwards to
		// the nearest node already in the tree; fall back to BFS when a
		// hop is missing.
		path := c.pathToTree(root, d, tree)
		if path == nil {
			missed = append(missed, d)
			continue
		}
		for i := 1; i < len(path); i++ {
			if _, ok := tree[path[i]]; !ok {
				tree[path[i]] = path[i-1]
			}
		}
	}
	return tree, missed
}

// pathToTree returns a present path from some node already in tree to d
// (inclusive), preferring the e-cube path from root.
func (c *Cube) pathToTree(root, d Label, tree map[Label]Label) []Label {
	// Try the pure e-cube path root->d; it naturally shares prefixes
	// with previously added destinations, which is what makes the greedy
	// tree compact.
	path := []Label{root}
	ok := true
	for cur := root; cur != d; {
		cur = ECubeNext(cur, d)
		if !c.Has(cur) {
			ok = false
			break
		}
		path = append(path, cur)
	}
	if ok {
		// Trim the prefix already in the tree: keep from the last
		// in-tree node onward.
		last := 0
		for i, l := range path {
			if _, in := tree[l]; in {
				last = i
			}
		}
		return path[last:]
	}
	// Fault fallback: BFS from d to the nearest in-tree node.
	return c.bfsToSet(d, tree)
}

func (c *Cube) bfsToSet(d Label, tree map[Label]Label) []Label {
	prev := make([]Label, len(c.present))
	seen := make([]bool, len(c.present))
	seen[d] = true
	frontier := []Label{d}
	for len(frontier) > 0 {
		var next []Label
		for _, u := range frontier {
			for i := 0; i < c.dim; i++ {
				v := u.Flip(i)
				if !c.Has(v) || seen[v] {
					continue
				}
				seen[v] = true
				prev[v] = u
				if _, in := tree[v]; in {
					// Walk back v -> ... -> d; the path we return runs
					// tree-node-first.
					path := []Label{v}
					for cur := v; cur != d; {
						cur = prev[cur]
						path = append(path, cur)
					}
					// prev points toward d already; path built v..d via
					// prev links is correct order.
					return path
				}
				next = append(next, v)
			}
		}
		frontier = next
	}
	return nil
}

// TreeEdges converts a parent-pointer tree to a child adjacency list,
// for traversal during packet forwarding.
func TreeEdges(tree map[Label]Label) map[Label][]Label {
	out := make(map[Label][]Label, len(tree))
	for child, parent := range tree {
		if child != parent {
			out[parent] = append(out[parent], child)
		}
	}
	return out
}

// SubcubePartition splits the k+1-dimensional cube's label space into
// its two k-dimensional subcubes along the given dimension, returning
// the present labels with bit d = 0 and bit d = 1 respectively. This is
// the symmetry property the paper highlights ("any (k+1)-dimensional
// subcube ... consists of two k-dimensional subcubes").
func (c *Cube) SubcubePartition(d int) (zero, one []Label) {
	for _, l := range c.Labels() {
		if l.Bit(d) == 0 {
			zero = append(zero, l)
		} else {
			one = append(one, l)
		}
	}
	return zero, one
}
