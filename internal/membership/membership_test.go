package membership

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/logicalid"
	"repro/internal/mobility"
	"repro/internal/network"
	"repro/internal/radio"
	"repro/internal/vcgrid"
	"repro/internal/xrand"
)

// testbed: 8x8 VC grid, four 4-D hypercubes, a CH-capable node at every
// VCC, plus ordinary member nodes added by addMember.
type testbed struct {
	sim    *des.Simulator
	net    *network.Network
	cm     *cluster.Manager
	scheme *logicalid.Scheme
	bb     *core.Backbone
	ms     *Service
	grid   *vcgrid.Grid
}

func newTestbed(t *testing.T, cfg Config) *testbed {
	t.Helper()
	tb := &testbed{}
	tb.sim = des.New()
	arena := geom.RectWH(0, 0, 2000, 2000)
	tb.net = network.New(tb.sim, arena, xrand.New(11))
	tb.grid = vcgrid.New(arena, 250)
	for i := 0; i < tb.grid.Count(); i++ {
		tb.net.AddNode(&mobility.Static{P: tb.grid.Center(tb.grid.FromIndex(i))}, radio.DefaultCH, nil, true)
	}
	mux := network.Bind(tb.net)
	tb.cm = cluster.NewManager(tb.net, tb.grid, cluster.DefaultConfig())
	var err error
	tb.scheme, err = logicalid.New(tb.grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := core.DefaultConfig()
	bcfg.RouteTTL = 1000
	tb.bb = core.New(tb.net, mux, tb.cm, tb.scheme, bcfg)
	tb.ms = New(tb.bb, cfg)
	tb.cm.Elect()
	// Re-bind late so member nodes added after Bind still get handlers:
	// tests call rebind after adding members.
	return tb
}

// addMember drops an ordinary (non-CH-capable) node into the given VC,
// offset slightly from the VCC.
func (tb *testbed) addMember(vcIdx int, dx, dy float64) *network.Node {
	c := tb.grid.Center(tb.grid.FromIndex(vcIdx))
	n := tb.net.AddNode(&mobility.Static{P: geom.Pt(c.X+dx, c.Y+dy)}, radio.DefaultMN, nil, false)
	return n
}

func (tb *testbed) rebind() {
	mux := network.Bind(tb.net)
	// Re-attach protocol layers to the fresh mux.
	bcfg := core.DefaultConfig()
	bcfg.RouteTTL = 1000
	tb.bb = core.New(tb.net, mux, tb.cm, tb.scheme, bcfg)
	cfg := tb.ms.cfg
	tb.ms = New(tb.bb, cfg)
	tb.cm.Elect()
}

// drain runs the simulator until pending deliveries settle.
func (tb *testbed) drain() {
	tb.sim.RunUntil(tb.sim.Now() + 2)
}

func slotIdx(tb *testbed, cx, cy int) logicalid.CHID {
	return logicalid.CHID(tb.grid.Index(vcgrid.VC{CX: cx, CY: cy}))
}

func TestJoinLeaveGroupsOf(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	tb.ms.Join(3, 7)
	tb.ms.Join(3, 9)
	tb.ms.Join(3, 7) // idempotent
	gs := tb.ms.GroupsOf(3)
	if len(gs) != 2 || gs[0] != 7 || gs[1] != 9 {
		t.Fatalf("groups %v", gs)
	}
	tb.ms.Leave(3, 7)
	if gs := tb.ms.GroupsOf(3); len(gs) != 1 || gs[0] != 9 {
		t.Fatalf("after leave %v", gs)
	}
}

func TestLocalRoundBuildsMNTSummary(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	m1 := tb.addMember(0, 30, 0)
	m2 := tb.addMember(0, -30, 10)
	tb.rebind()
	tb.ms.Join(m1.ID, 5)
	tb.ms.Join(m2.ID, 5)
	tb.ms.Join(m2.ID, 6)
	tb.ms.LocalRound()
	tb.drain()
	sum := tb.ms.MNTSummary(slotIdx(tb, 0, 0))
	if sum[5] != 2 || sum[6] != 1 {
		t.Fatalf("MNT summary %v want {5:2, 6:1}", sum)
	}
	members := tb.ms.LocalMembers(slotIdx(tb, 0, 0), 5)
	if len(members) != 2 {
		t.Fatalf("local members %v", members)
	}
}

func TestCHSelfMembershipNeedsNoRadio(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	ch := tb.cm.CHOf(vcgrid.VC{CX: 2, CY: 2})
	tb.ms.Join(ch, 4)
	tb.net.ResetTraffic()
	tb.ms.LocalRound()
	tb.drain()
	if got := tb.net.Stats().KindTx[LocalKind]; got != 0 {
		t.Fatalf("CH self-report transmitted %d packets", got)
	}
	if sum := tb.ms.MNTSummary(slotIdx(tb, 2, 2)); sum[4] != 1 {
		t.Fatalf("self membership missing: %v", sum)
	}
}

func TestLeavePropagatesOnNextRound(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	m := tb.addMember(0, 30, 0)
	tb.rebind()
	tb.ms.Join(m.ID, 5)
	tb.ms.LocalRound()
	tb.drain()
	if tb.ms.MNTSummary(slotIdx(tb, 0, 0))[5] != 1 {
		t.Fatal("join not recorded")
	}
	tb.ms.Leave(m.ID, 5)
	tb.ms.LocalRound()
	tb.drain()
	if got := tb.ms.MNTSummary(slotIdx(tb, 0, 0))[5]; got != 0 {
		t.Fatalf("leave not propagated: count %d", got)
	}
}

func TestMNTFloodStaysInsideHypercube(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	m := tb.addMember(0, 30, 0) // VC (0,0), hypercube 0
	tb.rebind()
	tb.ms.Join(m.ID, 5)
	tb.ms.LocalRound()
	tb.drain()
	tb.ms.MNTRound()
	tb.sim.RunUntil(tb.sim.Now() + 5)
	// Every CH of hypercube 0 sees the group in its HT summary.
	for _, vc := range tb.scheme.BlockVCs(0) {
		slot := logicalid.CHID(tb.grid.Index(vc))
		if tb.ms.HTSummary(slot)[5] != 1 {
			t.Fatalf("slot %d (cube 0) missing group in HT summary", slot)
		}
	}
	// A CH of hypercube 3 must not have absorbed the MNT flood.
	farSlot := slotIdx(tb, 7, 7)
	if got := tb.ms.HTSummary(farSlot)[5]; got != 0 {
		t.Fatalf("MNT flood leaked to another hypercube: count %d", got)
	}
}

func TestExactlyOneDesignatedBroadcasterPerCube(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	m := tb.addMember(0, 30, 0)
	m2 := tb.addMember(9, 20, 0) // VC (1,1), same cube
	tb.rebind()
	tb.ms.Join(m.ID, 5)
	tb.ms.Join(m2.ID, 5)
	tb.ms.LocalRound()
	tb.drain()
	tb.ms.MNTRound()
	tb.sim.RunUntil(tb.sim.Now() + 5)
	designated := 0
	for _, vc := range tb.scheme.BlockVCs(0) {
		if tb.ms.Designated(logicalid.CHID(tb.grid.Index(vc))) {
			designated++
		}
	}
	if designated != 1 {
		t.Fatalf("%d designated broadcasters in cube 0 want exactly 1", designated)
	}
}

func TestHTBroadcastReachesWholeNetwork(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	m := tb.addMember(0, 30, 0) // group member in hypercube 0
	tb.rebind()
	tb.ms.Join(m.ID, 5)
	tb.ms.LocalRound()
	tb.drain()
	tb.ms.MNTRound()
	tb.sim.RunUntil(tb.sim.Now() + 5)
	tb.ms.HTRound()
	tb.sim.RunUntil(tb.sim.Now() + 10)
	// Every CH in the network should now attribute group 5 to cube 0.
	for i := 0; i < tb.grid.Count(); i++ {
		hids := tb.ms.MTSummary(logicalid.CHID(i), 5)
		if !hids[0] {
			t.Fatalf("slot %d MT view missing group 5 in cube 0: %v", i, hids)
		}
		if len(hids) != 1 {
			t.Fatalf("slot %d sees group 5 in %d cubes want 1", i, len(hids))
		}
	}
	if tb.ms.HTBroadcasts == 0 {
		t.Fatal("no HT broadcast counted")
	}
}

func TestCubeMembers(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	mA := tb.addMember(0, 30, 0) // VC (0,0) cube 0
	mB := tb.addMember(9, 20, 0) // VC (1,1) cube 0
	mC := tb.addMember(4, 20, 0) // VC (4,0) cube 1
	tb.rebind()
	for _, m := range []*network.Node{mA, mB, mC} {
		tb.ms.Join(m.ID, 5)
	}
	tb.ms.LocalRound()
	tb.drain()
	tb.ms.MNTRound()
	tb.sim.RunUntil(tb.sim.Now() + 5)
	got := tb.ms.CubeMembers(slotIdx(tb, 0, 0), 5)
	if len(got) != 2 {
		t.Fatalf("cube members %v want 2 slots", got)
	}
	for _, s := range got {
		if tb.scheme.CHIDToPlace(s).HID != 0 {
			t.Fatalf("cube member %d outside cube 0", s)
		}
	}
}

func TestMTViewClearsStaleHypercubes(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	m := tb.addMember(0, 30, 0)
	tb.rebind()
	tb.ms.Join(m.ID, 5)
	tb.ms.LocalRound()
	tb.drain()
	tb.ms.MNTRound()
	tb.sim.RunUntil(tb.sim.Now() + 5)
	tb.ms.HTRound()
	tb.sim.RunUntil(tb.sim.Now() + 10)
	if !tb.ms.MTSummary(slotIdx(tb, 7, 7), 5)[0] {
		t.Fatal("setup: group should be visible network-wide")
	}
	// The member leaves; after fresh Local/MNT/HT rounds the MT views
	// must drop the group.
	tb.ms.Leave(m.ID, 5)
	tb.ms.LocalRound()
	tb.drain()
	tb.ms.MNTRound()
	tb.sim.RunUntil(tb.sim.Now() + 5)
	tb.ms.HTRound()
	tb.sim.RunUntil(tb.sim.Now() + 10)
	if hids := tb.ms.MTSummary(slotIdx(tb, 7, 7), 5); len(hids) != 0 {
		t.Fatalf("stale MT view: %v", hids)
	}
}

func TestMembershipTrafficIsControl(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	m := tb.addMember(0, 30, 0)
	tb.rebind()
	tb.ms.Join(m.ID, 5)
	tb.net.ResetTraffic()
	tb.ms.LocalRound()
	tb.drain()
	tb.ms.MNTRound()
	tb.sim.RunUntil(tb.sim.Now() + 5)
	st := tb.net.Stats()
	if st.DataBytes != 0 {
		t.Fatalf("membership counted as data: %d", st.DataBytes)
	}
	if st.KindTx[core.BeaconKind] != 0 {
		t.Fatal("unexpected beacon traffic in this test")
	}
	if st.ControlBytes == 0 {
		t.Fatal("no control traffic accounted")
	}
}

func TestStartStopTickers(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	m := tb.addMember(0, 30, 0)
	tb.rebind()
	tb.ms.Join(m.ID, 5)
	tb.ms.Start()
	tb.sim.SetHorizon(20)
	tb.sim.Run()
	tb.ms.Stop()
	// The periodic machinery alone should have propagated membership
	// network-wide: HT period 8 fires at t=8 and t=16.
	if got := tb.ms.HTGroupsKnown(slotIdx(tb, 7, 7), 5); got != 1 {
		t.Fatalf("MT coverage %d want 1", got)
	}
}

func TestEmptyMembershipSendsNothing(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	tb.net.ResetTraffic()
	tb.ms.LocalRound()
	tb.drain()
	if got := tb.net.Stats().KindTx[LocalKind]; got != 0 {
		t.Fatalf("nodes with no groups sent %d local reports", got)
	}
}
