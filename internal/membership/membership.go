// Package membership implements the paper's Figure 5 algorithm:
// summary-based membership update across the three tiers.
//
//	Local-Membership — which groups each mobile node has joined; sent
//	    periodically from each MN to its CH.
//	MNT-Summary — the CH's aggregation over its cluster members; sent
//	    periodically to all the CHs within its logical hypercube
//	    (realized as a scoped flood over intra-hypercube logical links).
//	HT-Summary — each CH's aggregation over the MNT-Summaries of its
//	    hypercube; one *designated* CH per hypercube broadcasts it to all
//	    CHs in the whole network. Designation needs no coordination: each
//	    CH applies the paper's criterion — the largest total number of
//	    group members held by itself and its 1-logical-hop neighbor CHs
//	    — to its own collected summaries and self-selects on a tie-break
//	    by lowest CHID.
//	MT-Summary — each CH's map from group to the set of hypercubes
//	    containing members, consumed by the multicast routing algorithm.
//
// Timeouts follow the paper's observation that "the timeout interval for
// broadcasting HT-Summary messages can be set much more larger than that
// for sending MNT-Summary or Local-Membership messages".
package membership

import (
	"math/bits"
	"sort"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/logicalid"
	"repro/internal/network"
	"repro/internal/trace"
	"repro/internal/vcgrid"
)

// Group identifies a multicast group.
type Group int

// Packet kinds of the membership plane.
const (
	LocalKind = "local-membership"
	MNTKind   = "mnt-summary"
	HTKind    = "ht-summary"
)

// Config parameterizes the membership plane.
type Config struct {
	// LocalPeriod is the MN -> CH Local-Membership interval.
	LocalPeriod des.Duration
	// MNTPeriod is the CH -> hypercube MNT-Summary interval.
	MNTPeriod des.Duration
	// HTPeriod is the designated-CH network-wide HT-Summary interval.
	HTPeriod des.Duration
	// LocalTTL expires a member's report at its CH when not refreshed —
	// covering members that move to another cluster or die silently.
	LocalTTL des.Duration
	// Header and GroupEntry size the messages in bytes.
	Header, GroupEntry int
	// Designation selects the HT-broadcaster criterion (§4.2 discusses
	// the alternatives); see the Designate* constants.
	Designation DesignationPolicy
	// MultiHome reports Local-Membership to *every* covering cluster
	// (the paper's §3 overlap: "an MN within the overlapped regions can
	// be a cluster member of two or multiple clusters at the same time
	// for more reliable communications"), at proportionally higher
	// report cost. Off, a node reports only to its home VC's CH.
	MultiHome bool
}

// DesignationPolicy selects which CH self-designates as its hypercube's
// HT-Summary broadcaster.
type DesignationPolicy int

const (
	// DesignateSelfPlusNeighbors is the paper's preferred criterion:
	// the CH whose own plus 1-logical-hop neighbors' total group
	// membership is largest.
	DesignateSelfPlusNeighbors DesignationPolicy = iota
	// DesignateSelf uses only the CH's own membership count (the
	// paper's simpler alternative).
	DesignateSelf
	// DesignateFixed always picks the lowest CHID with a CH — the
	// "always designate the same CH" strawman the paper rejects as a
	// bottleneck/reliability risk.
	DesignateFixed
)

// DefaultConfig uses a 1:2:8 cadence, HT slowest per the paper.
func DefaultConfig() Config {
	return Config{LocalPeriod: 1, MNTPeriod: 2, HTPeriod: 8, LocalTTL: 2.5, Header: 12, GroupEntry: 6}
}

// noOrigin marks an empty lane in the dense per-origin views.
const noOrigin logicalid.CHID = -1

// seqLane is one dense flood-dedup entry: the highest sequence seen
// from the origin occupying the lane. A different origin hashing to the
// same lane (a CH role that moved cube mid-flight, or a designation
// change) evicts the occupant to a spill map, so the pair reproduces
// exact per-origin map semantics at array-index cost on the hot path.
type seqLane struct {
	origin logicalid.CHID
	seq    uint64
}

// seenSeq returns the highest sequence recorded for origin (0 when
// never seen), checking the lane first and the spill map otherwise.
func seenSeq(lanes []seqLane, idx int, origin logicalid.CHID, spill map[logicalid.CHID]uint64) uint64 {
	if l := &lanes[idx]; l.origin == origin {
		return l.seq
	}
	return spill[origin]
}

// recordSeq stores seq for origin in its lane, moving a different
// occupant's entry to the spill map first so no origin's history is
// lost, and dropping origin's own stale spill entry so every origin
// lives in exactly one place across lanes and spill (the same
// invariant setMNT keeps for the MNT views).
func recordSeq(lanes []seqLane, idx int, origin logicalid.CHID, seq uint64, spill *map[logicalid.CHID]uint64) {
	l := &lanes[idx]
	if l.origin != origin {
		if l.origin != noOrigin {
			if *spill == nil {
				*spill = make(map[logicalid.CHID]uint64)
			}
			(*spill)[l.origin] = l.seq
		}
		if *spill != nil {
			delete(*spill, origin)
		}
	}
	l.origin, l.seq = origin, seq
}

// hidSet is a bitset over hypercube IDs — the MT view's "which cubes
// have members" set, stored densely so the per-reception HT merge is a
// couple of word operations instead of nested map traffic.
type hidSet struct {
	bits []uint64
	n    int
}

func newHidSet(numHID int) *hidSet {
	return &hidSet{bits: make([]uint64, (numHID+63)/64)}
}

func (s *hidSet) has(h logicalid.HID) bool {
	i := int(h)
	w := i >> 6
	return w >= 0 && w < len(s.bits) && s.bits[w]&(1<<uint(i&63)) != 0
}

func (s *hidSet) add(h logicalid.HID) {
	if s.has(h) {
		return
	}
	// HIDs are always within the numHID the set was sized for (they
	// come from internal summary payloads); an out-of-range index is a
	// mapping bug and panics.
	i := int(h)
	s.bits[i>>6] |= 1 << uint(i&63)
	s.n++
}

func (s *hidSet) remove(h logicalid.HID) {
	if !s.has(h) {
		return
	}
	i := int(h)
	s.bits[i>>6] &^= 1 << uint(i&63)
	s.n--
}

// hids returns the member HIDs in ascending order.
func (s *hidSet) hids() []logicalid.HID {
	out := make([]logicalid.HID, 0, s.n)
	for w, word := range s.bits {
		for ; word != 0; word &= word - 1 {
			out = append(out, logicalid.HID(w*64+bits.TrailingZeros64(word)))
		}
	}
	return out
}

// slotState is the membership view accumulated at one CH slot. The MNT
// and dedup views are dense lanes indexed by the origin's in-cube label
// (MNT) or hypercube (HT) with spill maps for lane collisions; the MT
// view is a per-group hypercube bitset. All of it is behaviorally
// identical to the map-of-maps layout it replaced — the dense layout
// exists because onMNT/onHT run once per flood reception, which at 10k
// nodes is the simulator's hottest protocol-plane path.
type slotState struct {
	// hid is the slot's own hypercube, fixed by geometry.
	hid logicalid.HID

	// localView: group -> member nodes of this cluster with the time
	// their report was last refreshed (from Local-Membership messages).
	localView map[Group]map[network.NodeID]des.Time

	// mnt: origin label -> that origin's group counts, with mntOrigin
	// guarding each lane; cross-cube leftovers spill to mntSpill. The
	// invariant is that every origin appears exactly once across lanes
	// and spill, so iteration never double-counts.
	mnt       []map[Group]int
	mntOrigin []logicalid.CHID
	mntSpill  map[logicalid.CHID]map[Group]int

	// mtView: group -> hypercubes known to contain members (from
	// HT-Summary broadcasts plus own hypercube).
	mtView map[Group]*hidSet

	// Flood dedup: seenMNT lanes by origin label, seenHT lanes by the
	// origin's hypercube (one designated broadcaster per cube at a
	// time).
	seenMNT      []seqLane
	seenHT       []seqLane
	seenMNTSpill map[logicalid.CHID]uint64
	seenHTSpill  map[logicalid.CHID]uint64
}

func newSlotState(hid logicalid.HID, labels, numHID int) *slotState {
	st := &slotState{
		hid:       hid,
		localView: make(map[Group]map[network.NodeID]des.Time),
		mnt:       make([]map[Group]int, labels),
		mntOrigin: make([]logicalid.CHID, labels),
		mtView:    make(map[Group]*hidSet),
		seenMNT:   make([]seqLane, labels),
		seenHT:    make([]seqLane, numHID),
	}
	for i := range st.mntOrigin {
		st.mntOrigin[i] = noOrigin
	}
	for i := range st.seenMNT {
		st.seenMNT[i].origin = noOrigin
	}
	for i := range st.seenHT {
		st.seenHT[i].origin = noOrigin
	}
	return st
}

// summaryMsg is the wire form of MNT- and HT-Summary floods.
type summaryMsg struct {
	Origin logicalid.CHID
	HID    logicalid.HID
	Seq    uint64
	Groups map[Group]int
}

// localMsg is the wire form of Local-Membership reports.
type localMsg struct {
	Member network.NodeID
	Groups []Group
}

// Service runs the membership plane over a backbone.
type Service struct {
	bb  *core.Backbone
	cfg Config
	tr  trace.Tracer
	// trOn gates the per-merge trace calls: formatting arguments box
	// into an interface slice even when the tracer is Nop, and the MT
	// merge runs once per received summary.
	trOn bool

	// Member-side state is sparse: only nodes that have joined a group
	// (or owe one final empty report after leaving their last one) carry
	// an entry, and active keeps their IDs sorted ascending so
	// LocalRound visits them in exactly the order the old dense
	// every-node scan did. Idle nodes in a mega-world cost nothing here.
	members map[network.NodeID]*memberState
	active  []network.NodeID // sorted keys of members
	slots   []*slotState     // by CH slot index (grid.Count() lanes)
	labels  int              // 2^dim, the in-cube label space
	numHID  int              // hypercube count of the mesh tier
	seq     uint64

	// version counts mutations of the summary views trees are computed
	// from (the MNT and MT views); see SummaryVersion.
	version uint64

	tickers []*des.Ticker

	// roundSlots is sortedHeadSlots' reusable scratch.
	roundSlots []logicalid.CHID

	// HTBroadcasts counts designated-CH broadcasts for overhead
	// experiments.
	HTBroadcasts uint64
}

// New wires a membership service onto the backbone's logical transport.
func New(bb *core.Backbone, cfg Config) *Service {
	if cfg.LocalPeriod <= 0 {
		cfg = DefaultConfig()
	}
	s := &Service{
		bb:      bb,
		cfg:     cfg,
		tr:      trace.Nop,
		members: make(map[network.NodeID]*memberState),
		slots:   make([]*slotState, bb.Scheme().Grid().Count()),
		labels:  1 << uint(bb.Scheme().Dim()),
		numHID:  bb.Scheme().NumHypercubes(),
	}
	bb.HandleInner(LocalKind, s.onLocal)
	bb.HandleInner(MNTKind, s.onMNT)
	bb.HandleInner(HTKind, s.onHT)
	return s
}

// SetTracer installs a tracer; nil resets to no-op.
func (s *Service) SetTracer(t trace.Tracer) {
	if t == nil {
		t = trace.Nop
	}
	s.tr = t
	s.trOn = t != trace.Nop
}

// memberState is the member-side record of one node that currently
// belongs to a group, or still owes its final empty report.
type memberState struct {
	joined   map[Group]bool
	reported bool // sent a non-empty report last round
}

// state returns the node's member record, materializing it (and
// splicing the ID into the sorted active list) on first touch.
func (s *Service) state(id network.NodeID) *memberState {
	st := s.members[id]
	if st == nil {
		st = &memberState{joined: make(map[Group]bool)}
		s.members[id] = st
		i := sort.Search(len(s.active), func(i int) bool { return s.active[i] >= id })
		s.active = append(s.active, 0)
		copy(s.active[i+1:], s.active[i:])
		s.active[i] = id
	}
	return st
}

// Join records that the node joined the group (Figure 5 step 1); the
// change propagates on the next Local-Membership round.
func (s *Service) Join(id network.NodeID, g Group) {
	s.state(id).joined[g] = true
}

// Leave records that the node left the group.
func (s *Service) Leave(id network.NodeID, g Group) {
	if st := s.members[id]; st != nil {
		delete(st.joined, g)
	}
}

// GroupsOf returns the groups the node has joined, sorted.
func (s *Service) GroupsOf(id network.NodeID) []Group {
	st := s.members[id]
	out := make([]Group, 0, len(st.joinedOrNil()))
	for g := range st.joinedOrNil() {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// joinedOrNil tolerates absent member records.
func (st *memberState) joinedOrNil() map[Group]bool {
	if st == nil {
		return nil
	}
	return st.joined
}

// Start schedules the three periodic rounds.
func (s *Service) Start() {
	sim := s.bb.Net().Sim()
	s.tickers = append(s.tickers,
		sim.Every(s.cfg.LocalPeriod, s.cfg.LocalPeriod, s.LocalRound),
		sim.Every(s.cfg.MNTPeriod, s.cfg.MNTPeriod, s.MNTRound),
		sim.Every(s.cfg.HTPeriod, s.cfg.HTPeriod, s.HTRound),
	)
}

// Stop cancels the periodic rounds.
func (s *Service) Stop() {
	for _, t := range s.tickers {
		t.Stop()
	}
	s.tickers = nil
}

func (s *Service) slot(c logicalid.CHID) *slotState {
	st := s.slots[c]
	if st == nil {
		st = newSlotState(s.bb.Scheme().CHIDToPlace(c).HID, s.labels, s.numHID)
		s.slots[c] = st
	}
	return st
}

// SummaryVersion counts mutations of the views multicast trees are
// computed from — the per-cube MNT views (CubeMembers' input) and the
// MT views (MTSummary's input). A tree memoized at one version is
// guaranteed to equal a fresh computation while the version holds,
// which is the membership half of the internal/route cache key.
func (s *Service) SummaryVersion() uint64 { return s.version }

// labelOf returns the dense lane index of an origin slot: its in-cube
// label (unique among the origins of any one hypercube).
func (s *Service) labelOf(origin logicalid.CHID) int {
	return int(s.bb.Scheme().CHIDToPlace(origin).HNID)
}

// mntOf returns origin's group counts in st, or nil when unknown.
func (s *Service) mntOf(st *slotState, origin logicalid.CHID) map[Group]int {
	idx := s.labelOf(origin)
	if st.mntOrigin[idx] == origin {
		return st.mnt[idx]
	}
	return st.mntSpill[origin]
}

// setMNT stores origin's group counts, bumping the summary version when
// the stored view actually changes.
func (s *Service) setMNT(st *slotState, origin logicalid.CHID, groups map[Group]int) {
	idx := s.labelOf(origin)
	switch cur := st.mntOrigin[idx]; cur {
	case origin:
		if !equalGroupCounts(st.mnt[idx], groups) {
			s.version++
		}
		st.mnt[idx] = groups
		return
	case noOrigin:
	default:
		// A different origin occupies the lane: move it to the spill map
		// so its view survives.
		if st.mntSpill == nil {
			st.mntSpill = make(map[logicalid.CHID]map[Group]int)
		}
		st.mntSpill[cur] = st.mnt[idx]
	}
	// Installing origin into the lane; drop any stale spill entry so the
	// lanes+spill iteration sees each origin exactly once.
	delete(st.mntSpill, origin)
	st.mntOrigin[idx], st.mnt[idx] = origin, groups
	s.version++
}

// rangeMNT calls f for every known origin's view (lanes then spill).
// Consumers re-derive order-sensitive outputs by sorting, as before.
func (st *slotState) rangeMNT(f func(origin logicalid.CHID, groups map[Group]int)) {
	for i, origin := range st.mntOrigin {
		if origin != noOrigin {
			f(origin, st.mnt[i])
		}
	}
	for origin, groups := range st.mntSpill {
		f(origin, groups)
	}
}

// equalGroupCounts reports whether two group-count views are identical.
func equalGroupCounts(a, b map[Group]int) bool {
	if len(a) != len(b) {
		return false
	}
	for g, c := range a {
		if b[g] != c {
			return false
		}
	}
	return true
}

// LocalRound is Figure 5 step 2: every member MN reports its
// Local-Membership to its cluster head.
func (s *Service) LocalRound() {
	net := s.bb.Net()
	cm := s.bb.Clusters()
	grid := s.bb.Scheme().Grid()
	// Visit only nodes carrying member state, in ascending ID order —
	// the same nodes, in the same order, the old dense every-node scan
	// reported after its skip filter.
	kept := s.active[:0]
	for _, id := range s.active {
		st := s.members[id]
		n := net.Node(id)
		if n == nil || !n.Up() {
			kept = append(kept, id)
			continue
		}
		// A node reports when it has memberships, plus one final empty
		// report right after leaving its last group so the CH forgets it
		// immediately; after that final report its record retires.
		if len(st.joined) == 0 && !st.reported {
			delete(s.members, id)
			continue
		}
		kept = append(kept, id)
		st.reported = len(st.joined) > 0
		pos := n.Fix().Pos
		vcs := []vcgrid.VC{grid.VCOf(pos)}
		if s.cfg.MultiHome {
			vcs = grid.Covering(pos)
		}
		groups := s.GroupsOf(n.ID)
		msg := &localMsg{Member: n.ID, Groups: groups}
		for _, vc := range vcs {
			ch := cm.CHOf(vc)
			if ch == network.NoNode {
				continue
			}
			if ch == n.ID {
				// The CH reports to itself without radio traffic.
				s.absorbLocal(logicalid.CHID(grid.Index(vc)), msg)
				continue
			}
			pkt := net.AcquirePacket()
			pkt.Kind = LocalKind
			pkt.Src, pkt.Dst = n.ID, ch
			pkt.Size, pkt.Control = s.cfg.Header+len(groups)*s.cfg.GroupEntry, true
			pkt.Born, pkt.UID = net.Sim().Now(), net.NextUID()
			pkt.Payload = msg
			s.bb.Geo().Send(n.ID, grid.Center(vc), ch, pkt)
			net.ReleasePacket(pkt)
		}
	}
	s.active = kept
}

func (s *Service) onLocal(n *network.Node, _ network.NodeID, pkt *network.Packet) {
	msg, ok := pkt.Payload.(*localMsg)
	if !ok {
		return
	}
	slot := s.bb.SlotOfNode(n.ID)
	if slot < 0 {
		return
	}
	s.absorbLocal(slot, msg)
}

func (s *Service) absorbLocal(slot logicalid.CHID, msg *localMsg) {
	st := s.slot(slot)
	now := s.bb.Net().Sim().Now()
	// Replace this member's memberships.
	for g, members := range st.localView {
		delete(members, msg.Member)
		if len(members) == 0 {
			delete(st.localView, g)
		}
	}
	for _, g := range msg.Groups {
		m, ok := st.localView[g]
		if !ok {
			m = make(map[network.NodeID]des.Time)
			st.localView[g] = m
		}
		m[msg.Member] = now
	}
}

// fresh reports whether a member's report is still within LocalTTL.
func (s *Service) fresh(seen des.Time) bool {
	if s.cfg.LocalTTL <= 0 {
		return true
	}
	return s.bb.Net().Sim().Now()-seen <= s.cfg.LocalTTL
}

// MNTSummary returns the CH slot's aggregated cluster membership:
// group -> member count (Figure 5 step 3's message body).
func (s *Service) MNTSummary(slot logicalid.CHID) map[Group]int {
	st := s.slot(slot)
	out := make(map[Group]int, len(st.localView))
	for g, members := range st.localView {
		n := 0
		for _, seen := range members {
			if s.fresh(seen) {
				n++
			}
		}
		if n > 0 {
			out[g] = n
		}
	}
	return out
}

// LocalMembers returns the nodes of the slot's cluster known to have
// joined the group — the delivery set of Figure 6 step 6.
func (s *Service) LocalMembers(slot logicalid.CHID, g Group) []network.NodeID {
	st := s.slot(slot)
	out := make([]network.NodeID, 0, len(st.localView[g]))
	for id, seen := range st.localView[g] {
		if s.fresh(seen) {
			out = append(out, id)
		}
	}
	return network.SortedIDs(out)
}

// MNTRound is Figure 5 step 3: every CH floods its MNT-Summary to all
// CHs within its hypercube.
func (s *Service) MNTRound() {
	scheme := s.bb.Scheme()
	for _, slot := range s.sortedHeadSlots() {
		ch := s.bb.CHNodeOf(slot)
		vc := scheme.Grid().FromIndex(int(slot))
		place := scheme.PlaceOf(vc)
		s.seq++
		msg := &summaryMsg{Origin: slot, HID: place.HID, Seq: s.seq, Groups: s.MNTSummary(slot)}
		// Record our own summary in our own view first.
		st := s.slot(slot)
		s.setMNT(st, slot, msg.Groups)
		recordSeq(st.seenMNT, s.labelOf(slot), slot, msg.Seq, &st.seenMNTSpill)
		s.floodMNT(slot, msg, ch)
	}
}

// sortedHeadSlots returns the CH slots currently heading clusters in
// slot order. Rounds iterate it instead of the Heads map so the
// transmission sequence (and with it every sender's loss-stream draw
// order) is identical across reruns.
func (s *Service) sortedHeadSlots() []logicalid.CHID {
	grid := s.bb.Scheme().Grid()
	s.roundSlots = s.roundSlots[:0]
	for vc := range s.bb.Clusters().Heads() {
		s.roundSlots = append(s.roundSlots, logicalid.CHID(grid.Index(vc)))
	}
	s.roundSlots = network.SortedIDs(s.roundSlots)
	return s.roundSlots
}

// floodMNT forwards an MNT summary to intra-hypercube logical neighbors
// that have not seen it (the sender cannot know, so it sends to all and
// receivers dedup — standard scoped flooding).
func (s *Service) floodMNT(from logicalid.CHID, msg *summaryMsg, ch network.NodeID) {
	scheme := s.bb.Scheme()
	net := s.bb.Net()
	size := s.cfg.Header + len(msg.Groups)*s.cfg.GroupEntry
	for _, nb := range s.bb.LogicalNeighbors(from) {
		if scheme.CHIDToPlace(nb).HID != msg.HID {
			continue // MNT summaries stay within the hypercube
		}
		pkt := net.AcquirePacket()
		pkt.Kind = MNTKind
		pkt.Src, pkt.Dst = ch, s.bb.CHNodeOf(nb)
		pkt.Size, pkt.Control = size, true
		pkt.Born, pkt.UID = net.Sim().Now(), net.NextUID()
		pkt.Payload = msg
		s.bb.SendLogical(from, nb, pkt)
		net.ReleasePacket(pkt)
	}
}

func (s *Service) onMNT(n *network.Node, _ network.NodeID, pkt *network.Packet) {
	msg, ok := pkt.Payload.(*summaryMsg)
	if !ok {
		return
	}
	slot := s.bb.SlotOfNode(n.ID)
	if slot < 0 {
		return
	}
	st := s.slot(slot)
	idx := s.labelOf(msg.Origin)
	if seenSeq(st.seenMNT, idx, msg.Origin, st.seenMNTSpill) >= msg.Seq {
		return // duplicate
	}
	recordSeq(st.seenMNT, idx, msg.Origin, msg.Seq, &st.seenMNTSpill)
	s.setMNT(st, msg.Origin, msg.Groups)
	s.floodMNT(slot, msg, n.ID) // continue the scoped flood
}

// HTSummary returns the slot's aggregation over its hypercube (Figure 5
// step 4's message body): group -> total member count in the hypercube.
func (s *Service) HTSummary(slot logicalid.CHID) map[Group]int {
	st := s.slot(slot)
	out := make(map[Group]int)
	st.rangeMNT(func(_ logicalid.CHID, groups map[Group]int) {
		for g, c := range groups {
			out[g] += c
		}
	})
	return out
}

// Designated reports whether the slot currently self-selects as its
// hypercube's HT broadcaster: the paper's criterion of the largest
// total membership over itself and its 1-logical-hop neighbor CHs,
// breaking ties by lowest CHID.
func (s *Service) Designated(slot logicalid.CHID) bool {
	scheme := s.bb.Scheme()
	st := s.slot(slot)
	myHID := st.hid
	if s.cfg.Designation == DesignateFixed {
		// Lowest occupied CHID of the hypercube always broadcasts.
		for _, vc := range scheme.BlockVCs(myHID) {
			c := logicalid.CHID(scheme.Grid().Index(vc))
			if s.bb.CHNodeOf(c) != network.NoNode {
				return c == slot
			}
		}
		return false
	}
	score := func(c logicalid.CHID) int {
		total := 0
		for _, cnt := range s.mntOf(st, c) {
			total += cnt
		}
		if s.cfg.Designation == DesignateSelf {
			return total
		}
		for _, nb := range s.bb.LogicalNeighbors(c) {
			if scheme.CHIDToPlace(nb).HID != myHID {
				continue
			}
			for _, cnt := range s.mntOf(st, nb) {
				total += cnt
			}
		}
		return total
	}
	mine := score(slot)
	designated := true
	st.rangeMNT(func(origin logicalid.CHID, _ map[Group]int) {
		if !designated || origin == slot || scheme.CHIDToPlace(origin).HID != myHID {
			return
		}
		if s.bb.CHNodeOf(origin) == network.NoNode {
			return
		}
		other := score(origin)
		if other > mine || (other == mine && origin < slot) {
			designated = false
		}
	})
	return designated
}

// HTRound is Figure 5 step 4: each CH summarizes its MNT view and, if
// designated, broadcasts the HT-Summary to all CHs in the network.
func (s *Service) HTRound() {
	scheme := s.bb.Scheme()
	for _, slot := range s.sortedHeadSlots() {
		ch := s.bb.CHNodeOf(slot)
		vc := scheme.Grid().FromIndex(int(slot))
		place := scheme.PlaceOf(vc)
		// Every CH folds its own hypercube into its MT view (step 5).
		summary := s.HTSummary(slot)
		s.recordMT(slot, place.HID, summary)
		if !s.Designated(slot) {
			continue
		}
		s.HTBroadcasts++
		s.seq++
		msg := &summaryMsg{Origin: slot, HID: place.HID, Seq: s.seq, Groups: summary}
		st := s.slot(slot)
		recordSeq(st.seenHT, int(place.HID), slot, msg.Seq, &st.seenHTSpill)
		s.floodHT(slot, msg, ch)
	}
}

// floodHT forwards an HT summary network-wide over logical links.
func (s *Service) floodHT(from logicalid.CHID, msg *summaryMsg, ch network.NodeID) {
	net := s.bb.Net()
	size := s.cfg.Header + len(msg.Groups)*s.cfg.GroupEntry
	for _, nb := range s.bb.LogicalNeighbors(from) {
		pkt := net.AcquirePacket()
		pkt.Kind = HTKind
		pkt.Src, pkt.Dst = ch, s.bb.CHNodeOf(nb)
		pkt.Size, pkt.Control = size, true
		pkt.Born, pkt.UID = net.Sim().Now(), net.NextUID()
		pkt.Payload = msg
		s.bb.SendLogical(from, nb, pkt)
		net.ReleasePacket(pkt)
	}
}

func (s *Service) onHT(n *network.Node, _ network.NodeID, pkt *network.Packet) {
	msg, ok := pkt.Payload.(*summaryMsg)
	if !ok {
		return
	}
	slot := s.bb.SlotOfNode(n.ID)
	if slot < 0 {
		return
	}
	st := s.slot(slot)
	idx := int(msg.HID)
	if seenSeq(st.seenHT, idx, msg.Origin, st.seenHTSpill) >= msg.Seq {
		return
	}
	recordSeq(st.seenHT, idx, msg.Origin, msg.Seq, &st.seenHTSpill)
	s.recordMT(slot, msg.HID, msg.Groups)
	s.floodHT(slot, msg, n.ID)
}

// recordMT merges an HT summary into a slot's MT view (Figure 5 step 5).
func (s *Service) recordMT(slot logicalid.CHID, hid logicalid.HID, groups map[Group]int) {
	st := s.slot(slot)
	changed := false
	// Clear stale claims of this hypercube first: a group that vanished
	// from hid must not linger in the MT view.
	for g, hids := range st.mtView {
		if hids.has(hid) {
			if _, still := groups[g]; !still {
				hids.remove(hid)
				changed = true
				if hids.n == 0 {
					delete(st.mtView, g)
				}
			}
		}
	}
	for g, cnt := range groups {
		if cnt <= 0 {
			continue
		}
		hids, ok := st.mtView[g]
		if !ok {
			hids = newHidSet(s.numHID)
			st.mtView[g] = hids
		}
		if !hids.has(hid) {
			hids.add(hid)
			changed = true
		}
	}
	if changed {
		s.version++
	}
	if s.trOn {
		s.tr.Eventf(trace.Membership, float64(s.bb.Net().Sim().Now()),
			"slot %d MT view merged summary of hypercube %d (%d groups)", slot, hid, len(groups))
	}
}

// MTSummary returns the hypercubes the slot believes contain members of
// the group — Figure 6's routing input. The map is a copy; tree
// construction uses MTSummaryHIDs instead, whose slot order feeds
// MulticastTree deterministically.
func (s *Service) MTSummary(slot logicalid.CHID, g Group) map[logicalid.HID]bool {
	out := make(map[logicalid.HID]bool)
	if hids := s.slot(slot).mtView[g]; hids != nil {
		for _, h := range hids.hids() {
			out[h] = true
		}
	}
	return out
}

// MTSummaryHIDs returns the same set as MTSummary as a slice in
// ascending HID order — the deterministic destination list handed to
// mesh-tier tree construction (greedy MulticastTree output depends on
// destination order, so order-sensitive consumers must never range the
// map form).
func (s *Service) MTSummaryHIDs(slot logicalid.CHID, g Group) []logicalid.HID {
	hids := s.slot(slot).mtView[g]
	if hids == nil {
		return nil
	}
	return hids.hids()
}

// CubeMembers returns the CH slots within the given slot's hypercube
// that, per this slot's collected MNT-Summaries, host members of the
// group — the destination set of the hypercube-tier multicast tree
// (Figure 6 step 4). The caller's own slot is included when it has
// local members.
func (s *Service) CubeMembers(slot logicalid.CHID, g Group) []logicalid.CHID {
	scheme := s.bb.Scheme()
	st := s.slot(slot)
	myHID := st.hid
	var out []logicalid.CHID
	st.rangeMNT(func(origin logicalid.CHID, groups map[Group]int) {
		if scheme.CHIDToPlace(origin).HID != myHID {
			return
		}
		if groups[g] > 0 {
			out = append(out, origin)
		}
	})
	return network.SortedIDs(out)
}

// GroupsAt returns the groups the slot's MT view knows anywhere in the
// network, sorted; useful for assertions and tooling.
func (s *Service) GroupsAt(slot logicalid.CHID) []Group {
	st := s.slot(slot)
	out := make([]Group, 0, len(st.mtView))
	for g := range st.mtView {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HTGroupsKnown returns how many hypercube slots the MT view of the
// given slot attributes to the group (coverage measure for convergence
// experiments).
func (s *Service) HTGroupsKnown(slot logicalid.CHID, g Group) int {
	hids := s.slot(slot).mtView[g]
	if hids == nil {
		return 0
	}
	return hids.n
}
