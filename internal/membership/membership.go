// Package membership implements the paper's Figure 5 algorithm:
// summary-based membership update across the three tiers.
//
//	Local-Membership — which groups each mobile node has joined; sent
//	    periodically from each MN to its CH.
//	MNT-Summary — the CH's aggregation over its cluster members; sent
//	    periodically to all the CHs within its logical hypercube
//	    (realized as a scoped flood over intra-hypercube logical links).
//	HT-Summary — each CH's aggregation over the MNT-Summaries of its
//	    hypercube; one *designated* CH per hypercube broadcasts it to all
//	    CHs in the whole network. Designation needs no coordination: each
//	    CH applies the paper's criterion — the largest total number of
//	    group members held by itself and its 1-logical-hop neighbor CHs
//	    — to its own collected summaries and self-selects on a tie-break
//	    by lowest CHID.
//	MT-Summary — each CH's map from group to the set of hypercubes
//	    containing members, consumed by the multicast routing algorithm.
//
// Timeouts follow the paper's observation that "the timeout interval for
// broadcasting HT-Summary messages can be set much more larger than that
// for sending MNT-Summary or Local-Membership messages".
package membership

import (
	"sort"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/logicalid"
	"repro/internal/network"
	"repro/internal/trace"
	"repro/internal/vcgrid"
)

// Group identifies a multicast group.
type Group int

// Packet kinds of the membership plane.
const (
	LocalKind = "local-membership"
	MNTKind   = "mnt-summary"
	HTKind    = "ht-summary"
)

// Config parameterizes the membership plane.
type Config struct {
	// LocalPeriod is the MN -> CH Local-Membership interval.
	LocalPeriod des.Duration
	// MNTPeriod is the CH -> hypercube MNT-Summary interval.
	MNTPeriod des.Duration
	// HTPeriod is the designated-CH network-wide HT-Summary interval.
	HTPeriod des.Duration
	// LocalTTL expires a member's report at its CH when not refreshed —
	// covering members that move to another cluster or die silently.
	LocalTTL des.Duration
	// Header and GroupEntry size the messages in bytes.
	Header, GroupEntry int
	// Designation selects the HT-broadcaster criterion (§4.2 discusses
	// the alternatives); see the Designate* constants.
	Designation DesignationPolicy
	// MultiHome reports Local-Membership to *every* covering cluster
	// (the paper's §3 overlap: "an MN within the overlapped regions can
	// be a cluster member of two or multiple clusters at the same time
	// for more reliable communications"), at proportionally higher
	// report cost. Off, a node reports only to its home VC's CH.
	MultiHome bool
}

// DesignationPolicy selects which CH self-designates as its hypercube's
// HT-Summary broadcaster.
type DesignationPolicy int

const (
	// DesignateSelfPlusNeighbors is the paper's preferred criterion:
	// the CH whose own plus 1-logical-hop neighbors' total group
	// membership is largest.
	DesignateSelfPlusNeighbors DesignationPolicy = iota
	// DesignateSelf uses only the CH's own membership count (the
	// paper's simpler alternative).
	DesignateSelf
	// DesignateFixed always picks the lowest CHID with a CH — the
	// "always designate the same CH" strawman the paper rejects as a
	// bottleneck/reliability risk.
	DesignateFixed
)

// DefaultConfig uses a 1:2:8 cadence, HT slowest per the paper.
func DefaultConfig() Config {
	return Config{LocalPeriod: 1, MNTPeriod: 2, HTPeriod: 8, LocalTTL: 2.5, Header: 12, GroupEntry: 6}
}

// slotState is the membership view accumulated at one CH slot.
type slotState struct {
	// localView: group -> member nodes of this cluster with the time
	// their report was last refreshed (from Local-Membership messages).
	localView map[Group]map[network.NodeID]des.Time
	// mntView: origin slot (same hypercube) -> that slot's group counts.
	mntView map[logicalid.CHID]map[Group]int
	// mtView: group -> hypercubes known to contain members (from
	// HT-Summary broadcasts plus own hypercube).
	mtView map[Group]map[logicalid.HID]bool
	// seq tracking for flood dedup: origin slot -> highest seq seen.
	seenMNT map[logicalid.CHID]uint64
	seenHT  map[logicalid.CHID]uint64
}

func newSlotState() *slotState {
	return &slotState{
		localView: make(map[Group]map[network.NodeID]des.Time),
		mntView:   make(map[logicalid.CHID]map[Group]int),
		mtView:    make(map[Group]map[logicalid.HID]bool),
		seenMNT:   make(map[logicalid.CHID]uint64),
		seenHT:    make(map[logicalid.CHID]uint64),
	}
}

// summaryMsg is the wire form of MNT- and HT-Summary floods.
type summaryMsg struct {
	Origin logicalid.CHID
	HID    logicalid.HID
	Seq    uint64
	Groups map[Group]int
}

// localMsg is the wire form of Local-Membership reports.
type localMsg struct {
	Member network.NodeID
	Groups []Group
}

// Service runs the membership plane over a backbone.
type Service struct {
	bb  *core.Backbone
	cfg Config
	tr  trace.Tracer
	// trOn gates the per-merge trace calls: formatting arguments box
	// into an interface slice even when the tracer is Nop, and the MT
	// merge runs once per received summary.
	trOn bool

	joined   []map[Group]bool // by node ID
	reported []bool           // nodes that sent a non-empty report last round
	slots    map[logicalid.CHID]*slotState
	seq      uint64

	tickers []*des.Ticker

	// roundSlots is sortedHeadSlots' reusable scratch.
	roundSlots []logicalid.CHID

	// HTBroadcasts counts designated-CH broadcasts for overhead
	// experiments.
	HTBroadcasts uint64
}

// New wires a membership service onto the backbone's logical transport.
func New(bb *core.Backbone, cfg Config) *Service {
	if cfg.LocalPeriod <= 0 {
		cfg = DefaultConfig()
	}
	s := &Service{
		bb:       bb,
		cfg:      cfg,
		tr:       trace.Nop,
		joined:   make([]map[Group]bool, bb.Net().Len()),
		reported: make([]bool, bb.Net().Len()),
		slots:    make(map[logicalid.CHID]*slotState),
	}
	bb.HandleInner(LocalKind, s.onLocal)
	bb.HandleInner(MNTKind, s.onMNT)
	bb.HandleInner(HTKind, s.onHT)
	return s
}

// SetTracer installs a tracer; nil resets to no-op.
func (s *Service) SetTracer(t trace.Tracer) {
	if t == nil {
		t = trace.Nop
	}
	s.tr = t
	s.trOn = t != trace.Nop
}

// grow ensures per-node state covers nodes added after construction.
func (s *Service) grow(id network.NodeID) {
	if int(id) >= len(s.joined) {
		s.joined = append(s.joined, make([]map[Group]bool, int(id)+1-len(s.joined))...)
	}
	if int(id) >= len(s.reported) {
		s.reported = append(s.reported, make([]bool, int(id)+1-len(s.reported))...)
	}
}

// Join records that the node joined the group (Figure 5 step 1); the
// change propagates on the next Local-Membership round.
func (s *Service) Join(id network.NodeID, g Group) {
	s.grow(id)
	if s.joined[id] == nil {
		s.joined[id] = make(map[Group]bool)
	}
	s.joined[id][g] = true
}

// Leave records that the node left the group.
func (s *Service) Leave(id network.NodeID, g Group) {
	s.grow(id)
	delete(s.joined[id], g)
}

// GroupsOf returns the groups the node has joined, sorted.
func (s *Service) GroupsOf(id network.NodeID) []Group {
	s.grow(id)
	out := make([]Group, 0, len(s.joined[id]))
	for g := range s.joined[id] {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Start schedules the three periodic rounds.
func (s *Service) Start() {
	sim := s.bb.Net().Sim()
	s.tickers = append(s.tickers,
		sim.Every(s.cfg.LocalPeriod, s.cfg.LocalPeriod, s.LocalRound),
		sim.Every(s.cfg.MNTPeriod, s.cfg.MNTPeriod, s.MNTRound),
		sim.Every(s.cfg.HTPeriod, s.cfg.HTPeriod, s.HTRound),
	)
}

// Stop cancels the periodic rounds.
func (s *Service) Stop() {
	for _, t := range s.tickers {
		t.Stop()
	}
	s.tickers = nil
}

func (s *Service) slot(c logicalid.CHID) *slotState {
	st, ok := s.slots[c]
	if !ok {
		st = newSlotState()
		s.slots[c] = st
	}
	return st
}

// LocalRound is Figure 5 step 2: every member MN reports its
// Local-Membership to its cluster head.
func (s *Service) LocalRound() {
	net := s.bb.Net()
	cm := s.bb.Clusters()
	grid := s.bb.Scheme().Grid()
	for _, n := range net.Nodes() {
		if !n.Up() {
			continue
		}
		s.grow(n.ID)
		// A node reports when it has memberships, plus one final empty
		// report right after leaving its last group so the CH forgets it
		// immediately.
		if len(s.joined[n.ID]) == 0 && !s.reported[n.ID] {
			continue
		}
		s.reported[n.ID] = len(s.joined[n.ID]) > 0
		pos := n.Fix().Pos
		vcs := []vcgrid.VC{grid.VCOf(pos)}
		if s.cfg.MultiHome {
			vcs = grid.Covering(pos)
		}
		groups := s.GroupsOf(n.ID)
		msg := &localMsg{Member: n.ID, Groups: groups}
		for _, vc := range vcs {
			ch := cm.CHOf(vc)
			if ch == network.NoNode {
				continue
			}
			if ch == n.ID {
				// The CH reports to itself without radio traffic.
				s.absorbLocal(logicalid.CHID(grid.Index(vc)), msg)
				continue
			}
			pkt := net.AcquirePacket()
			pkt.Kind = LocalKind
			pkt.Src, pkt.Dst = n.ID, ch
			pkt.Size, pkt.Control = s.cfg.Header+len(groups)*s.cfg.GroupEntry, true
			pkt.Born, pkt.UID = net.Sim().Now(), net.NextUID()
			pkt.Payload = msg
			s.bb.Geo().Send(n.ID, grid.Center(vc), ch, pkt)
			net.ReleasePacket(pkt)
		}
	}
}

func (s *Service) onLocal(n *network.Node, _ network.NodeID, pkt *network.Packet) {
	msg, ok := pkt.Payload.(*localMsg)
	if !ok {
		return
	}
	slot := s.bb.SlotOfNode(n.ID)
	if slot < 0 {
		return
	}
	s.absorbLocal(slot, msg)
}

func (s *Service) absorbLocal(slot logicalid.CHID, msg *localMsg) {
	st := s.slot(slot)
	now := s.bb.Net().Sim().Now()
	// Replace this member's memberships.
	for g, members := range st.localView {
		delete(members, msg.Member)
		if len(members) == 0 {
			delete(st.localView, g)
		}
	}
	for _, g := range msg.Groups {
		m, ok := st.localView[g]
		if !ok {
			m = make(map[network.NodeID]des.Time)
			st.localView[g] = m
		}
		m[msg.Member] = now
	}
}

// fresh reports whether a member's report is still within LocalTTL.
func (s *Service) fresh(seen des.Time) bool {
	if s.cfg.LocalTTL <= 0 {
		return true
	}
	return s.bb.Net().Sim().Now()-seen <= s.cfg.LocalTTL
}

// MNTSummary returns the CH slot's aggregated cluster membership:
// group -> member count (Figure 5 step 3's message body).
func (s *Service) MNTSummary(slot logicalid.CHID) map[Group]int {
	st := s.slot(slot)
	out := make(map[Group]int, len(st.localView))
	for g, members := range st.localView {
		n := 0
		for _, seen := range members {
			if s.fresh(seen) {
				n++
			}
		}
		if n > 0 {
			out[g] = n
		}
	}
	return out
}

// LocalMembers returns the nodes of the slot's cluster known to have
// joined the group — the delivery set of Figure 6 step 6.
func (s *Service) LocalMembers(slot logicalid.CHID, g Group) []network.NodeID {
	st := s.slot(slot)
	out := make([]network.NodeID, 0, len(st.localView[g]))
	for id, seen := range st.localView[g] {
		if s.fresh(seen) {
			out = append(out, id)
		}
	}
	return network.SortedIDs(out)
}

// MNTRound is Figure 5 step 3: every CH floods its MNT-Summary to all
// CHs within its hypercube.
func (s *Service) MNTRound() {
	scheme := s.bb.Scheme()
	for _, slot := range s.sortedHeadSlots() {
		ch := s.bb.CHNodeOf(slot)
		vc := scheme.Grid().FromIndex(int(slot))
		place := scheme.PlaceOf(vc)
		s.seq++
		msg := &summaryMsg{Origin: slot, HID: place.HID, Seq: s.seq, Groups: s.MNTSummary(slot)}
		// Record our own summary in our own view first.
		st := s.slot(slot)
		st.mntView[slot] = msg.Groups
		st.seenMNT[slot] = msg.Seq
		s.floodMNT(slot, msg, ch)
	}
}

// sortedHeadSlots returns the CH slots currently heading clusters in
// slot order. Rounds iterate it instead of the Heads map so the
// transmission sequence (and with it every sender's loss-stream draw
// order) is identical across reruns.
func (s *Service) sortedHeadSlots() []logicalid.CHID {
	grid := s.bb.Scheme().Grid()
	s.roundSlots = s.roundSlots[:0]
	for vc := range s.bb.Clusters().Heads() {
		s.roundSlots = append(s.roundSlots, logicalid.CHID(grid.Index(vc)))
	}
	s.roundSlots = network.SortedIDs(s.roundSlots)
	return s.roundSlots
}

// floodMNT forwards an MNT summary to intra-hypercube logical neighbors
// that have not seen it (the sender cannot know, so it sends to all and
// receivers dedup — standard scoped flooding).
func (s *Service) floodMNT(from logicalid.CHID, msg *summaryMsg, ch network.NodeID) {
	scheme := s.bb.Scheme()
	net := s.bb.Net()
	size := s.cfg.Header + len(msg.Groups)*s.cfg.GroupEntry
	for _, nb := range s.bb.LogicalNeighbors(from) {
		if scheme.CHIDToPlace(nb).HID != msg.HID {
			continue // MNT summaries stay within the hypercube
		}
		pkt := net.AcquirePacket()
		pkt.Kind = MNTKind
		pkt.Src, pkt.Dst = ch, s.bb.CHNodeOf(nb)
		pkt.Size, pkt.Control = size, true
		pkt.Born, pkt.UID = net.Sim().Now(), net.NextUID()
		pkt.Payload = msg
		s.bb.SendLogical(from, nb, pkt)
		net.ReleasePacket(pkt)
	}
}

func (s *Service) onMNT(n *network.Node, _ network.NodeID, pkt *network.Packet) {
	msg, ok := pkt.Payload.(*summaryMsg)
	if !ok {
		return
	}
	slot := s.bb.SlotOfNode(n.ID)
	if slot < 0 {
		return
	}
	st := s.slot(slot)
	if st.seenMNT[msg.Origin] >= msg.Seq {
		return // duplicate
	}
	st.seenMNT[msg.Origin] = msg.Seq
	st.mntView[msg.Origin] = msg.Groups
	s.floodMNT(slot, msg, n.ID) // continue the scoped flood
}

// HTSummary returns the slot's aggregation over its hypercube (Figure 5
// step 4's message body): group -> total member count in the hypercube.
func (s *Service) HTSummary(slot logicalid.CHID) map[Group]int {
	st := s.slot(slot)
	out := make(map[Group]int)
	for _, groups := range st.mntView {
		for g, c := range groups {
			out[g] += c
		}
	}
	return out
}

// Designated reports whether the slot currently self-selects as its
// hypercube's HT broadcaster: the paper's criterion of the largest
// total membership over itself and its 1-logical-hop neighbor CHs,
// breaking ties by lowest CHID.
func (s *Service) Designated(slot logicalid.CHID) bool {
	scheme := s.bb.Scheme()
	myHID := scheme.CHIDToPlace(slot).HID
	st := s.slot(slot)
	if s.cfg.Designation == DesignateFixed {
		// Lowest occupied CHID of the hypercube always broadcasts.
		for _, vc := range scheme.BlockVCs(myHID) {
			c := logicalid.CHID(scheme.Grid().Index(vc))
			if s.bb.CHNodeOf(c) != network.NoNode {
				return c == slot
			}
		}
		return false
	}
	score := func(c logicalid.CHID) int {
		total := 0
		for _, cnt := range st.mntView[c] {
			total += cnt
		}
		if s.cfg.Designation == DesignateSelf {
			return total
		}
		for _, nb := range s.bb.LogicalNeighbors(c) {
			if scheme.CHIDToPlace(nb).HID != myHID {
				continue
			}
			for _, cnt := range st.mntView[nb] {
				total += cnt
			}
		}
		return total
	}
	mine := score(slot)
	for origin := range st.mntView {
		if origin == slot || scheme.CHIDToPlace(origin).HID != myHID {
			continue
		}
		if s.bb.CHNodeOf(origin) == network.NoNode {
			continue
		}
		other := score(origin)
		if other > mine || (other == mine && origin < slot) {
			return false
		}
	}
	return true
}

// HTRound is Figure 5 step 4: each CH summarizes its MNT view and, if
// designated, broadcasts the HT-Summary to all CHs in the network.
func (s *Service) HTRound() {
	scheme := s.bb.Scheme()
	for _, slot := range s.sortedHeadSlots() {
		ch := s.bb.CHNodeOf(slot)
		vc := scheme.Grid().FromIndex(int(slot))
		place := scheme.PlaceOf(vc)
		// Every CH folds its own hypercube into its MT view (step 5).
		summary := s.HTSummary(slot)
		s.recordMT(slot, place.HID, summary)
		if !s.Designated(slot) {
			continue
		}
		s.HTBroadcasts++
		s.seq++
		msg := &summaryMsg{Origin: slot, HID: place.HID, Seq: s.seq, Groups: summary}
		st := s.slot(slot)
		st.seenHT[slot] = msg.Seq
		s.floodHT(slot, msg, ch)
	}
}

// floodHT forwards an HT summary network-wide over logical links.
func (s *Service) floodHT(from logicalid.CHID, msg *summaryMsg, ch network.NodeID) {
	net := s.bb.Net()
	size := s.cfg.Header + len(msg.Groups)*s.cfg.GroupEntry
	for _, nb := range s.bb.LogicalNeighbors(from) {
		pkt := net.AcquirePacket()
		pkt.Kind = HTKind
		pkt.Src, pkt.Dst = ch, s.bb.CHNodeOf(nb)
		pkt.Size, pkt.Control = size, true
		pkt.Born, pkt.UID = net.Sim().Now(), net.NextUID()
		pkt.Payload = msg
		s.bb.SendLogical(from, nb, pkt)
		net.ReleasePacket(pkt)
	}
}

func (s *Service) onHT(n *network.Node, _ network.NodeID, pkt *network.Packet) {
	msg, ok := pkt.Payload.(*summaryMsg)
	if !ok {
		return
	}
	slot := s.bb.SlotOfNode(n.ID)
	if slot < 0 {
		return
	}
	st := s.slot(slot)
	if st.seenHT[msg.Origin] >= msg.Seq {
		return
	}
	st.seenHT[msg.Origin] = msg.Seq
	s.recordMT(slot, msg.HID, msg.Groups)
	s.floodHT(slot, msg, n.ID)
}

// recordMT merges an HT summary into a slot's MT view (Figure 5 step 5).
func (s *Service) recordMT(slot logicalid.CHID, hid logicalid.HID, groups map[Group]int) {
	st := s.slot(slot)
	// Clear stale claims of this hypercube first: a group that vanished
	// from hid must not linger in the MT view.
	for g, hids := range st.mtView {
		if hids[hid] {
			if _, still := groups[g]; !still {
				delete(hids, hid)
				if len(hids) == 0 {
					delete(st.mtView, g)
				}
			}
		}
	}
	for g, cnt := range groups {
		if cnt <= 0 {
			continue
		}
		hids, ok := st.mtView[g]
		if !ok {
			hids = make(map[logicalid.HID]bool)
			st.mtView[g] = hids
		}
		hids[hid] = true
	}
	if s.trOn {
		s.tr.Eventf(trace.Membership, float64(s.bb.Net().Sim().Now()),
			"slot %d MT view merged summary of hypercube %d (%d groups)", slot, hid, len(groups))
	}
}

// MTSummary returns the hypercubes the slot believes contain members of
// the group — Figure 6's routing input. The map is a copy.
func (s *Service) MTSummary(slot logicalid.CHID, g Group) map[logicalid.HID]bool {
	out := make(map[logicalid.HID]bool)
	for h := range s.slot(slot).mtView[g] {
		out[h] = true
	}
	return out
}

// CubeMembers returns the CH slots within the given slot's hypercube
// that, per this slot's collected MNT-Summaries, host members of the
// group — the destination set of the hypercube-tier multicast tree
// (Figure 6 step 4). The caller's own slot is included when it has
// local members.
func (s *Service) CubeMembers(slot logicalid.CHID, g Group) []logicalid.CHID {
	scheme := s.bb.Scheme()
	myHID := scheme.CHIDToPlace(slot).HID
	st := s.slot(slot)
	var out []logicalid.CHID
	for origin, groups := range st.mntView {
		if scheme.CHIDToPlace(origin).HID != myHID {
			continue
		}
		if groups[g] > 0 {
			out = append(out, origin)
		}
	}
	return network.SortedIDs(out)
}

// GroupsAt returns the groups the slot's MT view knows anywhere in the
// network, sorted; useful for assertions and tooling.
func (s *Service) GroupsAt(slot logicalid.CHID) []Group {
	st := s.slot(slot)
	out := make([]Group, 0, len(st.mtView))
	for g := range st.mtView {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HTGroupsKnown returns how many hypercube slots the MT view of the
// given slot attributes to the group (coverage measure for convergence
// experiments).
func (s *Service) HTGroupsKnown(slot logicalid.CHID, g Group) int {
	return len(s.slot(slot).mtView[g])
}
