package membership

import "testing"

// TestSummaryVersionStableAcrossNoOpRounds pins the version-key
// contract the route cache builds on (internal/route keys memoized
// trees by SummaryVersion): summary rounds that re-deliver an
// unchanged view — the steady state of a converged static network —
// must not bump SummaryVersion, or every cached tree would be evicted
// each round and the cache would never hit. A real membership change
// afterwards must still bump it.
func TestSummaryVersionStableAcrossNoOpRounds(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	m1 := tb.addMember(9, 5, 5)
	m2 := tb.addMember(30, -5, 3)
	tb.rebind()
	tb.ms.Join(m1.ID, 1)
	tb.ms.Join(m2.ID, 1)

	round := func() {
		tb.ms.LocalRound()
		tb.drain()
		tb.ms.MNTRound()
		tb.sim.RunUntil(tb.sim.Now() + 5)
		tb.ms.HTRound()
		tb.sim.RunUntil(tb.sim.Now() + 10)
	}
	// Converge: the first rounds install MNT lanes and MT views.
	round()
	round()
	v := tb.ms.SummaryVersion()
	if v == 0 {
		t.Fatal("convergence rounds never bumped SummaryVersion; the test premise is broken")
	}

	// Steady state: identical summaries re-flood, setMNT and recordMT
	// must detect the no-op.
	for i := 0; i < 3; i++ {
		round()
	}
	if got := tb.ms.SummaryVersion(); got != v {
		t.Fatalf("no-op summary rounds bumped SummaryVersion %d -> %d", v, got)
	}

	// A genuine change still moves the version once rounds propagate it.
	tb.ms.Leave(m1.ID, 1)
	round()
	if got := tb.ms.SummaryVersion(); got <= v {
		t.Fatalf("membership change did not bump SummaryVersion (still %d)", got)
	}
}
