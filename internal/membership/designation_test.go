package membership

import (
	"testing"

	"repro/internal/logicalid"
)

// designationBed builds a converged 8x8 world with members in cube 0
// under the given policy.
func designationBed(t *testing.T, policy DesignationPolicy) *testbed {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Designation = policy
	cfg.LocalTTL = 0 // report freshness has its own tests
	tb := newTestbed(t, cfg)
	m1 := tb.addMember(0, 30, 0) // VC (0,0)
	m2 := tb.addMember(9, 20, 0) // VC (1,1)
	tb.rebind()
	tb.ms.cfg = cfg // rebind rebuilt the service with default config
	tb.ms.Join(m1.ID, 5)
	tb.ms.Join(m2.ID, 5)
	tb.ms.LocalRound()
	tb.drain()
	tb.ms.MNTRound()
	tb.sim.RunUntil(tb.sim.Now() + 5)
	return tb
}

func designatedSlots(tb *testbed) []logicalid.CHID {
	var out []logicalid.CHID
	for _, vc := range tb.scheme.BlockVCs(0) {
		slot := logicalid.CHID(tb.grid.Index(vc))
		if tb.ms.Designated(slot) {
			out = append(out, slot)
		}
	}
	return out
}

func TestDesignateSelfPlusNeighborsUnique(t *testing.T) {
	tb := designationBed(t, DesignateSelfPlusNeighbors)
	if got := designatedSlots(tb); len(got) != 1 {
		t.Fatalf("designated slots %v want exactly 1", got)
	}
}

func TestDesignateSelfUnique(t *testing.T) {
	tb := designationBed(t, DesignateSelf)
	got := designatedSlots(tb)
	if len(got) != 1 {
		t.Fatalf("designated slots %v want exactly 1", got)
	}
	// Self-only criterion must pick a slot that actually hosts members.
	sum := tb.ms.MNTSummary(got[0])
	if sum[5] == 0 {
		t.Fatalf("self criterion picked memberless slot %d", got[0])
	}
}

func TestDesignateFixedPicksLowestSlot(t *testing.T) {
	tb := designationBed(t, DesignateFixed)
	got := designatedSlots(tb)
	if len(got) != 1 {
		t.Fatalf("designated slots %v want exactly 1", got)
	}
	// Lowest occupied CHID of cube 0 is VC (0,0) = slot 0.
	if got[0] != 0 {
		t.Fatalf("fixed policy picked slot %d want 0", got[0])
	}
}

func TestDesignateFixedFailsOver(t *testing.T) {
	tb := designationBed(t, DesignateFixed)
	// Kill the CH of slot 0; the fixed policy must move to the next
	// occupied slot rather than halt.
	ch := tb.bb.CHNodeOf(0)
	tb.net.Node(ch).Fail()
	tb.cm.Elect()
	got := designatedSlots(tb)
	if len(got) != 1 {
		t.Fatalf("designated slots after failure %v want exactly 1", got)
	}
	if got[0] == 0 {
		t.Fatal("dead slot still designated")
	}
}

func TestPolicyStringsViaBroadcast(t *testing.T) {
	// All policies must drive HTRound to completion with one broadcast
	// per member-bearing cube.
	for _, policy := range []DesignationPolicy{DesignateSelfPlusNeighbors, DesignateSelf, DesignateFixed} {
		tb := designationBed(t, policy)
		before := tb.ms.HTBroadcasts
		tb.ms.HTRound()
		tb.sim.RunUntil(tb.sim.Now() + 5)
		// Designation policies apply per cube; all four cubes broadcast
		// (cubes without members still summarize empties), but at least
		// the member cube must.
		if tb.ms.HTBroadcasts == before {
			t.Fatalf("policy %d produced no HT broadcasts", policy)
		}
	}
}

// TestMultiHomeOverlapReliability exercises the paper's §3 overlap
// membership: a member standing in the overlap region of two VCs
// reports to both CHs under MultiHome, so when one VC's CH dies right
// after an election, the other cluster still delivers to it.
func TestMultiHomeOverlapReliability(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MultiHome = true
	cfg.LocalTTL = 0
	tb := newTestbed(t, cfg)
	// Place the member on the shared edge of VCs (0,0) and (1,0): both
	// circles cover it.
	m := tb.addMember(0, 125, 0) // VCC(0,0)=(125,125); +125 -> x=250, the edge
	tb.rebind()
	tb.ms.cfg = cfg
	tb.ms.Join(m.ID, 5)
	tb.ms.LocalRound()
	tb.drain()
	// Both covering CH slots must list the member.
	left := tb.ms.LocalMembers(0, 5)  // slot (0,0)
	right := tb.ms.LocalMembers(1, 5) // slot (1,0)
	if len(left) != 1 || len(right) != 1 {
		t.Fatalf("multi-home member known to %d/%d covering clusters want both", len(left), len(right))
	}
}

func TestSingleHomeReportsOnce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LocalTTL = 0
	tb := newTestbed(t, cfg)
	m := tb.addMember(0, 125, 0) // same overlap position
	tb.rebind()
	tb.ms.cfg = cfg
	tb.ms.Join(m.ID, 5)
	tb.ms.LocalRound()
	tb.drain()
	known := 0
	if len(tb.ms.LocalMembers(0, 5)) == 1 {
		known++
	}
	if len(tb.ms.LocalMembers(1, 5)) == 1 {
		known++
	}
	if known != 1 {
		t.Fatalf("single-home member known to %d clusters want exactly 1", known)
	}
}
