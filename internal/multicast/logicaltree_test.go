package multicast

import (
	"testing"

	"repro/internal/logicalid"
	"repro/internal/vcgrid"
)

// TestDeliveryWhenLabelGraphDisconnected is the regression test for the
// intra-cube tree: with enough CHs dead, the hypercube's *label* graph
// (bit-flip edges only) disconnects, but the paper's 1-logical-hop
// routes also include grid-adjacent links, so delivery must survive.
func TestDeliveryWhenLabelGraphDisconnected(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	// Kill CHs so that label 0000 (VC (0,0)) keeps only grid links:
	// its label neighbors are 0001 (1,0), 0010 (0,1), 0100 (2,0),
	// 1000 (0,2). Kill all four label neighbors' CHs; (0,0) stays
	// reachable via... nothing! So instead isolate label-wise a member
	// VC but keep one grid link: kill 0001(1,0), 0100(2,0), 1000(0,2)
	// and keep 0010(0,1) — which is both a label and grid neighbor.
	// For a pure grid-only case, use member at (1,1) = label 0011 whose
	// label neighbors are 0001(1,0), 0010(0,1), 0111(3,1), 1011(1,3):
	// kill those four; (1,1) keeps grid links to (2,1) and (1,2).
	for _, v := range []vcgrid.VC{{CX: 1, CY: 0}, {CX: 0, CY: 1}, {CX: 3, CY: 1}, {CX: 1, CY: 3}} {
		tb.net.Node(tb.cm.CHOf(v)).Fail()
	}
	tb.cm.Elect()

	// Sanity: the member VC's label is now disconnected from the entry
	// label in the pure label graph... (not necessarily fully
	// disconnected; assert at least that all four label neighbors are
	// absent).
	cube := tb.bb.Cube(0)
	place := tb.scheme.PlaceOf(vcgrid.VC{CX: 1, CY: 1})
	if got := len(cube.Neighbors(place.HNID)); got != 0 {
		t.Fatalf("label 0011 still has %d label neighbors; setup wrong", got)
	}

	member := tb.addMember(tb.grid.Index(vcgrid.VC{CX: 1, CY: 1}), 30, 0)
	src := tb.addMember(tb.grid.Index(vcgrid.VC{CX: 2, CY: 2}), 20, 0)
	tb.ms.Join(member.ID, 5)
	tb.prepare()
	uid := tb.mc.Send(src.ID, 5, 128)
	tb.drain()
	if !tb.mc.DeliveredTo(uid, member.ID) {
		t.Fatal("delivery failed despite surviving grid-adjacency logical links")
	}
}

// TestLogicalTreeWithinSpansGridLinks unit-tests the tree builder
// directly: the tree must use grid edges when label edges are missing.
func TestLogicalTreeWithinSpansGridLinks(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	for _, v := range []vcgrid.VC{{CX: 1, CY: 0}, {CX: 0, CY: 1}, {CX: 3, CY: 1}, {CX: 1, CY: 3}} {
		tb.net.Node(tb.cm.CHOf(v)).Fail()
	}
	tb.cm.Elect()
	root := logicalid.CHID(tb.grid.Index(vcgrid.VC{CX: 2, CY: 2}))
	dest := logicalid.CHID(tb.grid.Index(vcgrid.VC{CX: 1, CY: 1}))
	tree := tb.mc.logicalTreeWithin(0, root, []logicalid.CHID{dest})
	if _, ok := tree[dest]; !ok {
		t.Fatalf("tree does not span the grid-linked destination: %v", tree)
	}
	// Walk to root for structural validity.
	cur := dest
	for steps := 0; cur != root; steps++ {
		if steps > 64 {
			t.Fatal("tree walk does not terminate")
		}
		parent, ok := tree[cur]
		if !ok {
			t.Fatalf("dangling tree node %d", cur)
		}
		cur = parent
	}
}
