// Package multicast implements the paper's Figure 6 algorithm: logical
// location-based multicast routing over the HVDB.
//
// The data path follows the paper step by step:
//
//  1. a source MN hands the message to its CH;
//  2. the CH computes (or reuses from cache) a mesh-tier multicast tree
//     over the hypercubes its MT-Summary attributes to the group and
//     encapsulates the tree in the packet header;
//  3. the packet travels between hypercubes by location-based unicast;
//  4. on first entry into a hypercube the entry CH re-encapsulates the
//     packet toward next-hop hypercubes and computes a hypercube-tier
//     tree from its HT view (cached as well);
//  5. within the hypercube the packet follows the tree along
//     1-logical-hop routes between CHs;
//  6. a CH whose MNT view shows local group members delivers by local
//     broadcast within its cluster.
//
// Header sizes grow with the encoded trees, so the traffic accounting
// reflects the encapsulation cost the paper's design accepts in exchange
// for statelessness at intermediate CHs.
package multicast

import (
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/logicalid"
	"repro/internal/membership"
	"repro/internal/meshtier"
	"repro/internal/network"
	"repro/internal/route"
	"repro/internal/trace"
	"repro/internal/vcgrid"
)

// Packet kinds of the multicast plane.
const (
	SourceKind = "mcast-src"   // MN -> its CH
	DataKind   = "mcast-data"  // CH -> CH (mesh and hypercube tiers)
	LocalKind  = "mcast-local" // CH -> cluster members (local broadcast)
)

// Config parameterizes the multicast plane.
type Config struct {
	// HeaderBase is the fixed header size in bytes; TreeEntry is the
	// per-edge cost of an encapsulated tree.
	HeaderBase, TreeEntry int
	// CacheTTL is how long computed trees stay valid (the paper caches
	// trees "for future use"; mobility invalidates them eventually).
	CacheTTL des.Duration
	// MinBandwidth and MaxDelay, when non-zero, gate intra-cube
	// forwarding on the QoS annotations of the local logical routes.
	MinBandwidth, MaxDelay float64
}

// DefaultConfig sizes headers like a compact binary encoding.
func DefaultConfig() Config {
	return Config{HeaderBase: 24, TreeEntry: 4, CacheTTL: 10}
}

// header is the encapsulated routing state carried by DataKind packets.
type header struct {
	Group membership.Group
	// MeshTree is parent pointers over hypercube IDs (step 2).
	MeshTree map[logicalid.HID]logicalid.HID
	// CubeHID and CubeTree are the hypercube-tier tree of the hypercube
	// currently being traversed (step 4), as parent pointers over CH
	// slots. The tree spans the cube's *logical link graph* — hypercube
	// label edges plus grid-adjacency edges, exactly the 1-logical-hop
	// routes of §4.1 — so it survives label-graph disconnection in
	// incomplete cubes. IntraCube marks packets already traveling
	// inside the cube.
	CubeHID   logicalid.HID
	CubeTree  map[logicalid.CHID]logicalid.CHID
	IntraCube bool
	// LogicalHops counts CH-to-CH logical forwards for metrics.
	LogicalHops int
	// PayloadSize is the application payload in bytes.
	PayloadSize int
}

func (h *header) clone() *header {
	c := *h
	return &c
}

// DeliverFunc observes one member delivery.
type DeliverFunc func(member network.NodeID, uid uint64, born des.Time, logicalHops int)

type cachedMeshTree struct {
	tree    map[logicalid.HID]logicalid.HID
	root    logicalid.HID
	expires des.Time
}

type cachedCubeTree struct {
	tree    map[logicalid.CHID]logicalid.CHID
	entry   logicalid.CHID
	expires des.Time
}

type cubeKey struct {
	hid   logicalid.HID
	slot  logicalid.CHID
	group membership.Group
}

// Service runs multicast over a backbone and its membership plane.
type Service struct {
	bb  *core.Backbone
	ms  *membership.Service
	cfg Config
	tr  trace.Tracer

	meshCache map[membership.Group]map[logicalid.HID]cachedMeshTree
	cubeCache map[cubeKey]cachedCubeTree

	seenCube  map[uint64]map[logicalid.HID]bool
	seenSlot  map[uint64]map[logicalid.CHID]bool
	seenLocal map[uint64]map[network.NodeID]bool

	onDeliver []DeliverFunc

	// childScratch is forwardWithinCube's reusable sorted-children
	// buffer (forwarding is never reentrant: receptions arrive as
	// separate simulator events).
	childScratch []logicalid.CHID

	// Counters for experiments.
	Sent          uint64
	Delivered     uint64
	TreeComputes  uint64
	TreeCacheHits uint64
}

// New wires multicast onto the backbone. The outer mux (the one bound
// to the network) is needed for local-broadcast delivery, which does not
// go through the logical transport.
func New(bb *core.Backbone, ms *membership.Service, mux *network.Mux, cfg Config) *Service {
	if cfg.HeaderBase <= 0 {
		cfg = DefaultConfig()
	}
	s := &Service{
		bb:        bb,
		ms:        ms,
		cfg:       cfg,
		tr:        trace.Nop,
		meshCache: make(map[membership.Group]map[logicalid.HID]cachedMeshTree),
		cubeCache: make(map[cubeKey]cachedCubeTree),
		seenCube:  make(map[uint64]map[logicalid.HID]bool),
		seenSlot:  make(map[uint64]map[logicalid.CHID]bool),
		seenLocal: make(map[uint64]map[network.NodeID]bool),
	}
	bb.HandleInner(SourceKind, s.onSource)
	bb.HandleInner(DataKind, s.onData)
	mux.Handle(LocalKind, s.onLocal)
	return s
}

// SetTracer installs a tracer; nil resets to no-op.
func (s *Service) SetTracer(t trace.Tracer) {
	if t == nil {
		t = trace.Nop
	}
	s.tr = t
}

// OnDeliver registers an additional delivery observer; every observer
// sees each delivery, in registration order. Observers live as long as
// the service — a protocol arm built on this world (see
// internal/protocol) registers one and multiplexes its own replaceable
// slot on top, so arm observers and direct w.MC observers coexist.
func (s *Service) OnDeliver(f DeliverFunc) {
	if f != nil {
		s.onDeliver = append(s.onDeliver, f)
	}
}

// Send multicasts a payload of the given size from the source node to
// the group (Figure 6 step 1). It returns the packet UID used in
// delivery callbacks, or 0 if the source could not start (down node or
// no reachable CH).
func (s *Service) Send(src network.NodeID, g membership.Group, payloadSize int) uint64 {
	net := s.bb.Net()
	n := net.Node(src)
	if n == nil || !n.Up() {
		return 0
	}
	grid := s.bb.Scheme().Grid()
	vc := grid.VCOf(n.Fix().Pos)
	ch := s.bb.Clusters().CHOf(vc)
	if ch == network.NoNode {
		return 0
	}
	uid := net.NextUID()
	now := net.Sim().Now()
	s.Sent++
	hdr := &header{Group: g, PayloadSize: payloadSize}
	if ch == src {
		// The source is itself the CH: no radio hop to reach it.
		slot := logicalid.CHID(grid.Index(vc))
		s.enterMeshTier(slot, uid, now, hdr)
		return uid
	}
	pkt := &network.Packet{
		Kind: SourceKind, Src: src, Dst: ch, Group: int(g),
		Size: payloadSize + s.cfg.HeaderBase, Born: now, UID: uid, Payload: hdr,
	}
	if !s.bb.Geo().Send(src, grid.Center(vc), ch, pkt) {
		return 0
	}
	return uid
}

// onSource runs at the CH that receives a source MN's message.
func (s *Service) onSource(n *network.Node, _ network.NodeID, pkt *network.Packet) {
	hdr, ok := pkt.Payload.(*header)
	if !ok {
		return
	}
	slot := s.bb.SlotOfNode(n.ID)
	if slot < 0 {
		return // CH role moved while the packet was in flight
	}
	s.enterMeshTier(slot, pkt.UID, pkt.Born, hdr)
}

// enterMeshTier is Figure 6 step 2: compute the mesh-tier tree and start
// distribution from the source CH's hypercube.
func (s *Service) enterMeshTier(slot logicalid.CHID, uid uint64, born des.Time, hdr *header) {
	place := s.bb.Scheme().CHIDToPlace(slot)
	hdr.MeshTree = s.meshTree(slot, place.HID, hdr.Group)
	s.enterCube(slot, uid, born, hdr)
}

// versions stamps the inputs tree construction reads: CH occupancy and
// the membership summary views (the internal/route cache key).
func (s *Service) versions() route.Versions {
	return route.Versions{Topo: s.bb.Clusters().Version(), Summary: s.ms.SummaryVersion()}
}

// MeshTreeAt returns the mesh-tier tree rooted at the given hypercube
// over the hypercubes the slot's MT-Summary lists for the group,
// memoized in the backbone's version-keyed route cache. This is THE
// mesh-tree construction: both the data plane (under its TTL layer)
// and the QoS admission path (internal/qos) resolve trees through it,
// so there is exactly one compute to keep deterministic — a second
// closure registered under the same cache key could silently diverge
// behind first-wins caching. Callers must not modify the result.
func (s *Service) MeshTreeAt(slot logicalid.CHID, root logicalid.HID, g membership.Group) route.MeshTree {
	return s.bb.Trees().MeshTree(s.versions(), route.MeshKey{Group: int(g), Root: root, Slot: slot}, func() route.MeshTree {
		mesh := s.bb.SharedMesh()
		// The destination order shapes the greedy tree: use the sorted
		// slice view of the MT summary, never a map range.
		hids := s.ms.MTSummaryHIDs(slot, g)
		dests := make([]meshtier.ID, len(hids))
		for i, h := range hids {
			dests[i] = int(h)
		}
		raw, _ := mesh.MulticastTree(int(root), dests)
		tree := make(map[logicalid.HID]logicalid.HID, len(raw))
		for child, parent := range raw {
			tree[logicalid.HID(child)] = logicalid.HID(parent)
		}
		return tree
	})
}

// meshTree returns the (possibly cached) mesh-tier tree for the data
// plane. Two layers cache it: the TTL layer reproduces the paper's
// "cache trees for future use" staleness window, and beneath it
// MeshTreeAt memoizes the construction itself, shared with the QoS
// admission path.
func (s *Service) meshTree(slot logicalid.CHID, root logicalid.HID, g membership.Group) map[logicalid.HID]logicalid.HID {
	now := s.bb.Net().Sim().Now()
	byRoot := s.meshCache[g]
	if c, ok := byRoot[root]; ok && c.expires >= now {
		s.TreeCacheHits++
		return c.tree
	}
	s.TreeComputes++
	tree := s.MeshTreeAt(slot, root, g)
	if byRoot == nil {
		byRoot = make(map[logicalid.HID]cachedMeshTree)
		s.meshCache[g] = byRoot
	}
	byRoot[root] = cachedMeshTree{tree: tree, root: root, expires: now + s.cfg.CacheTTL}
	return tree
}

// enterCube is Figure 6 step 4: first arrival of the packet in a
// hypercube. The entry CH forwards toward next-hop hypercubes and fans
// out within its own.
func (s *Service) enterCube(slot logicalid.CHID, uid uint64, born des.Time, hdr *header) {
	place := s.bb.Scheme().CHIDToPlace(slot)
	hid := place.HID
	if s.seenCube[uid] == nil {
		s.seenCube[uid] = make(map[logicalid.HID]bool)
	}
	if s.seenCube[uid][hid] {
		return
	}
	s.seenCube[uid][hid] = true

	// (1) Re-encapsulate toward next-hop hypercubes.
	for _, child := range childrenHID(hdr.MeshTree, hid) {
		s.forwardToCube(slot, child, uid, born, hdr)
	}

	// (2) Compute the hypercube-tier tree and fan out inside.
	cubeHdr := hdr.clone()
	cubeHdr.CubeHID = hid
	cubeHdr.CubeTree = s.cubeTree(slot, hid, hdr.Group)
	cubeHdr.IntraCube = true
	s.forwardWithinCube(slot, uid, born, cubeHdr)
	s.deliverLocal(slot, uid, born, cubeHdr)
}

// childrenHID lists h's children in the mesh tree, in HID order:
// forwarding order must not depend on map iteration, because every
// transmission can draw from the sender's loss stream.
func childrenHID(tree map[logicalid.HID]logicalid.HID, h logicalid.HID) []logicalid.HID {
	return network.Children(tree, h, nil)
}

// forwardToCube sends the packet to an entry CH of the next-hop
// hypercube by location-based unicast (Figure 6 step 3): the
// geographically nearest CH slot of the target block.
func (s *Service) forwardToCube(fromSlot logicalid.CHID, to logicalid.HID, uid uint64, born des.Time, hdr *header) {
	scheme := s.bb.Scheme()
	grid := scheme.Grid()
	fromVC := grid.FromIndex(int(fromSlot))
	var best logicalid.CHID = -1
	bestDist := 1 << 30
	for _, vc := range scheme.BlockVCs(to) {
		if s.bb.Clusters().CHOf(vc) == network.NoNode {
			continue
		}
		if d := vcgrid.DistVCs(fromVC, vc); d < bestDist {
			best, bestDist = logicalid.CHID(grid.Index(vc)), d
		}
	}
	if best < 0 {
		s.tr.Eventf(trace.Multicast, float64(s.bb.Net().Sim().Now()),
			"uid %d: hypercube %d has no CH to enter", uid, to)
		return
	}
	out := hdr.clone()
	out.IntraCube = false
	out.CubeTree = nil
	out.LogicalHops++
	pkt := &network.Packet{
		Kind: DataKind, Src: s.bb.CHNodeOf(fromSlot), Dst: s.bb.CHNodeOf(best),
		Group: int(hdr.Group), Size: s.packetSize(out), Born: born, UID: uid, Payload: out,
	}
	s.bb.Geo().Send(s.bb.CHNodeOf(fromSlot), grid.Center(grid.FromIndex(int(best))), s.bb.CHNodeOf(best), pkt)
}

// cubeTree returns the (possibly cached) hypercube-tier tree for the
// group rooted at the entry slot, spanning the cube's logical link
// graph over the CH slots whose MNT summaries report members.
func (s *Service) cubeTree(slot logicalid.CHID, hid logicalid.HID, g membership.Group) map[logicalid.CHID]logicalid.CHID {
	now := s.bb.Net().Sim().Now()
	key := cubeKey{hid: hid, slot: slot, group: g}
	if c, ok := s.cubeCache[key]; ok && c.expires >= now && c.entry == slot {
		s.TreeCacheHits++
		return c.tree
	}
	s.TreeComputes++
	tree := s.bb.Trees().CubeSlotTree(s.versions(), route.CubeKey{Cube: hid, Entry: slot, Group: int(g)}, func() route.SlotTree {
		dests := s.ms.CubeMembers(slot, g) // sorted by construction
		return s.logicalTreeWithin(hid, slot, dests)
	})
	s.cubeCache[key] = cachedCubeTree{tree: tree, entry: slot, expires: now + s.cfg.CacheTTL}
	return tree
}

// logicalTreeWithin builds a shortest-path tree from root over the
// intra-hypercube logical link graph (the 1-logical-hop routes of
// §4.1), pruned to the paths reaching dests.
func (s *Service) logicalTreeWithin(hid logicalid.HID, root logicalid.CHID, dests []logicalid.CHID) map[logicalid.CHID]logicalid.CHID {
	scheme := s.bb.Scheme()
	parent := map[logicalid.CHID]logicalid.CHID{root: root}
	frontier := []logicalid.CHID{root}
	for len(frontier) > 0 {
		var next []logicalid.CHID
		for _, u := range frontier {
			for _, v := range s.bb.LogicalNeighbors(u) {
				if scheme.CHIDToPlace(v).HID != hid {
					continue
				}
				if _, ok := parent[v]; ok {
					continue
				}
				parent[v] = u
				next = append(next, v)
			}
		}
		frontier = next
	}
	// Prune to the destination-spanning subtree.
	tree := map[logicalid.CHID]logicalid.CHID{root: root}
	for _, d := range dests {
		if _, ok := parent[d]; !ok {
			continue // unreachable in the current logical graph
		}
		for cur := d; ; {
			if _, ok := tree[cur]; ok {
				break
			}
			p := parent[cur]
			tree[cur] = p
			cur = p
		}
	}
	return tree
}

// forwardWithinCube is Figure 6 step 5: push the packet down the
// hypercube-tier tree along 1-logical-hop routes. Children forward in
// slot order (not map order) so the senders' loss streams see a
// deterministic transmission sequence.
func (s *Service) forwardWithinCube(slot logicalid.CHID, uid uint64, born des.Time, hdr *header) {
	for _, childSlot := range s.cubeChildren(hdr.CubeTree, slot) {
		if s.bb.CHNodeOf(childSlot) == network.NoNode {
			continue // CH vanished since the tree was computed
		}
		if s.cfg.MinBandwidth > 0 || s.cfg.MaxDelay > 0 {
			if s.bb.BestRoute(slot, childSlot, s.cfg.MinBandwidth, s.cfg.MaxDelay) == nil {
				s.tr.Eventf(trace.Multicast, float64(s.bb.Net().Sim().Now()),
					"uid %d: QoS gate blocked %d -> %d", uid, slot, childSlot)
				continue
			}
		}
		out := hdr.clone()
		out.LogicalHops++
		pkt := &network.Packet{
			Kind: DataKind, Src: s.bb.CHNodeOf(slot), Dst: s.bb.CHNodeOf(childSlot),
			Group: int(hdr.Group), Size: s.packetSize(out), Born: born, UID: uid, Payload: out,
		}
		s.bb.SendLogical(slot, childSlot, pkt)
	}
}

// onData handles CH-to-CH multicast packets at both tiers.
func (s *Service) onData(n *network.Node, _ network.NodeID, pkt *network.Packet) {
	hdr, ok := pkt.Payload.(*header)
	if !ok {
		return
	}
	slot := s.bb.SlotOfNode(n.ID)
	if slot < 0 {
		return
	}
	if !hdr.IntraCube {
		s.enterCube(slot, pkt.UID, pkt.Born, hdr)
		return
	}
	if s.seenSlot[pkt.UID] == nil {
		s.seenSlot[pkt.UID] = make(map[logicalid.CHID]bool)
	}
	if s.seenSlot[pkt.UID][slot] {
		return
	}
	s.seenSlot[pkt.UID][slot] = true
	s.forwardWithinCube(slot, pkt.UID, pkt.Born, hdr)
	s.deliverLocal(slot, pkt.UID, pkt.Born, hdr)
}

// deliverLocal is Figure 6 step 6: when the MNT view shows local group
// members, broadcast once into the cluster.
func (s *Service) deliverLocal(slot logicalid.CHID, uid uint64, born des.Time, hdr *header) {
	members := s.ms.LocalMembers(slot, hdr.Group)
	ch := s.bb.CHNodeOf(slot)
	if ch == network.NoNode {
		return
	}
	// The CH itself may be a member: deliver without radio traffic.
	for _, m := range members {
		if m == ch {
			s.recordDelivery(m, uid, born, hdr)
		}
	}
	if len(members) == 0 || (len(members) == 1 && members[0] == ch) {
		return
	}
	pkt := &network.Packet{
		Kind: LocalKind, Src: ch, Dst: network.NoNode, Group: int(hdr.Group),
		Size: hdr.PayloadSize + s.cfg.HeaderBase, Born: born, UID: uid, Payload: hdr,
	}
	s.bb.Net().Broadcast(ch, pkt)
}

// onLocal runs at every node hearing a cluster-local broadcast.
func (s *Service) onLocal(n *network.Node, _ network.NodeID, pkt *network.Packet) {
	hdr, ok := pkt.Payload.(*header)
	if !ok {
		return
	}
	groups := s.ms.GroupsOf(n.ID)
	joined := false
	for _, g := range groups {
		if g == hdr.Group {
			joined = true
			break
		}
	}
	if !joined {
		return
	}
	s.recordDelivery(n.ID, pkt.UID, pkt.Born, hdr)
}

func (s *Service) recordDelivery(member network.NodeID, uid uint64, born des.Time, hdr *header) {
	if s.seenLocal[uid] == nil {
		s.seenLocal[uid] = make(map[network.NodeID]bool)
	}
	if s.seenLocal[uid][member] {
		return
	}
	s.seenLocal[uid][member] = true
	s.Delivered++
	for _, f := range s.onDeliver {
		f(member, uid, born, hdr.LogicalHops)
	}
}

// packetSize prices a DataKind packet: payload plus base header plus the
// encoded trees.
func (s *Service) packetSize(hdr *header) int {
	size := hdr.PayloadSize + s.cfg.HeaderBase + len(hdr.MeshTree)*s.cfg.TreeEntry
	if hdr.IntraCube {
		size += len(hdr.CubeTree) * s.cfg.TreeEntry
	}
	return size
}

// DeliveredTo reports whether the packet uid reached the member.
func (s *Service) DeliveredTo(uid uint64, member network.NodeID) bool {
	return s.seenLocal[uid][member]
}

// DeliveryCount returns how many distinct members received the uid.
func (s *Service) DeliveryCount(uid uint64) int { return len(s.seenLocal[uid]) }

// ForgetPacket releases dedup state for a uid (long experiments call it
// to bound memory).
func (s *Service) ForgetPacket(uid uint64) {
	delete(s.seenCube, uid)
	delete(s.seenSlot, uid)
	delete(s.seenLocal, uid)
}
