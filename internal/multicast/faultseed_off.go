//go:build !faultseed

package multicast

import (
	"repro/internal/logicalid"
	"repro/internal/network"
)

// FaultSeedActive reports whether the deliberately seeded determinism
// fault is compiled in (see faultseed_on.go). Plain builds say false;
// internal/scengen's TestFaultSeedCompiledOut asserts that.
const FaultSeedActive = false

// cubeChildren lists slot's children in the hypercube-tier tree in
// ascending slot order: transmission order must not depend on map
// iteration, because each send in the fan-out consumes the sender's
// capacity window and loss stream in sequence.
func (s *Service) cubeChildren(tree map[logicalid.CHID]logicalid.CHID, slot logicalid.CHID) []logicalid.CHID {
	s.childScratch = network.Children(tree, slot, s.childScratch[:0])
	return s.childScratch
}
