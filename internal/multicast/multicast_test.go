package multicast

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/logicalid"
	"repro/internal/membership"
	"repro/internal/mobility"
	"repro/internal/network"
	"repro/internal/radio"
	"repro/internal/vcgrid"
	"repro/internal/xrand"
)

// testbed: the Figure 2 configuration (8x8 VCs, four 4-D hypercubes)
// with a CH at every VCC; members added per test, then prepare() runs
// the membership plane to convergence.
type testbed struct {
	sim    *des.Simulator
	net    *network.Network
	cm     *cluster.Manager
	scheme *logicalid.Scheme
	grid   *vcgrid.Grid
	bb     *core.Backbone
	ms     *membership.Service
	mc     *Service
	mux    *network.Mux

	members []*network.Node
}

func newTestbed(t *testing.T, cfg Config) *testbed {
	t.Helper()
	tb := &testbed{}
	tb.sim = des.New()
	arena := geom.RectWH(0, 0, 2000, 2000)
	tb.net = network.New(tb.sim, arena, xrand.New(21))
	tb.grid = vcgrid.New(arena, 250)
	for i := 0; i < tb.grid.Count(); i++ {
		tb.net.AddNode(&mobility.Static{P: tb.grid.Center(tb.grid.FromIndex(i))}, radio.DefaultCH, nil, true)
	}
	var err error
	tb.scheme, err = logicalid.New(tb.grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	tb.cfgStack(cfg)
	return tb
}

func (tb *testbed) cfgStack(cfg Config) {
	tb.mux = network.Bind(tb.net)
	tb.cm = cluster.NewManager(tb.net, tb.grid, cluster.DefaultConfig())
	bcfg := core.DefaultConfig()
	bcfg.RouteTTL = 1000
	tb.bb = core.New(tb.net, tb.mux, tb.cm, tb.scheme, bcfg)
	mcfg := membership.DefaultConfig()
	mcfg.LocalTTL = 0 // report freshness is exercised in package membership
	tb.ms = membership.New(tb.bb, mcfg)
	tb.mc = New(tb.bb, tb.ms, tb.mux, cfg)
	tb.cm.Elect()
}

func (tb *testbed) addMember(vcIdx int, dx, dy float64) *network.Node {
	c := tb.grid.Center(tb.grid.FromIndex(vcIdx))
	n := tb.net.AddNode(&mobility.Static{P: geom.Pt(c.X+dx, c.Y+dy)}, radio.DefaultMN, nil, false)
	tb.mux.BindNode(n)
	tb.members = append(tb.members, n)
	return n
}

// prepare runs membership to convergence after joins.
func (tb *testbed) prepare() {
	tb.cm.Elect()
	tb.ms.LocalRound()
	tb.sim.RunUntil(tb.sim.Now() + 2)
	tb.ms.MNTRound()
	tb.sim.RunUntil(tb.sim.Now() + 5)
	tb.ms.HTRound()
	tb.sim.RunUntil(tb.sim.Now() + 10)
	// Refresh local reports so LocalTTL does not expire them during the
	// data phase.
	tb.ms.LocalRound()
	tb.sim.RunUntil(tb.sim.Now() + 2)
}

func (tb *testbed) drain() { tb.sim.RunUntil(tb.sim.Now() + 5) }

func TestSingleCubeDelivery(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	a := tb.addMember(0, 30, 0)   // VC (0,0)
	b := tb.addMember(18, 30, 0)  // VC (2,2), same cube 0
	src := tb.addMember(9, 20, 0) // VC (1,1), cube 0
	tb.ms.Join(a.ID, 5)
	tb.ms.Join(b.ID, 5)
	tb.prepare()
	uid := tb.mc.Send(src.ID, 5, 512)
	if uid == 0 {
		t.Fatal("send failed")
	}
	tb.drain()
	if !tb.mc.DeliveredTo(uid, a.ID) || !tb.mc.DeliveredTo(uid, b.ID) {
		t.Fatalf("delivery incomplete: a=%v b=%v", tb.mc.DeliveredTo(uid, a.ID), tb.mc.DeliveredTo(uid, b.ID))
	}
	if tb.mc.DeliveryCount(uid) != 2 {
		t.Fatalf("delivered to %d nodes want 2", tb.mc.DeliveryCount(uid))
	}
}

func TestCrossCubeDelivery(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	// Members in three different hypercubes, source in the fourth.
	a := tb.addMember(tb.grid.Index(vcgrid.VC{CX: 1, CY: 1}), 30, 0)  // cube 0
	b := tb.addMember(tb.grid.Index(vcgrid.VC{CX: 6, CY: 1}), 30, 0)  // cube 1
	c := tb.addMember(tb.grid.Index(vcgrid.VC{CX: 1, CY: 6}), 30, 0)  // cube 2
	src := tb.addMember(tb.grid.Index(vcgrid.VC{CX: 6, CY: 6}), 0, 0) // cube 3
	for _, m := range []*network.Node{a, b, c} {
		tb.ms.Join(m.ID, 9)
	}
	tb.prepare()
	uid := tb.mc.Send(src.ID, 9, 1024)
	tb.drain()
	for i, m := range []*network.Node{a, b, c} {
		if !tb.mc.DeliveredTo(uid, m.ID) {
			t.Fatalf("member %d in another cube not reached", i)
		}
	}
}

func TestSourceIsCH(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	a := tb.addMember(18, 30, 0)
	tb.ms.Join(a.ID, 5)
	tb.prepare()
	// Send from the CH node of VC (0,0) directly.
	ch := tb.cm.CHOf(vcgrid.VC{CX: 0, CY: 0})
	uid := tb.mc.Send(ch, 5, 256)
	tb.drain()
	if !tb.mc.DeliveredTo(uid, a.ID) {
		t.Fatal("CH-originated multicast not delivered")
	}
}

func TestCHMemberDeliveredWithoutRadio(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	// The CH of VC (2,2) itself joins the group.
	ch := tb.cm.CHOf(vcgrid.VC{CX: 2, CY: 2})
	tb.ms.Join(ch, 5)
	src := tb.addMember(0, 30, 0)
	tb.prepare()
	uid := tb.mc.Send(src.ID, 5, 128)
	tb.drain()
	if !tb.mc.DeliveredTo(uid, ch) {
		t.Fatal("CH member not delivered")
	}
	// No local broadcast should have been needed for a CH-only member.
	if got := tb.net.Stats().KindTx[LocalKind]; got != 0 {
		t.Fatalf("unnecessary local broadcasts: %d", got)
	}
}

func TestNonMembersDoNotReceive(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	member := tb.addMember(0, 30, 0)
	bystander := tb.addMember(0, -30, 0) // same cluster, not joined
	src := tb.addMember(18, 0, 0)
	tb.ms.Join(member.ID, 5)
	tb.prepare()
	uid := tb.mc.Send(src.ID, 5, 100)
	tb.drain()
	if tb.mc.DeliveredTo(uid, bystander.ID) {
		t.Fatal("non-member received delivery")
	}
	if !tb.mc.DeliveredTo(uid, member.ID) {
		t.Fatal("member missed delivery")
	}
}

func TestDuplicateSuppression(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	a := tb.addMember(0, 30, 0)
	src := tb.addMember(9, 20, 0)
	tb.ms.Join(a.ID, 5)
	tb.prepare()
	uid := tb.mc.Send(src.ID, 5, 64)
	tb.drain()
	if got := tb.mc.DeliveryCount(uid); got != 1 {
		t.Fatalf("delivery count %d want 1 (dedup)", got)
	}
	if tb.mc.Delivered != 1 {
		t.Fatalf("Delivered counter %d want 1", tb.mc.Delivered)
	}
}

func TestTreeCaching(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheTTL = 1000
	tb := newTestbed(t, cfg)
	a := tb.addMember(tb.grid.Index(vcgrid.VC{CX: 6, CY: 6}), 30, 0)
	src := tb.addMember(0, 30, 0)
	tb.ms.Join(a.ID, 5)
	tb.prepare()
	tb.mc.Send(src.ID, 5, 64)
	tb.drain()
	computesAfterFirst := tb.mc.TreeComputes
	tb.mc.Send(src.ID, 5, 64)
	tb.drain()
	if tb.mc.TreeComputes != computesAfterFirst {
		t.Fatalf("second send recomputed trees: %d -> %d", computesAfterFirst, tb.mc.TreeComputes)
	}
	if tb.mc.TreeCacheHits == 0 {
		t.Fatal("no cache hits recorded")
	}
}

func TestCacheExpires(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheTTL = 1
	tb := newTestbed(t, cfg)
	a := tb.addMember(18, 30, 0)
	src := tb.addMember(0, 30, 0)
	tb.ms.Join(a.ID, 5)
	tb.prepare()
	tb.mc.Send(src.ID, 5, 64)
	tb.drain() // advances > CacheTTL
	before := tb.mc.TreeComputes
	tb.mc.Send(src.ID, 5, 64)
	tb.drain()
	if tb.mc.TreeComputes == before {
		t.Fatal("expired cache entry was reused")
	}
}

func TestDeliveryCallbackMetrics(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	a := tb.addMember(tb.grid.Index(vcgrid.VC{CX: 7, CY: 7}), 30, 0)
	src := tb.addMember(0, 30, 0)
	tb.ms.Join(a.ID, 5)
	tb.prepare()
	var gotMember network.NodeID = network.NoNode
	var gotHops int
	var gotBorn des.Time
	tb.mc.OnDeliver(func(member network.NodeID, uid uint64, born des.Time, hops int) {
		gotMember, gotBorn, gotHops = member, born, hops
	})
	sendTime := tb.sim.Now()
	tb.mc.Send(src.ID, 5, 64)
	tb.drain()
	if gotMember != a.ID {
		t.Fatalf("callback member %d want %d", gotMember, a.ID)
	}
	if gotBorn != sendTime {
		t.Fatalf("born %v want %v", gotBorn, sendTime)
	}
	// Source VC (0,0) to member VC (7,7): at least one inter-cube hop
	// plus intra-cube hops.
	if gotHops < 2 {
		t.Fatalf("logical hops %d suspiciously few", gotHops)
	}
}

func TestQoSGateBlocksImpossibleDemand(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinBandwidth = 1e13 // beyond any link
	tb := newTestbed(t, cfg)
	// Member two logical hops from the source CH inside one cube, so
	// the gated intra-cube forward is mandatory.
	a := tb.addMember(18, 30, 0) // (2,2) label...
	src := tb.addMember(0, 30, 0)
	tb.ms.Join(a.ID, 5)
	tb.prepare()
	// No route maintenance ran, and even with it no route passes the
	// gate, so intra-cube forwarding is blocked.
	uid := tb.mc.Send(src.ID, 5, 64)
	tb.drain()
	if tb.mc.DeliveredTo(uid, a.ID) {
		t.Fatal("QoS gate failed to block impossible demand")
	}
}

func TestQoSGatePassesWithRoutes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinBandwidth = 1000 // trivially satisfiable
	tb := newTestbed(t, cfg)
	a := tb.addMember(18, 30, 0)
	src := tb.addMember(0, 30, 0)
	tb.ms.Join(a.ID, 5)
	tb.prepare()
	// Run Figure 4 maintenance so routes with QoS annotations exist.
	for i := 0; i < 5; i++ {
		tb.bb.BeaconRound()
		tb.sim.RunUntil(tb.sim.Now() + 2)
	}
	uid := tb.mc.Send(src.ID, 5, 64)
	tb.drain()
	if !tb.mc.DeliveredTo(uid, a.ID) {
		t.Fatal("QoS gate blocked a satisfiable demand")
	}
}

func TestDataAccountedAsData(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	a := tb.addMember(18, 30, 0)
	src := tb.addMember(0, 30, 0)
	tb.ms.Join(a.ID, 5)
	tb.prepare()
	tb.net.ResetTraffic()
	tb.mc.Send(src.ID, 5, 512)
	tb.drain()
	st := tb.net.Stats()
	if st.DataBytes == 0 {
		t.Fatal("multicast payload not accounted as data")
	}
}

func TestSendFromDownNodeFails(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	src := tb.addMember(0, 30, 0)
	tb.prepare()
	src.Fail()
	if uid := tb.mc.Send(src.ID, 5, 64); uid != 0 {
		t.Fatal("send from down node should fail")
	}
}

func TestDeliveryAfterEntryCHFailure(t *testing.T) {
	// Availability: kill one CH on the path after trees were cached;
	// a fresh send must still reach members via recomputed trees once
	// the cache expires.
	cfg := DefaultConfig()
	cfg.CacheTTL = 0.5
	tb := newTestbed(t, cfg)
	a := tb.addMember(18, 30, 0) // (2,2) cube 0
	src := tb.addMember(0, 30, 0)
	tb.ms.Join(a.ID, 5)
	tb.prepare()
	uid := tb.mc.Send(src.ID, 5, 64)
	tb.drain()
	if !tb.mc.DeliveredTo(uid, a.ID) {
		t.Fatal("baseline delivery failed")
	}
	// Kill an intermediate CH: (1,1) = the diagonal stepping stone.
	tb.net.Node(tb.cm.CHOf(vcgrid.VC{CX: 1, CY: 1})).Fail()
	tb.cm.Elect()
	uid2 := tb.mc.Send(src.ID, 5, 64)
	tb.drain()
	if !tb.mc.DeliveredTo(uid2, a.ID) {
		t.Fatal("delivery not restored around failed CH")
	}
}

func TestForgetPacket(t *testing.T) {
	tb := newTestbed(t, DefaultConfig())
	a := tb.addMember(0, 30, 0)
	src := tb.addMember(9, 20, 0)
	tb.ms.Join(a.ID, 5)
	tb.prepare()
	uid := tb.mc.Send(src.ID, 5, 64)
	tb.drain()
	tb.mc.ForgetPacket(uid)
	if tb.mc.DeliveryCount(uid) != 0 {
		t.Fatal("ForgetPacket left state")
	}
}
