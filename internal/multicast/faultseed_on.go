//go:build faultseed

package multicast

import "repro/internal/logicalid"

// This file deliberately reintroduces the map-order transmission bug
// class fixed in PR 3: with -tags faultseed, the hypercube-tier
// fan-out walks the tree map in Go's randomized iteration order
// instead of sorted slot order, so sibling transmissions swap places
// between reruns. internal/scengen's fault-seed self-test builds with
// this tag and asserts that the generated-scenario harness catches the
// divergence and shrinks it to a minimal script — proof the fuzzer is
// actually wired to something.

// FaultSeedActive reports that the seeded fault is compiled in.
const FaultSeedActive = true

// cubeChildren is the seeded-fault variant of the sorted fan-out in
// faultseed_off.go: map iteration order leaks into the transmission
// sequence.
func (s *Service) cubeChildren(tree map[logicalid.CHID]logicalid.CHID, slot logicalid.CHID) []logicalid.CHID {
	s.childScratch = s.childScratch[:0]
	for child, parent := range tree {
		if parent == slot && child != slot {
			s.childScratch = append(s.childScratch, child)
		}
	}
	return s.childScratch
}
