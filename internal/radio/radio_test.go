package radio

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/xrand"
)

func TestInRange(t *testing.T) {
	m := Model{Range: 100}
	if !m.InRange(100) {
		t.Error("boundary distance should be in range")
	}
	if m.InRange(100.01) {
		t.Error("beyond range should be out")
	}
	if !m.Reaches(geom.Pt(0, 0), geom.Pt(60, 80)) {
		t.Error("distance-100 points should reach")
	}
	if m.Reaches(geom.Pt(0, 0), geom.Pt(60, 81)) {
		t.Error("distance >100 should not reach")
	}
}

func TestTxDelayComposition(t *testing.T) {
	m := Model{Range: 250, Bandwidth: 1e6, ProcDelay: 0.002}
	// 1000 bytes at 1 Mb/s = 8 ms transmission; 300 m propagation = 1 us.
	got := m.TxDelay(1000, 300)
	want := 0.008 + 300.0/3e8 + 0.002
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("TxDelay=%v want %v", got, want)
	}
}

func TestTxDelayMonotoneInSizeProperty(t *testing.T) {
	m := DefaultMN
	f := func(a, b uint16, d uint8) bool {
		s1, s2 := int(a), int(b)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		return m.TxDelay(s1, float64(d)) <= m.TxDelay(s2, float64(d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLost(t *testing.T) {
	rng := xrand.New(1)
	m := Model{LossProb: 0}
	for i := 0; i < 100; i++ {
		if m.Lost(rng) {
			t.Fatal("zero loss prob lost a packet")
		}
	}
	m.LossProb = 0.5
	losses := 0
	for i := 0; i < 10000; i++ {
		if m.Lost(rng) {
			losses++
		}
	}
	if losses < 4500 || losses > 5500 {
		t.Fatalf("loss frequency %d/10000 far from 0.5", losses)
	}
}

func TestLinkQuality(t *testing.T) {
	m := Model{Range: 100}
	if q := m.LinkQuality(0); q != 1 {
		t.Errorf("quality at distance 0 = %v want 1", q)
	}
	if q := m.LinkQuality(100); q != 0 {
		t.Errorf("quality at range edge = %v want 0", q)
	}
	if q := m.LinkQuality(150); q != 0 {
		t.Errorf("quality beyond range = %v want 0", q)
	}
	if q50, q80 := m.LinkQuality(50), m.LinkQuality(80); q50 <= q80 {
		t.Errorf("quality should decrease with distance: %v <= %v", q50, q80)
	}
}

func TestCapacityReserveRelease(t *testing.T) {
	c := NewCapacity(1000)
	if c.Total() != 1000 || c.Free() != 1000 {
		t.Fatal("fresh capacity wrong")
	}
	if !c.Reserve(400) {
		t.Fatal("400/1000 should be admitted")
	}
	if !c.Reserve(600) {
		t.Fatal("600 more should fill exactly")
	}
	if c.Reserve(1) {
		t.Fatal("over-capacity reservation admitted")
	}
	if c.Free() != 0 {
		t.Fatalf("Free=%v want 0", c.Free())
	}
	c.Release(400)
	if c.Free() != 400 {
		t.Fatalf("Free after release=%v want 400", c.Free())
	}
	if u := c.Utilization(); math.Abs(u-0.6) > 1e-12 {
		t.Fatalf("Utilization=%v want 0.6", u)
	}
}

func TestCapacityEdgeCases(t *testing.T) {
	c := NewCapacity(100)
	if !c.Reserve(0) || !c.Reserve(-5) {
		t.Fatal("non-positive reservations are no-ops that succeed")
	}
	if c.Free() != 100 {
		t.Fatal("no-op reservations consumed capacity")
	}
	c.Release(50) // release without reserve clamps at zero
	if c.Free() != 100 {
		t.Fatalf("over-release manufactured capacity: Free=%v", c.Free())
	}
	z := NewCapacity(0)
	if z.Utilization() != 0 {
		t.Fatal("zero-capacity utilization should be 0")
	}
	neg := NewCapacity(-10)
	if neg.Total() != 0 {
		t.Fatal("negative capacity should clamp to 0")
	}
}

func TestCapacityNeverOvercommitsProperty(t *testing.T) {
	f := func(ops []int16) bool {
		c := NewCapacity(1 << 12)
		for _, op := range ops {
			if op >= 0 {
				c.Reserve(float64(op))
			} else {
				c.Release(float64(-op))
			}
			if c.Free() < 0 || c.Free() > c.Total() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultModels(t *testing.T) {
	if DefaultCH.Range <= DefaultMN.Range {
		t.Error("CH radio should out-range MN radio (paper's capability assumption)")
	}
	if DefaultCH.Bandwidth <= DefaultMN.Bandwidth {
		t.Error("CH radio should have more bandwidth")
	}
}

func TestEnergyConsumed(t *testing.T) {
	e := Energy{TxPerByte: 2e-6, RxPerByte: 1e-6}
	got := e.Consumed(1000, 2000)
	want := 2e-3 + 2e-3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Consumed=%v want %v", got, want)
	}
	if DefaultEnergy.TxPerByte <= DefaultEnergy.RxPerByte {
		t.Fatal("transmit should cost more than receive")
	}
	if DefaultEnergy.Consumed(0, 0) != 0 {
		t.Fatal("zero traffic should cost nothing")
	}
}
