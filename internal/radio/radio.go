// Package radio models the wireless channel between mobile nodes: a
// unit-disc propagation model with per-link delay composed of
// transmission (size/bandwidth), propagation (distance/c), and a
// configurable processing/queueing term, plus an optional loss process.
//
// The paper's QoS routing maintains "information such as delay and
// bandwidth ... in each specific local logical route"; this package is
// where those quantities originate. The model is deliberately simple —
// the paper's claims are topological, not PHY-level — but it exposes the
// two knobs the protocol consumes (per-link delay and residual
// bandwidth) and a loss process for availability experiments.
package radio

import (
	"math"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// Model describes one radio class. The paper assumes heterogeneous
// capability ("a mobile device equipped on a tank can have stronger
// capability than the one equipped for a foot soldier"), so CH-capable
// nodes typically carry a Model with larger Range and Bandwidth.
type Model struct {
	// Range is the maximum communication distance in meters (unit disc).
	Range float64
	// Bandwidth is the link capacity in bits per second.
	Bandwidth float64
	// ProcDelay is the fixed per-hop processing/queueing delay in
	// seconds.
	ProcDelay float64
	// LossProb is the independent per-transmission loss probability in
	// [0, 1).
	LossProb float64
}

// Speed of light used for propagation delay, m/s.
const lightSpeed = 3e8

// DefaultMN is a baseline mobile-node radio roughly matching 2005-era
// 802.11b ad hoc settings (250 m nominal range, 2 Mb/s).
var DefaultMN = Model{Range: 250, Bandwidth: 2e6, ProcDelay: 1e-3}

// DefaultCH is the stronger cluster-head-capable radio the paper's
// non-dynamic-property assumption grants backbone nodes.
var DefaultCH = Model{Range: 350, Bandwidth: 11e6, ProcDelay: 0.5e-3}

// InRange reports whether a transmitter with this model reaches a
// receiver at distance d.
func (m Model) InRange(d float64) bool { return d <= m.Range }

// Reaches reports whether a transmitter at a reaches a receiver at b.
func (m Model) Reaches(a, b geom.Point) bool {
	return a.Dist2(b) <= m.Range*m.Range
}

// TxDelay returns the one-hop latency for a packet of the given size
// (bytes) over distance d (meters). Distance beyond range still returns
// a finite value; range enforcement is the caller's job (the network
// layer), keeping this function total.
func (m Model) TxDelay(sizeBytes int, d float64) float64 {
	transmission := float64(sizeBytes*8) / m.Bandwidth
	propagation := d / lightSpeed
	return transmission + propagation + m.ProcDelay
}

// Lost draws the loss process once.
func (m Model) Lost(rng *xrand.Rand) bool {
	return m.LossProb > 0 && rng.Bool(m.LossProb)
}

// Precomp caches the derived link-budget quantities of a Model so the
// per-transmission hot path (one range check and one delay computation
// per packet hop) runs on multiplications against squared distances
// instead of divisions and square roots. The network layer computes one
// Precomp per node at admission time.
type Precomp struct {
	// Range2 is Range squared, for sqrt-free range checks against
	// squared distances.
	Range2 float64
	// SecPerByte is 8/Bandwidth: seconds of transmission time per byte.
	SecPerByte float64
	// ProcDelay mirrors Model.ProcDelay.
	ProcDelay float64
}

// invLightSpeed converts meters to propagation seconds by multiplication.
const invLightSpeed = 1.0 / lightSpeed

// Precompute derives the cached link budget of the model.
func (m Model) Precompute() Precomp {
	p := Precomp{Range2: m.Range * m.Range, ProcDelay: m.ProcDelay}
	if m.Bandwidth > 0 {
		p.SecPerByte = 8 / m.Bandwidth
	}
	return p
}

// InRange2 reports whether a receiver at squared distance d2 is
// reachable.
func (p Precomp) InRange2(d2 float64) bool { return d2 <= p.Range2 }

// DelayQuantum is the irreducible floor of this radio's per-hop latency
// — the processing/queueing term every transmission pays regardless of
// size or distance. It quantizes the hop-delay distribution: deliveries
// land at least one quantum past their send time, so the event
// scheduler uses the smallest quantum of the admitted radio classes to
// size its near-horizon buckets (des.Simulator.SetGrain).
func (p Precomp) DelayQuantum() float64 { return p.ProcDelay }

// HopDelay2 returns the one-hop latency for a packet of the given size
// (bytes) over squared distance d2 (square meters) — Model.TxDelay with
// the division and the caller's sqrt folded in.
func (p Precomp) HopDelay2(sizeBytes int, d2 float64) float64 {
	return float64(sizeBytes)*p.SecPerByte + math.Sqrt(d2)*invLightSpeed + p.ProcDelay
}

// LinkQuality is a soft link metric in [0, 1]: 1 close by, falling to 0
// at the range edge. The clustering tier uses it to prefer central
// nodes; it is a standard received-power proxy (quadratic path loss).
func (m Model) LinkQuality(d float64) float64 {
	if d >= m.Range {
		return 0
	}
	frac := d / m.Range
	return 1 - frac*frac
}

// Capacity tracks residual bandwidth on a node for QoS admission: the
// paper's routes carry bandwidth state, and multicast sessions reserve a
// rate on each logical link they cross.
type Capacity struct {
	total    float64
	reserved float64
}

// NewCapacity returns a capacity meter for the given total bits/second.
func NewCapacity(total float64) *Capacity {
	if total < 0 {
		total = 0
	}
	return &Capacity{total: total}
}

// Total returns the configured capacity.
func (c *Capacity) Total() float64 { return c.total }

// Free returns the unreserved bits/second.
func (c *Capacity) Free() float64 { return math.Max(0, c.total-c.reserved) }

// Reserve admits a flow of the given rate, returning false (and
// reserving nothing) if it does not fit. Zero and negative rates are
// admitted as no-ops.
func (c *Capacity) Reserve(rate float64) bool {
	if rate <= 0 {
		return true
	}
	if c.reserved+rate > c.total {
		return false
	}
	c.reserved += rate
	return true
}

// Release returns a previously reserved rate. Releasing more than was
// reserved clamps at zero rather than going negative, so a double
// release cannot manufacture capacity.
func (c *Capacity) Release(rate float64) {
	if rate <= 0 {
		return
	}
	c.reserved = math.Max(0, c.reserved-rate)
}

// Utilization returns reserved/total in [0, 1] (0 for zero-capacity).
func (c *Capacity) Utilization() float64 {
	if c.total == 0 {
		return 0
	}
	return c.reserved / c.total
}

// Energy converts the traffic counters the network layer keeps into
// consumed energy — the paper names "energy consumption" among the QoS
// metrics and motivates the backbone by the "limited bandwidth and
// energy of MNs". Default values follow the widely used WaveLAN
// measurements (~1.9 uJ/byte transmit, ~1.0 uJ/byte receive).
type Energy struct {
	// TxPerByte and RxPerByte are joules per byte transmitted/received.
	TxPerByte, RxPerByte float64
}

// DefaultEnergy is the WaveLAN-derived model.
var DefaultEnergy = Energy{TxPerByte: 1.9e-6, RxPerByte: 1.0e-6}

// Consumed returns the joules implied by the given byte counters.
func (e Energy) Consumed(txBytes, rxBytes uint64) float64 {
	return e.TxPerByte*float64(txBytes) + e.RxPerByte*float64(rxBytes)
}
