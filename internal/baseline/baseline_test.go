package baseline

import (
	"testing"

	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/network"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// grid16 builds a connected 4x4 grid of static nodes, 200 m apart
// (radio range 250 m connects 4-neighbors only).
func grid16(seed uint64) (*des.Simulator, *network.Network, *network.Mux) {
	sim := des.New()
	net := network.New(sim, geom.RectWH(0, 0, 1000, 1000), xrand.New(seed))
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			net.AddNode(&mobility.Static{P: geom.Pt(100+float64(x)*200, 100+float64(y)*200)},
				radio.DefaultMN, nil, false)
		}
	}
	mux := network.Bind(net)
	return sim, net, mux
}

func TestFloodingDeliversToAllMembers(t *testing.T) {
	sim, net, mux := grid16(1)
	f := NewFlooding(net, mux)
	f.Join(5, 1)
	f.Join(15, 1)
	f.Join(0, 1) // the source itself
	uid := f.Send(0, 1, 100)
	sim.Run()
	if got := f.DeliveryCount(uid); got != 3 {
		t.Fatalf("delivered to %d members want 3", got)
	}
	// Every node transmits once: 16 transmissions of the data kind.
	if got := net.Stats().KindTx[FloodKind]; got != 16 {
		t.Fatalf("flood transmissions %d want 16", got)
	}
}

func TestFloodingNoDuplicateDeliveries(t *testing.T) {
	sim, net, mux := grid16(2)
	f := NewFlooding(net, mux)
	f.Join(10, 1)
	uid := f.Send(0, 1, 50)
	sim.Run()
	if got := f.DeliveryCount(uid); got != 1 {
		t.Fatalf("delivery count %d want 1", got)
	}
	f.ForgetPacket(uid)
	if f.DeliveryCount(uid) != 0 {
		t.Fatal("forget failed")
	}
}

func TestFloodingPartitionLimitsDelivery(t *testing.T) {
	sim := des.New()
	net := network.New(sim, geom.RectWH(0, 0, 2000, 2000), xrand.New(3))
	net.AddNode(&mobility.Static{P: geom.Pt(0, 0)}, radio.DefaultMN, nil, false)
	net.AddNode(&mobility.Static{P: geom.Pt(1500, 1500)}, radio.DefaultMN, nil, false)
	mux := network.Bind(net)
	f := NewFlooding(net, mux)
	f.Join(1, 1)
	uid := f.Send(0, 1, 50)
	sim.Run()
	if f.DeliveryCount(uid) != 0 {
		t.Fatal("flood crossed a partition")
	}
}

func TestDSMDeliveryAndOverhead(t *testing.T) {
	sim, net, mux := grid16(4)
	d := NewDSM(net, mux)
	d.Join(12, 2)
	d.Join(3, 2)
	d.Start()
	sim.RunUntil(5) // a few position rounds
	d.Stop()
	ctl := net.Stats().ControlBytes
	if ctl == 0 {
		t.Fatal("DSM position floods not charged")
	}
	// Each round floods N=16 origins through 16 nodes each: O(N^2).
	if tx := net.Stats().KindTx[DSMPositionKind]; tx < 16*16 {
		t.Fatalf("position transmissions %d want >= 256 (two rounds, N^2 each)", tx)
	}
	uid := d.Send(0, 2, 200)
	sim.Run()
	if got := d.DeliveryCount(uid); got != 2 {
		t.Fatalf("delivered %d want 2", got)
	}
}

func TestDSMTreeIsSourceRooted(t *testing.T) {
	sim, net, mux := grid16(5)
	d := NewDSM(net, mux)
	d.Join(15, 1)
	uid := d.Send(0, 1, 100)
	sim.Run()
	if d.DeliveryCount(uid) != 1 {
		t.Fatal("corner-to-corner delivery failed")
	}
	// Only tree nodes forward: far fewer than flooding's 16.
	if tx := net.Stats().KindTx[DSMDataKind]; tx >= 16 {
		t.Fatalf("DSM transmitted %d data packets; tree should be sparse", tx)
	}
}

func TestPBMDelivery(t *testing.T) {
	sim, net, mux := grid16(6)
	p := NewPBM(net, mux)
	p.Join(15, 1)
	p.Join(12, 1)
	p.Join(0, 1)
	uid := p.Send(0, 1, 100)
	sim.Run()
	if got := p.DeliveryCount(uid); got != 3 {
		t.Fatalf("delivered %d want 3", got)
	}
}

func TestPBMSplitsTowardDivergingDestinations(t *testing.T) {
	sim, net, mux := grid16(7)
	p := NewPBM(net, mux)
	// Destinations at opposite corners from a center source.
	p.Join(3, 1)             // (700,100)
	p.Join(12, 1)            // (100,700)
	uid := p.Send(5, 1, 100) // (300,300)
	sim.Run()
	if got := p.DeliveryCount(uid); got != 2 {
		t.Fatalf("delivered %d want 2", got)
	}
}

func TestPBMControlOnlyFromMembers(t *testing.T) {
	sim, net, mux := grid16(8)
	p := NewPBM(net, mux)
	p.Join(1, 1)
	p.Join(2, 1)
	p.Start()
	sim.RunUntil(3) // one report round
	p.Stop()
	// Two member-origin floods of 16 transmissions each.
	if tx := net.Stats().KindTx[PBMReportKind]; tx != 32 {
		t.Fatalf("report transmissions %d want 32", tx)
	}
}

func TestSPBMDelivery(t *testing.T) {
	sim, net, mux := grid16(9)
	s := NewSPBM(net, mux)
	s.Join(15, 1)
	s.Join(5, 1)
	uid := s.Send(0, 1, 100)
	sim.Run()
	if got := s.DeliveryCount(uid); got != 2 {
		t.Fatalf("delivered %d want 2", got)
	}
}

func TestSPBMControlCheaperThanDSM(t *testing.T) {
	simD, netD, muxD := grid16(10)
	d := NewDSM(netD, muxD)
	d.Start()
	simD.RunUntil(9)
	d.Stop()
	dsmCtl := netD.Stats().ControlBytes

	simS, netS, muxS := grid16(10)
	s := NewSPBM(netS, muxS)
	s.Start()
	simS.RunUntil(9)
	s.Stop()
	spbmCtl := netS.Stats().ControlBytes
	if spbmCtl >= dsmCtl {
		t.Fatalf("SPBM control %d should be below DSM %d (aggregation)", spbmCtl, dsmCtl)
	}
}

func TestCBTDeliveryViaCore(t *testing.T) {
	sim, net, mux := grid16(11)
	c := NewCBT(net, mux)
	core := c.ChooseCore()
	c.Join(0, 1)
	c.Join(15, 1)
	uid := c.Send(3, 1, 100)
	sim.Run()
	if got := c.DeliveryCount(uid); got != 2 {
		t.Fatalf("delivered %d want 2", got)
	}
	// The core must have forwarded traffic (hot spot by construction).
	if net.Node(core).TxPackets == 0 {
		t.Fatal("core did not forward")
	}
}

func TestCBTCoreIsHotSpot(t *testing.T) {
	sim, net, mux := grid16(12)
	c := NewCBT(net, mux)
	core := c.ChooseCore()
	for _, m := range []network.NodeID{0, 3, 12, 15} {
		c.Join(m, 1)
	}
	// Many senders from different corners.
	for i := 0; i < 10; i++ {
		for _, src := range []network.NodeID{1, 2, 13, 14} {
			c.Send(src, 1, 100)
		}
		sim.RunUntil(sim.Now() + 1)
	}
	sim.Run()
	coreLoad := net.Node(core).ForwardLoad
	var maxOther uint64
	for _, n := range net.Nodes() {
		if n.ID != core && n.ForwardLoad > maxOther {
			maxOther = n.ForwardLoad
		}
	}
	if coreLoad == 0 {
		t.Fatal("core carried no load")
	}
	// The rendezvous design concentrates load at/near the core.
	if coreLoad*2 < maxOther {
		t.Fatalf("core load %d unexpectedly below other nodes' %d", coreLoad, maxOther)
	}
}

func TestCBTSendFromCore(t *testing.T) {
	sim, net, mux := grid16(13)
	c := NewCBT(net, mux)
	core := c.ChooseCore()
	c.Join(0, 1)
	uid := c.Send(core, 1, 64)
	sim.Run()
	if c.DeliveryCount(uid) != 1 {
		t.Fatal("core-originated send failed")
	}
}

func TestCBTJoinRefreshCharged(t *testing.T) {
	sim, net, mux := grid16(14)
	c := NewCBT(net, mux)
	c.ChooseCore()
	c.Join(0, 1)
	c.Join(15, 1)
	c.Start()
	sim.RunUntil(5)
	c.Stop()
	if net.Stats().ControlBytes == 0 {
		t.Fatal("join refreshes not charged")
	}
}

func TestAllProtocolsImplementInterface(t *testing.T) {
	_, net, mux := grid16(15)
	ps := []Protocol{
		NewFlooding(net, network.NewMux()),
		NewDSM(net, network.NewMux()),
		NewPBM(net, network.NewMux()),
		NewSPBM(net, network.NewMux()),
		NewCBT(net, mux),
	}
	names := map[string]bool{}
	for _, p := range ps {
		if p.Name() == "" {
			t.Fatal("empty name")
		}
		names[p.Name()] = true
		p.Join(0, 1)
		p.Leave(0, 1)
		p.Start()
		p.Stop()
	}
	if len(names) != 5 {
		t.Fatalf("duplicate protocol names: %v", names)
	}
}

func TestSendFromDownNodeFailsAcrossProtocols(t *testing.T) {
	sim, net, mux := grid16(16)
	_ = sim
	f := NewFlooding(net, mux)
	net.Node(0).Fail()
	if f.Send(0, 1, 10) != 0 {
		t.Fatal("flooding accepted down source")
	}
	d := NewDSM(net, network.NewMux())
	if d.Send(0, 1, 10) != 0 {
		t.Fatal("dsm accepted down source")
	}
}
