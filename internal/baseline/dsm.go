package baseline

import (
	"repro/internal/des"
	"repro/internal/network"
	"repro/internal/route"
)

// Packet kinds of the DSM-like scheme.
const (
	DSMPositionKind = "dsm-position"
	DSMDataKind     = "dsm-data"
)

// DSM approximates the Dynamic Source Multicast protocol [1]: "the
// location and transmission radius information has to be periodically
// broadcast from each node to all the other nodes in the network"
// (the scalability limit the paper quotes), after which a sender can
// "locally compute a snapshot of the global network topology", build
// the multicast tree, encode it in the packet header, and source-route.
//
// The position floods are real packets (full O(N^2)-transmission cost);
// the snapshot used by the sender is then read from the oracle, which
// matches the converged state those floods produce. Tree staleness under
// mobility — DSM's delivery weakness — is preserved by caching each
// group's tree for SnapshotTTL rather than recomputing per packet.
type DSM struct {
	net *network.Network
	ms  *membershipStore
	log *deliveryLog

	// Period is the position-flood interval; SnapshotTTL is how long a
	// computed tree is reused (staleness window).
	Period      des.Duration
	SnapshotTTL des.Duration
	// PositionSize is the position report size in bytes.
	PositionSize int

	seen   map[uint64]map[network.NodeID]bool // flood dedup
	trees  route.SnapshotMemo[treeKey, map[network.NodeID]network.NodeID]
	ticker *des.Ticker
}

type treeKey struct {
	src network.NodeID
	g   Group
}

// NewDSM attaches the protocol to the network's mux.
func NewDSM(net *network.Network, mux *network.Mux) *DSM {
	d := &DSM{
		net:          net,
		ms:           newMembershipStore(),
		log:          newDeliveryLog(),
		Period:       2,
		SnapshotTTL:  2,
		PositionSize: 20,
		seen:         make(map[uint64]map[network.NodeID]bool),
	}
	mux.Handle(DSMPositionKind, d.onPosition)
	mux.Handle(DSMDataKind, d.onData)
	return d
}

// Name implements Protocol.
func (d *DSM) Name() string { return "dsm" }

// Join implements Protocol.
func (d *DSM) Join(id network.NodeID, g Group) { d.ms.join(id, g) }

// Leave implements Protocol.
func (d *DSM) Leave(id network.NodeID, g Group) { d.ms.leave(id, g) }

// OnDeliver implements Protocol.
func (d *DSM) OnDeliver(fn DeliverFunc) { d.log.onDeliver = fn }

// Start launches the periodic position floods.
func (d *DSM) Start() {
	d.ticker = d.net.Sim().Every(d.Period, d.Period, d.PositionRound)
}

// Stop implements Protocol.
func (d *DSM) Stop() {
	if d.ticker != nil {
		d.ticker.Stop()
	}
}

// PositionRound floods every live node's position report network-wide —
// DSM's control plane and its scalability bottleneck.
func (d *DSM) PositionRound() {
	for _, n := range d.net.Nodes() {
		if !n.Up() {
			continue
		}
		uid := d.net.NextUID()
		pkt := &network.Packet{
			Kind: DSMPositionKind, Src: n.ID, Dst: network.NoNode,
			Size: d.PositionSize, Control: true, Born: d.net.Sim().Now(), UID: uid,
		}
		d.markSeen(uid, n.ID)
		d.net.Broadcast(n.ID, pkt)
	}
}

func (d *DSM) markSeen(uid uint64, id network.NodeID) bool {
	m := d.seen[uid]
	if m == nil {
		m = make(map[network.NodeID]bool)
		d.seen[uid] = m
	}
	if m[id] {
		return false
	}
	m[id] = true
	return true
}

func (d *DSM) onPosition(n *network.Node, _ network.NodeID, pkt *network.Packet) {
	if !d.markSeen(pkt.UID, n.ID) {
		return
	}
	d.net.Broadcast(n.ID, pkt.Clone())
	// Position contents feed the snapshot oracle; nothing to store.
}

// dsmHeader carries the source-encoded tree.
type dsmHeader struct {
	Tree        map[network.NodeID]network.NodeID
	PayloadSize int
}

// Send implements Protocol: compute (or reuse) the snapshot tree, encode
// it, and forward along it.
func (d *DSM) Send(src network.NodeID, g Group, payloadSize int) uint64 {
	n := d.net.Node(src)
	if n == nil || !n.Up() {
		return 0
	}
	now := d.net.Sim().Now()
	// The snapshot memo reproduces DSM's staleness window: the tree is
	// reused for SnapshotTTL regardless of mobility, which is the
	// delivery weakness the comparison measures.
	tree := d.trees.Get(now, d.SnapshotTTL, treeKey{src: src, g: g}, func() map[network.NodeID]network.NodeID {
		return prunedTree(unitDiscBFS(d.net, src), src, d.ms.members(d.net, g))
	})
	uid := d.net.NextUID()
	hdr := &dsmHeader{Tree: tree, PayloadSize: payloadSize}
	if d.ms.isMember(src, g) {
		d.log.record(src, uid, now, 0)
	}
	d.forward(src, src, g, uid, now, hdr)
	return uid
}

// forward sends one copy to each tree child of u. origin is the
// original source, preserved in Src so forwarding-load accounting sees
// relayed packets as relayed.
func (d *DSM) forward(u, origin network.NodeID, g Group, uid uint64, born des.Time, hdr *dsmHeader) {
	for _, child := range childrenOf(hdr.Tree, u) {
		pkt := &network.Packet{
			Kind: DSMDataKind, Src: origin, Dst: child, Group: int(g),
			Size: hdr.PayloadSize + 8 + 8*len(hdr.Tree), // encoded tree in header
			Born: born, UID: uid, Payload: hdr,
		}
		d.net.Unicast(u, child, pkt)
	}
}

func (d *DSM) onData(n *network.Node, _ network.NodeID, pkt *network.Packet) {
	hdr, ok := pkt.Payload.(*dsmHeader)
	if !ok {
		return
	}
	if d.ms.isMember(n.ID, Group(pkt.Group)) {
		d.log.record(n.ID, pkt.UID, pkt.Born, pkt.Hops)
	}
	d.forward(n.ID, pkt.Src, Group(pkt.Group), pkt.UID, pkt.Born, hdr)
}

// DeliveryCount returns how many members received uid.
func (d *DSM) DeliveryCount(uid uint64) int { return d.log.count(uid) }
