// Package baseline reimplements the multicast schemes the paper compares
// its design against in §2.2, at the fidelity the comparison experiments
// need (delivery behaviour, control-overhead scaling, forwarding-load
// shape):
//
//   - Flooding — network-wide broadcast with duplicate suppression; the
//     zero-state baseline every MANET paper includes.
//   - DSM-like (Basagni et al. [1]) — every node periodically floods its
//     position; a sender computes a snapshot multicast tree locally and
//     source-routes along it.
//   - PBM-like (Mauve et al. [17]) — greedy position-based multicast:
//     the sender knows member positions, forwarding nodes split the
//     destination list among neighbors making progress.
//   - SPBM-like (Transier et al. [28]) — quad-tree hierarchical
//     membership aggregation with geographic forwarding toward squares
//     containing members.
//   - CBT-like — a rendezvous (core-based) shortest-path tree, included
//     to quantify the paper's claim that tree-based backbones develop
//     bottleneck hot spots that the hypercube's symmetry avoids.
//
// Substitution note (documented in DESIGN.md): the periodic control
// planes transmit real packets through the simulator, so overhead and
// contention are charged faithfully; the *contents* of those messages
// (positions, membership) are then read from the simulation oracle when
// computing trees, rather than re-parsed from per-node caches. The
// protocols' costs and failure modes (stale snapshots under mobility,
// sender-side membership knowledge, hot-spot cores) are preserved, which
// is what the paper's comparison is about.
package baseline

import (
	"repro/internal/des"
	"repro/internal/network"
)

// Group identifies a multicast group (same value space as
// membership.Group).
type Group int

// DeliverFunc observes one member delivery.
type DeliverFunc func(member network.NodeID, uid uint64, born des.Time, hops int)

// Protocol is the common surface of all baseline multicast schemes.
type Protocol interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// Join and Leave maintain group membership.
	Join(id network.NodeID, g Group)
	Leave(id network.NodeID, g Group)
	// Send multicasts a payload from src; it returns the packet UID or 0.
	Send(src network.NodeID, g Group, payloadSize int) uint64
	// OnDeliver registers the delivery observer.
	OnDeliver(f DeliverFunc)
	// Start and Stop control periodic control planes (no-ops for
	// stateless schemes).
	Start()
	Stop()
}

// membershipStore is the shared join/leave bookkeeping.
type membershipStore struct {
	joined map[network.NodeID]map[Group]bool
}

func newMembershipStore() *membershipStore {
	return &membershipStore{joined: make(map[network.NodeID]map[Group]bool)}
}

func (m *membershipStore) join(id network.NodeID, g Group) {
	if m.joined[id] == nil {
		m.joined[id] = make(map[Group]bool)
	}
	m.joined[id][g] = true
}

func (m *membershipStore) leave(id network.NodeID, g Group) {
	delete(m.joined[id], g)
}

func (m *membershipStore) isMember(id network.NodeID, g Group) bool {
	return m.joined[id][g]
}

// members returns the live members of g in ID order.
func (m *membershipStore) members(net *network.Network, g Group) []network.NodeID {
	var out []network.NodeID
	for _, n := range net.Nodes() {
		if n.Up() && m.joined[n.ID][g] {
			out = append(out, n.ID)
		}
	}
	return out
}

// deliveryLog is shared per-uid per-member dedup plus callback dispatch.
type deliveryLog struct {
	seen      map[uint64]map[network.NodeID]bool
	onDeliver DeliverFunc
	delivered uint64
}

func newDeliveryLog() *deliveryLog {
	return &deliveryLog{seen: make(map[uint64]map[network.NodeID]bool)}
}

func (d *deliveryLog) record(member network.NodeID, uid uint64, born des.Time, hops int) {
	if d.seen[uid] == nil {
		d.seen[uid] = make(map[network.NodeID]bool)
	}
	if d.seen[uid][member] {
		return
	}
	d.seen[uid][member] = true
	d.delivered++
	if d.onDeliver != nil {
		d.onDeliver(member, uid, born, hops)
	}
}

func (d *deliveryLog) count(uid uint64) int { return len(d.seen[uid]) }

// unitDiscBFS computes a BFS tree over the current unit-disc graph from
// root, as parent pointers, visiting only live nodes. It is the
// snapshot-topology computation DSM performs at each sender and the CBT
// core uses for its shared tree.
func unitDiscBFS(net *network.Network, root network.NodeID) map[network.NodeID]network.NodeID {
	parent := map[network.NodeID]network.NodeID{root: root}
	frontier := []network.NodeID{root}
	for len(frontier) > 0 {
		var next []network.NodeID
		for _, u := range frontier {
			for _, v := range net.Neighbors(u) {
				if _, ok := parent[v]; ok {
					continue
				}
				parent[v] = u
				next = append(next, v)
			}
		}
		frontier = next
	}
	return parent
}

// prunedTree reduces a BFS parent map to the subtree spanning root and
// the given destinations: child -> parent, root maps to itself.
func prunedTree(parent map[network.NodeID]network.NodeID, root network.NodeID, dests []network.NodeID) map[network.NodeID]network.NodeID {
	tree := map[network.NodeID]network.NodeID{root: root}
	for _, d := range dests {
		if _, ok := parent[d]; !ok {
			continue // unreachable in the snapshot
		}
		for cur := d; ; {
			if _, ok := tree[cur]; ok {
				break
			}
			p := parent[cur]
			tree[cur] = p
			cur = p
		}
	}
	return tree
}

// childrenOf inverts a parent map at one node. Children come back in ID
// order: callers transmit to them, and transmission order must not
// depend on map iteration (each send may draw from the sender's loss
// stream).
func childrenOf(tree map[network.NodeID]network.NodeID, u network.NodeID) []network.NodeID {
	return network.Children(tree, u, nil)
}

// sortedMembers returns the IDs with at least one joined group, in ID
// order — the deterministic iteration base for periodic per-member
// control rounds.
func (m *membershipStore) sortedMembers() []network.NodeID {
	out := make([]network.NodeID, 0, len(m.joined))
	for id, groups := range m.joined {
		if len(groups) > 0 {
			out = append(out, id)
		}
	}
	return network.SortedIDs(out)
}
