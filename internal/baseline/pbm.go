package baseline

import (
	"sort"

	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/georoute"
	"repro/internal/network"
)

// Packet kinds of the PBM-like scheme.
const (
	PBMReportKind  = "pbm-report"
	PBMDataKind    = "pbm-data"
	PBMRecoverKind = "pbm-recover"
)

// PBM approximates Position-Based Multicast [17]: the sender knows the
// positions of all group members (the sender-side knowledge the paper
// criticizes — "the location and group membership information is
// required at each sender"); forwarding nodes greedily split the
// destination list among neighbors that make progress, falling back to
// perimeter-mode unicast for destinations stuck at a void.
//
// The member-knowledge cost is charged as periodic network-wide floods
// of member position reports (one flood per member per Period); the
// positions used at forwarding time then come from the oracle.
type PBM struct {
	net *network.Network
	geo *georoute.Router
	ms  *membershipStore
	log *deliveryLog

	Period     des.Duration
	ReportSize int

	seen   map[uint64]map[network.NodeID]bool
	ticker *des.Ticker
}

// pbmHeader carries the remaining destinations of one packet copy.
type pbmHeader struct {
	Dests       []network.NodeID
	Targets     []geom.Point // positions fixed at send time, per dest
	PayloadSize int
}

// NewPBM attaches the protocol to the network's mux. It installs its own
// geo-routing layer for stuck-destination recovery.
func NewPBM(net *network.Network, mux *network.Mux) *PBM {
	p := &PBM{
		net:        net,
		ms:         newMembershipStore(),
		log:        newDeliveryLog(),
		Period:     2,
		ReportSize: 16,
		seen:       make(map[uint64]map[network.NodeID]bool),
	}
	p.geo = georoute.Attach(net, mux)
	p.geo.Deliver(PBMRecoverKind, func(n *network.Node, inner *network.Packet) {
		// Perimeter-recovered single-destination copy arrived.
		if p.ms.isMember(n.ID, Group(inner.Group)) {
			p.log.record(n.ID, inner.UID, inner.Born, inner.Hops)
		}
	})
	mux.Handle(PBMReportKind, p.onReport)
	mux.Handle(PBMDataKind, p.onData)
	return p
}

// Name implements Protocol.
func (p *PBM) Name() string { return "pbm" }

// Join implements Protocol.
func (p *PBM) Join(id network.NodeID, g Group) { p.ms.join(id, g) }

// Leave implements Protocol.
func (p *PBM) Leave(id network.NodeID, g Group) { p.ms.leave(id, g) }

// OnDeliver implements Protocol.
func (p *PBM) OnDeliver(fn DeliverFunc) { p.log.onDeliver = fn }

// Start launches periodic member position-report floods.
func (p *PBM) Start() {
	p.ticker = p.net.Sim().Every(p.Period, p.Period, p.ReportRound)
}

// Stop implements Protocol.
func (p *PBM) Stop() {
	if p.ticker != nil {
		p.ticker.Stop()
	}
}

// ReportRound floods a position report from every group member.
func (p *PBM) ReportRound() {
	for _, id := range p.ms.sortedMembers() {
		n := p.net.Node(id)
		if n == nil || !n.Up() {
			continue
		}
		uid := p.net.NextUID()
		pkt := &network.Packet{
			Kind: PBMReportKind, Src: id, Dst: network.NoNode,
			Size: p.ReportSize, Control: true, Born: p.net.Sim().Now(), UID: uid,
		}
		p.markSeen(uid, id)
		p.net.Broadcast(id, pkt)
	}
}

func (p *PBM) markSeen(uid uint64, id network.NodeID) bool {
	m := p.seen[uid]
	if m == nil {
		m = make(map[network.NodeID]bool)
		p.seen[uid] = m
	}
	if m[id] {
		return false
	}
	m[id] = true
	return true
}

func (p *PBM) onReport(n *network.Node, _ network.NodeID, pkt *network.Packet) {
	if !p.markSeen(pkt.UID, n.ID) {
		return
	}
	p.net.Broadcast(n.ID, pkt.Clone())
}

// Send implements Protocol.
func (p *PBM) Send(src network.NodeID, g Group, payloadSize int) uint64 {
	n := p.net.Node(src)
	if n == nil || !n.Up() {
		return 0
	}
	now := p.net.Sim().Now()
	uid := p.net.NextUID()
	var dests []network.NodeID
	var targets []geom.Point
	for _, m := range p.ms.members(p.net, g) {
		if m == src {
			p.log.record(src, uid, now, 0)
			continue
		}
		dests = append(dests, m)
		targets = append(targets, p.net.Node(m).TruePos())
	}
	hdr := &pbmHeader{Dests: dests, Targets: targets, PayloadSize: payloadSize}
	p.forward(src, src, g, uid, now, hdr)
	return uid
}

// forward makes one greedy splitting decision at node u; origin is the
// original source, preserved in Src for forwarding-load accounting.
func (p *PBM) forward(u, origin network.NodeID, g Group, uid uint64, born des.Time, hdr *pbmHeader) {
	pos := p.net.Node(u).TruePos()
	nbrs := p.net.Neighbors(u)
	// Partition destinations by best-progress neighbor.
	bySucc := make(map[network.NodeID]*pbmHeader)
	for i, dest := range hdr.Dests {
		target := hdr.Targets[i]
		if dest == u {
			continue
		}
		// Arrived next to the destination?
		best := network.NoNode
		bestD := pos.Dist(target)
		for _, nb := range nbrs {
			if nb == dest {
				best = nb
				break
			}
			if d := p.net.Node(nb).TruePos().Dist(target); d < bestD {
				best, bestD = nb, d
			}
		}
		if best == network.NoNode {
			// Stuck: recover with perimeter-mode unicast for this one
			// destination.
			inner := &network.Packet{
				Kind: PBMRecoverKind, Src: origin, Dst: dest, Group: int(g),
				Size: hdr.PayloadSize + 16, Born: born, UID: uid,
			}
			p.geo.Send(u, target, dest, inner)
			continue
		}
		h := bySucc[best]
		if h == nil {
			h = &pbmHeader{PayloadSize: hdr.PayloadSize}
			bySucc[best] = h
		}
		h.Dests = append(h.Dests, dest)
		h.Targets = append(h.Targets, target)
	}
	// Transmit per successor in ID order (map order must not feed the
	// sender's loss stream).
	succs := make([]network.NodeID, 0, len(bySucc))
	for succ := range bySucc {
		succs = append(succs, succ)
	}
	sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
	for _, succ := range succs {
		h := bySucc[succ]
		pkt := &network.Packet{
			Kind: PBMDataKind, Src: origin, Dst: succ, Group: int(g),
			Size: h.PayloadSize + 8 + 20*len(h.Dests), // per-dest position in header
			Born: born, UID: uid, Payload: h,
		}
		p.net.Unicast(u, succ, pkt)
	}
}

func (p *PBM) onData(n *network.Node, _ network.NodeID, pkt *network.Packet) {
	hdr, ok := pkt.Payload.(*pbmHeader)
	if !ok {
		return
	}
	g := Group(pkt.Group)
	if p.ms.isMember(n.ID, g) {
		for _, d := range hdr.Dests {
			if d == n.ID {
				p.log.record(n.ID, pkt.UID, pkt.Born, pkt.Hops)
				break
			}
		}
	}
	p.forward(n.ID, pkt.Src, g, pkt.UID, pkt.Born, hdr)
}

// DeliveryCount returns how many members received uid.
func (p *PBM) DeliveryCount(uid uint64) int { return p.log.count(uid) }
