package baseline

import (
	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/georoute"
	"repro/internal/network"
	"repro/internal/route"
)

// Packet kinds of the CBT-like scheme.
const (
	CBTJoinKind = "cbt-join"
	CBTDataKind = "cbt-data"
)

// CBT is a core-based (rendezvous) shared tree: one core node anchors a
// shortest-path tree; senders unicast to the core, which forwards down
// the member tree. It exists to quantify the paper's load-balancing
// argument — "no problem of bottlenecks exists, which is likely to occur
// in tree-based architectures" — by providing exactly such a tree-based
// architecture: all sessions' traffic converges on the core.
type CBT struct {
	net *network.Network
	geo *georoute.Router
	ms  *membershipStore
	log *deliveryLog

	// Core is the rendezvous node; pick with ChooseCore or set directly.
	Core network.NodeID
	// Period is the member join-refresh interval; SnapshotTTL bounds
	// tree staleness.
	Period      des.Duration
	SnapshotTTL des.Duration
	JoinSize    int

	trees  route.SnapshotMemo[Group, map[network.NodeID]network.NodeID]
	ticker *des.Ticker
}

// cbtHeader carries the core tree for downstream forwarding.
type cbtHeader struct {
	Tree        map[network.NodeID]network.NodeID
	PayloadSize int
}

// NewCBT attaches the protocol to the network's mux.
func NewCBT(net *network.Network, mux *network.Mux) *CBT {
	c := &CBT{
		net:         net,
		ms:          newMembershipStore(),
		log:         newDeliveryLog(),
		Core:        network.NoNode,
		Period:      2,
		SnapshotTTL: 2,
		JoinSize:    12,
	}
	c.geo = georoute.Attach(net, mux)
	c.geo.Deliver(CBTDataKind, func(n *network.Node, inner *network.Packet) {
		c.atCore(n, inner)
	})
	c.geo.Deliver(CBTJoinKind, func(*network.Node, *network.Packet) {
		// Join refreshes feed the oracle membership view.
	})
	mux.Handle(CBTDataKind, c.onData)
	return c
}

// Name implements Protocol.
func (c *CBT) Name() string { return "cbt" }

// Join implements Protocol.
func (c *CBT) Join(id network.NodeID, g Group) { c.ms.join(id, g) }

// Leave implements Protocol.
func (c *CBT) Leave(id network.NodeID, g Group) { c.ms.leave(id, g) }

// OnDeliver implements Protocol.
func (c *CBT) OnDeliver(fn DeliverFunc) { c.log.onDeliver = fn }

// ChooseCore picks the live node nearest the arena center, the standard
// static core placement.
func (c *CBT) ChooseCore() network.NodeID {
	center := c.net.Arena().Center()
	best := network.NoNode
	bestD := 0.0
	for _, n := range c.net.Nodes() {
		if !n.Up() {
			continue
		}
		d := n.TruePos().Dist(center)
		if best == network.NoNode || d < bestD {
			best, bestD = n.ID, d
		}
	}
	c.Core = best
	return best
}

// Start launches periodic member join refreshes toward the core.
func (c *CBT) Start() {
	if c.Core == network.NoNode {
		c.ChooseCore()
	}
	c.ticker = c.net.Sim().Every(c.Period, c.Period, c.JoinRound)
}

// Stop implements Protocol.
func (c *CBT) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

// JoinRound sends a join refresh from every member to the core.
func (c *CBT) JoinRound() {
	if c.Core == network.NoNode {
		return
	}
	corePos := c.corePos()
	for _, id := range c.ms.sortedMembers() {
		if id == c.Core {
			continue
		}
		n := c.net.Node(id)
		if n == nil || !n.Up() {
			continue
		}
		inner := &network.Packet{
			Kind: CBTJoinKind, Src: id, Dst: c.Core,
			Size: c.JoinSize, Control: true, Born: c.net.Sim().Now(),
			UID: c.net.NextUID(),
		}
		c.geo.Send(id, corePos, c.Core, inner)
	}
}

func (c *CBT) corePos() geom.Point {
	if n := c.net.Node(c.Core); n != nil {
		return n.TruePos()
	}
	return c.net.Arena().Center()
}

// Send implements Protocol: unicast to the core, then down the shared
// tree.
func (c *CBT) Send(src network.NodeID, g Group, payloadSize int) uint64 {
	n := c.net.Node(src)
	if n == nil || !n.Up() || c.Core == network.NoNode {
		return 0
	}
	now := c.net.Sim().Now()
	uid := c.net.NextUID()
	if c.ms.isMember(src, g) {
		c.log.record(src, uid, now, 0)
	}
	inner := &network.Packet{
		Kind: CBTDataKind, Src: src, Dst: c.Core, Group: int(g),
		Size: payloadSize + 8, Born: now, UID: uid,
		Payload: &cbtHeader{PayloadSize: payloadSize},
	}
	if src == c.Core {
		c.atCore(n, inner)
		return uid
	}
	if !c.geo.Send(src, c.corePos(), c.Core, inner) {
		return 0
	}
	return uid
}

// atCore runs when a data packet reaches the core: compute or reuse the
// shared tree and forward downstream.
func (c *CBT) atCore(n *network.Node, inner *network.Packet) {
	g := Group(inner.Group)
	now := c.net.Sim().Now()
	// The snapshot memo reproduces CBT's staleness window on the shared
	// core tree.
	tree := c.trees.Get(now, c.SnapshotTTL, g, func() map[network.NodeID]network.NodeID {
		return prunedTree(unitDiscBFS(c.net, c.Core), c.Core, c.ms.members(c.net, g))
	})
	hdr, _ := inner.Payload.(*cbtHeader)
	if hdr == nil {
		hdr = &cbtHeader{PayloadSize: inner.Size}
	}
	hdr.Tree = tree
	if c.ms.isMember(c.Core, g) {
		c.log.record(c.Core, inner.UID, inner.Born, inner.Hops)
	}
	c.forward(c.Core, inner.Src, g, inner.UID, inner.Born, hdr)
}

// forward keeps the original source in Src so forwarding-load
// accounting sees relayed packets as relayed.
func (c *CBT) forward(u, origin network.NodeID, g Group, uid uint64, born des.Time, hdr *cbtHeader) {
	for _, child := range childrenOf(hdr.Tree, u) {
		pkt := &network.Packet{
			Kind: CBTDataKind, Src: origin, Dst: child, Group: int(g),
			Size: hdr.PayloadSize + 8, Born: born, UID: uid, Payload: hdr,
		}
		c.net.Unicast(u, child, pkt)
	}
}

func (c *CBT) onData(n *network.Node, _ network.NodeID, pkt *network.Packet) {
	hdr, ok := pkt.Payload.(*cbtHeader)
	if !ok || hdr.Tree == nil {
		return
	}
	if c.ms.isMember(n.ID, Group(pkt.Group)) {
		c.log.record(n.ID, pkt.UID, pkt.Born, pkt.Hops)
	}
	c.forward(n.ID, pkt.Src, Group(pkt.Group), pkt.UID, pkt.Born, hdr)
}

// DeliveryCount returns how many members received uid.
func (c *CBT) DeliveryCount(uid uint64) int { return c.log.count(uid) }
