package baseline

import (
	"repro/internal/network"
)

// FloodKind is the packet kind of flooded data.
const FloodKind = "flood-data"

// Flooding is blind network-wide broadcast with duplicate suppression:
// every node rebroadcasts each packet once. Delivery is maximal (every
// connected member receives) at maximal data overhead (every node
// transmits every packet) — the reference point for both PDR and cost.
type Flooding struct {
	net *network.Network
	ms  *membershipStore
	log *deliveryLog

	seen map[uint64]map[network.NodeID]bool // rebroadcast dedup
}

// NewFlooding attaches the protocol to the network's mux.
func NewFlooding(net *network.Network, mux *network.Mux) *Flooding {
	f := &Flooding{
		net:  net,
		ms:   newMembershipStore(),
		log:  newDeliveryLog(),
		seen: make(map[uint64]map[network.NodeID]bool),
	}
	mux.Handle(FloodKind, f.onPacket)
	return f
}

// Name implements Protocol.
func (f *Flooding) Name() string { return "flooding" }

// Join implements Protocol.
func (f *Flooding) Join(id network.NodeID, g Group) { f.ms.join(id, g) }

// Leave implements Protocol.
func (f *Flooding) Leave(id network.NodeID, g Group) { f.ms.leave(id, g) }

// OnDeliver implements Protocol.
func (f *Flooding) OnDeliver(fn DeliverFunc) { f.log.onDeliver = fn }

// Start implements Protocol (no control plane).
func (f *Flooding) Start() {}

// Stop implements Protocol.
func (f *Flooding) Stop() {}

// Send implements Protocol.
func (f *Flooding) Send(src network.NodeID, g Group, payloadSize int) uint64 {
	n := f.net.Node(src)
	if n == nil || !n.Up() {
		return 0
	}
	uid := f.net.NextUID()
	pkt := &network.Packet{
		Kind: FloodKind, Src: src, Dst: network.NoNode, Group: int(g),
		Size: payloadSize + 8, Born: f.net.Sim().Now(), UID: uid,
	}
	f.mark(uid, src)
	if f.ms.isMember(src, g) {
		f.log.record(src, uid, pkt.Born, 0)
	}
	f.net.Broadcast(src, pkt)
	return uid
}

func (f *Flooding) mark(uid uint64, id network.NodeID) bool {
	m := f.seen[uid]
	if m == nil {
		m = make(map[network.NodeID]bool)
		f.seen[uid] = m
	}
	if m[id] {
		return false
	}
	m[id] = true
	return true
}

func (f *Flooding) onPacket(n *network.Node, _ network.NodeID, pkt *network.Packet) {
	if !f.mark(pkt.UID, n.ID) {
		return
	}
	if f.ms.isMember(n.ID, Group(pkt.Group)) {
		f.log.record(n.ID, pkt.UID, pkt.Born, pkt.Hops)
	}
	f.net.Broadcast(n.ID, pkt.Clone())
}

// DeliveryCount returns how many members received uid.
func (f *Flooding) DeliveryCount(uid uint64) int { return f.log.count(uid) }

// ForgetPacket drops dedup state for a uid.
func (f *Flooding) ForgetPacket(uid uint64) {
	delete(f.seen, uid)
	delete(f.log.seen, uid)
}
