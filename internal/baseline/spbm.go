package baseline

import (
	"math"
	"sort"

	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/georoute"
	"repro/internal/network"
)

// Packet kinds of the SPBM-like scheme.
const (
	SPBMUpdateKind = "spbm-update"
	SPBMDataKind   = "spbm-data"
	SPBMLocalKind  = "spbm-local"
)

// SPBM approximates Scalable Position-Based Multicast [28]: membership
// is aggregated over a quad-tree of squares — "the further away a region
// is from an intermediate node, the higher the level of aggregation" —
// and data is forwarded geographically toward squares containing
// members. The paper's criticism, which the comparison quantifies, is
// that "all the nodes in the network are involved in the membership
// update".
//
// Control realization: every node broadcasts a level-0 membership update
// each Period (all nodes are involved, as criticized); for each level
// l >= 1, the node nearest each occupied child-square center forwards an
// aggregate toward its level-l square center every Period*2^l (real
// geo-routed packets). Aggregated membership consumed at send time comes
// from the oracle, matching the converged state.
type SPBM struct {
	net *network.Network
	geo *georoute.Router
	ms  *membershipStore
	log *deliveryLog

	// Square0 is the level-0 square side in meters; Levels is the
	// quad-tree height above level 0.
	Square0    float64
	Levels     int
	Period     des.Duration
	UpdateSize int

	tickers []*des.Ticker
}

// spbmHeader routes one copy toward a target level-0 square.
type spbmHeader struct {
	Square      geom.Point // center of the target level-0 square
	PayloadSize int
}

// NewSPBM attaches the protocol to the network's mux.
func NewSPBM(net *network.Network, mux *network.Mux) *SPBM {
	s := &SPBM{
		net:        net,
		ms:         newMembershipStore(),
		log:        newDeliveryLog(),
		Square0:    250,
		Levels:     3,
		Period:     2,
		UpdateSize: 12,
	}
	s.geo = georoute.Attach(net, mux)
	s.geo.Deliver(SPBMDataKind, func(n *network.Node, inner *network.Packet) {
		if hdr, ok := inner.Payload.(*spbmHeader); ok {
			s.deliverSquare(n, inner, hdr)
		}
	})
	s.geo.Deliver(SPBMUpdateKind, func(*network.Node, *network.Packet) {
		// Aggregation sink: contents feed the oracle view.
	})
	mux.Handle(SPBMLocalKind, s.onLocal)
	return s
}

// Name implements Protocol.
func (s *SPBM) Name() string { return "spbm" }

// Join implements Protocol.
func (s *SPBM) Join(id network.NodeID, g Group) { s.ms.join(id, g) }

// Leave implements Protocol.
func (s *SPBM) Leave(id network.NodeID, g Group) { s.ms.leave(id, g) }

// OnDeliver implements Protocol.
func (s *SPBM) OnDeliver(fn DeliverFunc) { s.log.onDeliver = fn }

// Start launches the per-level periodic membership updates.
func (s *SPBM) Start() {
	sim := s.net.Sim()
	s.tickers = append(s.tickers, sim.Every(s.Period, s.Period, s.level0Round))
	for l := 1; l <= s.Levels; l++ {
		l := l
		period := s.Period * des.Duration(math.Pow(2, float64(l)))
		s.tickers = append(s.tickers, sim.Every(period, period, func() { s.levelRound(l) }))
	}
}

// Stop implements Protocol.
func (s *SPBM) Stop() {
	for _, t := range s.tickers {
		t.Stop()
	}
	s.tickers = nil
}

// level0Round: every node broadcasts its membership update — the
// all-nodes-involved cost the paper criticizes.
func (s *SPBM) level0Round() {
	for _, n := range s.net.Nodes() {
		if !n.Up() {
			continue
		}
		pkt := &network.Packet{
			Kind: SPBMUpdateKind, Src: n.ID, Dst: network.NoNode,
			Size: s.UpdateSize, Control: true, Born: s.net.Sim().Now(),
			UID: s.net.NextUID(),
		}
		s.net.Broadcast(n.ID, pkt)
	}
}

// squareCenter returns the center of the level-l square containing p.
func (s *SPBM) squareCenter(p geom.Point, level int) geom.Point {
	side := s.Square0 * math.Pow(2, float64(level))
	return geom.Pt(
		(math.Floor(p.X/side)+0.5)*side,
		(math.Floor(p.Y/side)+0.5)*side,
	)
}

// levelRound: for each occupied level-(l-1) square, its representative
// (node nearest the square center) geo-routes an aggregate toward the
// parent square center.
func (s *SPBM) levelRound(level int) {
	reps := make(map[geom.Point]network.NodeID)
	best := make(map[geom.Point]float64)
	for _, n := range s.net.Nodes() {
		if !n.Up() {
			continue
		}
		pos := n.TruePos()
		c := s.squareCenter(pos, level-1)
		d := pos.Dist(c)
		if cur, ok := best[c]; !ok || d < cur {
			best[c] = d
			reps[c] = n.ID
		}
	}
	// Transmit per square in coordinate order (map order must not feed
	// the representatives' loss streams).
	children := make([]geom.Point, 0, len(reps))
	for child := range reps {
		children = append(children, child)
	}
	sortPoints(children)
	for _, child := range children {
		rep := reps[child]
		parent := s.squareCenter(child, level)
		inner := &network.Packet{
			Kind: SPBMUpdateKind, Src: rep, Dst: network.NoNode,
			Size: s.UpdateSize * 4, Control: true, Born: s.net.Sim().Now(),
			UID: s.net.NextUID(),
		}
		s.geo.Send(rep, parent, network.NoNode, inner)
	}
}

// Send implements Protocol: one geo-routed copy per occupied level-0
// square; at the square, a local broadcast reaches the members.
func (s *SPBM) Send(src network.NodeID, g Group, payloadSize int) uint64 {
	n := s.net.Node(src)
	if n == nil || !n.Up() {
		return 0
	}
	now := s.net.Sim().Now()
	uid := s.net.NextUID()
	if s.ms.isMember(src, g) {
		s.log.record(src, uid, now, 0)
	}
	squares := make(map[geom.Point]bool)
	for _, m := range s.ms.members(s.net, g) {
		if m == src {
			continue
		}
		squares[s.squareCenter(s.net.Node(m).TruePos(), 0)] = true
	}
	targets := make([]geom.Point, 0, len(squares))
	for c := range squares {
		targets = append(targets, c)
	}
	sortPoints(targets)
	for _, c := range targets {
		hdr := &spbmHeader{Square: c, PayloadSize: payloadSize}
		inner := &network.Packet{
			Kind: SPBMDataKind, Src: src, Dst: network.NoNode, Group: int(g),
			Size: payloadSize + 8 + 16*len(squares), Born: now, UID: uid, Payload: hdr,
		}
		s.geo.Send(src, c, network.NoNode, inner)
	}
	return uid
}

// deliverSquare runs at the node where the geo-routed copy settled:
// local-broadcast into the square.
func (s *SPBM) deliverSquare(n *network.Node, inner *network.Packet, hdr *spbmHeader) {
	if s.ms.isMember(n.ID, Group(inner.Group)) {
		s.log.record(n.ID, inner.UID, inner.Born, inner.Hops)
	}
	pkt := &network.Packet{
		Kind: SPBMLocalKind, Src: n.ID, Dst: network.NoNode, Group: inner.Group,
		Size: hdr.PayloadSize + 8, Born: inner.Born, UID: inner.UID,
	}
	s.net.Broadcast(n.ID, pkt)
}

func (s *SPBM) onLocal(n *network.Node, _ network.NodeID, pkt *network.Packet) {
	if s.ms.isMember(n.ID, Group(pkt.Group)) {
		s.log.record(n.ID, pkt.UID, pkt.Born, pkt.Hops)
	}
}

// DeliveryCount returns how many members received uid.
func (s *SPBM) DeliveryCount(uid uint64) int { return s.log.count(uid) }

// sortPoints orders square centers by (X, Y) so per-square
// transmissions happen in a deterministic sequence.
func sortPoints(ps []geom.Point) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
}
