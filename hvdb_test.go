package hvdb

import (
	"strings"
	"testing"
)

func TestFacadeBuildAndRun(t *testing.T) {
	spec := DefaultSpec()
	spec.Nodes = 60
	spec.Groups = 1
	spec.MembersPerGroup = 6
	spec.Mobility = Static
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	w.WarmUp(12)
	delivered := 0
	w.MC.OnDeliver(func(NodeID, uint64, Time, int) { delivered++ })
	uid := w.MC.Send(w.RandomSource(), 0, 256)
	if uid == 0 {
		t.Fatal("send failed")
	}
	w.Sim.RunUntil(w.Sim.Now() + 5)
	w.Stop()
	if delivered == 0 {
		t.Fatal("no deliveries through the facade")
	}
}

func TestFacadeExperimentList(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 14 { // f1..f6, c1..c6, scale, stress
		t.Fatalf("experiments %d want 14", len(ids))
	}
	for _, id := range ids {
		if ExperimentTitle(id) == "" {
			t.Fatalf("no title for %s", id)
		}
	}
}

func TestFacadeRunExperiment(t *testing.T) {
	var b strings.Builder
	if err := RunExperiment(&b, "f3", QuickOptions()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0000 0001 0100 0101") {
		t.Fatalf("figure 3 output missing label row:\n%s", b.String())
	}
	if err := RunExperiment(&b, "nope", QuickOptions()); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestFacadeOptions(t *testing.T) {
	if FullOptions().Scale != 1 {
		t.Fatal("full options scale")
	}
	if QuickOptions().Scale >= 1 {
		t.Fatal("quick options should be reduced")
	}
}
