// Command hvdbbench regenerates the paper's figures and claim
// evaluations. Run with no flags to execute every experiment at full
// size, or select one with -exp.
//
//	hvdbbench               # all experiments, full size
//	hvdbbench -exp f4       # just the Figure 4 experiment
//	hvdbbench -quick        # reduced sizes (smoke test)
//	hvdbbench -parallel 8   # fan runs over 8 workers (same tables)
//	hvdbbench -list         # list experiment IDs
//	hvdbbench -json         # scale benchmark -> BENCH_scale.json
//	hvdbbench -perfsmoke    # N=1000/5000 points vs committed baseline (CI gate)
//	hvdbbench -scalemem     # N=50000 wall-clock + peak-heap budgets (CI gate)
//	hvdbbench -maxnodes 1000000 -json   # include the 1M point (nightly)
//	hvdbbench -cpuprofile cpu.pprof -exp scale   # profile a run
//
// Independent runs inside each experiment (trials, sweep points,
// protocol arms) are fanned across -parallel workers; per-run seeds are
// derived positionally from -seed, so the tables are byte-identical at
// every -parallel setting.
//
// -json runs the scale sweep (N up to 10,000 nodes at full size)
// serially, measuring wall-clock and allocations per population, and
// writes the machine-readable baseline to BENCH_scale.json — stamped
// with the Go version and GOMAXPROCS it was measured under — so future
// changes have a perf trajectory to compare against. Each population is
// recorded twice, at -shards 1 (serial kernel) and -shards 4 (sharded
// kernel); the event counts must agree exactly, so the baseline doubles
// as a standing record of the shard-count-independence contract. An
// explicit -shards k narrows the baseline to that single setting.
//
// -perfsmoke re-measures the N=1000 and N=5000 sweep points — every
// committed shard-count variant of each — and compares them against the
// committed BENCH_scale.json: a determinism drift (event count
// mismatch, within a variant or across shard counts), an events/sec
// regression beyond the tolerance, or an allocs/event or peak
// bytes/node figure above its ceiling fails the process, which is what
// the CI perf-smoke job runs.
//
// -scalemem runs the N=50000 mega-world once and enforces absolute
// wall-clock and peak-heap-per-node budgets (the CI scale-mem job).
// -maxnodes raises the sweep's population cap past the 100k default so
// the nightly job can include the 1M point; populations ascend, so the
// cap only ever adds or drops trailing rows.
//
// Unknown flags and stray positional arguments exit with status 2 and
// usage, matching the hvdbsim/hvdbmap convention.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiment"
)

// benchFile is where -json writes (and -perfsmoke reads) the scale
// baseline.
const benchFile = "BENCH_scale.json"

// perfSmokePoints and perfSmokeTolerance define the CI regression
// gate: the N=1000 and N=5000 sweep points must stay within 25% of the
// committed events/sec (wall-clock measures on shared runners are
// noisy; real kernel regressions at these sizes are well beyond 25%).
// Each point's allocs/event must additionally stay under
// perfSmokeAllocsSlack times the committed figure (plus a small
// absolute epsilon for GC-timing jitter): allocation counts are nearly
// machine-independent, so the ceiling catches pooling regressions the
// wall-clock tolerance would absorb.
var perfSmokePoints = []int{1000, 5000}

const (
	perfSmokeTolerance   = 0.25
	perfSmokeAllocsSlack = 1.5
	perfSmokeAllocsEps   = 0.02
	// Peak live heap per node is nearly deterministic but rides GC
	// timing (the sampler sees whatever HeapAlloc happens to be at each
	// barrier), so its ceiling gets the same multiplicative slack as
	// allocations. Baselines recorded before the column existed carry 0
	// and skip the check.
	perfSmokeBytesSlack = 1.5
)

// The -scalemem gate: the N=50000 mega-world must finish its sweep
// point inside a CI-feasible wall-clock budget and a per-node peak-heap
// budget. The budgets carry 2x-plus headroom over measured figures on a
// 1-CPU shared runner (~600 s wall, ~13 KB/node since the PR 10
// arena-scaled warmup/drain lengthened the 50k world to 51 simulated
// seconds, with wall-clock drifting up to ~40% on the hour scale); a
// breach means memory scaling regressed structurally — memory growing
// with arena area instead of occupancy, or retained per-packet state —
// not that the runner was slow.
const (
	scaleMemNodes      = 50000
	scaleMemWallBudget = 1500.0  // seconds
	scaleMemByteBudget = 25000.0 // peak heap bytes per node
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hvdbbench: ")

	var (
		exp        = flag.String("exp", "", "experiment ID to run (default: all)")
		quick      = flag.Bool("quick", false, "run reduced configurations")
		seed       = flag.Uint64("seed", 1, "PRNG seed")
		parallel   = flag.Int("parallel", 0, "max concurrent runs per experiment (0 = GOMAXPROCS); tables are identical at every setting")
		list       = flag.Bool("list", false, "list experiments and exit")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut    = flag.Bool("json", false, "run the scale benchmark and write "+benchFile)
		perfSmoke  = flag.Bool("perfsmoke", false, "re-measure the N=1000 and N=5000 scale points and fail on events/s, allocs/event, or bytes/node regression against "+benchFile)
		scaleMem   = flag.Bool("scalemem", false, "run the N=50000 memory-scaling gate: wall-clock and peak-heap-per-node budgets (CI scale-mem job)")
		shards     = flag.Int("shards", 1, "shard count for the scale-family worlds (1 = serial kernel); tables and event counts are identical at every setting")
		maxNodes   = flag.Int("maxnodes", 0, "cap the scale sweep's population (0 = the 100k default); the nightly job raises it to 1000000 for the 1M point")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to `file`")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit to `file`")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		// flag stops parsing at the first positional argument, so a typo
		// like `-json -quikc` would otherwise be silently ignored.
		fmt.Fprintf(os.Stderr, "hvdbbench: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *parallel < 0 {
		// Range-check up front: exit 2 with usage instead of handing the
		// worker pool a nonsensical bound mid-run.
		fmt.Fprintf(os.Stderr, "hvdbbench: -parallel must be non-negative (got %d)\n", *parallel)
		flag.Usage()
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "hvdbbench: -shards must be at least 1 (got %d)\n", *shards)
		flag.Usage()
		os.Exit(2)
	}
	if *maxNodes < 0 {
		fmt.Fprintf(os.Stderr, "hvdbbench: -maxnodes must be non-negative (got %d)\n", *maxNodes)
		flag.Usage()
		os.Exit(2)
	}
	if *shards > runtime.NumCPU() {
		// More shards than cores still runs correctly (results are
		// shard-count independent); it just cannot speed anything up.
		log.Printf("warning: -shards %d exceeds the %d available CPUs; extra shards add sync overhead without parallelism", *shards, runtime.NumCPU())
	}

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Printf("%-5s %s\n", id, experiment.Title(id))
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
	}()

	opts := experiment.DefaultOptions()
	if *quick {
		opts = experiment.QuickOptions()
	}
	opts.Seed = *seed
	opts.Workers = *parallel
	opts.Shards = *shards
	opts.MaxNodes = *maxNodes

	if *scaleMem {
		if *exp != "" || *csv || *jsonOut || *perfSmoke {
			log.Fatal("-scalemem runs only the N=50000 memory gate; it cannot combine with -exp, -csv, -json, or -perfsmoke")
		}
		if err := runScaleMem(opts); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *perfSmoke {
		if *exp != "" || *csv || *jsonOut {
			log.Fatal("-perfsmoke runs only the gated scale points; it cannot combine with -exp, -csv, or -json")
		}
		if err := runPerfSmoke(opts); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *jsonOut {
		if *exp != "" || *csv {
			log.Fatal("-json runs only the scale benchmark; it cannot combine with -exp or -csv")
		}
		if *quick {
			log.Printf("warning: -quick -json benchmarks the miniature worlds; do not commit the result as the full-size %s baseline", benchFile)
		}
		shardsSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "shards" {
				shardsSet = true
			}
		})
		if !shardsSet {
			// The baseline contract: a serial and a shards=4 point per
			// population. An explicit -shards narrows the run to one
			// configuration (e.g. for ad-hoc measurement).
			opts.Shards = 0
		}
		writeScaleBench(opts)
		return
	}

	ids := experiment.IDs()
	if *exp != "" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		tables, err := experiment.Run(id, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("### %s — %s (%s)\n\n", id, experiment.Title(id), time.Since(start).Round(time.Millisecond))
		for _, t := range tables {
			if *csv {
				fmt.Printf("## %s: %s\n%s\n", t.ID, t.Title, t.CSV())
			} else {
				fmt.Println(t)
			}
		}
	}
}

// scaleBenchDoc is the on-disk shape of BENCH_scale.json.
type scaleBenchDoc struct {
	Seed       uint64                  `json:"seed"`
	Scale      float64                 `json:"scale"`
	GoVersion  string                  `json:"go_version"`
	GoMaxProcs int                     `json:"go_max_procs"`
	Points     []experiment.ScalePoint `json:"points"`
}

// writeScaleBench runs the scale benchmark and records the baseline.
func writeScaleBench(opts experiment.Options) {
	points := experiment.ScaleBench(opts)
	doc := scaleBenchDoc{
		Seed:       opts.Seed,
		Scale:      opts.Scale,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Points:     points,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(benchFile, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		fmt.Printf("N=%-6d shards=%d total=%-6d events=%-10d %8.0f events/s  %5.2f allocs/event  pdr %.1f%%\n",
			p.Nodes, p.Shards, p.TotalNodes, p.Events, p.EventsPerSec, p.AllocsPerEvent, 100*p.DeliveryRatio)
	}
	fmt.Printf("wrote %s\n", benchFile)
}

// runScaleMem is the CI scale-mem gate: one full-size N=50000 sweep
// point, measured like a -json run, checked against absolute wall-clock
// and peak-heap-per-node budgets. Unlike -perfsmoke it needs no
// committed baseline — the budgets are structural ceilings, chosen so
// only a scaling regression (memory growing with arena instead of
// occupancy, retained per-packet state) can breach them.
func runScaleMem(opts experiment.Options) error {
	opts.Scale = 1 // the gate always measures the real mega world
	p, err := experiment.ScaleBenchN(opts, scaleMemNodes)
	if err != nil {
		return err
	}
	fmt.Printf("N=%d shards=%d total=%d events=%d wall=%.1fs (budget %.0fs) peak_heap=%.1f MB bytes/node=%.0f (budget %.0f) pdr %.1f%%\n",
		p.Nodes, p.Shards, p.TotalNodes, p.Events, p.WallSeconds, scaleMemWallBudget,
		float64(p.PeakHeapBytes)/(1<<20), p.BytesPerNode, scaleMemByteBudget, 100*p.DeliveryRatio)
	if p.WallSeconds > scaleMemWallBudget {
		return fmt.Errorf("wall-clock budget breached: %.1fs > %.0fs for the N=%d world", p.WallSeconds, scaleMemWallBudget, scaleMemNodes)
	}
	if p.BytesPerNode > scaleMemByteBudget {
		return fmt.Errorf("memory budget breached: %.0f peak heap bytes/node > %.0f for the N=%d world", p.BytesPerNode, scaleMemByteBudget, scaleMemNodes)
	}
	fmt.Println("scale-mem OK")
	return nil
}

// runPerfSmoke measures the perfSmokePoints sweep points and compares
// each against the committed baseline. Per point, the event count must
// match exactly (it is deterministic; a mismatch means the kernel
// changed behavior, not just speed), events/sec must stay within
// perfSmokeTolerance, and allocs/event must stay under the ceiling.
func runPerfSmoke(opts experiment.Options) error {
	buf, err := os.ReadFile(benchFile)
	if err != nil {
		return fmt.Errorf("reading committed baseline: %w", err)
	}
	var doc scaleBenchDoc
	if err := json.Unmarshal(buf, &doc); err != nil {
		return fmt.Errorf("parsing %s: %w", benchFile, err)
	}
	opts.Seed = doc.Seed
	opts.Scale = doc.Scale
	if doc.GoVersion != "" && doc.GoVersion != runtime.Version() {
		log.Printf("warning: baseline recorded with %s, measuring with %s — wall-clock comparison crosses toolchains", doc.GoVersion, runtime.Version())
	}
	if doc.GoMaxProcs != 0 && doc.GoMaxProcs != runtime.GOMAXPROCS(0) {
		log.Printf("warning: baseline recorded at GOMAXPROCS=%d, measuring at %d", doc.GoMaxProcs, runtime.GOMAXPROCS(0))
	}
	for _, nodes := range perfSmokePoints {
		if err := smokeOnePoint(opts, &doc, nodes); err != nil {
			return err
		}
	}
	fmt.Println("perf smoke OK")
	return nil
}

// smokeOnePoint gates one population: every committed shard variant of
// the point is re-measured at its own shard count, compared against its
// committed figures, and all variants — committed and measured — must
// agree on the exact event count (the shard-count-independence
// contract; a drift here means the sharded kernel changed behavior, not
// just speed). Old single-variant baselines (no shards field) degrade
// to the serial-only gate.
func smokeOnePoint(opts experiment.Options, doc *scaleBenchDoc, nodes int) error {
	var variants []*experiment.ScalePoint
	for i := range doc.Points {
		if doc.Points[i].Nodes == nodes {
			variants = append(variants, &doc.Points[i])
		}
	}
	if len(variants) == 0 {
		return fmt.Errorf("%s has no N=%d point", benchFile, nodes)
	}
	var events []uint64
	for _, committed := range variants {
		shards := committed.Shards
		if shards < 1 {
			shards = 1 // pre-shards baseline entry
		}
		opts.Shards = shards
		measured, err := experiment.ScaleBenchN(opts, nodes)
		if err != nil {
			return err
		}
		allocCeiling := committed.AllocsPerEvent*perfSmokeAllocsSlack + perfSmokeAllocsEps
		fmt.Printf("N=%d shards=%d: measured %8.0f events/s (%d events, %.3f allocs/event), committed %8.0f events/s (%d events, %.3f allocs/event), tolerance %.0f%%, alloc ceiling %.3f\n",
			nodes, shards, measured.EventsPerSec, measured.Events, measured.AllocsPerEvent,
			committed.EventsPerSec, committed.Events, committed.AllocsPerEvent,
			100*perfSmokeTolerance, allocCeiling)
		if measured.Events != committed.Events {
			return fmt.Errorf("determinism drift at shards=%d: measured %d events, committed %d — regenerate %s and re-record the experiment tables",
				shards, measured.Events, committed.Events, benchFile)
		}
		if floor := committed.EventsPerSec * (1 - perfSmokeTolerance); measured.EventsPerSec < floor {
			return fmt.Errorf("perf regression at shards=%d: %0.f events/s is below the %.0f floor (committed %.0f - %.0f%%)",
				shards, measured.EventsPerSec, floor, committed.EventsPerSec, 100*perfSmokeTolerance)
		}
		if measured.AllocsPerEvent > allocCeiling {
			return fmt.Errorf("allocation regression at shards=%d: %.3f allocs/event exceeds the %.3f ceiling (committed %.3f x%.1f + %.2f)",
				shards, measured.AllocsPerEvent, allocCeiling, committed.AllocsPerEvent, perfSmokeAllocsSlack, perfSmokeAllocsEps)
		}
		if ceiling := committed.BytesPerNode * perfSmokeBytesSlack; committed.BytesPerNode > 0 && measured.BytesPerNode > ceiling {
			return fmt.Errorf("memory regression at shards=%d: %.0f peak heap bytes/node exceeds the %.0f ceiling (committed %.0f x%.1f)",
				shards, measured.BytesPerNode, ceiling, committed.BytesPerNode, perfSmokeBytesSlack)
		}
		events = append(events, measured.Events)
	}
	for _, e := range events[1:] {
		if e != events[0] {
			return fmt.Errorf("shard-count dependence at N=%d: event counts %v differ across the baseline shard variants", nodes, events)
		}
	}
	return nil
}
