// Command hvdbbench regenerates the paper's figures and claim
// evaluations. Run with no flags to execute every experiment at full
// size, or select one with -exp.
//
//	hvdbbench               # all experiments, full size
//	hvdbbench -exp f4       # just the Figure 4 experiment
//	hvdbbench -quick        # reduced sizes (smoke test)
//	hvdbbench -parallel 8   # fan runs over 8 workers (same tables)
//	hvdbbench -list         # list experiment IDs
//
// Independent runs inside each experiment (trials, sweep points,
// protocol arms) are fanned across -parallel workers; per-run seeds are
// derived positionally from -seed, so the tables are byte-identical at
// every -parallel setting.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hvdbbench: ")

	var (
		exp      = flag.String("exp", "", "experiment ID to run (default: all)")
		quick    = flag.Bool("quick", false, "run reduced configurations")
		seed     = flag.Uint64("seed", 1, "PRNG seed")
		parallel = flag.Int("parallel", 0, "max concurrent runs per experiment (0 = GOMAXPROCS); tables are identical at every setting")
		list     = flag.Bool("list", false, "list experiments and exit")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Printf("%-4s %s\n", id, experiment.Title(id))
		}
		return
	}

	opts := experiment.DefaultOptions()
	if *quick {
		opts = experiment.QuickOptions()
	}
	opts.Seed = *seed
	opts.Workers = *parallel

	ids := experiment.IDs()
	if *exp != "" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		tables, err := experiment.Run(id, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("### %s — %s (%s)\n\n", id, experiment.Title(id), time.Since(start).Round(time.Millisecond))
		for _, t := range tables {
			if *csv {
				fmt.Printf("## %s: %s\n%s\n", t.ID, t.Title, t.CSV())
			} else {
				fmt.Println(t)
			}
		}
	}
}
