// Command hvdbbench regenerates the paper's figures and claim
// evaluations. Run with no flags to execute every experiment at full
// size, or select one with -exp.
//
//	hvdbbench               # all experiments, full size
//	hvdbbench -exp f4       # just the Figure 4 experiment
//	hvdbbench -quick        # reduced sizes (smoke test)
//	hvdbbench -parallel 8   # fan runs over 8 workers (same tables)
//	hvdbbench -list         # list experiment IDs
//	hvdbbench -json         # scale benchmark -> BENCH_scale.json
//
// Independent runs inside each experiment (trials, sweep points,
// protocol arms) are fanned across -parallel workers; per-run seeds are
// derived positionally from -seed, so the tables are byte-identical at
// every -parallel setting.
//
// -json runs the scale sweep (N up to 10,000 nodes at full size)
// serially, measuring wall-clock and allocations per population, and
// writes the machine-readable baseline to BENCH_scale.json so future
// changes have a perf trajectory to compare against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/experiment"
)

// benchFile is where -json writes the scale baseline.
const benchFile = "BENCH_scale.json"

func main() {
	log.SetFlags(0)
	log.SetPrefix("hvdbbench: ")

	var (
		exp      = flag.String("exp", "", "experiment ID to run (default: all)")
		quick    = flag.Bool("quick", false, "run reduced configurations")
		seed     = flag.Uint64("seed", 1, "PRNG seed")
		parallel = flag.Int("parallel", 0, "max concurrent runs per experiment (0 = GOMAXPROCS); tables are identical at every setting")
		list     = flag.Bool("list", false, "list experiments and exit")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut  = flag.Bool("json", false, "run the scale benchmark and write "+benchFile)
	)
	flag.Parse()

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Printf("%-5s %s\n", id, experiment.Title(id))
		}
		return
	}

	opts := experiment.DefaultOptions()
	if *quick {
		opts = experiment.QuickOptions()
	}
	opts.Seed = *seed
	opts.Workers = *parallel

	if *jsonOut {
		if *exp != "" || *csv {
			log.Fatal("-json runs only the scale benchmark; it cannot combine with -exp or -csv")
		}
		if *quick {
			log.Printf("warning: -quick -json benchmarks the miniature worlds; do not commit the result as the full-size %s baseline", benchFile)
		}
		writeScaleBench(opts)
		return
	}

	ids := experiment.IDs()
	if *exp != "" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		tables, err := experiment.Run(id, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("### %s — %s (%s)\n\n", id, experiment.Title(id), time.Since(start).Round(time.Millisecond))
		for _, t := range tables {
			if *csv {
				fmt.Printf("## %s: %s\n%s\n", t.ID, t.Title, t.CSV())
			} else {
				fmt.Println(t)
			}
		}
	}
}

// scaleBenchDoc is the on-disk shape of BENCH_scale.json.
type scaleBenchDoc struct {
	Seed       uint64                  `json:"seed"`
	Scale      float64                 `json:"scale"`
	GoMaxProcs int                     `json:"go_max_procs"`
	Points     []experiment.ScalePoint `json:"points"`
}

// writeScaleBench runs the scale benchmark and records the baseline.
func writeScaleBench(opts experiment.Options) {
	points := experiment.ScaleBench(opts)
	doc := scaleBenchDoc{
		Seed:       opts.Seed,
		Scale:      opts.Scale,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Points:     points,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(benchFile, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		fmt.Printf("N=%-6d total=%-6d events=%-10d %8.0f events/s  %5.2f allocs/event  pdr %.1f%%\n",
			p.Nodes, p.TotalNodes, p.Events, p.EventsPerSec, p.AllocsPerEvent, 100*p.DeliveryRatio)
	}
	fmt.Printf("wrote %s\n", benchFile)
}
