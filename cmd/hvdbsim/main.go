// Command hvdbsim runs one HVDB simulation scenario from flags and
// reports delivery and overhead metrics, tracing protocol events on
// request.
//
// Example:
//
//	hvdbsim -nodes 300 -groups 2 -members 12 -speed 10 -packets 30 -trace multicast
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/des"
	"repro/internal/membership"
	"repro/internal/network"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hvdbsim: ")

	var (
		seed     = flag.Uint64("seed", 1, "PRNG seed")
		arena    = flag.Float64("arena", 2000, "arena side in meters")
		cell     = flag.Float64("cell", 250, "virtual circle tile side in meters")
		dim      = flag.Int("dim", 4, "hypercube dimension")
		nodes    = flag.Int("nodes", 200, "ordinary mobile nodes")
		groups   = flag.Int("groups", 1, "multicast groups")
		members  = flag.Int("members", 10, "members per group")
		speed    = flag.Float64("speed", 5, "max node speed m/s (0 = static)")
		packets  = flag.Int("packets", 20, "data packets per group")
		payload  = flag.Int("payload", 512, "payload bytes per packet")
		warm     = flag.Float64("warmup", 15, "warm-up simulated seconds")
		loss     = flag.Float64("loss", 0, "per-transmission loss probability")
		traceCat = flag.String("trace", "", "comma-separated trace categories (sim,mobility,radio,cluster,routes,membership,multicast)")
	)
	flag.Parse()

	spec := scenario.DefaultSpec()
	spec.Seed = *seed
	spec.ArenaSize = *arena
	spec.CellSize = *cell
	spec.Dim = *dim
	spec.Nodes = *nodes
	spec.Groups = *groups
	spec.MembersPerGroup = *members
	spec.LossProb = *loss
	if *speed <= 0 {
		spec.Mobility = scenario.Static
	} else {
		spec.Mobility = scenario.Waypoint
		spec.MinSpeed = 1
		spec.MaxSpeed = *speed
	}

	w, err := scenario.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	if *traceCat != "" {
		var cats []trace.Category
		for _, name := range strings.Split(*traceCat, ",") {
			found := false
			for c := trace.Category(0); c < trace.NumCategories; c++ {
				if c.String() == strings.TrimSpace(name) {
					cats = append(cats, c)
					found = true
				}
			}
			if !found {
				log.Fatalf("unknown trace category %q", name)
			}
		}
		tr := trace.NewWriter(os.Stderr, cats...)
		w.Net.SetTracer(tr)
		w.CM.SetTracer(tr)
		w.BB.SetTracer(tr)
		w.MS.SetTracer(tr)
		w.MC.SetTracer(tr)
	}

	fmt.Printf("%s | grid %dx%d VCs, %d hypercubes of dim %d\n",
		w.Net, w.Grid.Cols(), w.Grid.Rows(), w.Scheme.NumHypercubes(), w.Scheme.Dim())

	w.Start()
	w.WarmUp(des.Duration(*warm))
	fmt.Printf("warm-up done at t=%.1fs: %d clusters headed\n", float64(w.Sim.Now()), len(w.CM.Heads()))

	// Traffic phase: CBR per group from a random source.
	type groupRun struct {
		g        membership.Group
		expected int
		delays   stats.Sample
	}
	runs := make([]*groupRun, spec.Groups)
	delivered := 0
	w.MC.OnDeliver(func(member network.NodeID, uid uint64, born des.Time, hops int) {
		delivered++
		for _, r := range runs {
			if r != nil {
				r.delays.Add(float64(w.Sim.Now() - born))
				break
			}
		}
	})
	for g := 0; g < spec.Groups; g++ {
		g := membership.Group(g)
		run := &groupRun{g: g}
		runs[g] = run
		src := w.RandomSource()
		w.CBR(func() uint64 {
			uid := w.MC.Send(src, g, *payload)
			if uid != 0 {
				run.expected += len(w.Members[g])
			}
			return uid
		}, 0.5, *packets)
	}
	w.Sim.RunUntil(w.Sim.Now() + des.Duration(*packets)*0.5 + 5)
	w.Stop()

	expected := 0
	var allDelays stats.Sample
	for _, r := range runs {
		expected += r.expected
		for _, d := range r.delays.Values() {
			allDelays.Add(d)
		}
	}
	st := w.Net.Stats()
	elapsed := float64(w.Sim.Now()) - *warm
	fmt.Printf("\nresults at t=%.1fs:\n", float64(w.Sim.Now()))
	if expected > 0 {
		fmt.Printf("  delivery ratio      %.1f%% (%d of %d member deliveries)\n",
			100*float64(delivered)/float64(expected), delivered, expected)
	}
	fmt.Printf("  mean delay          %.2f ms (p95 %.2f ms)\n",
		allDelays.Mean()*1000, allDelays.Percentile(95)*1000)
	fmt.Printf("  control overhead    %.0f bytes/node/s\n",
		float64(st.ControlBytes)/float64(w.Net.Len())/elapsed)
	fmt.Printf("  data traffic        %d bytes total\n", st.DataBytes)
	fmt.Printf("  forwarding fairness %.3f (Jain index)\n", stats.JainIndex(w.Net.ForwardLoads()))
	var totalJ, maxJ float64
	for _, n := range w.Net.Nodes() {
		j := radio.DefaultEnergy.Consumed(n.TxBytes, n.RxBytes)
		totalJ += j
		if j > maxJ {
			maxJ = j
		}
	}
	fmt.Printf("  radio energy        %.3f J total, %.3f J at the busiest node\n", totalJ, maxJ)
	fmt.Printf("  cluster stability   %d CH changes over %d elections\n", w.CM.Changes(), w.CM.Elections())
}
